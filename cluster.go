package lotec

import (
	"fmt"
	"time"

	"lotec/internal/sim"
)

// Options configures an in-process cluster. The zero value gives 8 nodes,
// 4 KiB pages, the LOTEC protocol, strict (conservative-compiler) access
// checking, and a fast-Ethernet network model.
type Options struct {
	// Nodes is the number of simulated sites.
	Nodes int
	// PageSize in bytes.
	PageSize int
	// Protocol is the default consistency protocol (COTEC, OTEC, LOTEC or
	// RC).
	Protocol Protocol
	// ProtocolPerClass overrides the protocol for specific classes — the
	// paper's §6 per-class consistency extension.
	ProtocolPerClass map[ClassID]Protocol
	// Net is the simulated network cost model.
	Net NetParams
	// Lenient allows method bodies to access attributes outside their
	// declared sets, satisfied by demand fetches (models imperfect
	// prediction); the default is the paper's strict conservative mode.
	Lenient bool
	// MaxRetries bounds automatic deadlock retries per transaction.
	MaxRetries int
	// DirectoryShards partitions the GDO into that many independent lock
	// shards (0 or 1 → the paper's single logical directory). Object
	// placement and per-object cost attribution are identical at every
	// shard count; sharding only relieves directory contention.
	DirectoryShards int
	// FetchConcurrency bounds the in-flight per-site calls of one page
	// transfer fan-out (0 → default 4). Byte and message counters are
	// identical at every setting; only transfer wall-clock changes.
	FetchConcurrency int
	// DeltaOff disables sub-page delta transfers: fetches and pushes move
	// full pages only, byte-identical to the pre-delta data plane. The
	// default (false) lets version-tracking protocols ship just the bytes
	// written since the requester's resident version.
	DeltaOff bool
	// DeltaJournalDepth bounds how many committed write-sets each page's
	// dirty-range journal retains (how far back a delta can reach); 0 →
	// default 8.
	DeltaJournalDepth int
}

// Cluster is an in-process LOTEC deployment: a set of simulated sites over
// a deterministic virtual network, sharing a GDO. It runs real protocol
// code — the same engine the TCP deployment uses — with exactly
// reproducible scheduling, which makes it equally suited to application
// development and to protocol experiments.
//
// A Cluster is not safe for concurrent use; drive it from one goroutine.
type Cluster struct {
	inner *sim.Cluster
}

// Result is one finished root transaction.
type Result struct {
	// Node is the site the transaction ran at.
	Node NodeID
	// Obj and Method identify the invocation.
	Obj    ObjectID
	Method string
	// Out is the value the body passed to Ctx.SetResult.
	Out []byte
	// Err is the failure, if the transaction aborted.
	Err error
}

// NewCluster builds a cluster.
func NewCluster(opts Options) (*Cluster, error) {
	inner, err := sim.NewCluster(sim.Config{
		Nodes:             opts.Nodes,
		PageSize:          opts.PageSize,
		Protocol:          opts.Protocol,
		ProtocolOverrides: opts.ProtocolPerClass,
		Net:               opts.Net,
		Lenient:           opts.Lenient,
		MaxRetries:        opts.MaxRetries,
		DirectoryShards:   opts.DirectoryShards,
		FetchConcurrency:  opts.FetchConcurrency,
		DeltaOff:          opts.DeltaOff,
		DeltaJournalDepth: opts.DeltaJournalDepth,
	})
	if err != nil {
		return nil, err
	}
	return &Cluster{inner: inner}, nil
}

// AddClass registers a class cluster-wide and computes its page layout.
// Classes must be added before objects of them are created.
func (c *Cluster) AddClass(cls *Class) error { return c.inner.AddClass(cls) }

// MustAddClass is AddClass that panics on error (setup-time convenience).
func (c *Cluster) MustAddClass(cls *Class) {
	if err := c.AddClass(cls); err != nil {
		panic(fmt.Sprintf("lotec: add class: %v", err))
	}
}

// OnMethod registers the Go body of cls.method on every node.
func (c *Cluster) OnMethod(cls *Class, method string, fn MethodFunc) error {
	return c.inner.RegisterBody(cls, method, fn)
}

// MustOnMethod is OnMethod that panics on error (setup-time convenience).
func (c *Cluster) MustOnMethod(cls *Class, method string, fn MethodFunc) {
	if err := c.OnMethod(cls, method, fn); err != nil {
		panic(fmt.Sprintf("lotec: register body: %v", err))
	}
}

// NewObject creates an object of the class, with its pages initially
// resident (zeroed) at the owner node.
func (c *Cluster) NewObject(class ClassID, owner NodeID) (ObjectID, error) {
	return c.inner.CreateObject(class, owner)
}

// Exec runs one root transaction to completion: method on obj at node.
// Deadlock victims are retried automatically. Exec drives the virtual clock
// until the cluster is quiescent again.
func (c *Cluster) Exec(node NodeID, obj ObjectID, method string, arg []byte) ([]byte, error) {
	before := len(c.inner.Results())
	if err := c.inner.Submit(0, node, obj, method, arg); err != nil {
		return nil, err
	}
	if err := c.inner.Run(); err != nil {
		return nil, err
	}
	rs := c.inner.Results()
	if len(rs) <= before {
		return nil, fmt.Errorf("lotec: transaction produced no result")
	}
	r := rs[len(rs)-1]
	return r.Out, r.Err
}

// Submit schedules a root transaction to start at the given virtual time
// offset without running the cluster; combine with Run to execute many
// concurrent transactions.
func (c *Cluster) Submit(at time.Duration, node NodeID, obj ObjectID, method string, arg []byte) error {
	return c.inner.Submit(at, node, obj, method, arg)
}

// Run drives all submitted transactions to completion.
func (c *Cluster) Run() error { return c.inner.Run() }

// Results returns every finished transaction in completion order.
func (c *Cluster) Results() []Result {
	rs := c.inner.Results()
	out := make([]Result, 0, len(rs))
	for _, r := range rs {
		out = append(out, Result{
			Node: r.Node, Obj: r.Obj, Method: r.Method, Out: r.Out, Err: r.Err,
		})
	}
	return out
}

// Counters returns the run's operation counters (§5.1 metrics).
func (c *Cluster) Counters() Counters { return c.inner.Recorder().Counters() }

// ObjectStats returns the consistency traffic attributed to one object —
// the per-object quantity Figures 2–5 of the paper plot.
func (c *Cluster) ObjectStats(obj ObjectID) Stats { return c.inner.Recorder().Object(obj) }

// TotalStats returns the whole run's traffic.
func (c *Cluster) TotalStats() Stats { return c.inner.Recorder().Totals() }

// TransferTime prices the consistency messages of obj under a network
// configuration (the Figures 6–8 metric).
func (c *Cluster) TransferTime(obj ObjectID, p NetParams) time.Duration {
	return c.inner.Recorder().TransferTime(obj, p)
}

// ObjectBytes returns the authoritative current contents of obj, assembled
// from the newest copy of each page.
func (c *Cluster) ObjectBytes(obj ObjectID) ([]byte, error) {
	return c.inner.ObjectBytes(obj)
}

// Protocol returns the cluster's consistency protocol.
func (c *Cluster) Protocol() Protocol { return c.inner.Protocol() }

// Now returns the cluster's virtual time.
func (c *Cluster) Now() time.Duration { return c.inner.Now() }
