package xfer

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"lotec/internal/gdo"
	"lotec/internal/ids"
	"lotec/internal/netmodel"
	"lotec/internal/pstore"
	"lotec/internal/stats"
	"lotec/internal/transport"
	"lotec/internal/wire"
)

const pageSize = 64

// testCluster is a little N-node world: per-node stores wired into a simnet
// whose handlers serve fetches and pushes through the xfer serving path, and
// answer copy-set lookups from a static table.
type testCluster struct {
	net    *transport.SimNet
	netRec *stats.Recorder
	stores map[ids.NodeID]*pstore.Store
	sets   map[ids.ObjectID][]ids.NodeID
}

func newTestCluster(t *testing.T, n int) *testCluster {
	t.Helper()
	netRec := stats.NewRecorder()
	c := &testCluster{
		net:    transport.NewSimNet(n, netmodel.Ethernet100.WithSoftwareCost(10*time.Microsecond), netRec),
		netRec: netRec,
		stores: make(map[ids.NodeID]*pstore.Store),
		sets:   make(map[ids.ObjectID][]ids.NodeID),
	}
	for i := 1; i <= n; i++ {
		id := ids.NodeID(i)
		c.stores[id] = pstore.NewStore(pageSize)
		store := c.stores[id]
		c.net.SetHandler(id, func(from ids.NodeID, m wire.Msg) wire.Msg {
			switch req := m.(type) {
			case *wire.MultiFetchReq:
				return ServeFetch(store, nil, req)
			case *wire.MultiPushReq:
				return ApplyPush(store, nil, req)
			case *wire.CopySetReq:
				resp := &wire.CopySetResp{}
				for _, obj := range req.Objs {
					resp.Sets = append(resp.Sets, wire.CopySet{Obj: obj, Sites: c.sets[obj]})
				}
				return resp
			default:
				return &wire.ErrResp{Msg: "unexpected message"}
			}
		})
	}
	return c
}

// seed registers obj with numPages everywhere and installs version-1 pages
// filled with a site-and-page-specific byte at the given holder.
func (c *testCluster) seed(t *testing.T, obj ids.ObjectID, numPages int, holder ids.NodeID) {
	t.Helper()
	for id, store := range c.stores {
		if err := store.Register(obj, numPages); err != nil {
			t.Fatal(err)
		}
		if id != holder {
			continue
		}
		for p := 0; p < numPages; p++ {
			data := bytes.Repeat([]byte{pageByte(holder, obj, ids.PageNum(p))}, pageSize)
			if err := store.InstallPage(ids.PageID{Object: obj, Page: ids.PageNum(p)}, data, 1); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func pageByte(site ids.NodeID, obj ids.ObjectID, p ids.PageNum) byte {
	return byte(int(site)*100 + int(obj)*10 + int(p))
}

// run executes fn as node 1's process and drives the simulation to idle.
func (c *testCluster) run(t *testing.T, fn func(e *Engine)) *stats.Recorder {
	t.Helper()
	rec := stats.NewRecorder()
	e := &Engine{Env: c.net.Env(1), Store: c.stores[1], Rec: rec, Concurrency: 4}
	c.net.Env(1).Go(func() { fn(e) })
	if err := c.net.Run(); err != nil {
		t.Fatal(err)
	}
	return rec
}

func locs(node ids.NodeID, version uint64, n int) []gdo.PageLoc {
	out := make([]gdo.PageLoc, n)
	for i := range out {
		out[i] = gdo.PageLoc{Node: node, Version: version}
	}
	return out
}

// TestPlanFetchBatching checks the plan+batch stages: pages grouped by
// source site across objects, sites and objects ascending, self and
// already-current pages filtered out.
func TestPlanFetchBatching(t *testing.T) {
	c := newTestCluster(t, 4)
	c.seed(t, 10, 2, 2)
	c.seed(t, 11, 3, 3)
	c.seed(t, 12, 1, 2)
	e := &Engine{Env: c.net.Env(1), Store: c.stores[1], Concurrency: 4}

	// Object 11 scatters: page 0 at site 3, page 1 at self (skipped), page 2
	// at site 2 — so sites 2 and 3 each serve pages of two objects.
	pm11 := []gdo.PageLoc{{Node: 3, Version: 1}, {Node: 1, Version: 1}, {Node: 2, Version: 1}}
	plans, err := e.planFetch([]Want{
		{Obj: 12, Pages: []ids.PageNum{0}, PageMap: locs(2, 1, 1), Single: 2},
		{Obj: 11, Pages: []ids.PageNum{0, 1, 2}, PageMap: pm11, Single: ids.NoNode},
		{Obj: 10, Pages: []ids.PageNum{0, 1}, PageMap: locs(2, 1, 2), Single: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("got %d source plans, want 2: %+v", len(plans), plans)
	}
	if plans[0].site != 2 || plans[1].site != 3 {
		t.Fatalf("sites not ascending: %v, %v", plans[0].site, plans[1].site)
	}
	// Site 2's batch covers objects 10, 11, 12 in ascending object order.
	got2 := plans[0].objs
	if len(got2) != 3 || got2[0].Obj != 10 || got2[1].Obj != 11 || got2[2].Obj != 12 {
		t.Fatalf("site 2 batch: %+v", got2)
	}
	if len(got2[0].Pages) != 2 || len(got2[1].Pages) != 1 || got2[1].Pages[0] != 2 {
		t.Fatalf("site 2 pages: %+v", got2)
	}
	if len(plans[1].objs) != 1 || plans[1].objs[0].Obj != 11 || plans[1].objs[0].Pages[0] != 0 {
		t.Fatalf("site 3 batch: %+v", plans[1].objs)
	}
}

func TestPlanFetchFilters(t *testing.T) {
	c := newTestCluster(t, 3)
	c.seed(t, 20, 2, 2)
	e := &Engine{Env: c.net.Env(1), Store: c.stores[1], Concurrency: 1}

	// Single == self: the whole want drops.
	plans, err := e.planFetch([]Want{{Obj: 20, Pages: []ids.PageNum{0, 1}, PageMap: locs(2, 1, 2), Single: 1}})
	if err != nil || len(plans) != 0 {
		t.Fatalf("self-sourced want not dropped: %v %+v", err, plans)
	}

	// VersionAware: a resident page at the mapped version is skipped; a stale
	// one still moves.
	if err := c.stores[1].InstallPage(ids.PageID{Object: 20, Page: 0}, make([]byte, pageSize), 5); err != nil {
		t.Fatal(err)
	}
	pm := []gdo.PageLoc{{Node: 2, Version: 5}, {Node: 2, Version: 5}}
	plans, err = e.planFetch([]Want{{Obj: 20, Pages: []ids.PageNum{0, 1}, PageMap: pm, Single: ids.NoNode, VersionAware: true}})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 1 || len(plans[0].objs) != 1 || len(plans[0].objs[0].Pages) != 1 || plans[0].objs[0].Pages[0] != 1 {
		t.Fatalf("version-aware filter wrong: %+v", plans)
	}
	// Without VersionAware (COTEC) both pages move again.
	plans, err = e.planFetch([]Want{{Obj: 20, Pages: []ids.PageNum{0, 1}, PageMap: pm, Single: ids.NoNode}})
	if err != nil || len(plans[0].objs[0].Pages) != 2 {
		t.Fatalf("COTEC re-transfer filter wrong: %v %+v", err, plans)
	}

	// Locally dirty pages never move.
	if _, err := c.stores[1].Write(20, 0, []byte{1}); err != nil {
		t.Fatal(err)
	}
	plans, err = e.planFetch([]Want{{Obj: 20, Pages: []ids.PageNum{0, 1}, PageMap: pm, Single: ids.NoNode}})
	if err != nil || len(plans) != 1 || plans[0].objs[0].Pages[0] != 1 {
		t.Fatalf("dirty filter wrong: %v %+v", err, plans)
	}

	// A page outside the map is a planning error.
	if _, err = e.planFetch([]Want{{Obj: 20, Pages: []ids.PageNum{7}, PageMap: pm, Single: ids.NoNode}}); err == nil {
		t.Fatal("out-of-map page not rejected")
	}
}

// TestFetchEndToEnd moves pages of two objects from two sites in one
// pipeline pass and checks installs plus the recorded transfer sample.
func TestFetchEndToEnd(t *testing.T) {
	c := newTestCluster(t, 3)
	c.seed(t, 30, 2, 2)
	c.seed(t, 31, 1, 3)
	rec := c.run(t, func(e *Engine) {
		err := e.Fetch([]Want{
			{Obj: 30, Pages: []ids.PageNum{0, 1}, PageMap: locs(2, 1, 2), Single: 2},
			{Obj: 31, Pages: []ids.PageNum{0}, PageMap: locs(3, 1, 1), Single: ids.NoNode},
		}, false)
		if err != nil {
			t.Errorf("fetch: %v", err)
		}
	})
	for _, want := range []struct {
		obj    ids.ObjectID
		page   ids.PageNum
		holder ids.NodeID
	}{{30, 0, 2}, {30, 1, 2}, {31, 0, 3}} {
		pid := ids.PageID{Object: want.obj, Page: want.page}
		data, ver, err := c.stores[1].PageCopy(pid)
		if err != nil {
			t.Fatalf("page %v not installed: %v", pid, err)
		}
		if ver != 1 || data[0] != pageByte(want.holder, want.obj, want.page) {
			t.Errorf("page %v: version %d byte %d", pid, ver, data[0])
		}
	}
	tot := rec.TransferStages(stats.TransferFetch)
	if tot.Transfers != 1 || tot.Batches != 2 || tot.Pages != 3 || tot.Bytes != 3*pageSize {
		t.Errorf("transfer totals: %+v", tot)
	}
	if tot.Gather <= 0 {
		t.Errorf("gather span not recorded: %+v", tot)
	}
}

// TestFetchDemandCount checks §4.3 demand fetches are counted once per
// batched source-site request.
func TestFetchDemandCount(t *testing.T) {
	c := newTestCluster(t, 3)
	c.seed(t, 40, 2, 2)
	rec := c.run(t, func(e *Engine) {
		if err := e.Fetch([]Want{{Obj: 40, Pages: []ids.PageNum{0, 1}, PageMap: locs(2, 1, 2), Single: ids.NoNode}}, true); err != nil {
			t.Errorf("fetch: %v", err)
		}
	})
	if got := rec.Counters().DemandFetches; got != 1 {
		t.Errorf("demand fetches = %d, want 1", got)
	}
}

// TestFetchServeError checks a missing page at the serving site surfaces as
// a fetch error, not a silent partial install.
func TestFetchServeError(t *testing.T) {
	c := newTestCluster(t, 2)
	// Registered everywhere but never installed at site 2.
	c.seed(t, 50, 1, 1)
	c.run(t, func(e *Engine) {
		err := e.Fetch([]Want{{Obj: 50, Pages: []ids.PageNum{0}, PageMap: locs(2, 1, 1), Single: 2}}, false)
		if err == nil || !strings.Contains(err.Error(), "fetch from") {
			t.Errorf("missing remote page: err = %v", err)
		}
	})
}

// TestPushEndToEnd drives the scatter direction: dirty pages at site 1 land
// at every copy-set site in one batched push per destination, with one
// copy-set lookup per home.
func TestPushEndToEnd(t *testing.T) {
	c := newTestCluster(t, 4)
	c.seed(t, 60, 2, 1)
	c.seed(t, 61, 1, 1)
	c.sets[60] = []ids.NodeID{1, 2, 3}
	c.sets[61] = []ids.NodeID{2, 4}
	for _, obj := range []ids.ObjectID{60, 61} {
		if _, err := c.stores[1].Write(obj, 0, bytes.Repeat([]byte{0xAB}, pageSize)); err != nil {
			t.Fatal(err)
		}
		if err := c.stores[1].SetPageVersion(ids.PageID{Object: obj, Page: 0}, 9); err != nil {
			t.Fatal(err)
		}
	}
	dirty := map[ids.ObjectID][]ids.PageNum{
		60: c.stores[1].DirtyPages(60),
		61: c.stores[1].DirtyPages(61),
	}
	home := func(ids.ObjectID) ids.NodeID { return 4 }
	rec := c.run(t, func(e *Engine) {
		if err := e.Push([]ids.ObjectID{60, 61}, dirty, home, false); err != nil {
			t.Errorf("push: %v", err)
		}
	})
	for _, want := range []struct {
		site ids.NodeID
		obj  ids.ObjectID
	}{{2, 60}, {3, 60}, {2, 61}, {4, 61}} {
		data, ver, err := c.stores[want.site].PageCopy(ids.PageID{Object: want.obj, Page: 0})
		if err != nil {
			t.Fatalf("site %v obj %v: %v", want.site, want.obj, err)
		}
		if ver != 9 || data[0] != 0xAB {
			t.Errorf("site %v obj %v: version %d byte %#x", want.site, want.obj, ver, data[0])
		}
	}
	if c.stores[4].HasPage(ids.PageID{Object: 60, Page: 0}) {
		t.Error("object 60 pushed to a site outside its copy set")
	}
	tot := rec.TransferStages(stats.TransferPush)
	// Three destinations (2, 3, 4), three object-payload entries... sites 2
	// gets both objects: pages counted per destination entry = 2+1+1.
	if tot.Transfers != 1 || tot.Batches != 3 || tot.Pages != 4 {
		t.Errorf("push totals: %+v", tot)
	}
	// One CopySetReq for the single home site, batching both objects.
	lookups := 0
	for _, m := range c.netRec.Trace() {
		if m.Kind == stats.KindLockReq && m.To == 4 {
			lookups++
			if len(m.Objs) != 2 {
				t.Errorf("copy-set lookup not batched: %+v", m)
			}
		}
	}
	if lookups != 1 {
		t.Errorf("copy-set lookups = %d, want 1", lookups)
	}
}

// TestApplyPushSkipsStale checks the receiver-side version guard.
func TestApplyPushSkipsStale(t *testing.T) {
	store := pstore.NewStore(pageSize)
	if err := store.Register(70, 1); err != nil {
		t.Fatal(err)
	}
	pid := ids.PageID{Object: 70, Page: 0}
	if err := store.InstallPage(pid, bytes.Repeat([]byte{7}, pageSize), 5); err != nil {
		t.Fatal(err)
	}
	reply := ApplyPush(store, nil, &wire.MultiPushReq{Objs: []wire.ObjPayload{{
		Obj:   70,
		Pages: []wire.PagePayload{{Page: 0, Version: 3, Data: bytes.Repeat([]byte{9}, pageSize)}},
	}}})
	if _, ok := reply.(*wire.PushResp); !ok {
		t.Fatalf("reply = %T", reply)
	}
	data, ver, err := store.PageCopy(pid)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 5 || data[0] != 7 {
		t.Errorf("stale push overwrote newer page: version %d byte %d", ver, data[0])
	}
}

// TestPagePool checks the staging-buffer pool contract.
func TestPagePool(t *testing.T) {
	buf := GetPage(pageSize)
	if len(buf) != pageSize {
		t.Fatalf("GetPage(%d) len %d", pageSize, len(buf))
	}
	ReleasePage(buf)
	big := GetPage(pstore.DefaultPageSize * 2)
	if len(big) != pstore.DefaultPageSize*2 {
		t.Fatalf("oversized GetPage len %d", len(big))
	}
	ReleasePage(big)
	ReleasePage(nil) // must not panic
}
