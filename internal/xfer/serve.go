package xfer

import (
	"sync"

	"lotec/internal/ids"
	"lotec/internal/pstore"
	"lotec/internal/wire"
)

// pagePool recycles page-sized staging buffers across transfers. Safety
// rests on pstore.InstallPage copying its input: once a page is installed
// (or a message encoded, on the TCP path) the buffer carries no live data
// and may be reused. Buffers that escape to a peer that never releases
// them (legacy FetchResp consumers, the TCP decode path) are simply lost
// to the GC — a missed reuse, never a correctness issue.
var pagePool = sync.Pool{
	New: func() any {
		buf := make([]byte, pstore.DefaultPageSize)
		return &buf
	},
}

// GetPage returns a staging buffer of exactly size bytes.
func GetPage(size int) []byte {
	bp := pagePool.Get().(*[]byte)
	if cap(*bp) < size {
		return make([]byte, size)
	}
	return (*bp)[:size]
}

// ReleasePage returns a staging buffer to the pool. Safe to call with
// buffers that did not come from GetPage.
func ReleasePage(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	b := buf[:cap(buf)]
	pagePool.Put(&b)
}

// ServeFetch is the serving side of the gather stage: copy the requested
// pages of every object out of the local store into pooled staging
// buffers. The requester's apply stage releases them after installing.
func ServeFetch(store *pstore.Store, req *wire.MultiFetchReq) wire.Msg {
	resp := &wire.MultiFetchResp{Objs: make([]wire.ObjPayload, 0, len(req.Objs))}
	for _, op := range req.Objs {
		out := wire.ObjPayload{Obj: op.Obj, Pages: make([]wire.PagePayload, 0, len(op.Pages))}
		for _, p := range op.Pages {
			pid := ids.PageID{Object: op.Obj, Page: p}
			buf := GetPage(store.PageSize())
			ver, err := store.PageCopyInto(pid, buf)
			if err != nil {
				ReleasePage(buf)
				for _, served := range resp.Objs {
					releasePayloads(served.Pages)
				}
				releasePayloads(out.Pages)
				return &wire.ErrResp{Msg: err.Error()}
			}
			out.Pages = append(out.Pages, wire.PagePayload{Page: p, Version: ver, Data: buf})
		}
		resp.Objs = append(resp.Objs, out)
	}
	return resp
}

// releasePayloads hands staged buffers back on an aborted serve.
func releasePayloads(pages []wire.PagePayload) {
	for _, pg := range pages {
		ReleasePage(pg.Data)
	}
}

// ApplyPush is the serving side of the push direction: install pushed
// pages that are newer than the local copies. Locally dirty pages are
// impossible at a pushee (it does not hold the lock) but are skipped
// defensively. The pushed buffers belong to the pusher and are not
// released here.
func ApplyPush(store *pstore.Store, req *wire.MultiPushReq) wire.Msg {
	for _, op := range req.Objs {
		dirty := make(map[ids.PageNum]bool)
		for _, p := range store.DirtyPages(op.Obj) {
			dirty[p] = true
		}
		for _, pg := range op.Pages {
			if dirty[pg.Page] {
				continue
			}
			pid := ids.PageID{Object: op.Obj, Page: pg.Page}
			if v, ok := store.PageVersion(pid); ok && v >= pg.Version {
				continue
			}
			if err := store.InstallPage(pid, pg.Data, pg.Version); err != nil {
				return &wire.ErrResp{Msg: err.Error()}
			}
		}
	}
	return &wire.PushResp{}
}
