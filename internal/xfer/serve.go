package xfer

import (
	"errors"
	"sync"

	"lotec/internal/ids"
	"lotec/internal/pstore"
	"lotec/internal/stats"
	"lotec/internal/wire"
)

// pagePool recycles page-sized staging buffers across transfers. Safety
// rests on pstore.InstallPage copying its input: once a page is installed
// (or a message encoded, on the TCP path) the buffer carries no live data
// and may be reused. Buffers that escape to a peer that never releases
// them (legacy FetchResp consumers, the TCP decode path) are simply lost
// to the GC — a missed reuse, never a correctness issue. Each DeltaPage
// owns one staging buffer (its Data slice), never a sub-slice of a shared
// one: ReleasePage returns buf[:cap], so two releases of overlapping
// slices would corrupt the pool.
var pagePool = sync.Pool{
	New: func() any {
		buf := make([]byte, pstore.DefaultPageSize)
		return &buf
	},
}

// GetPage returns a staging buffer of exactly size bytes.
//
//lotec:noalloc
func GetPage(size int) []byte {
	bp := pagePool.Get().(*[]byte)
	if cap(*bp) < size {
		return make([]byte, size) //lotec:alloc-ok — pool buffers are page-sized; an oversized request pays for itself
	}
	return (*bp)[:size]
}

// ReleasePage returns a staging buffer to the pool. Safe to call with
// buffers that did not come from GetPage.
//
//lotec:noalloc
func ReleasePage(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	b := buf[:cap(buf)]
	pagePool.Put(&b)
}

// toWireSpans converts journal spans to their wire form.
func toWireSpans(runs []pstore.Span) []wire.Span {
	out := make([]wire.Span, len(runs))
	for i, r := range runs {
		out[i] = wire.Span{Off: uint32(r.Off), Len: uint32(r.Len)}
	}
	return out
}

// toStoreSpans converts wire spans to their journal form.
func toStoreSpans(runs []wire.Span) []pstore.Span {
	out := make([]pstore.Span, len(runs))
	for i, r := range runs {
		out[i] = pstore.Span{Off: int(r.Off), Len: int(r.Len)}
	}
	return out
}

// ServeFetch is the serving side of the gather stage: copy the requested
// pages of every object out of the local store into pooled staging buffers.
// A page whose request carries a usable base version is answered with a
// dirty-range delta when the local journal still covers that base AND the
// encoded delta is smaller than the full payload; everything else — cold
// caches, evicted journals, broken chains, deltas that would not pay —
// falls back to the full page, so the reply is correct for any requester
// state. The requester's apply stage releases the staged buffers.
func ServeFetch(store *pstore.Store, rec *stats.Recorder, req *wire.MultiFetchReq) wire.Msg {
	fullSize := wire.PagePayload{Data: make([]byte, 0)}.EncodedSize() + store.PageSize()
	resp := &wire.MultiFetchResp{Objs: make([]wire.ObjPayload, 0, len(req.Objs))}
	abort := func(out wire.ObjPayload, msg string) wire.Msg {
		for _, served := range resp.Objs {
			releasePayloads(served)
		}
		releasePayloads(out)
		return &wire.ErrResp{Msg: msg}
	}
	for _, op := range req.Objs {
		out := wire.ObjPayload{Obj: op.Obj, Pages: make([]wire.PagePayload, 0, len(op.Pages))}
		for i, p := range op.Pages {
			pid := ids.PageID{Object: op.Obj, Page: p}
			var base uint64
			if i < len(op.Bases) {
				base = op.Bases[i]
			}
			buf := GetPage(store.PageSize())
			if base > 0 {
				if runs, target, n, ok := store.DeltaSince(pid, base, buf); ok {
					dp := wire.DeltaPage{Page: p, Base: base, Version: target, Runs: toWireSpans(runs), Data: buf[:n]}
					if dp.EncodedSize() < fullSize {
						out.Deltas = append(out.Deltas, dp)
						if rec != nil {
							rec.AddDelta(dp.EncodedSize(), fullSize-dp.EncodedSize())
						}
						continue
					}
				}
				// Delta-eligible but unservable or not worth it: full page.
				if rec != nil {
					rec.AddDeltaFallback()
				}
			}
			ver, err := store.PageCopyInto(pid, buf)
			if err != nil {
				ReleasePage(buf)
				return abort(out, err.Error())
			}
			if rec != nil {
				rec.AddFullPage(fullSize)
			}
			out.Pages = append(out.Pages, wire.PagePayload{Page: p, Version: ver, Data: buf})
		}
		resp.Objs = append(resp.Objs, out)
	}
	return resp
}

// releasePayloads hands staged buffers back on an aborted serve.
//
//lotec:noalloc
func releasePayloads(op wire.ObjPayload) {
	for _, pg := range op.Pages {
		ReleasePage(pg.Data)
	}
	for _, dp := range op.Deltas {
		ReleasePage(dp.Data)
	}
}

// ApplyPush is the serving side of the push direction: install pushed
// pages that are newer than the local copies. Locally dirty pages are
// impossible at a pushee (it does not hold the lock) but are skipped
// defensively. A pushed delta lands only on a clean resident copy at
// exactly its base version; otherwise the stale copy is EVICTED — never
// silently kept — because RC trusts resident pages and only re-fetches
// absent ones, so eviction converts potential staleness into a future
// full-page fetch. Pages already at or beyond the pushed version are left
// alone (a duplicated or replayed push must not double-apply). The pushed
// buffers belong to the pusher and are not released here.
func ApplyPush(store *pstore.Store, rec *stats.Recorder, req *wire.MultiPushReq) wire.Msg {
	for _, op := range req.Objs {
		dirty := make(map[ids.PageNum]bool)
		for _, p := range store.DirtyPages(op.Obj) {
			dirty[p] = true
		}
		for _, pg := range op.Pages {
			if dirty[pg.Page] {
				continue
			}
			pid := ids.PageID{Object: op.Obj, Page: pg.Page}
			if v, ok := store.PageVersion(pid); ok && v >= pg.Version {
				continue
			}
			if err := store.InstallPage(pid, pg.Data, pg.Version); err != nil {
				return &wire.ErrResp{Msg: err.Error()}
			}
		}
		for _, dp := range op.Deltas {
			if dirty[dp.Page] {
				continue
			}
			pid := ids.PageID{Object: op.Obj, Page: dp.Page}
			if !store.HasPage(pid) {
				// Not caching this page: nothing to patch, nothing to evict.
				continue
			}
			if v, ok := store.PageVersion(pid); ok && v >= dp.Version {
				continue
			}
			err := store.ApplyDelta(pid, dp.Base, dp.Version, toStoreSpans(dp.Runs), dp.Data)
			if errors.Is(err, pstore.ErrDeltaBase) {
				store.Drop(pid)
				if rec != nil {
					rec.AddDeltaFallback()
				}
				continue
			}
			if err != nil {
				return &wire.ErrResp{Msg: err.Error()}
			}
		}
	}
	return &wire.PushResp{}
}
