// Package xfer is the data plane of the LOTEC runtime: the transfer engine
// of Algorithm 4.5 extracted into an explicit four-stage pipeline —
// plan → batch → gather → apply — shared by every path that moves pages
// (protocol fetches in transfer, §4.3 demand fetches, and the §6 RC eager
// push), plus the serving side of both directions.
//
// The plan stage decides which pages must actually move and which peer site
// sources (or sinks) each one; the batch stage groups pages *across
// objects* by peer site into one MultiFetchReq/MultiPushReq per site; the
// gather stage issues the per-site calls with bounded concurrency through
// transport.CallGroup; the apply stage installs the received pages. Staged
// page buffers come from a sync.Pool and per-stage accounting lands in
// stats.TransferSample records.
//
// Concurrency is a wall-clock optimization only: the byte and message
// trace is identical at every FetchConcurrency for every protocol. The
// simulator enforces the invariant by construction (it issues the group
// sequentially on the virtual clock and models the k-worker overlap — see
// transport.GroupCaller); the TCP transport overlaps the calls for real.
// Consistency protocols (package core) stay pure policies: they choose
// *what* to fetch, this package only decides *how* it moves.
package xfer

import (
	"errors"
	"fmt"
	"sort"

	"lotec/internal/gdo"
	"lotec/internal/ids"
	"lotec/internal/pstore"
	"lotec/internal/stats"
	"lotec/internal/transport"
	"lotec/internal/wire"
)

// Want is one object's fetch demand: the protocol-planned pages plus the
// grant-time location metadata needed to source them.
type Want struct {
	Obj ids.ObjectID
	// Pages is the protocol's fetch plan for the object (FetchPlan output
	// or the §4.3 demand-miss set).
	Pages []ids.PageNum
	// PageMap is the grant-time page map: PageMap[p] locates page p's
	// newest committed copy.
	PageMap []gdo.PageLoc
	// Single, when not ids.NoNode, is the one site holding a complete
	// current copy (COTEC/OTEC's last updater); ids.NoNode scatters the
	// gather to each page's newest location (LOTEC, demand fetches).
	Single ids.NodeID
	// VersionAware lets the plan skip pages whose resident version already
	// matches the map (OTEC/LOTEC/RC); COTEC re-transfers regardless.
	VersionAware bool
	// Delta lets the plan piggyback each requester-cached page's version on
	// the fetch request, inviting the serving side to answer with dirty-range
	// deltas (core.Protocol.DeltaEligible; COTEC stays version-blind).
	Delta bool
}

// Engine executes transfers for one site.
type Engine struct {
	Env   transport.Env
	Store *pstore.Store
	Rec   *stats.Recorder // may be nil
	// Concurrency bounds the in-flight per-site calls of one gather or
	// push fan-out (Options.FetchConcurrency); <= 1 means serial.
	Concurrency int
	// DeltaOff disables sub-page delta transfers entirely (the -delta=off
	// escape hatch): no base versions are piggybacked on fetches and pushes
	// stage only full pages, so the wire traffic is byte-identical to the
	// pre-delta data plane.
	DeltaOff bool
}

// sourcePlan is the batch stage's unit: the pages one peer site must
// provide, grouped per object.
type sourcePlan struct {
	site ids.NodeID
	objs []wire.ObjPages
}

// Fetch runs the gather direction of the pipeline for the given wants:
// plan which pages must move, batch them by source site across objects,
// pull each site's batch under the concurrency bound, and install the
// received pages. demand marks §4.3 demand fetches (counted per batched
// source-site request, as serial per-source fetches were).
func (e *Engine) Fetch(wants []Want, demand bool) error {
	t0 := e.Env.Now()
	plans, err := e.planFetch(wants)
	if err != nil {
		return err
	}
	if len(plans) == 0 {
		return nil
	}
	calls := make([]transport.GroupCall, 0, len(plans))
	for _, sp := range plans {
		calls = append(calls, transport.GroupCall{
			To:  sp.site,
			Msg: &wire.MultiFetchReq{Demand: demand, Objs: sp.objs},
		})
		if demand && e.Rec != nil {
			e.Rec.AddDemandFetch()
		}
	}
	t1 := e.Env.Now()

	results, span := transport.CallGroup(e.Env, calls, e.Concurrency)

	t2 := e.Env.Now()
	pages, bytes, deltaPages, deltaBytes, err := e.applyFetch(calls, results)
	if err != nil {
		return err
	}
	if e.Rec != nil {
		e.Rec.AddTransfer(stats.TransferSample{
			Kind:       stats.TransferFetch,
			Batches:    len(calls),
			Pages:      pages,
			Bytes:      bytes,
			DeltaPages: deltaPages,
			DeltaBytes: deltaBytes,
			Plan:       t1 - t0,
			Gather:     span,
			Apply:      e.Env.Now() - t2,
		})
	}
	return nil
}

// planFetch is the plan + batch stages: filter each want's pages down to
// the ones that must move, resolve each page's source site, and group the
// survivors by source across objects (sites ascending, objects in want
// order, pages in plan order — the batch layout is part of the
// deterministic trace).
func (e *Engine) planFetch(wants []Want) ([]sourcePlan, error) {
	self := e.Env.Self()
	type key struct {
		site ids.NodeID
		obj  ids.ObjectID
	}
	pagesAt := make(map[key][]ids.PageNum)
	basesAt := make(map[key][]uint64)
	objsAt := make(map[ids.NodeID][]ids.ObjectID)
	var sites []ids.NodeID
	for _, w := range wants {
		scatter := w.Single == ids.NoNode
		if !scatter && w.Single == self {
			// This site performed the last update: it already holds a
			// complete current copy; nothing to pull.
			continue
		}
		delta := w.Delta && !e.DeltaOff
		dirtyLocal := make(map[ids.PageNum]bool)
		for _, p := range e.Store.DirtyPages(w.Obj) {
			dirtyLocal[p] = true
		}
		for _, p := range w.Pages {
			if int(p) >= len(w.PageMap) {
				return nil, fmt.Errorf("xfer: fetch plan page %v/p%d outside page map", w.Obj, p)
			}
			loc := w.PageMap[p]
			if loc.Node == self || dirtyLocal[p] {
				continue
			}
			// Skip pages already at (or beyond) the mapped version: another
			// transaction of this family may have fetched them already.
			// COTEC has no version tracking and re-transfers regardless.
			if w.VersionAware {
				if v, ok := e.Store.PageVersion(ids.PageID{Object: w.Obj, Page: p}); ok && v >= loc.Version {
					continue
				}
			}
			src := loc.Node
			if !scatter {
				src = w.Single
			}
			k := key{site: src, obj: w.Obj}
			if _, seen := pagesAt[k]; !seen {
				if _, seenSite := objsAt[src]; !seenSite {
					sites = append(sites, src)
				}
				objsAt[src] = append(objsAt[src], w.Obj)
			}
			pagesAt[k] = append(pagesAt[k], p)
			if delta {
				// Piggyback the resident copy's version as the delta base
				// (0 = no usable copy → the server must send a full page).
				var base uint64
				if v, ok := e.Store.PageVersion(ids.PageID{Object: w.Obj, Page: p}); ok && v > 0 && v < loc.Version {
					base = v
				}
				basesAt[k] = append(basesAt[k], base)
			}
		}
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i] < sites[j] })
	plans := make([]sourcePlan, 0, len(sites))
	for _, site := range sites {
		objs := objsAt[site]
		sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
		sp := sourcePlan{site: site}
		for _, obj := range objs {
			k := key{site: site, obj: obj}
			bases := basesAt[k]
			allZero := true
			for _, b := range bases {
				if b != 0 {
					allZero = false
					break
				}
			}
			if allZero {
				// No usable base anywhere: omit the section so the request
				// encodes byte-identically to the pre-delta format.
				bases = nil
			}
			sp.objs = append(sp.objs, wire.ObjPages{Obj: obj, Pages: pagesAt[k], Bases: bases})
		}
		plans = append(plans, sp)
	}
	return plans, nil
}

// applyFetch installs the gathered pages, skipping any a concurrent
// transfer already brought to the mapped version, and returns pooled
// staging buffers. Deltas patch the resident copy in place; a delta whose
// base no longer matches (a concurrent transfer moved the copy to an
// intermediate version) is re-fetched as a full page — one bounded,
// base-free follow-up per page, so a fetch can never stall on a delta. It
// reports the pages and payload bytes moved, and the delta subset of both.
func (e *Engine) applyFetch(calls []transport.GroupCall, results []transport.GroupResult) (pages, bytes, deltaPages, deltaBytes int, err error) {
	type miss struct {
		src  ids.NodeID
		obj  ids.ObjectID
		page ids.PageNum
	}
	var misses []miss
	for i, r := range results {
		src := calls[i].To
		if r.Err != nil {
			return 0, 0, 0, 0, fmt.Errorf("fetch from %v: %w", src, r.Err)
		}
		resp, ok := r.Reply.(*wire.MultiFetchResp)
		if !ok {
			return 0, 0, 0, 0, fmt.Errorf("fetch from %v: unexpected reply %T", src, r.Reply)
		}
		for _, op := range resp.Objs {
			for _, pg := range op.Pages {
				pages++
				bytes += len(pg.Data)
				pid := ids.PageID{Object: op.Obj, Page: pg.Page}
				if v, ok := e.Store.PageVersion(pid); ok && v >= pg.Version {
					ReleasePage(pg.Data)
					continue
				}
				if err := e.Store.InstallPage(pid, pg.Data, pg.Version); err != nil {
					return 0, 0, 0, 0, fmt.Errorf("install %v: %w", pid, err)
				}
				ReleasePage(pg.Data)
			}
			for _, dp := range op.Deltas {
				pages++
				bytes += len(dp.Data)
				deltaPages++
				deltaBytes += len(dp.Data)
				pid := ids.PageID{Object: op.Obj, Page: dp.Page}
				if v, ok := e.Store.PageVersion(pid); ok && v >= dp.Version {
					ReleasePage(dp.Data)
					continue
				}
				applyErr := e.Store.ApplyDelta(pid, dp.Base, dp.Version, toStoreSpans(dp.Runs), dp.Data)
				ReleasePage(dp.Data)
				if applyErr == nil {
					continue
				}
				if !errors.Is(applyErr, pstore.ErrDeltaBase) {
					return 0, 0, 0, 0, fmt.Errorf("apply delta %v: %w", pid, applyErr)
				}
				misses = append(misses, miss{src: src, obj: op.Obj, page: dp.Page})
			}
		}
	}
	for _, ms := range misses {
		if e.Rec != nil {
			e.Rec.AddDeltaFallback()
		}
		pid := ids.PageID{Object: ms.obj, Page: ms.page}
		reply, callErr := e.Env.Call(ms.src, &wire.MultiFetchReq{Objs: []wire.ObjPages{{Obj: ms.obj, Pages: []ids.PageNum{ms.page}}}})
		if callErr != nil {
			return 0, 0, 0, 0, fmt.Errorf("refetch %v from %v: %w", pid, ms.src, callErr)
		}
		resp, ok := reply.(*wire.MultiFetchResp)
		if !ok {
			return 0, 0, 0, 0, fmt.Errorf("refetch %v from %v: unexpected reply %T", pid, ms.src, reply)
		}
		for _, op := range resp.Objs {
			for _, pg := range op.Pages {
				pages++
				bytes += len(pg.Data)
				rpid := ids.PageID{Object: op.Obj, Page: pg.Page}
				if v, ok := e.Store.PageVersion(rpid); ok && v >= pg.Version {
					ReleasePage(pg.Data)
					continue
				}
				if err := e.Store.InstallPage(rpid, pg.Data, pg.Version); err != nil {
					return 0, 0, 0, 0, fmt.Errorf("install %v: %w", rpid, err)
				}
				ReleasePage(pg.Data)
			}
		}
	}
	return pages, bytes, deltaPages, deltaBytes, nil
}

// Push runs the scatter direction of the pipeline (the §6 RC extension):
// look up the copy set of every dirty object — batched into one CopySetReq
// per GDO home site — stage each object's dirty pages once, batch the
// payloads by destination site across objects, and push each site's batch
// acknowledged under the concurrency bound. homeFn maps an object to its
// GDO home. With delta set (the protocol is delta-eligible and deltas are
// on), each page is staged as its newest journal epoch's dirty ranges when
// that beats the full page; a pushee not at the delta's base evicts its
// stale copy (see ApplyPush).
func (e *Engine) Push(objs []ids.ObjectID, dirty map[ids.ObjectID][]ids.PageNum, homeFn func(ids.ObjectID) ids.NodeID, delta bool) error {
	t0 := e.Env.Now()
	var withPages []ids.ObjectID
	for _, obj := range objs {
		if len(dirty[obj]) > 0 {
			withPages = append(withPages, obj)
		}
	}
	if len(withPages) == 0 {
		return nil
	}
	copySets, err := e.copySets(withPages, homeFn)
	if err != nil {
		return err
	}

	// Stage each dirty page once; the buffer is shared by every
	// destination's message and released only after the whole group
	// completes.
	var staged [][]byte
	defer func() {
		for _, buf := range staged {
			ReleasePage(buf)
		}
	}()
	delta = delta && !e.DeltaOff
	fullSize := wire.PagePayload{}.EncodedSize() + e.Store.PageSize()
	payloads := make(map[ids.ObjectID][]wire.PagePayload, len(withPages))
	deltas := make(map[ids.ObjectID][]wire.DeltaPage)
	for _, obj := range withPages {
		for _, p := range dirty[obj] {
			pid := ids.PageID{Object: obj, Page: p}
			buf := GetPage(e.Store.PageSize())
			if delta {
				// restampDirty sealed this commit's dirty ranges as the
				// newest epoch (version-1 → version) just before this push.
				if ver, ok := e.Store.PageVersion(pid); ok && ver > 0 {
					if runs, target, n, ok := e.Store.DeltaSince(pid, ver-1, buf); ok && target == ver {
						dp := wire.DeltaPage{Page: p, Base: ver - 1, Version: target, Runs: toWireSpans(runs), Data: buf[:n]}
						if dp.EncodedSize() < fullSize {
							staged = append(staged, buf)
							deltas[obj] = append(deltas[obj], dp)
							if e.Rec != nil {
								e.Rec.AddDelta(dp.EncodedSize(), fullSize-dp.EncodedSize())
							}
							continue
						}
					}
					if e.Rec != nil {
						e.Rec.AddDeltaFallback()
					}
				}
			}
			// restampDirty already advanced the version to what the GDO
			// will assign at the release that follows.
			ver, err := e.Store.PageCopyInto(pid, buf)
			if err != nil {
				ReleasePage(buf)
				return err
			}
			if delta && e.Rec != nil {
				e.Rec.AddFullPage(fullSize)
			}
			staged = append(staged, buf)
			payloads[obj] = append(payloads[obj], wire.PagePayload{Page: p, Version: ver, Data: buf})
		}
	}

	// Batch by destination site across objects (sites ascending, objects
	// in caller order — commitRoot passes them sorted).
	self := e.Env.Self()
	byDest := make(map[ids.NodeID][]wire.ObjPayload)
	var dests []ids.NodeID
	for _, obj := range withPages {
		for _, site := range copySets[obj] {
			if site == self {
				continue
			}
			if _, seen := byDest[site]; !seen {
				dests = append(dests, site)
			}
			byDest[site] = append(byDest[site], wire.ObjPayload{Obj: obj, Pages: payloads[obj], Deltas: deltas[obj]})
		}
	}
	if len(dests) == 0 {
		return nil
	}
	sort.Slice(dests, func(i, j int) bool { return dests[i] < dests[j] })
	calls := make([]transport.GroupCall, 0, len(dests))
	pages, bytes, deltaPages, deltaBytes := 0, 0, 0, 0
	for _, site := range dests {
		for _, op := range byDest[site] {
			pages += len(op.Pages) + len(op.Deltas)
			for _, pg := range op.Pages {
				bytes += len(pg.Data)
			}
			for _, dp := range op.Deltas {
				bytes += len(dp.Data)
				deltaPages++
				deltaBytes += len(dp.Data)
			}
		}
		calls = append(calls, transport.GroupCall{To: site, Msg: &wire.MultiPushReq{Objs: byDest[site]}})
	}
	t1 := e.Env.Now()

	results, span := transport.CallGroup(e.Env, calls, e.Concurrency)
	for i, r := range results {
		if r.Err != nil {
			return fmt.Errorf("push to %v: %w", calls[i].To, r.Err)
		}
	}
	if e.Rec != nil {
		e.Rec.AddTransfer(stats.TransferSample{
			Kind:       stats.TransferPush,
			Batches:    len(calls),
			Pages:      pages,
			Bytes:      bytes,
			DeltaPages: deltaPages,
			DeltaBytes: deltaBytes,
			Plan:       t1 - t0,
			Gather:     span,
			Apply:      0, // installs happen at the receiving sites
		})
	}
	return nil
}

// copySets fetches the caching sites of every object, one batched
// CopySetReq per GDO home site (homes ascending).
func (e *Engine) copySets(objs []ids.ObjectID, homeFn func(ids.ObjectID) ids.NodeID) (map[ids.ObjectID][]ids.NodeID, error) {
	byHome := make(map[ids.NodeID][]ids.ObjectID)
	var homes []ids.NodeID
	for _, obj := range objs {
		home := homeFn(obj)
		if _, seen := byHome[home]; !seen {
			homes = append(homes, home)
		}
		byHome[home] = append(byHome[home], obj)
	}
	sort.Slice(homes, func(i, j int) bool { return homes[i] < homes[j] })
	out := make(map[ids.ObjectID][]ids.NodeID, len(objs))
	for _, home := range homes {
		reply, err := e.Env.Call(home, &wire.CopySetReq{Objs: byHome[home]})
		if err != nil {
			return nil, err
		}
		cs, ok := reply.(*wire.CopySetResp)
		if !ok {
			return nil, fmt.Errorf("copyset from %v: unexpected reply %T", home, reply)
		}
		for _, set := range cs.Sets {
			out[set.Obj] = set.Sites
		}
	}
	return out, nil
}
