// Package schema models the object classes of a LOTEC system and the
// compile-time artifacts the paper's compiler produces (§3.5, §4.1):
//
//   - attribute declarations and the compiler-chosen in-memory layout
//     ("the compiler must … know where, in an object's representation in
//     memory, each attribute is stored"),
//   - per-method conservative read/write attribute sets ("attribute access
//     analysis … performed in a conservative fashion"), and
//   - the mapping from attribute sets to page sets that gives LOTEC its
//     per-method predicted page sets ("Determining which pages will be
//     updated is then simply a matter of mapping attributes to memory
//     pages").
//
// Go has no compiler hook for intercepting field accesses, so classes are
// declared through this package's builder and the runtime enforces that a
// method's actual accesses stay inside its declared sets — the same
// conservative guarantee the paper's compiler provides (see DESIGN.md §3).
package schema

import (
	"errors"
	"fmt"
	"sort"

	"lotec/internal/ids"
)

// AttrID identifies an attribute within a class.
type AttrID int32

// Common schema errors.
var (
	ErrUnknownAttr   = errors.New("schema: unknown attribute")
	ErrUnknownMethod = errors.New("schema: unknown method")
	ErrUnknownClass  = errors.New("schema: unknown class")
	ErrDuplicateName = errors.New("schema: duplicate name")
)

// Attribute is one declared data member of a class.
type Attribute struct {
	ID   AttrID
	Name string
	Size int // bytes
}

// Method is one declared operation of a class, with the conservative access
// sets the paper's compiler would derive by attribute access analysis.
type Method struct {
	ID    ids.MethodID
	Name  string
	Reads []AttrID // attributes the method may read (excluding Writes)
	// Writes holds attributes the method may update. Written attributes are
	// implicitly also readable (read-modify-write is the common case).
	Writes []AttrID
	// Invokes lists the classes of objects this method may invoke methods
	// on, if declared; used by workload generation and by the optimistic
	// pre-acquisition extension discussed in §6 of the paper. May be empty.
	Invokes []ids.ClassID
}

// Class is a fully built object class: attributes, methods and name indexes.
// Build one with NewClassBuilder; a built Class is immutable and safe for
// concurrent use.
type Class struct {
	ID   ids.ClassID
	Name string

	attrs        []Attribute
	attrByName   map[string]AttrID
	methods      []Method
	methodByName map[string]ids.MethodID
}

// Attrs returns the class's attributes in declaration order. The returned
// slice is shared; callers must not modify it.
func (c *Class) Attrs() []Attribute { return c.attrs }

// Methods returns the class's methods in declaration order. The returned
// slice is shared; callers must not modify it.
func (c *Class) Methods() []Method { return c.methods }

// AttrByName looks up an attribute by name.
func (c *Class) AttrByName(name string) (Attribute, error) {
	id, ok := c.attrByName[name]
	if !ok {
		return Attribute{}, fmt.Errorf("%w: %s.%s", ErrUnknownAttr, c.Name, name)
	}
	return c.attrs[id], nil
}

// Attr returns the attribute with the given ID.
func (c *Class) Attr(id AttrID) (Attribute, error) {
	if int(id) < 0 || int(id) >= len(c.attrs) {
		return Attribute{}, fmt.Errorf("%w: %s attr #%d", ErrUnknownAttr, c.Name, id)
	}
	return c.attrs[id], nil
}

// MethodByName looks up a method by name.
func (c *Class) MethodByName(name string) (Method, error) {
	id, ok := c.methodByName[name]
	if !ok {
		return Method{}, fmt.Errorf("%w: %s.%s", ErrUnknownMethod, c.Name, name)
	}
	return c.methods[id], nil
}

// Method returns the method with the given ID.
func (c *Class) Method(id ids.MethodID) (Method, error) {
	if int(id) < 0 || int(id) >= len(c.methods) {
		return Method{}, fmt.Errorf("%w: %s method #%d", ErrUnknownMethod, c.Name, id)
	}
	return c.methods[id], nil
}

// ClassBuilder assembles a Class incrementally. Builders are not safe for
// concurrent use.
type ClassBuilder struct {
	class *Class
	err   error
}

// NewClassBuilder starts building a class with the given ID and name.
func NewClassBuilder(id ids.ClassID, name string) *ClassBuilder {
	return &ClassBuilder{class: &Class{
		ID:           id,
		Name:         name,
		attrByName:   make(map[string]AttrID),
		methodByName: make(map[string]ids.MethodID),
	}}
}

// Attr declares an attribute of size bytes and returns the builder.
func (b *ClassBuilder) Attr(name string, size int) *ClassBuilder {
	if b.err != nil {
		return b
	}
	if size <= 0 {
		b.err = fmt.Errorf("schema: attribute %s.%s: size %d must be positive", b.class.Name, name, size)
		return b
	}
	if _, dup := b.class.attrByName[name]; dup {
		b.err = fmt.Errorf("%w: attribute %s.%s", ErrDuplicateName, b.class.Name, name)
		return b
	}
	id := AttrID(len(b.class.attrs))
	b.class.attrs = append(b.class.attrs, Attribute{ID: id, Name: name, Size: size})
	b.class.attrByName[name] = id
	return b
}

// MethodSpec describes a method being declared on a builder.
type MethodSpec struct {
	Name    string
	Reads   []string // attribute names the method may read
	Writes  []string // attribute names the method may update
	Invokes []ids.ClassID
}

// Method declares a method from a spec and returns the builder.
func (b *ClassBuilder) Method(spec MethodSpec) *ClassBuilder {
	if b.err != nil {
		return b
	}
	if _, dup := b.class.methodByName[spec.Name]; dup {
		b.err = fmt.Errorf("%w: method %s.%s", ErrDuplicateName, b.class.Name, spec.Name)
		return b
	}
	resolve := func(names []string) ([]AttrID, error) {
		out := make([]AttrID, 0, len(names))
		seen := make(map[AttrID]bool, len(names))
		for _, n := range names {
			id, ok := b.class.attrByName[n]
			if !ok {
				return nil, fmt.Errorf("%w: %s.%s in method %s", ErrUnknownAttr, b.class.Name, n, spec.Name)
			}
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
		return out, nil
	}
	reads, err := resolve(spec.Reads)
	if err != nil {
		b.err = err
		return b
	}
	writes, err := resolve(spec.Writes)
	if err != nil {
		b.err = err
		return b
	}
	id := ids.MethodID(len(b.class.methods))
	b.class.methods = append(b.class.methods, Method{
		ID:      id,
		Name:    spec.Name,
		Reads:   reads,
		Writes:  writes,
		Invokes: append([]ids.ClassID(nil), spec.Invokes...),
	})
	b.class.methodByName[spec.Name] = id
	return b
}

// Build finalizes the class. It fails if any prior builder call failed or if
// the class has no attributes.
func (b *ClassBuilder) Build() (*Class, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.class.attrs) == 0 {
		return nil, fmt.Errorf("schema: class %s has no attributes", b.class.Name)
	}
	return b.class, nil
}

// Registry holds all built classes and their layouts for one system.
// A filled Registry is immutable and safe for concurrent use.
type Registry struct {
	pageSize int
	classes  map[ids.ClassID]*Class
	layouts  map[ids.ClassID]*Layout
	byName   map[string]ids.ClassID
}

// NewRegistry returns an empty registry that lays classes out on pages of
// pageSize bytes (0 selects pstore's default page size of 4096).
func NewRegistry(pageSize int) *Registry {
	if pageSize <= 0 {
		pageSize = 4096
	}
	return &Registry{
		pageSize: pageSize,
		classes:  make(map[ids.ClassID]*Class),
		layouts:  make(map[ids.ClassID]*Layout),
		byName:   make(map[string]ids.ClassID),
	}
}

// PageSize returns the layout page size.
func (r *Registry) PageSize() int { return r.pageSize }

// Add builds the class's layout and registers it.
func (r *Registry) Add(c *Class) error {
	if _, dup := r.classes[c.ID]; dup {
		return fmt.Errorf("%w: class id %d", ErrDuplicateName, c.ID)
	}
	if _, dup := r.byName[c.Name]; dup {
		return fmt.Errorf("%w: class %s", ErrDuplicateName, c.Name)
	}
	l, err := NewLayout(c, r.pageSize)
	if err != nil {
		return fmt.Errorf("layout %s: %w", c.Name, err)
	}
	r.classes[c.ID] = c
	r.layouts[c.ID] = l
	r.byName[c.Name] = c.ID
	return nil
}

// Class returns a registered class.
func (r *Registry) Class(id ids.ClassID) (*Class, error) {
	c, ok := r.classes[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrUnknownClass, id)
	}
	return c, nil
}

// ClassByName returns a registered class by name.
func (r *Registry) ClassByName(name string) (*Class, error) {
	id, ok := r.byName[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownClass, name)
	}
	return r.classes[id], nil
}

// Layout returns the layout of a registered class.
func (r *Registry) Layout(id ids.ClassID) (*Layout, error) {
	l, ok := r.layouts[id]
	if !ok {
		return nil, fmt.Errorf("%w: id %d", ErrUnknownClass, id)
	}
	return l, nil
}

// Classes returns all registered class IDs in ascending order.
func (r *Registry) Classes() []ids.ClassID {
	out := make([]ids.ClassID, 0, len(r.classes))
	for id := range r.classes {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
