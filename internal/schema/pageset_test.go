package schema

import (
	"testing"
	"testing/quick"

	"lotec/internal/ids"
)

func toSet(raw []uint8) PageSet {
	ps := make([]ids.PageNum, 0, len(raw))
	for _, r := range raw {
		ps = append(ps, ids.PageNum(r%32))
	}
	return NewPageSet(ps...)
}

func TestNewPageSetSortsAndDedupes(t *testing.T) {
	ps := NewPageSet(3, 1, 3, 2, 1)
	if !ps.Equal(PageSet{1, 2, 3}) {
		t.Errorf("NewPageSet = %v, want [1 2 3]", ps)
	}
	if NewPageSet() != nil {
		t.Error("empty NewPageSet should be nil")
	}
}

func TestPageSetContains(t *testing.T) {
	ps := NewPageSet(1, 4, 9)
	for _, p := range []ids.PageNum{1, 4, 9} {
		if !ps.Contains(p) {
			t.Errorf("Contains(%d) = false", p)
		}
	}
	for _, p := range []ids.PageNum{0, 2, 10} {
		if ps.Contains(p) {
			t.Errorf("Contains(%d) = true", p)
		}
	}
	if PageSet(nil).Contains(0) {
		t.Error("nil set Contains(0) = true")
	}
}

func TestPageSetOps(t *testing.T) {
	a := NewPageSet(1, 2, 3)
	b := NewPageSet(3, 4)
	if got := a.Union(b); !got.Equal(NewPageSet(1, 2, 3, 4)) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(NewPageSet(3)) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Minus(b); !got.Equal(NewPageSet(1, 2)) {
		t.Errorf("Minus = %v", got)
	}
	if !NewPageSet(1, 3).SubsetOf(a) {
		t.Error("SubsetOf = false, want true")
	}
	if NewPageSet(1, 5).SubsetOf(a) {
		t.Error("SubsetOf = true, want false")
	}
}

func TestPageSetOpsWithEmpty(t *testing.T) {
	a := NewPageSet(1, 2)
	var empty PageSet
	if got := a.Union(empty); !got.Equal(a) {
		t.Errorf("a ∪ ∅ = %v", got)
	}
	if got := empty.Union(a); !got.Equal(a) {
		t.Errorf("∅ ∪ a = %v", got)
	}
	if got := a.Intersect(empty); len(got) != 0 {
		t.Errorf("a ∩ ∅ = %v", got)
	}
	if got := empty.Minus(a); len(got) != 0 {
		t.Errorf("∅ \\ a = %v", got)
	}
	if got := a.Minus(empty); !got.Equal(a) {
		t.Errorf("a \\ ∅ = %v", got)
	}
	if !empty.SubsetOf(a) || !empty.SubsetOf(empty) {
		t.Error("∅ must be subset of everything")
	}
	if !empty.Equal(nil) {
		t.Error("empty sets must be Equal")
	}
}

func TestPageSetUnionDoesNotAliasInputs(t *testing.T) {
	a := NewPageSet(1, 2)
	b := PageSet(nil)
	u := a.Union(b)
	u[0] = 99
	if a[0] != 1 {
		t.Error("Union aliased its input")
	}
}

func TestPageSetPropertyUnionCommutes(t *testing.T) {
	f := func(x, y []uint8) bool {
		a, b := toSet(x), toSet(y)
		return a.Union(b).Equal(b.Union(a))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPageSetPropertyIntersectSubset(t *testing.T) {
	f := func(x, y []uint8) bool {
		a, b := toSet(x), toSet(y)
		i := a.Intersect(b)
		return i.SubsetOf(a) && i.SubsetOf(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPageSetPropertyMinusDisjoint(t *testing.T) {
	f := func(x, y []uint8) bool {
		a, b := toSet(x), toSet(y)
		m := a.Minus(b)
		if len(m.Intersect(b)) != 0 {
			return false
		}
		// m ∪ (a ∩ b) == a
		return m.Union(a.Intersect(b)).Equal(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPageSetPropertySortedDeduped(t *testing.T) {
	f := func(x []uint8) bool {
		s := toSet(x)
		for i := 1; i < len(s); i++ {
			if s[i-1] >= s[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
