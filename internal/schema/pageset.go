package schema

import (
	"sort"

	"lotec/internal/ids"
)

// PageSet is a sorted, duplicate-free set of page numbers within one object.
// The zero value (nil) is the empty set. PageSets are treated as immutable:
// every operation returns a fresh set.
type PageSet []ids.PageNum

// NewPageSet builds a PageSet from arbitrary page numbers, sorting and
// deduplicating them.
func NewPageSet(pages ...ids.PageNum) PageSet {
	if len(pages) == 0 {
		return nil
	}
	out := append(PageSet(nil), pages...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// Contains reports whether p is in the set.
func (s PageSet) Contains(p ids.PageNum) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= p })
	return i < len(s) && s[i] == p
}

// Union returns s ∪ t.
func (s PageSet) Union(t PageSet) PageSet {
	if len(s) == 0 {
		return append(PageSet(nil), t...)
	}
	if len(t) == 0 {
		return append(PageSet(nil), s...)
	}
	out := make(PageSet, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			out = append(out, s[i])
			i++
		case s[i] > t[j]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	out = append(out, s[i:]...)
	out = append(out, t[j:]...)
	return out
}

// Intersect returns s ∩ t.
func (s PageSet) Intersect(t PageSet) PageSet {
	var out PageSet
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] < t[j]:
			i++
		case s[i] > t[j]:
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Minus returns s \ t.
func (s PageSet) Minus(t PageSet) PageSet {
	var out PageSet
	j := 0
	for _, p := range s {
		for j < len(t) && t[j] < p {
			j++
		}
		if j < len(t) && t[j] == p {
			continue
		}
		out = append(out, p)
	}
	return out
}

// SubsetOf reports whether every page of s is in t.
func (s PageSet) SubsetOf(t PageSet) bool {
	j := 0
	for _, p := range s {
		for j < len(t) && t[j] < p {
			j++
		}
		if j >= len(t) || t[j] != p {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain the same pages.
func (s PageSet) Equal(t PageSet) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}
