package schema

import (
	"fmt"

	"lotec/internal/ids"
)

// Layout is the compiler-chosen in-memory representation of a class:
// a byte offset for each attribute, packed sequentially in declaration
// order, plus the derived attribute→page and method→page maps that LOTEC's
// prediction consumes (§4.1 of the paper).
//
// A Layout is immutable and safe for concurrent use.
type Layout struct {
	class    *Class
	pageSize int
	offsets  []int // byte offset per AttrID
	size     int   // object extent in bytes (numPages * pageSize)
	numPages int

	attrPages  []PageSet // per AttrID: pages covering the attribute
	readPages  []PageSet // per MethodID: predicted accessed pages (reads ∪ writes)
	writePages []PageSet // per MethodID: predicted updated pages (writes only)
}

// NewLayout packs the class's attributes sequentially on pages of pageSize
// bytes and precomputes all prediction sets.
func NewLayout(c *Class, pageSize int) (*Layout, error) {
	if pageSize <= 0 {
		return nil, fmt.Errorf("schema: page size %d must be positive", pageSize)
	}
	l := &Layout{class: c, pageSize: pageSize}
	l.offsets = make([]int, len(c.attrs))
	off := 0
	for i, a := range c.attrs {
		l.offsets[i] = off
		off += a.Size
	}
	l.numPages = (off + pageSize - 1) / pageSize
	if l.numPages == 0 {
		l.numPages = 1
	}
	l.size = l.numPages * pageSize

	l.attrPages = make([]PageSet, len(c.attrs))
	for i, a := range c.attrs {
		l.attrPages[i] = pagesCovering(l.offsets[i], a.Size, pageSize)
	}
	l.readPages = make([]PageSet, len(c.methods))
	l.writePages = make([]PageSet, len(c.methods))
	for i, m := range c.methods {
		var rd, wr PageSet
		for _, a := range m.Writes {
			wr = wr.Union(l.attrPages[a])
		}
		rd = wr // written attributes are implicitly readable
		for _, a := range m.Reads {
			rd = rd.Union(l.attrPages[a])
		}
		l.readPages[i] = rd
		l.writePages[i] = wr
	}
	return l, nil
}

// pagesCovering returns the pages overlapped by [off, off+size).
func pagesCovering(off, size, pageSize int) PageSet {
	if size <= 0 {
		return nil
	}
	first := off / pageSize
	last := (off + size - 1) / pageSize
	ps := make(PageSet, 0, last-first+1)
	for p := first; p <= last; p++ {
		ps = append(ps, ids.PageNum(p))
	}
	return ps
}

// Class returns the class this layout describes.
func (l *Layout) Class() *Class { return l.class }

// PageSize returns the layout's page size in bytes.
func (l *Layout) PageSize() int { return l.pageSize }

// NumPages returns the object extent in pages.
func (l *Layout) NumPages() int { return l.numPages }

// Size returns the object extent in bytes.
func (l *Layout) Size() int { return l.size }

// AttrOffset returns the byte offset of an attribute within the object.
func (l *Layout) AttrOffset(a AttrID) (int, error) {
	if int(a) < 0 || int(a) >= len(l.offsets) {
		return 0, fmt.Errorf("%w: %s attr #%d", ErrUnknownAttr, l.class.Name, a)
	}
	return l.offsets[a], nil
}

// AttrPages returns the pages an attribute occupies.
func (l *Layout) AttrPages(a AttrID) (PageSet, error) {
	if int(a) < 0 || int(a) >= len(l.attrPages) {
		return nil, fmt.Errorf("%w: %s attr #%d", ErrUnknownAttr, l.class.Name, a)
	}
	return l.attrPages[a], nil
}

// MethodReadPages returns the conservative set of pages the method may
// access (reads ∪ writes). This is the "predicted to be needed" set LOTEC
// transfers at lock acquisition.
func (l *Layout) MethodReadPages(m ids.MethodID) (PageSet, error) {
	if int(m) < 0 || int(m) >= len(l.readPages) {
		return nil, fmt.Errorf("%w: %s method #%d", ErrUnknownMethod, l.class.Name, m)
	}
	return l.readPages[m], nil
}

// MethodWritePages returns the conservative set of pages the method may
// update ("the set of potentially updated pages" of §4.1).
func (l *Layout) MethodWritePages(m ids.MethodID) (PageSet, error) {
	if int(m) < 0 || int(m) >= len(l.writePages) {
		return nil, fmt.Errorf("%w: %s method #%d", ErrUnknownMethod, l.class.Name, m)
	}
	return l.writePages[m], nil
}

// AllPages returns the full page set of the object (what COTEC transfers).
func (l *Layout) AllPages() PageSet {
	ps := make(PageSet, l.numPages)
	for i := range ps {
		ps[i] = ids.PageNum(i)
	}
	return ps
}
