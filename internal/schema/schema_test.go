package schema

import (
	"errors"
	"testing"

	"lotec/internal/ids"
)

func buildAccountClass(t *testing.T) *Class {
	t.Helper()
	c, err := NewClassBuilder(1, "Account").
		Attr("balance", 8).
		Attr("owner", 24).
		Attr("history", 100).
		Method(MethodSpec{Name: "deposit", Reads: []string{"owner"}, Writes: []string{"balance", "history"}}).
		Method(MethodSpec{Name: "peek", Reads: []string{"balance"}}).
		Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return c
}

func TestClassBuilderHappyPath(t *testing.T) {
	c := buildAccountClass(t)
	if c.Name != "Account" || c.ID != 1 {
		t.Errorf("class identity wrong: %+v", c)
	}
	if len(c.Attrs()) != 3 || len(c.Methods()) != 2 {
		t.Fatalf("got %d attrs, %d methods", len(c.Attrs()), len(c.Methods()))
	}
	a, err := c.AttrByName("owner")
	if err != nil || a.Size != 24 || a.ID != 1 {
		t.Errorf("AttrByName(owner) = %+v, %v", a, err)
	}
	m, err := c.MethodByName("deposit")
	if err != nil {
		t.Fatalf("MethodByName: %v", err)
	}
	if len(m.Reads) != 1 || len(m.Writes) != 2 {
		t.Errorf("deposit access sets = R%v W%v", m.Reads, m.Writes)
	}
}

func TestClassBuilderErrors(t *testing.T) {
	tests := []struct {
		name  string
		build func() (*Class, error)
	}{
		{"zero-size attr", func() (*Class, error) {
			return NewClassBuilder(1, "C").Attr("a", 0).Build()
		}},
		{"duplicate attr", func() (*Class, error) {
			return NewClassBuilder(1, "C").Attr("a", 1).Attr("a", 1).Build()
		}},
		{"duplicate method", func() (*Class, error) {
			return NewClassBuilder(1, "C").Attr("a", 1).
				Method(MethodSpec{Name: "m"}).Method(MethodSpec{Name: "m"}).Build()
		}},
		{"unknown read attr", func() (*Class, error) {
			return NewClassBuilder(1, "C").Attr("a", 1).
				Method(MethodSpec{Name: "m", Reads: []string{"nope"}}).Build()
		}},
		{"unknown write attr", func() (*Class, error) {
			return NewClassBuilder(1, "C").Attr("a", 1).
				Method(MethodSpec{Name: "m", Writes: []string{"nope"}}).Build()
		}},
		{"no attributes", func() (*Class, error) {
			return NewClassBuilder(1, "C").Build()
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := tt.build(); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestClassLookupErrors(t *testing.T) {
	c := buildAccountClass(t)
	if _, err := c.AttrByName("zzz"); !errors.Is(err, ErrUnknownAttr) {
		t.Errorf("AttrByName: %v", err)
	}
	if _, err := c.Attr(99); !errors.Is(err, ErrUnknownAttr) {
		t.Errorf("Attr(99): %v", err)
	}
	if _, err := c.MethodByName("zzz"); !errors.Is(err, ErrUnknownMethod) {
		t.Errorf("MethodByName: %v", err)
	}
	if _, err := c.Method(99); !errors.Is(err, ErrUnknownMethod) {
		t.Errorf("Method(99): %v", err)
	}
}

func TestMethodAccessSetDeduplication(t *testing.T) {
	c, err := NewClassBuilder(1, "C").Attr("a", 4).
		Method(MethodSpec{Name: "m", Reads: []string{"a", "a"}, Writes: []string{"a", "a"}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	m := c.Methods()[0]
	if len(m.Reads) != 1 || len(m.Writes) != 1 {
		t.Errorf("duplicate names not deduped: R%v W%v", m.Reads, m.Writes)
	}
}

func TestLayoutSequentialPacking(t *testing.T) {
	c := buildAccountClass(t)
	l, err := NewLayout(c, 64)
	if err != nil {
		t.Fatal(err)
	}
	// balance@0(8), owner@8(24), history@32(100) → 132 bytes → 3 pages of 64.
	wantOffsets := []int{0, 8, 32}
	for i, want := range wantOffsets {
		got, err := l.AttrOffset(AttrID(i))
		if err != nil || got != want {
			t.Errorf("AttrOffset(%d) = %d,%v, want %d", i, got, err, want)
		}
	}
	if l.NumPages() != 3 {
		t.Errorf("NumPages = %d, want 3", l.NumPages())
	}
	if l.Size() != 192 {
		t.Errorf("Size = %d, want 192", l.Size())
	}
}

func TestLayoutAttrPages(t *testing.T) {
	c := buildAccountClass(t)
	l, err := NewLayout(c, 64)
	if err != nil {
		t.Fatal(err)
	}
	// history spans [32,132) → pages 0,1,2.
	hist, _ := c.AttrByName("history")
	ps, err := l.AttrPages(hist.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !ps.Equal(NewPageSet(0, 1, 2)) {
		t.Errorf("history pages = %v, want [0 1 2]", ps)
	}
	bal, _ := c.AttrByName("balance")
	ps, _ = l.AttrPages(bal.ID)
	if !ps.Equal(NewPageSet(0)) {
		t.Errorf("balance pages = %v, want [0]", ps)
	}
}

func TestLayoutMethodPrediction(t *testing.T) {
	c := buildAccountClass(t)
	l, err := NewLayout(c, 64)
	if err != nil {
		t.Fatal(err)
	}
	dep, _ := c.MethodByName("deposit")
	wr, err := l.MethodWritePages(dep.ID)
	if err != nil {
		t.Fatal(err)
	}
	// deposit writes balance (p0) + history (p0,1,2) → all three pages.
	if !wr.Equal(NewPageSet(0, 1, 2)) {
		t.Errorf("deposit write pages = %v", wr)
	}
	rd, _ := l.MethodReadPages(dep.ID)
	if !wr.SubsetOf(rd) {
		t.Error("write pages must be subset of read (accessed) pages")
	}
	peek, _ := c.MethodByName("peek")
	pw, _ := l.MethodWritePages(peek.ID)
	if len(pw) != 0 {
		t.Errorf("peek write pages = %v, want empty", pw)
	}
	pr, _ := l.MethodReadPages(peek.ID)
	if !pr.Equal(NewPageSet(0)) {
		t.Errorf("peek read pages = %v, want [0]", pr)
	}
}

func TestLayoutMinimumOnePage(t *testing.T) {
	c, err := NewClassBuilder(2, "Tiny").Attr("x", 1).Build()
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLayout(c, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumPages() != 1 {
		t.Errorf("NumPages = %d, want 1", l.NumPages())
	}
	if !l.AllPages().Equal(NewPageSet(0)) {
		t.Errorf("AllPages = %v", l.AllPages())
	}
}

func TestLayoutBadInputs(t *testing.T) {
	c := buildAccountClass(t)
	if _, err := NewLayout(c, 0); err == nil {
		t.Error("zero page size should fail")
	}
	l, _ := NewLayout(c, 64)
	if _, err := l.AttrOffset(99); !errors.Is(err, ErrUnknownAttr) {
		t.Errorf("AttrOffset(99): %v", err)
	}
	if _, err := l.AttrPages(99); !errors.Is(err, ErrUnknownAttr) {
		t.Errorf("AttrPages(99): %v", err)
	}
	if _, err := l.MethodReadPages(99); !errors.Is(err, ErrUnknownMethod) {
		t.Errorf("MethodReadPages(99): %v", err)
	}
	if _, err := l.MethodWritePages(99); !errors.Is(err, ErrUnknownMethod) {
		t.Errorf("MethodWritePages(99): %v", err)
	}
}

func TestRegistry(t *testing.T) {
	r := NewRegistry(64)
	if r.PageSize() != 64 {
		t.Errorf("PageSize = %d", r.PageSize())
	}
	c := buildAccountClass(t)
	if err := r.Add(c); err != nil {
		t.Fatalf("Add: %v", err)
	}
	if err := r.Add(c); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("duplicate Add: %v", err)
	}
	got, err := r.Class(1)
	if err != nil || got != c {
		t.Errorf("Class(1) = %v, %v", got, err)
	}
	if _, err := r.Class(9); !errors.Is(err, ErrUnknownClass) {
		t.Errorf("Class(9): %v", err)
	}
	byName, err := r.ClassByName("Account")
	if err != nil || byName != c {
		t.Errorf("ClassByName = %v, %v", byName, err)
	}
	if _, err := r.ClassByName("Nope"); !errors.Is(err, ErrUnknownClass) {
		t.Errorf("ClassByName(Nope): %v", err)
	}
	l, err := r.Layout(1)
	if err != nil || l.NumPages() != 3 {
		t.Errorf("Layout(1) = %v, %v", l, err)
	}
	if _, err := r.Layout(9); !errors.Is(err, ErrUnknownClass) {
		t.Errorf("Layout(9): %v", err)
	}
	if cs := r.Classes(); len(cs) != 1 || cs[0] != 1 {
		t.Errorf("Classes = %v", cs)
	}
}

func TestRegistryDefaultPageSize(t *testing.T) {
	if got := NewRegistry(0).PageSize(); got != 4096 {
		t.Errorf("default page size = %d, want 4096", got)
	}
}

func TestRegistryRejectsDuplicateClassName(t *testing.T) {
	r := NewRegistry(64)
	c1, _ := NewClassBuilder(1, "Same").Attr("a", 1).Build()
	c2, _ := NewClassBuilder(2, "Same").Attr("a", 1).Build()
	if err := r.Add(c1); err != nil {
		t.Fatal(err)
	}
	if err := r.Add(c2); !errors.Is(err, ErrDuplicateName) {
		t.Errorf("duplicate name Add: %v", err)
	}
}

func TestMethodInvokesCopied(t *testing.T) {
	invokes := []ids.ClassID{7, 8}
	c, err := NewClassBuilder(1, "C").Attr("a", 1).
		Method(MethodSpec{Name: "m", Invokes: invokes}).Build()
	if err != nil {
		t.Fatal(err)
	}
	invokes[0] = 99
	if c.Methods()[0].Invokes[0] != 7 {
		t.Error("Invokes slice aliased caller's memory")
	}
}
