// Package ids defines the identifier types shared by every LOTEC subsystem:
// node, object, page, class, method and transaction identifiers, plus the
// ⟨transaction, node⟩ reference pairs the paper's GDO entry stores in its
// holder and non-holder lists (Figure 1 of the paper).
package ids

import (
	"fmt"
	"sync/atomic"
)

// NodeID identifies a site (processor/node) in the distributed system.
// NodeID 0 is reserved to mean "no node"; real nodes start at 1.
type NodeID int32

// NoNode is the zero NodeID, meaning "no node" (e.g. an unmapped page).
const NoNode NodeID = 0

// String implements fmt.Stringer.
func (n NodeID) String() string {
	if n == NoNode {
		return "node(-)"
	}
	return fmt.Sprintf("node(%d)", int32(n))
}

// ObjectID identifies a shared object registered in the GDO.
type ObjectID int64

// String implements fmt.Stringer.
func (o ObjectID) String() string { return fmt.Sprintf("O%d", int64(o)) }

// ClassID identifies an object class (schema).
type ClassID int32

// MethodID identifies a method within a class.
type MethodID int32

// PageNum is the index of a page within an object (0-based).
type PageNum int32

// PageID globally identifies one page of one object. LOTEC is object-based:
// pages are addressed per object, never as raw memory addresses, which is
// what makes false sharing structurally impossible (§4.2 of the paper).
type PageID struct {
	Object ObjectID
	Page   PageNum
}

// String implements fmt.Stringer.
func (p PageID) String() string { return fmt.Sprintf("%v/p%d", p.Object, int32(p.Page)) }

// TxID identifies a single [sub-]transaction. TxIDs are unique across the
// whole system for the lifetime of a run.
type TxID uint64

// NoTx is the zero TxID, meaning "no transaction".
const NoTx TxID = 0

// String implements fmt.Stringer.
func (t TxID) String() string {
	if t == NoTx {
		return "tx(-)"
	}
	return fmt.Sprintf("tx(%d)", uint64(t))
}

// FamilyID identifies a transaction family: the TxID of the root transaction.
// All descendants of one root share its FamilyID (§3.1 of the paper).
type FamilyID = TxID

// TxRef is the ⟨transaction id, node id⟩ pair stored in GDO holder and
// non-holder lists (Figure 1 of the paper).
type TxRef struct {
	Tx   TxID
	Node NodeID
}

// String implements fmt.Stringer.
func (r TxRef) String() string { return fmt.Sprintf("<%v,%v>", r.Tx, r.Node) }

// TxIDGenerator hands out system-wide unique transaction identifiers.
// The zero value is ready to use; the first ID issued is 1 so that NoTx
// is never handed out.
type TxIDGenerator struct {
	last atomic.Uint64
}

// Next returns the next unused TxID.
func (g *TxIDGenerator) Next() TxID { return TxID(g.last.Add(1)) }

// Seed moves the generator to start issuing IDs above base. It is used to
// give each node of a distributed deployment a disjoint TxID namespace
// (e.g. base = nodeID << 40) and must be called before any Next.
func (g *TxIDGenerator) Seed(base uint64) { g.last.Store(base) }

// ObjectIDGenerator hands out unique object identifiers, starting at 0
// to match the paper's O0…On object naming in its figures.
type ObjectIDGenerator struct {
	next atomic.Int64
}

// Next returns the next unused ObjectID (0, 1, 2, …).
func (g *ObjectIDGenerator) Next() ObjectID { return ObjectID(g.next.Add(1) - 1) }
