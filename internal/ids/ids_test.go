package ids

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNodeIDString(t *testing.T) {
	if got := NoNode.String(); got != "node(-)" {
		t.Errorf("NoNode.String() = %q, want node(-)", got)
	}
	if got := NodeID(3).String(); got != "node(3)" {
		t.Errorf("NodeID(3).String() = %q, want node(3)", got)
	}
}

func TestObjectIDString(t *testing.T) {
	if got := ObjectID(17).String(); got != "O17" {
		t.Errorf("ObjectID(17).String() = %q, want O17", got)
	}
}

func TestPageIDString(t *testing.T) {
	p := PageID{Object: 4, Page: 2}
	if got := p.String(); got != "O4/p2" {
		t.Errorf("PageID.String() = %q, want O4/p2", got)
	}
}

func TestTxIDString(t *testing.T) {
	if got := NoTx.String(); got != "tx(-)" {
		t.Errorf("NoTx.String() = %q", got)
	}
	if got := TxID(9).String(); got != "tx(9)" {
		t.Errorf("TxID(9).String() = %q", got)
	}
}

func TestTxRefString(t *testing.T) {
	r := TxRef{Tx: 5, Node: 2}
	if got := r.String(); got != "<tx(5),node(2)>" {
		t.Errorf("TxRef.String() = %q", got)
	}
}

func TestTxIDGeneratorNeverIssuesNoTx(t *testing.T) {
	var g TxIDGenerator
	for i := 0; i < 100; i++ {
		if id := g.Next(); id == NoTx {
			t.Fatalf("generator issued NoTx at step %d", i)
		}
	}
}

func TestTxIDGeneratorSequential(t *testing.T) {
	var g TxIDGenerator
	for want := TxID(1); want <= 10; want++ {
		if got := g.Next(); got != want {
			t.Fatalf("Next() = %v, want %v", got, want)
		}
	}
}

func TestTxIDGeneratorConcurrentUnique(t *testing.T) {
	var g TxIDGenerator
	const workers, perWorker = 8, 1000
	var mu sync.Mutex
	seen := make(map[TxID]bool, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := make([]TxID, 0, perWorker)
			for i := 0; i < perWorker; i++ {
				local = append(local, g.Next())
			}
			mu.Lock()
			defer mu.Unlock()
			for _, id := range local {
				if seen[id] {
					t.Errorf("duplicate TxID %v", id)
				}
				seen[id] = true
			}
		}()
	}
	wg.Wait()
	if len(seen) != workers*perWorker {
		t.Fatalf("got %d unique ids, want %d", len(seen), workers*perWorker)
	}
}

func TestObjectIDGeneratorStartsAtZero(t *testing.T) {
	var g ObjectIDGenerator
	for want := ObjectID(0); want < 5; want++ {
		if got := g.Next(); got != want {
			t.Fatalf("Next() = %v, want %v", got, want)
		}
	}
}

func TestPageIDEqualityProperty(t *testing.T) {
	// PageID must be usable as a map key with value semantics.
	f := func(o int64, p int32) bool {
		a := PageID{Object: ObjectID(o), Page: PageNum(p)}
		b := PageID{Object: ObjectID(o), Page: PageNum(p)}
		m := map[PageID]int{a: 1}
		return a == b && m[b] == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
