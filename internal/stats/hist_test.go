package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Error("empty histogram not zero-valued")
	}
	for _, v := range []int64{5, 1, 9, 3, 7} {
		h.Record(v)
	}
	if h.Count() != 5 || h.Sum() != 25 || h.Min() != 1 || h.Max() != 9 {
		t.Errorf("count=%d sum=%d min=%d max=%d", h.Count(), h.Sum(), h.Min(), h.Max())
	}
	// Small values land in exact buckets: quantiles are exact.
	if got := h.Quantile(0.5); got != 5 {
		t.Errorf("p50 = %d, want 5", got)
	}
	if got := h.Quantile(1); got != 9 {
		t.Errorf("p100 = %d, want 9", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("p0 = %d, want 1", got)
	}
	h.Record(-3) // clamps to 0
	if h.Min() != 0 {
		t.Errorf("negative sample did not clamp: min=%d", h.Min())
	}
}

// Quantile error must stay within the log-linear bound (2^-histSubBits
// relative) against the true order statistics.
func TestHistogramQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var h Histogram
	samples := make([]int64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Latency-like spread: ~lognormal over ~5 decades.
		v := int64(1000 * math.Exp(rng.NormFloat64()*2))
		samples = append(samples, v)
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	bound := 1.0 / float64(int(1)<<histSubBits)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999} {
		rank := int(math.Ceil(q*float64(len(samples)))) - 1
		truth := samples[rank]
		got := h.Quantile(q)
		relErr := math.Abs(float64(got-truth)) / float64(truth)
		if relErr > bound {
			t.Errorf("q=%v: got %d, true %d, rel err %.4f > bound %.4f",
				q, got, truth, relErr, bound)
		}
	}
}

// Identical multisets must produce identical histograms regardless of
// insertion order (the determinism contract the calibrate table relies on).
func TestHistogramOrderIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	samples := make([]int64, 5000)
	for i := range samples {
		samples[i] = rng.Int63n(1 << 40)
	}
	var a, b Histogram
	for _, v := range samples {
		a.Record(v)
	}
	perm := rng.Perm(len(samples))
	for _, i := range perm {
		b.Record(samples[i])
	}
	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.99, 1} {
		if a.Quantile(q) != b.Quantile(q) {
			t.Errorf("q=%v differs across insertion orders: %d vs %d", q, a.Quantile(q), b.Quantile(q))
		}
	}
	if a.Sum() != b.Sum() || a.Count() != b.Count() || a.Min() != b.Min() || a.Max() != b.Max() {
		t.Error("aggregates differ across insertion orders")
	}
}

// Merging two histograms must equal recording both streams into one.
func TestHistogramMergeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	var whole, left, right Histogram
	for i := 0; i < 4000; i++ {
		v := rng.Int63n(1 << 30)
		whole.Record(v)
		if i%2 == 0 {
			left.Record(v)
		} else {
			right.Record(v)
		}
	}
	var merged Histogram
	merged.Merge(&left)
	merged.Merge(&right)
	if merged.Count() != whole.Count() || merged.Sum() != whole.Sum() ||
		merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Error("merged aggregates differ from whole-stream aggregates")
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.9, 0.99, 1} {
		if merged.Quantile(q) != whole.Quantile(q) {
			t.Errorf("q=%v: merged %d != whole %d", q, merged.Quantile(q), whole.Quantile(q))
		}
	}
	// Merging an empty or nil histogram is a no-op.
	before := merged.Count()
	merged.Merge(nil)
	merged.Merge(&Histogram{})
	if merged.Count() != before {
		t.Error("merging empty changed the histogram")
	}
	// Merging into an empty histogram copies.
	var fresh Histogram
	fresh.Merge(&whole)
	if fresh.Quantile(0.5) != whole.Quantile(0.5) || fresh.Min() != whole.Min() {
		t.Error("merge into empty did not copy")
	}
}

// Bucket indexing must be monotone and self-consistent.
func TestHistogramIndexing(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 2, 63, 64, 65, 100, 1000, 1 << 20, 1<<40 + 12345, math.MaxInt64} {
		idx := histIndex(v)
		if idx < prev {
			t.Fatalf("histIndex not monotone at %d", v)
		}
		prev = idx
		lo, hi := histLow(idx), histLow(idx+1)
		if v < lo || (v >= hi && hi != math.MaxInt64) {
			t.Errorf("value %d outside its bucket [%d,%d)", v, lo, hi)
		}
		mid := histMid(idx)
		if mid < lo || mid >= hi {
			t.Errorf("midpoint %d outside bucket [%d,%d)", mid, lo, hi)
		}
	}
	// Exact region: values below 2·histSubCount are their own bucket.
	for v := int64(0); v < 2*histSubCount; v++ {
		if histLow(histIndex(v)) != v {
			t.Errorf("exact region broken at %d", v)
		}
	}
}
