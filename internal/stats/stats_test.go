package stats

import (
	"sync"
	"testing"
	"time"

	"lotec/internal/ids"
	"lotec/internal/netmodel"
)

func TestMsgKindStrings(t *testing.T) {
	kinds := []MsgKind{KindLockReq, KindLockReply, KindGrant, KindRelease,
		KindReleaseReply, KindFetchReq, KindPageData, KindPush, KindPushReply, KindAbort,
		KindRegister, KindRegisterReply, KindRun, KindRunReply, KindError, KindOther}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("kind %d has bad string %q", int(k), s)
		}
		seen[s] = true
	}
}

func TestIsData(t *testing.T) {
	if !KindPageData.IsData() || !KindPush.IsData() {
		t.Error("payload kinds must be data")
	}
	if KindLockReq.IsData() || KindGrant.IsData() || KindPushReply.IsData() {
		t.Error("control kinds must not be data")
	}
}

func TestPerObjectAggregation(t *testing.T) {
	r := NewRecorder()
	r.Record(MsgRecord{From: 1, To: 2, Obj: 5, Kind: KindLockReq, Bytes: 100})
	r.Record(MsgRecord{From: 2, To: 1, Obj: 5, Kind: KindPageData, Bytes: 4100, Payload: 4000})
	r.Record(MsgRecord{From: 1, To: 2, Obj: 6, Kind: KindLockReq, Bytes: 50})

	s5 := r.Object(5)
	if s5.Msgs != 2 || s5.ControlBytes != 200 || s5.DataBytes != 4000 {
		t.Errorf("obj5 = %+v", s5)
	}
	if s5.TotalBytes() != 4200 {
		t.Errorf("TotalBytes = %d", s5.TotalBytes())
	}
	s6 := r.Object(6)
	if s6.Msgs != 1 || s6.ControlBytes != 50 {
		t.Errorf("obj6 = %+v", s6)
	}
	objs := r.Objects()
	if len(objs) != 2 || objs[0] != 5 || objs[1] != 6 {
		t.Errorf("Objects = %v", objs)
	}
}

func TestMultiObjectAttribution(t *testing.T) {
	r := NewRecorder()
	r.Record(MsgRecord{From: 1, To: 2, Obj: NoObject, Objs: []ids.ObjectID{1, 2}, Kind: KindRelease, Bytes: 200})
	per := r.PerObject()
	if per[1].ControlBytes != 100 || per[2].ControlBytes != 100 {
		t.Errorf("shared attribution = %+v", per)
	}
	if per[1].Msgs != 1 || per[2].Msgs != 1 {
		t.Errorf("msg counts = %+v", per)
	}
	// Totals count the message once.
	tot := r.Totals()
	if tot.Msgs != 1 || tot.ControlBytes != 200 {
		t.Errorf("totals = %+v", tot)
	}
}

func TestNoObjectWithoutObjsIgnoredPerObject(t *testing.T) {
	r := NewRecorder()
	r.Record(MsgRecord{From: 1, To: 2, Obj: NoObject, Kind: KindOther, Bytes: 10})
	if len(r.PerObject()) != 0 {
		t.Error("orphan record should not appear per-object")
	}
	if r.Totals().Msgs != 1 {
		t.Error("orphan record must still count in totals")
	}
}

func TestCountersConcurrent(t *testing.T) {
	r := NewRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				r.AddLocalLockOp()
				r.AddGlobalLockOp()
				r.AddDemandFetch()
				r.AddAbort()
				r.AddRetry()
				r.AddCommit()
			}
		}()
	}
	wg.Wait()
	c := r.Counters()
	if c.LocalLockOps != 800 || c.GlobalLockOps != 800 || c.DemandFetches != 800 ||
		c.Aborts != 800 || c.Retries != 800 || c.Commits != 800 {
		t.Errorf("counters = %+v", c)
	}
}

func TestTraceCopy(t *testing.T) {
	r := NewRecorder()
	r.Record(MsgRecord{From: 1, To: 2, Obj: 1, Kind: KindGrant, Bytes: 10})
	tr := r.Trace()
	tr[0].Bytes = 999
	if r.Trace()[0].Bytes != 10 {
		t.Error("Trace aliased internal storage")
	}
	if r.MsgCount() != 1 {
		t.Errorf("MsgCount = %d", r.MsgCount())
	}
}

func TestTransferTime(t *testing.T) {
	r := NewRecorder()
	r.Record(MsgRecord{From: 1, To: 2, Obj: 5, Kind: KindLockReq, Bytes: 0})
	r.Record(MsgRecord{From: 2, To: 1, Obj: 5, Kind: KindPageData, Bytes: 1000, Payload: 900})
	r.Record(MsgRecord{From: 2, To: 1, Obj: 6, Kind: KindPageData, Bytes: 1000, Payload: 900})

	p := netmodel.Params{Name: "t", BandwidthBps: 8e6, SoftwareCost: 10 * time.Microsecond}
	// obj5: 2 msgs → 2×10µs software + 1000B×8/8Mbps = 1ms wire.
	got := r.TransferTime(5, p)
	want := 20*time.Microsecond + time.Millisecond
	if got != want {
		t.Errorf("TransferTime = %v, want %v", got, want)
	}
	// Total: 3 msgs, 2000 data bytes.
	gotTotal := r.TotalTime(p)
	wantTotal := 30*time.Microsecond + 2*time.Millisecond
	if gotTotal != wantTotal {
		t.Errorf("TotalTime = %v, want %v", gotTotal, wantTotal)
	}
}

func TestTransferTimeSharedMessageSplitsBytes(t *testing.T) {
	r := NewRecorder()
	r.Record(MsgRecord{From: 1, To: 2, Obj: NoObject, Objs: []ids.ObjectID{1, 2}, Kind: KindRelease, Bytes: 2000})
	p := netmodel.Params{Name: "t", BandwidthBps: 8e6, SoftwareCost: 0}
	// Each object is charged half the bytes: 1000B → 1ms.
	if got := r.TransferTime(1, p); got != time.Millisecond {
		t.Errorf("TransferTime(1) = %v", got)
	}
}

// TestBatchedOverheadAttribution pins the exact-framing split for batched
// messages: with Overheads recorded (parallel to Objs), each object is
// charged its own section framing exactly, and only the residual shared
// bytes (envelope + top-level fields) divide evenly. Delta-bearing batches
// made this necessary — their per-object framing varies with the run lists,
// so the historical even split would smear one object's run-list bytes over
// its batchmates.
func TestBatchedOverheadAttribution(t *testing.T) {
	r := NewRecorder()
	// 100 B message: 30 B payload (20+10), sections frame 12 B and 8 B,
	// leaving 50 B shared → 25 B each.
	r.Record(MsgRecord{
		From: 1, To: 2, Obj: NoObject, Kind: KindMultiPageData,
		Objs:      []ids.ObjectID{1, 2},
		Payloads:  []int{20, 10},
		Overheads: []int{12, 8},
		Bytes:     100,
		Payload:   30,
	})
	per := r.PerObject()
	if got := per[1]; got.DataBytes != 20 || got.ControlBytes != 12+25 {
		t.Errorf("object 1 = %+v, want data 20, control 37", got)
	}
	if got := per[2]; got.DataBytes != 10 || got.ControlBytes != 8+25 {
		t.Errorf("object 2 = %+v, want data 10, control 33", got)
	}
	// Conservation: per-object shares sum back to the full message.
	if sum := per[1].TotalBytes() + per[2].TotalBytes(); sum != 100 {
		t.Errorf("attribution lost bytes: %d of 100", sum)
	}
	tot := r.Totals()
	if tot.Msgs != 1 || tot.DataBytes != 30 || tot.ControlBytes != 70 {
		t.Errorf("totals = %+v", tot)
	}
}

// TestBatchedOverheadFallbackEvenSplit pins the historical approximation:
// without Overheads, all non-payload bytes divide evenly — unchanged
// behavior for every message type that never grew per-object framing.
func TestBatchedOverheadFallbackEvenSplit(t *testing.T) {
	r := NewRecorder()
	r.Record(MsgRecord{
		From: 1, To: 2, Obj: NoObject, Kind: KindMultiPush,
		Objs:     []ids.ObjectID{4, 5, 6},
		Payloads: []int{9, 0, 3},
		Bytes:    90,
		Payload:  12,
	})
	per := r.PerObject()
	for _, o := range []ids.ObjectID{4, 5, 6} {
		if got := per[o].ControlBytes; got != 26 {
			t.Errorf("object %d control = %d, want even split 26", o, got)
		}
	}
	if per[4].DataBytes != 9 || per[5].DataBytes != 0 || per[6].DataBytes != 3 {
		t.Errorf("payload attribution = %+v", per)
	}
}
