package stats

import (
	"sort"
	"time"
)

// Control-plane availability metrics. The route layer records one
// FailoverSample per primary-crash recovery (from the moment a call
// exhausted its retries to the first successful call against the promoted
// backup); the handoff state machine records one HandoffSample per
// completed online reshard. Both feed the BENCH ledger's failover_p99 and
// handoff-bytes gates.

// FailoverSample is one completed backup promotion as observed by a client.
type FailoverSample struct {
	// Latency spans unreachable-detection → first successful retried call.
	Latency time.Duration
}

// HandoffSample is one completed shard handoff.
type HandoffSample struct {
	Shard int
	// Bytes is the exported snapshot size shipped to the new owner.
	Bytes int
	// Latency spans seal → activation (new primary serving).
	Latency time.Duration
}

// AddFailover records one client-observed failover.
func (r *Recorder) AddFailover(s FailoverSample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.failovers = append(r.failovers, s)
}

// AddHandoff records one completed shard handoff.
func (r *Recorder) AddHandoff(s HandoffSample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.handoffs = append(r.handoffs, s)
}

// AddEpochReject counts a request rejected for carrying a stale placement
// epoch (the client re-routes and retries).
func (r *Recorder) AddEpochReject() { r.epochRejects.Add(1) }

// AddPromotion counts a backup promotion executed at a host (shards
// promoted in one epoch bump count once).
func (r *Recorder) AddPromotion() { r.promotions.Add(1) }

// Failovers returns a copy of the recorded failover samples.
func (r *Recorder) Failovers() []FailoverSample {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]FailoverSample(nil), r.failovers...)
}

// Handoffs returns a copy of the recorded handoff samples.
func (r *Recorder) Handoffs() []HandoffSample {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]HandoffSample(nil), r.handoffs...)
}

// LatencyQuantile returns the q-quantile (0 ≤ q ≤ 1, nearest-rank) of the
// given durations, or 0 when empty.
func LatencyQuantile(ds []time.Duration, q float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// FailoverLatencies extracts the failover latency series.
func (r *Recorder) FailoverLatencies() []time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]time.Duration, 0, len(r.failovers))
	for _, s := range r.failovers {
		out = append(out, s.Latency)
	}
	return out
}

// HandoffBytes sums the snapshot bytes shipped by every recorded handoff.
func (r *Recorder) HandoffBytes() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for _, s := range r.handoffs {
		n += int64(s.Bytes)
	}
	return n
}
