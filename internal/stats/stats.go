// Package stats records the message trace a protocol run generates and
// aggregates it the way the paper's evaluation reports it: bytes transferred
// per shared object (Figures 2–5), message counts, local-vs-global lock
// operation counts (§5.1), and total per-object message time under a given
// network model (Figures 6–8).
//
// Recording the full trace once and re-pricing it under the fifteen
// bandwidth × software-cost combinations reproduces Figures 6–8 without
// re-running the workload (see EXPERIMENTS.md for the fidelity note).
package stats

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lotec/internal/ids"
	"lotec/internal/netmodel"
)

// MsgKind classifies a recorded message.
type MsgKind int

// Message kinds.
const (
	KindLockReq   MsgKind = iota + 1 // global acquire request → GDO
	KindLockReply                    // GDO reply (grant/queued + page map)
	KindGrant                        // deferred grant GDO → site
	KindRelease                      // global release → GDO (dirty info piggybacked)
	KindReleaseReply
	KindFetchReq  // page fetch request (Alg 4.5 gather)
	KindPageData  // page payload reply
	KindPush      // RC eager update push
	KindPushReply // RC push acknowledgement
	KindAbort     // deadlock-abort notification
	KindRegister  // object registration → GDO (server mode)
	KindRegisterReply
	KindRun      // remote transaction-body dispatch
	KindRunReply // remote transaction-body completion
	KindError    // protocol-level error reply
	KindOther
	KindMultiFetchReq // batched cross-object page fetch request (xfer gather)
	KindMultiPageData // batched cross-object page payload reply
	KindMultiPush     // batched cross-object RC eager update push

	// Control-plane replication kinds (replicated directory shards).
	KindReplicate      // primary → backup shard-op chaining
	KindReplicateReply // backup acknowledgement
	KindPromote        // client-driven backup promotion request
	KindPromoteReply
	KindEpoch      // epoch-change proposal to a witness
	KindEpochReply // epoch-change verdict / stale-epoch redirect (RouteResp)
	KindHandoff    // shard handoff control + state shipment
	KindHandoffReply
	KindDetect // cross-host deadlock detection (edges push, victim fan-out)
	KindDetectReply
	KindCommitSeq // global commit-order assignment at the sequencer
	KindCommitSeqReply
)

// String implements fmt.Stringer.
func (k MsgKind) String() string {
	switch k {
	case KindLockReq:
		return "lock-req"
	case KindLockReply:
		return "lock-reply"
	case KindGrant:
		return "grant"
	case KindRelease:
		return "release"
	case KindReleaseReply:
		return "release-reply"
	case KindFetchReq:
		return "fetch-req"
	case KindPageData:
		return "page-data"
	case KindPush:
		return "push"
	case KindPushReply:
		return "push-reply"
	case KindAbort:
		return "abort"
	case KindRegister:
		return "register"
	case KindRegisterReply:
		return "register-reply"
	case KindRun:
		return "run"
	case KindRunReply:
		return "run-reply"
	case KindError:
		return "error"
	case KindMultiFetchReq:
		return "multi-fetch-req"
	case KindMultiPageData:
		return "multi-page-data"
	case KindMultiPush:
		return "multi-push"
	case KindReplicate:
		return "replicate"
	case KindReplicateReply:
		return "replicate-reply"
	case KindPromote:
		return "promote"
	case KindPromoteReply:
		return "promote-reply"
	case KindEpoch:
		return "epoch"
	case KindEpochReply:
		return "epoch-reply"
	case KindHandoff:
		return "handoff"
	case KindHandoffReply:
		return "handoff-reply"
	case KindDetect:
		return "detect"
	case KindDetectReply:
		return "detect-reply"
	case KindCommitSeq:
		return "commit-seq"
	case KindCommitSeqReply:
		return "commit-seq-reply"
	default:
		return "other"
	}
}

// IsData reports whether the kind carries page payloads (consistency data)
// as opposed to control information.
func (k MsgKind) IsData() bool {
	return k == KindPageData || k == KindPush || k == KindMultiPageData || k == KindMultiPush
}

// MsgRecord is one message of the trace. Obj attributes the message to the
// shared object whose consistency it maintains; NoObject (-1) marks
// messages that serve several objects at once (batched root-commit
// releases), whose cost is attributed to each object in Objs.
type MsgRecord struct {
	From ids.NodeID
	To   ids.NodeID
	Obj  ids.ObjectID
	Objs []ids.ObjectID // set when one message serves several objects
	// Payloads holds the per-object page-payload bytes parallel to Objs for
	// batched data messages, so per-object byte counts stay exact when one
	// message carries pages of several objects. Nil for control messages.
	Payloads []int
	// Overheads holds the per-object framing bytes parallel to Objs: the
	// non-payload bytes of each object's section within a batched message
	// (page numbers, versions, delta run lists, length prefixes). When set,
	// per-object attribution charges each object its exact section framing
	// and divides only the residual shared bytes (envelope, top-level
	// fields) evenly; when nil, all non-payload bytes divide evenly — the
	// historical approximation, exact only while every section framed
	// identically (delta runs made section framing vary).
	Overheads []int
	Kind      MsgKind
	// Bytes is the full on-wire message size (headers included).
	Bytes int
	// Payload is the page-data portion of Bytes (0 for control messages).
	// The paper's "bytes transferred to maintain consistency" counts
	// payload; Bytes-Payload is messaging overhead.
	Payload int
	// Shard is the directory partition a lock-service message was
	// addressed to; NoShard (-1) marks messages that do not involve the
	// directory (page fetches, pushes, transaction control).
	Shard int
}

// NoObject marks a record without a single-object attribution.
const NoObject ids.ObjectID = -1

// NoShard marks a record with no directory-shard attribution.
const NoShard = -1

// ObjStats aggregates the trace for one object.
type ObjStats struct {
	Msgs int
	// ControlBytes is message bytes that are not page payload (headers,
	// lock traffic, page maps).
	ControlBytes int64
	// DataBytes is page payload (the paper's per-object byte counts).
	DataBytes int64
}

// TotalBytes returns control + data bytes.
func (s ObjStats) TotalBytes() int64 { return s.ControlBytes + s.DataBytes }

// Recorder accumulates a run's trace and counters. It is safe for
// concurrent use. The scalar counters are atomics; only the trace itself
// needs the mutex.
type Recorder struct {
	mu        sync.Mutex
	msgs      []MsgRecord      // guarded by mu
	transfers []TransferSample // guarded by mu
	failovers []FailoverSample // guarded by mu
	handoffs  []HandoffSample  // guarded by mu

	localLockOps  atomic.Int64
	globalLockOps atomic.Int64
	demandFetches atomic.Int64
	aborts        atomic.Int64
	retries       atomic.Int64
	commits       atomic.Int64

	msgDrops     atomic.Int64
	msgDups      atomic.Int64
	msgDelays    atomic.Int64
	callTimeouts atomic.Int64
	callRetries  atomic.Int64

	fullPageBytes   atomic.Int64
	deltaBytes      atomic.Int64
	deltaSavedBytes atomic.Int64
	deltaFallbacks  atomic.Int64

	epochRejects atomic.Int64
	promotions   atomic.Int64
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{}
}

// Record appends one message record.
func (r *Recorder) Record(rec MsgRecord) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.msgs = append(r.msgs, rec)
}

// Counter bumps. Each corresponds to one §5/§5.1 metric.

// AddLocalLockOp counts a lock operation satisfied from the locally cached
// GDO information (no directory involvement).
func (r *Recorder) AddLocalLockOp() { r.localLockOps.Add(1) }

// AddGlobalLockOp counts a lock operation that had to consult the GDO.
func (r *Recorder) AddGlobalLockOp() { r.globalLockOps.Add(1) }

// AddDemandFetch counts a page fetched on demand after a LOTEC
// misprediction.
func (r *Recorder) AddDemandFetch() { r.demandFetches.Add(1) }

// AddAbort counts a root-transaction abort (deadlock victim or user abort).
func (r *Recorder) AddAbort() { r.aborts.Add(1) }

// AddRetry counts a root-transaction retry after an abort.
func (r *Recorder) AddRetry() { r.retries.Add(1) }

// AddCommit counts a root-transaction commit.
func (r *Recorder) AddCommit() { r.commits.Add(1) }

// Fault-layer counters (internal/fault + the transports' retry loops).

// AddMsgDrop counts a message the fault injector discarded in flight.
func (r *Recorder) AddMsgDrop() { r.msgDrops.Add(1) }

// AddMsgDup counts an extra in-flight copy the fault injector emitted.
func (r *Recorder) AddMsgDup() { r.msgDups.Add(1) }

// AddMsgDelay counts a message the fault injector held back (delay or
// reorder).
func (r *Recorder) AddMsgDelay() { r.msgDelays.Add(1) }

// AddCallTimeout counts an RPC attempt that expired without a reply.
func (r *Recorder) AddCallTimeout() { r.callTimeouts.Add(1) }

// AddCallRetry counts an RPC retransmission after a timeout.
func (r *Recorder) AddCallRetry() { r.callRetries.Add(1) }

// Delta-transfer counters (the sub-page data plane).

// AddFullPage counts a page served as a full payload of n bytes.
func (r *Recorder) AddFullPage(n int) { r.fullPageBytes.Add(int64(n)) }

// AddDelta counts a page served as a delta: encoded delta payload bytes and
// the bytes saved versus the full page it replaced.
func (r *Recorder) AddDelta(encoded, saved int) {
	r.deltaBytes.Add(int64(encoded))
	r.deltaSavedBytes.Add(int64(saved))
}

// AddDeltaFallback counts a delta-eligible page (requester supplied a usable
// base version) that had to be served as a full page anyway — journal
// evicted, chain broken, or the encoded delta not smaller than the page.
func (r *Recorder) AddDeltaFallback() { r.deltaFallbacks.Add(1) }

// Counters is a snapshot of the scalar counters.
type Counters struct {
	LocalLockOps  int64
	GlobalLockOps int64
	DemandFetches int64
	Aborts        int64
	Retries       int64
	Commits       int64

	// Fault-layer metrics: injected message faults and the retry loop's
	// reaction to them. All zero on a fault-free run.
	MsgDrops     int64
	MsgDups      int64
	MsgDelays    int64
	CallTimeouts int64
	CallRetries  int64

	// Delta-transfer metrics: how the data plane split page traffic between
	// full payloads and dirty-range deltas. All deltas-related fields are
	// zero with delta transfers off.
	FullPageBytes   int64
	DeltaBytes      int64
	DeltaSavedBytes int64
	DeltaFallbacks  int64

	// Control-plane replication metrics: stale-epoch rejections and backup
	// promotions. Zero under a static (unreplicated) placement.
	EpochRejects int64
	Promotions   int64
}

// Counters returns a snapshot of the scalar counters.
func (r *Recorder) Counters() Counters {
	return Counters{
		LocalLockOps:  r.localLockOps.Load(),
		GlobalLockOps: r.globalLockOps.Load(),
		DemandFetches: r.demandFetches.Load(),
		Aborts:        r.aborts.Load(),
		Retries:       r.retries.Load(),
		Commits:       r.commits.Load(),
		MsgDrops:      r.msgDrops.Load(),
		MsgDups:       r.msgDups.Load(),
		MsgDelays:     r.msgDelays.Load(),
		CallTimeouts:  r.callTimeouts.Load(),
		CallRetries:   r.callRetries.Load(),

		FullPageBytes:   r.fullPageBytes.Load(),
		DeltaBytes:      r.deltaBytes.Load(),
		DeltaSavedBytes: r.deltaSavedBytes.Load(),
		DeltaFallbacks:  r.deltaFallbacks.Load(),

		EpochRejects: r.epochRejects.Load(),
		Promotions:   r.promotions.Load(),
	}
}

// MsgCount returns the number of recorded messages.
func (r *Recorder) MsgCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.msgs)
}

// Trace returns a copy of the full message trace.
func (r *Recorder) Trace() []MsgRecord {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]MsgRecord(nil), r.msgs...)
}

// forEachAttributionLocked calls fn once per (object, record) attribution.
// idx is the object's position in rec.Objs, or -1 for a single-object
// record. Caller holds r.mu.
func (r *Recorder) forEachAttributionLocked(fn func(obj ids.ObjectID, rec *MsgRecord, idx int)) {
	for i := range r.msgs {
		rec := &r.msgs[i]
		if rec.Obj != NoObject {
			fn(rec.Obj, rec, -1)
			continue
		}
		for j, o := range rec.Objs {
			fn(o, rec, j)
		}
	}
}

// ctrlShare computes object idx's control-byte share of a batched record.
// With Overheads set (parallel to Objs), each object is charged its exact
// section framing plus an even split of only the residual shared bytes
// (envelope + top-level fields); without, all non-payload bytes split evenly
// — the historical approximation, which delta-bearing messages outgrew
// because their per-object framing varies with the run lists.
func (rec *MsgRecord) ctrlShare(idx int) int64 {
	shared := rec.Bytes - rec.Payload
	if len(rec.Overheads) != len(rec.Objs) {
		return int64(shared / len(rec.Objs))
	}
	for _, o := range rec.Overheads {
		shared -= o
	}
	return int64(shared/len(rec.Objs) + rec.Overheads[idx])
}

// PerObject aggregates the trace per object. Multi-object control messages
// contribute their size to each named object's message count and control
// bytes (exact section framing when recorded, an even split otherwise);
// batched data messages attribute each object's exact payload
// (rec.Payloads).
func (r *Recorder) PerObject() map[ids.ObjectID]ObjStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[ids.ObjectID]ObjStats)
	for i := range r.msgs {
		rec := &r.msgs[i]
		if rec.Obj != NoObject {
			s := out[rec.Obj]
			s.Msgs++
			s.DataBytes += int64(rec.Payload)
			s.ControlBytes += int64(rec.Bytes - rec.Payload)
			out[rec.Obj] = s
			continue
		}
		if len(rec.Objs) == 0 {
			continue
		}
		for j, o := range rec.Objs {
			s := out[o]
			s.Msgs++
			s.ControlBytes += rec.ctrlShare(j)
			if j < len(rec.Payloads) {
				s.DataBytes += int64(rec.Payloads[j])
			}
			out[o] = s
		}
	}
	return out
}

// PerShard aggregates the directory-addressed portion of the trace per
// shard, exposing how evenly a partitioned GDO's lock traffic spreads.
// Records with Shard == NoShard (non-directory traffic) are excluded.
func (r *Recorder) PerShard() map[int]ObjStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[int]ObjStats)
	for i := range r.msgs {
		rec := &r.msgs[i]
		if rec.Shard == NoShard {
			continue
		}
		s := out[rec.Shard]
		s.Msgs++
		s.DataBytes += int64(rec.Payload)
		s.ControlBytes += int64(rec.Bytes - rec.Payload)
		out[rec.Shard] = s
	}
	return out
}

// Object returns the aggregate for one object.
func (r *Recorder) Object(obj ids.ObjectID) ObjStats {
	return r.PerObject()[obj]
}

// Objects returns the objects with any attributed traffic, ascending.
func (r *Recorder) Objects() []ids.ObjectID {
	per := r.PerObject()
	out := make([]ids.ObjectID, 0, len(per))
	for o := range per {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Totals sums the whole trace.
func (r *Recorder) Totals() ObjStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	var s ObjStats
	for i := range r.msgs {
		rec := &r.msgs[i]
		s.Msgs++
		s.DataBytes += int64(rec.Payload)
		s.ControlBytes += int64(rec.Bytes - rec.Payload)
	}
	return s
}

// TransferTime prices every message attributed to obj under p and returns
// the total — the paper's "total message time required to maintain the
// consistency of an arbitrary shared object" (Figures 6–8).
func (r *Recorder) TransferTime(obj ids.ObjectID, p netmodel.Params) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total time.Duration
	r.forEachAttributionLocked(func(o ids.ObjectID, rec *MsgRecord, idx int) {
		if o != obj {
			return
		}
		b := rec.Bytes
		if rec.Obj == NoObject && len(rec.Objs) > 0 {
			b = int(rec.ctrlShare(idx))
			if idx >= 0 && idx < len(rec.Payloads) {
				b += rec.Payloads[idx]
			}
		}
		total += p.MsgTime(b)
	})
	return total
}

// TotalTime prices the entire trace under p.
func (r *Recorder) TotalTime(p netmodel.Params) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	var total time.Duration
	for i := range r.msgs {
		total += p.MsgTime(r.msgs[i].Bytes)
	}
	return total
}

// TransferKind names which xfer pipeline ran: a protocol/demand fetch
// (gather direction) or an RC update push (scatter direction).
type TransferKind int

// Transfer kinds.
const (
	TransferFetch TransferKind = iota + 1
	TransferPush
)

// String implements fmt.Stringer.
func (k TransferKind) String() string {
	switch k {
	case TransferFetch:
		return "fetch"
	case TransferPush:
		return "push"
	default:
		return "unknown"
	}
}

// TransferSample is one completed run of the xfer pipeline (Alg 4.5): a
// plan → batch → gather → apply pass moving pages for one transfer.
type TransferSample struct {
	Kind    TransferKind
	Batches int // per-site batched messages issued
	Pages   int // pages moved (full payloads and deltas)
	Bytes   int // page payload bytes moved (full pages + encoded deltas)
	// DeltaPages/DeltaBytes are the subset of Pages/Bytes that moved as
	// dirty-range deltas instead of full payloads.
	DeltaPages int
	DeltaBytes int
	// Per-stage wall-clock. Plan and Apply are sequential work; Gather is
	// the in-flight round-trip span and is the only stage whose duration
	// depends on FetchConcurrency — it must never appear in trace-equality
	// comparisons (the byte/message trace is concurrency-invariant, the
	// gather wall-clock is not).
	Plan   time.Duration
	Gather time.Duration
	Apply  time.Duration
}

// TransferTotals aggregates transfer samples per pipeline stage.
type TransferTotals struct {
	Transfers  int
	Batches    int
	Pages      int
	Bytes      int64
	DeltaPages int
	DeltaBytes int64
	Plan       time.Duration
	Gather     time.Duration
	Apply      time.Duration
}

// AddTransfer records one completed xfer pipeline run.
func (r *Recorder) AddTransfer(s TransferSample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.transfers = append(r.transfers, s)
}

// Transfers returns a copy of the recorded transfer samples.
func (r *Recorder) Transfers() []TransferSample {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]TransferSample(nil), r.transfers...)
}

// TransferStages sums the transfer samples of the given kind; pass 0 to sum
// every kind.
func (r *Recorder) TransferStages(kind TransferKind) TransferTotals {
	r.mu.Lock()
	defer r.mu.Unlock()
	var t TransferTotals
	for _, s := range r.transfers {
		if kind != 0 && s.Kind != kind {
			continue
		}
		t.Transfers++
		t.Batches += s.Batches
		t.Pages += s.Pages
		t.Bytes += int64(s.Bytes)
		t.DeltaPages += s.DeltaPages
		t.DeltaBytes += int64(s.DeltaBytes)
		t.Plan += s.Plan
		t.Gather += s.Gather
		t.Apply += s.Apply
	}
	return t
}
