package stats

import (
	"math"
	"math/bits"
)

// Histogram is a log-linear histogram of non-negative int64 samples (HDR
// style): each power-of-two range is split into 2^histSubBits linear
// sub-buckets, bounding the relative quantile error at 2^-histSubBits
// (≈3%) regardless of the value range. It is deterministic — identical
// multisets of samples produce identical histograms and quantiles no
// matter the insertion order — and mergeable, which is what lets the
// calibrate loop aggregate per-class latency across nodes and runs.
//
// The zero value is ready to use. Not safe for concurrent use; callers
// that record from multiple goroutines must serialize (the sim records
// from the event loop, the TCP harness from a mutex-guarded collector).
type Histogram struct {
	counts map[int]int64
	count  int64
	sum    int64
	min    int64
	max    int64
}

// histSubBits sets the sub-bucket resolution: 2^5 = 32 linear sub-buckets
// per power of two.
const histSubBits = 5

const histSubCount = 1 << histSubBits // 32

// histIndex maps a non-negative value to its bucket index. Values below
// 2·histSubCount get exact (identity) buckets; above that, the top
// histSubBits+1 significant bits select the bucket.
func histIndex(v int64) int {
	u := uint64(v)
	if u < 2*histSubCount {
		return int(u)
	}
	shift := bits.Len64(u) - histSubBits - 1
	top := int(u >> uint(shift)) // ∈ [histSubCount, 2·histSubCount)
	return histSubCount*shift + top
}

// histLow returns the lowest value mapping to bucket idx (saturating at
// MaxInt64 for the open top bucket).
func histLow(idx int) int64 {
	if idx < 2*histSubCount {
		return int64(idx)
	}
	// idx = histSubCount·shift + top with top ∈ [histSubCount, 2·histSubCount).
	shift := idx/histSubCount - 1
	top := uint64(histSubCount + idx%histSubCount)
	lo := top << uint(shift)
	if lo > math.MaxInt64 {
		return math.MaxInt64
	}
	return int64(lo)
}

// histMid returns the representative value of bucket idx (its midpoint).
func histMid(idx int) int64 {
	lo := histLow(idx)
	hi := histLow(idx + 1)
	return lo + (hi-lo)/2
}

// Record adds one sample. Negative samples are clamped to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if h.counts == nil {
		h.counts = make(map[int]int64)
	}
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[histIndex(v)]++
	h.count++
	h.sum += v
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.count }

// Sum returns the exact sum of recorded samples.
func (h *Histogram) Sum() int64 { return h.sum }

// Min and Max return the exact extremes (0 when empty).
func (h *Histogram) Min() int64 { return h.min }
func (h *Histogram) Max() int64 { return h.max }

// Mean returns the exact sample mean (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Merge folds other into h. The result is identical to having recorded
// both sample streams into one histogram, in any order.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil || other.count == 0 {
		return
	}
	if h.counts == nil {
		h.counts = make(map[int]int64)
	}
	if h.count == 0 || other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	// Sparse index walk: iterate the dense index range instead of ranging
	// over the map, keeping merge deterministic by construction.
	for idx := 0; idx <= histIndex(other.max); idx++ {
		if c := other.counts[idx]; c > 0 {
			h.counts[idx] += c
		}
	}
	h.count += other.count
	h.sum += other.sum
}

// Quantile returns the value at quantile q ∈ [0,1] (0 when empty). The
// returned value is a bucket representative clamped to the recorded
// [Min, Max], so its relative error vs the true order statistic is at
// most 2^-histSubBits.
func (h *Histogram) Quantile(q float64) int64 {
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Rank of the q-th order statistic, 1-based, nearest-rank method.
	rank := int64(math.Ceil(q * float64(h.count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for idx := 0; idx <= histIndex(h.max); idx++ {
		c := h.counts[idx]
		if c == 0 {
			continue
		}
		seen += c
		if seen >= rank {
			v := histMid(idx)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}
