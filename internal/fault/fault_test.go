package fault

import (
	"sync"
	"testing"
	"time"

	"lotec/internal/ids"
	"lotec/internal/wire"
)

// judgeStream records the decision sequence for a fixed message schedule.
func judgeStream(in *Injector, n int) []Decision {
	out := make([]Decision, 0, n)
	for i := 0; i < n; i++ {
		now := time.Duration(i) * 100 * time.Microsecond
		from := ids.NodeID(1 + i%3)
		to := ids.NodeID(1 + (i+1)%3)
		out = append(out, in.Judge(now, from, to, &wire.AcquireReq{Obj: ids.ObjectID(i)}))
	}
	return out
}

func TestJudgeDeterministicAcrossInjectors(t *testing.T) {
	plan := Plan{Seed: 42, Rules: []Rule{
		{Op: OpDrop, Prob: 0.3, Kinds: RetriableKinds},
		{Op: OpDelay, Prob: 0.4, Delay: time.Millisecond},
		{Op: OpDuplicate, Prob: 0.2, Kinds: RetriableKinds},
	}}
	a := judgeStream(NewInjector(plan), 500)
	b := judgeStream(NewInjector(plan), 500)
	var drops, delays, dups int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged across identical injectors: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].Drop {
			drops++
		}
		if a[i].Delay > 0 {
			delays++
		}
		dups += a[i].Duplicates
	}
	if drops == 0 || delays == 0 || dups == 0 {
		t.Fatalf("plan injected nothing (drops=%d delays=%d dups=%d); determinism test is vacuous", drops, delays, dups)
	}

	plan.Seed = 43
	c := judgeStream(NewInjector(plan), 500)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("changing the seed changed nothing; draws are not seed-driven")
	}
}

func TestJudgeRuleScoping(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, Rules: []Rule{{
		Op: OpDrop, Prob: 1,
		Kinds: RetriableKinds,
		From:  1, To: 2,
		After: time.Millisecond, Before: 2 * time.Millisecond,
	}}})
	ms := time.Millisecond
	cases := []struct {
		name string
		now  time.Duration
		from ids.NodeID
		to   ids.NodeID
		m    wire.Msg
		drop bool
	}{
		{"in scope", ms, 1, 2, &wire.AcquireReq{}, true},
		{"before window", ms / 2, 1, 2, &wire.AcquireReq{}, false},
		{"after window", 2 * ms, 1, 2, &wire.AcquireReq{}, false},
		{"wrong direction", ms, 2, 1, &wire.AcquireReq{}, false},
		{"wrong sender", ms, 3, 2, &wire.AcquireReq{}, false},
		{"non-retriable kind", ms, 1, 2, &wire.Grant{}, false},
	}
	for _, c := range cases {
		if got := in.Judge(c.now, c.from, c.to, c.m).Drop; got != c.drop {
			t.Errorf("%s: drop=%v, want %v", c.name, got, c.drop)
		}
	}
}

func TestJudgeMaxHits(t *testing.T) {
	in := NewInjector(Plan{Seed: 1, Rules: []Rule{
		{Op: OpDrop, Prob: 1, Kinds: RetriableKinds, MaxHits: 3},
	}})
	drops := 0
	for i := 0; i < 10; i++ {
		if in.Judge(0, 1, 2, &wire.AcquireReq{}).Drop {
			drops++
		}
	}
	if drops != 3 {
		t.Fatalf("rule with MaxHits=3 fired %d times", drops)
	}
}

func TestJudgeCrashWindows(t *testing.T) {
	ms := time.Millisecond
	// Freeze-restart: traffic touching the node inside [At, Until) is
	// held back exactly until the restart instant.
	in := NewInjector(Plan{Seed: 1, Crashes: []Crash{{Node: 2, At: ms, Until: 5 * ms}}})
	if d := in.Judge(2*ms, 1, 2, &wire.Grant{}); d.Drop || d.Delay != 3*ms {
		t.Errorf("frozen inbound: %+v, want delay 3ms", d)
	}
	if d := in.Judge(4*ms, 2, 1, &wire.Grant{}); d.Drop || d.Delay != ms {
		t.Errorf("frozen outbound: %+v, want delay 1ms", d)
	}
	for _, now := range []time.Duration{0, 5 * ms, 9 * ms} {
		if d := in.Judge(now, 1, 2, &wire.Grant{}); d.Drop || d.Delay != 0 {
			t.Errorf("outside window at %v: %+v, want zero decision", now, d)
		}
	}
	if d := in.Judge(2*ms, 1, 3, &wire.Grant{}); d.Drop || d.Delay != 0 {
		t.Errorf("uninvolved pair: %+v, want zero decision", d)
	}

	// Permanent crash (Until 0): the node is gone, everything drops.
	dead := NewInjector(Plan{Seed: 1, Crashes: []Crash{{Node: 3, At: ms}}})
	if !dead.Judge(ms, 1, 3, &wire.AcquireReq{}).Drop {
		t.Error("permanently crashed node should drop inbound traffic")
	}
	if dead.Judge(ms/2, 1, 3, &wire.AcquireReq{}).Drop {
		t.Error("traffic before the crash instant must pass")
	}
}

func TestJudgePartitionDropsOnlyRetriable(t *testing.T) {
	ms := time.Millisecond
	in := NewInjector(Plan{Seed: 1, Partitions: []Partition{{From: 1, To: 2, After: ms, Before: 5 * ms}}})
	if !in.Judge(2*ms, 1, 2, &wire.AcquireReq{}).Drop {
		t.Error("retriable traffic across the cut should drop")
	}
	if in.Judge(2*ms, 1, 2, &wire.Grant{}).Drop {
		t.Error("grants are exempt from partitions (no recovery path for losing them)")
	}
	if in.Judge(2*ms, 2, 1, &wire.AcquireReq{}).Drop {
		t.Error("a one-way cut must not affect the reverse direction")
	}
	if in.Judge(6*ms, 1, 2, &wire.AcquireReq{}).Drop {
		t.Error("traffic after the partition heals must pass")
	}
}

func TestNilAndZeroInjector(t *testing.T) {
	var nilIn *Injector
	if d := nilIn.Judge(0, 1, 2, &wire.AcquireReq{}); d != (Decision{}) {
		t.Errorf("nil injector judged %+v", d)
	}
	if nilIn.Active() || nilIn.Seed() != 0 {
		t.Error("nil injector should be inactive with seed 0")
	}
	zero := NewInjector(Plan{Seed: 9})
	if zero.Active() {
		t.Error("empty plan should be inactive")
	}
	if d := zero.Judge(0, 1, 2, &wire.AcquireReq{}); d != (Decision{}) {
		t.Errorf("empty plan judged %+v", d)
	}
}

func TestParsePresetsAndGrammar(t *testing.T) {
	for name, spec := range Presets() {
		p, err := Parse(name, 7)
		if err != nil {
			t.Fatalf("preset %q (%q): %v", name, spec, err)
		}
		if p.Seed != 7 {
			t.Fatalf("preset %q lost the seed", name)
		}
		if name == "none" && NewInjector(*p).Active() {
			t.Error(`preset "none" must inject nothing`)
		}
	}

	p, err := Parse("drop(p=0.05,kind=data,from=1,to=2,after=10ms,before=50ms,max=3); crash(node=2,at=1ms,until=8ms); partition(from=1,to=2,after=1ms)", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 1 || len(p.Crashes) != 1 || len(p.Partitions) != 1 {
		t.Fatalf("clause counts wrong: %+v", p)
	}
	r := p.Rules[0]
	if r.Op != OpDrop || r.Prob != 0.05 || r.From != 1 || r.To != 2 ||
		r.After != 10*time.Millisecond || r.Before != 50*time.Millisecond || r.MaxHits != 3 {
		t.Errorf("rule parsed wrong: %+v", r)
	}
	if len(r.Kinds) != 2 {
		t.Errorf("kind=data should scope to the two page-data kinds, got %v", r.Kinds)
	}
	if c := p.Crashes[0]; c.Node != 2 || c.At != time.Millisecond || c.Until != 8*time.Millisecond {
		t.Errorf("crash parsed wrong: %+v", c)
	}

	for _, bad := range []string{
		"explode(p=1)",                   // unknown clause
		"drop(p=0)",                      // probability out of range
		"drop(p=1.5)",                    // probability out of range
		"drop(q=0.5)",                    // unknown parameter
		"drop(p=0.5,kind=nope)",          // unknown kind group
		"delay(p=0.5)",                   // delay without d=
		"crash(at=1ms)",                  // crash without node
		"crash(node=1,at=5ms,until=2ms)", // window ends before it starts
		"partition(after=1ms)",           // partition without endpoints
		"drop p=1",                       // malformed clause
		"drop(p)",                        // malformed parameter
	} {
		if _, err := Parse(bad, 1); err == nil {
			t.Errorf("Parse(%q) accepted a malformed spec", bad)
		}
	}
}

func TestDedupReplaysAndPassesThrough(t *testing.T) {
	var calls int
	handler := func(from ids.NodeID, m wire.Msg) wire.Msg {
		calls++
		return &wire.AcquireResp{Obj: m.(*wire.AcquireReq).Obj}
	}
	wrapped := NewDedup().Wrap(handler)

	// Unstamped requests pass through every time.
	wrapped(1, &wire.AcquireReq{Obj: 5})
	wrapped(1, &wire.AcquireReq{Obj: 5})
	if calls != 2 {
		t.Fatalf("unstamped requests executed %d times, want 2", calls)
	}

	// A stamped duplicate replays the cached reply without re-executing.
	calls = 0
	first := wrapped(1, &wire.AcquireReq{ReqID: 77, Obj: 9})
	second := wrapped(1, &wire.AcquireReq{ReqID: 77, Obj: 9})
	if calls != 1 {
		t.Fatalf("stamped duplicate re-executed the handler (%d calls)", calls)
	}
	if first != second {
		t.Fatal("duplicate did not replay the original reply")
	}

	// The same request ID from a different sender is a different request.
	wrapped(2, &wire.AcquireReq{ReqID: 77, Obj: 9})
	if calls != 2 {
		t.Fatalf("per-sender keying broken (%d calls)", calls)
	}
}

func TestDedupParksConcurrentDuplicates(t *testing.T) {
	release := make(chan struct{})
	var calls int
	var mu sync.Mutex
	wrapped := NewDedup().Wrap(func(from ids.NodeID, m wire.Msg) wire.Msg {
		mu.Lock()
		calls++
		mu.Unlock()
		<-release
		return &wire.AcquireResp{Obj: 1}
	})
	replies := make(chan wire.Msg, 2)
	for i := 0; i < 2; i++ {
		go func() { replies <- wrapped(1, &wire.AcquireReq{ReqID: 5}) }()
	}
	// Give both goroutines time to reach the handler / the park point,
	// then let the first execution finish.
	time.Sleep(10 * time.Millisecond)
	close(release)
	a, b := <-replies, <-replies
	if a != b {
		t.Fatal("parked duplicate observed a different reply")
	}
	mu.Lock()
	defer mu.Unlock()
	if calls != 1 {
		t.Fatalf("concurrent duplicate executed the handler %d times, want 1", calls)
	}
}

func TestMix64Spread(t *testing.T) {
	// Not a statistical test — just a guard that the mixer doesn't collapse
	// nearby inputs (the failure mode that would correlate per-rule draws).
	seen := make(map[uint64]bool)
	for i := uint64(0); i < 1000; i++ {
		seen[Mix64(1, i)] = true
	}
	if len(seen) != 1000 {
		t.Fatalf("Mix64 collided on sequential inputs: %d unique of 1000", len(seen))
	}
}
