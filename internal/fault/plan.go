package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"

	"lotec/internal/ids"
	"lotec/internal/stats"
)

// Plan text grammar, used by the -fault-plan CLI flags and the chaos
// harness. A spec is either a named preset or a semicolon-separated list
// of clauses:
//
//	drop(p=0.05,kind=data,from=1,to=2,after=10ms,before=50ms,max=3)
//	delay(p=0.2,d=300us)
//	dup(p=0.1,kind=lock)
//	reorder(p=0.1,d=1ms)
//	crash(node=2,at=1ms,until=8ms)
//	partition(from=1,to=2,after=1ms,before=6ms)
//
// Kind groups: lock, release, fetch, push, data, grant, abort,
// retriable (the default for drop/dup), all.

// kindGroups names the message-kind sets a clause may scope to.
var kindGroups = map[string][]stats.MsgKind{
	"lock":      {stats.KindLockReq, stats.KindLockReply},
	"release":   {stats.KindRelease, stats.KindReleaseReply},
	"fetch":     {stats.KindFetchReq, stats.KindPageData, stats.KindMultiFetchReq, stats.KindMultiPageData},
	"push":      {stats.KindPush, stats.KindPushReply, stats.KindMultiPush},
	"data":      {stats.KindPageData, stats.KindMultiPageData},
	"grant":     {stats.KindGrant},
	"abort":     {stats.KindAbort},
	"replica": {
		stats.KindReplicate, stats.KindReplicateReply,
		stats.KindPromote, stats.KindPromoteReply,
		stats.KindEpoch, stats.KindEpochReply,
		stats.KindHandoff, stats.KindHandoffReply,
	},
	"retriable": RetriableKinds,
	"all":       nil,
}

// Presets returns the named fault plans the chaos harness sweeps and the
// CLIs accept. Every preset is recoverable: drops and duplicates touch
// only retriable RPC kinds, crashes are freeze-restart windows, so a
// run with unbounded retry always terminates.
func Presets() map[string]string {
	return map[string]string{
		"none":      "",
		"drop":      "drop(p=0.15)",
		"delay":     "delay(p=0.3,d=500us)",
		"dup":       "dup(p=0.2)",
		"reorder":   "reorder(p=0.15,d=2ms)",
		"partition": "partition(from=1,to=2,after=1ms,before=6ms);drop(p=0.05)",
		"crash":     "crash(node=2,at=1ms,until=8ms)",
		"chaos":     "drop(p=0.08);delay(p=0.15,d=300us);dup(p=0.08);reorder(p=0.08,d=1ms)",
	}
}

// Parse builds a Plan from a spec string (a preset name or clause list)
// and a seed. An empty spec yields a plan that injects nothing.
func Parse(spec string, seed uint64) (*Plan, error) {
	if named, ok := Presets()[strings.TrimSpace(spec)]; ok {
		spec = named
	}
	p := &Plan{Seed: seed}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, kvs, err := splitClause(clause)
		if err != nil {
			return nil, err
		}
		switch name {
		case "drop", "delay", "dup", "reorder":
			r, err := parseRule(name, kvs)
			if err != nil {
				return nil, fmt.Errorf("fault: %s: %w", clause, err)
			}
			p.Rules = append(p.Rules, r)
		case "crash":
			c, err := parseCrash(kvs)
			if err != nil {
				return nil, fmt.Errorf("fault: %s: %w", clause, err)
			}
			p.Crashes = append(p.Crashes, c)
		case "partition":
			pt, err := parsePartition(kvs)
			if err != nil {
				return nil, fmt.Errorf("fault: %s: %w", clause, err)
			}
			p.Partitions = append(p.Partitions, pt)
		default:
			return nil, fmt.Errorf("fault: unknown clause %q (want drop/delay/dup/reorder/crash/partition or a preset name)", name)
		}
	}
	return p, nil
}

func splitClause(clause string) (name string, kvs map[string]string, err error) {
	open := strings.IndexByte(clause, '(')
	if open < 0 || !strings.HasSuffix(clause, ")") {
		return "", nil, fmt.Errorf("fault: malformed clause %q (want name(k=v,...))", clause)
	}
	name = strings.TrimSpace(clause[:open])
	kvs = make(map[string]string)
	body := clause[open+1 : len(clause)-1]
	if strings.TrimSpace(body) == "" {
		return name, kvs, nil
	}
	for _, kv := range strings.Split(body, ",") {
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return "", nil, fmt.Errorf("fault: malformed parameter %q in %q", kv, clause)
		}
		kvs[strings.TrimSpace(k)] = strings.TrimSpace(v)
	}
	return name, kvs, nil
}

func parseRule(name string, kvs map[string]string) (Rule, error) {
	r := Rule{Kinds: RetriableKinds} // default scope: traffic the engine can retry
	switch name {
	case "drop":
		r.Op = OpDrop
	case "delay":
		r.Op = OpDelay
		r.Kinds = nil // delaying anything is safe
	case "dup":
		r.Op = OpDuplicate
	case "reorder":
		r.Op = OpReorder
		r.Kinds = nil
	}
	for _, k := range sortedParamKeys(kvs) {
		v := kvs[k]
		var err error
		switch k {
		case "p":
			r.Prob, err = strconv.ParseFloat(v, 64)
		case "kind":
			kinds, ok := kindGroups[v]
			if !ok {
				return r, fmt.Errorf("unknown kind group %q", v)
			}
			r.Kinds = kinds
		case "from":
			r.From, err = parseNode(v)
		case "to":
			r.To, err = parseNode(v)
		case "after":
			r.After, err = time.ParseDuration(v)
		case "before":
			r.Before, err = time.ParseDuration(v)
		case "d":
			r.Delay, err = time.ParseDuration(v)
		case "max":
			r.MaxHits, err = strconv.Atoi(v)
		default:
			return r, fmt.Errorf("unknown parameter %q", k)
		}
		if err != nil {
			return r, fmt.Errorf("parameter %s=%q: %w", k, v, err)
		}
	}
	if r.Prob <= 0 || r.Prob > 1 {
		return r, fmt.Errorf("probability p=%v out of (0,1]", r.Prob)
	}
	if (r.Op == OpDelay || r.Op == OpReorder) && r.Delay <= 0 {
		return r, fmt.Errorf("%s needs d=<duration> > 0", name)
	}
	return r, nil
}

func parseCrash(kvs map[string]string) (Crash, error) {
	var c Crash
	for _, k := range sortedParamKeys(kvs) {
		v := kvs[k]
		var err error
		switch k {
		case "node":
			c.Node, err = parseNode(v)
		case "at":
			c.At, err = time.ParseDuration(v)
		case "until":
			c.Until, err = time.ParseDuration(v)
		default:
			return c, fmt.Errorf("unknown parameter %q", k)
		}
		if err != nil {
			return c, fmt.Errorf("parameter %s=%q: %w", k, v, err)
		}
	}
	if c.Node == 0 {
		return c, fmt.Errorf("crash needs node=<id>")
	}
	if c.Until != 0 && c.Until <= c.At {
		return c, fmt.Errorf("crash window until=%v must exceed at=%v", c.Until, c.At)
	}
	return c, nil
}

func parsePartition(kvs map[string]string) (Partition, error) {
	var p Partition
	for _, k := range sortedParamKeys(kvs) {
		v := kvs[k]
		var err error
		switch k {
		case "from":
			p.From, err = parseNode(v)
		case "to":
			p.To, err = parseNode(v)
		case "after":
			p.After, err = time.ParseDuration(v)
		case "before":
			p.Before, err = time.ParseDuration(v)
		default:
			return p, fmt.Errorf("unknown parameter %q", k)
		}
		if err != nil {
			return p, fmt.Errorf("parameter %s=%q: %w", k, v, err)
		}
	}
	if p.From == 0 && p.To == 0 {
		return p, fmt.Errorf("partition needs from= and/or to=")
	}
	return p, nil
}

// sortedParamKeys orders a clause's k=v parameters so parse errors (and
// any future order-sensitive validation) are reported deterministically.
func sortedParamKeys(kvs map[string]string) []string {
	out := make([]string, 0, len(kvs))
	for k := range kvs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func parseNode(v string) (ids.NodeID, error) {
	n, err := strconv.ParseInt(v, 10, 32)
	if err != nil {
		return 0, err
	}
	return ids.NodeID(n), nil
}
