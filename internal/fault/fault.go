// Package fault is a deterministic, seed-driven network fault injector
// for the LOTEC transports. A Plan describes what can go wrong — message
// drops, delays, duplicates, reorderings, one-way partitions, and node
// crash/restart windows — each scoped by message kind, site pair, and
// time window. An Injector evaluates the plan: given a message about to
// be transmitted it returns a Decision (drop it, delay it, emit extra
// copies). All randomness derives from the plan seed through a counted
// splitmix64 stream, so the same plan over the same schedule produces
// the same faults: on SimNet every run replays byte-for-byte.
//
// The package deliberately knows nothing about transports (transport
// imports fault, not the reverse); it deals only in wire messages,
// node IDs, and durations.
package fault

import (
	"sync"
	"time"

	"lotec/internal/ids"
	"lotec/internal/stats"
	"lotec/internal/wire"
)

// Op is a fault rule's effect.
type Op int

const (
	// OpDrop discards the message.
	OpDrop Op = iota + 1
	// OpDelay holds the message back by Rule.Delay before delivery.
	OpDelay
	// OpDuplicate transmits one extra copy of the message.
	OpDuplicate
	// OpReorder holds the message back by Rule.Delay so that later
	// traffic overtakes it — on SimNet's virtual clock this is exactly
	// an in-flight reordering.
	OpReorder
)

func (o Op) String() string {
	switch o {
	case OpDrop:
		return "drop"
	case OpDelay:
		return "delay"
	case OpDuplicate:
		return "dup"
	case OpReorder:
		return "reorder"
	}
	return "op?"
}

// Rule is one probabilistic fault clause. Zero values widen the scope:
// nil Kinds matches every message kind, zero From/To matches any site,
// zero Before means "until the end of the run".
type Rule struct {
	// Op is what happens when the rule fires.
	Op Op
	// Prob is the firing probability per matching message, in [0,1].
	Prob float64
	// Kinds restricts the rule to these message kinds (nil = all).
	Kinds []stats.MsgKind
	// From/To restrict the rule to one direction of one site pair
	// (0 = any site).
	From, To ids.NodeID
	// After/Before bound the active window on the transport clock
	// (Before 0 = forever).
	After, Before time.Duration
	// Delay is the hold-back for OpDelay and OpReorder.
	Delay time.Duration
	// MaxHits caps how many times the rule may fire (0 = unlimited).
	MaxHits int
}

// Crash is a node freeze-restart window: every message to or from Node
// during [At, Until) is held back and delivered when the node restarts
// at Until, like a process pausing and its socket buffers draining on
// resume. Until 0 means the node never restarts — messages are dropped
// outright (a permanent crash).
type Crash struct {
	Node      ids.NodeID
	At, Until time.Duration
}

// Partition is a one-way link cut: retriable RPC traffic (lock, release,
// fetch, push requests and replies) From → To is dropped during
// [After, Before). Grant and Abort notifications are exempt — they are
// sent exactly once and the protocol has no recovery path for losing
// them (see DESIGN.md "Failure model").
type Partition struct {
	From, To      ids.NodeID
	After, Before time.Duration
}

// Plan is a complete fault schedule. The zero Plan injects nothing.
type Plan struct {
	// Seed drives every probabilistic draw.
	Seed uint64
	// Rules are evaluated in order for each transmitted message.
	Rules []Rule
	// Crashes are node freeze-restart windows.
	Crashes []Crash
	// Partitions are one-way link cuts.
	Partitions []Partition
}

// Decision is the injector's verdict on one transmission.
type Decision struct {
	// Drop discards the message entirely.
	Drop bool
	// Delay holds delivery back by this much.
	Delay time.Duration
	// Duplicates is how many extra copies to transmit.
	Duplicates int
}

// Injector evaluates a Plan against a stream of transmissions. Safe for
// concurrent use (the TCP transport judges from multiple goroutines);
// on SimNet the single-proc discipline makes the lock free of contention.
type Injector struct {
	plan Plan

	mu   sync.Mutex
	draw uint64 // global draw counter: one per probabilistic decision
	hits []int  // per-rule fire counts (MaxHits accounting)
}

// NewInjector compiles a plan. A nil-equivalent (zero) plan yields an
// injector whose Judge always returns the zero Decision.
func NewInjector(plan Plan) *Injector {
	return &Injector{plan: plan, hits: make([]int, len(plan.Rules))}
}

// RetriableKinds are the message kinds the engine can safely lose and
// retry: idempotent request/reply RPC legs. Grant and Abort are excluded
// — they are one-shot Sends with no retry path.
var RetriableKinds = []stats.MsgKind{
	stats.KindLockReq, stats.KindLockReply,
	stats.KindRelease, stats.KindReleaseReply,
	stats.KindFetchReq, stats.KindPageData,
	stats.KindPush, stats.KindPushReply,
	stats.KindMultiFetchReq, stats.KindMultiPageData,
	stats.KindMultiPush,
	// Control-plane replication traffic is idempotent end to end (body
	// request IDs + receiver dedup), so every leg may be dropped and
	// retried: that is what lets a partition cut primary↔backup or
	// old↔new owner during a handoff and still converge.
	stats.KindReplicate, stats.KindReplicateReply,
	stats.KindPromote, stats.KindPromoteReply,
	stats.KindEpoch, stats.KindEpochReply,
	stats.KindHandoff, stats.KindHandoffReply,
	stats.KindDetect, stats.KindDetectReply,
	stats.KindCommitSeq, stats.KindCommitSeqReply,
}

func kindRetriable(k stats.MsgKind) bool {
	for _, rk := range RetriableKinds {
		if k == rk {
			return true
		}
	}
	return false
}

// Judge decides the fate of one transmission of m from → to at time now.
// Every call consumes draws from the deterministic stream, so the caller
// must judge each transmission exactly once (duplicates included if it
// wants them re-faulted; the built-in transports do not re-judge copies).
func (in *Injector) Judge(now time.Duration, from, to ids.NodeID, m wire.Msg) Decision {
	var d Decision
	if in == nil {
		return d
	}
	kind := wire.Classify(m).Kind

	in.mu.Lock()
	defer in.mu.Unlock()

	// Crash windows: a frozen endpoint buffers traffic until restart.
	for _, c := range in.plan.Crashes {
		if from != c.Node && to != c.Node {
			continue
		}
		if now < c.At {
			continue
		}
		if c.Until == 0 {
			// Permanent crash: the node is gone.
			d.Drop = true
			return d
		}
		if now < c.Until {
			if hold := c.Until - now; hold > d.Delay {
				d.Delay = hold
			}
		}
	}

	// Partitions: one-way drop of retriable traffic only.
	for _, p := range in.plan.Partitions {
		if p.From != 0 && from != p.From {
			continue
		}
		if p.To != 0 && to != p.To {
			continue
		}
		if now < p.After || (p.Before != 0 && now >= p.Before) {
			continue
		}
		if kindRetriable(kind) {
			d.Drop = true
			return d
		}
	}

	// Probabilistic rules, in plan order. A drop short-circuits the rest;
	// delays accumulate (max) and duplicates add up.
	for i := range in.plan.Rules {
		r := &in.plan.Rules[i]
		if r.MaxHits > 0 && in.hits[i] >= r.MaxHits {
			continue
		}
		if r.From != 0 && from != r.From {
			continue
		}
		if r.To != 0 && to != r.To {
			continue
		}
		if now < r.After || (r.Before != 0 && now >= r.Before) {
			continue
		}
		if r.Kinds != nil {
			match := false
			for _, k := range r.Kinds {
				if k == kind {
					match = true
					break
				}
			}
			if !match {
				continue
			}
		}
		in.draw++
		if u01(Mix64(in.plan.Seed^uint64(i+1), in.draw)) >= r.Prob {
			continue
		}
		in.hits[i]++
		switch r.Op {
		case OpDrop:
			d.Drop = true
			return d
		case OpDelay, OpReorder:
			if r.Delay > d.Delay {
				d.Delay = r.Delay
			}
		case OpDuplicate:
			d.Duplicates++
		}
	}
	return d
}

// Seed returns the plan's seed (0 for a nil injector); the transports
// reuse it to derive deterministic backoff jitter.
func (in *Injector) Seed() uint64 {
	if in == nil {
		return 0
	}
	return in.plan.Seed
}

// Active reports whether the plan can ever inject anything.
func (in *Injector) Active() bool {
	if in == nil {
		return false
	}
	return len(in.plan.Rules) > 0 || len(in.plan.Crashes) > 0 || len(in.plan.Partitions) > 0
}

// Mix64 hashes its arguments through splitmix64 into one well-mixed
// 64-bit value — the deterministic randomness primitive for both fault
// draws and retry backoff jitter.
func Mix64(vs ...uint64) uint64 {
	var x uint64 = 0x9e3779b97f4a7c15
	for _, v := range vs {
		x ^= v
		x += 0x9e3779b97f4a7c15
		x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
		x = (x ^ (x >> 27)) * 0x94d049bb133111eb
		x = x ^ (x >> 31)
	}
	return x
}

// u01 maps a hash to a float in [0,1).
func u01(v uint64) float64 { return float64(v>>11) / (1 << 53) }
