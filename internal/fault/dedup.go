package fault

import (
	"sync"

	"lotec/internal/ids"
	"lotec/internal/wire"
)

// dedupCap bounds the idempotency cache. At ~16K entries the cache spans
// far more in-flight RPCs than any run holds at once; old entries are
// evicted FIFO.
const dedupCap = 1 << 14

// Dedup is a server-side idempotency filter: requests carrying a
// wire.Idempotent request ID are executed once and their reply cached,
// so a retried or duplicated request replays the original reply instead
// of re-executing the handler. This is what makes GDO acquire/release
// and xfer fetch/push tolerate the at-least-once delivery the retry
// layer produces.
type Dedup struct {
	mu    sync.Mutex
	seen  map[dedupKey]*dedupEntry
	order []dedupKey // FIFO eviction ring
	next  int
}

type dedupKey struct {
	from ids.NodeID
	req  uint64
}

// dedupEntry parks concurrent duplicates while the first execution is in
// flight: done closes when reply is valid. Async handlers park reply
// callbacks in waiters instead of blocking.
type dedupEntry struct {
	done    chan struct{}
	reply   wire.Msg
	ready   bool              // guarded by Dedup.mu
	waiters []func(wire.Msg) // guarded by Dedup.mu
}

// NewDedup returns an empty filter.
func NewDedup() *Dedup {
	return &Dedup{seen: make(map[dedupKey]*dedupEntry)}
}

// Wrap decorates a transport handler with idempotent-replay semantics.
// Messages that are not Idempotent (or carry request ID 0 — never
// stamped, e.g. on the zero-fault path) pass through untouched. A
// duplicate arriving while the original is still executing blocks until
// the original's reply is available, then replays it.
func (d *Dedup) Wrap(h func(ids.NodeID, wire.Msg) wire.Msg) func(ids.NodeID, wire.Msg) wire.Msg {
	return func(from ids.NodeID, m wire.Msg) wire.Msg {
		im, ok := m.(wire.Idempotent)
		if !ok || im.RequestID() == 0 {
			return h(from, m)
		}
		key := dedupKey{from: from, req: im.RequestID()}
		d.mu.Lock()
		if e, hit := d.seen[key]; hit {
			d.mu.Unlock()
			<-e.done
			return e.reply
		}
		e := &dedupEntry{done: make(chan struct{})}
		d.insertLocked(key, e)
		d.mu.Unlock()

		reply := h(from, m)
		d.mu.Lock()
		e.reply = reply
		e.ready = true
		d.mu.Unlock()
		close(e.done)
		return reply
	}
}

// insertLocked adds an entry, evicting FIFO past dedupCap. Caller holds
// d.mu.
func (d *Dedup) insertLocked(key dedupKey, e *dedupEntry) {
	if len(d.order) < dedupCap {
		d.order = append(d.order, key)
	} else {
		delete(d.seen, d.order[d.next])
		d.order[d.next] = key
		d.next = (d.next + 1) % dedupCap
	}
	d.seen[key] = e
}

// WrapAsync decorates an asynchronous handler (one that replies through a
// callback, possibly after the handler itself returned) with the same
// idempotent-replay semantics as Wrap. Duplicates arriving while the first
// execution is still pending park their reply callbacks instead of
// blocking — handlers run on the transport's delivery context, which must
// never block.
func (d *Dedup) WrapAsync(h func(ids.NodeID, wire.Msg, func(wire.Msg))) func(ids.NodeID, wire.Msg, func(wire.Msg)) {
	return func(from ids.NodeID, m wire.Msg, reply func(wire.Msg)) {
		im, ok := m.(wire.Idempotent)
		if !ok || im.RequestID() == 0 {
			h(from, m, reply)
			return
		}
		key := dedupKey{from: from, req: im.RequestID()}
		d.mu.Lock()
		if e, hit := d.seen[key]; hit {
			if e.ready {
				d.mu.Unlock()
				reply(e.reply)
				return
			}
			e.waiters = append(e.waiters, reply)
			d.mu.Unlock()
			return
		}
		e := &dedupEntry{done: make(chan struct{})}
		d.insertLocked(key, e)
		d.mu.Unlock()

		h(from, m, func(resp wire.Msg) {
			d.mu.Lock()
			if e.ready { // handler double-reply; first wins
				d.mu.Unlock()
				return
			}
			e.reply = resp
			e.ready = true
			waiters := e.waiters
			e.waiters = nil
			d.mu.Unlock()
			close(e.done)
			reply(resp)
			for _, w := range waiters {
				w(resp)
			}
		})
	}
}

// Prime inserts a completed (request → reply) pair without executing
// anything. A backup applying a replicated op primes its cache with the
// computed reply keyed by the original client's identity, so after a
// promotion the client's retried request replays exactly the reply the
// dead primary would have sent — exactly-once across failover. An existing
// entry (the client's retry raced ahead) is left untouched.
func (d *Dedup) Prime(from ids.NodeID, reqID uint64, reply wire.Msg) {
	if reqID == 0 {
		return
	}
	key := dedupKey{from: from, req: reqID}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, hit := d.seen[key]; hit {
		return
	}
	done := make(chan struct{})
	close(done)
	d.insertLocked(key, &dedupEntry{done: done, reply: reply, ready: true})
}
