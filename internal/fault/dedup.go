package fault

import (
	"sync"

	"lotec/internal/ids"
	"lotec/internal/wire"
)

// dedupCap bounds the idempotency cache. At ~16K entries the cache spans
// far more in-flight RPCs than any run holds at once; old entries are
// evicted FIFO.
const dedupCap = 1 << 14

// Dedup is a server-side idempotency filter: requests carrying a
// wire.Idempotent request ID are executed once and their reply cached,
// so a retried or duplicated request replays the original reply instead
// of re-executing the handler. This is what makes GDO acquire/release
// and xfer fetch/push tolerate the at-least-once delivery the retry
// layer produces.
type Dedup struct {
	mu    sync.Mutex
	seen  map[dedupKey]*dedupEntry
	order []dedupKey // FIFO eviction ring
	next  int
}

type dedupKey struct {
	from ids.NodeID
	req  uint64
}

// dedupEntry parks concurrent duplicates while the first execution is in
// flight: done closes when reply is valid.
type dedupEntry struct {
	done  chan struct{}
	reply wire.Msg
}

// NewDedup returns an empty filter.
func NewDedup() *Dedup {
	return &Dedup{seen: make(map[dedupKey]*dedupEntry)}
}

// Wrap decorates a transport handler with idempotent-replay semantics.
// Messages that are not Idempotent (or carry request ID 0 — never
// stamped, e.g. on the zero-fault path) pass through untouched. A
// duplicate arriving while the original is still executing blocks until
// the original's reply is available, then replays it.
func (d *Dedup) Wrap(h func(ids.NodeID, wire.Msg) wire.Msg) func(ids.NodeID, wire.Msg) wire.Msg {
	return func(from ids.NodeID, m wire.Msg) wire.Msg {
		im, ok := m.(wire.Idempotent)
		if !ok || im.RequestID() == 0 {
			return h(from, m)
		}
		key := dedupKey{from: from, req: im.RequestID()}
		d.mu.Lock()
		if e, hit := d.seen[key]; hit {
			d.mu.Unlock()
			<-e.done
			return e.reply
		}
		e := &dedupEntry{done: make(chan struct{})}
		if len(d.order) < dedupCap {
			d.order = append(d.order, key)
		} else {
			delete(d.seen, d.order[d.next])
			d.order[d.next] = key
			d.next = (d.next + 1) % dedupCap
		}
		d.seen[key] = e
		d.mu.Unlock()

		e.reply = h(from, m)
		close(e.done)
		return e.reply
	}
}
