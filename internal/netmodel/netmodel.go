// Package netmodel implements the analytic network cost model of §5 of the
// paper: the time to move one message is a fixed per-message software
// startup cost ("Software cost" on the x-axis of Figures 6–8, covering
// protocol stack traversal, interrupts and copies) plus the wire time of the
// message's bytes at the link bandwidth.
//
// The paper simulates switched (collision-free) conventional, fast and
// gigabit Ethernet at software costs from 100 µs (heavyweight kernel
// protocol stacks) down to 500 ns (aggressive user-level messaging à la
// U-Net / Active Messages / VIA).
package netmodel

import (
	"fmt"
	"time"
)

// Params describes one network configuration.
type Params struct {
	// Name is a human-readable label, e.g. "100Mbps".
	Name string
	// BandwidthBps is the link bandwidth in bits per second.
	BandwidthBps float64
	// SoftwareCost is the fixed per-message initiation overhead.
	SoftwareCost time.Duration
}

// String implements fmt.Stringer.
func (p Params) String() string {
	return fmt.Sprintf("%s+%v", p.Name, p.SoftwareCost)
}

// MsgTime returns the time to transmit one message of the given size:
// SoftwareCost + bytes×8 / bandwidth.
func (p Params) MsgTime(bytes int) time.Duration {
	if bytes < 0 {
		bytes = 0
	}
	wire := time.Duration(float64(bytes) * 8 / p.BandwidthBps * float64(time.Second))
	return p.SoftwareCost + wire
}

// Bandwidth presets matching the paper's three simulated networks
// (switched, i.e. no collisions).
var (
	// Ethernet10 is conventional 10 Mbps switched Ethernet (Figure 6).
	Ethernet10 = Params{Name: "10Mbps", BandwidthBps: 10e6}
	// Ethernet100 is fast 100 Mbps switched Ethernet (Figure 7).
	Ethernet100 = Params{Name: "100Mbps", BandwidthBps: 100e6}
	// Gigabit is 1 Gbps switched Ethernet (Figure 8).
	Gigabit = Params{Name: "1Gbps", BandwidthBps: 1e9}
)

// SoftwareCosts are the per-message startup latencies swept in Figures 6–8.
var SoftwareCosts = []time.Duration{
	100 * time.Microsecond,
	20 * time.Microsecond,
	5 * time.Microsecond,
	1 * time.Microsecond,
	500 * time.Nanosecond,
}

// WithSoftwareCost returns a copy of p using the given startup cost.
func (p Params) WithSoftwareCost(c time.Duration) Params {
	p.SoftwareCost = c
	return p
}

// Networks lists the three bandwidth presets in the order the paper reports
// them.
var Networks = []Params{Ethernet10, Ethernet100, Gigabit}
