package netmodel

import (
	"testing"
	"testing/quick"
	"time"
)

func TestMsgTimeComponents(t *testing.T) {
	p := Params{Name: "test", BandwidthBps: 8e6, SoftwareCost: 10 * time.Microsecond}
	// 1000 bytes at 8 Mbps = 8000 bits / 8e6 bps = 1 ms.
	got := p.MsgTime(1000)
	want := 10*time.Microsecond + time.Millisecond
	if got != want {
		t.Errorf("MsgTime(1000) = %v, want %v", got, want)
	}
}

func TestMsgTimeZeroAndNegativeBytes(t *testing.T) {
	p := Ethernet100.WithSoftwareCost(5 * time.Microsecond)
	if got := p.MsgTime(0); got != 5*time.Microsecond {
		t.Errorf("MsgTime(0) = %v", got)
	}
	if got := p.MsgTime(-10); got != 5*time.Microsecond {
		t.Errorf("MsgTime(-10) = %v", got)
	}
}

func TestPresets(t *testing.T) {
	if Ethernet10.BandwidthBps != 10e6 || Ethernet100.BandwidthBps != 100e6 || Gigabit.BandwidthBps != 1e9 {
		t.Error("preset bandwidths wrong")
	}
	if len(SoftwareCosts) != 5 || SoftwareCosts[0] != 100*time.Microsecond || SoftwareCosts[4] != 500*time.Nanosecond {
		t.Errorf("SoftwareCosts = %v", SoftwareCosts)
	}
	if len(Networks) != 3 {
		t.Errorf("Networks = %v", Networks)
	}
}

func TestWithSoftwareCostDoesNotMutate(t *testing.T) {
	p := Ethernet10
	q := p.WithSoftwareCost(time.Microsecond)
	if p.SoftwareCost != 0 {
		t.Error("WithSoftwareCost mutated receiver")
	}
	if q.SoftwareCost != time.Microsecond || q.BandwidthBps != p.BandwidthBps {
		t.Errorf("q = %+v", q)
	}
}

func TestString(t *testing.T) {
	p := Gigabit.WithSoftwareCost(500 * time.Nanosecond)
	if got := p.String(); got != "1Gbps+500ns" {
		t.Errorf("String() = %q", got)
	}
}

func TestMsgTimeMonotonicProperty(t *testing.T) {
	p := Ethernet100.WithSoftwareCost(time.Microsecond)
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return p.MsgTime(x) <= p.MsgTime(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFasterNetworkNeverSlowerProperty(t *testing.T) {
	slow := Ethernet10.WithSoftwareCost(time.Microsecond)
	fast := Gigabit.WithSoftwareCost(time.Microsecond)
	f := func(n uint16) bool {
		return fast.MsgTime(int(n)) <= slow.MsgTime(int(n))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
