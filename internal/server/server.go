package server

import (
	"fmt"

	"lotec/internal/core"
	"lotec/internal/directory"
	"lotec/internal/fault"
	"lotec/internal/gdo"
	"lotec/internal/ids"
	"lotec/internal/node"
	"lotec/internal/pstore"
	"lotec/internal/schema"
	"lotec/internal/stats"
	"lotec/internal/transport"
	"lotec/internal/txn"
	"lotec/internal/wire"
)

// Topology describes a TCP deployment: the data nodes (IDs 1..len(Nodes))
// and the GDO service, which gets the node ID after the last data node.
type Topology struct {
	// NodeAddrs[i] is the host:port of node i+1.
	NodeAddrs []string
	// GDOAddr is the directory service's host:port.
	GDOAddr string
	// DirectoryShards partitions the directory service into that many
	// independent shards (0 or 1 → a single partition). Every process of a
	// deployment must use the same value: nodes compute shard addresses
	// from it and the GDO host dispatches on them.
	DirectoryShards int
}

// GDONode returns the directory's node ID.
func (t Topology) GDONode() ids.NodeID { return ids.NodeID(len(t.NodeAddrs) + 1) }

// Placement returns the deployment's shared object→shard/home assignment.
func (t Topology) Placement() directory.Placement {
	return directory.NewPlacement(t.DirectoryShards, len(t.NodeAddrs))
}

// InitialMap returns the deployment's epoch-stamped placement map: every
// shard's primary is the single GDO host, no backups. Nodes start from
// this map and adopt any newer one a RouteResp carries, so a deployment
// that later relocates shards corrects stale clients instead of erroring.
func (t Topology) InitialMap() wire.PlacementMap {
	shards := t.DirectoryShards
	if shards < 1 {
		shards = 1
	}
	return directory.InitialMap(shards, len(t.NodeAddrs), []ids.NodeID{t.GDONode()}, false)
}

// addrMap builds the ID→address table shared by every process.
func (t Topology) addrMap() map[ids.NodeID]string {
	m := make(map[ids.NodeID]string, len(t.NodeAddrs)+1)
	for i, a := range t.NodeAddrs {
		m[ids.NodeID(i+1)] = a
	}
	m[t.GDONode()] = t.GDOAddr
	return m
}

// GDOServer hosts the global directory of objects for a TCP deployment.
type GDOServer struct {
	topo Topology
	net  *TCPNet
	dir  *directory.Sharded
	// cur is the authoritative epoch-stamped placement map. Requests
	// stamped with a different epoch (or addressed to the wrong shard) are
	// answered with a RouteResp carrying this map instead of an error, so
	// a client with a stale view re-aims rather than aborts.
	cur wire.PlacementMap
}

// NewGDOServer creates (without starting) a directory server. The handler
// always runs behind an idempotency cache: any node of the deployment may
// have the retry layer enabled, and a retransmitted acquire/release must
// observe the first execution's reply, not run twice. With no retries in
// play the cache is a pure pass-through (request IDs stay zero).
func NewGDOServer(topo Topology) *GDOServer {
	p := topo.Placement()
	s := &GDOServer{
		topo: topo,
		dir:  directory.NewSharded(p.Shards, p.Nodes),
		cur:  topo.InitialMap(),
	}
	s.net = NewTCPNet(topo.GDONode(), topo.addrMap())
	s.net.SetHandler(fault.NewDedup().Wrap(s.handle))
	return s
}

// InstallFaults injects a deterministic fault plan into the directory's
// outbound traffic and enables its retry layer. Call before Start.
func (s *GDOServer) InstallFaults(plan fault.Plan, policy transport.RetryPolicy) {
	s.net.InstallFaults(fault.NewInjector(plan), policy)
}

// SetRecorder attaches a stats recorder: every frame the directory sends
// (replies, deferred grants, deadlock aborts) joins the trace. Share one
// recorder across the GDO and the nodes of an in-process deployment to get
// a cluster-wide message trace (the calibrate loop does). Call before
// Start.
func (s *GDOServer) SetRecorder(rec *stats.Recorder) { s.net.SetRecorder(rec) }

// Start begins serving.
func (s *GDOServer) Start() error { return s.net.Listen() }

// Close stops the server.
func (s *GDOServer) Close() error { return s.net.Close() }

// Addr returns the bound address.
func (s *GDOServer) Addr() string { return s.net.Addr() }

// Directory exposes the directory (diagnostics).
func (s *GDOServer) Directory() *directory.Sharded { return s.dir }

// redirect reports whether a request's placement view is stale — a
// mismatched epoch stamp or a wrong shard address — and if so builds the
// corrective RouteResp. Epoch 0 (an unstamped legacy client) is accepted:
// only a client that claims a view can claim a stale one.
func (s *GDOServer) redirect(epoch uint64, obj ids.ObjectID, shard int32) wire.Msg {
	if epoch != 0 && epoch != s.cur.Epoch {
		return &wire.RouteResp{Map: s.cur.Clone()}
	}
	if want := s.dir.ShardOf(obj); int(shard) != want {
		return &wire.RouteResp{Map: s.cur.Clone()}
	}
	return nil
}

// handle serves the directory protocol. The event routing mirrors
// node.Engine.routeEvents.
func (s *GDOServer) handle(from ids.NodeID, m wire.Msg) wire.Msg {
	switch req := m.(type) {
	case *wire.AcquireReq:
		if rr := s.redirect(req.Epoch, req.Obj, req.Shard); rr != nil {
			return rr
		}
		res, events, err := s.dir.Acquire(req.Obj, req.Ref, req.Family, req.Age, req.Site, req.Mode)
		if err != nil {
			return &wire.ErrResp{Msg: err.Error()}
		}
		s.route(events)
		return &wire.AcquireResp{
			Obj:        req.Obj,
			Status:     res.Status,
			Mode:       res.Mode,
			NumPages:   int32(res.NumPages),
			LastWriter: res.LastWriter,
			Shard:      req.Shard,
			PageMap:    res.PageMap,
		}
	case *wire.ReleaseReq:
		for _, rel := range req.Rels {
			if rr := s.redirect(req.Epoch, rel.Obj, req.Shard); rr != nil {
				return rr
			}
		}
		events, stamps, err := s.dir.Release(req.Family, req.Site, req.Commit, req.Rels)
		if err != nil {
			return &wire.ErrResp{Msg: err.Error()}
		}
		s.route(events)
		return &wire.ReleaseResp{Shard: req.Shard, Stamps: stamps}
	case *wire.CommitSeqReq:
		if req.Epoch != 0 && req.Epoch != s.cur.Epoch {
			return &wire.RouteResp{Map: s.cur.Clone()}
		}
		return &wire.CommitSeqResp{Seq: s.dir.AssignCommitSeq(req.Family)}
	case *wire.CopySetReq:
		sets := make([]wire.CopySet, 0, len(req.Objs))
		for _, obj := range req.Objs {
			sites, err := s.dir.CopySet(obj)
			if err != nil {
				return &wire.ErrResp{Msg: err.Error()}
			}
			sets = append(sets, wire.CopySet{Obj: obj, Sites: sites})
		}
		return &wire.CopySetResp{Sets: sets}
	case *wire.RegisterReq:
		err := s.dir.Register(req.Obj, int(req.NumPages), req.Owner)
		if err != nil {
			return &wire.ErrResp{Msg: err.Error()}
		}
		return &wire.RegisterResp{}
	default:
		return &wire.ErrResp{Msg: "gdo: unhandled message type"}
	}
}

func (s *GDOServer) route(events []gdo.Event) {
	for _, ev := range events {
		switch ev.Kind {
		case gdo.EventGrant:
			_ = s.net.Send(ev.Site, &wire.Grant{
				Obj:        ev.Obj,
				Family:     ev.Family,
				Mode:       ev.Mode,
				Upgrade:    ev.Upgrade,
				NumPages:   int32(ev.NumPages),
				LastWriter: ev.LastWriter,
				Shard:      ev.Shard,
				Reqs:       ev.Reqs,
				PageMap:    ev.PageMap,
			})
		case gdo.EventDeadlockAbort:
			_ = s.net.Send(ev.Site, &wire.Abort{
				Obj:    ev.Obj,
				Family: ev.Family,
				Shard:  ev.Shard,
				Reqs:   ev.Reqs,
			})
		}
	}
}

// NodeConfig assembles one data node of a TCP deployment.
type NodeConfig struct {
	// Topology is the shared deployment layout.
	Topology Topology
	// Self is this node's ID (1-based index into Topology.NodeAddrs).
	Self ids.NodeID
	// Protocol is the default consistency protocol (must match
	// cluster-wide).
	Protocol core.Protocol
	// ProtocolOverrides selects per-class protocols (must match
	// cluster-wide).
	ProtocolOverrides map[ids.ClassID]core.Protocol
	// PageSize must match cluster-wide (0 → 4096).
	PageSize int
	// Lenient disables strict access checking.
	Lenient bool
	// FetchConcurrency bounds in-flight per-site calls of one page
	// transfer fan-out (0 → default 4).
	FetchConcurrency int
	// DeltaOff disables sub-page delta transfers (must match cluster-wide).
	DeltaOff bool
	// DeltaJournalDepth bounds the per-page dirty-range journal (0 →
	// default 8; must match cluster-wide).
	DeltaJournalDepth int
	// Rec records traffic; may be nil.
	Rec *stats.Recorder
	// Faults, when non-nil, injects the deterministic fault plan into this
	// node's outbound traffic and enables the RPC retry layer. Nil keeps
	// the historical fault-free paths.
	Faults *fault.Plan
	// Retry overrides the retry policy (zero fields fall back to the TCP
	// defaults). Only consulted when Faults is non-nil.
	Retry transport.RetryPolicy
}

// NodeServer is one LOTEC site over TCP: it executes transactions submitted
// by clients (RunReq) and serves the protocol's inter-site messages.
type NodeServer struct {
	cfg     NodeConfig
	net     *TCPNet
	eng     *node.Engine
	schemas *schema.Registry
	methods *node.MethodTable
}

// NewNodeServer creates (without starting) a node.
func NewNodeServer(cfg NodeConfig) (*NodeServer, error) {
	if int(cfg.Self) < 1 || int(cfg.Self) > len(cfg.Topology.NodeAddrs) {
		return nil, fmt.Errorf("server: node id %v outside topology", cfg.Self)
	}
	if cfg.Protocol == nil {
		cfg.Protocol = core.LOTEC
	}
	if cfg.PageSize <= 0 {
		cfg.PageSize = 4096
	}
	s := &NodeServer{
		cfg:     cfg,
		schemas: schema.NewRegistry(cfg.PageSize),
		methods: node.NewMethodTable(),
	}
	s.net = NewTCPNet(cfg.Self, cfg.Topology.addrMap())
	gdoNode := cfg.Topology.GDONode()
	place := cfg.Topology.Placement()
	// Every GDO request goes through a route table seeded with the
	// deployment's initial map: requests carry the adopted epoch and a
	// RouteResp from the directory (stale epoch, relocated shard) re-aims
	// them instead of failing the transaction.
	route := directory.NewRouteTable(s.net, cfg.Rec, cfg.Topology.InitialMap())
	eng, err := node.New(node.Config{
		Env:               s.net,
		Store:             pstore.NewStore(cfg.PageSize),
		Schemas:           s.schemas,
		Methods:           s.methods,
		Manager:           txn.NewManagerAt(uint64(cfg.Self) << 40),
		Protocol:          cfg.Protocol,
		ProtocolOverrides: cfg.ProtocolOverrides,
		HomeFn:            func(ids.ObjectID) ids.NodeID { return gdoNode },
		ShardFn:           place.ShardOf,
		Route:             route,
		Rec:               cfg.Rec,
		FetchConcurrency:  cfg.FetchConcurrency,
		Strict:            !cfg.Lenient,
		DeltaOff:          cfg.DeltaOff,
		DeltaJournalDepth: cfg.DeltaJournalDepth,
	})
	if err != nil {
		return nil, err
	}
	s.eng = eng
	// Like the GDO, a node always answers through the idempotency cache:
	// peers retransmitting fetch/push calls must get the cached reply.
	s.net.SetHandler(fault.NewDedup().Wrap(eng.Handle))
	s.net.SetAsyncHandler(wire.TRunReq, s.handleRun)
	if cfg.Rec != nil {
		s.net.SetRecorder(cfg.Rec)
	}
	if cfg.Faults != nil {
		s.net.InstallFaults(fault.NewInjector(*cfg.Faults), cfg.Retry)
	}
	return s, nil
}

// AddClass registers a class at this node. Every node of a deployment must
// register the same classes (the schema is part of the application binary).
func (s *NodeServer) AddClass(cls *schema.Class) error { return s.schemas.Add(cls) }

// OnMethod registers a method body at this node.
func (s *NodeServer) OnMethod(cls *schema.Class, method string, fn node.MethodFunc) error {
	return s.methods.Register(cls, method, fn)
}

// CreateObject registers an object locally and, when this node is the
// owner, also in the GDO (exactly one node per object should own it).
func (s *NodeServer) CreateObject(obj ids.ObjectID, class ids.ClassID, owner ids.NodeID) error {
	if err := s.eng.RegisterObject(obj, class, owner); err != nil {
		return err
	}
	if owner != s.net.Self() {
		return nil
	}
	layout, err := s.schemas.Layout(class)
	if err != nil {
		return err
	}
	reply, err := s.net.Call(s.cfg.Topology.GDONode(), &wire.RegisterReq{
		Obj:      obj,
		Class:    class,
		NumPages: int32(layout.NumPages()),
		Owner:    owner,
	})
	if err != nil {
		return fmt.Errorf("server: register %v with GDO: %w", obj, err)
	}
	if _, ok := reply.(*wire.RegisterResp); !ok {
		return fmt.Errorf("server: register %v: unexpected reply %T", obj, reply)
	}
	return nil
}

// Start begins serving.
func (s *NodeServer) Start() error { return s.net.Listen() }

// Close stops the node.
func (s *NodeServer) Close() error { return s.net.Close() }

// Addr returns the bound address.
func (s *NodeServer) Addr() string { return s.net.Addr() }

// Engine exposes the protocol engine (diagnostics).
func (s *NodeServer) Engine() *node.Engine { return s.eng }

// Run executes a root transaction at this node (in-process entry point).
func (s *NodeServer) Run(obj ids.ObjectID, method string, arg []byte) ([]byte, error) {
	out, _, err := s.eng.Run(obj, method, arg)
	return out, err
}

// handleRun serves a client's RunReq: the transaction executes on its own
// goroutine and the reply goes back on the arrival connection when it
// finishes.
func (s *NodeServer) handleRun(_ ids.NodeID, m wire.Msg, reply func(wire.Msg)) {
	req, ok := m.(*wire.RunReq)
	if !ok {
		reply(&wire.ErrResp{Msg: "server: malformed run request"})
		return
	}
	go func() {
		out, _, err := s.eng.Run(req.Obj, req.Method, req.Arg)
		resp := &wire.RunResp{Result: out}
		if err != nil {
			resp.ErrMsg = err.Error()
		}
		reply(resp)
	}()
}
