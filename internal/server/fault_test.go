package server

import (
	"sync"
	"testing"
	"time"

	"lotec/internal/core"
	"lotec/internal/fault"
	"lotec/internal/ids"
	"lotec/internal/transport"
)

// faultPlan builds a dup+delay+drop schedule over the retriable RPC kinds.
// Probabilities are high enough that every cell below reliably exercises
// the injector's delayed and duplicated send paths, which hold encoded
// buffers in goroutines with unbounded lifetimes — the one place the
// transport must NOT hand out pooled frames.
func faultPlan(seed uint64) fault.Plan {
	return fault.Plan{
		Seed: seed,
		Rules: []fault.Rule{
			{Op: fault.OpDuplicate, Prob: 0.25, Kinds: fault.RetriableKinds},
			{Op: fault.OpDelay, Prob: 0.25, Delay: 2 * time.Millisecond},
			{Op: fault.OpDrop, Prob: 0.05, Kinds: fault.RetriableKinds},
		},
	}
}

// startFaultyDeployment is startDeployment with a fault plan installed on
// the directory and every node, plus a tight retry policy so dropped RPC
// legs recover quickly.
func startFaultyDeployment(t *testing.T, n int, plan fault.Plan) (Topology, []*NodeServer) {
	t.Helper()
	retry := transport.RetryPolicy{
		Attempts:    8,
		Timeout:     500 * time.Millisecond,
		BaseBackoff: 5 * time.Millisecond,
		MaxBackoff:  50 * time.Millisecond,
	}
	addrs := freeAddrs(t, n+1)
	topo := Topology{NodeAddrs: addrs[:n], GDOAddr: addrs[n]}
	g := NewGDOServer(topo)
	g.InstallFaults(plan, retry)
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = g.Close() })
	cls := accountClass(t)
	nodes := make([]*NodeServer, 0, n)
	for i := 1; i <= n; i++ {
		ns, err := NewNodeServer(NodeConfig{
			Topology: topo,
			Self:     ids.NodeID(i),
			Protocol: core.LOTEC,
			PageSize: 256,
			Faults:   &plan,
			Retry:    retry,
		})
		if err != nil {
			t.Fatal(err)
		}
		registerBodies(t, ns, cls)
		if err := ns.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = ns.Close() })
		nodes = append(nodes, ns)
	}
	return topo, nodes
}

// TestTCPFaultInjectionPooledFrames runs concurrent cross-node
// transactions through the TCP transport while the injector duplicates,
// delays, and drops retriable traffic. With pooled read/write frames this
// is the use-after-release gauntlet: a delayed or duplicated send that
// aliased a pooled frame would be scribbled over by a later message and
// corrupt the stream (and trip -race via the release-time poison).
// Correctness check: every deposit lands exactly once.
func TestTCPFaultInjectionPooledFrames(t *testing.T) {
	if testing.Short() {
		t.Skip("fault cell is timing-dependent; skipped in -short")
	}
	topo, nodes := startFaultyDeployment(t, 2, faultPlan(0x10c0de))
	obj := ids.ObjectID(7001)
	createObject(t, nodes, obj, 1)

	cli, err := Dial(topo.NodeAddrs[1], 2) // client at node 2; object owned by node 1
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const (
		workers  = 4
		deposits = 10
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers*deposits)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < deposits; i++ {
				if _, err := cli.Run(obj, "deposit", i64(1)); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	got, err := cli.Run(obj, "peek", nil)
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(workers * deposits); dec64(got) != want {
		t.Fatalf("balance = %d, want %d (lost or double-applied deposits under faults)", dec64(got), want)
	}
}
