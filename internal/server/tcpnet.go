// Package server runs the LOTEC engine over real TCP: a transport.Env
// implementation on sockets, a GDO directory server, a node (site) server
// that executes transactions, and a thin client. The §6 remark that "an
// actual implementation … is now underway" becomes this user-space runtime:
// identical protocol code to the simulation, different transport.
package server

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lotec/internal/fault"
	"lotec/internal/ids"
	"lotec/internal/stats"
	"lotec/internal/transport"
	"lotec/internal/wire"
)

// replyBit marks an envelope's ReqID as a reply to the peer's request with
// the same ID, so both directions of a connection share one ID space.
const replyBit = uint64(1) << 63

// callTimeout bounds how long an RPC waits for its reply when no retry
// policy is installed.
const callTimeout = 30 * time.Second

// dialTimeout bounds connection establishment; a dead peer fails fast
// instead of consuming the whole call budget.
const dialTimeout = 5 * time.Second

// writeTimeout bounds each frame write, so a stalled peer (full socket
// buffers, half-open connection) cannot hang a transaction forever — the
// write fails, the connection is torn down and the call surfaces a
// retryable error.
const writeTimeout = 10 * time.Second

// tcpRetryDefaults is the wall-clock retry policy installed by
// InstallFaults when fields are left zero.
var tcpRetryDefaults = transport.RetryPolicy{
	Attempts:    4,
	Timeout:     3 * time.Second,
	BaseBackoff: 50 * time.Millisecond,
	MaxBackoff:  time.Second,
}

// AsyncHandler processes messages whose replies are produced later (e.g.
// RunReq, which executes a whole transaction). The reply closure writes the
// response on the connection the request arrived on.
type AsyncHandler func(from ids.NodeID, m wire.Msg, reply func(wire.Msg))

// TCPNet is the sockets implementation of transport.Env. One TCPNet
// instance represents one process (a site or the GDO); peers are dialed
// lazily by node ID.
type TCPNet struct {
	self  ids.NodeID
	addrs map[ids.NodeID]string
	start time.Time

	handler transport.Handler
	async   map[wire.MsgType]AsyncHandler

	mu       sync.Mutex
	listener net.Listener             // guarded by mu
	conns    map[ids.NodeID]*tcpConn  // guarded by mu
	pending  map[uint64]chan wire.Msg // guarded by mu
	closed   bool                     // guarded by mu

	reqID atomic.Uint64

	// Fault layer (optional, setup-time): inj judges outbound frames at
	// the conn boundary, retry governs Call retransmission, rec counts
	// faults and retries. All nil/zero by default — the historical paths.
	inj   *fault.Injector
	retry transport.RetryPolicy
	rec   *stats.Recorder
}

var _ transport.Env = (*TCPNet)(nil)

// tcpConn is one established connection with a write lock.
type tcpConn struct {
	c  net.Conn
	wm sync.Mutex
}

// NewTCPNet creates the endpoint for node self. addrs maps every node ID in
// the deployment (including self and the GDO node) to host:port.
func NewTCPNet(self ids.NodeID, addrs map[ids.NodeID]string) *TCPNet {
	cp := make(map[ids.NodeID]string, len(addrs))
	for k, v := range addrs {
		cp[k] = v
	}
	return &TCPNet{
		self:    self,
		addrs:   cp,
		start:   time.Now(),
		async:   make(map[wire.MsgType]AsyncHandler),
		conns:   make(map[ids.NodeID]*tcpConn),
		pending: make(map[uint64]chan wire.Msg),
	}
}

// SetHandler installs the synchronous message handler (must not block).
func (n *TCPNet) SetHandler(h transport.Handler) { n.handler = h }

// SetAsyncHandler routes one message type to an asynchronous handler.
func (n *TCPNet) SetAsyncHandler(t wire.MsgType, h AsyncHandler) { n.async[t] = h }

// SetRecorder attaches a stats recorder for fault/retry counters. Call
// during setup.
func (n *TCPNet) SetRecorder(rec *stats.Recorder) { n.rec = rec }

// InstallFaults attaches a fault injector and enables the retry layer:
// outbound frames pass through the injector, and idempotent calls are
// retransmitted with capped jittered exponential backoff on timeout.
// Zero policy fields fall back to tcpRetryDefaults. Call during setup.
func (n *TCPNet) InstallFaults(inj *fault.Injector, policy transport.RetryPolicy) {
	if policy.Seed == 0 {
		policy.Seed = inj.Seed()
	}
	n.retry = policy.WithDefaults(tcpRetryDefaults)
	// An inert injector (nil or an empty plan) is not installed: timeouts
	// and retries remain (they guard against real network loss) but the
	// per-frame fault judging is strictly pay-for-what-you-use.
	if inj.Active() {
		n.inj = inj
	}
}

// Listen starts accepting connections on the node's own address.
func (n *TCPNet) Listen() error {
	addr, ok := n.addrs[n.self]
	if !ok {
		return fmt.Errorf("server: no address configured for %v", n.self)
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("server: listen %s: %w", addr, err)
	}
	n.mu.Lock()
	n.listener = l
	n.mu.Unlock()
	go n.acceptLoop(l)
	return nil
}

// Addr returns the bound listen address (useful with ":0").
func (n *TCPNet) Addr() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.listener == nil {
		return ""
	}
	return n.listener.Addr().String()
}

// Close shuts the endpoint down.
func (n *TCPNet) Close() error {
	n.mu.Lock()
	n.closed = true
	l := n.listener
	conns := n.conns
	n.conns = map[ids.NodeID]*tcpConn{}
	for _, ch := range n.pending {
		close(ch)
	}
	n.pending = map[uint64]chan wire.Msg{}
	n.mu.Unlock()
	if l != nil {
		_ = l.Close()
	}
	for _, c := range conns {
		_ = c.c.Close()
	}
	return nil
}

func (n *TCPNet) acceptLoop(l net.Listener) {
	for {
		c, err := l.Accept()
		if err != nil {
			return
		}
		go n.readLoop(&tcpConn{c: c}, ids.NoNode)
	}
}

// conn returns (dialing if needed) the connection to a peer.
func (n *TCPNet) conn(to ids.NodeID) (*tcpConn, error) {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, transport.ErrClosed
	}
	if c, ok := n.conns[to]; ok {
		n.mu.Unlock()
		return c, nil
	}
	addr, ok := n.addrs[to]
	n.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %v", transport.ErrUnknownNode, to)
	}
	raw, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("server: dial %v at %s: %w (%v)", to, addr, transport.ErrUnreachable, err)
	}
	c := &tcpConn{c: raw}
	n.mu.Lock()
	if existing, ok := n.conns[to]; ok {
		n.mu.Unlock()
		_ = raw.Close()
		return existing, nil
	}
	n.conns[to] = c
	n.mu.Unlock()
	go n.readLoop(c, to)
	return c, nil
}

// writeFrame sends one transport-ready frame (length prefix already written
// into frame[:wire.FrameHeadroom], as wire.EncodeFrame builds it) in a
// single write. Each write carries a deadline: a peer that has stopped
// draining its socket makes the write fail instead of blocking the caller
// (and everyone queued on the write lock) indefinitely.
func (c *tcpConn) writeFrame(frame []byte) error {
	c.wm.Lock()
	defer c.wm.Unlock()
	if err := c.c.SetWriteDeadline(time.Now().Add(writeTimeout)); err != nil {
		return err
	}
	_, err := c.c.Write(frame)
	return err
}

// writeMsg frames and sends a bare encoded message (no headroom) with a
// scatter-gather writev: length prefix and body go out in one syscall
// without copying the body into a prefixed buffer. This is the path for
// buffers whose ownership is shared (fault-injected sends may hold them in
// delayed/duplicated goroutines), so they cannot come from the frame pool.
func (c *tcpConn) writeMsg(buf []byte) error {
	c.wm.Lock()
	defer c.wm.Unlock()
	if err := c.c.SetWriteDeadline(time.Now().Add(writeTimeout)); err != nil {
		return err
	}
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(buf)))
	bufs := net.Buffers{hdr[:], buf}
	_, err := bufs.WriteTo(c.c)
	return err
}

// readLoop decodes inbound frames: replies complete pending calls, requests
// run through the handlers.
func (n *TCPNet) readLoop(c *tcpConn, peer ids.NodeID) {
	defer func() {
		_ = c.c.Close()
		if peer != ids.NoNode {
			n.mu.Lock()
			if n.conns[peer] == c {
				delete(n.conns, peer)
			}
			n.mu.Unlock()
		}
	}()
	for {
		buf, err := wire.ReadFrame(c.c)
		if err != nil {
			return
		}
		// Decode in place: payload fields alias the pooled frame, which is
		// released at the bottom of the loop. Messages that outlive this
		// iteration (replies parked on pending channels, requests handed to
		// async handlers) are retained — deep-copied — first.
		env, m, err := wire.DecodeView(buf)
		if err != nil {
			wire.ReleaseFrame(buf)
			continue // drop undecodable frames
		}
		if peer == ids.NoNode && env.From != ids.NoNode && int64(env.From) < clientIDBase {
			// Learn the peer's identity from its first frame so replies and
			// future sends reuse this connection. Client identities are not
			// learned: several clients share one synthetic ID and replies go
			// back on the arrival connection anyway.
			peer = env.From
			n.mu.Lock()
			if _, ok := n.conns[peer]; !ok {
				n.conns[peer] = c
			}
			n.mu.Unlock()
		}
		if env.ReqID&replyBit != 0 {
			id := env.ReqID &^ replyBit
			n.mu.Lock()
			ch, ok := n.pending[id]
			if ok {
				delete(n.pending, id)
			}
			n.mu.Unlock()
			if ok {
				wire.Retain(m)
				ch <- m
			}
			wire.ReleaseFrame(buf)
			continue
		}
		if _, isAsync := n.async[m.Type()]; isAsync {
			wire.Retain(m)
		}
		// Synchronous handlers consume the message before returning (the
		// transport contract; replies and page installs copy what they
		// keep), so the frame is safe to recycle once dispatch returns.
		n.dispatch(c, env, m)
		wire.ReleaseFrame(buf)
	}
}

// dispatch routes one inbound request.
func (n *TCPNet) dispatch(c *tcpConn, env wire.Envelope, m wire.Msg) {
	if h, ok := n.async[m.Type()]; ok {
		reqID, from := env.ReqID, env.From
		h(from, m, func(reply wire.Msg) {
			if reqID == 0 {
				return
			}
			_ = n.transmit(c, from, wire.Envelope{
				ReqID: reqID | replyBit,
				From:  n.self,
				To:    from,
			}, reply)
		})
		return
	}
	if n.handler == nil {
		return
	}
	reply := n.handler(env.From, m)
	if reply == nil || env.ReqID == 0 {
		return
	}
	_ = n.transmit(c, env.From, wire.Envelope{
		ReqID: env.ReqID | replyBit,
		From:  n.self,
		To:    env.From,
	}, reply)
}

// clientIDBase marks synthetic client identities (see package client).
const clientIDBase = 1 << 20

// Self implements transport.Env.
func (n *TCPNet) Self() ids.NodeID { return n.self }

// Now implements transport.Env.
func (n *TCPNet) Now() time.Duration { return time.Since(n.start) }

// Go implements transport.Env.
func (n *TCPNet) Go(fn func()) { go fn() }

// Sleep implements transport.Env.
func (n *TCPNet) Sleep(d time.Duration) { time.Sleep(d) }

// NewFuture implements transport.Env.
func (n *TCPNet) NewFuture() transport.Future {
	return &chanFuture{ch: make(chan futVal, 1)}
}

// transmit writes one frame through the fault injector (when installed):
// the frame may be dropped, delayed, or duplicated per the plan.
//
// With no injector — the steady state — the message is encoded into a
// pooled frame (prefix and body contiguous, one write) that returns to the
// pool as soon as the write completes. An active injector switches to an
// unpooled buffer sent via scatter-gather writev: delayed and duplicated
// sends hold the buffer in goroutines with unbounded lifetimes, so it must
// be GC-owned — chaos pays for its own allocations, the clean path never
// does.
func (n *TCPNet) transmit(c *tcpConn, to ids.NodeID, env wire.Envelope, m wire.Msg) error {
	if n.rec != nil {
		// Every frame that leaves this process — request or reply — is
		// classified and traced, mirroring SimNet's record points (local
		// self-delivery is unrecorded on both transports). This is what
		// makes measured TCP msgs/bytes comparable to simulated ones.
		r := wire.Classify(m)
		r.From, r.To = env.From, env.To
		n.rec.Record(r)
	}
	if n.inj == nil {
		frame := wire.EncodeFrame(env, m)
		err := c.writeFrame(frame)
		wire.ReleaseFrame(frame)
		return err
	}
	buf := wire.Encode(env, m)
	d := n.inj.Judge(n.Now(), n.self, to, m)
	if d.Drop {
		if n.rec != nil {
			n.rec.AddMsgDrop()
		}
		return nil
	}
	if d.Delay > 0 {
		if n.rec != nil {
			n.rec.AddMsgDelay()
		}
		delay := d.Delay
		go func() {
			time.Sleep(delay)
			_ = c.writeMsg(buf)
		}()
	} else if err := c.writeMsg(buf); err != nil {
		return err
	}
	for i := 0; i < d.Duplicates; i++ {
		if n.rec != nil {
			n.rec.AddMsgDup()
		}
		go func() { _ = c.writeMsg(buf) }()
	}
	return nil
}

// Send implements transport.Env (one-way, ReqID 0). Under an active fault
// injector, idempotent one-way messages are upgraded to acknowledged
// retried calls: a silently dropped Send (e.g. the ghost hand-back
// release) would otherwise orphan a directory lock forever.
func (n *TCPNet) Send(to ids.NodeID, m wire.Msg) error {
	if to == n.self {
		if n.handler != nil {
			go n.handler(n.self, m)
		}
		return nil
	}
	if n.inj != nil {
		if _, ok := m.(wire.Idempotent); ok {
			go func() { _, _ = n.Call(to, m) }()
			return nil
		}
	}
	c, err := n.conn(to)
	if err != nil {
		return err
	}
	return n.transmit(c, to, wire.Envelope{From: n.self, To: to}, m)
}

// Call implements transport.Env. With a retry policy installed (see
// InstallFaults), idempotent requests are retransmitted on timeout with
// capped jittered exponential backoff; everything else gets one attempt.
func (n *TCPNet) Call(to ids.NodeID, m wire.Msg) (wire.Msg, error) {
	if to == n.self {
		if n.handler == nil {
			return nil, transport.ErrNoHandler
		}
		reply := n.handler(n.self, m)
		if er, ok := reply.(*wire.ErrResp); ok {
			return nil, fmt.Errorf("server: local error: %s", er.Msg)
		}
		return reply, nil
	}
	timeout := callTimeout
	attempts := 1
	var bodyID uint64
	if n.inj != nil {
		timeout = n.retry.Timeout
		if idem, ok := m.(wire.Idempotent); ok {
			// Stamp the body-level request ID once: unlike the envelope's
			// per-transmission ReqID it stays stable across retries, so the
			// receiver's dedup cache can absorb duplicates.
			if idem.RequestID() == 0 {
				idem.SetRequestID(n.reqID.Add(1))
			}
			bodyID = idem.RequestID()
			if attempts = n.retry.Attempts; attempts < 1 {
				attempts = 1
			}
		}
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if n.rec != nil {
				n.rec.AddCallRetry()
			}
			time.Sleep(n.retry.Backoff(bodyID, attempt-1))
		}
		reply, err := n.callOnce(to, m, timeout)
		if err == nil {
			return reply, nil
		}
		lastErr = err
		if !errors.Is(err, transport.ErrTimeout) && !errors.Is(err, transport.ErrUnreachable) {
			return nil, err
		}
	}
	if attempts == 1 {
		return nil, lastErr
	}
	return nil, fmt.Errorf("%w: call to %v: %d attempt(s) failed: %w",
		transport.ErrUnreachable, to, attempts, lastErr)
}

// callOnce is one RPC transmission: register the pending slot, write the
// frame (through the fault injector when installed), and wait up to
// timeout for the reply.
func (n *TCPNet) callOnce(to ids.NodeID, m wire.Msg, timeout time.Duration) (wire.Msg, error) {
	c, err := n.conn(to)
	if err != nil {
		return nil, err
	}
	id := n.reqID.Add(1)
	ch := make(chan wire.Msg, 1)
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, transport.ErrClosed
	}
	n.pending[id] = ch
	n.mu.Unlock()
	clear := func() {
		n.mu.Lock()
		delete(n.pending, id)
		n.mu.Unlock()
	}
	if err := n.transmit(c, to, wire.Envelope{ReqID: id, From: n.self, To: to}, m); err != nil {
		clear()
		// Tear the connection down so a retry re-dials rather than reusing
		// the broken socket.
		n.dropConn(to, c)
		return nil, fmt.Errorf("server: write to %v: %w (%v)", to, transport.ErrUnreachable, err)
	}
	select {
	case reply, ok := <-ch:
		if !ok {
			return nil, transport.ErrClosed
		}
		if er, ok := reply.(*wire.ErrResp); ok {
			return nil, fmt.Errorf("server: remote error from %v: %s", to, er.Msg)
		}
		return reply, nil
	case <-time.After(timeout):
		clear()
		if n.rec != nil {
			n.rec.AddCallTimeout()
		}
		return nil, fmt.Errorf("server: call to %v: %w", to, transport.ErrTimeout)
	}
}

// dropConn removes a connection from the pool after a write failure.
func (n *TCPNet) dropConn(to ids.NodeID, c *tcpConn) {
	n.mu.Lock()
	if n.conns[to] == c {
		delete(n.conns, to)
	}
	n.mu.Unlock()
	_ = c.c.Close()
}

// futVal carries a completion.
type futVal struct {
	v   any
	err error
}

// chanFuture is the blocking Future for real deployments.
type chanFuture struct {
	once sync.Once
	ch   chan futVal
}

// Complete implements transport.Future.
func (f *chanFuture) Complete(v any, err error) {
	f.once.Do(func() { f.ch <- futVal{v: v, err: err} })
}

// Wait implements transport.Future.
func (f *chanFuture) Wait() (any, error) {
	r := <-f.ch
	return r.v, r.err
}

// ErrNoReply reports a closed connection during an RPC.
var ErrNoReply = errors.New("server: connection closed before reply")
