package server

import (
	"encoding/binary"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"lotec/internal/core"
	"lotec/internal/ids"
	"lotec/internal/node"
	"lotec/internal/schema"
	"lotec/internal/wire"
)

// freeAddrs reserves n distinct loopback addresses.
func freeAddrs(t *testing.T, n int) []string {
	t.Helper()
	addrs := make([]string, 0, n)
	listeners := make([]net.Listener, 0, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners = append(listeners, l)
		addrs = append(addrs, l.Addr().String())
	}
	for _, l := range listeners {
		_ = l.Close()
	}
	return addrs
}

func i64(v int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}

func dec64(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }

// accountClass builds the test schema.
func accountClass(t *testing.T) *schema.Class {
	t.Helper()
	cls, err := schema.NewClassBuilder(1, "Account").
		Attr("balance", 8).
		Attr("audit", 100).
		Method(schema.MethodSpec{Name: "deposit", Writes: []string{"balance"}}).
		Method(schema.MethodSpec{Name: "peek", Reads: []string{"balance"}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return cls
}

func registerBodies(t *testing.T, s *NodeServer, cls *schema.Class) {
	t.Helper()
	if err := s.AddClass(cls); err != nil {
		t.Fatal(err)
	}
	if err := s.OnMethod(cls, "deposit", func(ctx *node.Ctx) error {
		cur, err := ctx.Read("balance")
		if err != nil {
			return err
		}
		next := dec64(cur) + dec64(ctx.Arg())
		if err := ctx.Write("balance", i64(next)); err != nil {
			return err
		}
		ctx.SetResult(i64(next))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.OnMethod(cls, "peek", func(ctx *node.Ctx) error {
		cur, err := ctx.Read("balance")
		if err != nil {
			return err
		}
		ctx.SetResult(cur)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// startDeployment brings up a GDO and n nodes on loopback.
func startDeployment(t *testing.T, n int, protocol core.Protocol) (Topology, *GDOServer, []*NodeServer) {
	t.Helper()
	addrs := freeAddrs(t, n+1)
	topo := Topology{NodeAddrs: addrs[:n], GDOAddr: addrs[n]}
	g := NewGDOServer(topo)
	if err := g.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = g.Close() })
	cls := accountClass(t)
	nodes := make([]*NodeServer, 0, n)
	for i := 1; i <= n; i++ {
		ns, err := NewNodeServer(NodeConfig{
			Topology: topo,
			Self:     ids.NodeID(i),
			Protocol: protocol,
			PageSize: 256,
		})
		if err != nil {
			t.Fatal(err)
		}
		registerBodies(t, ns, cls)
		if err := ns.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = ns.Close() })
		nodes = append(nodes, ns)
	}
	return topo, g, nodes
}

// createObject registers one object at every node (owner registers with the
// GDO).
func createObject(t *testing.T, nodes []*NodeServer, obj ids.ObjectID, owner ids.NodeID) {
	t.Helper()
	// Owner first: the GDO must know the object before others touch it.
	for _, s := range nodes {
		if s.net.Self() == owner {
			if err := s.CreateObject(obj, 1, owner); err != nil {
				t.Fatal(err)
			}
		}
	}
	for _, s := range nodes {
		if s.net.Self() != owner {
			if err := s.CreateObject(obj, 1, owner); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestTCPCrossNodeTransaction(t *testing.T) {
	for _, p := range []core.Protocol{core.LOTEC, core.COTEC} {
		t.Run(p.Name(), func(t *testing.T) {
			topo, _, nodes := startDeployment(t, 2, p)
			createObject(t, nodes, 1, 1)

			// Deposit at node 2 (remote from the owner), read at node 1.
			c2, err := Dial(topo.NodeAddrs[1], 2)
			if err != nil {
				t.Fatal(err)
			}
			defer c2.Close()
			out, err := c2.Run(1, "deposit", i64(25))
			if err != nil {
				t.Fatalf("deposit: %v", err)
			}
			if dec64(out) != 25 {
				t.Errorf("deposit result = %d", dec64(out))
			}
			c1, err := Dial(topo.NodeAddrs[0], 1)
			if err != nil {
				t.Fatal(err)
			}
			defer c1.Close()
			out, err = c1.Run(1, "peek", nil)
			if err != nil {
				t.Fatalf("peek: %v", err)
			}
			if dec64(out) != 25 {
				t.Errorf("cross-node peek = %d, want 25", dec64(out))
			}
		})
	}
}

func TestTCPConcurrentClients(t *testing.T) {
	topo, _, nodes := startDeployment(t, 3, core.LOTEC)
	createObject(t, nodes, 1, 1)

	const perClient = 10
	var wg sync.WaitGroup
	errs := make(chan error, 3*perClient)
	for n := 0; n < 3; n++ {
		c, err := Dial(topo.NodeAddrs[n], ids.NodeID(n+1))
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				if _, err := c.Run(1, "deposit", i64(1)); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("client: %v", err)
	}
	c, err := Dial(topo.NodeAddrs[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	out, err := c.Run(1, "peek", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := dec64(out); got != 30 {
		t.Errorf("final balance = %d, want 30", got)
	}
}

func TestTCPErrorPropagation(t *testing.T) {
	topo, _, nodes := startDeployment(t, 1, core.LOTEC)
	createObject(t, nodes, 1, 1)
	c, err := Dial(topo.NodeAddrs[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Run(1, "nosuch", nil); err == nil || !strings.Contains(err.Error(), "nosuch") {
		t.Errorf("unknown method error = %v", err)
	}
	if _, err := c.Run(99, "peek", nil); err == nil {
		t.Error("unknown object should fail")
	}
}

func TestTCPNetCallAndSend(t *testing.T) {
	addrs := freeAddrs(t, 2)
	m := map[ids.NodeID]string{1: addrs[0], 2: addrs[1]}
	a := NewTCPNet(1, m)
	b := NewTCPNet(2, m)
	t.Cleanup(func() { _ = a.Close(); _ = b.Close() })

	oneWay := make(chan wire.Msg, 1)
	b.SetHandler(func(from ids.NodeID, msg wire.Msg) wire.Msg {
		switch msg.(type) {
		case *wire.CopySetReq:
			return &wire.CopySetResp{Sets: []wire.CopySet{{Obj: 4, Sites: []ids.NodeID{from, 2}}}}
		default:
			oneWay <- msg
			return nil
		}
	})
	if err := a.Listen(); err != nil {
		t.Fatal(err)
	}
	if err := b.Listen(); err != nil {
		t.Fatal(err)
	}
	reply, err := a.Call(2, &wire.CopySetReq{Objs: []ids.ObjectID{4}})
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	cs, ok := reply.(*wire.CopySetResp)
	if !ok || len(cs.Sets) != 1 || len(cs.Sets[0].Sites) != 2 || cs.Sets[0].Sites[0] != 1 {
		t.Fatalf("reply = %+v", reply)
	}
	if err := a.Send(2, &wire.PushResp{}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-oneWay:
		if _, ok := m.(*wire.PushResp); !ok {
			t.Errorf("one-way got %T", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("one-way message never arrived")
	}
	// Error replies become errors.
	b.SetHandler(func(ids.NodeID, wire.Msg) wire.Msg {
		return &wire.ErrResp{Msg: "nope"}
	})
	if _, err := a.Call(2, &wire.CopySetReq{}); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("error reply: %v", err)
	}
	// Unknown peer.
	if _, err := a.Call(9, &wire.CopySetReq{}); err == nil {
		t.Error("unknown peer should fail")
	}
}

func TestTopologyLayout(t *testing.T) {
	topo := Topology{NodeAddrs: []string{"a:1", "b:2"}, GDOAddr: "c:3"}
	if topo.GDONode() != 3 {
		t.Errorf("GDONode = %v", topo.GDONode())
	}
	m := topo.addrMap()
	if m[1] != "a:1" || m[2] != "b:2" || m[3] != "c:3" {
		t.Errorf("addrMap = %v", m)
	}
}

func TestNodeServerValidation(t *testing.T) {
	topo := Topology{NodeAddrs: []string{"127.0.0.1:1"}, GDOAddr: "127.0.0.1:2"}
	if _, err := NewNodeServer(NodeConfig{Topology: topo, Self: 5}); err == nil {
		t.Error("out-of-range node id should fail")
	}
	if _, err := NewNodeServer(NodeConfig{Topology: topo, Self: 0}); err == nil {
		t.Error("zero node id should fail")
	}
}

func TestTCPRCProtocolEndToEnd(t *testing.T) {
	topo, _, nodes := startDeployment(t, 2, core.RC)
	createObject(t, nodes, 1, 1)
	c1, err := Dial(topo.NodeAddrs[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := Dial(topo.NodeAddrs[1], 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for i := 0; i < 4; i++ {
		if _, err := c1.Run(1, "deposit", i64(2)); err != nil {
			t.Fatal(err)
		}
		if _, err := c2.Run(1, "deposit", i64(3)); err != nil {
			t.Fatal(err)
		}
	}
	out, err := c1.Run(1, "peek", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := dec64(out); got != 20 {
		t.Errorf("balance = %d, want 20", got)
	}
}
