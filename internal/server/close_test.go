package server

import (
	"testing"
	"time"

	"lotec/internal/ids"
	"lotec/internal/transport"
	"lotec/internal/wire"
)

func TestTCPNetCloseFailsPendingCalls(t *testing.T) {
	addrs := freeAddrs(t, 2)
	m := map[ids.NodeID]string{1: addrs[0], 2: addrs[1]}
	a := NewTCPNet(1, m)
	b := NewTCPNet(2, m)
	// b never replies: its handler blackholes requests.
	blackhole := make(chan struct{})
	b.SetHandler(func(ids.NodeID, wire.Msg) wire.Msg {
		<-blackhole
		return nil
	})
	if err := a.Listen(); err != nil {
		t.Fatal(err)
	}
	if err := b.Listen(); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := a.Call(2, &wire.CopySetReq{Objs: []ids.ObjectID{1}})
		done <- err
	}()
	time.Sleep(50 * time.Millisecond)
	_ = a.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("pending call should fail on close")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending call hung after close")
	}
	close(blackhole)
	_ = b.Close()

	// Operations after close fail fast.
	if _, err := a.Call(2, &wire.CopySetReq{}); err == nil {
		t.Error("call after close should fail")
	}
}

func TestTCPNetListenRequiresAddress(t *testing.T) {
	n := NewTCPNet(9, map[ids.NodeID]string{1: "127.0.0.1:1"})
	if err := n.Listen(); err == nil {
		t.Error("listen without configured address should fail")
	}
	if _, err := n.Call(3, &wire.CopySetReq{}); err == nil {
		t.Error("call to unconfigured peer should fail")
	}
	if n.Self() != 9 {
		t.Error("Self mismatch")
	}
	if n.Now() < 0 {
		t.Error("Now went backwards")
	}
}

func TestChanFutureCompleteOnce(t *testing.T) {
	n := NewTCPNet(1, nil)
	f := n.NewFuture()
	f.Complete(1, nil)
	f.Complete(2, nil) // ignored
	v, err := f.Wait()
	if err != nil || v != 1 {
		t.Errorf("Wait = %v, %v", v, err)
	}
	var _ transport.Future = f
}

func TestClientCloseFailsOutstandingRun(t *testing.T) {
	topo, _, nodes := startDeployment(t, 1, nil)
	createObject(t, nodes, 1, 1)
	// Register a slow method on a second object class? Reuse: deposit is
	// fast; instead dial, close immediately, then Run must fail.
	c, err := Dial(topo.NodeAddrs[0], 1)
	if err != nil {
		t.Fatal(err)
	}
	_ = c.Close()
	if _, err := c.Run(1, "peek", nil); err == nil {
		t.Error("run on closed client should fail")
	}
}
