package server

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"lotec/internal/ids"
	"lotec/internal/transport"
	"lotec/internal/wire"
)

// runTimeout bounds how long a client waits for a transaction's result. A
// node that dies mid-transaction no longer hangs the caller forever; the
// error wraps transport.ErrTimeout so callers can classify it as
// retryable. Generous because a RunReq executes an entire (possibly
// deadlock-retried) root transaction.
const runTimeout = 2 * time.Minute

// Client submits root transactions to a LOTEC node over TCP. It is safe
// for concurrent use; concurrent Run calls are multiplexed on one
// connection.
type Client struct {
	node ids.NodeID

	mu      sync.Mutex
	conn    net.Conn                      // set once by Dial; read loop reads it lock-free
	pending map[uint64]chan *wire.RunResp // guarded by mu
	closed  bool                          // guarded by mu
	readErr error                         // guarded by mu

	reqID atomic.Uint64
}

// ClientNodeBase offsets client identities above any real node ID (must
// match the transport's clientIDBase).
const ClientNodeBase = 1 << 20

// Dial connects to the node serving at addr.
func Dial(addr string, node ids.NodeID) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, dialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: dial %s: %w (%v)", addr, transport.ErrUnreachable, err)
	}
	c := &Client{
		node:    node,
		conn:    conn,
		pending: make(map[uint64]chan *wire.RunResp),
	}
	go c.readLoop()
	return c, nil
}

// Close shuts the client down; outstanding Runs fail.
func (c *Client) Close() error {
	c.mu.Lock()
	c.closed = true
	for _, ch := range c.pending {
		close(ch)
	}
	c.pending = map[uint64]chan *wire.RunResp{}
	conn := c.conn
	c.mu.Unlock()
	return conn.Close()
}

func (c *Client) readLoop() {
	for {
		buf, err := wire.ReadFrame(c.conn)
		if err != nil {
			c.mu.Lock()
			c.readErr = err
			for _, ch := range c.pending {
				close(ch)
			}
			c.pending = map[uint64]chan *wire.RunResp{}
			c.mu.Unlock()
			return
		}
		// The decoded reply aliases the pooled frame until it is handed to a
		// waiter, which retains it; the frame is recycled either way.
		env, m, err := wire.DecodeView(buf)
		if err != nil || env.ReqID&replyBit == 0 {
			wire.ReleaseFrame(buf)
			continue
		}
		resp, ok := m.(*wire.RunResp)
		if !ok {
			er, isErr := m.(*wire.ErrResp)
			if !isErr {
				wire.ReleaseFrame(buf)
				continue
			}
			resp = &wire.RunResp{ErrMsg: er.Msg}
		}
		id := env.ReqID &^ replyBit
		c.mu.Lock()
		ch, found := c.pending[id]
		if found {
			delete(c.pending, id)
		}
		c.mu.Unlock()
		if found {
			wire.Retain(resp)
			ch <- resp
		}
		wire.ReleaseFrame(buf)
	}
}

// Run executes method on obj as a root transaction at the connected node
// and returns the body's result.
func (c *Client) Run(obj ids.ObjectID, method string, arg []byte) ([]byte, error) {
	id := c.reqID.Add(1)
	ch := make(chan *wire.RunResp, 1)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("client: closed")
	}
	c.pending[id] = ch
	c.mu.Unlock()

	// The pooled frame carries the length prefix in its headroom, so the
	// request goes out in one write with no prepend copy.
	frame := wire.EncodeFrame(wire.Envelope{
		ReqID: id,
		From:  ids.NodeID(ClientNodeBase),
		To:    c.node,
	}, &wire.RunReq{Obj: obj, Method: method, Arg: arg})
	c.mu.Lock()
	// Deadline the write: a node with full socket buffers fails the call
	// instead of wedging every client goroutine on c.mu.
	_ = c.conn.SetWriteDeadline(time.Now().Add(writeTimeout))
	_, err := c.conn.Write(frame)
	c.mu.Unlock()
	wire.ReleaseFrame(frame)
	clear := func() {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
	}
	if err != nil {
		clear()
		return nil, fmt.Errorf("client: send: %w (%v)", transport.ErrUnreachable, err)
	}
	// RunReq is NOT idempotent (re-running a committed transaction would
	// apply its effects twice), so a timeout surfaces as an error for the
	// caller to handle rather than triggering a transparent retry.
	select {
	case resp, ok := <-ch:
		if !ok {
			return nil, ErrNoReply
		}
		if resp.ErrMsg != "" {
			return nil, fmt.Errorf("client: transaction failed: %s", resp.ErrMsg)
		}
		return resp.Result, nil
	case <-time.After(runTimeout):
		clear()
		return nil, fmt.Errorf("client: run on %v: %w", c.node, transport.ErrTimeout)
	}
}
