// Package wire defines the messages the LOTEC protocols exchange and a
// compact binary codec for them.
//
// Every message has a deterministic Size — the bytes it occupies on the
// wire, envelope included — which is what the simulation's cost accounting
// and the paper's byte counts (Figures 2–5) are computed from. Size is
// defined to equal the actual encoded length; the test suite checks the two
// against each other for every message type.
package wire

import (
	"errors"
	"fmt"

	"lotec/internal/gdo"
	"lotec/internal/ids"
	"lotec/internal/o2pl"
)

// MsgType discriminates message bodies.
type MsgType uint8

// Message types.
const (
	TAcquireReq MsgType = iota + 1
	TAcquireResp
	TReleaseReq
	TReleaseResp
	TGrant
	TAbort
	TFetchReq
	TFetchResp
	TPushReq
	TPushResp
	TCopySetReq
	TCopySetResp
	TRegisterReq
	TRegisterResp
	TRunReq
	TRunResp
	TErrResp
	TMultiFetchReq
	TMultiFetchResp
	TMultiPushReq
	TReplicateReq
	TReplicateResp
	TPromoteReq
	TPromoteResp
	TEpochChangeReq
	TEpochChangeResp
	THandoffStartReq
	THandoffStartResp
	THandoffReq
	THandoffResp
	TRouteResp
	TWaitEdgeUpdate
	TWaitEdgeResp
	TAbortFamilyReq
	TAbortFamilyResp
	TCommitSeqReq
	TCommitSeqResp
)

// HeaderSize is the envelope size: type(1) + reqID(8) + from(4) + to(4) +
// bodyLen(4) + flags/padding(11) = 32 bytes, a realistic header for a
// lightweight reliable messaging layer.
const HeaderSize = 32

// Msg is implemented by every message body.
type Msg interface {
	Type() MsgType
	// Size returns the full on-wire size in bytes (HeaderSize + body).
	Size() int
	encodeBody(w *writer)
	decodeBody(r *reader)
}

// Idempotent is implemented by the request bodies the retry layer may
// transmit more than once: AcquireReq, ReleaseReq, CopySetReq,
// MultiFetchReq and MultiPushReq. The request ID travels in the body (the
// envelope's ReqID is a per-transmission correlation number on TCP, so it
// changes across retries; the body's ID is stable) and keys the receiver's
// idempotency cache — a duplicate replays the cached reply instead of
// re-executing. ID 0 means "never stamped": the zero-fault path leaves it
// 0 and the dedup layer passes such messages straight through.
type Idempotent interface {
	Msg
	RequestID() uint64
	SetRequestID(uint64)
}

// Fixed field sizes used by the Size formulas.
const (
	sizeTxRef     = 12 // txID(8) + node(4)
	sizePageLoc   = 12 // node(4) + version(8)
	sizeQueuedReq = 13 // ref(12) + mode(1)
	sizeStamp     = 20 // obj(8) + page(4) + version(8)
)

// PagePayload carries one page's bytes and version.
type PagePayload struct {
	Page    ids.PageNum
	Version uint64
	Data    []byte
}

func (p PagePayload) size() int { return 4 + 8 + 4 + len(p.Data) }

// EncodedSize is the payload's on-wire section size; the serving side uses
// it to decide whether a delta actually beats the full page it replaces.
func (p PagePayload) EncodedSize() int { return p.size() }

// Span is one byte range [Off, Off+Len) within a delta-encoded page.
type Span struct {
	Off uint32
	Len uint32
}

// DeltaPage carries one page's changed byte ranges between two versions: a
// receiver holding exactly version Base patches the runs in place and ends
// up byte-identical to the full page at Version. Runs are sorted and
// non-overlapping; Data is the runs' bytes concatenated in order. The codec
// rejects malformed deltas (overlapping runs, out-of-bounds offsets, version
// gaps, run/payload length mismatch) at decode time.
type DeltaPage struct {
	Page    ids.PageNum
	Base    uint64
	Version uint64
	Runs    []Span
	Data    []byte
}

func (d DeltaPage) size() int { return 4 + 8 + 8 + 4 + 8*len(d.Runs) + 4 + len(d.Data) }

// EncodedSize is the delta's on-wire section size (runs and framing
// included — a delta only ships when this beats the full page).
func (d DeltaPage) EncodedSize() int { return d.size() }

// AcquireReq asks the GDO to acquire obj's lock (Alg 4.2 input).
type AcquireReq struct {
	// ReqID is the stable idempotency key stamped by the retry layer
	// (0 when retries are off). See Idempotent.
	ReqID  uint64
	Obj    ids.ObjectID
	Ref    ids.TxRef
	Family ids.FamilyID
	// Age is the family's stable priority for deadlock-victim selection:
	// the root TxID of its *first* attempt, reused across retries so a
	// repeatedly victimized root eventually becomes oldest and wins.
	Age  uint64
	Site ids.NodeID
	Mode o2pl.Mode
	// Shard addresses the directory partition owning Obj (0 under a
	// single-partition directory). The requester computes it from the
	// deployment's shared placement; the directory host dispatches on it
	// and rejects mismatches, which catches placement disagreement early.
	Shard int32
	// Epoch is the requester's placement-map version under a replicated
	// control plane; a host serving a newer epoch rejects the request with
	// a RouteResp. Encoded as a trailing optional section — epoch-0
	// (static-placement) requests stay byte-identical to the legacy format.
	Epoch uint64
}

// epochExtra is the trailing optional epoch section's size.
func epochExtra(e uint64) int {
	if e != 0 {
		return 8
	}
	return 0
}

// Type implements Msg.
func (*AcquireReq) Type() MsgType { return TAcquireReq }

// Size implements Msg.
func (m *AcquireReq) Size() int {
	return HeaderSize + 8 + 8 + sizeTxRef + 8 + 8 + 4 + 1 + 4 + epochExtra(m.Epoch)
}

// RequestID implements Idempotent.
func (m *AcquireReq) RequestID() uint64 { return m.ReqID }

// SetRequestID implements Idempotent.
func (m *AcquireReq) SetRequestID(id uint64) { m.ReqID = id }

// AcquireResp replies to AcquireReq.
type AcquireResp struct {
	Obj        ids.ObjectID
	Status     gdo.AcquireStatus
	Mode       o2pl.Mode
	NumPages   int32
	LastWriter ids.NodeID
	// Shard echoes the request's partition so replies are attributed to
	// the same shard in the stats trace.
	Shard   int32
	PageMap []gdo.PageLoc
}

// Type implements Msg.
func (*AcquireResp) Type() MsgType { return TAcquireResp }

// Size implements Msg.
func (m *AcquireResp) Size() int {
	return HeaderSize + 8 + 1 + 1 + 4 + 4 + 4 + 4 + sizePageLoc*len(m.PageMap)
}

// ReleaseReq releases a family's holds on the listed objects (Alg 4.4
// input), with dirty-page info piggybacked.
type ReleaseReq struct {
	// ReqID is the stable idempotency key (see Idempotent; 0 = unstamped).
	ReqID  uint64
	Family ids.FamilyID
	Site   ids.NodeID
	// Commit distinguishes a root-commit release (dirty info meaningful,
	// counts toward the global commit order) from an abort release.
	Commit bool
	// Shard addresses the directory partition owning every object in
	// Rels; releasing sites batch one ReleaseReq per (home, shard).
	Shard int32
	Rels  []gdo.ObjectRelease
	// Epoch is the requester's placement-map version (see AcquireReq.Epoch);
	// a trailing optional section, absent at epoch 0.
	Epoch uint64
}

// Type implements Msg.
func (*ReleaseReq) Type() MsgType { return TReleaseReq }

// Size implements Msg.
func (m *ReleaseReq) Size() int {
	n := HeaderSize + 8 + 8 + 4 + 1 + 4 + 4 + epochExtra(m.Epoch)
	for _, rel := range m.Rels {
		n += 8 + 4 + 4*len(rel.Dirty)
	}
	return n
}

// RequestID implements Idempotent.
func (m *ReleaseReq) RequestID() uint64 { return m.ReqID }

// SetRequestID implements Idempotent.
func (m *ReleaseReq) SetRequestID(id uint64) { m.ReqID = id }

// ReleaseResp replies with the new page versions assigned.
type ReleaseResp struct {
	// Shard echoes the request's partition (stats attribution).
	Shard  int32
	Stamps []gdo.PageStamp
}

// Type implements Msg.
func (*ReleaseResp) Type() MsgType { return TReleaseResp }

// Size implements Msg.
func (m *ReleaseResp) Size() int { return HeaderSize + 4 + 4 + sizeStamp*len(m.Stamps) }

// Grant delivers a deferred lock grant to the new holder family's site:
// the family's request list plus the page map (Alg 4.4's "Send the list
// pointed to by HolderPtr and the page map to the new holder's site").
type Grant struct {
	Obj        ids.ObjectID
	Family     ids.FamilyID
	Mode       o2pl.Mode
	Upgrade    bool
	NumPages   int32
	LastWriter ids.NodeID
	// Shard is the directory partition the grant originated from.
	Shard   int32
	Reqs    []gdo.QueuedReq
	PageMap []gdo.PageLoc
}

// Type implements Msg.
func (*Grant) Type() MsgType { return TGrant }

// Size implements Msg.
func (m *Grant) Size() int {
	return HeaderSize + 8 + 8 + 1 + 1 + 4 + 4 + 4 +
		4 + sizeQueuedReq*len(m.Reqs) +
		4 + sizePageLoc*len(m.PageMap)
}

// Abort tells a site its family's queued requests were cancelled as a
// deadlock victim.
type Abort struct {
	Obj    ids.ObjectID
	Family ids.FamilyID
	// Shard is the directory partition that cancelled the requests.
	Shard int32
	Reqs  []gdo.QueuedReq
}

// Type implements Msg.
func (*Abort) Type() MsgType { return TAbort }

// Size implements Msg.
func (m *Abort) Size() int { return HeaderSize + 8 + 8 + 4 + 4 + sizeQueuedReq*len(m.Reqs) }

// FetchReq asks a site for specific pages of one object (Alg 4.5 gather;
// Demand marks a post-misprediction demand fetch).
type FetchReq struct {
	Obj    ids.ObjectID
	Demand bool
	Pages  []ids.PageNum
}

// Type implements Msg.
func (*FetchReq) Type() MsgType { return TFetchReq }

// Size implements Msg.
func (m *FetchReq) Size() int { return HeaderSize + 8 + 1 + 4 + 4*len(m.Pages) }

// FetchResp returns the requested page payloads.
type FetchResp struct {
	Obj   ids.ObjectID
	Pages []PagePayload
}

// Type implements Msg.
func (*FetchResp) Type() MsgType { return TFetchResp }

// Size implements Msg.
func (m *FetchResp) Size() int {
	n := HeaderSize + 8 + 4
	for _, p := range m.Pages {
		n += p.size()
	}
	return n
}

// PushReq eagerly pushes updated pages to a caching site (the Release
// Consistency extension of §6).
type PushReq struct {
	Obj   ids.ObjectID
	Pages []PagePayload
}

// Type implements Msg.
func (*PushReq) Type() MsgType { return TPushReq }

// Size implements Msg.
func (m *PushReq) Size() int {
	n := HeaderSize + 8 + 4
	for _, p := range m.Pages {
		n += p.size()
	}
	return n
}

// PushResp acknowledges a PushReq (pushes must land before the lock is
// released).
type PushResp struct{}

// Type implements Msg.
func (*PushResp) Type() MsgType { return TPushResp }

// Size implements Msg.
func (*PushResp) Size() int { return HeaderSize }

// CopySetReq asks the GDO which sites cache each of the listed objects.
// Root commit batches the lookups for all dirty objects of a family into
// one request per home site.
type CopySetReq struct {
	// ReqID is the stable idempotency key (see Idempotent; 0 = unstamped).
	ReqID uint64
	Objs  []ids.ObjectID
}

// Type implements Msg.
func (*CopySetReq) Type() MsgType { return TCopySetReq }

// Size implements Msg.
func (m *CopySetReq) Size() int { return HeaderSize + 8 + 4 + 8*len(m.Objs) }

// RequestID implements Idempotent.
func (m *CopySetReq) RequestID() uint64 { return m.ReqID }

// SetRequestID implements Idempotent.
func (m *CopySetReq) SetRequestID(id uint64) { m.ReqID = id }

// CopySet is one object's caching sites within a CopySetResp.
type CopySet struct {
	Obj   ids.ObjectID
	Sites []ids.NodeID
}

func (c CopySet) size() int { return 8 + 4 + 4*len(c.Sites) }

// CopySetResp lists the caching sites per requested object.
type CopySetResp struct {
	Sets []CopySet
}

// Type implements Msg.
func (*CopySetResp) Type() MsgType { return TCopySetResp }

// Size implements Msg.
func (m *CopySetResp) Size() int {
	n := HeaderSize + 4
	for _, c := range m.Sets {
		n += c.size()
	}
	return n
}

// RegisterReq registers an object in the GDO (deployment setup).
type RegisterReq struct {
	Obj      ids.ObjectID
	Class    ids.ClassID
	NumPages int32
	Owner    ids.NodeID
}

// Type implements Msg.
func (*RegisterReq) Type() MsgType { return TRegisterReq }

// Size implements Msg.
func (*RegisterReq) Size() int { return HeaderSize + 8 + 4 + 4 + 4 }

// RegisterResp acknowledges a RegisterReq.
type RegisterResp struct{}

// Type implements Msg.
func (*RegisterResp) Type() MsgType { return TRegisterResp }

// Size implements Msg.
func (*RegisterResp) Size() int { return HeaderSize }

// RunReq asks a node to run a root transaction: invoke Method on Obj.
type RunReq struct {
	Obj    ids.ObjectID
	Method string
	Arg    []byte
}

// Type implements Msg.
func (*RunReq) Type() MsgType { return TRunReq }

// Size implements Msg.
func (m *RunReq) Size() int { return HeaderSize + 8 + 4 + len(m.Method) + 4 + len(m.Arg) }

// RunResp returns a root transaction's result.
type RunResp struct {
	Result []byte
	ErrMsg string
}

// Type implements Msg.
func (*RunResp) Type() MsgType { return TRunResp }

// Size implements Msg.
func (m *RunResp) Size() int { return HeaderSize + 4 + len(m.Result) + 4 + len(m.ErrMsg) }

// ErrResp is a generic error reply.
type ErrResp struct {
	Msg string
}

// Type implements Msg.
func (*ErrResp) Type() MsgType { return TErrResp }

// Size implements Msg.
func (m *ErrResp) Size() int { return HeaderSize + 4 + len(m.Msg) }

// ObjPages names one object's pages within a batched fetch request.
type ObjPages struct {
	Obj   ids.ObjectID
	Pages []ids.PageNum
	// Bases, when present, runs parallel to Pages: the version of the
	// requester's resident copy of each page (0 = no usable copy). A serving
	// site may answer a page whose base it can still cover from its
	// dirty-range journal with a DeltaPage instead of the full payload.
	// The section is flagged in the page count's high bit, so base-free
	// requests encode byte-identically to the pre-delta wire format.
	Bases []uint64
}

// hasBases reports whether the base-version section is encoded: Bases must
// be exactly parallel to a non-empty Pages list.
func (o ObjPages) hasBases() bool { return len(o.Pages) > 0 && len(o.Bases) == len(o.Pages) }

func (o ObjPages) size() int {
	n := 8 + 4 + 4*len(o.Pages)
	if o.hasBases() {
		n += 8 * len(o.Pages)
	}
	return n
}

// ObjPayload carries one object's page payloads within a batched reply or
// push. Pages carry full payloads; Deltas carry pages answered as dirty-range
// deltas (the optional section is flagged in the page count's high bit, so
// delta-free payloads encode byte-identically to the pre-delta wire format).
type ObjPayload struct {
	Obj    ids.ObjectID
	Pages  []PagePayload
	Deltas []DeltaPage
}

func (o ObjPayload) size() int {
	n := 8 + 4
	for _, p := range o.Pages {
		n += p.size()
	}
	if len(o.Deltas) > 0 {
		n += 4
		for _, d := range o.Deltas {
			n += d.size()
		}
	}
	return n
}

// MultiFetchReq asks one site for pages of several objects in a single
// round-trip: the xfer pipeline's batch stage groups the gather plan across
// objects by source site (Alg 4.5's per-site copy, batched). Demand marks a
// post-misprediction demand fetch (§4.3).
type MultiFetchReq struct {
	// ReqID is the stable idempotency key (see Idempotent; 0 = unstamped).
	ReqID  uint64
	Demand bool
	Objs   []ObjPages
}

// Type implements Msg.
func (*MultiFetchReq) Type() MsgType { return TMultiFetchReq }

// Size implements Msg.
func (m *MultiFetchReq) Size() int {
	n := HeaderSize + 8 + 1 + 4
	for _, o := range m.Objs {
		n += o.size()
	}
	return n
}

// RequestID implements Idempotent.
func (m *MultiFetchReq) RequestID() uint64 { return m.ReqID }

// SetRequestID implements Idempotent.
func (m *MultiFetchReq) SetRequestID(id uint64) { m.ReqID = id }

// MultiFetchResp returns the payloads of a MultiFetchReq, grouped per
// object.
type MultiFetchResp struct {
	Objs []ObjPayload
}

// Type implements Msg.
func (*MultiFetchResp) Type() MsgType { return TMultiFetchResp }

// Size implements Msg.
func (m *MultiFetchResp) Size() int {
	n := HeaderSize + 4
	for _, o := range m.Objs {
		n += o.size()
	}
	return n
}

// MultiPushReq eagerly pushes the updated pages of several objects to one
// caching site in a single round-trip (the §6 Release Consistency push
// fan-out, batched per destination). Acknowledged with PushResp.
type MultiPushReq struct {
	// ReqID is the stable idempotency key (see Idempotent; 0 = unstamped).
	ReqID uint64
	Objs  []ObjPayload
}

// Type implements Msg.
func (*MultiPushReq) Type() MsgType { return TMultiPushReq }

// Size implements Msg.
func (m *MultiPushReq) Size() int {
	n := HeaderSize + 8 + 4
	for _, o := range m.Objs {
		n += o.size()
	}
	return n
}

// RequestID implements Idempotent.
func (m *MultiPushReq) RequestID() uint64 { return m.ReqID }

// SetRequestID implements Idempotent.
func (m *MultiPushReq) SetRequestID(id uint64) { m.ReqID = id }

// ErrUnknownType reports an undecodable message type.
var ErrUnknownType = errors.New("wire: unknown message type")

// newMsg constructs an empty message of the given type.
func newMsg(t MsgType) (Msg, error) {
	switch t {
	case TAcquireReq:
		return &AcquireReq{}, nil
	case TAcquireResp:
		return &AcquireResp{}, nil
	case TReleaseReq:
		return &ReleaseReq{}, nil
	case TReleaseResp:
		return &ReleaseResp{}, nil
	case TGrant:
		return &Grant{}, nil
	case TAbort:
		return &Abort{}, nil
	case TFetchReq:
		return &FetchReq{}, nil
	case TFetchResp:
		return &FetchResp{}, nil
	case TPushReq:
		return &PushReq{}, nil
	case TPushResp:
		return &PushResp{}, nil
	case TCopySetReq:
		return &CopySetReq{}, nil
	case TCopySetResp:
		return &CopySetResp{}, nil
	case TRegisterReq:
		return &RegisterReq{}, nil
	case TRegisterResp:
		return &RegisterResp{}, nil
	case TRunReq:
		return &RunReq{}, nil
	case TRunResp:
		return &RunResp{}, nil
	case TErrResp:
		return &ErrResp{}, nil
	case TMultiFetchReq:
		return &MultiFetchReq{}, nil
	case TMultiFetchResp:
		return &MultiFetchResp{}, nil
	case TMultiPushReq:
		return &MultiPushReq{}, nil
	case TReplicateReq:
		return &ReplicateReq{}, nil
	case TReplicateResp:
		return &ReplicateResp{}, nil
	case TPromoteReq:
		return &PromoteReq{}, nil
	case TPromoteResp:
		return &PromoteResp{}, nil
	case TEpochChangeReq:
		return &EpochChangeReq{}, nil
	case TEpochChangeResp:
		return &EpochChangeResp{}, nil
	case THandoffStartReq:
		return &HandoffStartReq{}, nil
	case THandoffStartResp:
		return &HandoffStartResp{}, nil
	case THandoffReq:
		return &HandoffReq{}, nil
	case THandoffResp:
		return &HandoffResp{}, nil
	case TRouteResp:
		return &RouteResp{}, nil
	case TWaitEdgeUpdate:
		return &WaitEdgeUpdate{}, nil
	case TWaitEdgeResp:
		return &WaitEdgeResp{}, nil
	case TAbortFamilyReq:
		return &AbortFamilyReq{}, nil
	case TAbortFamilyResp:
		return &AbortFamilyResp{}, nil
	case TCommitSeqReq:
		return &CommitSeqReq{}, nil
	case TCommitSeqResp:
		return &CommitSeqResp{}, nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownType, t)
	}
}
