package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"

	"lotec/internal/gdo"
	"lotec/internal/ids"
	"lotec/internal/o2pl"
)

// Envelope is the fixed 32-byte message header.
type Envelope struct {
	Type  MsgType
	ReqID uint64
	From  ids.NodeID
	To    ids.NodeID
}

// Codec errors.
var (
	ErrShortBuffer = errors.New("wire: short buffer")
	ErrTrailing    = errors.New("wire: trailing bytes after body")
)

// writer accumulates a little-endian body.
type writer struct {
	buf []byte
}

// writerPool and readerPool recycle codec state across messages: the
// encodeBody/decodeBody interface calls force a stack writer or reader to
// escape, which would otherwise cost one heap allocation per message.
var (
	writerPool = sync.Pool{New: func() any { return new(writer) }}
	readerPool = sync.Pool{New: func() any { return new(reader) }}
)

// u8..qreq append fixed-width fields into the reused buffer; they are the
// wire hot path and must stay allocation-free (amortized growth aside).
//
//lotec:noalloc
func (w *writer) u8(v uint8) { w.buf = append(w.buf, v) }

//lotec:noalloc
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }

//lotec:noalloc
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

//lotec:noalloc
func (w *writer) i32(v int32) { w.u32(uint32(v)) }

//lotec:noalloc
func (w *writer) i64(v int64) { w.u64(uint64(v)) }

//lotec:noalloc
func (w *writer) boolean(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

//lotec:noalloc
func (w *writer) bytes(b []byte) {
	w.u32(uint32(len(b)))
	w.buf = append(w.buf, b...)
}
func (w *writer) str(s string) { w.bytes([]byte(s)) }

//lotec:noalloc
func (w *writer) ref(r ids.TxRef) { w.u64(uint64(r.Tx)); w.i32(int32(r.Node)) }

//lotec:noalloc
func (w *writer) loc(l gdo.PageLoc) { w.i32(int32(l.Node)); w.u64(l.Version) }

//lotec:noalloc
func (w *writer) qreq(q gdo.QueuedReq) { w.ref(q.Ref); w.u8(uint8(q.Mode)) }

// reader consumes a little-endian body, accumulating the first error. In
// view mode (DecodeView) byte-slice fields alias buf instead of copying —
// the decoded message then lives only as long as the frame it came from.
type reader struct {
	buf  []byte
	off  int
	err  error
	view bool
}

// fail is the bounds check on every read; the formatted error is built only
// once, on the first short read.
//
//lotec:noalloc
func (r *reader) fail(n int) bool {
	if r.err != nil {
		return true
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("%w: need %d at %d of %d", ErrShortBuffer, n, r.off, len(r.buf)) //lotec:alloc-ok — first short read poisons the reader
		return true
	}
	return false
}

// u8..qreq read fixed-width fields in place; like their writer duals they
// are annotated allocation-free.
//
//lotec:noalloc
func (r *reader) u8() uint8 {
	if r.fail(1) {
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

//lotec:noalloc
func (r *reader) u32() uint32 {
	if r.fail(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

//lotec:noalloc
func (r *reader) u64() uint64 {
	if r.fail(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

//lotec:noalloc
func (r *reader) i32() int32 { return int32(r.u32()) }

//lotec:noalloc
func (r *reader) i64() int64 { return int64(r.u64()) }

//lotec:noalloc
func (r *reader) boolean() bool { return r.u8() != 0 }

//lotec:noalloc
func (r *reader) ref() ids.TxRef { return ids.TxRef{Tx: ids.TxID(r.u64()), Node: ids.NodeID(r.i32())} }

//lotec:noalloc
func (r *reader) loc() gdo.PageLoc {
	return gdo.PageLoc{Node: ids.NodeID(r.i32()), Version: r.u64()}
}

//lotec:noalloc
func (r *reader) qreq() gdo.QueuedReq {
	return gdo.QueuedReq{Ref: r.ref(), Mode: o2pl.Mode(r.u8())}
}

// bytes reads a length-prefixed byte field. In view mode the result aliases
// the frame (capped capacity, so an append by the consumer cannot scribble
// over adjacent fields); otherwise it is a fresh copy.
func (r *reader) bytes() []byte {
	n := int(r.u32())
	if n == 0 || r.fail(n) {
		return nil
	}
	if r.view {
		out := r.buf[r.off : r.off+n : r.off+n]
		r.off += n
		return out
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:])
	r.off += n
	return out
}

func (r *reader) str() string { return string(r.bytes()) }

// count reads a collection length with a sanity bound.
//
//lotec:noalloc
func (r *reader) count() int {
	n := int(r.u32())
	if r.err == nil && (n < 0 || n > 1<<24) {
		r.err = fmt.Errorf("wire: absurd collection length %d", n) //lotec:alloc-ok — malformed frame poisons the reader
		return 0
	}
	return n
}

// sectionFlag marks an optional trailing section in a collection count's
// high bit. Counts are sanity-bounded far below 2³¹, so the bit is free;
// using it keeps flag-less messages byte-identical to the pre-delta format.
const sectionFlag = 1 << 31

// flaggedCount reads a collection length whose bit 31 is an optional-section
// presence flag.
//
//lotec:noalloc
func (r *reader) flaggedCount() (int, bool) {
	v := r.u32()
	flag := v&sectionFlag != 0
	n := int(v &^ sectionFlag)
	if r.err == nil && n > 1<<24 {
		r.err = fmt.Errorf("wire: absurd collection length %d", n) //lotec:alloc-ok — malformed frame poisons the reader
		return 0, false
	}
	return n, flag
}

// Encode serializes env+m into a fresh buffer. The envelope's Type field is
// taken from the message, not from env.
func Encode(env Envelope, m Msg) []byte {
	var w writer
	w.buf = make([]byte, 0, m.Size())
	w.u8(uint8(m.Type()))
	w.u64(env.ReqID)
	w.i32(int32(env.From))
	w.i32(int32(env.To))
	w.u32(0) // body length back-patched below
	// Reserved/padding to HeaderSize.
	for len(w.buf) < HeaderSize {
		w.u8(0)
	}
	m.encodeBody(&w)
	binary.LittleEndian.PutUint32(w.buf[17:], uint32(len(w.buf)-HeaderSize))
	return w.buf
}

// Decode parses a full message buffer produced by Encode. The returned
// message owns all of its memory.
func Decode(buf []byte) (Envelope, Msg, error) {
	return decode(buf, false)
}

// DecodeView parses like Decode, but the returned message's byte-slice
// payload fields (page data, delta data, run arguments/results) alias buf
// instead of copying. The message is valid only while buf is — callers that
// outlive the frame must wire.Retain the message before releasing it.
// String fields are always owned (the string conversion copies).
func DecodeView(buf []byte) (Envelope, Msg, error) {
	return decode(buf, true)
}

func decode(buf []byte, view bool) (Envelope, Msg, error) {
	if len(buf) < HeaderSize {
		return Envelope{}, nil, fmt.Errorf("%w: header", ErrShortBuffer)
	}
	env := Envelope{
		Type:  MsgType(buf[0]),
		ReqID: binary.LittleEndian.Uint64(buf[1:]),
		From:  ids.NodeID(int32(binary.LittleEndian.Uint32(buf[9:]))),
		To:    ids.NodeID(int32(binary.LittleEndian.Uint32(buf[13:]))),
	}
	bodyLen := int(binary.LittleEndian.Uint32(buf[17:]))
	if HeaderSize+bodyLen > len(buf) {
		return env, nil, fmt.Errorf("%w: body wants %d, have %d", ErrShortBuffer, bodyLen, len(buf)-HeaderSize)
	}
	m, err := newMsg(env.Type)
	if err != nil {
		return env, nil, err
	}
	r := readerPool.Get().(*reader)
	*r = reader{buf: buf[HeaderSize : HeaderSize+bodyLen], view: view}
	m.decodeBody(r)
	rerr, off, n := r.err, r.off, len(r.buf)
	*r = reader{}
	readerPool.Put(r)
	if rerr != nil {
		return env, nil, fmt.Errorf("decode %d: %w", env.Type, rerr)
	}
	if off != n {
		return env, nil, fmt.Errorf("%w: %d of %d consumed", ErrTrailing, off, n)
	}
	return env, m, nil
}

// Body encoders/decoders. Each pair must mirror the other exactly; the test
// suite round-trips every type and cross-checks Size.

// The lock-protocol bodies (acquire/release/grant/abort) ride the
// per-transaction fast path and are annotated allocation-free end to end;
// the page-transfer bodies carry payload slices and are not.
//
//lotec:noalloc
func (m *AcquireReq) encodeBody(w *writer) {
	w.u64(m.ReqID)
	w.i64(int64(m.Obj))
	w.ref(m.Ref)
	w.u64(uint64(m.Family))
	w.u64(m.Age)
	w.i32(int32(m.Site))
	w.u8(uint8(m.Mode))
	w.i32(m.Shard)
	if m.Epoch != 0 {
		w.u64(m.Epoch)
	}
}

//lotec:noalloc
func (m *AcquireReq) decodeBody(r *reader) {
	m.ReqID = r.u64()
	m.Obj = ids.ObjectID(r.i64())
	m.Ref = r.ref()
	m.Family = ids.FamilyID(r.u64())
	m.Age = r.u64()
	m.Site = ids.NodeID(r.i32())
	m.Mode = o2pl.Mode(r.u8())
	m.Shard = r.i32()
	// Trailing optional epoch section: present iff body bytes remain.
	if r.err == nil && r.off < len(r.buf) {
		m.Epoch = r.u64()
	}
}

//lotec:noalloc
func (m *AcquireResp) encodeBody(w *writer) {
	w.i64(int64(m.Obj))
	w.u8(uint8(m.Status))
	w.u8(uint8(m.Mode))
	w.i32(m.NumPages)
	w.i32(int32(m.LastWriter))
	w.i32(m.Shard)
	w.u32(uint32(len(m.PageMap)))
	for _, l := range m.PageMap {
		w.loc(l)
	}
}

//lotec:noalloc
func (m *AcquireResp) decodeBody(r *reader) {
	m.Obj = ids.ObjectID(r.i64())
	m.Status = gdo.AcquireStatus(r.u8())
	m.Mode = o2pl.Mode(r.u8())
	m.NumPages = r.i32()
	m.LastWriter = ids.NodeID(r.i32())
	m.Shard = r.i32()
	n := r.count()
	for i := 0; i < n && r.err == nil; i++ {
		m.PageMap = append(m.PageMap, r.loc())
	}
}

//lotec:noalloc
func (m *ReleaseReq) encodeBody(w *writer) {
	w.u64(m.ReqID)
	w.u64(uint64(m.Family))
	w.i32(int32(m.Site))
	w.boolean(m.Commit)
	w.i32(m.Shard)
	w.u32(uint32(len(m.Rels)))
	for _, rel := range m.Rels {
		w.i64(int64(rel.Obj))
		w.u32(uint32(len(rel.Dirty)))
		for _, p := range rel.Dirty {
			w.i32(int32(p))
		}
	}
	if m.Epoch != 0 {
		w.u64(m.Epoch)
	}
}

//lotec:noalloc
func (m *ReleaseReq) decodeBody(r *reader) {
	m.ReqID = r.u64()
	m.Family = ids.FamilyID(r.u64())
	m.Site = ids.NodeID(r.i32())
	m.Commit = r.boolean()
	m.Shard = r.i32()
	n := r.count()
	for i := 0; i < n && r.err == nil; i++ {
		rel := gdo.ObjectRelease{Obj: ids.ObjectID(r.i64())}
		k := r.count()
		for j := 0; j < k && r.err == nil; j++ {
			rel.Dirty = append(rel.Dirty, ids.PageNum(r.i32()))
		}
		m.Rels = append(m.Rels, rel)
	}
	// Trailing optional epoch section: present iff body bytes remain.
	if r.err == nil && r.off < len(r.buf) {
		m.Epoch = r.u64()
	}
}

//lotec:noalloc
func (m *ReleaseResp) encodeBody(w *writer) {
	w.i32(m.Shard)
	w.u32(uint32(len(m.Stamps)))
	for _, s := range m.Stamps {
		w.i64(int64(s.Obj))
		w.i32(int32(s.Page))
		w.u64(s.Version)
	}
}

//lotec:noalloc
func (m *ReleaseResp) decodeBody(r *reader) {
	m.Shard = r.i32()
	n := r.count()
	for i := 0; i < n && r.err == nil; i++ {
		m.Stamps = append(m.Stamps, gdo.PageStamp{
			Obj:     ids.ObjectID(r.i64()),
			Page:    ids.PageNum(r.i32()),
			Version: r.u64(),
		})
	}
}

//lotec:noalloc
func (m *Grant) encodeBody(w *writer) {
	w.i64(int64(m.Obj))
	w.u64(uint64(m.Family))
	w.u8(uint8(m.Mode))
	w.boolean(m.Upgrade)
	w.i32(m.NumPages)
	w.i32(int32(m.LastWriter))
	w.i32(m.Shard)
	w.u32(uint32(len(m.Reqs)))
	for _, q := range m.Reqs {
		w.qreq(q)
	}
	w.u32(uint32(len(m.PageMap)))
	for _, l := range m.PageMap {
		w.loc(l)
	}
}

//lotec:noalloc
func (m *Grant) decodeBody(r *reader) {
	m.Obj = ids.ObjectID(r.i64())
	m.Family = ids.FamilyID(r.u64())
	m.Mode = o2pl.Mode(r.u8())
	m.Upgrade = r.boolean()
	m.NumPages = r.i32()
	m.LastWriter = ids.NodeID(r.i32())
	m.Shard = r.i32()
	n := r.count()
	for i := 0; i < n && r.err == nil; i++ {
		m.Reqs = append(m.Reqs, r.qreq())
	}
	n = r.count()
	for i := 0; i < n && r.err == nil; i++ {
		m.PageMap = append(m.PageMap, r.loc())
	}
}

//lotec:noalloc
func (m *Abort) encodeBody(w *writer) {
	w.i64(int64(m.Obj))
	w.u64(uint64(m.Family))
	w.i32(m.Shard)
	w.u32(uint32(len(m.Reqs)))
	for _, q := range m.Reqs {
		w.qreq(q)
	}
}

//lotec:noalloc
func (m *Abort) decodeBody(r *reader) {
	m.Obj = ids.ObjectID(r.i64())
	m.Family = ids.FamilyID(r.u64())
	m.Shard = r.i32()
	n := r.count()
	for i := 0; i < n && r.err == nil; i++ {
		m.Reqs = append(m.Reqs, r.qreq())
	}
}

func (m *FetchReq) encodeBody(w *writer) {
	w.i64(int64(m.Obj))
	w.boolean(m.Demand)
	w.u32(uint32(len(m.Pages)))
	for _, p := range m.Pages {
		w.i32(int32(p))
	}
}

func (m *FetchReq) decodeBody(r *reader) {
	m.Obj = ids.ObjectID(r.i64())
	m.Demand = r.boolean()
	n := r.count()
	for i := 0; i < n && r.err == nil; i++ {
		m.Pages = append(m.Pages, ids.PageNum(r.i32()))
	}
}

func encodePages(w *writer, pages []PagePayload) {
	encodePagesFlagged(w, pages, false)
}

// encodePagesFlagged writes the page list, optionally raising the
// delta-section presence flag on the count.
func encodePagesFlagged(w *writer, pages []PagePayload, flag bool) {
	cnt := uint32(len(pages))
	if flag {
		cnt |= sectionFlag
	}
	w.u32(cnt)
	for _, p := range pages {
		w.i32(int32(p.Page))
		w.u64(p.Version)
		w.bytes(p.Data)
	}
}

func decodePages(r *reader) []PagePayload {
	out, flag := decodePagesFlagged(r)
	if flag && r.err == nil {
		r.err = fmt.Errorf("wire: delta flag on a non-batched page list")
	}
	return out
}

func decodePagesFlagged(r *reader) ([]PagePayload, bool) {
	n, flag := r.flaggedCount()
	var out []PagePayload
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, PagePayload{
			Page:    ids.PageNum(r.i32()),
			Version: r.u64(),
			Data:    r.bytes(),
		})
	}
	return out, flag
}

func encodeDelta(w *writer, d DeltaPage) {
	w.i32(int32(d.Page))
	w.u64(d.Base)
	w.u64(d.Version)
	w.u32(uint32(len(d.Runs)))
	for _, s := range d.Runs {
		w.u32(s.Off)
		w.u32(s.Len)
	}
	w.bytes(d.Data)
}

// decodeDelta reads one DeltaPage and validates its shape: version must
// progress, runs must be sorted, non-overlapping, non-empty, and in-bounds,
// and together exactly cover the payload. Anything else is a decode error,
// never a panic — the apply path trusts decoded deltas' shape.
func decodeDelta(r *reader) DeltaPage {
	d := DeltaPage{Page: ids.PageNum(r.i32()), Base: r.u64(), Version: r.u64()}
	n := r.count()
	prevEnd := uint64(0)
	sum := 0
	for i := 0; i < n && r.err == nil; i++ {
		s := Span{Off: r.u32(), Len: r.u32()}
		if r.err != nil {
			break
		}
		if s.Len == 0 || uint64(s.Off) < prevEnd || uint64(s.Off)+uint64(s.Len) > 1<<24 {
			r.err = fmt.Errorf("wire: delta run %d [%d,+%d) empty, overlapping, or out of bounds", i, s.Off, s.Len)
			break
		}
		prevEnd = uint64(s.Off) + uint64(s.Len)
		sum += int(s.Len)
		d.Runs = append(d.Runs, s)
	}
	if r.err == nil && d.Base >= d.Version {
		r.err = fmt.Errorf("wire: delta for page %d has a version gap (%d→%d)", d.Page, d.Base, d.Version)
	}
	d.Data = r.bytes()
	if r.err == nil && sum != len(d.Data) {
		r.err = fmt.Errorf("wire: delta runs cover %d bytes, payload has %d", sum, len(d.Data))
	}
	return d
}

func (m *FetchResp) encodeBody(w *writer) {
	w.i64(int64(m.Obj))
	encodePages(w, m.Pages)
}

func (m *FetchResp) decodeBody(r *reader) {
	m.Obj = ids.ObjectID(r.i64())
	m.Pages = decodePages(r)
}

func (m *PushReq) encodeBody(w *writer) {
	w.i64(int64(m.Obj))
	encodePages(w, m.Pages)
}

func (m *PushReq) decodeBody(r *reader) {
	m.Obj = ids.ObjectID(r.i64())
	m.Pages = decodePages(r)
}

func (*PushResp) encodeBody(*writer) {}
func (*PushResp) decodeBody(*reader) {}

func (m *CopySetReq) encodeBody(w *writer) {
	w.u64(m.ReqID)
	w.u32(uint32(len(m.Objs)))
	for _, o := range m.Objs {
		w.i64(int64(o))
	}
}

func (m *CopySetReq) decodeBody(r *reader) {
	m.ReqID = r.u64()
	n := r.count()
	for i := 0; i < n && r.err == nil; i++ {
		m.Objs = append(m.Objs, ids.ObjectID(r.i64()))
	}
}

func (m *CopySetResp) encodeBody(w *writer) {
	w.u32(uint32(len(m.Sets)))
	for _, c := range m.Sets {
		w.i64(int64(c.Obj))
		w.u32(uint32(len(c.Sites)))
		for _, s := range c.Sites {
			w.i32(int32(s))
		}
	}
}

func (m *CopySetResp) decodeBody(r *reader) {
	n := r.count()
	for i := 0; i < n && r.err == nil; i++ {
		c := CopySet{Obj: ids.ObjectID(r.i64())}
		k := r.count()
		for j := 0; j < k && r.err == nil; j++ {
			c.Sites = append(c.Sites, ids.NodeID(r.i32()))
		}
		m.Sets = append(m.Sets, c)
	}
}

func (m *RegisterReq) encodeBody(w *writer) {
	w.i64(int64(m.Obj))
	w.i32(int32(m.Class))
	w.i32(m.NumPages)
	w.i32(int32(m.Owner))
}

func (m *RegisterReq) decodeBody(r *reader) {
	m.Obj = ids.ObjectID(r.i64())
	m.Class = ids.ClassID(r.i32())
	m.NumPages = r.i32()
	m.Owner = ids.NodeID(r.i32())
}

func (*RegisterResp) encodeBody(*writer) {}
func (*RegisterResp) decodeBody(*reader) {}

func (m *RunReq) encodeBody(w *writer) {
	w.i64(int64(m.Obj))
	w.str(m.Method)
	w.bytes(m.Arg)
}

func (m *RunReq) decodeBody(r *reader) {
	m.Obj = ids.ObjectID(r.i64())
	m.Method = r.str()
	m.Arg = r.bytes()
}

func (m *RunResp) encodeBody(w *writer) {
	w.bytes(m.Result)
	w.str(m.ErrMsg)
}

func (m *RunResp) decodeBody(r *reader) {
	m.Result = r.bytes()
	m.ErrMsg = r.str()
}

func (m *ErrResp) encodeBody(w *writer) { w.str(m.Msg) }
func (m *ErrResp) decodeBody(r *reader) { m.Msg = r.str() }

func (m *MultiFetchReq) encodeBody(w *writer) {
	w.u64(m.ReqID)
	w.boolean(m.Demand)
	w.u32(uint32(len(m.Objs)))
	for _, o := range m.Objs {
		w.i64(int64(o.Obj))
		cnt := uint32(len(o.Pages))
		if o.hasBases() {
			cnt |= sectionFlag
		}
		w.u32(cnt)
		for _, p := range o.Pages {
			w.i32(int32(p))
		}
		if o.hasBases() {
			for _, b := range o.Bases {
				w.u64(b)
			}
		}
	}
}

func (m *MultiFetchReq) decodeBody(r *reader) {
	m.ReqID = r.u64()
	m.Demand = r.boolean()
	n := r.count()
	for i := 0; i < n && r.err == nil; i++ {
		o := ObjPages{Obj: ids.ObjectID(r.i64())}
		k, withBases := r.flaggedCount()
		if withBases && k == 0 && r.err == nil {
			r.err = fmt.Errorf("wire: base-version section on an empty page list")
		}
		for j := 0; j < k && r.err == nil; j++ {
			o.Pages = append(o.Pages, ids.PageNum(r.i32()))
		}
		if withBases {
			for j := 0; j < k && r.err == nil; j++ {
				o.Bases = append(o.Bases, r.u64())
			}
		}
		m.Objs = append(m.Objs, o)
	}
}

func encodeObjPayloads(w *writer, objs []ObjPayload) {
	w.u32(uint32(len(objs)))
	for _, o := range objs {
		w.i64(int64(o.Obj))
		encodePagesFlagged(w, o.Pages, len(o.Deltas) > 0)
		if len(o.Deltas) > 0 {
			w.u32(uint32(len(o.Deltas)))
			for _, d := range o.Deltas {
				encodeDelta(w, d)
			}
		}
	}
}

func decodeObjPayloads(r *reader) []ObjPayload {
	n := r.count()
	var out []ObjPayload
	for i := 0; i < n && r.err == nil; i++ {
		o := ObjPayload{Obj: ids.ObjectID(r.i64())}
		var withDeltas bool
		o.Pages, withDeltas = decodePagesFlagged(r)
		if withDeltas {
			k := r.count()
			if k == 0 && r.err == nil {
				r.err = fmt.Errorf("wire: delta flag set on an empty delta section")
			}
			for j := 0; j < k && r.err == nil; j++ {
				o.Deltas = append(o.Deltas, decodeDelta(r))
			}
		}
		out = append(out, o)
	}
	return out
}

func (m *MultiFetchResp) encodeBody(w *writer) { encodeObjPayloads(w, m.Objs) }
func (m *MultiFetchResp) decodeBody(r *reader) { m.Objs = decodeObjPayloads(r) }

func (m *MultiPushReq) encodeBody(w *writer) {
	w.u64(m.ReqID)
	encodeObjPayloads(w, m.Objs)
}

func (m *MultiPushReq) decodeBody(r *reader) {
	m.ReqID = r.u64()
	m.Objs = decodeObjPayloads(r)
}
