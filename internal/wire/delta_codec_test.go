package wire

import (
	"encoding/binary"
	"strings"
	"testing"

	"lotec/internal/ids"
)

// TestDecodeRejectsMalformedDeltas pins the decode-time validation contract
// the apply path trusts: every malformed delta shape is a clean decode
// error (never a panic, never a silently accepted message). The encoder
// frames whatever struct it is given, so each case round-trips bytes built
// by Encode itself.
func TestDecodeRejectsMalformedDeltas(t *testing.T) {
	frame := func(d DeltaPage) []byte {
		return Encode(Envelope{ReqID: 1, From: 1, To: 2},
			&MultiPushReq{Objs: []ObjPayload{{Obj: 9, Deltas: []DeltaPage{d}}}})
	}
	cases := []struct {
		name string
		d    DeltaPage
		want string
	}{
		{"overlapping runs",
			DeltaPage{Base: 1, Version: 2, Runs: []Span{{Off: 0, Len: 8}, {Off: 4, Len: 4}},
				Data: make([]byte, 12)}, "overlapping"},
		{"unsorted runs",
			DeltaPage{Base: 1, Version: 2, Runs: []Span{{Off: 16, Len: 2}, {Off: 0, Len: 2}},
				Data: make([]byte, 4)}, "overlapping"},
		{"out-of-bounds offset",
			DeltaPage{Base: 1, Version: 2, Runs: []Span{{Off: 1<<24 - 1, Len: 2}},
				Data: make([]byte, 2)}, "out of bounds"},
		{"empty run",
			DeltaPage{Base: 1, Version: 2, Runs: []Span{{Off: 4, Len: 0}}}, "empty"},
		{"version gap equal",
			DeltaPage{Base: 3, Version: 3, Runs: []Span{{Off: 0, Len: 1}},
				Data: []byte{1}}, "version gap"},
		{"version gap backwards",
			DeltaPage{Base: 4, Version: 2, Runs: []Span{{Off: 0, Len: 1}},
				Data: []byte{1}}, "version gap"},
		{"runs under-cover payload",
			DeltaPage{Base: 1, Version: 2, Runs: []Span{{Off: 0, Len: 2}},
				Data: []byte{1, 2, 3}}, "runs cover"},
		{"runs over-cover payload",
			DeltaPage{Base: 1, Version: 2, Runs: []Span{{Off: 0, Len: 4}},
				Data: []byte{1}}, "runs cover"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := Decode(frame(tc.d))
			if err == nil {
				t.Fatalf("malformed delta decoded cleanly: %+v", tc.d)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestDecodeRejectsFlaggedEmptySections pins the bit-31 framing rule: a
// collection count with the optional-section flag set but an empty section
// behind it is an encoding no writer produces, so the decoder rejects it
// rather than aliasing it with the flag-free (seed-identical) form.
func TestDecodeRejectsFlaggedEmptySections(t *testing.T) {
	t.Run("push delta section", func(t *testing.T) {
		// MultiPushReq body: reqID u64, objCount u32, obj i64,
		// flagged page count u32, then (flag set) delta count u32.
		w := &writer{}
		w.u64(7)
		w.u32(1)
		w.i64(9)
		w.u32(0 | sectionFlag) // zero pages, delta section follows
		w.u32(0)               // ... but it is empty
		buf := Encode(Envelope{ReqID: 1, From: 1, To: 2}, &MultiPushReq{})
		buf = append(buf[:HeaderSize], w.buf...)
		buf = fixBodyLen(buf)
		if _, _, err := Decode(buf); err == nil {
			t.Fatal("delta flag on an empty section decoded cleanly")
		}
	})
	t.Run("fetch base section", func(t *testing.T) {
		// MultiFetchReq body: reqID u64, demand u8, objCount u32, obj i64,
		// flagged page count u32, pages, then (flag set) bases — absent.
		w := &writer{}
		w.u64(0)
		w.u8(0)
		w.u32(1)
		w.i64(3)
		w.u32(1 | sectionFlag)
		w.i32(int32(ids.PageNum(0)))
		// Bases section missing entirely: decoder must run out of bytes.
		buf := Encode(Envelope{ReqID: 1, From: 1, To: 2}, &MultiFetchReq{})
		buf = append(buf[:HeaderSize], w.buf...)
		buf = fixBodyLen(buf)
		if _, _, err := Decode(buf); err == nil {
			t.Fatal("base flag with a missing section decoded cleanly")
		}
	})
}

// fixBodyLen restamps the header's body-length field after a test spliced
// in a hand-built body.
func fixBodyLen(buf []byte) []byte {
	binary.LittleEndian.PutUint32(buf[17:], uint32(len(buf)-HeaderSize))
	return buf
}

// TestClassifyDeltaFramingExact pins the stats attribution contract on real
// encodings: for a batched response mixing full pages and deltas, each
// object's recorded payload+overhead equals its exact on-wire section size,
// and what is left over is precisely the shared framing (header plus the
// top-level object count). This is what keeps the paper's per-object byte
// counts exact now that delta run lists make section framing vary.
func TestClassifyDeltaFramingExact(t *testing.T) {
	m := &MultiFetchResp{Objs: []ObjPayload{
		{Obj: 3, Pages: []PagePayload{
			{Page: 0, Version: 4, Data: make([]byte, 96)},
			{Page: 2, Version: 4, Data: make([]byte, 96)}}},
		{Obj: 5, Deltas: []DeltaPage{{Page: 1, Base: 7, Version: 8,
			Runs: []Span{{Off: 0, Len: 3}, {Off: 40, Len: 5}},
			Data: make([]byte, 8)}}},
		{Obj: 9,
			Pages: []PagePayload{{Page: 0, Version: 2, Data: make([]byte, 96)}},
			Deltas: []DeltaPage{{Page: 1, Base: 1, Version: 2,
				Runs: []Span{{Off: 12, Len: 4}}, Data: make([]byte, 4)}}},
	}}
	rec := Classify(m)
	if len(rec.Objs) != 3 || len(rec.Payloads) != 3 || len(rec.Overheads) != 3 {
		t.Fatalf("classify shape: %+v", rec)
	}
	wantPayloads := []int{192, 8, 100}
	sharedWant := HeaderSize + 4 // envelope + object count
	shared := rec.Bytes
	for i, o := range m.Objs {
		if rec.Payloads[i] != wantPayloads[i] {
			t.Errorf("object %d payload = %d, want %d", o.Obj, rec.Payloads[i], wantPayloads[i])
		}
		if got := rec.Payloads[i] + rec.Overheads[i]; got != o.size() {
			t.Errorf("object %d payload+overhead = %d, section is %d B", o.Obj, got, o.size())
		}
		shared -= o.size()
	}
	if shared != sharedWant {
		t.Errorf("residual shared bytes = %d, want %d", shared, sharedWant)
	}
	if rec.Bytes != m.Size() || rec.Bytes != len(Encode(Envelope{From: 1, To: 2}, m)) {
		t.Errorf("classified size %d disagrees with encoding", rec.Bytes)
	}
	if rec.Payload != 300 {
		t.Errorf("total payload = %d, want 300", rec.Payload)
	}
}
