package wire

import (
	"fmt"

	"lotec/internal/ids"
)

// Control-plane replication messages. A directory shard is a replicated,
// relocatable state machine: its primary chains every state-mutating op to
// a backup (ReplicateReq) before replying, clients promote the backup when
// the primary dies (PromoteReq), and online resharding hands a shard's full
// state to a new owner mid-workload (HandoffStartReq/HandoffReq) with a
// witness-ratified epoch bump (EpochChangeReq). The placement map itself is
// a versioned, epoch-stamped object (PlacementMap); any host can reject a
// stale-epoch request with RouteResp carrying the newer map, which replaces
// the static placement-mismatch check. Cross-host deadlock detection rides
// WaitEdgeUpdate/AbortFamilyReq; the global commit order is served by the
// shard-0 primary via CommitSeqReq.

// PlacementMap is the versioned shard→owner map distributed to every node.
// Epoch starts at 1 and bumps on every promotion or handoff; requests
// stamped with an older epoch are rejected with the current map.
type PlacementMap struct {
	Epoch uint64
	// Nodes is the data-site count backing Placement.HomeNode attribution.
	Nodes int32
	// Primary[s] serves shard s; Backup[s] replicates it (NoNode = none).
	Primary []ids.NodeID
	Backup  []ids.NodeID
}

// size is the map's on-wire section size.
func (p PlacementMap) size() int { return 8 + 4 + 4 + 8*len(p.Primary) }

// NumShards returns the shard count the map covers.
func (p PlacementMap) NumShards() int { return len(p.Primary) }

// Equal reports whether two maps are identical.
func (p PlacementMap) Equal(q PlacementMap) bool {
	if p.Epoch != q.Epoch || p.Nodes != q.Nodes || len(p.Primary) != len(q.Primary) {
		return false
	}
	for i := range p.Primary {
		if p.Primary[i] != q.Primary[i] || p.Backup[i] != q.Backup[i] {
			return false
		}
	}
	return true
}

// Clone returns a deep copy (the route layer mutates adopted maps never).
func (p PlacementMap) Clone() PlacementMap {
	q := p
	q.Primary = append([]ids.NodeID(nil), p.Primary...)
	q.Backup = append([]ids.NodeID(nil), p.Backup...)
	return q
}

func encodeMap(w *writer, p PlacementMap) {
	w.u64(p.Epoch)
	w.i32(p.Nodes)
	w.u32(uint32(len(p.Primary)))
	for i := range p.Primary {
		w.i32(int32(p.Primary[i]))
		w.i32(int32(p.Backup[i]))
	}
}

func decodeMap(r *reader) PlacementMap {
	p := PlacementMap{Epoch: r.u64(), Nodes: r.i32()}
	n := int(r.u32())
	if r.err == nil && (n < 0 || n > 1<<16) {
		r.err = fmt.Errorf("wire: absurd shard count %d", n)
		return p
	}
	for i := 0; i < n && r.err == nil; i++ {
		p.Primary = append(p.Primary, ids.NodeID(r.i32()))
		p.Backup = append(p.Backup, ids.NodeID(r.i32()))
	}
	return p
}

// ReplicateReq chains one state-mutating shard op from primary to backup:
// the original client frame (Op, a full Encode'd message) plus the
// primary's deadlock decisions (Purges: families self-victimized at
// enqueue; Aborts: waiting families victimized), so the backup applies
// mechanically and both replicas stay byte-identical. Seq orders ops per
// shard; the backup rejects anything but Seq = applied+1. Client carries
// the original requester and Reply the primary's computed answer, so the
// backup can prime its idempotency cache for exactly-once semantics across
// a promotion: the client's retried request replays Reply verbatim.
type ReplicateReq struct {
	// ReqID is the stable idempotency key (see Idempotent; 0 = unstamped).
	ReqID  uint64
	Shard  int32
	Epoch  uint64
	Seq    uint64
	Client ids.NodeID
	Op     []byte
	Reply  []byte
	Purges []ids.FamilyID
	Aborts []ids.FamilyID
	// Map is the primary's current placement map. A backup whose own map
	// lags (a promotion elsewhere bumped the epoch without a witness round)
	// adopts it instead of refusing — a refusal can only carry the backup's
	// older map, which would never let the pair reconverge.
	Map PlacementMap
}

// Type implements Msg.
func (*ReplicateReq) Type() MsgType { return TReplicateReq }

// Size implements Msg.
func (m *ReplicateReq) Size() int {
	return HeaderSize + 8 + 4 + 8 + 8 + 4 + 4 + len(m.Op) + 4 + len(m.Reply) +
		4 + 8*len(m.Purges) + 4 + 8*len(m.Aborts) + m.Map.size()
}

// RequestID implements Idempotent.
func (m *ReplicateReq) RequestID() uint64 { return m.ReqID }

// SetRequestID implements Idempotent.
func (m *ReplicateReq) SetRequestID(id uint64) { m.ReqID = id }

// ReplicateResp acknowledges a ReplicateReq. OK false means the backup
// rejected the op (stale epoch or it no longer backs the shard); Map is the
// backup's current placement map either way, keeping the primary fresh.
type ReplicateResp struct {
	OK  bool
	Map PlacementMap
}

// Type implements Msg.
func (*ReplicateResp) Type() MsgType { return TReplicateResp }

// Size implements Msg.
func (m *ReplicateResp) Size() int { return HeaderSize + 1 + m.Map.size() }

// PromoteReq asks a backup to take over every shard it backs whose primary
// is Dead. Clients send it after a Call to the primary exhausts its
// retries. Idempotent: a backup that already promoted (or saw a newer map)
// just returns its current map.
type PromoteReq struct {
	// ReqID is the stable idempotency key (see Idempotent; 0 = unstamped).
	ReqID uint64
	Dead  ids.NodeID
	// Epoch is the requester's map epoch (what it believed when the
	// primary stopped answering).
	Epoch uint64
}

// Type implements Msg.
func (*PromoteReq) Type() MsgType { return TPromoteReq }

// Size implements Msg.
func (*PromoteReq) Size() int { return HeaderSize + 8 + 4 + 8 }

// RequestID implements Idempotent.
func (m *PromoteReq) RequestID() uint64 { return m.ReqID }

// SetRequestID implements Idempotent.
func (m *PromoteReq) SetRequestID(id uint64) { m.ReqID = id }

// PromoteResp returns the (possibly just-bumped) placement map.
type PromoteResp struct {
	Map PlacementMap
}

// Type implements Msg.
func (*PromoteResp) Type() MsgType { return TPromoteResp }

// Size implements Msg.
func (m *PromoteResp) Size() int { return HeaderSize + m.Map.size() }

// EpochChangeReq proposes a new placement map to a witness (the shard's
// backup). The witness accepts a proposal for exactly epoch+1 — first
// proposal wins; a conflicting proposal at the same epoch is rejected with
// the winner's map. This serializes the handoff-activation vs.
// handoff-cancellation race when the old and new primaries are partitioned.
type EpochChangeReq struct {
	// ReqID is the stable idempotency key (see Idempotent; 0 = unstamped).
	ReqID uint64
	Map   PlacementMap
}

// Type implements Msg.
func (*EpochChangeReq) Type() MsgType { return TEpochChangeReq }

// Size implements Msg.
func (m *EpochChangeReq) Size() int { return HeaderSize + 8 + m.Map.size() }

// RequestID implements Idempotent.
func (m *EpochChangeReq) RequestID() uint64 { return m.ReqID }

// SetRequestID implements Idempotent.
func (m *EpochChangeReq) SetRequestID(id uint64) { m.ReqID = id }

// EpochChangeResp reports whether the proposal was ratified; Map is the
// witness's current map either way.
type EpochChangeResp struct {
	OK  bool
	Map PlacementMap
}

// Type implements Msg.
func (*EpochChangeResp) Type() MsgType { return TEpochChangeResp }

// Size implements Msg.
func (m *EpochChangeResp) Size() int { return HeaderSize + 1 + m.Map.size() }

// HandoffStartReq tells a shard's current primary to hand the shard to
// Target: seal intake, drain in-flight replication, export state, ship it.
type HandoffStartReq struct {
	// ReqID is the stable idempotency key (see Idempotent; 0 = unstamped).
	ReqID  uint64
	Shard  int32
	Target ids.NodeID
}

// Type implements Msg.
func (*HandoffStartReq) Type() MsgType { return THandoffStartReq }

// Size implements Msg.
func (*HandoffStartReq) Size() int { return HeaderSize + 8 + 4 + 4 }

// RequestID implements Idempotent.
func (m *HandoffStartReq) RequestID() uint64 { return m.ReqID }

// SetRequestID implements Idempotent.
func (m *HandoffStartReq) SetRequestID(id uint64) { m.ReqID = id }

// HandoffStartResp completes a HandoffStartReq once the handoff finished
// (or was cancelled). StateBytes is the exported snapshot size — the
// ledger's "handoff bytes" metric.
type HandoffStartResp struct {
	OK         bool
	StateBytes uint64
	Map        PlacementMap
}

// Type implements Msg.
func (*HandoffStartResp) Type() MsgType { return THandoffStartResp }

// Size implements Msg.
func (m *HandoffStartResp) Size() int { return HeaderSize + 1 + 8 + m.Map.size() }

// HandoffReq ships a sealed shard's exported state to its new owner. Map is
// the proposed post-handoff placement (epoch+1, Target as primary); Seq is
// the shard's replication sequence so the new primary continues the op log
// without a gap.
type HandoffReq struct {
	// ReqID is the stable idempotency key (see Idempotent; 0 = unstamped).
	ReqID uint64
	Shard int32
	Seq   uint64
	Map   PlacementMap
	State []byte
}

// Type implements Msg.
func (*HandoffReq) Type() MsgType { return THandoffReq }

// Size implements Msg.
func (m *HandoffReq) Size() int {
	return HeaderSize + 8 + 4 + 8 + m.Map.size() + 4 + len(m.State)
}

// RequestID implements Idempotent.
func (m *HandoffReq) RequestID() uint64 { return m.ReqID }

// SetRequestID implements Idempotent.
func (m *HandoffReq) SetRequestID(id uint64) { m.ReqID = id }

// HandoffResp reports whether the target activated the shard (its
// EpochChangeReq to the witness was ratified). Map is the target's current
// map — on OK the post-handoff map, on rejection whatever newer map won.
type HandoffResp struct {
	OK  bool
	Map PlacementMap
}

// Type implements Msg.
func (*HandoffResp) Type() MsgType { return THandoffResp }

// Size implements Msg.
func (m *HandoffResp) Size() int { return HeaderSize + 1 + m.Map.size() }

// RouteResp rejects a stale-epoch or wrong-owner request, carrying the
// responder's newer placement map; the client adopts it and retries. This
// replaces the static placement-mismatch ErrResp of the pre-replication
// directory host.
type RouteResp struct {
	Map PlacementMap
}

// Type implements Msg.
func (*RouteResp) Type() MsgType { return TRouteResp }

// Size implements Msg.
func (m *RouteResp) Size() int { return HeaderSize + m.Map.size() }

// WaitEdge is one waits-for edge in a host's local union graph.
type WaitEdge struct {
	From, To ids.FamilyID
}

// FamilyAge pairs a family with its deadlock-victim priority.
type FamilyAge struct {
	Family ids.FamilyID
	Age    uint64
}

// WaitEdgeUpdate pushes a host's full local waits-for graph to the
// detection coordinator (the shard-0 primary). Ver is a per-sender
// monotonic version so reordered updates cannot regress the coordinator's
// view; the reply carries the coordinator's map so a host pushing to a
// deposed coordinator re-routes itself.
type WaitEdgeUpdate struct {
	// ReqID is the stable idempotency key (see Idempotent; 0 = unstamped).
	ReqID uint64
	Ver   uint64
	Epoch uint64
	Edges []WaitEdge
	Ages  []FamilyAge
}

// Type implements Msg.
func (*WaitEdgeUpdate) Type() MsgType { return TWaitEdgeUpdate }

// Size implements Msg.
func (m *WaitEdgeUpdate) Size() int {
	return HeaderSize + 8 + 8 + 8 + 4 + 16*len(m.Edges) + 4 + 16*len(m.Ages)
}

// RequestID implements Idempotent.
func (m *WaitEdgeUpdate) RequestID() uint64 { return m.ReqID }

// SetRequestID implements Idempotent.
func (m *WaitEdgeUpdate) SetRequestID(id uint64) { m.ReqID = id }

// WaitEdgeResp acknowledges a WaitEdgeUpdate with the coordinator's map.
type WaitEdgeResp struct {
	Map PlacementMap
}

// Type implements Msg.
func (*WaitEdgeResp) Type() MsgType { return TWaitEdgeResp }

// Size implements Msg.
func (m *WaitEdgeResp) Size() int { return HeaderSize + m.Map.size() }

// AbortFamilyReq tells a host to victimize Family on every shard it serves
// (the coordinator's cross-host deadlock resolution). A host where the
// family waits nowhere treats it as a no-op.
type AbortFamilyReq struct {
	// ReqID is the stable idempotency key (see Idempotent; 0 = unstamped).
	ReqID  uint64
	Family ids.FamilyID
	Epoch  uint64
}

// Type implements Msg.
func (*AbortFamilyReq) Type() MsgType { return TAbortFamilyReq }

// Size implements Msg.
func (*AbortFamilyReq) Size() int { return HeaderSize + 8 + 8 + 8 }

// RequestID implements Idempotent.
func (m *AbortFamilyReq) RequestID() uint64 { return m.ReqID }

// SetRequestID implements Idempotent.
func (m *AbortFamilyReq) SetRequestID(id uint64) { m.ReqID = id }

// AbortFamilyResp acknowledges an AbortFamilyReq (the aborts themselves
// complete asynchronously through the shard op logs).
type AbortFamilyResp struct{}

// Type implements Msg.
func (*AbortFamilyResp) Type() MsgType { return TAbortFamilyResp }

// Size implements Msg.
func (*AbortFamilyResp) Size() int { return HeaderSize }

// CommitSeqReq asks the global commit sequencer (the shard-0 primary) for
// Family's position in the commit order. Committing roots call it while
// still holding every lock, so the assigned order is conflict-consistent;
// the assignment replicates through shard 0's op log like any other
// mutation.
type CommitSeqReq struct {
	// ReqID is the stable idempotency key (see Idempotent; 0 = unstamped).
	ReqID  uint64
	Family ids.FamilyID
	Epoch  uint64
}

// Type implements Msg.
func (*CommitSeqReq) Type() MsgType { return TCommitSeqReq }

// Size implements Msg.
func (*CommitSeqReq) Size() int { return HeaderSize + 8 + 8 + 8 }

// RequestID implements Idempotent.
func (m *CommitSeqReq) RequestID() uint64 { return m.ReqID }

// SetRequestID implements Idempotent.
func (m *CommitSeqReq) SetRequestID(id uint64) { m.ReqID = id }

// CommitSeqResp returns the assigned commit sequence number.
type CommitSeqResp struct {
	Seq uint64
}

// Type implements Msg.
func (*CommitSeqResp) Type() MsgType { return TCommitSeqResp }

// Size implements Msg.
func (*CommitSeqResp) Size() int { return HeaderSize + 8 }

// Codec bodies for the replication messages. None of them ride the
// per-transaction lock fast path, so they are not //lotec:noalloc.

func (m *ReplicateReq) encodeBody(w *writer) {
	w.u64(m.ReqID)
	w.i32(m.Shard)
	w.u64(m.Epoch)
	w.u64(m.Seq)
	w.i32(int32(m.Client))
	w.bytes(m.Op)
	w.bytes(m.Reply)
	w.u32(uint32(len(m.Purges)))
	for _, f := range m.Purges {
		w.u64(uint64(f))
	}
	w.u32(uint32(len(m.Aborts)))
	for _, f := range m.Aborts {
		w.u64(uint64(f))
	}
	encodeMap(w, m.Map)
}

func (m *ReplicateReq) decodeBody(r *reader) {
	m.ReqID = r.u64()
	m.Shard = r.i32()
	m.Epoch = r.u64()
	m.Seq = r.u64()
	m.Client = ids.NodeID(r.i32())
	m.Op = r.bytes()
	m.Reply = r.bytes()
	n := r.count()
	for i := 0; i < n && r.err == nil; i++ {
		m.Purges = append(m.Purges, ids.FamilyID(r.u64()))
	}
	n = r.count()
	for i := 0; i < n && r.err == nil; i++ {
		m.Aborts = append(m.Aborts, ids.FamilyID(r.u64()))
	}
	m.Map = decodeMap(r)
}

func (m *ReplicateResp) encodeBody(w *writer) {
	w.boolean(m.OK)
	encodeMap(w, m.Map)
}

func (m *ReplicateResp) decodeBody(r *reader) {
	m.OK = r.boolean()
	m.Map = decodeMap(r)
}

func (m *PromoteReq) encodeBody(w *writer) {
	w.u64(m.ReqID)
	w.i32(int32(m.Dead))
	w.u64(m.Epoch)
}

func (m *PromoteReq) decodeBody(r *reader) {
	m.ReqID = r.u64()
	m.Dead = ids.NodeID(r.i32())
	m.Epoch = r.u64()
}

func (m *PromoteResp) encodeBody(w *writer) { encodeMap(w, m.Map) }
func (m *PromoteResp) decodeBody(r *reader) { m.Map = decodeMap(r) }

func (m *EpochChangeReq) encodeBody(w *writer) {
	w.u64(m.ReqID)
	encodeMap(w, m.Map)
}

func (m *EpochChangeReq) decodeBody(r *reader) {
	m.ReqID = r.u64()
	m.Map = decodeMap(r)
}

func (m *EpochChangeResp) encodeBody(w *writer) {
	w.boolean(m.OK)
	encodeMap(w, m.Map)
}

func (m *EpochChangeResp) decodeBody(r *reader) {
	m.OK = r.boolean()
	m.Map = decodeMap(r)
}

func (m *HandoffStartReq) encodeBody(w *writer) {
	w.u64(m.ReqID)
	w.i32(m.Shard)
	w.i32(int32(m.Target))
}

func (m *HandoffStartReq) decodeBody(r *reader) {
	m.ReqID = r.u64()
	m.Shard = r.i32()
	m.Target = ids.NodeID(r.i32())
}

func (m *HandoffStartResp) encodeBody(w *writer) {
	w.boolean(m.OK)
	w.u64(m.StateBytes)
	encodeMap(w, m.Map)
}

func (m *HandoffStartResp) decodeBody(r *reader) {
	m.OK = r.boolean()
	m.StateBytes = r.u64()
	m.Map = decodeMap(r)
}

func (m *HandoffReq) encodeBody(w *writer) {
	w.u64(m.ReqID)
	w.i32(m.Shard)
	w.u64(m.Seq)
	encodeMap(w, m.Map)
	w.bytes(m.State)
}

func (m *HandoffReq) decodeBody(r *reader) {
	m.ReqID = r.u64()
	m.Shard = r.i32()
	m.Seq = r.u64()
	m.Map = decodeMap(r)
	m.State = r.bytes()
}

func (m *HandoffResp) encodeBody(w *writer) {
	w.boolean(m.OK)
	encodeMap(w, m.Map)
}

func (m *HandoffResp) decodeBody(r *reader) {
	m.OK = r.boolean()
	m.Map = decodeMap(r)
}

func (m *RouteResp) encodeBody(w *writer) { encodeMap(w, m.Map) }
func (m *RouteResp) decodeBody(r *reader) { m.Map = decodeMap(r) }

func (m *WaitEdgeUpdate) encodeBody(w *writer) {
	w.u64(m.ReqID)
	w.u64(m.Ver)
	w.u64(m.Epoch)
	w.u32(uint32(len(m.Edges)))
	for _, e := range m.Edges {
		w.u64(uint64(e.From))
		w.u64(uint64(e.To))
	}
	w.u32(uint32(len(m.Ages)))
	for _, a := range m.Ages {
		w.u64(uint64(a.Family))
		w.u64(a.Age)
	}
}

func (m *WaitEdgeUpdate) decodeBody(r *reader) {
	m.ReqID = r.u64()
	m.Ver = r.u64()
	m.Epoch = r.u64()
	n := r.count()
	for i := 0; i < n && r.err == nil; i++ {
		m.Edges = append(m.Edges, WaitEdge{From: ids.FamilyID(r.u64()), To: ids.FamilyID(r.u64())})
	}
	n = r.count()
	for i := 0; i < n && r.err == nil; i++ {
		m.Ages = append(m.Ages, FamilyAge{Family: ids.FamilyID(r.u64()), Age: r.u64()})
	}
}

func (m *WaitEdgeResp) encodeBody(w *writer) { encodeMap(w, m.Map) }
func (m *WaitEdgeResp) decodeBody(r *reader) { m.Map = decodeMap(r) }

func (m *AbortFamilyReq) encodeBody(w *writer) {
	w.u64(m.ReqID)
	w.u64(uint64(m.Family))
	w.u64(m.Epoch)
}

func (m *AbortFamilyReq) decodeBody(r *reader) {
	m.ReqID = r.u64()
	m.Family = ids.FamilyID(r.u64())
	m.Epoch = r.u64()
}

func (*AbortFamilyResp) encodeBody(*writer) {}
func (*AbortFamilyResp) decodeBody(*reader) {}

func (m *CommitSeqReq) encodeBody(w *writer) {
	w.u64(m.ReqID)
	w.u64(uint64(m.Family))
	w.u64(m.Epoch)
}

func (m *CommitSeqReq) decodeBody(r *reader) {
	m.ReqID = r.u64()
	m.Family = ids.FamilyID(r.u64())
	m.Epoch = r.u64()
}

func (m *CommitSeqResp) encodeBody(w *writer) { w.u64(m.Seq) }
func (m *CommitSeqResp) decodeBody(r *reader) { m.Seq = r.u64() }
