package wire

import (
	"errors"
	"reflect"
	"testing"

	"lotec/internal/gdo"
	"lotec/internal/ids"
	"lotec/internal/o2pl"
	"lotec/internal/stats"
)

// shardSamples returns the six shard-addressed message types with nonzero
// Shard values, so a codec that drops the field cannot round-trip them.
func shardSamples() []Msg {
	return []Msg{
		&AcquireReq{Obj: 7, Ref: ids.TxRef{Tx: 9, Node: 2}, Family: 9, Age: 9, Site: 2,
			Mode: o2pl.Write, Shard: 3},
		&AcquireResp{Obj: 7, Status: gdo.Queued, Mode: o2pl.Read, NumPages: 3, LastWriter: 2,
			Shard: 5, PageMap: []gdo.PageLoc{{Node: 1, Version: 4}}},
		&ReleaseReq{Family: 3, Site: 1, Commit: true, Shard: 2, Rels: []gdo.ObjectRelease{
			{Obj: 1, Dirty: []ids.PageNum{0, 2}}, {Obj: 2}}},
		&ReleaseResp{Shard: 7, Stamps: []gdo.PageStamp{{Obj: 1, Page: 2, Version: 5}}},
		&Grant{Obj: 4, Family: 8, Mode: o2pl.Write, Upgrade: true, NumPages: 5, LastWriter: 3,
			Shard:   6,
			Reqs:    []gdo.QueuedReq{{Ref: ids.TxRef{Tx: 11, Node: 3}, Mode: o2pl.Read}},
			PageMap: []gdo.PageLoc{{Node: 3, Version: 2}}},
		&Abort{Obj: 4, Family: 8, Shard: 1,
			Reqs: []gdo.QueuedReq{{Ref: ids.TxRef{Tx: 11, Node: 3}, Mode: o2pl.Write}}},
	}
}

func TestShardRoundTrip(t *testing.T) {
	for _, m := range shardSamples() {
		buf := Encode(Envelope{ReqID: 7, From: 2, To: 9}, m)
		if got, want := len(buf), m.Size(); got != want {
			t.Errorf("%T: encoded length %d, Size() %d", m, got, want)
		}
		_, got, err := Decode(buf)
		if err != nil {
			t.Fatalf("%T: Decode: %v", m, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%T: round trip mismatch:\n got %+v\nwant %+v", m, got, m)
		}
	}
}

// TestShardClassify checks that directory-addressed messages carry their
// shard into the stats record and that non-directory traffic is marked
// NoShard.
func TestShardClassify(t *testing.T) {
	for _, m := range shardSamples() {
		rec := Classify(m)
		var want int
		switch t := m.(type) {
		case *AcquireReq:
			want = int(t.Shard)
		case *AcquireResp:
			want = int(t.Shard)
		case *ReleaseReq:
			want = int(t.Shard)
		case *ReleaseResp:
			want = int(t.Shard)
		case *Grant:
			want = int(t.Shard)
		case *Abort:
			want = int(t.Shard)
		}
		if rec.Shard != want {
			t.Errorf("%T: Classify shard = %d, want %d", m, rec.Shard, want)
		}
	}
	for _, m := range []Msg{
		&FetchReq{Obj: 1}, &FetchResp{Obj: 1}, &PushReq{Obj: 1}, &PushResp{},
		&RunReq{Obj: 1}, &ErrResp{Msg: "x"},
	} {
		if rec := Classify(m); rec.Shard != stats.NoShard {
			t.Errorf("%T: Classify shard = %d, want NoShard", m, rec.Shard)
		}
	}
}

// TestShardDecodeMalformed mirrors robust_test.go for the shard-addressed
// frames: truncations and single-byte corruptions must error or decode,
// never panic, and truncating the shard field itself must be detected.
func TestShardDecodeMalformed(t *testing.T) {
	for _, m := range shardSamples() {
		base := Encode(Envelope{ReqID: 3, From: 1, To: 2}, m)
		for n := 0; n < len(base); n++ {
			if _, _, err := Decode(base[:n]); err == nil {
				t.Errorf("%T: truncation to %d of %d decoded cleanly", m, n, len(base))
			}
		}
		for i := 0; i < len(base); i++ {
			for _, delta := range []byte{1, 0x80, 0xFF} {
				buf := append([]byte(nil), base...)
				buf[i] ^= delta
				_, _, _ = Decode(buf) // must not panic
			}
		}
	}
	// A frame from the old (shard-less) layout is 4 bytes short: decoding
	// must fail rather than misread fields.
	req := &AcquireReq{Obj: 1, Ref: ids.TxRef{Tx: 2, Node: 1}, Family: 2, Age: 2, Site: 1, Mode: o2pl.Read}
	buf := Encode(Envelope{}, req)
	short := append([]byte(nil), buf[:len(buf)-4]...)
	// Patch the envelope's body length to match the truncated body.
	short[17] -= 4
	if _, _, err := Decode(short); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("shard-less AcquireReq frame: err = %v, want ErrShortBuffer", err)
	}
}
