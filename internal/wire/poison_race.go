//go:build race

package wire

// framePoison enables use-after-release detection in race-enabled builds:
// ReleaseFrame overwrites the buffer before pooling it, so a view that
// outlives its frame observes garbage immediately rather than stale bytes
// that happen to still look right.
const framePoison = true

// poisonFrame fills a released buffer with a recognizable pattern.
//
//lotec:noalloc
func poisonFrame(b []byte) {
	for i := range b {
		b[i] = 0xDB
	}
}
