package wire

import (
	"lotec/internal/ids"
	"lotec/internal/stats"
)

// Classify maps a message onto its stats record: kind, size, and the shared
// object(s) whose consistency maintenance the message is attributed to
// (Figures 2–5 report bytes per object; Figures 6–8 report message time per
// object). From/To are left for the transport to fill in.
func Classify(m Msg) stats.MsgRecord {
	rec := stats.MsgRecord{Obj: stats.NoObject, Bytes: m.Size(), Kind: stats.KindOther, Shard: stats.NoShard}
	switch t := m.(type) {
	case *AcquireReq:
		rec.Kind, rec.Obj, rec.Shard = stats.KindLockReq, t.Obj, int(t.Shard)
	case *AcquireResp:
		rec.Kind, rec.Obj, rec.Shard = stats.KindLockReply, t.Obj, int(t.Shard)
	case *ReleaseReq:
		rec.Kind, rec.Shard = stats.KindRelease, int(t.Shard)
		objs := make([]ids.ObjectID, 0, len(t.Rels))
		overheads := make([]int, 0, len(t.Rels))
		for _, rel := range t.Rels {
			objs = append(objs, rel.Obj)
			overheads = append(overheads, 8+4+4*len(rel.Dirty))
		}
		rec.Objs, rec.Overheads = objs, overheads
	case *ReleaseResp:
		rec.Kind, rec.Shard = stats.KindReleaseReply, int(t.Shard)
		objs := make([]ids.ObjectID, 0, len(t.Stamps))
		stamps := make(map[ids.ObjectID]int, len(t.Stamps))
		for _, st := range t.Stamps {
			if _, seen := stamps[st.Obj]; !seen {
				objs = append(objs, st.Obj)
			}
			stamps[st.Obj]++
		}
		overheads := make([]int, 0, len(objs))
		for _, o := range objs {
			overheads = append(overheads, sizeStamp*stamps[o])
		}
		rec.Objs, rec.Overheads = objs, overheads
	case *Grant:
		rec.Kind, rec.Obj, rec.Shard = stats.KindGrant, t.Obj, int(t.Shard)
	case *Abort:
		rec.Kind, rec.Obj, rec.Shard = stats.KindAbort, t.Obj, int(t.Shard)
	case *FetchReq:
		rec.Kind, rec.Obj = stats.KindFetchReq, t.Obj
	case *FetchResp:
		rec.Kind, rec.Obj = stats.KindPageData, t.Obj
		for _, pg := range t.Pages {
			rec.Payload += len(pg.Data)
		}
	case *PushReq:
		rec.Kind, rec.Obj = stats.KindPush, t.Obj
		for _, pg := range t.Pages {
			rec.Payload += len(pg.Data)
		}
	case *PushResp:
		rec.Kind = stats.KindPushReply
	case *CopySetReq:
		rec.Kind = stats.KindLockReq
		rec.Objs = append([]ids.ObjectID(nil), t.Objs...)
	case *CopySetResp:
		rec.Kind = stats.KindLockReply
		objs := make([]ids.ObjectID, 0, len(t.Sets))
		overheads := make([]int, 0, len(t.Sets))
		for _, c := range t.Sets {
			objs = append(objs, c.Obj)
			overheads = append(overheads, c.size())
		}
		rec.Objs, rec.Overheads = objs, overheads
	case *MultiFetchReq:
		rec.Kind = stats.KindMultiFetchReq
		objs := make([]ids.ObjectID, 0, len(t.Objs))
		overheads := make([]int, 0, len(t.Objs))
		for _, o := range t.Objs {
			objs = append(objs, o.Obj)
			overheads = append(overheads, o.size())
		}
		rec.Objs, rec.Overheads = objs, overheads
	case *MultiFetchResp:
		rec.Kind = stats.KindMultiPageData
		rec.Objs, rec.Payloads, rec.Overheads = classifyObjPayloads(t.Objs)
		for _, pb := range rec.Payloads {
			rec.Payload += pb
		}
	case *MultiPushReq:
		rec.Kind = stats.KindMultiPush
		rec.Objs, rec.Payloads, rec.Overheads = classifyObjPayloads(t.Objs)
		for _, pb := range rec.Payloads {
			rec.Payload += pb
		}
	case *RegisterReq:
		rec.Kind, rec.Obj = stats.KindRegister, t.Obj
	case *RegisterResp:
		rec.Kind = stats.KindRegisterReply
	case *RunReq:
		rec.Kind, rec.Obj = stats.KindRun, t.Obj
	case *RunResp:
		rec.Kind = stats.KindRunReply
	case *ErrResp:
		rec.Kind = stats.KindError
	case *ReplicateReq:
		rec.Kind, rec.Shard = stats.KindReplicate, int(t.Shard)
	case *ReplicateResp:
		rec.Kind = stats.KindReplicateReply
	case *PromoteReq:
		rec.Kind = stats.KindPromote
	case *PromoteResp:
		rec.Kind = stats.KindPromoteReply
	case *EpochChangeReq:
		rec.Kind = stats.KindEpoch
	case *EpochChangeResp:
		rec.Kind = stats.KindEpochReply
	case *RouteResp:
		rec.Kind = stats.KindEpochReply
	case *HandoffStartReq:
		rec.Kind, rec.Shard = stats.KindHandoff, int(t.Shard)
	case *HandoffStartResp:
		rec.Kind = stats.KindHandoffReply
	case *HandoffReq:
		rec.Kind, rec.Shard = stats.KindHandoff, int(t.Shard)
		rec.Payload = len(t.State)
	case *HandoffResp:
		rec.Kind = stats.KindHandoffReply
	case *WaitEdgeUpdate:
		rec.Kind = stats.KindDetect
	case *WaitEdgeResp:
		rec.Kind = stats.KindDetectReply
	case *AbortFamilyReq:
		rec.Kind = stats.KindDetect
	case *AbortFamilyResp:
		rec.Kind = stats.KindDetectReply
	case *CommitSeqReq:
		rec.Kind = stats.KindCommitSeq
	case *CommitSeqResp:
		rec.Kind = stats.KindCommitSeqReply
	}
	return rec
}

// classifyObjPayloads flattens a batched payload message into the parallel
// per-object attribution lists of a stats.MsgRecord, so the paper's
// per-object byte counts (Figures 2–5) stay exact under batching. An
// object's payload is its full-page bytes plus its delta run bytes; the rest
// of its section (page numbers, versions, run offsets, length prefixes) is
// its exact framing overhead.
func classifyObjPayloads(objs []ObjPayload) ([]ids.ObjectID, []int, []int) {
	os := make([]ids.ObjectID, 0, len(objs))
	payloads := make([]int, 0, len(objs))
	overheads := make([]int, 0, len(objs))
	for _, o := range objs {
		n := 0
		for _, pg := range o.Pages {
			n += len(pg.Data)
		}
		for _, d := range o.Deltas {
			n += len(d.Data)
		}
		os = append(os, o.Obj)
		payloads = append(payloads, n)
		overheads = append(overheads, o.size()-n)
	}
	return os, payloads, overheads
}
