package wire

import (
	"math/rand"
	"testing"

	"lotec/internal/gdo"
)

// TestDecodeNeverPanicsOnGarbage feeds random byte strings (and corrupted
// valid frames) through Decode: malformed input must produce errors, never
// panics or absurd allocations.
func TestDecodeNeverPanicsOnGarbage(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Pure noise.
	for i := 0; i < 2000; i++ {
		buf := make([]byte, rng.Intn(200))
		rng.Read(buf)
		_, _, _ = Decode(buf)
	}
	// Corrupted valid frames: flip bytes one at a time.
	base := Encode(Envelope{ReqID: 9, From: 1, To: 2}, &Grant{
		Obj: 3, Family: 4, Mode: 2, NumPages: 5,
		Reqs:    []gdo.QueuedReq{{Mode: 1}},
		PageMap: []gdo.PageLoc{{Node: 1, Version: 2}},
	})
	for i := 0; i < len(base); i++ {
		for _, delta := range []byte{1, 0x80, 0xFF} {
			buf := append([]byte(nil), base...)
			buf[i] ^= delta
			_, _, _ = Decode(buf)
		}
	}
	// Truncations of a valid frame at every length.
	for n := 0; n <= len(base); n++ {
		_, _, _ = Decode(base[:n])
	}
}
