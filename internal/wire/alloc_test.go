package wire

import (
	"bytes"
	"testing"

	"lotec/internal/ids"
)

// Steady-state allocation gates over the //lotec:noalloc data-plane
// surface. testing.AllocsPerRun averages over enough iterations that pool
// misses on the first pass amortize to zero; any real per-op allocation
// shows up as ≥1. The gates are skipped in race builds, where ReleaseFrame
// poisons frames and the runtime's instrumentation shifts allocation
// behavior.

func allocFixture() (Envelope, *FetchResp) {
	page := make([]byte, 256)
	for i := range page {
		page[i] = byte(i)
	}
	return Envelope{ReqID: 42, From: 1, To: 2}, &FetchResp{
		Obj:   ids.ObjectID(7),
		Pages: []PagePayload{{Page: 3, Version: 9, Data: page}},
	}
}

func TestAllocsFramePool(t *testing.T) {
	if framePoison {
		t.Skip("race build: poison pass changes the steady state under test")
	}
	if n := testing.AllocsPerRun(1000, func() {
		ReleaseFrame(GetFrame(512))
	}); n > 0 {
		t.Errorf("GetFrame/ReleaseFrame allocates %.2f/op, want 0", n)
	}
}

func TestAllocsEncodeFrame(t *testing.T) {
	if framePoison {
		t.Skip("race build: poison pass changes the steady state under test")
	}
	env, msg := allocFixture()
	if n := testing.AllocsPerRun(1000, func() {
		ReleaseFrame(EncodeFrame(env, msg))
	}); n > 0 {
		t.Errorf("EncodeFrame/ReleaseFrame allocates %.2f/op, want 0", n)
	}
}

func TestAllocsReadFrame(t *testing.T) {
	if framePoison {
		t.Skip("race build: poison pass changes the steady state under test")
	}
	env, msg := allocFixture()
	frame := EncodeFrame(env, msg)
	stream := append([]byte(nil), frame...)
	ReleaseFrame(frame)
	r := bytes.NewReader(stream)
	if n := testing.AllocsPerRun(1000, func() {
		r.Reset(stream)
		buf, err := ReadFrame(r)
		if err != nil {
			t.Fatal(err)
		}
		ReleaseFrame(buf)
	}); n > 0 {
		t.Errorf("ReadFrame/ReleaseFrame allocates %.2f/op, want 0", n)
	}
}

// TestAllocsDecodeView pins the per-message decode cost at exactly its two
// inherent escapes — the message struct and its payload-header slice. Page
// bytes alias the frame and must not contribute.
func TestAllocsDecodeView(t *testing.T) {
	if framePoison {
		t.Skip("race build: poison pass changes the steady state under test")
	}
	env, msg := allocFixture()
	encoded := Encode(env, msg)
	if n := testing.AllocsPerRun(1000, func() {
		if _, _, err := DecodeView(encoded); err != nil {
			t.Fatal(err)
		}
	}); n > 2 {
		t.Errorf("DecodeView allocates %.2f/op, want ≤ 2 (message struct + payload headers)", n)
	}
}
