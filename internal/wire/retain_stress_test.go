package wire

import (
	"bytes"
	"runtime"
	"sync"
	"testing"

	"lotec/internal/ids"
)

// TestViewRetainUnderFrameReuse is the buffer-lifetime gauntlet for the
// pooled data plane: many goroutines concurrently encode pooled frames,
// decode views from them, Retain, release the frame back to the shared
// pool, and only then verify the retained payload. Frames recycle across
// goroutines immediately, so any Retain that left a field aliasing its
// frame surfaces as corrupted payload bytes — and in race builds the
// released frame is poisoned with 0xDB first, so even a rare interleaving
// that would read stale-but-identical bytes fails deterministically.
func TestViewRetainUnderFrameReuse(t *testing.T) {
	const iters = 2000
	workers := runtime.GOMAXPROCS(0) * 2
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(tag byte) {
			defer wg.Done()
			payload := bytes.Repeat([]byte{tag}, 128)
			env := Envelope{ReqID: uint64(tag), From: 1, To: 2}
			for i := 0; i < iters; i++ {
				msg := &FetchResp{
					Obj:   ids.ObjectID(tag),
					Pages: []PagePayload{{Page: 1, Version: uint64(i), Data: payload}},
				}
				frame := EncodeFrame(env, msg)
				_, m, err := DecodeView(frame[FrameHeadroom:])
				if err != nil {
					t.Error(err)
					return
				}
				resp := m.(*FetchResp)
				Retain(resp)
				ReleaseFrame(frame)
				// The frame is back in the shared pool; another goroutine may
				// already be scribbling over it. The retained copy must hold.
				if got := resp.Pages[0].Data; !bytes.Equal(got, payload) {
					t.Errorf("worker %d iter %d: retained payload corrupted after frame release", tag, i)
					return
				}
			}
		}(byte(w + 1))
	}
	wg.Wait()
}

// TestReleasedFramePoisonedInRaceBuilds pins the debug aid itself: with
// the race detector on, a released frame must come back poisoned, so any
// view accidentally read after release yields recognizable garbage rather
// than silently-stale bytes.
func TestReleasedFramePoisonedInRaceBuilds(t *testing.T) {
	if !framePoison {
		t.Skip("poisoning is compiled in only with -race")
	}
	buf := GetFrame(64)
	for i := range buf {
		buf[i] = 0x11
	}
	ReleaseFrame(buf)
	// buf still points at the pooled array; every byte must now be poison.
	for i, b := range buf {
		if b != 0xDB {
			t.Fatalf("byte %d is %#x after release, want poison 0xDB", i, b)
		}
	}
}
