package wire

import (
	"bytes"
	"reflect"
	"testing"

	"lotec/internal/ids"
)

// FuzzDecode throws arbitrary bytes at the codec. Decode must never panic,
// and any buffer it accepts must re-encode canonically: Encode(env, m)
// produces exactly Size bytes that decode back to a deep-equal message.
func FuzzDecode(f *testing.F) {
	// Seed with one valid encoding of every registered type (zero-valued
	// and filled payloads), then structured malformations of each.
	for tag := 1; tag <= 255; tag++ {
		m, err := newMsg(MsgType(tag))
		if err != nil {
			continue
		}
		env := Envelope{ReqID: uint64(tag), From: 1, To: 2}
		f.Add(Encode(env, m))

		ctr := int64(0)
		filled := reflect.New(reflect.TypeOf(m).Elem()).Interface().(Msg)
		fill(reflect.ValueOf(filled), &ctr)
		buf := Encode(env, filled)
		f.Add(buf)
		f.Add(buf[:HeaderSize])  // body stripped
		f.Add(buf[:len(buf)-1])  // truncated mid-body
		f.Add(append(buf, 0xAA)) // trailing garbage
		short := append([]byte(nil), buf...)
		short[17] = 0xFF // corrupt bodyLen low byte
		f.Add(short)
	}
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add(bytes.Repeat([]byte{0xFF}, HeaderSize))
	f.Add(bytes.Repeat([]byte{0x00}, HeaderSize))

	// Hand-built seeds for the batched xfer messages: ragged nested shapes
	// (empty inner page lists, mixed payload sizes) that the uniform fill()
	// seeds above never produce.
	batched := []Msg{
		&MultiFetchReq{Demand: true, Objs: []ObjPages{
			{Obj: 3, Pages: []ids.PageNum{0, 7, 2}},
			{Obj: 9, Pages: nil},
			{Obj: 1, Pages: []ids.PageNum{5}}}},
		&MultiFetchResp{Objs: []ObjPayload{
			{Obj: 3, Pages: []PagePayload{
				{Page: 0, Version: 12, Data: bytes.Repeat([]byte{0xAB}, 64)},
				{Page: 7, Version: 1, Data: []byte{}}}},
			{Obj: 9, Pages: nil}}},
		&MultiPushReq{Objs: []ObjPayload{
			{Obj: 2, Pages: []PagePayload{{Page: 1, Version: 5, Data: []byte{1}}}},
			{Obj: 4, Pages: []PagePayload{
				{Page: 0, Version: 9, Data: bytes.Repeat([]byte{0x5A}, 17)},
				{Page: 3, Version: 9, Data: []byte{0, 0, 0}}}}}},
	}
	for _, m := range batched {
		f.Add(Encode(Envelope{ReqID: 7, From: 3, To: 4}, m))
	}

	// Delta-bearing seeds: version-aware fetches piggybacking resident base
	// versions, responses and pushes answering with dirty-range deltas, and
	// well-framed but semantically invalid deltas (overlapping runs,
	// out-of-bounds offsets, version gaps, run/payload length mismatches —
	// Encode frames whatever it is given; Decode must reject these with an
	// error, never a panic).
	deltas := []Msg{
		&MultiFetchReq{Objs: []ObjPages{
			{Obj: 3, Pages: []ids.PageNum{0, 2}, Bases: []uint64{12, 0}},
			{Obj: 5, Pages: []ids.PageNum{1}}}},
		&MultiFetchResp{Objs: []ObjPayload{
			{Obj: 3,
				Pages: []PagePayload{{Page: 2, Version: 4, Data: bytes.Repeat([]byte{0xC3}, 32)}},
				Deltas: []DeltaPage{{Page: 0, Base: 12, Version: 13,
					Runs: []Span{{Off: 0, Len: 2}, {Off: 16, Len: 3}},
					Data: []byte{1, 2, 3, 4, 5}}}}}},
		&MultiPushReq{ReqID: 1<<41 + 1, Objs: []ObjPayload{
			{Obj: 8, Deltas: []DeltaPage{{Page: 1, Base: 6, Version: 7,
				Runs: []Span{{Off: 8, Len: 1}}, Data: []byte{0xEE}}}}}},
		// Overlapping runs.
		&MultiPushReq{Objs: []ObjPayload{{Obj: 1, Deltas: []DeltaPage{{
			Base: 1, Version: 2, Runs: []Span{{Off: 0, Len: 8}, {Off: 4, Len: 4}},
			Data: bytes.Repeat([]byte{9}, 12)}}}}},
		// Offset+length out of bounds.
		&MultiFetchResp{Objs: []ObjPayload{{Obj: 1, Deltas: []DeltaPage{{
			Base: 1, Version: 2, Runs: []Span{{Off: 1<<24 - 2, Len: 8}},
			Data: bytes.Repeat([]byte{9}, 8)}}}}},
		// Version gap (base not strictly before target).
		&MultiFetchResp{Objs: []ObjPayload{{Obj: 1, Deltas: []DeltaPage{{
			Base: 5, Version: 5, Runs: []Span{{Off: 0, Len: 1}}, Data: []byte{1}}}}}},
		// Runs cover fewer bytes than the payload carries.
		&MultiPushReq{Objs: []ObjPayload{{Obj: 1, Deltas: []DeltaPage{{
			Base: 1, Version: 2, Runs: []Span{{Off: 0, Len: 4}}, Data: []byte{1, 2, 3}}}}}},
		// Empty run.
		&MultiFetchResp{Objs: []ObjPayload{{Obj: 1, Deltas: []DeltaPage{{
			Base: 1, Version: 2, Runs: []Span{{Off: 4, Len: 0}}, Data: nil}}}}},
	}
	for _, m := range deltas {
		buf := Encode(Envelope{ReqID: 11, From: 2, To: 1}, m)
		f.Add(buf)
		f.Add(buf[:len(buf)-2]) // truncated mid-delta
	}

	// Seeds for the request-ID-bearing (Idempotent) bodies: stamped with a
	// retry-layer dedup key, plus a truncation that cuts through the ReqID
	// field itself (the first body field, so headerSize+4 splits it).
	idempotent := []Msg{
		&AcquireReq{ReqID: 1 << 40, Obj: 9, Mode: 2, Site: 3, Shard: 1},
		&ReleaseReq{ReqID: 1<<40 + 1, Site: 2, Shard: 1},
		&CopySetReq{ReqID: 1<<40 + 2, Objs: []ids.ObjectID{4, 5}},
		&MultiFetchReq{ReqID: 1<<40 + 3, Objs: []ObjPages{{Obj: 2, Pages: []ids.PageNum{0}}}},
		&MultiPushReq{ReqID: 1<<40 + 4, Objs: []ObjPayload{{Obj: 2, Pages: []PagePayload{{Page: 0, Version: 1, Data: []byte{7}}}}}},
	}
	for _, m := range idempotent {
		buf := Encode(Envelope{ReqID: 9, From: 1, To: 2}, m)
		f.Add(buf)
		f.Add(buf[:HeaderSize+4])
	}

	// Replication control-plane seeds: epoch-stamped lock traffic (the
	// optional trailing Epoch section, present and absent), placement maps
	// of various shard counts including the degenerate single-shard map,
	// and handoff payloads whose State blob is arbitrary bytes.
	onePrimary := []ids.NodeID{3}
	oneBackup := []ids.NodeID{4}
	wideMap := PlacementMap{Epoch: 7, Nodes: 2, Primary: []ids.NodeID{3, 4, 3}, Backup: []ids.NodeID{4, 3, 4}}
	replication := []Msg{
		&AcquireReq{ReqID: 1<<42 + 1, Obj: 2, Mode: 1, Site: 1, Shard: 0, Epoch: 5},
		&ReleaseReq{ReqID: 1<<42 + 2, Site: 1, Shard: 2, Epoch: 1<<63 + 9},
		&ReplicateReq{ReqID: 1<<42 + 3, Shard: 1, Epoch: 4, Seq: 88, Client: 2,
			Op:     Encode(Envelope{From: 2, To: 3}, &AcquireReq{ReqID: 12, Obj: 5, Mode: 2, Site: 2, Shard: 1, Epoch: 4}),
			Purges: []ids.FamilyID{9}, Aborts: []ids.FamilyID{11, 12}},
		&ReplicateResp{OK: true, Map: PlacementMap{Epoch: 4, Nodes: 2, Primary: onePrimary, Backup: oneBackup}},
		&PromoteReq{ReqID: 1<<42 + 4, Dead: 3, Epoch: 4},
		&PromoteResp{Map: wideMap},
		&EpochChangeReq{ReqID: 1<<42 + 5, Map: wideMap},
		&EpochChangeResp{OK: false, Map: wideMap},
		&HandoffStartReq{ReqID: 1<<42 + 6, Shard: 2, Target: 4},
		&HandoffStartResp{OK: true, StateBytes: 512, Map: wideMap},
		&HandoffReq{ReqID: 1<<42 + 7, Shard: 2, Seq: 31, Map: wideMap,
			State: bytes.Repeat([]byte{0x42}, 96)},
		&HandoffResp{OK: true, Map: wideMap},
		&RouteResp{Map: wideMap},
		&WaitEdgeUpdate{ReqID: 1<<42 + 8, Ver: 3, Epoch: 7,
			Edges: []WaitEdge{{From: 1, To: 2}, {From: 2, To: 3}},
			Ages:  []FamilyAge{{Family: 1, Age: 10}, {Family: 2, Age: 20}}},
		&WaitEdgeResp{Map: wideMap},
		&AbortFamilyReq{ReqID: 1<<42 + 9, Family: 5, Epoch: 7},
		&AbortFamilyResp{},
		&CommitSeqReq{ReqID: 1<<42 + 10, Family: 5, Epoch: 7},
		&CommitSeqResp{Seq: 42},
	}
	for _, m := range replication {
		buf := Encode(Envelope{ReqID: 13, From: 4, To: 3}, m)
		f.Add(buf)
		f.Add(buf[:len(buf)-3]) // truncated mid-body
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		env, m, err := Decode(data)

		// DecodeView must accept and reject exactly the same inputs as the
		// copying decode (truncations and corruptions included), and on
		// success produce a deep-equal message whose Retain severs every
		// alias into the input buffer.
		viewBuf := append([]byte(nil), data...)
		venv, vm, verr := DecodeView(viewBuf)
		if (err == nil) != (verr == nil) {
			t.Fatalf("Decode err=%v but DecodeView err=%v on the same bytes", err, verr)
		}
		if err != nil {
			return
		}
		if venv != env {
			t.Fatalf("view envelope %+v, copy envelope %+v", venv, env)
		}
		if !reflect.DeepEqual(m, vm) {
			t.Fatalf("%T: view decode differs from copy decode:\n copy %+v\n view %+v", m, m, vm)
		}
		Retain(vm)
		for i := range viewBuf {
			viewBuf[i] = 0xDB
		}
		if !reflect.DeepEqual(m, vm) {
			t.Fatalf("%T: Retain left a field aliasing the buffer", m)
		}

		re := Encode(env, m)
		if len(re) != m.Size() {
			t.Fatalf("re-encode of %T produced %d bytes, Size says %d", m, len(re), m.Size())
		}
		env2, m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-encoded %T failed to decode: %v", m, err)
		}
		if env2 != env {
			t.Fatalf("envelope drift: %+v -> %+v", env, env2)
		}
		if !reflect.DeepEqual(m, m2) {
			t.Fatalf("%T drifted across re-encode:\n first %+v\n second %+v", m, m, m2)
		}
	})
}
