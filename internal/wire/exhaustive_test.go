package wire

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"lotec/internal/ids"
	"lotec/internal/stats"
)

// registeredTypes probes newMsg over the whole tag space — the codec's own
// registry is the single source of truth, so a type added to the enum but
// forgotten in newMsg shows up as a count mismatch here (and as a wiresync
// lint finding).
func registeredTypes(t *testing.T) map[MsgType]Msg {
	t.Helper()
	out := make(map[MsgType]Msg)
	for tag := 1; tag <= 255; tag++ {
		m, err := newMsg(MsgType(tag))
		if err != nil {
			continue
		}
		if m.Type() != MsgType(tag) {
			t.Errorf("newMsg(%d) returned a message reporting Type %d", tag, m.Type())
		}
		out[MsgType(tag)] = m
	}
	return out
}

// fill populates every exported field of a message with deterministic
// non-zero data so round-trips exercise real payloads.
func fill(v reflect.Value, ctr *int64) {
	next := func() int64 { *ctr++; return *ctr }
	switch v.Kind() {
	case reflect.Ptr:
		if v.IsNil() {
			v.Set(reflect.New(v.Type().Elem()))
		}
		fill(v.Elem(), ctr)
	case reflect.Struct:
		// DeltaPage has internal validity constraints the generic filler
		// cannot satisfy (version progress, sorted non-overlapping runs
		// exactly covering the payload), so it gets a canonical value.
		if v.Type() == reflect.TypeOf(DeltaPage{}) {
			n := next()
			v.Set(reflect.ValueOf(DeltaPage{
				Page:    ids.PageNum(n),
				Base:    uint64(n + 1),
				Version: uint64(n + 2),
				Runs:    []Span{{Off: 0, Len: 2}, {Off: 8, Len: 1}},
				Data:    []byte{byte(n), byte(n + 1), byte(n + 2)},
			}))
			return
		}
		for i := 0; i < v.NumField(); i++ {
			if v.Type().Field(i).IsExported() {
				fill(v.Field(i), ctr)
			}
		}
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		n := next()
		if v.Type().Name() == "Mode" {
			n = n%2 + 1 // o2pl.Read / o2pl.Write
		}
		v.SetInt(n)
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		v.SetUint(uint64(next()))
	case reflect.Bool:
		v.SetBool(true)
	case reflect.String:
		v.SetString("s" + string(rune('a'+next()%26)))
	case reflect.Slice:
		s := reflect.MakeSlice(v.Type(), 2, 2)
		for i := 0; i < s.Len(); i++ {
			fill(s.Index(i), ctr)
		}
		v.Set(s)
	default:
		// No other kinds appear in wire messages; a new one should be
		// added here deliberately.
		panic("exhaustive_test: unhandled field kind " + v.Kind().String())
	}
}

// TestEveryRegisteredTypeRoundTripsAndClassifies is the runtime twin of the
// wiresync analyzer: every message the codec can construct must (1) encode
// to exactly Size bytes, (2) round-trip through Decode into a deep-equal
// value, (3) classify to a non-KindOther stats record, and (4) echo its
// Shard field into the record's shard attribution.
func TestEveryRegisteredTypeRoundTripsAndClassifies(t *testing.T) {
	reg := registeredTypes(t)
	if len(reg) != int(TCommitSeqResp) {
		t.Fatalf("newMsg constructs %d types; the MsgType enum defines %d", len(reg), int(TCommitSeqResp))
	}
	for tag, proto := range reg {
		ctr := int64(0)
		m := reflect.New(reflect.TypeOf(proto).Elem()).Interface().(Msg)
		fill(reflect.ValueOf(m), &ctr)

		buf := Encode(Envelope{ReqID: 42, From: 1, To: 2}, m)
		if len(buf) != m.Size() {
			t.Errorf("%T: Size()=%d but encoded length=%d", m, m.Size(), len(buf))
		}
		env, back, err := Decode(buf)
		if err != nil {
			t.Errorf("%T: Decode: %v", m, err)
			continue
		}
		if env.Type != tag || env.ReqID != 42 || env.From != 1 || env.To != 2 {
			t.Errorf("%T: envelope corrupted in round-trip: %+v", m, env)
		}
		if !reflect.DeepEqual(m, back) {
			t.Errorf("%T: round-trip mismatch:\n sent %+v\n got  %+v", m, m, back)
		}

		rec := Classify(m)
		if rec.Kind == stats.KindOther {
			t.Errorf("%T: Classify degrades to KindOther — add a case in classify.go (wiresync catches this statically)", m)
		}
		if rec.Bytes != m.Size() {
			t.Errorf("%T: Classify records %d bytes, Size is %d", m, rec.Bytes, m.Size())
		}
		if shard := reflect.ValueOf(m).Elem().FieldByName("Shard"); shard.IsValid() {
			if int64(rec.Shard) != shard.Int() {
				t.Errorf("%T: Shard field %d not attributed (record has shard %d)", m, shard.Int(), rec.Shard)
			}
		}
	}
}

// TestEncodeFrameMatchesEncodeExactly pins the pooled frame path to the
// seed encoding byte for byte, over every registered message type: the
// frame's body must be identical to Encode's output, the headroom must
// hold exactly the little-endian message length, and DecodeView must
// round-trip the frame body into a message deep-equal to the copying
// decode. Any divergence means old and new binaries could not interoperate
// on one wire.
func TestEncodeFrameMatchesEncodeExactly(t *testing.T) {
	reg := registeredTypes(t)
	env := Envelope{ReqID: 99, From: 3, To: 1}
	for _, proto := range reg {
		ctr := int64(0)
		m := reflect.New(reflect.TypeOf(proto).Elem()).Interface().(Msg)
		fill(reflect.ValueOf(m), &ctr)

		want := Encode(env, m)
		frame := EncodeFrame(env, m)
		if len(frame) != FrameHeadroom+len(want) {
			t.Errorf("%T: frame is %d bytes, want headroom %d + body %d", m, len(frame), FrameHeadroom, len(want))
		}
		if got := binary.LittleEndian.Uint32(frame); int(got) != len(want) {
			t.Errorf("%T: length prefix says %d, body is %d bytes", m, got, len(want))
		}
		if !bytes.Equal(frame[FrameHeadroom:], want) {
			t.Errorf("%T: pooled frame body differs from seed encoding", m)
		}

		venv, vm, err := DecodeView(frame[FrameHeadroom:])
		if err != nil {
			t.Errorf("%T: DecodeView: %v", m, err)
		} else {
			wantEnv := env
			wantEnv.Type = m.Type()
			if venv != wantEnv {
				t.Errorf("%T: view envelope %+v, want %+v", m, venv, wantEnv)
			}
			if !reflect.DeepEqual(m, vm) {
				t.Errorf("%T: view decode mismatch:\n sent %+v\n got  %+v", m, m, vm)
			}
			// Retain must sever every frame alias: poison the frame and the
			// retained message has to stay intact.
			Retain(vm)
			for i := range frame {
				frame[i] = 0xDB
			}
			if !reflect.DeepEqual(m, vm) {
				t.Errorf("%T: Retain left a field aliasing the frame", m)
			}
		}
		ReleaseFrame(frame)
	}
}

// TestIdempotentMessagesCarryRequestID pins the retry layer's dedup
// contract: exactly the retried request bodies — GDO acquire/release, the
// batched copy-set lookup, and the xfer fetch/push requests — implement
// Idempotent, and their stable body request ID survives a codec round-trip
// (it is the dedup key; losing it in transit would defeat duplicate
// suppression). A type added here must also get fuzz seeds in fuzz_test.go.
func TestIdempotentMessagesCarryRequestID(t *testing.T) {
	reg := registeredTypes(t)
	want := map[MsgType]bool{
		TAcquireReq:    true,
		TReleaseReq:    true,
		TCopySetReq:    true,
		TMultiFetchReq: true,
		TMultiPushReq:  true,
		// Control-plane replication requests: all retried across failover
		// and partitions, so all deduplicated by body request ID.
		TReplicateReq:    true,
		TPromoteReq:      true,
		TEpochChangeReq:  true,
		THandoffStartReq: true,
		THandoffReq:      true,
		TWaitEdgeUpdate:  true,
		TAbortFamilyReq:  true,
		TCommitSeqReq:    true,
	}
	for tag, proto := range reg {
		im, ok := proto.(Idempotent)
		if want[tag] != ok {
			t.Errorf("type %d: Idempotent=%v, want %v — keep the retry-dedup set in sync with this test", tag, ok, want[tag])
		}
		if !ok {
			continue
		}
		if im.RequestID() != 0 {
			t.Errorf("%T: fresh message has nonzero request ID %d (0 must mean unstamped)", proto, im.RequestID())
		}
		id := 0xD00D0000 + uint64(tag)
		im.SetRequestID(id)
		if im.RequestID() != id {
			t.Errorf("%T: RequestID()=%d after SetRequestID(%d)", proto, im.RequestID(), id)
		}
		_, back, err := Decode(Encode(Envelope{ReqID: 1, From: 1, To: 2}, proto))
		if err != nil {
			t.Fatalf("%T: %v", proto, err)
		}
		if got := back.(Idempotent).RequestID(); got != id {
			t.Errorf("%T: body request ID %d drifted to %d across the codec", proto, id, got)
		}
	}
}

// TestClassifyKindsAreDistinctPerType guards against copy-paste drift: no
// two request/reply tags may collapse onto the same (Kind, direction)
// accidentally. CopySetReq/Resp intentionally share the lock-req/reply
// kinds with AcquireReq/Resp (they are priced as lock traffic), so they
// are exempted.
func TestClassifyKindsAreDistinctPerType(t *testing.T) {
	reg := registeredTypes(t)
	seen := make(map[stats.MsgKind]MsgType)
	// Control-plane pairs that deliberately share a kind: handoff control
	// (start) and payload legs are both handoff traffic, RouteResp is an
	// epoch-map reply wherever it appears, and the deadlock coordinator's
	// edge updates and abort fan-out are both detect traffic.
	shared := map[MsgType]bool{
		TCopySetReq: true, TCopySetResp: true,
		THandoffStartReq: true, THandoffStartResp: true,
		TRouteResp:      true,
		TAbortFamilyReq: true, TAbortFamilyResp: true,
	}
	for tag, proto := range reg {
		if shared[tag] {
			continue
		}
		m := reflect.New(reflect.TypeOf(proto).Elem()).Interface().(Msg)
		kind := Classify(m).Kind
		if prev, dup := seen[kind]; dup {
			t.Errorf("types %d and %d both classify to %v", prev, tag, kind)
		}
		seen[kind] = tag
	}
}
