//go:build !race

package wire

// framePoison is off in regular builds: released frames keep their bytes
// and ReleaseFrame stays a pure pool put. See poison_race.go.
const framePoison = false

//lotec:noalloc
func poisonFrame([]byte) {}
