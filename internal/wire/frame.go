package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Data-plane buffer pooling: pooled encode/read frames with transport
// headroom, and deep-copy retention for view-decoded messages.
//
// Ownership rules (DESIGN.md "Data plane" has the full contract):
//
//   - EncodeFrame hands out a pooled frame; the caller owns it until the
//     transport write completes, then returns it with ReleaseFrame. A frame
//     handed to anything with an unbounded lifetime (a delayed or duplicated
//     fault-injected send, a retained reply buffer) must NOT be released —
//     an unreleased frame is a missed reuse, never a correctness issue.
//   - A message produced by DecodeView aliases the frame it was decoded
//     from. The frame may be released only once the message is dead; a
//     consumer that outlives the frame calls Retain first, after which the
//     message owns all of its memory.
//   - ReleaseFrame must get the whole original buffer (as returned by
//     GetFrame/EncodeFrame), never a sub-slice: release restores buf[:cap],
//     so releasing two overlapping slices would corrupt the pool.
//
// In race-enabled builds every released frame is poisoned (each byte set to
// 0xDB) before entering the pool, so a view that outlives its frame reads
// garbage immediately instead of silently-stale bytes.

// FrameHeadroom is the spare byte count GetFrame and EncodeFrame reserve
// ahead of the encoded message — sized for the TCP transport's 4-byte
// length prefix, so framing a message needs no second buffer and no copy.
const FrameHeadroom = 4

// framePool recycles frame buffers across messages. Buffers grow to the
// largest message seen and stay that size; page-carrying frames therefore
// converge on page-sized capacity, which is exactly the steady state the
// transfer paths want.
var framePool = sync.Pool{
	New: func() any {
		buf := make([]byte, 0, 512)
		return &buf
	},
}

// headerPool recycles the *[]byte boxes that carry frames through
// framePool. Putting &local into a sync.Pool heap-allocates a fresh slice
// header per release; cycling the boxes between the two pools (GetFrame
// frees a box, ReleaseFrame reuses it) keeps the steady state at zero
// allocations.
var headerPool = sync.Pool{
	New: func() any { return new([]byte) },
}

// GetFrame returns a pooled buffer of length n. The contents are
// unspecified; callers overwrite every byte they frame.
//
//lotec:noalloc
func GetFrame(n int) []byte {
	bp := framePool.Get().(*[]byte)
	buf := *bp
	*bp = nil
	headerPool.Put(bp)
	if cap(buf) < n {
		return make([]byte, n) //lotec:alloc-ok — pool miss or growth; the bigger buffer joins the pool on release
	}
	return buf[:n]
}

// ReleaseFrame returns a buffer obtained from GetFrame or EncodeFrame to
// the pool. Safe to call with buffers from other sources; never call it
// with a sub-slice of a pooled frame (see the ownership rules above).
//
//lotec:noalloc
func ReleaseFrame(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	b := buf[:cap(buf)]
	if framePoison {
		poisonFrame(b)
	}
	bp := headerPool.Get().(*[]byte)
	*bp = b
	framePool.Put(bp)
}

// MaxFrame bounds a single wire frame; a larger announced length is treated
// as a corrupt stream, not an allocation request.
const MaxFrame = 64 << 20

// ReadFrame reads one length-prefixed message from r into a pooled buffer.
// The returned buffer holds exactly the encoded message (no prefix) and
// must be handed back with ReleaseFrame once every message decoded from it
// is dead or retained.
func ReadFrame(r io.Reader) ([]byte, error) {
	// The length prefix is read into the pooled buffer itself: a stack
	// array would escape through the io.Reader interface call and cost an
	// allocation per frame.
	buf := GetFrame(FrameHeadroom)
	if _, err := io.ReadFull(r, buf); err != nil {
		ReleaseFrame(buf)
		return nil, err
	}
	size := int(binary.LittleEndian.Uint32(buf))
	if size > MaxFrame {
		ReleaseFrame(buf)
		return nil, fmt.Errorf("wire: oversized frame (%d bytes)", size)
	}
	if cap(buf) < size {
		ReleaseFrame(buf)
		buf = GetFrame(size)
	} else {
		buf = buf[:size]
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		ReleaseFrame(buf)
		return nil, err
	}
	return buf, nil
}

// EncodeFrame serializes env+m into a pooled, transport-ready frame:
// frame[:FrameHeadroom] holds the little-endian length prefix of the
// message and frame[FrameHeadroom:] is byte-identical to Encode(env, m).
// The transport writes the whole frame in one call and hands it back with
// ReleaseFrame. The envelope's Type field is taken from the message.
func EncodeFrame(env Envelope, m Msg) []byte {
	// A stack writer would escape through the encodeBody interface call, so
	// the frame path draws one from a pool instead.
	w := writerPool.Get().(*writer)
	w.buf = GetFrame(FrameHeadroom + m.Size())[:FrameHeadroom]
	w.u8(uint8(m.Type()))
	w.u64(env.ReqID)
	w.i32(int32(env.From))
	w.i32(int32(env.To))
	w.u32(0) // body length back-patched below
	// Reserved/padding to HeaderSize.
	for len(w.buf) < FrameHeadroom+HeaderSize {
		w.u8(0)
	}
	m.encodeBody(w)
	msgLen := len(w.buf) - FrameHeadroom
	binary.LittleEndian.PutUint32(w.buf[FrameHeadroom+17:], uint32(msgLen-HeaderSize))
	binary.LittleEndian.PutUint32(w.buf[:FrameHeadroom], uint32(msgLen))
	buf := w.buf
	w.buf = nil
	writerPool.Put(w)
	return buf
}

// Retain deep-copies every frame-aliasing field of m in place, so a message
// produced by DecodeView survives the release of its frame. Messages whose
// types carry no []byte payloads are untouched. Idempotent.
func Retain(m Msg) {
	switch t := m.(type) {
	case *FetchResp:
		retainPages(t.Pages)
	case *PushReq:
		retainPages(t.Pages)
	case *MultiFetchResp:
		retainObjPayloads(t.Objs)
	case *MultiPushReq:
		retainObjPayloads(t.Objs)
	case *RunReq:
		t.Arg = cloneBytes(t.Arg)
	case *RunResp:
		t.Result = cloneBytes(t.Result)
	case *ReplicateReq:
		t.Op = cloneBytes(t.Op)
		t.Reply = cloneBytes(t.Reply)
	case *HandoffReq:
		t.State = cloneBytes(t.State)
	}
}

func retainPages(pages []PagePayload) {
	for i := range pages {
		pages[i].Data = cloneBytes(pages[i].Data)
	}
}

func retainObjPayloads(objs []ObjPayload) {
	for i := range objs {
		retainPages(objs[i].Pages)
		for j := range objs[i].Deltas {
			objs[i].Deltas[j].Data = cloneBytes(objs[i].Deltas[j].Data)
		}
	}
}

// cloneBytes copies b into owned memory, preserving nil.
func cloneBytes(b []byte) []byte {
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}
