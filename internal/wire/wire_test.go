package wire

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"lotec/internal/gdo"
	"lotec/internal/ids"
	"lotec/internal/o2pl"
)

// samples returns one populated instance of every message type, plus an
// empty instance of each, for round-trip testing.
func samples() []Msg {
	return []Msg{
		&AcquireReq{Obj: 7, Ref: ids.TxRef{Tx: 9, Node: 2}, Family: 9, Age: 9, Site: 2, Mode: o2pl.Write},
		&AcquireReq{},
		&AcquireResp{Obj: 7, Status: gdo.GrantedNow, Mode: o2pl.Read, NumPages: 3, LastWriter: 2,
			PageMap: []gdo.PageLoc{{Node: 1, Version: 4}, {Node: 2, Version: 9}}},
		&AcquireResp{},
		&ReleaseReq{Family: 3, Site: 1, Commit: true, Rels: []gdo.ObjectRelease{
			{Obj: 1, Dirty: []ids.PageNum{0, 2}}, {Obj: 2}}},
		&ReleaseReq{},
		&ReleaseResp{Stamps: []gdo.PageStamp{{Obj: 1, Page: 2, Version: 5}}},
		&ReleaseResp{},
		&Grant{Obj: 4, Family: 8, Mode: o2pl.Write, Upgrade: true, NumPages: 5, LastWriter: 3,
			Reqs:    []gdo.QueuedReq{{Ref: ids.TxRef{Tx: 11, Node: 3}, Mode: o2pl.Read}},
			PageMap: []gdo.PageLoc{{Node: 3, Version: 2}}},
		&Grant{},
		&Abort{Obj: 4, Family: 8, Reqs: []gdo.QueuedReq{{Ref: ids.TxRef{Tx: 11, Node: 3}, Mode: o2pl.Write}}},
		&Abort{},
		&FetchReq{Obj: 2, Demand: true, Pages: []ids.PageNum{1, 3, 5}},
		&FetchReq{},
		&FetchResp{Obj: 2, Pages: []PagePayload{
			{Page: 1, Version: 7, Data: []byte{1, 2, 3}},
			{Page: 3, Version: 8, Data: []byte{9}}}},
		&FetchResp{},
		&PushReq{Obj: 2, Pages: []PagePayload{{Page: 0, Version: 1, Data: []byte{5, 5}}}},
		&PushReq{},
		&PushResp{},
		&CopySetReq{Objs: []ids.ObjectID{12, 15}},
		&CopySetReq{},
		&CopySetResp{Sets: []CopySet{
			{Obj: 12, Sites: []ids.NodeID{1, 4, 7}},
			{Obj: 15, Sites: nil}}},
		&CopySetResp{},
		&MultiFetchReq{Demand: true, Objs: []ObjPages{
			{Obj: 2, Pages: []ids.PageNum{1, 3}},
			{Obj: 5, Pages: []ids.PageNum{0}}}},
		&MultiFetchReq{},
		&MultiFetchResp{Objs: []ObjPayload{
			{Obj: 2, Pages: []PagePayload{{Page: 1, Version: 7, Data: []byte{1, 2, 3}}}},
			{Obj: 5, Pages: []PagePayload{{Page: 0, Version: 2, Data: []byte{9}}}}}},
		&MultiFetchResp{},
		&MultiPushReq{Objs: []ObjPayload{
			{Obj: 3, Pages: []PagePayload{{Page: 0, Version: 1, Data: []byte{5, 5}}}}}},
		&MultiPushReq{},
		&RegisterReq{Obj: 3, Class: 2, NumPages: 9, Owner: 1},
		&RegisterResp{},
		&RunReq{Obj: 3, Method: "deposit", Arg: []byte("100")},
		&RunReq{},
		&RunResp{Result: []byte("ok"), ErrMsg: "boom"},
		&RunResp{},
		&ErrResp{Msg: "nope"},
		&ErrResp{},
	}
}

func TestRoundTripAllTypes(t *testing.T) {
	for _, m := range samples() {
		env := Envelope{ReqID: 42, From: 1, To: 2}
		buf := Encode(env, m)
		gotEnv, got, err := Decode(buf)
		if err != nil {
			t.Fatalf("%T: Decode: %v", m, err)
		}
		if gotEnv.Type != m.Type() || gotEnv.ReqID != 42 || gotEnv.From != 1 || gotEnv.To != 2 {
			t.Errorf("%T: envelope = %+v", m, gotEnv)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%T: round trip mismatch:\n got %+v\nwant %+v", m, got, m)
		}
	}
}

func TestSizeMatchesEncodedLength(t *testing.T) {
	for _, m := range samples() {
		buf := Encode(Envelope{}, m)
		if got, want := m.Size(), len(buf); got != want {
			t.Errorf("%T: Size() = %d, encoded length = %d", m, got, want)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("nil buffer: %v", err)
	}
	if _, _, err := Decode(make([]byte, HeaderSize-1)); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("short header: %v", err)
	}
	// Unknown type.
	buf := Encode(Envelope{}, &ErrResp{Msg: "x"})
	buf[0] = 250
	if _, _, err := Decode(buf); !errors.Is(err, ErrUnknownType) {
		t.Errorf("unknown type: %v", err)
	}
	// Truncated body.
	buf = Encode(Envelope{}, &RunReq{Obj: 1, Method: "m", Arg: []byte("abc")})
	if _, _, err := Decode(buf[:len(buf)-2]); !errors.Is(err, ErrShortBuffer) {
		t.Errorf("truncated body: %v", err)
	}
	// Corrupt inner length → short read inside body.
	buf = Encode(Envelope{}, &RunReq{Obj: 1, Method: "m", Arg: []byte("abc")})
	buf[HeaderSize+8] = 0xFF // method length low byte
	if _, _, err := Decode(buf); err == nil {
		t.Error("corrupt inner length should fail")
	}
}

func TestDecodeTrailingBytes(t *testing.T) {
	buf := Encode(Envelope{}, &CopySetReq{Objs: []ids.ObjectID{1}})
	// Inflate claimed body length and append junk.
	buf = append(buf, 0xEE)
	buf[17] = byte(int(buf[17]) + 1)
	if _, _, err := Decode(buf); !errors.Is(err, ErrTrailing) {
		t.Errorf("trailing: %v", err)
	}
}

func TestHeaderSizeConstant(t *testing.T) {
	buf := Encode(Envelope{}, &PushResp{})
	if len(buf) != HeaderSize {
		t.Errorf("empty message length = %d, want %d", len(buf), HeaderSize)
	}
}

// Property: random FetchResp messages round-trip and Size always matches.
func TestRoundTripPropertyFetchResp(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		m := &FetchResp{Obj: ids.ObjectID(rng.Int63n(1000))}
		for j := rng.Intn(6); j > 0; j-- {
			data := make([]byte, rng.Intn(64)+1)
			rng.Read(data)
			m.Pages = append(m.Pages, PagePayload{
				Page:    ids.PageNum(rng.Intn(32)),
				Version: rng.Uint64(),
				Data:    data,
			})
		}
		buf := Encode(Envelope{ReqID: uint64(i)}, m)
		if len(buf) != m.Size() {
			t.Fatalf("iteration %d: size %d vs %d", i, len(buf), m.Size())
		}
		_, got, err := Decode(buf)
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Fatalf("iteration %d: mismatch", i)
		}
	}
}
