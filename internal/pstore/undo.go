package pstore

import (
	"fmt"

	"lotec/internal/ids"
)

// undoRec is one shadow-page record: the bytes, dirty flag, and open
// dirty-range journal epoch of a page as they were immediately before the
// owning transaction's first write to it.
type undoRec struct {
	pid     ids.PageID
	before  []byte
	dirty   bool
	pending intervalSet
}

// UndoLog is a per-transaction shadow-page log (§4.1 of the paper: "UNDO
// operations … may be done using either local UNDO logs or shadow pages. In
// either case, no network communication is required.").
//
// Closed-nesting semantics are obtained by merging a pre-committing
// sub-transaction's log into its parent's (MergeInto): if an ancestor later
// aborts, the descendant's effects are rolled back too. Records are replayed
// in reverse order of creation so the merged log always restores the oldest
// state, regardless of how many descendants wrote the same page.
//
// An UndoLog is not safe for concurrent use; each [sub-]transaction owns
// exactly one and transactions are single-threaded.
type UndoLog struct {
	recs []undoRec
	seen map[ids.PageID]bool
}

// NewUndoLog returns an empty log.
func NewUndoLog() *UndoLog {
	return &UndoLog{seen: make(map[ids.PageID]bool)}
}

// Len reports the number of shadow records held.
func (l *UndoLog) Len() int { return len(l.recs) }

// SnapshotBefore records shadow copies of the given pages of obj, skipping
// pages this log has already snapshotted. It must be called before the write
// is applied. All pages must be resident.
func (l *UndoLog) SnapshotBefore(st *Store, obj ids.ObjectID, pages []ids.PageNum) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	om, ok := st.objects[obj]
	if !ok {
		return fmt.Errorf("%w: %v", ErrObjectUnknown, obj)
	}
	for _, p := range pages {
		pid := ids.PageID{Object: obj, Page: p}
		if l.seen[pid] {
			continue
		}
		pg, ok := om.pages[p]
		if !ok {
			return &PageMissingError{PID: pid}
		}
		before, dirty, pending := pg.snapshotLocked()
		l.recs = append(l.recs, undoRec{pid: pid, before: before, dirty: dirty, pending: pending})
		l.seen[pid] = true
	}
	return nil
}

// Undo restores every recorded page, newest record first, and empties the
// log. Pages that are no longer resident are skipped (they cannot have been
// observed by anyone, since the lock is still held).
func (l *UndoLog) Undo(st *Store) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for i := len(l.recs) - 1; i >= 0; i-- {
		r := l.recs[i]
		if pg, ok := st.lookupLocked(r.pid); ok {
			pg.restore(r.before, r.dirty, r.pending)
		}
	}
	l.recs = nil
	l.seen = make(map[ids.PageID]bool)
}

// MergeInto appends this log's records to parent (preserving creation order)
// and empties this log. Called when a sub-transaction pre-commits, so that
// an ancestor abort also undoes the pre-committed child (§3.2 lock
// inheritance has the matching undo-inheritance here).
//
// Records for pages the parent has already snapshotted are kept anyway:
// reverse-order replay guarantees the parent's older snapshot is applied
// last, so correctness never depends on deduplication.
func (l *UndoLog) MergeInto(parent *UndoLog) {
	parent.recs = append(parent.recs, l.recs...)
	for pid := range l.seen {
		parent.seen[pid] = true
	}
	l.recs = nil
	l.seen = make(map[ids.PageID]bool)
}

// Discard drops all records (used at root commit, when no rollback can ever
// be needed again).
func (l *UndoLog) Discard() {
	l.recs = nil
	l.seen = make(map[ids.PageID]bool)
}

// Pages returns the distinct pages recorded in the log, in record order of
// first appearance. Useful for tests and diagnostics.
func (l *UndoLog) Pages() []ids.PageID {
	out := make([]ids.PageID, 0, len(l.seen))
	emitted := make(map[ids.PageID]bool, len(l.seen))
	for _, r := range l.recs {
		if !emitted[r.pid] {
			emitted[r.pid] = true
			out = append(out, r.pid)
		}
	}
	return out
}
