package pstore

import (
	"fmt"

	"lotec/internal/ids"
)

// DefaultDeltaJournalDepth is how many sealed version epochs a page's
// dirty-range journal retains when the store is not configured otherwise.
// A holder can serve "what changed since version V" only while V's epoch is
// still in the ring; older bases fall back to full-page transfers.
const DefaultDeltaJournalDepth = 8

// ErrDeltaBase reports that a delta could not be applied because the
// resident copy is not at the delta's base version (or is locally dirty).
// Callers treat it as a fallback trigger, not a failure: fetch paths skip
// newer-or-equal copies before applying, and push paths evict the stale
// copy so a later access re-fetches the full page.
var ErrDeltaBase = fmt.Errorf("pstore: resident page does not match delta base")

// Span is one dirty byte range [Off, Off+Len) within a page.
type Span struct {
	Off int
	Len int
}

// intervalSet is a sorted, coalesced set of non-overlapping spans.
type intervalSet []Span

// insert adds [off, off+n) and re-coalesces. Adjacent spans merge: the
// journal describes which bytes changed, so touching [0,4) and [4,8) is
// exactly the span [0,8).
func (s intervalSet) insert(off, n int) intervalSet {
	if n <= 0 {
		return s
	}
	out := make(intervalSet, 0, len(s)+1)
	start, end := off, off+n
	placed := false
	for _, sp := range s {
		switch {
		case sp.Off+sp.Len < start: // strictly before, not adjacent
			out = append(out, sp)
		case sp.Off > end: // strictly after, not adjacent
			if !placed {
				out = append(out, Span{Off: start, Len: end - start})
				placed = true
			}
			out = append(out, sp)
		default: // overlaps or touches: absorb
			if sp.Off < start {
				start = sp.Off
			}
			if sp.Off+sp.Len > end {
				end = sp.Off + sp.Len
			}
		}
	}
	if !placed {
		out = append(out, Span{Off: start, Len: end - start})
	}
	return out
}

// union merges another set into this one.
func (s intervalSet) union(o intervalSet) intervalSet {
	for _, sp := range o {
		s = s.insert(sp.Off, sp.Len)
	}
	return s
}

// clone returns an independent copy.
func (s intervalSet) clone() intervalSet {
	if s == nil {
		return nil
	}
	return append(intervalSet(nil), s...)
}

// total is the covered byte count.
func (s intervalSet) total() int {
	n := 0
	for _, sp := range s {
		n += sp.Len
	}
	return n
}

// epoch is one sealed journal entry: the byte ranges that changed when the
// page went from version base to version target.
type epoch struct {
	base   uint64
	target uint64
	runs   intervalSet
}

// SetJournalDepth bounds the per-page sealed-epoch ring. Depths below 1
// select DefaultDeltaJournalDepth. Existing rings are trimmed lazily on the
// next seal.
func (s *Store) SetJournalDepth(d int) {
	if d < 1 {
		d = DefaultDeltaJournalDepth
	}
	s.mu.Lock()
	s.journalDepth = d
	s.mu.Unlock()
}

// journalDepthLocked returns the configured ring bound. Caller holds s.mu.
func (s *Store) journalDepthLocked() int {
	if s.journalDepth < 1 {
		return DefaultDeltaJournalDepth
	}
	return s.journalDepth
}

// sealLocked moves the page's open-epoch dirty ranges into the sealed ring
// as the transition old→now. A version change with no recorded writes means
// the bytes changed through a path the journal did not observe, so the whole
// ring is invalidated rather than risk serving a delta that misses bytes.
// Caller holds s.mu.
func (s *Store) sealLocked(pg *page, old, now uint64) {
	if now == old {
		return
	}
	if len(pg.pending) == 0 {
		pg.hist = nil
		return
	}
	pg.hist = append(pg.hist, epoch{base: old, target: now, runs: pg.pending})
	pg.pending = nil
	if d := s.journalDepthLocked(); len(pg.hist) > d {
		pg.hist = append(pg.hist[:0], pg.hist[len(pg.hist)-d:]...)
	}
}

// checkRuns validates a delta's shape: runs sorted, non-overlapping, each
// non-empty, all within the page, and together exactly covering data.
func (s *Store) checkRuns(runs []Span, data []byte) error {
	prevEnd, sum := 0, 0
	for i, r := range runs {
		if r.Len <= 0 || r.Off < 0 || r.Off+r.Len > s.pageSize {
			return fmt.Errorf("pstore: delta run %d [%d,%d) outside page of %d bytes", i, r.Off, r.Off+r.Len, s.pageSize)
		}
		if r.Off < prevEnd {
			return fmt.Errorf("pstore: delta runs unsorted or overlapping at index %d", i)
		}
		prevEnd = r.Off + r.Len
		sum += r.Len
	}
	if sum != len(data) {
		return fmt.Errorf("pstore: delta runs cover %d bytes, payload has %d", sum, len(data))
	}
	return nil
}

// ApplyDelta patches a resident page in place from base to target: each run
// takes its bytes from data in order. The page must be clean and at exactly
// the base version; otherwise ErrDeltaBase is returned and the page is
// untouched. A successful apply records the epoch in the receiver's own
// journal, so a site that caught up via a delta can serve deltas onward.
func (s *Store) ApplyDelta(pid ids.PageID, base, target uint64, runs []Span, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	pg, ok := s.lookupLocked(pid)
	if !ok {
		return &PageMissingError{PID: pid}
	}
	if target <= base {
		return fmt.Errorf("pstore: delta %v has no version progress (%d→%d)", pid, base, target)
	}
	if err := s.checkRuns(runs, data); err != nil {
		return err
	}
	if pg.dirty || len(pg.pending) > 0 || pg.version != base {
		return fmt.Errorf("%w: %v at version %d (dirty=%v), delta base %d", ErrDeltaBase, pid, pg.version, pg.dirty, base)
	}
	done := 0
	for _, r := range runs {
		copy(pg.data[r.Off:r.Off+r.Len], data[done:done+r.Len])
		done += r.Len
	}
	pg.version = target
	pg.hist = append(pg.hist, epoch{base: base, target: target, runs: intervalSet(runs).clone()})
	if d := s.journalDepthLocked(); len(pg.hist) > d {
		pg.hist = append(pg.hist[:0], pg.hist[len(pg.hist)-d:]...)
	}
	return nil
}

// DeltaSince reports what changed on pid between version base and the
// resident copy, if the journal still covers that range. The merged runs'
// current bytes are concatenated into buf (which must hold PageSize bytes).
// ok=false means the caller must fall back to a full-page transfer: the page
// is missing, locally dirty (its bytes are not yet any committed version),
// the base epoch was evicted from the bounded ring, or the chain is not
// contiguous up to the current version.
func (s *Store) DeltaSince(pid ids.PageID, base uint64, buf []byte) (runs []Span, target uint64, n int, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pg, found := s.lookupLocked(pid)
	if !found || pg.dirty || len(pg.pending) > 0 || base >= pg.version {
		return nil, 0, 0, false
	}
	start := -1
	for i, e := range pg.hist {
		if e.base == base {
			start = i
			break
		}
	}
	if start < 0 {
		return nil, 0, 0, false
	}
	var merged intervalSet
	at := base
	for _, e := range pg.hist[start:] {
		if e.base != at {
			return nil, 0, 0, false
		}
		merged = merged.union(e.runs)
		at = e.target
	}
	if at != pg.version {
		return nil, 0, 0, false
	}
	if merged.total() > len(buf) {
		return nil, 0, 0, false
	}
	done := 0
	for _, r := range merged {
		copy(buf[done:done+r.Len], pg.data[r.Off:r.Off+r.Len])
		done += r.Len
	}
	return merged, pg.version, done, true
}

// Drop evicts a resident page. The push path uses it when a pushed delta
// cannot be applied to the local copy (wrong base): evicting converts
// potential staleness into a future full-page fetch, which is always
// correct. Dropping a non-resident page is a no-op.
func (s *Store) Drop(pid ids.PageID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	om, ok := s.objects[pid.Object]
	if !ok {
		return
	}
	delete(om.pages, pid.Page)
}

// JournalEpochs reports the sealed (base, target) transitions currently
// retained for pid, oldest first (tests and diagnostics).
func (s *Store) JournalEpochs(pid ids.PageID) [][2]uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	pg, ok := s.lookupLocked(pid)
	if !ok {
		return nil
	}
	out := make([][2]uint64, 0, len(pg.hist))
	for _, e := range pg.hist {
		out = append(out, [2]uint64{e.base, e.target})
	}
	return out
}
