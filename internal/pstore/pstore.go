// Package pstore implements the per-site paged object memory that the LOTEC
// DSM is built on: fixed-size pages addressed per object, partial caching
// (only some pages of an object may be resident at a site, since "the
// up-to-date parts of an object may be scattered throughout the distributed
// system" — §4.1 of the paper), per-page version tracking used by the OTEC
// and LOTEC protocols to decide which pages are stale, dirty-page tracking
// that is piggybacked on global lock releases, and shadow-page UNDO logs for
// transaction aborts (§4.1: "UNDO operations … may be done using either
// local UNDO logs or shadow pages").
//
// Because pages are addressed as ⟨object, page-number⟩ rather than as raw
// memory addresses, two objects can never share a page: false sharing is
// structurally impossible, exactly as §4.2 of the paper argues, and no
// twinning/diffing machinery is needed.
package pstore

import (
	"errors"
	"fmt"
	"sync"

	"lotec/internal/ids"
)

// DefaultPageSize is the page size used when a Store is created with size 0.
// It matches the 4 KiB virtual-memory page of the machines the paper targets.
const DefaultPageSize = 4096

// ErrObjectUnknown is returned for operations on an unregistered object.
var ErrObjectUnknown = errors.New("pstore: object not registered")

// ErrObjectExists is returned when registering an object twice with a
// conflicting shape.
var ErrObjectExists = errors.New("pstore: object already registered with different shape")

// PageMissingError reports an access to a page that is not cached locally.
// The node runtime treats it as a demand-fetch trigger (§4.3: "If additional
// parts turn out to be needed, these can be fetched on demand").
type PageMissingError struct {
	PID ids.PageID
}

// Error implements error.
func (e *PageMissingError) Error() string {
	return fmt.Sprintf("pstore: page %v not resident", e.PID)
}

// BoundsError reports a read or write outside an object's extent.
type BoundsError struct {
	Object ids.ObjectID
	Offset int
	Length int
	Size   int
}

// Error implements error.
func (e *BoundsError) Error() string {
	return fmt.Sprintf("pstore: access [%d,%d) outside %v (size %d)",
		e.Offset, e.Offset+e.Length, e.Object, e.Size)
}

// page is one resident page of one object.
type page struct {
	data    []byte
	version uint64 // version of the copy held here (assigned by the GDO)
	dirty   bool   // modified locally since last global release

	// pending is the open epoch of the dirty-range journal: the byte
	// intervals written since this copy last changed version. Sealed into
	// hist by SetPageVersion, rolled back exactly by undo.
	pending intervalSet
	// hist is the bounded ring of sealed epochs, oldest first. Each entry
	// records the ranges that changed across one version transition, so a
	// holder can answer "what changed since version V" for recent V.
	hist []epoch
}

// objectMem is the per-object residency record at one site.
type objectMem struct {
	numPages int
	pages    map[ids.PageNum]*page
}

// Store is the paged object memory of a single site. A Store is safe for
// concurrent use.
type Store struct {
	mu           sync.Mutex
	pageSize     int                         // immutable after NewStore
	objects      map[ids.ObjectID]*objectMem // guarded by mu
	journalDepth int                         // guarded by mu; 0 means DefaultDeltaJournalDepth
}

// NewStore returns an empty Store with the given page size (bytes).
// A pageSize of 0 selects DefaultPageSize.
func NewStore(pageSize int) *Store {
	if pageSize <= 0 {
		pageSize = DefaultPageSize
	}
	return &Store{
		pageSize: pageSize,
		objects:  make(map[ids.ObjectID]*objectMem),
	}
}

// PageSize returns the store's page size in bytes.
func (s *Store) PageSize() int { return s.pageSize }

// Register makes an object of numPages pages known to this site without
// materializing any pages. Registering the same shape twice is a no-op.
func (s *Store) Register(obj ids.ObjectID, numPages int) error {
	if numPages <= 0 {
		return fmt.Errorf("pstore: register %v: numPages %d must be positive", obj, numPages)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if om, ok := s.objects[obj]; ok {
		if om.numPages != numPages {
			return fmt.Errorf("%w: %v has %d pages, requested %d",
				ErrObjectExists, obj, om.numPages, numPages)
		}
		return nil
	}
	s.objects[obj] = &objectMem{
		numPages: numPages,
		pages:    make(map[ids.PageNum]*page, numPages),
	}
	return nil
}

// Materialize makes every page of obj resident and zero-filled at version 0.
// It is used at the object's home site when the object is created. Pages
// that are already resident are left untouched.
func (s *Store) Materialize(obj ids.ObjectID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	om, ok := s.objects[obj]
	if !ok {
		return fmt.Errorf("%w: %v", ErrObjectUnknown, obj)
	}
	for p := ids.PageNum(0); int(p) < om.numPages; p++ {
		if _, ok := om.pages[p]; !ok {
			om.pages[p] = &page{data: make([]byte, s.pageSize)}
		}
	}
	return nil
}

// NumPages reports the registered extent of obj in pages.
func (s *Store) NumPages(obj ids.ObjectID) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	om, ok := s.objects[obj]
	if !ok {
		return 0, fmt.Errorf("%w: %v", ErrObjectUnknown, obj)
	}
	return om.numPages, nil
}

// Size reports the object's extent in bytes.
func (s *Store) Size(obj ids.ObjectID) (int, error) {
	n, err := s.NumPages(obj)
	if err != nil {
		return 0, err
	}
	return n * s.pageSize, nil
}

// HasPage reports whether the page is resident at this site.
//
//lotec:noalloc
func (s *Store) HasPage(pid ids.PageID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.lookupLocked(pid)
	return ok
}

// PageVersion returns the version of the locally resident copy of pid, or
// ok=false if the page is not resident.
//
//lotec:noalloc
func (s *Store) PageVersion(pid ids.PageID) (version uint64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pg, ok := s.lookupLocked(pid)
	if !ok {
		return 0, false
	}
	return pg.version, true
}

// lookupLocked returns the resident page, if any. Caller holds s.mu.
//
//lotec:noalloc
func (s *Store) lookupLocked(pid ids.PageID) (*page, bool) {
	om, ok := s.objects[pid.Object]
	if !ok || int(pid.Page) < 0 || int(pid.Page) >= om.numPages {
		return nil, false
	}
	pg, ok := om.pages[pid.Page]
	return pg, ok
}

// InstallPage installs a page copy received from another site (or created
// locally), overwriting any prior resident copy. The data is copied. The
// installed page starts clean.
func (s *Store) InstallPage(pid ids.PageID, data []byte, version uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	om, ok := s.objects[pid.Object]
	if !ok {
		return fmt.Errorf("%w: %v", ErrObjectUnknown, pid.Object)
	}
	if int(pid.Page) < 0 || int(pid.Page) >= om.numPages {
		return fmt.Errorf("pstore: install %v: page out of range (object has %d pages)", pid, om.numPages)
	}
	if len(data) != s.pageSize {
		return fmt.Errorf("pstore: install %v: got %d bytes, page size is %d", pid, len(data), s.pageSize)
	}
	buf := make([]byte, s.pageSize)
	copy(buf, data)
	om.pages[pid.Page] = &page{data: buf, version: version}
	return nil
}

// PageCopy returns a copy of the resident page's bytes and its version, for
// transmission to another site.
func (s *Store) PageCopy(pid ids.PageID) (data []byte, version uint64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pg, ok := s.lookupLocked(pid)
	if !ok {
		return nil, 0, &PageMissingError{PID: pid}
	}
	out := make([]byte, len(pg.data))
	copy(out, pg.data)
	return out, pg.version, nil
}

// PageCopyInto copies the resident page's bytes into buf (which must be at
// least PageSize long) and returns its version. It is the allocation-free
// variant of PageCopy used by the xfer pipeline's pooled staging buffers.
//
//lotec:noalloc
func (s *Store) PageCopyInto(pid ids.PageID, buf []byte) (version uint64, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pg, ok := s.lookupLocked(pid)
	if !ok {
		return 0, &PageMissingError{PID: pid}
	}
	if len(buf) < len(pg.data) {
		return 0, fmt.Errorf("pstore: copy %v: buffer %d bytes, page is %d", pid, len(buf), len(pg.data))
	}
	copy(buf, pg.data)
	return pg.version, nil
}

// SetPageVersion updates the version stamp of a resident page. The GDO
// assigns new versions at root commit; the committing site restamps its own
// dirty pages with them.
func (s *Store) SetPageVersion(pid ids.PageID, version uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	pg, ok := s.lookupLocked(pid)
	if !ok {
		return &PageMissingError{PID: pid}
	}
	old := pg.version
	pg.version = version
	s.sealLocked(pg, old, version)
	return nil
}

// Read copies n bytes starting at byte offset off of obj into a fresh slice.
// The read may span pages. If any covered page is not resident, Read returns
// a *PageMissingError naming the first missing page and no data.
func (s *Store) Read(obj ids.ObjectID, off, n int) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	om, ok := s.objects[obj]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrObjectUnknown, obj)
	}
	if err := s.checkBounds(om, obj, off, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	for done := 0; done < n; {
		pnum := ids.PageNum((off + done) / s.pageSize)
		poff := (off + done) % s.pageSize
		pg, ok := om.pages[pnum]
		if !ok {
			return nil, &PageMissingError{PID: ids.PageID{Object: obj, Page: pnum}}
		}
		c := copy(out[done:], pg.data[poff:])
		done += c
	}
	return out, nil
}

// Write copies data into obj at byte offset off, marking every touched page
// dirty, and returns the set of touched page numbers. If any covered page is
// not resident the write fails with *PageMissingError before modifying
// anything.
func (s *Store) Write(obj ids.ObjectID, off int, data []byte) ([]ids.PageNum, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	om, ok := s.objects[obj]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrObjectUnknown, obj)
	}
	if err := s.checkBounds(om, obj, off, len(data)); err != nil {
		return nil, err
	}
	first := ids.PageNum(off / s.pageSize)
	last := ids.PageNum((off + len(data) - 1) / s.pageSize)
	if len(data) == 0 {
		return nil, nil
	}
	for p := first; p <= last; p++ {
		if _, ok := om.pages[p]; !ok {
			return nil, &PageMissingError{PID: ids.PageID{Object: obj, Page: p}}
		}
	}
	touched := make([]ids.PageNum, 0, last-first+1)
	for done := 0; done < len(data); {
		pnum := ids.PageNum((off + done) / s.pageSize)
		poff := (off + done) % s.pageSize
		pg := om.pages[pnum]
		c := copy(pg.data[poff:], data[done:])
		done += c
		pg.dirty = true
		pg.pending = pg.pending.insert(poff, c)
		touched = append(touched, pnum)
	}
	return touched, nil
}

// checkBounds validates [off, off+n) against the object extent. Caller holds
// s.mu.
//
//lotec:noalloc
func (s *Store) checkBounds(om *objectMem, obj ids.ObjectID, off, n int) error {
	size := om.numPages * s.pageSize
	if off < 0 || n < 0 || off+n > size {
		return &BoundsError{Object: obj, Offset: off, Length: n, Size: size}
	}
	return nil
}

// DirtyPages returns the page numbers of obj that have been modified locally
// since the last ClearDirty, in ascending order.
//
//lotec:noalloc
func (s *Store) DirtyPages(obj ids.ObjectID) []ids.PageNum {
	s.mu.Lock()
	defer s.mu.Unlock()
	om, ok := s.objects[obj]
	if !ok {
		return nil
	}
	var out []ids.PageNum
	for p := ids.PageNum(0); int(p) < om.numPages; p++ {
		if pg, ok := om.pages[p]; ok && pg.dirty {
			out = append(out, p)
		}
	}
	return out
}

// ClearDirty clears the dirty flag on the given pages of obj (used after the
// dirty-page info has been piggybacked on a global lock release).
func (s *Store) ClearDirty(obj ids.ObjectID, pages []ids.PageNum) {
	s.mu.Lock()
	defer s.mu.Unlock()
	om, ok := s.objects[obj]
	if !ok {
		return
	}
	for _, p := range pages {
		if pg, ok := om.pages[p]; ok {
			pg.dirty = false
			if len(pg.pending) > 0 {
				// Dirty ranges discarded without a version seal: the bytes
				// now differ from what any journal chain describes, so the
				// ring must not serve deltas from here.
				pg.pending = nil
				pg.hist = nil
			}
		}
	}
}

// ResidentPages returns the page numbers of obj currently resident at this
// site, in ascending order.
func (s *Store) ResidentPages(obj ids.ObjectID) []ids.PageNum {
	s.mu.Lock()
	defer s.mu.Unlock()
	om, ok := s.objects[obj]
	if !ok {
		return nil
	}
	var out []ids.PageNum
	for p := ids.PageNum(0); int(p) < om.numPages; p++ {
		if _, ok := om.pages[p]; ok {
			out = append(out, p)
		}
	}
	return out
}

// Objects returns the IDs of all registered objects, in unspecified order.
func (s *Store) Objects() []ids.ObjectID {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ids.ObjectID, 0, len(s.objects))
	for o := range s.objects {
		out = append(out, o)
	}
	return out
}

// snapshotLocked returns a copy of the page's bytes, dirty flag, and open
// journal epoch for undo. Caller holds s.mu.
func (pg *page) snapshotLocked() ([]byte, bool, intervalSet) {
	buf := make([]byte, len(pg.data))
	copy(buf, pg.data)
	return buf, pg.dirty, pg.pending.clone()
}

// restore overwrites the page from an undo record, including the open
// journal epoch — an aborted transaction's dirty ranges must vanish exactly,
// or a later seal would describe changes the commit never made. Caller holds
// s.mu.
func (pg *page) restore(data []byte, dirty bool, pending intervalSet) {
	copy(pg.data, data)
	pg.dirty = dirty
	pg.pending = pending.clone()
}
