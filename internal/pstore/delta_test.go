package pstore

import (
	"bytes"
	"math/rand"
	"testing"

	"lotec/internal/ids"
)

// TestDeltaPropertyRandomCommitTrees is the delta correctness property: over
// random write/abort/commit transaction trees, a receiver holding any
// historical page image that DeltaSince can still serve a delta for must,
// after ApplyDelta, hold the current page byte-for-byte. Rounds that abort
// (at the child or the root) roll their journal contributions back through
// the shadow-page undo path, so the property also pins that Undo restores
// the open epoch exactly.
func TestDeltaPropertyRandomCommitTrees(t *testing.T) {
	const pageSize = 256
	const obj = ids.ObjectID(7)
	pid := ids.PageID{Object: obj, Page: 0}

	for seed := int64(1); seed <= 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		src := NewStore(pageSize)
		if err := src.Register(obj, 1); err != nil {
			t.Fatal(err)
		}
		if err := src.InstallPage(pid, make([]byte, pageSize), 1); err != nil {
			t.Fatal(err)
		}

		// images[v] is the committed page content at version v.
		images := map[uint64][]byte{}
		snap, _, err := src.PageCopy(pid)
		if err != nil {
			t.Fatal(err)
		}
		images[1] = snap

		writeSome := func(log *UndoLog) {
			n := 1 + rng.Intn(3)
			for i := 0; i < n; i++ {
				off := rng.Intn(pageSize)
				ln := 1 + rng.Intn(pageSize-off)
				if ln > 24 {
					ln = 24
				}
				if err := log.SnapshotBefore(src, obj, []ids.PageNum{0}); err != nil {
					t.Fatal(err)
				}
				data := make([]byte, ln)
				rng.Read(data)
				if _, err := src.Write(obj, off, data); err != nil {
					t.Fatal(err)
				}
			}
		}

		for round := 0; round < 30; round++ {
			beforeEpochs := len(src.JournalEpochs(pid))
			before, ver, err := src.PageCopy(pid)
			if err != nil {
				t.Fatal(err)
			}

			// One root with a child sub-transaction: the child either aborts
			// (its writes undone immediately) or pre-commits (its log merges
			// into the root's); then the root aborts or commits.
			root := NewUndoLog()
			writeSome(root)
			child := NewUndoLog()
			writeSome(child)
			if rng.Intn(2) == 0 {
				child.Undo(src)
			} else {
				child.MergeInto(root)
			}

			if rng.Intn(3) == 0 { // root abort
				root.Undo(src)
				after, v2, err := src.PageCopy(pid)
				if err != nil {
					t.Fatal(err)
				}
				if v2 != ver || !bytes.Equal(after, before) {
					t.Fatalf("seed %d round %d: abort did not restore page (v%d→v%d)", seed, round, ver, v2)
				}
				if got := len(src.JournalEpochs(pid)); got != beforeEpochs {
					t.Fatalf("seed %d round %d: abort changed sealed epochs %d→%d", seed, round, beforeEpochs, got)
				}
				continue
			}

			root.Discard()
			if err := src.SetPageVersion(pid, ver+1); err != nil {
				t.Fatal(err)
			}
			src.ClearDirty(obj, []ids.PageNum{0})
			now, _, err := src.PageCopy(pid)
			if err != nil {
				t.Fatal(err)
			}
			images[ver+1] = now

			// Every historical image either patches forward to the current
			// bytes, or the journal honestly refuses (fallback).
			cur, _ := src.PageVersion(pid)
			served := 0
			for base, img := range images {
				if base >= cur {
					continue
				}
				buf := make([]byte, pageSize)
				runs, target, n, ok := src.DeltaSince(pid, base, buf)
				if !ok {
					continue
				}
				served++
				if target != cur {
					t.Fatalf("seed %d round %d: delta targets v%d, page is v%d", seed, round, target, cur)
				}
				dst := NewStore(pageSize)
				if err := dst.Register(obj, 1); err != nil {
					t.Fatal(err)
				}
				if err := dst.InstallPage(pid, img, base); err != nil {
					t.Fatal(err)
				}
				if err := dst.ApplyDelta(pid, base, target, runs, buf[:n]); err != nil {
					t.Fatalf("seed %d round %d: apply delta from v%d: %v", seed, round, base, err)
				}
				got, v2, err := dst.PageCopy(pid)
				if err != nil {
					t.Fatal(err)
				}
				if v2 != cur || !bytes.Equal(got, images[cur]) {
					t.Fatalf("seed %d round %d: delta from v%d not byte-identical to full page", seed, round, base)
				}
			}
			// The epoch just sealed must always be servable: the commit wrote
			// at least one byte and the ring holds >= 1 epoch.
			buf := make([]byte, pageSize)
			if _, _, _, ok := src.DeltaSince(pid, cur-1, buf); !ok {
				t.Fatalf("seed %d round %d: newest epoch v%d→v%d unservable", seed, round, cur-1, cur)
			}
			_ = served
		}
	}
}

// TestDeltaJournalDepthEviction pins the bounded-ring fallback: bases that
// fell off the journal (or predate it) are refused — the wire layer then
// ships a full page — while bases still inside the ring keep serving.
func TestDeltaJournalDepthEviction(t *testing.T) {
	const pageSize = 128
	const obj = ids.ObjectID(3)
	pid := ids.PageID{Object: obj, Page: 0}
	s := NewStore(pageSize)
	s.SetJournalDepth(3)
	if err := s.Register(obj, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.InstallPage(pid, make([]byte, pageSize), 1); err != nil {
		t.Fatal(err)
	}
	for v := uint64(1); v < 9; v++ {
		if _, err := s.Write(obj, int(v)%pageSize, []byte{byte(v)}); err != nil {
			t.Fatal(err)
		}
		if err := s.SetPageVersion(pid, v+1); err != nil {
			t.Fatal(err)
		}
		s.ClearDirty(obj, []ids.PageNum{0})
	}
	// Page is at v9; ring holds epochs 6→7, 7→8, 8→9.
	buf := make([]byte, pageSize)
	for base := uint64(1); base < 6; base++ {
		if _, _, _, ok := s.DeltaSince(pid, base, buf); ok {
			t.Errorf("base v%d served after eviction (depth 3, page v9)", base)
		}
	}
	for base := uint64(6); base < 9; base++ {
		runs, target, _, ok := s.DeltaSince(pid, base, buf)
		if !ok || target != 9 || len(runs) == 0 {
			t.Errorf("base v%d inside ring unservable (ok=%v target=%d)", base, ok, target)
		}
	}
	if got := s.JournalEpochs(pid); len(got) != 3 {
		t.Errorf("ring holds %d epochs, want 3", len(got))
	}
}

// TestDeltaReceiverChainsOnward pins that a receiver which applied a delta
// records the epoch in its own journal and can serve deltas onward — the
// property that keeps LOTEC's scattered gathers delta-eligible at every hop.
func TestDeltaReceiverChainsOnward(t *testing.T) {
	const pageSize = 64
	const obj = ids.ObjectID(4)
	pid := ids.PageID{Object: obj, Page: 0}
	a := NewStore(pageSize)
	b := NewStore(pageSize)
	for _, s := range []*Store{a, b} {
		if err := s.Register(obj, 1); err != nil {
			t.Fatal(err)
		}
		if err := s.InstallPage(pid, make([]byte, pageSize), 1); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := a.Write(obj, 5, []byte{0xAA, 0xBB}); err != nil {
		t.Fatal(err)
	}
	if err := a.SetPageVersion(pid, 2); err != nil {
		t.Fatal(err)
	}
	a.ClearDirty(obj, []ids.PageNum{0})

	buf := make([]byte, pageSize)
	runs, target, n, ok := a.DeltaSince(pid, 1, buf)
	if !ok {
		t.Fatal("source cannot serve newest epoch")
	}
	if err := b.ApplyDelta(pid, 1, target, runs, buf[:n]); err != nil {
		t.Fatal(err)
	}
	// b can now serve the same delta to a third site.
	buf2 := make([]byte, pageSize)
	runs2, target2, n2, ok := b.DeltaSince(pid, 1, buf2)
	if !ok || target2 != 2 {
		t.Fatalf("receiver cannot chain delta onward (ok=%v target=%d)", ok, target2)
	}
	c := NewStore(pageSize)
	if err := c.Register(obj, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.InstallPage(pid, make([]byte, pageSize), 1); err != nil {
		t.Fatal(err)
	}
	if err := c.ApplyDelta(pid, 1, target2, runs2, buf2[:n2]); err != nil {
		t.Fatal(err)
	}
	want, _, _ := a.PageCopy(pid)
	got, _, _ := c.PageCopy(pid)
	if !bytes.Equal(want, got) {
		t.Fatal("two-hop delta chain not byte-identical to source")
	}
}

// TestApplyDeltaWrongBaseErrs pins the eviction contract ApplyPush relies
// on: a delta landing on the wrong base returns ErrDeltaBase (and changes
// nothing) rather than corrupting the page.
func TestApplyDeltaWrongBaseErrs(t *testing.T) {
	const pageSize = 64
	pid := ids.PageID{Object: 9, Page: 0}
	s := NewStore(pageSize)
	if err := s.Register(9, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.InstallPage(pid, make([]byte, pageSize), 5); err != nil {
		t.Fatal(err)
	}
	err := s.ApplyDelta(pid, 3, 6, []Span{{Off: 0, Len: 1}}, []byte{1})
	if err == nil {
		t.Fatal("delta with base v3 applied onto a v5 page")
	}
	if v, _ := s.PageVersion(pid); v != 5 {
		t.Fatalf("failed apply moved the version to %d", v)
	}
}
