package pstore

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"lotec/internal/ids"
)

func mustRegister(t *testing.T, s *Store, obj ids.ObjectID, n int) {
	t.Helper()
	if err := s.Register(obj, n); err != nil {
		t.Fatalf("Register(%v, %d): %v", obj, n, err)
	}
}

func mustMaterialize(t *testing.T, s *Store, obj ids.ObjectID) {
	t.Helper()
	if err := s.Materialize(obj); err != nil {
		t.Fatalf("Materialize(%v): %v", obj, err)
	}
}

func TestNewStoreDefaults(t *testing.T) {
	if got := NewStore(0).PageSize(); got != DefaultPageSize {
		t.Errorf("PageSize() = %d, want %d", got, DefaultPageSize)
	}
	if got := NewStore(128).PageSize(); got != 128 {
		t.Errorf("PageSize() = %d, want 128", got)
	}
}

func TestRegisterRejectsBadShape(t *testing.T) {
	s := NewStore(64)
	if err := s.Register(1, 0); err == nil {
		t.Error("Register with 0 pages should fail")
	}
	mustRegister(t, s, 1, 3)
	if err := s.Register(1, 3); err != nil {
		t.Errorf("idempotent re-register failed: %v", err)
	}
	if err := s.Register(1, 4); !errors.Is(err, ErrObjectExists) {
		t.Errorf("conflicting re-register: got %v, want ErrObjectExists", err)
	}
}

func TestUnknownObjectErrors(t *testing.T) {
	s := NewStore(64)
	if _, err := s.Read(9, 0, 1); !errors.Is(err, ErrObjectUnknown) {
		t.Errorf("Read unknown: %v", err)
	}
	if _, err := s.Write(9, 0, []byte{1}); !errors.Is(err, ErrObjectUnknown) {
		t.Errorf("Write unknown: %v", err)
	}
	if err := s.Materialize(9); !errors.Is(err, ErrObjectUnknown) {
		t.Errorf("Materialize unknown: %v", err)
	}
	if _, err := s.NumPages(9); !errors.Is(err, ErrObjectUnknown) {
		t.Errorf("NumPages unknown: %v", err)
	}
}

func TestMaterializeAndReadZeroFilled(t *testing.T) {
	s := NewStore(32)
	mustRegister(t, s, 1, 2)
	mustMaterialize(t, s, 1)
	got, err := s.Read(1, 0, 64)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(got, make([]byte, 64)) {
		t.Error("materialized pages are not zero-filled")
	}
}

func TestReadMissingPage(t *testing.T) {
	s := NewStore(32)
	mustRegister(t, s, 1, 2)
	// Only page 0 resident.
	if err := s.InstallPage(ids.PageID{Object: 1, Page: 0}, make([]byte, 32), 1); err != nil {
		t.Fatal(err)
	}
	_, err := s.Read(1, 16, 32) // spans into page 1
	var pm *PageMissingError
	if !errors.As(err, &pm) {
		t.Fatalf("Read across missing page: got %v, want PageMissingError", err)
	}
	if pm.PID != (ids.PageID{Object: 1, Page: 1}) {
		t.Errorf("missing PID = %v, want O1/p1", pm.PID)
	}
}

func TestWriteSpansPagesAndMarksDirty(t *testing.T) {
	s := NewStore(16)
	mustRegister(t, s, 1, 3)
	mustMaterialize(t, s, 1)
	data := bytes.Repeat([]byte{0xAB}, 20)
	touched, err := s.Write(1, 10, data) // pages 0 and 1
	if err != nil {
		t.Fatalf("Write: %v", err)
	}
	if len(touched) != 2 || touched[0] != 0 || touched[1] != 1 {
		t.Errorf("touched = %v, want [0 1]", touched)
	}
	if d := s.DirtyPages(1); len(d) != 2 || d[0] != 0 || d[1] != 1 {
		t.Errorf("DirtyPages = %v, want [0 1]", d)
	}
	got, err := s.Read(1, 10, 20)
	if err != nil {
		t.Fatalf("Read back: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Error("read-back mismatch")
	}
	// Page 2 untouched and clean.
	got2, err := s.Read(1, 32, 16)
	if err != nil {
		t.Fatalf("Read page 2: %v", err)
	}
	if !bytes.Equal(got2, make([]byte, 16)) {
		t.Error("page 2 corrupted by spanning write")
	}
}

func TestWriteMissingPageFailsWithoutPartialEffect(t *testing.T) {
	s := NewStore(16)
	mustRegister(t, s, 1, 2)
	if err := s.InstallPage(ids.PageID{Object: 1, Page: 0}, bytes.Repeat([]byte{1}, 16), 1); err != nil {
		t.Fatal(err)
	}
	_, err := s.Write(1, 8, bytes.Repeat([]byte{9}, 16)) // would span into missing page 1
	var pm *PageMissingError
	if !errors.As(err, &pm) {
		t.Fatalf("got %v, want PageMissingError", err)
	}
	got, err := s.Read(1, 0, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{1}, 16)) {
		t.Error("failed write left partial effects on page 0")
	}
	if d := s.DirtyPages(1); len(d) != 0 {
		t.Errorf("failed write dirtied pages: %v", d)
	}
}

func TestBoundsChecking(t *testing.T) {
	s := NewStore(16)
	mustRegister(t, s, 1, 2)
	mustMaterialize(t, s, 1)
	var be *BoundsError
	if _, err := s.Read(1, -1, 4); !errors.As(err, &be) {
		t.Errorf("negative offset: %v", err)
	}
	if _, err := s.Read(1, 30, 4); !errors.As(err, &be) {
		t.Errorf("overrun: %v", err)
	}
	if _, err := s.Write(1, 31, []byte{1, 2}); !errors.As(err, &be) {
		t.Errorf("write overrun: %v", err)
	}
	if _, err := s.Read(1, 0, 32); err != nil {
		t.Errorf("full-extent read should pass: %v", err)
	}
}

func TestInstallPageValidation(t *testing.T) {
	s := NewStore(16)
	mustRegister(t, s, 1, 2)
	if err := s.InstallPage(ids.PageID{Object: 1, Page: 5}, make([]byte, 16), 1); err == nil {
		t.Error("install out-of-range page should fail")
	}
	if err := s.InstallPage(ids.PageID{Object: 1, Page: 0}, make([]byte, 8), 1); err == nil {
		t.Error("install wrong-size page should fail")
	}
	if err := s.InstallPage(ids.PageID{Object: 2, Page: 0}, make([]byte, 16), 1); !errors.Is(err, ErrObjectUnknown) {
		t.Errorf("install on unknown object: %v", err)
	}
}

func TestInstallPageCopiesData(t *testing.T) {
	s := NewStore(4)
	mustRegister(t, s, 1, 1)
	buf := []byte{1, 2, 3, 4}
	if err := s.InstallPage(ids.PageID{Object: 1, Page: 0}, buf, 7); err != nil {
		t.Fatal(err)
	}
	buf[0] = 99 // mutate caller's slice
	got, err := s.Read(1, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 {
		t.Error("InstallPage aliased caller's buffer")
	}
	if v, ok := s.PageVersion(ids.PageID{Object: 1, Page: 0}); !ok || v != 7 {
		t.Errorf("PageVersion = %d,%v, want 7,true", v, ok)
	}
}

func TestPageCopyIsolation(t *testing.T) {
	s := NewStore(4)
	mustRegister(t, s, 1, 1)
	mustMaterialize(t, s, 1)
	if _, err := s.Write(1, 0, []byte{5, 6, 7, 8}); err != nil {
		t.Fatal(err)
	}
	cp, v, err := s.PageCopy(ids.PageID{Object: 1, Page: 0})
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Errorf("version = %d, want 0 (not yet committed)", v)
	}
	cp[0] = 99
	got, _ := s.Read(1, 0, 1)
	if got[0] != 5 {
		t.Error("PageCopy aliased store memory")
	}
}

func TestPageCopyMissing(t *testing.T) {
	s := NewStore(4)
	mustRegister(t, s, 1, 1)
	var pm *PageMissingError
	if _, _, err := s.PageCopy(ids.PageID{Object: 1, Page: 0}); !errors.As(err, &pm) {
		t.Errorf("got %v, want PageMissingError", err)
	}
}

func TestSetPageVersion(t *testing.T) {
	s := NewStore(4)
	mustRegister(t, s, 1, 1)
	mustMaterialize(t, s, 1)
	pid := ids.PageID{Object: 1, Page: 0}
	if err := s.SetPageVersion(pid, 42); err != nil {
		t.Fatal(err)
	}
	if v, _ := s.PageVersion(pid); v != 42 {
		t.Errorf("version = %d, want 42", v)
	}
	var pm *PageMissingError
	if err := s.SetPageVersion(ids.PageID{Object: 1, Page: 9}, 1); !errors.As(err, &pm) {
		t.Errorf("SetPageVersion on missing page: %v", err)
	}
}

func TestClearDirty(t *testing.T) {
	s := NewStore(8)
	mustRegister(t, s, 1, 3)
	mustMaterialize(t, s, 1)
	if _, err := s.Write(1, 0, make([]byte, 24)); err != nil {
		t.Fatal(err)
	}
	s.ClearDirty(1, []ids.PageNum{0, 2})
	if d := s.DirtyPages(1); len(d) != 1 || d[0] != 1 {
		t.Errorf("DirtyPages = %v, want [1]", d)
	}
	s.ClearDirty(2, []ids.PageNum{0}) // unknown object: no-op
}

func TestResidentPagesPartial(t *testing.T) {
	s := NewStore(8)
	mustRegister(t, s, 1, 4)
	_ = s.InstallPage(ids.PageID{Object: 1, Page: 1}, make([]byte, 8), 1)
	_ = s.InstallPage(ids.PageID{Object: 1, Page: 3}, make([]byte, 8), 1)
	got := s.ResidentPages(1)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Errorf("ResidentPages = %v, want [1 3]", got)
	}
	if s.ResidentPages(7) != nil {
		t.Error("ResidentPages of unknown object should be nil")
	}
}

func TestObjects(t *testing.T) {
	s := NewStore(8)
	mustRegister(t, s, 3, 1)
	mustRegister(t, s, 5, 1)
	objs := s.Objects()
	if len(objs) != 2 {
		t.Fatalf("Objects() = %v, want 2 entries", objs)
	}
	seen := map[ids.ObjectID]bool{}
	for _, o := range objs {
		seen[o] = true
	}
	if !seen[3] || !seen[5] {
		t.Errorf("Objects() = %v, want {3,5}", objs)
	}
}

func TestUndoRestoresExactBytes(t *testing.T) {
	s := NewStore(8)
	mustRegister(t, s, 1, 2)
	mustMaterialize(t, s, 1)
	if _, err := s.Write(1, 0, []byte{1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	s.ClearDirty(1, []ids.PageNum{0})
	before, _ := s.Read(1, 0, 16)

	l := NewUndoLog()
	if err := l.SnapshotBefore(s, 1, []ids.PageNum{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write(1, 2, []byte{9, 9, 9, 9, 9, 9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	l.Undo(s)
	after, _ := s.Read(1, 0, 16)
	if !bytes.Equal(before, after) {
		t.Errorf("undo mismatch: before %v after %v", before, after)
	}
	if d := s.DirtyPages(1); len(d) != 0 {
		t.Errorf("undo should restore clean dirty flags, got %v", d)
	}
	if l.Len() != 0 {
		t.Error("Undo should empty the log")
	}
}

func TestUndoLogSkipsDuplicateSnapshots(t *testing.T) {
	s := NewStore(8)
	mustRegister(t, s, 1, 1)
	mustMaterialize(t, s, 1)
	l := NewUndoLog()
	if err := l.SnapshotBefore(s, 1, []ids.PageNum{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Write(1, 0, []byte{7}); err != nil {
		t.Fatal(err)
	}
	if err := l.SnapshotBefore(s, 1, []ids.PageNum{0}); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 1 {
		t.Fatalf("log has %d records, want 1", l.Len())
	}
	l.Undo(s)
	got, _ := s.Read(1, 0, 1)
	if got[0] != 0 {
		t.Errorf("undo restored %d, want original 0", got[0])
	}
}

func TestUndoMergeIntoParentRestoresOldest(t *testing.T) {
	s := NewStore(4)
	mustRegister(t, s, 1, 1)
	mustMaterialize(t, s, 1)
	_, _ = s.Write(1, 0, []byte{10}) // state at parent start
	s.ClearDirty(1, []ids.PageNum{0})

	parent := NewUndoLog()
	// Child 1 writes 20 and pre-commits.
	c1 := NewUndoLog()
	_ = c1.SnapshotBefore(s, 1, []ids.PageNum{0})
	_, _ = s.Write(1, 0, []byte{20})
	c1.MergeInto(parent)
	if c1.Len() != 0 {
		t.Error("MergeInto should empty the child log")
	}
	// Child 2 writes 30 and pre-commits.
	c2 := NewUndoLog()
	_ = c2.SnapshotBefore(s, 1, []ids.PageNum{0})
	_, _ = s.Write(1, 0, []byte{30})
	c2.MergeInto(parent)

	parent.Undo(s) // parent aborts: must restore 10, not 20
	got, _ := s.Read(1, 0, 1)
	if got[0] != 10 {
		t.Errorf("after parent abort byte = %d, want 10", got[0])
	}
}

func TestUndoLogPagesOrder(t *testing.T) {
	s := NewStore(4)
	mustRegister(t, s, 1, 3)
	mustMaterialize(t, s, 1)
	l := NewUndoLog()
	_ = l.SnapshotBefore(s, 1, []ids.PageNum{2})
	_ = l.SnapshotBefore(s, 1, []ids.PageNum{0, 2})
	pages := l.Pages()
	want := []ids.PageID{{Object: 1, Page: 2}, {Object: 1, Page: 0}}
	if len(pages) != 2 || pages[0] != want[0] || pages[1] != want[1] {
		t.Errorf("Pages() = %v, want %v", pages, want)
	}
}

func TestUndoDiscard(t *testing.T) {
	s := NewStore(4)
	mustRegister(t, s, 1, 1)
	mustMaterialize(t, s, 1)
	l := NewUndoLog()
	_ = l.SnapshotBefore(s, 1, []ids.PageNum{0})
	_, _ = s.Write(1, 0, []byte{5})
	l.Discard()
	if l.Len() != 0 {
		t.Error("Discard should empty the log")
	}
	l.Undo(s) // no-op
	got, _ := s.Read(1, 0, 1)
	if got[0] != 5 {
		t.Error("Undo after Discard must not restore")
	}
}

func TestUndoSnapshotMissingPage(t *testing.T) {
	s := NewStore(4)
	mustRegister(t, s, 1, 2)
	l := NewUndoLog()
	var pm *PageMissingError
	if err := l.SnapshotBefore(s, 1, []ids.PageNum{0}); !errors.As(err, &pm) {
		t.Errorf("got %v, want PageMissingError", err)
	}
	if err := l.SnapshotBefore(s, 2, nil); !errors.Is(err, ErrObjectUnknown) {
		t.Errorf("got %v, want ErrObjectUnknown", err)
	}
}

// Property: for any random sequence of writes wrapped in nested undo scopes
// that all abort, the final state equals the initial state.
func TestUndoPropertyRandomNestedAbort(t *testing.T) {
	const pageSize, numPages = 16, 4
	f := func(seed int64, opsRaw []byte) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore(pageSize)
		if err := s.Register(1, numPages); err != nil {
			return false
		}
		if err := s.Materialize(1); err != nil {
			return false
		}
		// Random initial contents.
		init := make([]byte, pageSize*numPages)
		rng.Read(init)
		if _, err := s.Write(1, 0, init); err != nil {
			return false
		}
		s.ClearDirty(1, []ids.PageNum{0, 1, 2, 3})

		// Build a random nesting of aborting scopes, each doing random writes.
		var stack []*UndoLog
		root := NewUndoLog()
		stack = append(stack, root)
		for _, op := range opsRaw {
			switch op % 4 {
			case 0: // open child scope
				stack = append(stack, NewUndoLog())
			case 1: // pre-commit child into parent
				if len(stack) > 1 {
					child := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					child.MergeInto(stack[len(stack)-1])
				}
			case 2: // abort top scope in place
				stack[len(stack)-1].Undo(s)
			default: // random write under top scope
				off := rng.Intn(pageSize*numPages - 1)
				n := 1 + rng.Intn(pageSize)
				if off+n > pageSize*numPages {
					n = pageSize*numPages - off
				}
				first := ids.PageNum(off / pageSize)
				last := ids.PageNum((off + n - 1) / pageSize)
				var pages []ids.PageNum
				for p := first; p <= last; p++ {
					pages = append(pages, p)
				}
				if err := stack[len(stack)-1].SnapshotBefore(s, 1, pages); err != nil {
					return false
				}
				buf := make([]byte, n)
				rng.Read(buf)
				if _, err := s.Write(1, off, buf); err != nil {
					return false
				}
			}
		}
		// Abort everything, innermost first.
		for i := len(stack) - 1; i >= 0; i-- {
			stack[i].Undo(s)
		}
		got, err := s.Read(1, 0, pageSize*numPages)
		if err != nil {
			return false
		}
		return bytes.Equal(got, init)
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
