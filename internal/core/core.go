// Package core implements the paper's primary contribution: the family of
// consistency protocols compared in §5 — COTEC, OTEC and LOTEC — plus the
// Release Consistency variant for nested objects that §6 reports as work
// underway.
//
// A Protocol is a pure policy: given what the acquiring site knows (the
// object's page map vs its local copies, and the acquiring method's
// predicted access set), it decides which pages to move and when updates
// are pushed. The node engine does the actual locking and transfers; this
// split keeps the protocols directly comparable, which is exactly how the
// paper's simulation treats them.
package core

import (
	"fmt"

	"lotec/internal/schema"
)

// FetchInput is everything a protocol may consult when deciding what to
// transfer at a lock-acquisition point.
type FetchInput struct {
	// All is every page of the object.
	All schema.PageSet
	// Predicted is the conservative set of pages the acquiring method may
	// access (reads ∪ writes), produced by the compiler-side analysis of
	// §3.5/§4.1.
	Predicted schema.PageSet
	// Stale is the set of pages whose local copy is missing or older than
	// the page-map version (i.e. updated elsewhere since this site's copy).
	Stale schema.PageSet
	// Absent is the subset of pages not resident at this site at all.
	Absent schema.PageSet
	// FirstSinceGrant is true on the first transfer opportunity after the
	// family's global lock grant; COTEC/OTEC/RC transfer only then, while
	// LOTEC re-evaluates at every method start.
	FirstSinceGrant bool
}

// Protocol decides what data moves to maintain consistency.
type Protocol interface {
	// Name returns the protocol's name as used in the paper ("COTEC",
	// "OTEC", "LOTEC", "RC").
	Name() string
	// FetchPlan returns the pages to pull from their up-to-date locations
	// at this acquisition point (Alg 4.5 executes the plan).
	FetchPlan(in FetchInput) schema.PageSet
	// PushOnRelease reports whether the protocol eagerly pushes updated
	// pages to all caching sites when the root transaction commits (the RC
	// extension; false for the three entry-consistency protocols).
	PushOnRelease() bool
	// VersionAware reports whether the acquiring site may suppress
	// transfers of pages whose local copies are already current. COTEC is
	// the deliberately version-blind baseline: it re-transfers every page
	// on every acquisition.
	VersionAware() bool
	// GatherScattered reports whether transfers pull each page from the
	// site holding its newest copy (LOTEC: "it may be necessary to collect
	// parts from several nodes", §4.3 — more, smaller messages). When
	// false, the whole plan is fetched from the single site of the last
	// update, which under COTEC/OTEC always holds a complete up-to-date
	// copy ("data transfer need only be done between the node which last
	// updated the object and the node running the acquiring transaction").
	GatherScattered() bool
	// DeltaEligible reports whether the protocol's transfers may use
	// sub-page dirty-range deltas: the requester piggybacks its resident
	// page versions on fetches and the server answers with just the bytes
	// written since. Requires version tracking, so COTEC — the deliberately
	// version-blind baseline — stays ineligible and keeps moving full pages.
	DeltaEligible() bool
}

// cotec is the Conservative Object Transactional Entry Consistency
// baseline: "COTEC transfers all of an object's pages to the acquiring site
// after a successful lock acquisition" (§5).
type cotec struct{}

func (cotec) Name() string { return "COTEC" }
func (cotec) FetchPlan(in FetchInput) schema.PageSet {
	if !in.FirstSinceGrant {
		return nil
	}
	return in.All
}
func (cotec) PushOnRelease() bool   { return false }
func (cotec) VersionAware() bool    { return false }
func (cotec) GatherScattered() bool { return false }
func (cotec) DeltaEligible() bool   { return false }

// otec "optimized COTEC by sending only the updated pages to an acquiring
// transaction's site" (§5): pages whose local copies are stale.
type otec struct{}

func (otec) Name() string { return "OTEC" }
func (otec) FetchPlan(in FetchInput) schema.PageSet {
	if !in.FirstSinceGrant {
		return nil
	}
	return in.Stale
}
func (otec) PushOnRelease() bool   { return false }
func (otec) VersionAware() bool    { return true }
func (otec) GatherScattered() bool { return false }
func (otec) DeltaEligible() bool   { return true }

// lotec "sends only those updated pages which are predicted to be needed"
// (§5). Because only predicted pages move, up-to-date pages stay scattered
// across sites, so LOTEC re-evaluates at every method start (more, smaller
// messages — the trade-off Figures 6–8 study). Unpredicted needs are
// demand-fetched.
type lotec struct{}

func (lotec) Name() string { return "LOTEC" }
func (lotec) FetchPlan(in FetchInput) schema.PageSet {
	return in.Predicted.Intersect(in.Stale)
}
func (lotec) PushOnRelease() bool   { return false }
func (lotec) VersionAware() bool    { return true }
func (lotec) GatherScattered() bool { return true }
func (lotec) DeltaEligible() bool   { return true }

// rc is Release Consistency adapted to nested object transactions (§6's
// "simulated version of Release Consistency for nested objects … now
// underway"): updated pages are eagerly pushed to every caching site at
// root commit, so acquisition only ever fetches pages the site has never
// cached.
type rc struct{}

func (rc) Name() string { return "RC" }
func (rc) FetchPlan(in FetchInput) schema.PageSet {
	if !in.FirstSinceGrant {
		return nil
	}
	return in.Absent
}
func (rc) PushOnRelease() bool   { return true }
func (rc) VersionAware() bool    { return true }
func (rc) GatherScattered() bool { return false }
func (rc) DeltaEligible() bool   { return true }

// The protocol singletons.
var (
	COTEC Protocol = cotec{}
	OTEC  Protocol = otec{}
	LOTEC Protocol = lotec{}
	RC    Protocol = rc{}
)

// All returns the three paper protocols in the order the paper reports
// them (COTEC, OTEC, LOTEC).
func All() []Protocol { return []Protocol{COTEC, OTEC, LOTEC} }

// AllWithRC additionally includes the RC extension.
func AllWithRC() []Protocol { return []Protocol{COTEC, OTEC, LOTEC, RC} }

// ByName resolves a protocol by its paper name (case-sensitive).
func ByName(name string) (Protocol, error) {
	for _, p := range AllWithRC() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("core: unknown protocol %q", name)
}
