package core

import (
	"testing"
	"testing/quick"

	"lotec/internal/ids"
	"lotec/internal/schema"
)

func set(ps ...ids.PageNum) schema.PageSet { return schema.NewPageSet(ps...) }

func sampleInput() FetchInput {
	return FetchInput{
		All:             set(0, 1, 2, 3, 4),
		Predicted:       set(1, 2),
		Stale:           set(2, 3, 4),
		Absent:          set(4),
		FirstSinceGrant: true,
	}
}

func TestCOTECFetchesAllOnceOnly(t *testing.T) {
	in := sampleInput()
	if got := COTEC.FetchPlan(in); !got.Equal(in.All) {
		t.Errorf("first plan = %v", got)
	}
	in.FirstSinceGrant = false
	if got := COTEC.FetchPlan(in); len(got) != 0 {
		t.Errorf("subsequent plan = %v, want empty", got)
	}
}

func TestOTECFetchesStaleOnceOnly(t *testing.T) {
	in := sampleInput()
	if got := OTEC.FetchPlan(in); !got.Equal(in.Stale) {
		t.Errorf("first plan = %v", got)
	}
	in.FirstSinceGrant = false
	if got := OTEC.FetchPlan(in); len(got) != 0 {
		t.Errorf("subsequent plan = %v, want empty", got)
	}
}

func TestLOTECFetchesPredictedStaleEveryTime(t *testing.T) {
	in := sampleInput()
	want := set(2) // predicted ∩ stale
	if got := LOTEC.FetchPlan(in); !got.Equal(want) {
		t.Errorf("plan = %v, want %v", got, want)
	}
	in.FirstSinceGrant = false
	if got := LOTEC.FetchPlan(in); !got.Equal(want) {
		t.Errorf("subsequent plan = %v, want %v (LOTEC is lazy per method)", got, want)
	}
}

func TestRCFetchesAbsentAndPushes(t *testing.T) {
	in := sampleInput()
	if got := RC.FetchPlan(in); !got.Equal(in.Absent) {
		t.Errorf("plan = %v", got)
	}
	if !RC.PushOnRelease() {
		t.Error("RC must push on release")
	}
	for _, p := range All() {
		if p.PushOnRelease() {
			t.Errorf("%s must not push on release", p.Name())
		}
	}
}

func TestNamesAndLookup(t *testing.T) {
	if COTEC.Name() != "COTEC" || OTEC.Name() != "OTEC" || LOTEC.Name() != "LOTEC" || RC.Name() != "RC" {
		t.Error("names wrong")
	}
	for _, want := range AllWithRC() {
		got, err := ByName(want.Name())
		if err != nil || got.Name() != want.Name() {
			t.Errorf("ByName(%s) = %v, %v", want.Name(), got, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name should fail")
	}
	if len(All()) != 3 || len(AllWithRC()) != 4 {
		t.Error("protocol lists wrong")
	}
}

// Property: the paper's byte ordering holds per acquisition plan —
// LOTEC ⊆ OTEC ⊆ COTEC, for any consistent input.
func TestPlanOrderingProperty(t *testing.T) {
	f := func(allRaw, predRaw, staleRaw []uint8) bool {
		var all []ids.PageNum
		for _, r := range allRaw {
			all = append(all, ids.PageNum(r%16))
		}
		allSet := schema.NewPageSet(all...)
		var pred, stale []ids.PageNum
		for _, r := range predRaw {
			pred = append(pred, ids.PageNum(r%16))
		}
		for _, r := range staleRaw {
			stale = append(stale, ids.PageNum(r%16))
		}
		in := FetchInput{
			All:             allSet,
			Predicted:       schema.NewPageSet(pred...).Intersect(allSet),
			Stale:           schema.NewPageSet(stale...).Intersect(allSet),
			FirstSinceGrant: true,
		}
		in.Absent = in.Stale // absent ⊆ stale; extreme case
		l := LOTEC.FetchPlan(in)
		o := OTEC.FetchPlan(in)
		c := COTEC.FetchPlan(in)
		return l.SubsetOf(o) && o.SubsetOf(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
