package sim

import (
	"reflect"
	"testing"

	"lotec/internal/core"
	"lotec/internal/stats"
)

// traceFingerprint captures everything about a run that must be invariant
// under FetchConcurrency: the full message trace, the aggregate and
// per-object byte/message accounting, the protocol counters, and the
// transfer pipeline's volume/stage totals with Gather zeroed out — the
// gather wall-clock is the one quantity that is allowed (indeed, expected)
// to change with concurrency.
type traceFingerprint struct {
	Trace     []stats.MsgRecord
	Totals    stats.ObjStats
	PerObject map[int64]stats.ObjStats
	Counters  stats.Counters
	Fetch     stats.TransferTotals
	Push      stats.TransferTotals
	Commits   int
	Failures  int
}

func fingerprintCluster(c *Cluster) (traceFingerprint, stats.TransferTotals) {
	rec := c.Recorder()
	fp := traceFingerprint{
		Trace:     rec.Trace(),
		Totals:    rec.Totals(),
		PerObject: make(map[int64]stats.ObjStats),
		Counters:  rec.Counters(),
		Fetch:     rec.TransferStages(stats.TransferFetch),
		Push:      rec.TransferStages(stats.TransferPush),
		Commits:   len(c.Results()) - len(c.FailedResults()),
		Failures:  len(c.FailedResults()),
	}
	for obj, s := range rec.PerObject() {
		fp.PerObject[int64(obj)] = s
	}
	gather := stats.TransferTotals{Gather: fp.Fetch.Gather + fp.Push.Gather}
	fp.Fetch.Gather = 0
	fp.Push.Gather = 0
	return fp, gather
}

// TestFetchConcurrencyTraceEquivalence is the tentpole invariant: on the
// Figure-3 workload (large objects, high contention) every protocol must
// produce byte-for-byte identical message traces and counters at
// FetchConcurrency 1, 4 and 16. Only the modeled gather wall-clock may
// differ, and at concurrency > 1 it must never be worse than serial.
func TestFetchConcurrencyTraceEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-protocol figure workload; skipped in -short")
	}
	for _, proto := range core.AllWithRC() {
		proto := proto
		t.Run(proto.Name(), func(t *testing.T) {
			var base traceFingerprint
			var baseGather stats.TransferTotals
			for i, conc := range []int{1, 4, 16} {
				// A fresh workload per run guards against any shared
				// mutable state leaking between executions.
				w, err := GenerateWorkload(largeHigh())
				if err != nil {
					t.Fatalf("generate: %v", err)
				}
				c, _, execErr := w.Execute(Config{Protocol: proto, FetchConcurrency: conc})
				if execErr != nil {
					t.Fatalf("execute conc=%d: %v", conc, execErr)
				}
				fp, gather := fingerprintCluster(c)
				if fp.Totals.DataBytes == 0 {
					t.Fatalf("conc=%d: workload moved no page data", conc)
				}
				if i == 0 {
					base, baseGather = fp, gather
					continue
				}
				if !reflect.DeepEqual(fp.Counters, base.Counters) {
					t.Errorf("conc=%d: counters diverge: %+v != %+v", conc, fp.Counters, base.Counters)
				}
				if !reflect.DeepEqual(fp.Totals, base.Totals) {
					t.Errorf("conc=%d: totals diverge: %+v != %+v", conc, fp.Totals, base.Totals)
				}
				if !reflect.DeepEqual(fp.PerObject, base.PerObject) {
					t.Errorf("conc=%d: per-object stats diverge", conc)
				}
				if !reflect.DeepEqual(fp.Fetch, base.Fetch) || !reflect.DeepEqual(fp.Push, base.Push) {
					t.Errorf("conc=%d: transfer volume/stage totals diverge (Gather excluded): fetch %+v != %+v, push %+v != %+v",
						conc, fp.Fetch, base.Fetch, fp.Push, base.Push)
				}
				if fp.Commits != base.Commits || fp.Failures != base.Failures {
					t.Errorf("conc=%d: outcomes diverge: %d/%d commits/failures != %d/%d",
						conc, fp.Commits, fp.Failures, base.Commits, base.Failures)
				}
				if len(fp.Trace) != len(base.Trace) {
					t.Fatalf("conc=%d: trace length %d != %d", conc, len(fp.Trace), len(base.Trace))
				}
				for j := range fp.Trace {
					if !reflect.DeepEqual(fp.Trace[j], base.Trace[j]) {
						t.Fatalf("conc=%d: trace record %d diverges:\n got %+v\nwant %+v",
							conc, j, fp.Trace[j], base.Trace[j])
					}
				}
				if gather.Gather > baseGather.Gather {
					t.Errorf("conc=%d: gather wall-clock %v worse than serial %v",
						conc, gather.Gather, baseGather.Gather)
				}
			}
			if base.Fetch.Transfers == 0 {
				t.Fatalf("workload ran no fetch transfers; invariant vacuous")
			}
		})
	}
}
