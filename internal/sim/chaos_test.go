package sim

import (
	"bytes"
	"flag"
	"fmt"
	"reflect"
	"testing"
	"time"

	"lotec/internal/core"
	"lotec/internal/fault"
	"lotec/internal/ids"
	"lotec/internal/workload"
)

// The chaos harness sweeps seeds × fault plans × protocols and asserts the
// safety invariants under every schedule. Both the workload and the fault
// plan derive from one seed, so any failure reproduces with a single flag:
//
//	go test ./internal/sim -run TestChaos -chaos-seed=<n>
//
// The default sweep is the CI smoke matrix (10 seeds × 7 plans × 3
// protocols = 210 runs); -chaos-full widens the seed set, -short shrinks
// it to a sanity check.
var (
	chaosSeed = flag.Int64("chaos-seed", -1,
		"replay one chaos seed across every fault plan and protocol (for reproducing failures)")
	chaosFull = flag.Bool("chaos-full", false,
		"sweep the full chaos seed matrix instead of the CI smoke subset")
)

// chaosPlans are the fault presets the harness sweeps — every recoverable
// preset (all of Presets() except "none", which the zero-fault trace-
// equivalence test covers instead).
var chaosPlans = []string{"drop", "delay", "dup", "reorder", "partition", "crash", "chaos"}

// chaosWorkload shapes one run: small enough that the full matrix fits in
// a CI smoke job, contended enough (4 nodes, 8 objects, hot keys, injected
// aborts at every nesting level) that drops, duplicates, reorderings and
// crashes land on interesting schedules.
func chaosWorkload(seed int64) WorkloadConfig {
	return WorkloadConfig{
		Seed:           seed,
		Objects:        8,
		MinPages:       1,
		MaxPages:       3,
		PageSize:       512,
		Transactions:   20,
		Nodes:          4,
		AbortProb:      0.15,
		HotFraction:    0.25,
		HotWeight:      0.6,
		ArrivalSpacing: 200 * time.Microsecond,
	}
}

func chaosRepro(seed uint64) string {
	return fmt.Sprintf("repro: go test ./internal/sim -run TestChaos -chaos-seed=%d", seed)
}

// runChaosOne executes one (seed, plan, protocol) cell and checks every
// safety invariant:
//
//  1. the run terminates with no proc leaked (Execute surfaces the
//     simulator's quiescence check),
//  2. every submitted root reports a result, and each outcome matches the
//     injected-abort oracle — the fault plans are all recoverable, so
//     network faults must never surface as transaction failures,
//  3. committed state equals a fault-free serial replay in commit order
//     (no lost or duplicated committed update; shadow-page undo restored
//     pre-state on every abort),
//  4. the page map is coherent at every site, and
//  5. the directory lock tables and every engine's family table drained
//     to empty.
func runChaosOne(t *testing.T, seed uint64, planName string, proto core.Protocol) {
	t.Helper()
	runChaosCell(t, seed, planName, proto, chaosWorkload(int64(seed)))
}

// runChaosCell is runChaosOne with an explicit workload shape, so variant
// matrices (e.g. the small-write delta sweep) reuse the same oracles.
func runChaosCell(t *testing.T, seed uint64, planName string, proto core.Protocol, cfg WorkloadConfig) {
	t.Helper()
	w, err := GenerateWorkload(cfg)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	runChaosWorkload(t, seed, planName, proto, w)
}

// runChaosWorkload runs the chaos oracles on an already-built workload, so
// spec-compiled (skewed) workloads share the exact same invariants as the
// legacy matrix.
func runChaosWorkload(t *testing.T, seed uint64, planName string, proto core.Protocol, w *Workload) {
	t.Helper()
	plan, err := fault.Parse(planName, seed)
	if err != nil {
		t.Fatalf("preset %q: %v", planName, err)
	}
	runChaosWorkloadIn(t, seed, w, Config{Protocol: proto, Faults: plan, MaxRetries: 100})
}

// runChaosWorkloadIn is the oracle core with an explicit cluster config, so
// replicated-control-plane cells (Replicas > 0, crafted crash/partition
// plans) share the exact invariants of the legacy matrix.
func runChaosWorkloadIn(t *testing.T, seed uint64, w *Workload, clusterCfg Config) *Cluster {
	t.Helper()
	proto := clusterCfg.Protocol
	c, objs, err := w.Execute(clusterCfg)
	if err != nil {
		t.Fatalf("execute: %v\n%s", err, chaosRepro(seed))
	}

	results := c.Results()
	if len(results) != len(w.Roots) {
		t.Fatalf("%d roots submitted, %d results reported\n%s", len(w.Roots), len(results), chaosRepro(seed))
	}
	for _, r := range results {
		idx := r.Tag.(int)
		if want := w.Roots[idx].Call.FailsOut(); want != (r.Err != nil) {
			t.Errorf("root %d outcome mismatch under faults (want fail=%v, err=%v)\n%s",
				idx, want, r.Err, chaosRepro(seed))
		}
	}

	// Serial replay of the commit order on a fault-free cluster must
	// reproduce the committed state byte-for-byte.
	s, err := NewCluster(Config{Protocol: proto, Nodes: w.Cfg.Nodes, PageSize: w.Cfg.PageSize})
	if err != nil {
		t.Fatalf("replay cluster: %v", err)
	}
	sObjs, err := w.Install(s)
	if err != nil {
		t.Fatalf("replay install: %v", err)
	}
	var at time.Duration
	for _, r := range c.ResultsByCommitOrder() {
		if r.Err != nil {
			continue // aborted roots left no effects to replay
		}
		call := w.Roots[r.Tag.(int)].Call
		at += 50 * time.Millisecond
		if err := s.Submit(at, r.Node, sObjs[call.ObjIndex], call.Method, encodeCall(sObjs, call)); err != nil {
			t.Fatalf("replay submit: %v", err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatalf("replay run: %v", err)
	}
	for i, o := range objs {
		got, err := c.ObjectBytes(o)
		if err != nil {
			t.Fatalf("object bytes: %v", err)
		}
		want, err := s.ObjectBytes(sObjs[i])
		if err != nil {
			t.Fatalf("replay object bytes: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("object %d: committed state differs from fault-free serial replay\n%s",
				i, chaosRepro(seed))
		}
	}

	if err := c.VerifyPageMapCoherence(); err != nil {
		t.Errorf("page map incoherent: %v\n%s", err, chaosRepro(seed))
	}
	if dump := c.DirectoryDump(); dump != "" {
		t.Errorf("directory lock tables not drained:\n%s\n%s", dump, chaosRepro(seed))
	}
	for n := 1; n <= w.Cfg.Nodes; n++ {
		if dump := c.Engine(ids.NodeID(n)).DebugDump(); dump != "" {
			t.Errorf("node %d engine state not drained:\n%s\n%s", n, dump, chaosRepro(seed))
		}
	}
	return c
}

func TestChaos(t *testing.T) {
	var seeds []uint64
	switch {
	case *chaosSeed >= 0:
		seeds = []uint64{uint64(*chaosSeed)}
	case *chaosFull:
		for s := uint64(1); s <= 40; s++ {
			seeds = append(seeds, s)
		}
	case testing.Short():
		seeds = []uint64{1, 2}
	default:
		for s := uint64(1); s <= 10; s++ {
			seeds = append(seeds, s)
		}
	}

	runs := 0
	for _, seed := range seeds {
		seed := seed
		for _, planName := range chaosPlans {
			planName := planName
			for _, proto := range core.All() {
				proto := proto
				runs++
				t.Run(fmt.Sprintf("seed=%d/%s/%s", seed, planName, proto.Name()), func(t *testing.T) {
					runChaosOne(t, seed, planName, proto)
				})
			}
		}
	}
	// The smoke matrix is the acceptance bar: the default sweep must stay
	// at or above 200 runs. (Replay and -short modes are exempt — they
	// exist to shrink the matrix on purpose.)
	if *chaosSeed < 0 && !testing.Short() && runs < 200 {
		t.Fatalf("chaos smoke matrix shrank to %d runs; keep it >= 200", runs)
	}
}

// chaosZipfSpec is the skewed chaos cell: a Zipf-rate, Zipf-object client
// class with injected aborts, sized like chaosWorkload (4 nodes, 8 hot
// objects, ~20 roots) so a plans × protocols sweep stays CI-cheap.
func chaosZipfSpec(seed int64) *workload.Spec {
	return &workload.Spec{
		Name:      "chaos-zipf",
		Seed:      seed,
		Nodes:     4,
		PageSize:  512,
		Objects:   workload.ObjectPop{Count: 8, MinPages: 1, MaxPages: 3},
		HorizonMs: 4,
		Classes: []workload.ClientClass{{
			Name:       "skewed",
			Population: 200,
			AbortProb:  0.15,
			Rate:       workload.RateDist{Dist: "zipf", MeanHz: 25, S: 1.1},
			Arrivals:   workload.ArrivalSpec{Process: "poisson", Envelope: "constant"},
			ObjectDist: workload.ObjectDist{Dist: "zipf", S: 1.3},
		}},
	}
}

// TestChaosZipf runs the PR 4 chaos invariants (no proc leak, result/abort
// oracle, fault-free serial-replay byte equality, page-map coherence,
// directory and engine drain) on Zipf-skewed spec-compiled traffic — the
// uniform matrix never concentrates load on a popularity head, and skew is
// exactly where grant queues and ownership churn pile up.
func TestChaosZipf(t *testing.T) {
	seeds := []uint64{1, 2}
	if testing.Short() {
		seeds = []uint64{1}
	}
	for _, seed := range seeds {
		seed := seed
		for _, planName := range chaosPlans {
			planName := planName
			for _, proto := range core.All() {
				proto := proto
				t.Run(fmt.Sprintf("seed=%d/%s/%s", seed, planName, proto.Name()), func(t *testing.T) {
					w, err := workload.Compile(chaosZipfSpec(int64(seed)))
					if err != nil {
						t.Fatalf("compile: %v", err)
					}
					if len(w.Roots) < 10 {
						t.Fatalf("zipf chaos spec compiled to only %d roots; cell is vacuous", len(w.Roots))
					}
					runChaosWorkload(t, seed, planName, proto, WrapWorkload(w))
				})
			}
		}
	}
}

// TestChaosDeterministicReplay pins the byte-for-byte replay guarantee:
// the same (seed, plan, protocol) cell run twice produces identical
// message traces, counters, and outcomes — including the fault decisions
// themselves. Without this, -chaos-seed would not reproduce failures.
func TestChaosDeterministicReplay(t *testing.T) {
	cells := []struct {
		seed  uint64
		plan  string
		proto core.Protocol
	}{
		{3, "drop", core.COTEC},
		{5, "chaos", core.LOTEC},
		{7, "crash", core.OTEC},
	}
	for _, cell := range cells {
		cell := cell
		t.Run(fmt.Sprintf("seed=%d/%s/%s", cell.seed, cell.plan, cell.proto.Name()), func(t *testing.T) {
			run := func() (traceFingerprint, error) {
				plan, err := fault.Parse(cell.plan, cell.seed)
				if err != nil {
					return traceFingerprint{}, err
				}
				w, err := GenerateWorkload(chaosWorkload(int64(cell.seed)))
				if err != nil {
					return traceFingerprint{}, err
				}
				c, _, err := w.Execute(Config{Protocol: cell.proto, Faults: plan, MaxRetries: 100})
				if err != nil {
					return traceFingerprint{}, err
				}
				fp, gather := fingerprintCluster(c)
				fp.Fetch.Gather = gather.Gather // determinism covers wall-clock too
				return fp, nil
			}
			a, err := run()
			if err != nil {
				t.Fatal(err)
			}
			b, err := run()
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Trace) != len(b.Trace) {
				t.Fatalf("trace length diverged across identical runs: %d vs %d", len(a.Trace), len(b.Trace))
			}
			for i := range a.Trace {
				if !reflect.DeepEqual(a.Trace[i], b.Trace[i]) {
					t.Fatalf("trace record %d diverged across identical runs:\n first %+v\nsecond %+v",
						i, a.Trace[i], b.Trace[i])
				}
			}
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("fingerprints diverged across identical runs:\n first %+v\nsecond %+v", a, b)
			}
			if a.Counters.MsgDrops+a.Counters.MsgDups+a.Counters.MsgDelays == 0 {
				t.Fatal("plan injected nothing; determinism test is vacuous")
			}
		})
	}
}
