package sim

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"lotec/internal/core"
	"lotec/internal/ids"
	"lotec/internal/netmodel"
	"lotec/internal/stats"
)

// FigureSpec defines one experiment of the paper's §5 evaluation: a
// workload plus the protocols to compare on it.
type FigureSpec struct {
	// ID is the figure identifier ("2".."8", "rc", or an ablation name).
	ID string
	// Title is the paper's caption (or the ablation description).
	Title string
	// Workload is the generated input, identical across protocols.
	Workload WorkloadConfig
	// Protocols to run; defaults to the paper's three.
	Protocols []core.Protocol
}

// Figure workload parameters. "Medium" objects are 1–5 pages and "large"
// ones 10–20 (§5); high contention concentrates 85 % of accesses on a
// quarter of the objects, moderate contention spreads them evenly.
func mediumHigh() WorkloadConfig {
	return WorkloadConfig{
		Seed: 42, Objects: 20, MinPages: 1, MaxPages: 5,
		Transactions: 200, Nodes: 8,
		HotFraction: 0.25, HotWeight: 0.85,
		ArrivalSpacing: 150 * time.Microsecond,
		// The paper's methods access most of each object ("only a subset of
		// which are normally updated" still leaves LOTEC a 5–10 % win over
		// OTEC); widening the declared sets reproduces that band.
		PredictionWiden: 1,
	}
}

func largeHigh() WorkloadConfig {
	c := mediumHigh()
	c.Seed = 43
	c.MinPages, c.MaxPages = 10, 20
	c.Transactions = 150
	c.ArrivalSpacing = 400 * time.Microsecond
	c.PredictionWiden = 5
	return c
}

func mediumModerate() WorkloadConfig {
	c := mediumHigh()
	c.Seed = 44
	c.Objects = 100
	c.Transactions = 300
	c.HotFraction, c.HotWeight = 0.5, 0.5
	return c
}

func largeModerate() WorkloadConfig {
	c := largeHigh()
	c.Seed = 45
	c.Objects = 100
	c.Transactions = 200
	c.HotFraction, c.HotWeight = 0.5, 0.5
	return c
}

// FigureSpecs returns every reproducible experiment, in the paper's order.
func FigureSpecs() []FigureSpec {
	return []FigureSpec{
		{ID: "2", Title: "Medium Sized Objects with High Contention (bytes/object)", Workload: mediumHigh()},
		{ID: "3", Title: "Large Sized Objects with High Contention (bytes/object)", Workload: largeHigh()},
		{ID: "4", Title: "Medium Sized Objects with Moderate Contention (bytes/object)", Workload: mediumModerate()},
		{ID: "5", Title: "Large Sized Objects with Moderate Contention (bytes/object)", Workload: largeModerate()},
		{ID: "6", Title: "Example Transfer Time at 10Mbps (µs vs software cost)", Workload: largeHigh()},
		{ID: "7", Title: "Example Transfer Time at 100Mbps (µs vs software cost)", Workload: largeHigh()},
		{ID: "8", Title: "Example Transfer Time at 1Gbps (µs vs software cost)", Workload: largeHigh()},
		{ID: "rc", Title: "Release Consistency extension (§6) vs the EC protocols", Workload: mediumHigh(),
			Protocols: core.AllWithRC()},
	}
}

// FigureByID resolves a figure specification.
func FigureByID(id string) (FigureSpec, error) {
	for _, s := range FigureSpecs() {
		if s.ID == id {
			return s, nil
		}
	}
	return FigureSpec{}, fmt.Errorf("sim: unknown figure %q", id)
}

// figureNetwork maps the time figures to their bandwidth preset.
func figureNetwork(id string) (netmodel.Params, bool) {
	switch id {
	case "6":
		return netmodel.Ethernet10, true
	case "7":
		return netmodel.Ethernet100, true
	case "8":
		return netmodel.Gigabit, true
	default:
		return netmodel.Params{}, false
	}
}

// ProtocolRun is the outcome of one protocol on the figure's workload.
type ProtocolRun struct {
	Protocol  string
	Recorder  *stats.Recorder
	Objects   []ids.ObjectID
	PerObject map[ids.ObjectID]stats.ObjStats
	Counters  stats.Counters
}

// FigureResult is a fully executed figure.
type FigureResult struct {
	Spec FigureSpec
	Runs []ProtocolRun
}

// RunFigure executes the figure's workload once per protocol and verifies
// that every root committed and the page map is coherent.
func RunFigure(spec FigureSpec) (*FigureResult, error) {
	return RunFigureConfig(spec, Config{})
}

// RunFigureConfig is RunFigure with a base cluster config (e.g. a
// FetchConcurrency override); the figure's workload still sets nodes,
// page size, protocol and leniency.
func RunFigureConfig(spec FigureSpec, base Config) (*FigureResult, error) {
	protocols := spec.Protocols
	if len(protocols) == 0 {
		protocols = core.All()
	}
	w, err := GenerateWorkload(spec.Workload)
	if err != nil {
		return nil, fmt.Errorf("figure %s: %w", spec.ID, err)
	}
	res := &FigureResult{Spec: spec}
	for _, p := range protocols {
		cfg := base
		cfg.Protocol = p
		c, objs, err := w.Execute(cfg)
		if err != nil {
			return nil, fmt.Errorf("figure %s (%s): %w", spec.ID, p.Name(), err)
		}
		for _, r := range c.Results() {
			if r.Err != nil {
				return nil, fmt.Errorf("figure %s (%s): root failed: %w", spec.ID, p.Name(), r.Err)
			}
		}
		if err := c.VerifyPageMapCoherence(); err != nil {
			return nil, fmt.Errorf("figure %s (%s): %w", spec.ID, p.Name(), err)
		}
		res.Runs = append(res.Runs, ProtocolRun{
			Protocol:  p.Name(),
			Recorder:  c.Recorder(),
			Objects:   objs,
			PerObject: c.Recorder().PerObject(),
			Counters:  c.Recorder().Counters(),
		})
	}
	return res, nil
}

// Run looks up a run by protocol name.
func (r *FigureResult) Run(protocol string) (ProtocolRun, bool) {
	for _, run := range r.Runs {
		if run.Protocol == protocol {
			return run, true
		}
	}
	return ProtocolRun{}, false
}

// HottestObject returns the object with the most consistency traffic in the
// first run — the "arbitrary shared object" Figures 6–8 price.
func (r *FigureResult) HottestObject() ids.ObjectID {
	if len(r.Runs) == 0 {
		return stats.NoObject
	}
	run := r.Runs[0]
	best := stats.NoObject
	var bestBytes int64 = -1
	for _, obj := range run.Objects {
		if b := run.PerObject[obj].TotalBytes(); b > bestBytes {
			bestBytes = b
			best = obj
		}
	}
	return best
}

// BytesTable renders the per-object consistency bytes (page payload, the
// quantity Figures 2–5 plot) as aligned text: one row per shared object,
// one column per protocol.
func (r *FigureResult) BytesTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s: %s\n", r.Spec.ID, r.Spec.Title)
	fmt.Fprintf(&b, "%-8s", "Object")
	for _, run := range r.Runs {
		fmt.Fprintf(&b, "%12s", run.Protocol)
	}
	b.WriteString("\n")
	if len(r.Runs) == 0 {
		return b.String()
	}
	objs := append([]ids.ObjectID(nil), r.Runs[0].Objects...)
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	for _, obj := range objs {
		touched := false
		for _, run := range r.Runs {
			if run.PerObject[obj].Msgs > 0 {
				touched = true
				break
			}
		}
		if !touched {
			continue
		}
		fmt.Fprintf(&b, "%-8v", obj)
		for _, run := range r.Runs {
			fmt.Fprintf(&b, "%12d", run.PerObject[obj].DataBytes)
		}
		b.WriteString("\n")
	}
	fmt.Fprintf(&b, "%-8s", "TOTAL")
	for _, run := range r.Runs {
		fmt.Fprintf(&b, "%12d", run.Recorder.Totals().DataBytes)
	}
	b.WriteString("\n")
	return b.String()
}

// TimeTable prices the hottest object's message trace under the figure's
// bandwidth across the paper's five software costs (Figures 6–8).
func (r *FigureResult) TimeTable(bw netmodel.Params) string {
	obj := r.HottestObject()
	var b strings.Builder
	fmt.Fprintf(&b, "Figure %s: %s — object %v at %s\n", r.Spec.ID, r.Spec.Title, obj, bw.Name)
	fmt.Fprintf(&b, "%-10s", "SWCost")
	for _, run := range r.Runs {
		fmt.Fprintf(&b, "%14s", run.Protocol)
	}
	b.WriteString("\n")
	for _, sc := range netmodel.SoftwareCosts {
		fmt.Fprintf(&b, "%-10v", sc)
		for _, run := range r.Runs {
			t := run.Recorder.TransferTime(obj, bw.WithSoftwareCost(sc))
			fmt.Fprintf(&b, "%12.0fµs", float64(t.Microseconds()))
		}
		b.WriteString("\n")
	}
	return b.String()
}

// Render produces the figure's report: the byte table for Figures 2–5 and
// the RC comparison, or the time table for Figures 6–8.
func (r *FigureResult) Render() string {
	if bw, ok := figureNetwork(r.Spec.ID); ok {
		return r.TimeTable(bw)
	}
	out := r.BytesTable()
	out += "\n" + r.CountersTable()
	return out
}

// CountersTable reports the §5.1 operation counters per protocol.
func (r *FigureResult) CountersTable() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s%12s%12s%10s%10s%10s%10s%10s\n",
		"Protocol", "LocalLock", "GlobalLock", "Demand", "Aborts", "Retries", "Commits", "Msgs")
	for _, run := range r.Runs {
		c := run.Counters
		fmt.Fprintf(&b, "%-10s%12d%12d%10d%10d%10d%10d%10d\n",
			run.Protocol, c.LocalLockOps, c.GlobalLockOps, c.DemandFetches,
			c.Aborts, c.Retries, c.Commits, run.Recorder.MsgCount())
	}
	return b.String()
}

// HeadlineRatios computes the §5 headline comparison over a figure's runs:
// OTEC/COTEC and LOTEC/OTEC consistency-byte ratios (the paper reports
// "OTEC generally outperforms COTEC by approximately 20–25 % while LOTEC
// outperforms OTEC by another 5–10 %").
func (r *FigureResult) HeadlineRatios() (otecOverCotec, lotecOverOtec float64, ok bool) {
	var cotec, otec, lotec int64
	for _, run := range r.Runs {
		switch run.Protocol {
		case "COTEC":
			cotec = run.Recorder.Totals().DataBytes
		case "OTEC":
			otec = run.Recorder.Totals().DataBytes
		case "LOTEC":
			lotec = run.Recorder.Totals().DataBytes
		}
	}
	if cotec == 0 || otec == 0 {
		return 0, 0, false
	}
	return float64(otec) / float64(cotec), float64(lotec) / float64(otec), true
}

// Headline runs the four byte figures and aggregates the §5 headline
// ratios across them.
func Headline() (string, error) {
	var b strings.Builder
	var sumC, sumO, sumL int64
	for _, id := range []string{"2", "3", "4", "5"} {
		spec, err := FigureByID(id)
		if err != nil {
			return "", err
		}
		res, err := RunFigure(spec)
		if err != nil {
			return "", err
		}
		var c, o, l int64
		for _, run := range res.Runs {
			t := run.Recorder.Totals().DataBytes
			switch run.Protocol {
			case "COTEC":
				c = t
			case "OTEC":
				o = t
			case "LOTEC":
				l = t
			}
		}
		sumC, sumO, sumL = sumC+c, sumO+o, sumL+l
		fmt.Fprintf(&b, "Figure %s: COTEC=%d OTEC=%d LOTEC=%d  (OTEC/COTEC=%.2f, LOTEC/OTEC=%.2f)\n",
			id, c, o, l, float64(o)/float64(c), float64(l)/float64(o))
	}
	fmt.Fprintf(&b, "AGGREGATE: COTEC=%d OTEC=%d LOTEC=%d  (OTEC/COTEC=%.2f, LOTEC/OTEC=%.2f)\n",
		sumC, sumO, sumL, float64(sumO)/float64(sumC), float64(sumL)/float64(sumO))
	fmt.Fprintf(&b, "Paper: OTEC beats COTEC by ~20-25%%; LOTEC beats OTEC by another 5-10%%.\n")
	return b.String(), nil
}
