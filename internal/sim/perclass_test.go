package sim

import (
	"testing"

	"lotec/internal/core"
	"lotec/internal/ids"
	"lotec/internal/node"
	"lotec/internal/schema"
)

// TestPerClassProtocolOverride: a cluster defaulting to LOTEC but pinning
// one class to COTEC must move whole objects for that class only (the §6
// per-class consistency extension).
func TestPerClassProtocolOverride(t *testing.T) {
	build := func(overrides map[ids.ClassID]core.Protocol) (int64, int64) {
		c, err := NewCluster(Config{
			Nodes:             2,
			PageSize:          128,
			Protocol:          core.LOTEC,
			ProtocolOverrides: overrides,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Two structurally identical classes: three pages, a method that
		// touches only the first.
		mk := func(id ids.ClassID, name string) *schema.Class {
			cls, err := schema.NewClassBuilder(id, name).
				Attr("hot", 128).
				Attr("cold", 256).
				Method(schema.MethodSpec{Name: "touch", Writes: []string{"hot"}}).
				Build()
			if err != nil {
				t.Fatal(err)
			}
			return cls
		}
		a := mk(1, "Lazy")
		b := mk(2, "Conservative")
		for _, cls := range []*schema.Class{a, b} {
			if err := c.AddClass(cls); err != nil {
				t.Fatal(err)
			}
			if err := c.RegisterBody(cls, "touch", func(ctx *node.Ctx) error {
				cur, err := ctx.ReadAt("hot", 0, 1)
				if err != nil {
					return err
				}
				return ctx.WriteAt("hot", 0, []byte{cur[0] + 1})
			}); err != nil {
				t.Fatal(err)
			}
		}
		objA := mustObject(t, c, a.ID, 1)
		objB := mustObject(t, c, b.ID, 1)
		// Bounce both objects between the two nodes.
		for i := 0; i < 6; i++ {
			n := ids.NodeID(i%2 + 1)
			if err := c.Submit(int64ToDur(i), n, objA, "touch", nil); err != nil {
				t.Fatal(err)
			}
			if err := c.Submit(int64ToDur(i)+int64ToDur(1)/2, n, objB, "touch", nil); err != nil {
				t.Fatal(err)
			}
		}
		runAll(t, c)
		return c.Recorder().Object(objA).DataBytes, c.Recorder().Object(objB).DataBytes
	}

	lazyA, lazyB := build(nil) // both LOTEC
	mixedA, mixedB := build(map[ids.ClassID]core.Protocol{2: core.COTEC})

	if mixedA != lazyA {
		t.Errorf("LOTEC class traffic changed under override: %d vs %d", mixedA, lazyA)
	}
	if mixedB <= lazyB {
		t.Errorf("COTEC-pinned class should move more data: %d (mixed) vs %d (all-LOTEC)", mixedB, lazyB)
	}
}
