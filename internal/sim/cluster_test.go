package sim

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"testing"

	"lotec/internal/core"
	"lotec/internal/ids"
	"lotec/internal/node"
	"lotec/internal/o2pl"
	"lotec/internal/schema"
	"time"
)

// i64 encodes a little-endian int64 argument.
func i64(v int64) []byte {
	b := make([]byte, 8)
	binary.LittleEndian.PutUint64(b, uint64(v))
	return b
}

func dec64(b []byte) int64 { return int64(binary.LittleEndian.Uint64(b)) }

// objPair encodes two object IDs as an argument.
func objPair(a, b ids.ObjectID) []byte {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf, uint64(a))
	binary.LittleEndian.PutUint64(buf[8:], uint64(b))
	return buf
}

// errInsufficient is a deliberate application abort.
var errInsufficient = errors.New("insufficient funds")

// testbed builds a cluster with the standard test schema:
//
//	Account: balance(8), log(256) — 3 pages of 128B
//	  deposit(W balance), withdraw(W balance), peek(R balance),
//	  appendLog(W log), audit(R balance+log)
//	Job: note(8) — driver objects for multi-object roots
//	  twoDeposits(W note): deposit into two accounts in argument order
//	  readTwo(R note → invokes peek twice)
//	  depositAbortInner(W note): first deposit commits, second withdraw
//	    fails and is survived
func testbed(t *testing.T, cfg Config) (*Cluster, *schema.Class, *schema.Class) {
	t.Helper()
	if cfg.PageSize == 0 {
		cfg.PageSize = 128
	}
	c, err := NewCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	account, err := schema.NewClassBuilder(1, "Account").
		Attr("balance", 8).
		Attr("log", 256).
		Method(schema.MethodSpec{Name: "deposit", Writes: []string{"balance"}}).
		Method(schema.MethodSpec{Name: "withdraw", Writes: []string{"balance"}}).
		Method(schema.MethodSpec{Name: "peek", Reads: []string{"balance"}}).
		Method(schema.MethodSpec{Name: "appendLog", Writes: []string{"log"}}).
		Method(schema.MethodSpec{Name: "audit", Reads: []string{"balance", "log"}}).
		Method(schema.MethodSpec{Name: "sneakyLog", Writes: []string{"balance"}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	job, err := schema.NewClassBuilder(2, "Job").
		Attr("note", 8).
		Method(schema.MethodSpec{Name: "twoDeposits", Writes: []string{"note"}}).
		Method(schema.MethodSpec{Name: "readTwo", Reads: []string{"note"}}).
		Method(schema.MethodSpec{Name: "depositAbortInner", Writes: []string{"note"}}).
		Method(schema.MethodSpec{Name: "selfInvoke", Writes: []string{"note"}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddClass(account); err != nil {
		t.Fatal(err)
	}
	if err := c.AddClass(job); err != nil {
		t.Fatal(err)
	}

	mustReg := func(cls *schema.Class, name string, fn node.MethodFunc) {
		t.Helper()
		if err := c.RegisterBody(cls, name, fn); err != nil {
			t.Fatal(err)
		}
	}
	mustReg(account, "deposit", func(ctx *node.Ctx) error {
		cur, err := ctx.Read("balance")
		if err != nil {
			return err
		}
		next := dec64(cur) + dec64(ctx.Arg())
		if err := ctx.Write("balance", i64(next)); err != nil {
			return err
		}
		ctx.SetResult(i64(next))
		return nil
	})
	mustReg(account, "withdraw", func(ctx *node.Ctx) error {
		cur, err := ctx.Read("balance")
		if err != nil {
			return err
		}
		bal := dec64(cur)
		amt := dec64(ctx.Arg())
		if bal < amt {
			return errInsufficient
		}
		return ctx.Write("balance", i64(bal-amt))
	})
	mustReg(account, "peek", func(ctx *node.Ctx) error {
		cur, err := ctx.Read("balance")
		if err != nil {
			return err
		}
		ctx.SetResult(cur)
		return nil
	})
	mustReg(account, "appendLog", func(ctx *node.Ctx) error {
		return ctx.WriteAt("log", int(dec64(ctx.Arg()))%200, []byte("entry"))
	})
	mustReg(account, "audit", func(ctx *node.Ctx) error {
		bal, err := ctx.Read("balance")
		if err != nil {
			return err
		}
		if _, err := ctx.Read("log"); err != nil {
			return err
		}
		ctx.SetResult(bal)
		return nil
	})
	mustReg(account, "sneakyLog", func(ctx *node.Ctx) error {
		// Undeclared write: the method only declares balance.
		return ctx.WriteAt("log", 0, []byte("sneak"))
	})
	mustReg(job, "twoDeposits", func(ctx *node.Ctx) error {
		a := ids.ObjectID(binary.LittleEndian.Uint64(ctx.Arg()))
		b := ids.ObjectID(binary.LittleEndian.Uint64(ctx.Arg()[8:]))
		if _, err := ctx.Invoke(a, "deposit", i64(10)); err != nil {
			return err
		}
		if _, err := ctx.Invoke(b, "deposit", i64(10)); err != nil {
			return err
		}
		return ctx.Write("note", i64(1))
	})
	mustReg(job, "readTwo", func(ctx *node.Ctx) error {
		a := ids.ObjectID(binary.LittleEndian.Uint64(ctx.Arg()))
		b := ids.ObjectID(binary.LittleEndian.Uint64(ctx.Arg()[8:]))
		ra, err := ctx.Invoke(a, "peek", nil)
		if err != nil {
			return err
		}
		rb, err := ctx.Invoke(b, "peek", nil)
		if err != nil {
			return err
		}
		ctx.SetResult(i64(dec64(ra) + dec64(rb)))
		return nil
	})
	mustReg(job, "depositAbortInner", func(ctx *node.Ctx) error {
		a := ids.ObjectID(binary.LittleEndian.Uint64(ctx.Arg()))
		b := ids.ObjectID(binary.LittleEndian.Uint64(ctx.Arg()[8:]))
		if _, err := ctx.Invoke(a, "deposit", i64(5)); err != nil {
			return err
		}
		// This withdraw overdraws and aborts; the parent survives it.
		if _, err := ctx.Invoke(b, "withdraw", i64(1_000_000)); err == nil {
			return errors.New("expected inner abort")
		}
		return ctx.Write("note", i64(2))
	})
	mustReg(job, "selfInvoke", func(ctx *node.Ctx) error {
		_, err := ctx.Invoke(ctx.Self(), "selfInvoke", ctx.Arg())
		return err
	})
	return c, account, job
}

func mustObject(t *testing.T, c *Cluster, class ids.ClassID, owner ids.NodeID) ids.ObjectID {
	t.Helper()
	obj, err := c.CreateObject(class, owner)
	if err != nil {
		t.Fatal(err)
	}
	return obj
}

func runAll(t *testing.T, c *Cluster) {
	t.Helper()
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	for _, r := range c.Results() {
		if r.Err != nil {
			t.Fatalf("root %s on %v failed: %v", r.Method, r.Obj, r.Err)
		}
	}
}

func TestSingleNodeDeposit(t *testing.T) {
	c, account, _ := testbed(t, Config{Nodes: 2})
	acct := mustObject(t, c, account.ID, 1)
	if err := c.Submit(0, 1, acct, "deposit", i64(42)); err != nil {
		t.Fatal(err)
	}
	runAll(t, c)
	if got := dec64(c.Results()[0].Out); got != 42 {
		t.Errorf("balance = %d, want 42", got)
	}
	cnt := c.Recorder().Counters()
	if cnt.Commits != 1 || cnt.Aborts != 0 {
		t.Errorf("counters = %+v", cnt)
	}
	if err := c.VerifyPageMapCoherence(); err != nil {
		t.Error(err)
	}
}

func TestCrossNodeDataMovement(t *testing.T) {
	for _, p := range core.AllWithRC() {
		t.Run(p.Name(), func(t *testing.T) {
			c, account, _ := testbed(t, Config{Nodes: 3, Protocol: p})
			acct := mustObject(t, c, account.ID, 1)
			// Writer at node 1, then reader at node 2 must see the deposit.
			if err := c.Submit(0, 1, acct, "deposit", i64(7)); err != nil {
				t.Fatal(err)
			}
			if err := c.Submit(1e9, 2, acct, "peek", nil); err != nil {
				t.Fatal(err)
			}
			runAll(t, c)
			peek := c.Results()[1]
			if peek.Method != "peek" {
				peek = c.Results()[0]
			}
			if got := dec64(peek.Out); got != 7 {
				t.Errorf("%s: remote peek = %d, want 7", p.Name(), got)
			}
			if err := c.VerifyPageMapCoherence(); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestNestedInvocationAndInheritance(t *testing.T) {
	c, account, job := testbed(t, Config{Nodes: 2})
	a := mustObject(t, c, account.ID, 1)
	b := mustObject(t, c, account.ID, 2)
	j := mustObject(t, c, job.ID, 1)
	if err := c.Submit(0, 1, j, "twoDeposits", objPair(a, b)); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(1e9, 2, a, "peek", nil); err != nil {
		t.Fatal(err)
	}
	runAll(t, c)
	var peek *Result
	for _, r := range c.Results() {
		if r.Method == "peek" {
			peek = r
		}
	}
	if got := dec64(peek.Out); got != 10 {
		t.Errorf("balance after nested deposits = %d, want 10", got)
	}
}

func TestInnerAbortSurvivedByParent(t *testing.T) {
	c, account, job := testbed(t, Config{Nodes: 2})
	a := mustObject(t, c, account.ID, 1)
	b := mustObject(t, c, account.ID, 1)
	j := mustObject(t, c, job.ID, 1)
	if err := c.Submit(0, 1, j, "depositAbortInner", objPair(a, b)); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(1e9, 1, b, "peek", nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(2e9, 1, a, "peek", nil); err != nil {
		t.Fatal(err)
	}
	runAll(t, c)
	rs := c.Results()
	// b's failed withdraw must have been rolled back; a's deposit kept.
	for _, r := range rs {
		if r.Method != "peek" {
			continue
		}
		want := int64(0)
		if r.Obj == a {
			want = 5
		}
		if got := dec64(r.Out); got != want {
			t.Errorf("peek(%v) = %d, want %d", r.Obj, got, want)
		}
	}
	if c.Recorder().Counters().Aborts != 0 {
		t.Error("inner abort must not count as a root abort")
	}
}

func TestRootAbortRollsBackEverything(t *testing.T) {
	c, account, _ := testbed(t, Config{Nodes: 2})
	a := mustObject(t, c, account.ID, 1)
	// Deposit 3, then a root withdraw that fails — balance must stay 3.
	if err := c.Submit(0, 1, a, "deposit", i64(3)); err != nil {
		t.Fatal(err)
	}
	env := c // run failing root manually to inspect the error
	if err := env.Submit(1e9, 2, a, "withdraw", i64(100)); err != nil {
		t.Fatal(err)
	}
	if err := env.Submit(2e9, 1, a, "peek", nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	var peek, withdraw *Result
	for _, r := range c.Results() {
		switch r.Method {
		case "peek":
			peek = r
		case "withdraw":
			withdraw = r
		}
	}
	if withdraw.Err == nil || !errors.Is(withdraw.Err, errInsufficient) {
		t.Errorf("withdraw err = %v", withdraw.Err)
	}
	if got := dec64(peek.Out); got != 3 {
		t.Errorf("balance = %d, want 3 (rollback)", got)
	}
	if c.Recorder().Counters().Aborts != 1 {
		t.Errorf("aborts = %d, want 1", c.Recorder().Counters().Aborts)
	}
	if err := c.VerifyPageMapCoherence(); err != nil {
		t.Error(err)
	}
}

func TestRecursiveInvocationPrecluded(t *testing.T) {
	c, _, job := testbed(t, Config{Nodes: 1})
	j := mustObject(t, c, job.ID, 1)
	if err := c.Submit(0, 1, j, "selfInvoke", nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	r := c.Results()[0]
	if r.Err == nil || !errors.Is(r.Err, o2pl.ErrRecursiveInvocation) {
		t.Errorf("selfInvoke err = %v, want ErrRecursiveInvocation", r.Err)
	}
}

func TestStrictUndeclaredAccessRejected(t *testing.T) {
	c, account, _ := testbed(t, Config{Nodes: 1})
	a := mustObject(t, c, account.ID, 1)
	if err := c.Submit(0, 1, a, "sneakyLog", nil); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	r := c.Results()[0]
	if r.Err == nil || !errors.Is(r.Err, node.ErrUndeclaredAccess) {
		t.Errorf("err = %v, want ErrUndeclaredAccess", r.Err)
	}
}

func TestLenientUndeclaredWriteAllowed(t *testing.T) {
	c, account, _ := testbed(t, Config{Nodes: 2, Lenient: true})
	a := mustObject(t, c, account.ID, 1)
	if err := c.Submit(0, 2, a, "sneakyLog", nil); err != nil {
		t.Fatal(err)
	}
	runAll(t, c)
	if err := c.VerifyPageMapCoherence(); err != nil {
		t.Error(err)
	}
}

func TestDeadlockResolvedByRetry(t *testing.T) {
	c, account, job := testbed(t, Config{Nodes: 2})
	a := mustObject(t, c, account.ID, 1)
	b := mustObject(t, c, account.ID, 2)
	j1 := mustObject(t, c, job.ID, 1)
	j2 := mustObject(t, c, job.ID, 2)
	// Family 1: deposit a then b. Family 2: deposit b then a, same instant.
	if err := c.Submit(0, 1, j1, "twoDeposits", objPair(a, b)); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(0, 2, j2, "twoDeposits", objPair(b, a)); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(1e10, 1, a, "peek", nil); err != nil {
		t.Fatal(err)
	}
	runAll(t, c)
	for _, r := range c.Results() {
		if r.Method == "peek" {
			if got := dec64(r.Out); got != 20 {
				t.Errorf("final balance = %d, want 20 (both roots committed)", got)
			}
		}
	}
	cnt := c.Recorder().Counters()
	if cnt.Commits != 3 {
		t.Errorf("commits = %d, want 3", cnt.Commits)
	}
	if err := c.VerifyPageMapCoherence(); err != nil {
		t.Error(err)
	}
}

func TestCrossFamilyReadSharing(t *testing.T) {
	c, account, job := testbed(t, Config{Nodes: 3})
	a := mustObject(t, c, account.ID, 1)
	b := mustObject(t, c, account.ID, 1)
	j2 := mustObject(t, c, job.ID, 2)
	j3 := mustObject(t, c, job.ID, 3)
	// Two reader families on different nodes at the same instant.
	if err := c.Submit(0, 2, j2, "readTwo", objPair(a, b)); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(0, 3, j3, "readTwo", objPair(a, b)); err != nil {
		t.Fatal(err)
	}
	runAll(t, c)
	for _, r := range c.Results() {
		if got := dec64(r.Out); got != 0 {
			t.Errorf("readTwo = %d, want 0", got)
		}
	}
}

func TestUpgradeReadThenWriteSameFamily(t *testing.T) {
	// A family whose first sub-transaction reads an object and whose second
	// writes it exercises the R→W upgrade path.
	c, err := NewCluster(Config{Nodes: 2, PageSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	account, err := schema.NewClassBuilder(1, "Acct").
		Attr("balance", 8).
		Method(schema.MethodSpec{Name: "peek", Reads: []string{"balance"}}).
		Method(schema.MethodSpec{Name: "deposit", Writes: []string{"balance"}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	driver, err := schema.NewClassBuilder(2, "Driver").
		Attr("x", 8).
		Method(schema.MethodSpec{Name: "peekThenDeposit", Writes: []string{"x"}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddClass(account); err != nil {
		t.Fatal(err)
	}
	if err := c.AddClass(driver); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterBody(account, "peek", func(ctx *node.Ctx) error {
		_, err := ctx.Read("balance")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterBody(account, "deposit", func(ctx *node.Ctx) error {
		cur, err := ctx.Read("balance")
		if err != nil {
			return err
		}
		return ctx.Write("balance", i64(dec64(cur)+dec64(ctx.Arg())))
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterBody(driver, "peekThenDeposit", func(ctx *node.Ctx) error {
		a := ids.ObjectID(binary.LittleEndian.Uint64(ctx.Arg()))
		if _, err := ctx.Invoke(a, "peek", nil); err != nil {
			return err
		}
		if _, err := ctx.Invoke(a, "deposit", i64(9)); err != nil {
			return err
		}
		return ctx.Write("x", i64(1))
	}); err != nil {
		t.Fatal(err)
	}
	acct := mustObject(t, c, account.ID, 1)
	d := mustObject(t, c, driver.ID, 2)
	arg := make([]byte, 8)
	binary.LittleEndian.PutUint64(arg, uint64(acct))
	if err := c.Submit(0, 2, d, "peekThenDeposit", arg); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(1e9, 1, acct, "deposit", i64(1)); err != nil {
		t.Fatal(err)
	}
	runAll(t, c)
	final, err := c.ObjectBytes(acct)
	if err != nil {
		t.Fatal(err)
	}
	if got := dec64(final[:8]); got != 10 {
		t.Errorf("final balance = %d, want 10", got)
	}
}

// TestProtocolEquivalence is invariant 2 of DESIGN.md: all four protocols
// produce identical final object state for the same deterministic workload.
func TestProtocolEquivalence(t *testing.T) {
	finals := make(map[string][][]byte)
	var names []string
	for _, p := range core.AllWithRC() {
		c, account, job := testbed(t, Config{Nodes: 4, Protocol: p})
		a := mustObject(t, c, account.ID, 1)
		b := mustObject(t, c, account.ID, 2)
		var jobs []ids.ObjectID
		for n := 1; n <= 4; n++ {
			jobs = append(jobs, mustObject(t, c, job.ID, ids.NodeID(n)))
		}
		for i := 0; i < 8; i++ {
			nd := ids.NodeID(i%4 + 1)
			if i%2 == 0 {
				if err := c.Submit(int64ToDur(i), nd, jobs[i%4], "twoDeposits", objPair(a, b)); err != nil {
					t.Fatal(err)
				}
			} else {
				if err := c.Submit(int64ToDur(i), nd, a, "appendLog", i64(int64(i*13))); err != nil {
					t.Fatal(err)
				}
			}
		}
		runAll(t, c)
		if err := c.VerifyPageMapCoherence(); err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		fa, err := c.ObjectBytes(a)
		if err != nil {
			t.Fatal(err)
		}
		fb, err := c.ObjectBytes(b)
		if err != nil {
			t.Fatal(err)
		}
		finals[p.Name()] = [][]byte{fa, fb}
		names = append(names, p.Name())
	}
	ref := finals[names[0]]
	for _, n := range names[1:] {
		for i := range ref {
			if !bytes.Equal(ref[i], finals[n][i]) {
				t.Errorf("final state of object %d differs between %s and %s", i, names[0], n)
			}
		}
	}
}

func int64ToDur(i int) time.Duration { return time.Duration(i) * time.Millisecond }

// TestByteOrderingAcrossProtocols is invariant 3: data bytes obey
// LOTEC ≤ OTEC ≤ COTEC on a transfer-heavy workload.
func TestByteOrderingAcrossProtocols(t *testing.T) {
	data := make(map[string]int64)
	for _, p := range core.All() {
		c, account, _ := testbed(t, Config{Nodes: 4, Protocol: p})
		a := mustObject(t, c, account.ID, 1)
		// Bounce the object between nodes: each hop updates only balance
		// (page 0 of 3), so prediction saves LOTEC the log pages.
		for i := 0; i < 12; i++ {
			nd := ids.NodeID(i%4 + 1)
			if err := c.Submit(int64ToDur(i)*1000, nd, a, "deposit", i64(1)); err != nil {
				t.Fatal(err)
			}
			if i%3 == 0 {
				if err := c.Submit(int64ToDur(i)*1000+500, nd, a, "appendLog", i64(int64(i))); err != nil {
					t.Fatal(err)
				}
			}
		}
		runAll(t, c)
		data[p.Name()] = c.Recorder().Totals().DataBytes
	}
	if !(data["LOTEC"] <= data["OTEC"] && data["OTEC"] <= data["COTEC"]) {
		t.Errorf("byte ordering violated: LOTEC=%d OTEC=%d COTEC=%d",
			data["LOTEC"], data["OTEC"], data["COTEC"])
	}
	if data["LOTEC"] == 0 {
		t.Error("no data moved; workload broken")
	}
}

// TestSerialEquivalence is invariant 1: the committed concurrent history
// matches a serial replay in commit order.
func TestSerialEquivalence(t *testing.T) {
	build := func() (*Cluster, ids.ObjectID, ids.ObjectID, []ids.ObjectID) {
		c, account, job := testbed(t, Config{Nodes: 3})
		a := mustObject(t, c, account.ID, 1)
		b := mustObject(t, c, account.ID, 2)
		var jobs []ids.ObjectID
		for n := 1; n <= 3; n++ {
			jobs = append(jobs, mustObject(t, c, job.ID, ids.NodeID(n)))
		}
		return c, a, b, jobs
	}
	// Concurrent run.
	c, a, b, jobs := build()
	for i := 0; i < 6; i++ {
		nd := ids.NodeID(i%3 + 1)
		if err := c.Submit(int64ToDur(i), nd, jobs[i%3], "twoDeposits", objPair(a, b)); err != nil {
			t.Fatal(err)
		}
	}
	runAll(t, c)
	concA, err := c.ObjectBytes(a)
	if err != nil {
		t.Fatal(err)
	}
	// Serial replay: same transactions strictly one at a time.
	s, sa, sb, sjobs := build()
	for i := 0; i < 6; i++ {
		nd := ids.NodeID(i%3 + 1)
		if err := s.Submit(int64ToDur(i)*1e6, nd, sjobs[i%3], "twoDeposits", objPair(sa, sb)); err != nil {
			t.Fatal(err)
		}
	}
	runAll(t, s)
	serA, err := s.ObjectBytes(sa)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(concA, serA) {
		t.Error("concurrent final state differs from serial replay")
	}
}

func TestLocalVsGlobalLockOps(t *testing.T) {
	c, account, job := testbed(t, Config{Nodes: 2})
	a := mustObject(t, c, account.ID, 1)
	b := mustObject(t, c, account.ID, 1)
	j := mustObject(t, c, job.ID, 1)
	if err := c.Submit(0, 1, j, "twoDeposits", objPair(a, b)); err != nil {
		t.Fatal(err)
	}
	runAll(t, c)
	cnt := c.Recorder().Counters()
	if cnt.GlobalLockOps == 0 {
		t.Error("expected global lock ops")
	}
}

func TestResultErrors(t *testing.T) {
	c, _, _ := testbed(t, Config{Nodes: 1})
	if err := c.Submit(0, 9, 0, "x", nil); err == nil {
		t.Error("unknown node should fail")
	}
	if err := c.Submit(0, 1, 999, "deposit", nil); err != nil {
		t.Fatal(err) // submit succeeds; the run fails
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if len(c.FailedResults()) != 1 {
		t.Errorf("failed results = %v", c.FailedResults())
	}
	var sample *Result
	for _, r := range c.Results() {
		sample = r
	}
	if sample.Err == nil {
		t.Error("unknown object root should fail")
	}
	_ = fmt.Sprintf("%v", sample)
}
