package sim

import (
	"reflect"
	"testing"

	"lotec/internal/core"
	"lotec/internal/ids"
	"lotec/internal/workload"
)

// TestUniformPresetMatchesLegacyDriver is the compatibility contract of the
// spec compiler (acceptance criterion): compiling the "uniform" preset must
// reproduce the pre-spec uniform random driver's traffic byte-for-byte —
// identical schedule in, identical message trace out.
func TestUniformPresetMatchesLegacyDriver(t *testing.T) {
	spec, ok := workload.Preset("uniform")
	if !ok {
		t.Fatal("uniform preset missing")
	}
	compiled, err := workload.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := GenerateWorkload(WorkloadConfig{Seed: spec.Seed})
	if err != nil {
		t.Fatal(err)
	}

	// The schedules must be structurally identical...
	if !reflect.DeepEqual(compiled.Roots, legacy.Roots) {
		t.Fatal("uniform preset schedule differs from the legacy driver")
	}
	if !reflect.DeepEqual(compiled.Objects, legacy.Objects) {
		t.Fatal("uniform preset object population differs from the legacy driver")
	}

	// ...and so must the executed message traces, byte for byte.
	run := func(w *Workload) traceFingerprint {
		c, _, err := w.Execute(Config{Protocol: core.LOTEC})
		if err != nil {
			t.Fatal(err)
		}
		fp, gather := fingerprintCluster(c)
		fp.Fetch.Gather = gather.Gather
		return fp
	}
	a := run(WrapWorkload(compiled))
	b := run(legacy)
	if len(a.Trace) != len(b.Trace) {
		t.Fatalf("trace length diverged: %d vs %d", len(a.Trace), len(b.Trace))
	}
	for i := range a.Trace {
		if !reflect.DeepEqual(a.Trace[i], b.Trace[i]) {
			t.Fatalf("trace record %d diverged:\n preset %+v\n legacy %+v", i, a.Trace[i], b.Trace[i])
		}
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fingerprints diverged:\n preset %+v\n legacy %+v", a, b)
	}
}

// TestSpecWorkloadsExecute runs every non-legacy preset end to end on the
// simulator: all roots report, injected aborts match the oracle, state is
// coherent.
func TestSpecWorkloadsExecute(t *testing.T) {
	for _, name := range []string{"zipf-hot", "diurnal", "write-heavy"} {
		name := name
		t.Run(name, func(t *testing.T) {
			spec, ok := workload.Preset(name)
			if !ok {
				t.Fatalf("preset %q missing", name)
			}
			w, err := workload.Compile(spec)
			if err != nil {
				t.Fatal(err)
			}
			c, _, err := WrapWorkload(w).Execute(Config{Protocol: core.LOTEC})
			if err != nil {
				t.Fatal(err)
			}
			results := c.Results()
			if len(results) != len(w.Roots) {
				t.Fatalf("%d roots, %d results", len(w.Roots), len(results))
			}
			for _, r := range results {
				idx := r.Tag.(int)
				if want := w.Roots[idx].Call.FailsOut(); want != (r.Err != nil) {
					t.Errorf("root %d outcome mismatch: want fail=%v, err=%v", idx, want, r.Err)
				}
				if r.Done < r.At {
					t.Errorf("root %d finished at %v before arrival %v", idx, r.Done, r.At)
				}
			}
			if err := c.VerifyPageMapCoherence(); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestDedicatedDirectoryCluster checks the TCP-shaped topology: the GDO on
// its own (N+1)-th simulated node, every directory op a real wire round
// trip. Runs must stay correct and directory traffic must actually hit the
// dedicated node.
func TestDedicatedDirectoryCluster(t *testing.T) {
	w, err := GenerateWorkload(smallWorkload(13))
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := w.Execute(Config{Protocol: core.LOTEC, DedicatedDirectory: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range c.Results() {
		if r.Err != nil {
			t.Fatalf("root failed under dedicated directory: %v", r.Err)
		}
	}
	if err := c.VerifyPageMapCoherence(); err != nil {
		t.Error(err)
	}
	dirNode := ids.NodeID(w.Cfg.Nodes + 1)
	toDir, fromDir, between := 0, 0, 0
	for _, m := range c.Recorder().Trace() {
		switch {
		case m.To == dirNode:
			toDir++
		case m.From == dirNode:
			fromDir++
		default:
			between++
		}
	}
	if toDir == 0 || fromDir == 0 {
		t.Errorf("no directory traffic on the dedicated node (to=%d from=%d)", toDir, fromDir)
	}
	// Data still moves site-to-site, not through the directory.
	if between == 0 {
		t.Error("no site-to-site traffic recorded")
	}

	// The same workload on the co-located layout must commit the same
	// roots (the topology changes message routing, not outcomes).
	c2, _, err := w.Execute(Config{Protocol: core.LOTEC})
	if err != nil {
		t.Fatal(err)
	}
	if len(c2.Results()) != len(c.Results()) {
		t.Errorf("dedicated vs co-located result counts differ: %d vs %d",
			len(c.Results()), len(c2.Results()))
	}
}
