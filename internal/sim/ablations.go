package sim

import (
	"fmt"
	"strings"
	"time"

	"lotec/internal/core"
	"lotec/internal/fault"
)

// Ablations for the design choices DESIGN.md calls out. Each runs scaled
// workloads (smaller than the figures) and renders a table.

// PredictionWidthAblation measures how LOTEC's advantage erodes as the
// compiler's declared access sets widen toward the whole object: at the
// limit every method "may access" every page and LOTEC degenerates to OTEC
// (§3.5's conservatism/precision trade-off).
func PredictionWidthAblation() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: prediction width (LOTEC consistency bytes vs declared-set widening)\n")
	fmt.Fprintf(&b, "%-8s%14s%14s%12s\n", "Widen", "LOTEC bytes", "OTEC bytes", "L/O ratio")
	for _, widen := range []int{0, 1, 2, 4, 8} {
		cfg := largeHigh()
		cfg.Transactions = 80
		cfg.PredictionWiden = widen
		w, err := GenerateWorkload(cfg)
		if err != nil {
			return "", err
		}
		var lotecB, otecB int64
		for _, p := range []core.Protocol{core.LOTEC, core.OTEC} {
			c, _, err := w.Execute(Config{Protocol: p})
			if err != nil {
				return "", fmt.Errorf("widen %d (%s): %w", widen, p.Name(), err)
			}
			if p == core.LOTEC {
				lotecB = c.Recorder().Totals().DataBytes
			} else {
				otecB = c.Recorder().Totals().DataBytes
			}
		}
		fmt.Fprintf(&b, "%-8d%14d%14d%12.2f\n", widen, lotecB, otecB, float64(lotecB)/float64(otecB))
	}
	return b.String(), nil
}

// GranularityAblation reproduces the §5.1 discussion: LOTEC has "a natural
// preference for coarse-grained concurrency since the larger objects are,
// the fewer lock operations are necessary". Population layouts with the
// same total page count but different object sizes are compared on global
// lock operations per committed root.
func GranularityAblation() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: object granularity (§5.1) — same data, different object sizes\n")
	fmt.Fprintf(&b, "%-10s%-10s%14s%14s%14s\n", "Objects", "Pages", "GlobalLock", "Locks/commit", "LOTEC bytes")
	for _, shape := range []struct{ objects, minP, maxP int }{
		{80, 1, 2},
		{40, 2, 4},
		{20, 5, 7},
		{10, 11, 13},
	} {
		cfg := WorkloadConfig{
			Seed: 77, Objects: shape.objects, MinPages: shape.minP, MaxPages: shape.maxP,
			Transactions: 100, Nodes: 8,
			HotFraction: 0.25, HotWeight: 0.85,
			ArrivalSpacing: 200 * time.Microsecond,
		}
		w, err := GenerateWorkload(cfg)
		if err != nil {
			return "", err
		}
		c, _, err := w.Execute(Config{Protocol: core.LOTEC})
		if err != nil {
			return "", fmt.Errorf("granularity %dx%d-%d: %w", shape.objects, shape.minP, shape.maxP, err)
		}
		cnt := c.Recorder().Counters()
		perCommit := float64(cnt.GlobalLockOps) / float64(cnt.Commits)
		fmt.Fprintf(&b, "%-10d%d-%-8d%14d%14.2f%14d\n",
			shape.objects, shape.minP, shape.maxP, cnt.GlobalLockOps, perCommit,
			c.Recorder().Totals().DataBytes)
	}
	return b.String(), nil
}

// DemandFetchAblation measures the §4.3 fallback: as prediction accuracy
// degrades (methods write undeclared segments with growing probability,
// lenient mode), LOTEC pays demand fetches.
func DemandFetchAblation() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: demand fetches under imperfect prediction (lenient LOTEC)\n")
	fmt.Fprintf(&b, "%-12s%10s%14s%10s\n", "Mispredict", "Demand", "Bytes", "Msgs")
	for _, prob := range []float64{0, 0.1, 0.3, 0.6} {
		cfg := mediumHigh()
		cfg.Transactions = 80
		cfg.MispredictProb = prob
		w, err := GenerateWorkload(cfg)
		if err != nil {
			return "", err
		}
		c, _, err := w.Execute(Config{Protocol: core.LOTEC, Lenient: true})
		if err != nil {
			return "", fmt.Errorf("mispredict %.1f: %w", prob, err)
		}
		cnt := c.Recorder().Counters()
		fmt.Fprintf(&b, "%-12.1f%10d%14d%10d\n",
			prob, cnt.DemandFetches, c.Recorder().Totals().DataBytes, c.Recorder().MsgCount())
	}
	return b.String(), nil
}

// DisorderAblation measures the cost of abandoning ordered lock
// acquisition: deadlock aborts and retries rise with the probability that
// an invocation breaks the canonical object order (the deadlock detector
// and wound-wait retry machinery absorb them).
func DisorderAblation() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: deadlock cost vs acquisition disorder\n")
	fmt.Fprintf(&b, "%-10s%10s%10s%10s%10s\n", "Disorder", "Aborts", "Retries", "Commits", "Failures")
	for _, prob := range []float64{0, 0.05, 0.15, 0.3} {
		cfg := WorkloadConfig{
			Seed: 99, Objects: 30, MinPages: 1, MaxPages: 4,
			Transactions: 80, Nodes: 8,
			HotFraction: 0.4, HotWeight: 0.6,
			ArrivalSpacing: 300 * time.Microsecond,
			DisorderProb:   prob,
		}
		w, err := GenerateWorkload(cfg)
		if err != nil {
			return "", err
		}
		c, _, err := w.Execute(Config{Protocol: core.LOTEC, MaxRetries: 100})
		if err != nil {
			return "", fmt.Errorf("disorder %.2f: %w", prob, err)
		}
		cnt := c.Recorder().Counters()
		fmt.Fprintf(&b, "%-10.2f%10d%10d%10d%10d\n",
			prob, cnt.Aborts, cnt.Retries, cnt.Commits, len(c.FailedResults()))
	}
	return b.String(), nil
}

// FaultSweepAblation measures what a lossy network costs each protocol:
// the retry layer masks dropped messages (every workload still commits
// exactly as many roots — the chaos harness asserts that invariant), so
// loss shows up as retransmission work, not lost updates. Rows sweep the
// drop probability applied to retriable RPC traffic.
func FaultSweepAblation() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: retry cost vs message drop probability (retriable RPC legs)\n")
	fmt.Fprintf(&b, "%-10s%-8s%10s%10s%10s%10s%10s\n",
		"Protocol", "Drop", "Commits", "Failures", "Drops", "Retries", "Timeouts")
	for _, p := range core.All() {
		for _, prob := range []float64{0, 0.02, 0.08, 0.15} {
			cfg := WorkloadConfig{
				Seed: 31, Objects: 24, MinPages: 1, MaxPages: 4,
				Transactions: 60, Nodes: 6,
				HotFraction: 0.3, HotWeight: 0.7,
				ArrivalSpacing: 300 * time.Microsecond,
			}
			w, err := GenerateWorkload(cfg)
			if err != nil {
				return "", err
			}
			var faults *fault.Plan
			if prob > 0 {
				faults = &fault.Plan{Seed: 7, Rules: []fault.Rule{
					{Op: fault.OpDrop, Prob: prob, Kinds: fault.RetriableKinds},
				}}
			}
			c, _, err := w.Execute(Config{Protocol: p, Faults: faults})
			if err != nil {
				return "", fmt.Errorf("%s drop %.2f: %w", p.Name(), prob, err)
			}
			cnt := c.Recorder().Counters()
			fmt.Fprintf(&b, "%-10s%-8.2f%10d%10d%10d%10d%10d\n",
				p.Name(), prob, cnt.Commits, len(c.FailedResults()),
				cnt.MsgDrops, cnt.CallRetries, cnt.CallTimeouts)
		}
	}
	return b.String(), nil
}

// DeltaAblation sweeps write fraction × write size and reports what
// sub-page delta transfers save LOTEC: with page-sized writes every delta
// falls back to a full page (the encoded delta never beats it), while
// field-sized writes shrink the data plane by orders of magnitude. The
// delta-off column doubles as the escape-hatch check — its byte totals are
// the pre-delta data plane.
func DeltaAblation() (string, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: sub-page delta transfers (LOTEC, write-fraction × write-size sweep)\n")
	fmt.Fprintf(&b, "%-8s%-10s%14s%14s%12s%12s%10s%8s\n",
		"WriteF", "WriteB", "off bytes", "on bytes", "delta B", "saved B", "fallback", "ratio")
	for _, wf := range []float64{0.3, 0.7} {
		for _, wb := range []int{8, 64, 512, 0} {
			cfg := mediumHigh()
			cfg.Transactions = 80
			cfg.WriteFraction = wf
			cfg.WriteBytes = wb
			w, err := GenerateWorkload(cfg)
			if err != nil {
				return "", err
			}
			var offB, onB, deltaB, savedB, fallbacks int64
			for _, off := range []bool{true, false} {
				c, _, err := w.Execute(Config{Protocol: core.LOTEC, DeltaOff: off})
				if err != nil {
					return "", fmt.Errorf("wf %.1f wb %d (delta off=%v): %w", wf, wb, off, err)
				}
				cnt := c.Recorder().Counters()
				if off {
					offB = c.Recorder().Totals().DataBytes
				} else {
					onB = c.Recorder().Totals().DataBytes
					deltaB, savedB, fallbacks = cnt.DeltaBytes, cnt.DeltaSavedBytes, cnt.DeltaFallbacks
				}
			}
			label := "page"
			if wb > 0 {
				label = fmt.Sprintf("%d", wb)
			}
			fmt.Fprintf(&b, "%-8.1f%-10s%14d%14d%12d%12d%10d%8.2f\n",
				wf, label, offB, onB, deltaB, savedB, fallbacks, float64(onB)/float64(offB))
		}
	}
	return b.String(), nil
}

// LockingOverheadReport renders the §5.1 local-vs-global lock operation
// split for one figure's runs.
func LockingOverheadReport(res *FigureResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Locking overhead (§5.1) — figure %s\n", res.Spec.ID)
	fmt.Fprintf(&b, "%-10s%12s%12s%16s\n", "Protocol", "LocalLock", "GlobalLock", "Global/commit")
	for _, run := range res.Runs {
		c := run.Counters
		fmt.Fprintf(&b, "%-10s%12d%12d%16.2f\n",
			run.Protocol, c.LocalLockOps, c.GlobalLockOps,
			float64(c.GlobalLockOps)/float64(c.Commits))
	}
	return b.String()
}
