package sim

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"lotec/internal/core"
	"lotec/internal/stats"
)

func shardWorkload() WorkloadConfig {
	cfg := mediumHigh()
	cfg.Transactions = 40
	cfg.Objects = 12
	return cfg
}

func executeShards(t *testing.T, p core.Protocol, shards int) *Cluster {
	t.Helper()
	w, err := GenerateWorkload(shardWorkload())
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := w.Execute(Config{Protocol: p, DirectoryShards: shards})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func sumShards(per map[int]stats.ObjStats) stats.ObjStats {
	var s stats.ObjStats
	for _, v := range per {
		s.Msgs += v.Msgs
		s.DataBytes += v.DataBytes
		s.ControlBytes += v.ControlBytes
	}
	return s
}

// TestShardedRunEquivalence: partitioning the directory must not change what
// the cluster computes or what it costs — same results, same commit order,
// same message totals, same per-object attribution, byte for byte.
func TestShardedRunEquivalence(t *testing.T) {
	one := executeShards(t, core.LOTEC, 1)
	four := executeShards(t, core.LOTEC, 4)

	r1, r4 := one.Results(), four.Results()
	if len(r1) != len(r4) {
		t.Fatalf("result counts differ: %d vs %d", len(r1), len(r4))
	}
	for i := range r1 {
		a, b := r1[i], r4[i]
		if a.Node != b.Node || a.Obj != b.Obj || a.Method != b.Method ||
			!bytes.Equal(a.Out, b.Out) || (a.Err == nil) != (b.Err == nil) ||
			a.CommitSeq != b.CommitSeq {
			t.Errorf("result %d diverges:\n 1 shard %+v\n4 shards %+v", i, a, b)
		}
	}

	if got, want := four.Recorder().Totals(), one.Recorder().Totals(); !reflect.DeepEqual(got, want) {
		t.Errorf("traffic totals diverge: 4 shards %+v, 1 shard %+v", got, want)
	}
	if got, want := four.Recorder().Counters(), one.Recorder().Counters(); got != want {
		t.Errorf("counters diverge: 4 shards %+v, 1 shard %+v", got, want)
	}
	if got, want := four.Recorder().PerObject(), one.Recorder().PerObject(); !reflect.DeepEqual(got, want) {
		t.Errorf("per-object stats diverge:\n4 shards %+v\n 1 shard %+v", got, want)
	}

	// The directory-addressed slice of the traffic is the same size either
	// way; sharding only changes which partition each message names.
	p1, p4 := one.Recorder().PerShard(), four.Recorder().PerShard()
	if len(p1) != 1 {
		t.Errorf("1-shard run names %d shards, want 1", len(p1))
	}
	if len(p4) != 4 {
		t.Errorf("4-shard run names %d shards, want 4 (12 objects cover every partition)", len(p4))
	}
	if got, want := sumShards(p4), sumShards(p1); !reflect.DeepEqual(got, want) {
		t.Errorf("directory traffic diverges: 4 shards %+v, 1 shard %+v", got, want)
	}
	if sumShards(p4).Msgs == 0 {
		t.Error("no directory traffic attributed to any shard")
	}
}

// TestShardedByteOrdering: the paper's central figure shape — LOTEC moves no
// more bytes than OTEC, which moves no more than COTEC — must survive
// directory partitioning.
func TestShardedByteOrdering(t *testing.T) {
	get := func(p core.Protocol) int64 {
		c := executeShards(t, p, 4)
		for i, r := range c.Results() {
			if r.Err != nil {
				t.Fatalf("%s root %d failed: %v", p.Name(), i, r.Err)
			}
		}
		return c.Recorder().Totals().DataBytes
	}
	cot, ot, lot := get(core.COTEC), get(core.OTEC), get(core.LOTEC)
	if !(lot <= ot && ot <= cot) {
		t.Errorf("byte ordering violated under 4 shards: COTEC=%d OTEC=%d LOTEC=%d", cot, ot, lot)
	}
	if lot == 0 {
		t.Error("no data moved")
	}
}

// TestShardedDisorderedWorkload: with lock-order discipline broken often
// enough to deadlock, a sharded cluster must still drive every root to a
// commit (victims retry) and keep the page map coherent.
func TestShardedDisorderedWorkload(t *testing.T) {
	cfg := WorkloadConfig{
		Seed: 99, Objects: 30, MinPages: 1, MaxPages: 4,
		Transactions: 80, Nodes: 8,
		HotFraction: 0.4, HotWeight: 0.6,
		ArrivalSpacing: 300 * time.Microsecond,
		DisorderProb:   0.3,
	}
	w, err := GenerateWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := w.Execute(Config{Protocol: core.LOTEC, MaxRetries: 100, DirectoryShards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range c.Results() {
		if r.Err != nil {
			t.Errorf("root %d failed: %v", i, r.Err)
		}
	}
	if c.Recorder().Counters().Aborts == 0 {
		t.Error("disordered workload never deadlocked; the detector went unexercised")
	}
	if err := c.VerifyPageMapCoherence(); err != nil {
		t.Errorf("page map incoherent: %v", err)
	}
}
