package sim

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"lotec/internal/core"
)

func TestFaultInjectionOutcomesMatchPrediction(t *testing.T) {
	cfg := smallWorkload(31)
	cfg.AbortProb = 0.2
	cfg.Transactions = 60
	w, err := GenerateWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := w.Execute(Config{Protocol: core.LOTEC})
	if err != nil {
		t.Fatal(err)
	}
	var fails, commits int
	for _, r := range c.Results() {
		idx := r.Tag.(int)
		want := w.Roots[idx].Call.FailsOut()
		if want && r.Err == nil {
			t.Errorf("root %d should have failed", idx)
		}
		if !want && r.Err != nil {
			t.Errorf("root %d failed unexpectedly: %v", idx, r.Err)
		}
		if r.Err != nil {
			if !errors.Is(r.Err, errInjectedFailure) {
				t.Errorf("root %d failed with wrong error: %v", idx, r.Err)
			}
			fails++
		} else {
			commits++
		}
	}
	if fails == 0 {
		t.Fatal("fault injection produced no failures; test is vacuous")
	}
	if commits == 0 {
		t.Fatal("every root failed; contention test is vacuous")
	}
	cnt := c.Recorder().Counters()
	if cnt.Commits != int64(commits) || cnt.Aborts < int64(fails) {
		t.Errorf("counters %+v vs observed commits=%d fails=%d", cnt, commits, fails)
	}
	if err := c.VerifyPageMapCoherence(); err != nil {
		t.Error(err)
	}
}

// TestFaultInjectionSerialEquivalence: with aborts injected at every level,
// the committed final state still equals a serial replay in commit order
// (failed roots leave no trace in either run).
func TestFaultInjectionSerialEquivalence(t *testing.T) {
	cfg := smallWorkload(37)
	cfg.AbortProb = 0.25
	cfg.Transactions = 50
	w, err := GenerateWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, objs, err := w.Execute(Config{Protocol: core.LOTEC})
	if err != nil {
		t.Fatal(err)
	}

	s, err := NewCluster(Config{Protocol: core.LOTEC, Nodes: w.Cfg.Nodes, PageSize: w.Cfg.PageSize})
	if err != nil {
		t.Fatal(err)
	}
	sObjs, err := w.Install(s)
	if err != nil {
		t.Fatal(err)
	}
	var at time.Duration
	for _, r := range c.ResultsByCommitOrder() {
		if r.Err != nil {
			continue // aborted roots left no effects to replay
		}
		call := w.Roots[r.Tag.(int)].Call
		at += 50 * time.Millisecond
		if err := s.Submit(at, r.Node, sObjs[call.ObjIndex], call.Method, encodeCall(sObjs, call)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, o := range objs {
		concurrent, err := c.ObjectBytes(o)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := s.ObjectBytes(sObjs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(concurrent, serial) {
			t.Errorf("object %v: committed state differs from serial replay", o)
		}
	}
}

// TestTolerateAbsorbsGrandchildFailure: a Tolerate'd child whose own child
// fails untolerated aborts out of the child frame, yet the root survives —
// the Tolerate flag absorbs the whole failing subtree, not just failures
// originating in the child's own body. The absorbed subtree must leave no
// trace: final object state equals a run where the subtree never existed.
func TestTolerateAbsorbsGrandchildFailure(t *testing.T) {
	cfg := smallWorkload(53)
	cfg.Transactions = 1
	build := func(withChild bool) *Workload {
		w, err := GenerateWorkload(cfg)
		if err != nil {
			t.Fatal(err)
		}
		root := Call{ObjIndex: 0, Method: "w0", Seed: 1001}
		if withChild {
			grand := Call{ObjIndex: 2, Method: "w1", Seed: 1003, Fail: true}
			child := Call{ObjIndex: 1, Method: "w0", Seed: 1002, Tolerate: true, Children: []Call{grand}}
			root.Children = []Call{child}
		}
		w.Roots = []RootSpec{{At: time.Millisecond, Node: 1, Call: root}}
		return w
	}

	faulty := build(true)
	if !faulty.Roots[0].Call.Children[0].FailsOut() {
		t.Fatal("oracle: a child with an untolerated failing grandchild must fail out")
	}
	if faulty.Roots[0].Call.FailsOut() {
		t.Fatal("oracle: a root whose only failing child is Tolerate'd must survive")
	}

	for _, p := range core.AllWithRC() {
		c, objs, err := faulty.Execute(Config{Protocol: p})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if r := c.Results()[0]; r.Err != nil {
			t.Fatalf("%s: root should tolerate the subtree failure, got %v", p.Name(), r.Err)
		}
		control, ctlObjs, err := build(false).Execute(Config{Protocol: p})
		if err != nil {
			t.Fatalf("%s control: %v", p.Name(), err)
		}
		for i := range objs {
			got, err := c.ObjectBytes(objs[i])
			if err != nil {
				t.Fatal(err)
			}
			want, err := control.ObjectBytes(ctlObjs[i])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s: object %d differs from childless control run — absorbed subtree left a trace", p.Name(), i)
			}
		}
	}
}

// TestFaultInjectionAllProtocols: rollback correctness is protocol-
// independent.
func TestFaultInjectionAllProtocols(t *testing.T) {
	cfg := smallWorkload(41)
	cfg.AbortProb = 0.3
	cfg.Transactions = 30
	w, err := GenerateWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range core.AllWithRC() {
		c, _, err := w.Execute(Config{Protocol: p})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		for _, r := range c.Results() {
			idx := r.Tag.(int)
			if want := w.Roots[idx].Call.FailsOut(); want != (r.Err != nil) {
				t.Errorf("%s: root %d outcome mismatch (want fail=%v, err=%v)",
					p.Name(), idx, want, r.Err)
			}
		}
		if err := c.VerifyPageMapCoherence(); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
}
