package sim

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"lotec/internal/core"
)

// failsOut predicts whether a generated call tree aborts its root: its own
// injected failure, or an untolerated child failure, propagates.
func failsOut(c Call) bool {
	for _, ch := range c.Children {
		if failsOut(ch) && !ch.Tolerate {
			return true
		}
	}
	return c.Fail
}

func TestFaultInjectionOutcomesMatchPrediction(t *testing.T) {
	cfg := smallWorkload(31)
	cfg.AbortProb = 0.2
	cfg.Transactions = 60
	w, err := GenerateWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := w.Execute(Config{Protocol: core.LOTEC})
	if err != nil {
		t.Fatal(err)
	}
	var fails, commits int
	for _, r := range c.Results() {
		idx := r.Tag.(int)
		want := failsOut(w.Roots[idx].Call)
		if want && r.Err == nil {
			t.Errorf("root %d should have failed", idx)
		}
		if !want && r.Err != nil {
			t.Errorf("root %d failed unexpectedly: %v", idx, r.Err)
		}
		if r.Err != nil {
			if !errors.Is(r.Err, errInjectedFailure) {
				t.Errorf("root %d failed with wrong error: %v", idx, r.Err)
			}
			fails++
		} else {
			commits++
		}
	}
	if fails == 0 {
		t.Fatal("fault injection produced no failures; test is vacuous")
	}
	if commits == 0 {
		t.Fatal("every root failed; contention test is vacuous")
	}
	cnt := c.Recorder().Counters()
	if cnt.Commits != int64(commits) || cnt.Aborts < int64(fails) {
		t.Errorf("counters %+v vs observed commits=%d fails=%d", cnt, commits, fails)
	}
	if err := c.VerifyPageMapCoherence(); err != nil {
		t.Error(err)
	}
}

// TestFaultInjectionSerialEquivalence: with aborts injected at every level,
// the committed final state still equals a serial replay in commit order
// (failed roots leave no trace in either run).
func TestFaultInjectionSerialEquivalence(t *testing.T) {
	cfg := smallWorkload(37)
	cfg.AbortProb = 0.25
	cfg.Transactions = 50
	w, err := GenerateWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, objs, err := w.Execute(Config{Protocol: core.LOTEC})
	if err != nil {
		t.Fatal(err)
	}

	s, err := NewCluster(Config{Protocol: core.LOTEC, Nodes: w.Cfg.Nodes, PageSize: w.Cfg.PageSize})
	if err != nil {
		t.Fatal(err)
	}
	sObjs, err := w.Install(s)
	if err != nil {
		t.Fatal(err)
	}
	var at time.Duration
	for _, r := range c.ResultsByCommitOrder() {
		if r.Err != nil {
			continue // aborted roots left no effects to replay
		}
		call := w.Roots[r.Tag.(int)].Call
		at += 50 * time.Millisecond
		if err := s.Submit(at, r.Node, sObjs[call.ObjIndex], call.Method, encodeCall(sObjs, call)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for i, o := range objs {
		concurrent, err := c.ObjectBytes(o)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := s.ObjectBytes(sObjs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(concurrent, serial) {
			t.Errorf("object %v: committed state differs from serial replay", o)
		}
	}
}

// TestFaultInjectionAllProtocols: rollback correctness is protocol-
// independent.
func TestFaultInjectionAllProtocols(t *testing.T) {
	cfg := smallWorkload(41)
	cfg.AbortProb = 0.3
	cfg.Transactions = 30
	w, err := GenerateWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range core.AllWithRC() {
		c, _, err := w.Execute(Config{Protocol: p})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		for _, r := range c.Results() {
			idx := r.Tag.(int)
			if want := failsOut(w.Roots[idx].Call); want != (r.Err != nil) {
				t.Errorf("%s: root %d outcome mismatch (want fail=%v, err=%v)",
					p.Name(), idx, want, r.Err)
			}
		}
		if err := c.VerifyPageMapCoherence(); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
}
