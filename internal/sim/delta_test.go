package sim

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
	"time"

	"lotec/internal/core"
	"lotec/internal/ids"
)

// deltaWorkload is mediumHigh with field-sized writes: every declared write
// touches only the first 64 bytes of its attribute, so sub-page deltas
// actually flow (whole-attribute writes always lose to the full page).
func deltaWorkload() WorkloadConfig {
	cfg := mediumHigh()
	cfg.Transactions = 80
	cfg.WriteBytes = 64
	return cfg
}

// TestDeltaTraceConcurrencyEquivalence extends the FetchConcurrency
// invariant to the delta path: with deltas flowing (small writes, delta
// counters non-zero), every fingerprint component must still be identical
// at FetchConcurrency 1 and 8 — including the delta counters themselves and
// the per-page fallback refetches a base mismatch triggers.
func TestDeltaTraceConcurrencyEquivalence(t *testing.T) {
	for _, proto := range []core.Protocol{core.LOTEC, core.RC} {
		proto := proto
		t.Run(proto.Name(), func(t *testing.T) {
			var base traceFingerprint
			for i, conc := range []int{1, 8} {
				w, err := GenerateWorkload(deltaWorkload())
				if err != nil {
					t.Fatalf("generate: %v", err)
				}
				c, _, execErr := w.Execute(Config{Protocol: proto, FetchConcurrency: conc})
				if execErr != nil {
					t.Fatalf("execute conc=%d: %v", conc, execErr)
				}
				fp, _ := fingerprintCluster(c)
				if fp.Counters.DeltaBytes == 0 || fp.Counters.DeltaSavedBytes == 0 {
					t.Fatalf("conc=%d: no deltas flowed; invariant vacuous (%+v)", conc, fp.Counters)
				}
				if i == 0 {
					base = fp
					continue
				}
				if !reflect.DeepEqual(fp.Counters, base.Counters) {
					t.Errorf("conc=%d: counters diverge with deltas on:\n got %+v\nwant %+v",
						conc, fp.Counters, base.Counters)
				}
				if !reflect.DeepEqual(fp.Totals, base.Totals) {
					t.Errorf("conc=%d: totals diverge with deltas on: %+v != %+v",
						conc, fp.Totals, base.Totals)
				}
				if len(fp.Trace) != len(base.Trace) {
					t.Fatalf("conc=%d: trace length %d != %d", conc, len(fp.Trace), len(base.Trace))
				}
				for j := range fp.Trace {
					if !reflect.DeepEqual(fp.Trace[j], base.Trace[j]) {
						t.Fatalf("conc=%d: trace record %d diverges:\n got %+v\nwant %+v",
							conc, j, fp.Trace[j], base.Trace[j])
					}
				}
			}
		})
	}
}

// assertSerialReplayEquivalent replays the run's committed roots in commit
// order on a fresh fault-free cluster and asserts byte-identical object
// state — the same oracle the chaos harness uses. Any delta mis-apply
// (stale base, double patch, lost run) shows up as a byte mismatch here.
func assertSerialReplayEquivalent(t *testing.T, w *Workload, c *Cluster, objs []ids.ObjectID, cfg Config) {
	t.Helper()
	s, err := NewCluster(Config{Protocol: cfg.Protocol, Nodes: w.Cfg.Nodes, PageSize: w.Cfg.PageSize})
	if err != nil {
		t.Fatalf("replay cluster: %v", err)
	}
	sObjs, err := w.Install(s)
	if err != nil {
		t.Fatalf("replay install: %v", err)
	}
	var at time.Duration
	for _, r := range c.ResultsByCommitOrder() {
		if r.Err != nil {
			continue
		}
		call := w.Roots[r.Tag.(int)].Call
		at += 50 * time.Millisecond
		if err := s.Submit(at, r.Node, sObjs[call.ObjIndex], call.Method, encodeCall(sObjs, call)); err != nil {
			t.Fatalf("replay submit: %v", err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatalf("replay run: %v", err)
	}
	for i, o := range objs {
		got, err := c.ObjectBytes(o)
		if err != nil {
			t.Fatalf("object bytes: %v", err)
		}
		want, err := s.ObjectBytes(sObjs[i])
		if err != nil {
			t.Fatalf("replay object bytes: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("object %d: committed state differs from fault-free serial replay", i)
		}
	}
}

// TestDeltaOnOffStateEquivalence is the escape-hatch contract: -delta=off
// must change only how bytes move, never break what commits. Deltas shrink
// transfers, which shifts the modeled timing and hence which serializable
// commit order wins under contention — so the oracle is not on-state ==
// off-state but that each run's committed state equals its own fault-free
// serial replay in commit order. On top of that: the off run must report
// zero delta activity, the commit/failure outcomes (oracle-driven) must
// agree, and for the delta-ineligible baseline (COTEC) the two runs must be
// byte-for-byte identical — DeltaOff touches nothing COTEC does.
func TestDeltaOnOffStateEquivalence(t *testing.T) {
	for _, proto := range core.AllWithRC() {
		proto := proto
		t.Run(proto.Name(), func(t *testing.T) {
			run := func(off bool) traceFingerprint {
				w, err := GenerateWorkload(deltaWorkload())
				if err != nil {
					t.Fatalf("generate: %v", err)
				}
				cfg := Config{Protocol: proto, DeltaOff: off}
				c, objs, execErr := w.Execute(cfg)
				if execErr != nil {
					t.Fatalf("execute (off=%v): %v", off, execErr)
				}
				fp, _ := fingerprintCluster(c)
				assertSerialReplayEquivalent(t, w, c, objs, cfg)
				return fp
			}
			on, off := run(false), run(true)

			cnt := off.Counters
			if cnt.DeltaBytes != 0 || cnt.DeltaSavedBytes != 0 || cnt.DeltaFallbacks != 0 {
				t.Errorf("DeltaOff run reports delta activity: %+v", cnt)
			}
			if on.Commits != off.Commits || on.Failures != off.Failures {
				t.Errorf("outcomes diverge on vs off: %d/%d != %d/%d",
					on.Commits, on.Failures, off.Commits, off.Failures)
			}
			if proto == core.COTEC {
				// Version-blind baseline: the flag must be a strict no-op.
				if !reflect.DeepEqual(on, off) {
					t.Errorf("COTEC fingerprint changed under DeltaOff:\n on  %+v\n off %+v",
						on, off)
				}
			} else {
				if on.Counters.DeltaBytes == 0 {
					t.Errorf("deltas-on run moved no deltas; escape-hatch check vacuous")
				}
				if on.Totals.DataBytes >= off.Totals.DataBytes {
					t.Errorf("deltas saved nothing: on %d B >= off %d B",
						on.Totals.DataBytes, off.Totals.DataBytes)
				}
			}
		})
	}
}

// TestDeltaFullSizeWritesMatchOff pins the fallback economics: when every
// write covers its whole attribute, no encoded delta can beat a full page,
// so the deltas-on data plane must move exactly the bytes the deltas-off
// one does (every attempt falls back).
func TestDeltaFullSizeWritesMatchOff(t *testing.T) {
	cfg := mediumHigh()
	cfg.Transactions = 60
	run := func(off bool) (int64, int64) {
		w, err := GenerateWorkload(cfg)
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		c, _, execErr := w.Execute(Config{Protocol: core.LOTEC, DeltaOff: off})
		if execErr != nil {
			t.Fatalf("execute (off=%v): %v", off, execErr)
		}
		return c.Recorder().Totals().DataBytes, c.Recorder().Counters().DeltaBytes
	}
	onB, onDelta := run(false)
	offB, _ := run(true)
	if onDelta != 0 {
		t.Errorf("whole-attribute writes shipped %d delta bytes; want pure fallback", onDelta)
	}
	if onB != offB {
		t.Errorf("data plane moved %d B with deltas on, %d B off; full-size writes must tie", onB, offB)
	}
}

// TestChaosDelta reruns the chaos safety matrix with field-sized writes so
// deltas flow through every fault plan. The critical cells are dup (a
// duplicated MultiPush must not apply its delta twice — the version check
// makes re-apply a no-op) and drop (the retry layer re-sends pushes; same
// idempotency) — the serial-replay byte-equality oracle inside runChaosOne
// catches any double-applied or lost delta.
func TestChaosDelta(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = []uint64{1, 2}
	}
	cfgFor := func(seed uint64) WorkloadConfig {
		cfg := chaosWorkload(int64(seed))
		cfg.WriteBytes = 16
		return cfg
	}
	for _, seed := range seeds {
		seed := seed
		for _, planName := range []string{"drop", "dup", "chaos"} {
			planName := planName
			for _, proto := range []core.Protocol{core.LOTEC, core.RC} {
				proto := proto
				t.Run(fmt.Sprintf("seed=%d/%s/%s", seed, planName, proto.Name()), func(t *testing.T) {
					runChaosCell(t, seed, planName, proto, cfgFor(seed))
				})
			}
		}
	}
}
