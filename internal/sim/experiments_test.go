package sim

import (
	"strings"
	"testing"

	"lotec/internal/core"
	"lotec/internal/netmodel"
	"lotec/internal/stats"
)

// smallFigure shrinks a figure spec so tests stay fast.
func smallFigure(t *testing.T, id string) FigureSpec {
	t.Helper()
	spec, err := FigureByID(id)
	if err != nil {
		t.Fatal(err)
	}
	spec.Workload.Transactions = 40
	spec.Workload.Objects = 12
	return spec
}

func TestFigureSpecsComplete(t *testing.T) {
	want := []string{"2", "3", "4", "5", "6", "7", "8", "rc"}
	specs := FigureSpecs()
	if len(specs) != len(want) {
		t.Fatalf("got %d specs", len(specs))
	}
	for i, id := range want {
		if specs[i].ID != id {
			t.Errorf("spec %d = %s, want %s", i, specs[i].ID, id)
		}
		if specs[i].Title == "" {
			t.Errorf("spec %s has empty title", id)
		}
	}
	if _, err := FigureByID("nope"); err == nil {
		t.Error("unknown figure should fail")
	}
}

func TestFigureNetworkMapping(t *testing.T) {
	for id, want := range map[string]string{"6": "10Mbps", "7": "100Mbps", "8": "1Gbps"} {
		bw, ok := figureNetwork(id)
		if !ok || bw.Name != want {
			t.Errorf("figureNetwork(%s) = %v, %v", id, bw, ok)
		}
	}
	if _, ok := figureNetwork("2"); ok {
		t.Error("figure 2 is not a time figure")
	}
}

func TestRunFigureByteOrdering(t *testing.T) {
	res, err := RunFigure(smallFigure(t, "2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 3 {
		t.Fatalf("runs = %d", len(res.Runs))
	}
	get := func(name string) int64 {
		run, ok := res.Run(name)
		if !ok {
			t.Fatalf("missing run %s", name)
		}
		return run.Recorder.Totals().DataBytes
	}
	c, o, l := get("COTEC"), get("OTEC"), get("LOTEC")
	if !(l <= o && o <= c) {
		t.Errorf("byte ordering violated: COTEC=%d OTEC=%d LOTEC=%d", c, o, l)
	}
	if l == 0 {
		t.Error("no data moved")
	}
	if _, ok := res.Run("RC"); ok {
		t.Error("figure 2 should not include RC")
	}
	oc, lo, ok := res.HeadlineRatios()
	if !ok || oc <= 0 || oc > 1 || lo <= 0 || lo > 1 {
		t.Errorf("ratios = %.2f, %.2f, %v", oc, lo, ok)
	}
}

func TestRunFigureRCIncluded(t *testing.T) {
	res, err := RunFigure(smallFigure(t, "rc"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 4 {
		t.Fatalf("runs = %d", len(res.Runs))
	}
	rc, ok := res.Run("RC")
	if !ok {
		t.Fatal("missing RC run")
	}
	lotec, _ := res.Run("LOTEC")
	// RC pushes updates to every caching site: it must move at least as
	// much data as LOTEC on a shared workload.
	if rc.Recorder.Totals().DataBytes < lotec.Recorder.Totals().DataBytes {
		t.Errorf("RC bytes %d < LOTEC bytes %d",
			rc.Recorder.Totals().DataBytes, lotec.Recorder.Totals().DataBytes)
	}
}

func TestFigureTablesRender(t *testing.T) {
	res, err := RunFigure(smallFigure(t, "2"))
	if err != nil {
		t.Fatal(err)
	}
	bt := res.BytesTable()
	if !strings.Contains(bt, "COTEC") || !strings.Contains(bt, "TOTAL") {
		t.Errorf("bytes table malformed:\n%s", bt)
	}
	tt := res.TimeTable(netmodel.Gigabit)
	if !strings.Contains(tt, "100µs") || !strings.Contains(tt, "500ns") {
		t.Errorf("time table malformed:\n%s", tt)
	}
	ct := res.CountersTable()
	if !strings.Contains(ct, "GlobalLock") {
		t.Errorf("counters table malformed:\n%s", ct)
	}
	if res.Render() == "" {
		t.Error("empty render")
	}
	if lo := LockingOverheadReport(res); !strings.Contains(lo, "Global/commit") {
		t.Errorf("locking overhead malformed:\n%s", lo)
	}
}

func TestTimeFigureRendersTimeTable(t *testing.T) {
	spec := smallFigure(t, "8")
	res, err := RunFigure(spec)
	if err != nil {
		t.Fatal(err)
	}
	out := res.Render()
	if !strings.Contains(out, "1Gbps") {
		t.Errorf("figure 8 render missing bandwidth:\n%s", out)
	}
}

func TestHottestObject(t *testing.T) {
	res, err := RunFigure(smallFigure(t, "2"))
	if err != nil {
		t.Fatal(err)
	}
	obj := res.HottestObject()
	if obj == stats.NoObject {
		t.Fatal("no hottest object")
	}
	run := res.Runs[0]
	for _, o := range run.Objects {
		if run.PerObject[o].TotalBytes() > run.PerObject[obj].TotalBytes() {
			t.Errorf("object %v hotter than reported hottest %v", o, obj)
		}
	}
	empty := &FigureResult{}
	if empty.HottestObject() != stats.NoObject {
		t.Error("empty result should have no hottest object")
	}
}

// TestTransferTimeMonotoneInSoftwareCost checks the Figures 6–8 x-axis
// behaviour: lower software cost never increases an object's transfer time.
func TestTransferTimeMonotoneInSoftwareCost(t *testing.T) {
	res, err := RunFigure(smallFigure(t, "2"))
	if err != nil {
		t.Fatal(err)
	}
	obj := res.HottestObject()
	for _, run := range res.Runs {
		prev := run.Recorder.TransferTime(obj, netmodel.Gigabit.WithSoftwareCost(netmodel.SoftwareCosts[0]))
		for _, sc := range netmodel.SoftwareCosts[1:] {
			cur := run.Recorder.TransferTime(obj, netmodel.Gigabit.WithSoftwareCost(sc))
			if cur > prev {
				t.Errorf("%s: transfer time rose as software cost fell", run.Protocol)
			}
			prev = cur
		}
	}
}

func TestProtocolEquivalenceOnFigureWorkload(t *testing.T) {
	spec := smallFigure(t, "2")
	w, err := GenerateWorkload(spec.Workload)
	if err != nil {
		t.Fatal(err)
	}
	// All four protocols commit the same number of roots.
	for _, p := range core.AllWithRC() {
		c, _, err := w.Execute(Config{Protocol: p})
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if got := c.Recorder().Counters().Commits; got != int64(len(w.Roots)) {
			t.Errorf("%s: commits = %d, want %d", p.Name(), got, len(w.Roots))
		}
		if err := c.VerifyPageMapCoherence(); err != nil {
			t.Errorf("%s: %v", p.Name(), err)
		}
	}
}

func TestAblationsRender(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	for name, fn := range map[string]func() (string, error){
		"prediction":  PredictionWidthAblation,
		"granularity": GranularityAblation,
		"demand":      DemandFetchAblation,
		"disorder":    DisorderAblation,
	} {
		out, err := fn()
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if len(strings.Split(out, "\n")) < 4 {
			t.Errorf("%s: table too small:\n%s", name, out)
		}
	}
}
