package sim

import (
	"encoding/binary"
	"errors"
	"testing"

	"lotec/internal/ids"
	"lotec/internal/node"
	"lotec/internal/schema"
)

// packObjs packs an amount plus object IDs into an argument.
func packObjs(amount int64, objs ...ids.ObjectID) []byte {
	out := make([]byte, 8+8*len(objs))
	binary.LittleEndian.PutUint64(out, uint64(amount))
	for i, o := range objs {
		binary.LittleEndian.PutUint64(out[8+8*i:], uint64(o))
	}
	return out
}

// unpackObjs recovers the object IDs.
func unpackObjs(arg []byte) []ids.ObjectID {
	var out []ids.ObjectID
	for off := 8; off+8 <= len(arg); off += 8 {
		out = append(out, ids.ObjectID(binary.LittleEndian.Uint64(arg[off:])))
	}
	return out
}

// parallelBed builds a cluster whose Job class fans sub-transactions out
// with InvokeAll (the intra-family concurrency of §3.3).
func parallelBed(t *testing.T) (*Cluster, *schema.Class, *schema.Class) {
	t.Helper()
	c, err := NewCluster(Config{Nodes: 3, PageSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	account, err := schema.NewClassBuilder(1, "Account").
		Attr("balance", 8).
		Method(schema.MethodSpec{Name: "deposit", Writes: []string{"balance"}}).
		Method(schema.MethodSpec{Name: "peek", Reads: []string{"balance"}}).
		Method(schema.MethodSpec{Name: "fail", Writes: []string{"balance"}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	job, err := schema.NewClassBuilder(2, "Job").
		Attr("note", 8).
		Method(schema.MethodSpec{Name: "fanOut", Writes: []string{"note"}}).
		Method(schema.MethodSpec{Name: "fanOutOneFails", Writes: []string{"note"}}).
		Method(schema.MethodSpec{Name: "parallelReads", Reads: []string{"note"}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddClass(account); err != nil {
		t.Fatal(err)
	}
	if err := c.AddClass(job); err != nil {
		t.Fatal(err)
	}
	reg := func(cls *schema.Class, name string, fn node.MethodFunc) {
		t.Helper()
		if err := c.RegisterBody(cls, name, fn); err != nil {
			t.Fatal(err)
		}
	}
	reg(account, "deposit", func(ctx *node.Ctx) error {
		cur, err := ctx.Read("balance")
		if err != nil {
			return err
		}
		return ctx.Write("balance", i64(dec64(cur)+dec64(ctx.Arg())))
	})
	reg(account, "peek", func(ctx *node.Ctx) error {
		cur, err := ctx.Read("balance")
		if err != nil {
			return err
		}
		ctx.SetResult(cur)
		return nil
	})
	reg(account, "fail", func(ctx *node.Ctx) error {
		if err := ctx.Write("balance", i64(-999)); err != nil {
			return err
		}
		return errors.New("deliberate failure")
	})
	reg(job, "fanOut", func(ctx *node.Ctx) error {
		amount := ctx.Arg()[:8]
		var calls []node.InvokeSpec
		for _, o := range unpackObjs(ctx.Arg()) {
			calls = append(calls, node.InvokeSpec{Obj: o, Method: "deposit", Arg: amount})
		}
		for _, r := range ctx.InvokeAll(calls) {
			if r.Err != nil {
				return r.Err
			}
		}
		return ctx.Write("note", i64(1))
	})
	reg(job, "fanOutOneFails", func(ctx *node.Ctx) error {
		amount := ctx.Arg()[:8]
		objs := unpackObjs(ctx.Arg())
		rs := ctx.InvokeAll([]node.InvokeSpec{
			{Obj: objs[0], Method: "deposit", Arg: amount},
			{Obj: objs[1], Method: "fail"},
		})
		if rs[0].Err != nil {
			return rs[0].Err
		}
		if rs[1].Err == nil {
			return errors.New("expected child failure")
		}
		// Survive the failed sibling — closed nesting rolled it back.
		return ctx.Write("note", i64(2))
	})
	reg(job, "parallelReads", func(ctx *node.Ctx) error {
		var calls []node.InvokeSpec
		for _, o := range unpackObjs(ctx.Arg()) {
			calls = append(calls, node.InvokeSpec{Obj: o, Method: "peek"})
		}
		var sum int64
		for _, r := range ctx.InvokeAll(calls) {
			if r.Err != nil {
				return r.Err
			}
			sum += dec64(r.Out)
		}
		ctx.SetResult(i64(sum))
		return nil
	})
	return c, account, job
}

func TestInvokeAllParallelDeposits(t *testing.T) {
	c, account, job := parallelBed(t)
	var accts []ids.ObjectID
	for n := 1; n <= 3; n++ {
		accts = append(accts, mustObject(t, c, account.ID, ids.NodeID(n)))
	}
	j := mustObject(t, c, job.ID, 1)
	if err := c.Submit(0, 1, j, "fanOut", packObjs(7, accts...)); err != nil {
		t.Fatal(err)
	}
	runAll(t, c)
	for _, a := range accts {
		final, err := c.ObjectBytes(a)
		if err != nil {
			t.Fatal(err)
		}
		if got := dec64(final[:8]); got != 7 {
			t.Errorf("account %v = %d, want 7", a, got)
		}
	}
	if err := c.VerifyPageMapCoherence(); err != nil {
		t.Error(err)
	}
}

func TestInvokeAllFailedSiblingRolledBack(t *testing.T) {
	c, account, job := parallelBed(t)
	a := mustObject(t, c, account.ID, 1)
	b := mustObject(t, c, account.ID, 2)
	j := mustObject(t, c, job.ID, 1)
	if err := c.Submit(0, 1, j, "fanOutOneFails", packObjs(5, a, b)); err != nil {
		t.Fatal(err)
	}
	runAll(t, c)
	fa, err := c.ObjectBytes(a)
	if err != nil {
		t.Fatal(err)
	}
	if dec64(fa[:8]) != 5 {
		t.Errorf("surviving sibling's deposit lost: %d", dec64(fa[:8]))
	}
	fb, err := c.ObjectBytes(b)
	if err != nil {
		t.Fatal(err)
	}
	if dec64(fb[:8]) != 0 {
		t.Errorf("failed sibling's write not rolled back: %d", dec64(fb[:8]))
	}
}

func TestInvokeAllParallelReadsShareLock(t *testing.T) {
	c, account, job := parallelBed(t)
	a := mustObject(t, c, account.ID, 1)
	j2 := mustObject(t, c, job.ID, 2)
	// Seed the balance, then read it from two parallel siblings plus the
	// same object twice (retained read lock served locally).
	if err := c.Submit(0, 1, a, "deposit", i64(9)); err != nil {
		t.Fatal(err)
	}
	if err := c.Submit(1e9, 2, j2, "parallelReads", packObjs(0, a, a)); err != nil {
		t.Fatal(err)
	}
	runAll(t, c)
	var got *Result
	for _, r := range c.Results() {
		if r.Method == "parallelReads" {
			got = r
		}
	}
	if dec64(got.Out) != 18 {
		t.Errorf("parallel reads sum = %d, want 18", dec64(got.Out))
	}
}

func TestInvokeAllFamilyCommitsAtomically(t *testing.T) {
	// A root whose parallel fan-out succeeds but whose own write then
	// fails must roll back the children's effects too.
	c, err := NewCluster(Config{Nodes: 2, PageSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	account, err := schema.NewClassBuilder(1, "Acct").
		Attr("balance", 8).
		Method(schema.MethodSpec{Name: "deposit", Writes: []string{"balance"}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	job, err := schema.NewClassBuilder(2, "Job").
		Attr("note", 8).
		Method(schema.MethodSpec{Name: "fanOutThenFail", Writes: []string{"note"}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AddClass(account); err != nil {
		t.Fatal(err)
	}
	if err := c.AddClass(job); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterBody(account, "deposit", func(ctx *node.Ctx) error {
		cur, err := ctx.Read("balance")
		if err != nil {
			return err
		}
		return ctx.Write("balance", i64(dec64(cur)+1))
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterBody(job, "fanOutThenFail", func(ctx *node.Ctx) error {
		for _, r := range ctx.InvokeAll([]node.InvokeSpec{
			{Obj: unpackObjs(ctx.Arg())[0], Method: "deposit"},
			{Obj: unpackObjs(ctx.Arg())[1], Method: "deposit"},
		}) {
			if r.Err != nil {
				return r.Err
			}
		}
		return errors.New("root changes its mind")
	}); err != nil {
		t.Fatal(err)
	}
	a := mustObject(t, c, account.ID, 1)
	b := mustObject(t, c, account.ID, 2)
	j := mustObject(t, c, job.ID, 1)
	if err := c.Submit(0, 1, j, "fanOutThenFail", packObjs(0, a, b)); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(); err != nil {
		t.Fatal(err)
	}
	if c.Results()[0].Err == nil {
		t.Fatal("root should have failed")
	}
	for _, o := range []ids.ObjectID{a, b} {
		final, err := c.ObjectBytes(o)
		if err != nil {
			t.Fatal(err)
		}
		if dec64(final[:8]) != 0 {
			t.Errorf("object %v not rolled back: %d", o, dec64(final[:8]))
		}
	}
}
