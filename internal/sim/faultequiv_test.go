package sim

import (
	"reflect"
	"testing"

	"lotec/internal/core"
	"lotec/internal/fault"
	"lotec/internal/stats"
)

// TestZeroFaultPlanTraceEquivalence pins the pay-for-what-you-use
// guarantee: installing a fault plan that injects nothing — whether the
// "none" preset or a bare seeded Plan with no rules — must leave the run
// byte-for-byte identical to a run with no plan at all. Every message in
// the trace, every counter, every modeled duration (Gather included, so
// this is stricter than the concurrency-equivalence test) must match: the
// fault layer may not stamp request IDs, upgrade one-way sends, arm
// timeouts, or otherwise perturb the schedule unless it has faults to
// inject.
func TestZeroFaultPlanTraceEquivalence(t *testing.T) {
	zeroPreset, err := fault.Parse("none", 99)
	if err != nil {
		t.Fatal(err)
	}
	variants := []struct {
		name string
		plan *fault.Plan
	}{
		{"none-preset", zeroPreset},
		{"empty-plan", &fault.Plan{Seed: 7}},
	}

	for _, proto := range core.AllWithRC() {
		proto := proto
		t.Run(proto.Name(), func(t *testing.T) {
			run := func(faults *fault.Plan) (traceFingerprint, stats.TransferTotals) {
				// A contended workload with injected aborts at every level,
				// so deadlock victims, ghost grants and multi-level undo all
				// occur — the paths where an eagerly-installed fault layer
				// would most plausibly leak extra messages.
				cfg := smallWorkload(67)
				cfg.AbortProb = 0.2
				cfg.Transactions = 40
				w, err := GenerateWorkload(cfg)
				if err != nil {
					t.Fatalf("generate: %v", err)
				}
				c, _, err := w.Execute(Config{Protocol: proto, Faults: faults})
				if err != nil {
					t.Fatalf("execute: %v", err)
				}
				return fingerprintCluster(c)
			}

			base, baseGather := run(nil)
			if len(base.Trace) == 0 {
				t.Fatal("baseline run produced no messages; equivalence test is vacuous")
			}
			for _, v := range variants {
				fp, gather := run(v.plan)
				if fp.Counters.MsgDrops+fp.Counters.MsgDups+fp.Counters.MsgDelays+
					fp.Counters.CallTimeouts+fp.Counters.CallRetries != 0 {
					t.Errorf("%s: zero-fault plan recorded fault activity: %+v", v.name, fp.Counters)
				}
				if len(fp.Trace) != len(base.Trace) {
					t.Fatalf("%s: trace length %d != baseline %d", v.name, len(fp.Trace), len(base.Trace))
				}
				for i := range fp.Trace {
					if !reflect.DeepEqual(fp.Trace[i], base.Trace[i]) {
						t.Fatalf("%s: trace record %d diverges from the no-plan baseline:\n got %+v\nwant %+v",
							v.name, i, fp.Trace[i], base.Trace[i])
					}
				}
				if !reflect.DeepEqual(fp, base) {
					t.Errorf("%s: fingerprint diverges from the no-plan baseline:\n got %+v\nwant %+v",
						v.name, fp, base)
				}
				if gather != baseGather {
					t.Errorf("%s: gather wall-clock %v != baseline %v", v.name, gather, baseGather)
				}
			}
		})
	}
}
