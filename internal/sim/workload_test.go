package sim

import (
	"bytes"
	"testing"
	"time"

	"lotec/internal/core"
)

func smallWorkload(seed int64) WorkloadConfig {
	return WorkloadConfig{
		Seed:         seed,
		Objects:      10,
		MinPages:     1,
		MaxPages:     4,
		PageSize:     512,
		Transactions: 40,
		Nodes:        4,
	}
}

func TestGenerateWorkloadDeterministic(t *testing.T) {
	a, err := GenerateWorkload(smallWorkload(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateWorkload(smallWorkload(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Roots) != len(b.Roots) || len(a.Objects) != len(b.Objects) {
		t.Fatal("workload shape not deterministic")
	}
	for i := range a.Roots {
		ra, rb := a.Roots[i], b.Roots[i]
		if ra.At != rb.At || ra.Node != rb.Node || ra.Call.Method != rb.Call.Method ||
			ra.Call.ObjIndex != rb.Call.ObjIndex || ra.Call.Seed != rb.Call.Seed {
			t.Fatalf("root %d differs", i)
		}
	}
	// Different seeds differ.
	c, err := GenerateWorkload(smallWorkload(8))
	if err != nil {
		t.Fatal(err)
	}
	same := len(a.Roots) == len(c.Roots)
	if same {
		diff := false
		for i := range a.Roots {
			if a.Roots[i].Call.Seed != c.Roots[i].Call.Seed {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestWorkloadRunsToCompletion(t *testing.T) {
	for _, p := range core.AllWithRC() {
		t.Run(p.Name(), func(t *testing.T) {
			w, err := GenerateWorkload(smallWorkload(11))
			if err != nil {
				t.Fatal(err)
			}
			c, _, err := w.Execute(Config{Protocol: p})
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range c.Results() {
				if r.Err != nil {
					t.Fatalf("root %s on %v: %v", r.Method, r.Obj, r.Err)
				}
			}
			if got := len(c.Results()); got != len(w.Roots) {
				t.Errorf("%d results for %d roots", got, len(w.Roots))
			}
			if err := c.VerifyPageMapCoherence(); err != nil {
				t.Error(err)
			}
			if c.Recorder().Counters().Commits != int64(len(w.Roots)) {
				t.Errorf("commits = %d", c.Recorder().Counters().Commits)
			}
		})
	}
}

func TestWorkloadDeterministicTraceSameProtocol(t *testing.T) {
	run := func() int64 {
		w, err := GenerateWorkload(smallWorkload(3))
		if err != nil {
			t.Fatal(err)
		}
		c, _, err := w.Execute(Config{Protocol: core.LOTEC})
		if err != nil {
			t.Fatal(err)
		}
		return c.Recorder().Totals().TotalBytes()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed, same protocol, different bytes: %d vs %d", a, b)
	}
}

// Serializability (invariant 1): replay the committed roots serially in
// commit order on a fresh single-threaded cluster and compare every
// object's final bytes.
func TestWorkloadSerialEquivalence(t *testing.T) {
	w, err := GenerateWorkload(smallWorkload(21))
	if err != nil {
		t.Fatal(err)
	}
	c, objs, err := w.Execute(Config{Protocol: core.LOTEC})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range c.Results() {
		if r.Err != nil {
			t.Fatalf("concurrent run failed: %v", r.Err)
		}
	}

	// Rebuild an identical cluster and replay the commits one at a time,
	// spaced far enough apart that nothing overlaps.
	s, err := NewCluster(Config{Protocol: core.LOTEC, Nodes: w.Cfg.Nodes, PageSize: w.Cfg.PageSize})
	if err != nil {
		t.Fatal(err)
	}
	sObjs, err := w.Install(s)
	if err != nil {
		t.Fatal(err)
	}
	var at time.Duration
	for _, r := range c.ResultsByCommitOrder() {
		idx, ok := r.Tag.(int)
		if !ok {
			t.Fatalf("result missing root tag: %+v", r)
		}
		call := w.Roots[idx].Call
		at += 50 * time.Millisecond
		if err := s.Submit(at, r.Node, sObjs[call.ObjIndex], call.Method, encodeCall(sObjs, call)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, r := range s.Results() {
		if r.Err != nil {
			t.Fatalf("serial replay failed: %v", r.Err)
		}
	}
	for i, o := range objs {
		concurrent, err := c.ObjectBytes(o)
		if err != nil {
			t.Fatal(err)
		}
		serial, err := s.ObjectBytes(sObjs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(concurrent, serial) {
			t.Errorf("object %v: concurrent state differs from serial replay", o)
		}
	}
}

func TestWorkloadMispredictDemandFetches(t *testing.T) {
	cfg := smallWorkload(5)
	cfg.MispredictProb = 0.6
	w, err := GenerateWorkload(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, _, err := w.Execute(Config{Protocol: core.LOTEC})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range c.Results() {
		if r.Err != nil {
			t.Fatalf("lenient run failed: %v", r.Err)
		}
	}
	if err := c.VerifyPageMapCoherence(); err != nil {
		t.Error(err)
	}
}

func TestWorkloadPredictionWiden(t *testing.T) {
	base := smallWorkload(9)
	widened := base
	widened.PredictionWiden = 3
	wb, err := GenerateWorkload(base)
	if err != nil {
		t.Fatal(err)
	}
	ww, err := GenerateWorkload(widened)
	if err != nil {
		t.Fatal(err)
	}
	// Widened declared sets must never be smaller.
	for i, cls := range wb.Classes {
		wide := ww.Classes[i]
		for j, m := range cls.Methods() {
			if len(wide.Methods()[j].Writes) < len(m.Writes) {
				t.Errorf("%s.%s: widened writes shrank", cls.Name, m.Name)
			}
		}
	}
}

func TestWorkloadInstallValidation(t *testing.T) {
	w, err := GenerateWorkload(smallWorkload(1))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(Config{Nodes: 4, PageSize: 64}) // wrong page size
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Install(c); err == nil {
		t.Error("page-size mismatch should fail")
	}
	c2, err := NewCluster(Config{Nodes: 2, PageSize: 512}) // too few nodes
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Install(c2); err == nil {
		t.Error("node-count mismatch should fail")
	}
}
