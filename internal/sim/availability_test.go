package sim

import "testing"

// TestAvailabilitySweep runs the availability experiment at replica counts
// 1, 2 and 3. With a single host the primary kill is unrecoverable, so
// roots fail; with a backup, promotion must recover every root and the
// handoff leg must ship real state. Three replicas is the regression case
// for promotion-map distribution: the surviving primary must be able to
// advance its lagging backup past a promotion-bumped epoch (via the map
// carried on ReplicateReq) instead of livelocking on refusals.
func TestAvailabilitySweep(t *testing.T) {
	rows, err := RunAvailability(11, []int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	solo := rows[0]
	if solo.Roots == 0 {
		t.Fatalf("empty workload: %+v", solo)
	}
	if solo.FailedRoots == 0 {
		t.Errorf("replicas=1: primary kill lost no roots (%+v) — fault not injected?", solo)
	}
	for _, r := range rows[1:] {
		if r.Roots == 0 {
			t.Fatalf("replicas=%d: empty workload", r.Replicas)
		}
		if r.FailedRoots != 0 {
			t.Errorf("replicas=%d: %d roots failed despite a backup (%+v)", r.Replicas, r.FailedRoots, r)
		}
		if r.Failovers == 0 || r.FailoverP99 <= 0 {
			t.Errorf("replicas=%d: no failover observed (%+v)", r.Replicas, r)
		}
		if r.Promotions == 0 {
			t.Errorf("replicas=%d: no promotion recorded (%+v)", r.Replicas, r)
		}
		if r.HandoffBytes == 0 || r.HandoffLatency <= 0 {
			t.Errorf("replicas=%d: handoff leg shipped nothing (%+v)", r.Replicas, r)
		}
	}
	if tbl := AvailabilityTable(rows); len(tbl) == 0 {
		t.Error("empty availability table")
	}
}
