package sim

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"lotec/internal/core"
	"lotec/internal/fault"
	"lotec/internal/ids"
)

// Replicated control-plane cells: the same safety oracles as the chaos
// matrix (result accounting, injected-abort oracle, fault-free serial-replay
// byte equality, page-map coherence, directory and engine drain) on
// clusters whose directory runs as replicated, relocatable shard hosts —
// plus the replication-specific invariants: epoch monotonicity, promotion
// on primary crash, and online handoff under traffic.

// replicatedConfig is the standard replicated topology for these cells:
// the chaos workload's 4 data nodes plus R control-plane hosts (nodes 5..),
// 4 directory shards.
func replicatedConfig(proto core.Protocol, replicas int, plan *fault.Plan) Config {
	return Config{
		Protocol:        proto,
		Faults:          plan,
		MaxRetries:      100,
		Replicas:        replicas,
		DirectoryShards: 4,
	}
}

// TestReplicatedBasic: deposits and cross-node reads work when every lock
// message is routed to replicated shard hosts, and a fault-free run never
// leaves epoch 1 (replication must not manufacture route churn).
func TestReplicatedBasic(t *testing.T) {
	for _, spread := range []bool{false, true} {
		t.Run(fmt.Sprintf("spread=%v", spread), func(t *testing.T) {
			c, account, _ := testbed(t, Config{
				Nodes: 3, Replicas: 2, DirectoryShards: 4, SpreadShards: spread,
			})
			acct := mustObject(t, c, account.ID, 1)
			other := mustObject(t, c, account.ID, 2)
			if err := c.Submit(0, 1, acct, "deposit", i64(42)); err != nil {
				t.Fatal(err)
			}
			if err := c.Submit(0, 2, other, "deposit", i64(8)); err != nil {
				t.Fatal(err)
			}
			if err := c.Submit(1e9, 2, acct, "peek", nil); err != nil {
				t.Fatal(err)
			}
			runAll(t, c)
			for _, r := range c.Results() {
				if r.Method == "peek" && dec64(r.Out) != 42 {
					t.Errorf("remote peek = %d, want 42", dec64(r.Out))
				}
			}
			if err := c.VerifyPageMapCoherence(); err != nil {
				t.Error(err)
			}
			if dump := c.DirectoryDump(); dump != "" {
				t.Errorf("not drained:\n%s", dump)
			}
			if got := c.CurrentMap().Epoch; got != 1 {
				t.Errorf("fault-free run ended at epoch %d, want 1", got)
			}
			if n := len(c.Recorder().Failovers()); n != 0 {
				t.Errorf("fault-free run recorded %d failovers, want 0", n)
			}
		})
	}
}

// TestReplicatedWorkload: the full chaos oracle set on replicated
// topologies, fault-free and under every recoverable network preset, with
// both placement layouts (all-on-one-host and spread-with-cross-host-
// deadlock-coordination).
func TestReplicatedWorkload(t *testing.T) {
	seeds := []uint64{1, 2}
	if testing.Short() {
		seeds = []uint64{1}
	}
	plans := append([]string{"none"}, chaosPlans...)
	for _, seed := range seeds {
		for _, planName := range plans {
			for _, spread := range []bool{false, true} {
				seed, planName, spread := seed, planName, spread
				t.Run(fmt.Sprintf("seed=%d/%s/spread=%v", seed, planName, spread), func(t *testing.T) {
					w, err := GenerateWorkload(chaosWorkload(int64(seed)))
					if err != nil {
						t.Fatalf("generate: %v", err)
					}
					plan, err := fault.Parse(planName, seed)
					if err != nil {
						t.Fatalf("preset %q: %v", planName, err)
					}
					cfg := replicatedConfig(core.LOTEC, 2, plan)
					cfg.SpreadShards = spread
					runChaosWorkloadIn(t, seed, w, cfg)
				})
			}
		}
	}
}

// TestReplicatedPrimaryKill is the tentpole acceptance cell: a shard
// primary host is killed permanently mid-workload. Zero lost grants or
// hung transactions — the backup is promoted, every root drains to its
// oracle outcome, and committed state still equals a fault-free serial
// replay byte-for-byte.
func TestReplicatedPrimaryKill(t *testing.T) {
	seeds := []uint64{1, 2, 3, 4, 5}
	if testing.Short() {
		seeds = []uint64{1}
	}
	for _, seed := range seeds {
		for _, spread := range []bool{false, true} {
			seed, spread := seed, spread
			t.Run(fmt.Sprintf("seed=%d/spread=%v", seed, spread), func(t *testing.T) {
				w, err := GenerateWorkload(chaosWorkload(int64(seed)))
				if err != nil {
					t.Fatalf("generate: %v", err)
				}
				// Host 5 is the first control-plane host (4 data nodes);
				// with spread=false it is primary of every shard, spread=true
				// primary of half. Until=0 means it never comes back.
				plan, err := fault.Parse("crash(node=5,at=1ms)", seed)
				if err != nil {
					t.Fatal(err)
				}
				cfg := replicatedConfig(core.LOTEC, 2, plan)
				cfg.SpreadShards = spread
				c := runChaosWorkloadIn(t, seed, w, cfg)

				if got := c.CurrentMap().Epoch; got < 2 {
					t.Errorf("epoch = %d after primary kill, want >= 2 (promotion)", got)
				}
				if n := c.Recorder().Counters().Promotions; n < 1 {
					t.Errorf("promotions = %d, want >= 1", n)
				}
				if n := len(c.Recorder().Failovers()); n < 1 {
					t.Errorf("no client-observed failover recorded")
				}
				// The dead host must no longer be named primary anywhere.
				m := c.CurrentMap()
				for s := 0; s < m.NumShards(); s++ {
					if m.Primary[s] == ids.NodeID(5) {
						t.Errorf("shard %d still names dead host 5 as primary", s)
					}
				}
			})
		}
	}
}

// TestReplicatedReshardUnderLoad moves a shard to an initially idle host
// while commutative deposit traffic runs against it. The committed state
// must be byte-identical to the same traffic with no reshard, and the
// handoff must report transferred state and land in the recorder.
func TestReplicatedReshardUnderLoad(t *testing.T) {
	run := func(reshard bool) (*Cluster, []ids.ObjectID) {
		// Three hosts, all primaries on host 4 (3 data nodes): host 6
		// starts with no replicas and receives shard 0.
		c, account, _ := testbed(t, Config{
			Nodes: 3, Replicas: 3, DirectoryShards: 2, PageSize: 128,
		})
		var objs []ids.ObjectID
		for i := 0; i < 4; i++ {
			objs = append(objs, mustObject(t, c, account.ID, ids.NodeID(i%3+1)))
		}
		// 30 deposits, every node hammering every account, spaced so the
		// handoff lands in the middle of the stream.
		at := time.Duration(0)
		for i := 0; i < 30; i++ {
			at += 200 * time.Microsecond
			if err := c.Submit(at, ids.NodeID(i%3+1), objs[i%len(objs)], "deposit", i64(1)); err != nil {
				t.Fatal(err)
			}
		}
		if reshard {
			if err := c.Reshard(3*time.Millisecond, 0, ids.NodeID(6)); err != nil {
				t.Fatal(err)
			}
		}
		runAll(t, c)
		return c, objs
	}

	base, baseObjs := run(false)
	moved, movedObjs := run(true)

	rs := moved.Reshards()
	if len(rs) != 1 || !rs[0].OK {
		t.Fatalf("reshard outcome = %+v, want one OK handoff", rs)
	}
	if rs[0].Bytes == 0 {
		t.Error("handoff shipped zero state bytes")
	}
	if got := moved.CurrentMap().Primary[0]; got != ids.NodeID(6) {
		t.Errorf("shard 0 primary = %v after handoff, want host 6", got)
	}
	if got := moved.CurrentMap().Epoch; got < 2 {
		t.Errorf("epoch = %d after handoff, want >= 2", got)
	}
	hs := moved.Recorder().Handoffs()
	if len(hs) != 1 || hs[0].Bytes == 0 {
		t.Errorf("recorder handoffs = %+v, want one sample with bytes", hs)
	}
	for i := range baseObjs {
		want, err := base.ObjectBytes(baseObjs[i])
		if err != nil {
			t.Fatal(err)
		}
		got, err := moved.ObjectBytes(movedObjs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("object %d: committed state differs between reshard and no-reshard runs", i)
		}
	}
	if dump := moved.DirectoryDump(); dump != "" {
		t.Errorf("not drained after handoff:\n%s", dump)
	}
	if err := moved.VerifyPageMapCoherence(); err != nil {
		t.Error(err)
	}
}

// TestReplicatedHandoffPartition cuts the old-primary↔target link for the
// whole early run, so the first handoff attempts are cancelled through the
// witness and parked traffic is replayed; after the link heals the retry
// succeeds. No transaction may be lost at any point.
func TestReplicatedHandoffPartition(t *testing.T) {
	// Hosts 4,5,6 (3 data nodes). Old primary 4 ↔ target 6 cut both ways
	// until 80ms — longer than the transport retry budget, forcing the
	// cancel path at least once.
	plan, err := fault.Parse(
		"partition(from=4,to=6,after=500us,before=80ms);partition(from=6,to=4,after=500us,before=80ms)", 1)
	if err != nil {
		t.Fatal(err)
	}
	c, account, _ := testbed(t, Config{
		Nodes: 3, Replicas: 3, DirectoryShards: 2, PageSize: 128,
		Faults: plan, MaxRetries: 100,
	})
	var objs []ids.ObjectID
	for i := 0; i < 4; i++ {
		objs = append(objs, mustObject(t, c, account.ID, ids.NodeID(i%3+1)))
	}
	want := make(map[ids.ObjectID]int64)
	at := time.Duration(0)
	for i := 0; i < 30; i++ {
		at += 200 * time.Microsecond
		obj := objs[i%len(objs)]
		if err := c.Submit(at, ids.NodeID(i%3+1), obj, "deposit", i64(1)); err != nil {
			t.Fatal(err)
		}
		want[obj]++
	}
	if err := c.Reshard(2*time.Millisecond, 0, ids.NodeID(6)); err != nil {
		t.Fatal(err)
	}
	runAll(t, c)

	rs := c.Reshards()
	if len(rs) != 1 {
		t.Fatalf("reshard outcomes = %+v, want exactly one", rs)
	}
	if !rs[0].OK {
		t.Errorf("reshard did not complete after the partition healed: %v", rs[0].Err)
	}
	// Every deposit must have landed exactly once despite parking, cancel
	// and replay: verify final balances.
	for i, obj := range objs {
		got, err := c.ObjectBytes(obj)
		if err != nil {
			t.Fatal(err)
		}
		if bal := dec64(got[:8]); bal != want[obj] {
			t.Errorf("account %d balance = %d, want %d", i, bal, want[obj])
		}
	}
	if dump := c.DirectoryDump(); dump != "" {
		t.Errorf("not drained:\n%s", dump)
	}
	if err := c.VerifyPageMapCoherence(); err != nil {
		t.Error(err)
	}
}
