// Package sim assembles the paper's simulation system (§5): a cluster of
// LOTEC sites over the deterministic event-driven network, the shared GDO,
// the randomized nested-object-transaction workload generator, and the
// experiment definitions that regenerate every figure of the evaluation.
package sim

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"lotec/internal/core"
	"lotec/internal/directory"
	"lotec/internal/fault"
	"lotec/internal/gdo"
	"lotec/internal/ids"
	"lotec/internal/netmodel"
	"lotec/internal/node"
	"lotec/internal/pstore"
	"lotec/internal/schema"
	"lotec/internal/stats"
	"lotec/internal/transport"
	"lotec/internal/txn"
	"lotec/internal/wire"
)

// Config shapes a simulated cluster.
type Config struct {
	// Nodes is the number of sites (default 8).
	Nodes int
	// PageSize in bytes (default 4096).
	PageSize int
	// Protocol selects the default consistency protocol (core.LOTEC).
	Protocol core.Protocol
	// ProtocolOverrides selects a different protocol per class (§6
	// future-work extension).
	ProtocolOverrides map[ids.ClassID]core.Protocol
	// Net is the simulated network (default fast Ethernet + 20 µs software
	// cost, the paper's mid-range configuration).
	Net netmodel.Params
	// Strict enforces declared access sets (default true — the paper's
	// conservative compiler).
	Strict bool
	// Lenient disables Strict (kept separate so the zero value of Config
	// means strict).
	Lenient bool
	// MaxRetries bounds deadlock retries per root (default 20).
	MaxRetries int
	// DirectoryShards partitions the GDO into that many independent shards
	// (default 1 — the paper's single logical directory). Placement and
	// per-object cost attribution are unchanged at any shard count.
	DirectoryShards int
	// FetchConcurrency bounds in-flight per-site calls of one xfer
	// gather/push fan-out (default 4). The simulated trace is identical at
	// every setting; only modeled gather wall-clock changes.
	FetchConcurrency int
	// Faults, when non-nil, installs a deterministic network fault plan:
	// the virtual wire drops/delays/duplicates/reorders messages per the
	// plan, RPCs grow per-attempt timeouts with retransmission, and node
	// handlers are wrapped in an idempotency cache. Nil keeps the
	// historical fault-free paths byte-for-byte.
	Faults *fault.Plan
	// Retry overrides the transport retry policy (zero fields fall back
	// to the simulator defaults). Only consulted when Faults is non-nil.
	Retry transport.RetryPolicy
	// DeltaOff disables sub-page delta transfers (kept as the negative so
	// the zero value of Config means deltas on, like Strict/Lenient). With
	// deltas off the wire traffic is byte-identical to the pre-delta data
	// plane.
	DeltaOff bool
	// DeltaJournalDepth bounds the per-page dirty-range journal (sealed
	// epochs a delta may reach back across); <= 0 means
	// pstore.DefaultDeltaJournalDepth.
	DeltaJournalDepth int
	// DedicatedDirectory hosts the GDO on an extra (N+1)-th simulated node
	// instead of co-locating directory partitions with the data sites.
	// This mirrors the TCP deployment topology (server.Topology runs the
	// GDO as its own process), putting every lock/release round trip on
	// the simulated wire — required for apples-to-apples calibration
	// against the real cluster. Default false keeps the paper's historical
	// co-located layout and its exact traces.
	DedicatedDirectory bool
	// Replicas, when > 0, runs the directory as that many dedicated
	// control-plane host nodes (N+1 .. N+Replicas) speaking the replicated
	// shard protocol: primary/backup op-log replication, epoch-stamped
	// placement, backup promotion on primary crash, and online shard
	// handoff (Reshard). Engines route lock traffic through a per-node
	// RouteTable instead of HomeFn. Mutually exclusive with
	// DedicatedDirectory. 1 means unreplicated-but-relocatable (no
	// backups). Default 0 keeps the in-process directory and its exact
	// traces.
	Replicas int
	// SpreadShards distributes shard primaries round-robin across the
	// host nodes (each host backs up its ring predecessor's shards)
	// instead of the default all-primaries-on-host-1 layout.
	SpreadShards bool
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 8
	}
	if c.PageSize <= 0 {
		c.PageSize = 4096
	}
	if c.Protocol == nil {
		c.Protocol = core.LOTEC
	}
	if c.Net.BandwidthBps == 0 {
		c.Net = netmodel.Ethernet100.WithSoftwareCost(20 * time.Microsecond)
	}
	c.Strict = !c.Lenient
	if c.MaxRetries <= 0 {
		c.MaxRetries = 20
	}
	if c.DirectoryShards <= 0 {
		c.DirectoryShards = 1
	}
	if c.FetchConcurrency <= 0 {
		c.FetchConcurrency = 4
	}
	return c
}

// Cluster is one simulated LOTEC deployment. Build it, add classes and
// bodies, create objects, submit root transactions, then Run.
type Cluster struct {
	cfg     Config
	net     *transport.SimNet
	dir     *directory.Sharded
	rec     *stats.Recorder
	schemas *schema.Registry
	methods *node.MethodTable
	mgr     *txn.Manager
	engines map[ids.NodeID]*node.Engine
	stores  map[ids.NodeID]*pstore.Store
	objGen  ids.ObjectIDGenerator

	// Replicated control plane (Replicas > 0); empty in legacy mode.
	hosts      map[ids.NodeID]*directory.Host
	hostIDs    []ids.NodeID
	place      directory.Placement
	initialMap wire.PlacementMap

	results  []*Result
	reshards []*ReshardOutcome
}

// Result captures one submitted root transaction's outcome.
type Result struct {
	Node   ids.NodeID
	Obj    ids.ObjectID
	Method string
	Out    []byte
	Err    error
	// Family is the committed root transaction's family (the last attempt
	// if retried).
	Family ids.FamilyID
	// CommitSeq is the family's position in the GDO's global commit order
	// (0 if the root never committed).
	CommitSeq uint64
	// Tag is the caller-supplied identity from SubmitTagged.
	Tag any
	// At is the submitted arrival time; Done is the virtual time the root
	// finished (committed or gave up). Done-At is the commit latency the
	// calibrate loop compares against wall clock on TCP.
	At   time.Duration
	Done time.Duration
}

// NewCluster builds a cluster; classes must be added before objects, and
// objects before Run.
func NewCluster(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:     cfg,
		rec:     stats.NewRecorder(),
		dir:     directory.NewSharded(cfg.DirectoryShards, cfg.Nodes),
		schemas: schema.NewRegistry(cfg.PageSize),
		methods: node.NewMethodTable(),
		mgr:     txn.NewManager(),
		engines: make(map[ids.NodeID]*node.Engine, cfg.Nodes),
		stores:  make(map[ids.NodeID]*pstore.Store, cfg.Nodes),
	}
	// With a dedicated directory the GDO lives on an extra simulated node
	// (like the TCP deployment's standalone GDO process), so the network
	// has one env beyond the data sites and every directory op is a real
	// simulated round trip.
	simSize := cfg.Nodes
	dirNode := ids.NodeID(0)
	homeFn := c.dir.HomeNode
	if cfg.DedicatedDirectory {
		simSize = cfg.Nodes + 1
		dirNode = ids.NodeID(cfg.Nodes + 1)
		homeFn = func(ids.ObjectID) ids.NodeID { return dirNode }
	}
	if cfg.Replicas > 0 {
		if cfg.DedicatedDirectory {
			return nil, errors.New("sim: Replicas and DedicatedDirectory are mutually exclusive")
		}
		simSize = cfg.Nodes + cfg.Replicas
		for i := 0; i < cfg.Replicas; i++ {
			c.hostIDs = append(c.hostIDs, ids.NodeID(cfg.Nodes+1+i))
		}
		c.hosts = make(map[ids.NodeID]*directory.Host, cfg.Replicas)
		c.place = directory.NewPlacement(cfg.DirectoryShards, cfg.Nodes)
		c.initialMap = directory.InitialMap(cfg.DirectoryShards, cfg.Nodes, c.hostIDs, cfg.SpreadShards)
		// HomeFn survives as the engines' fallback only; with a RouteTable
		// configured every lock message is routed by the adopted map.
		homeFn = func(obj ids.ObjectID) ids.NodeID {
			return c.initialMap.Primary[c.place.ShardOf(obj)]
		}
	}
	c.net = transport.NewSimNet(simSize, cfg.Net, c.rec)
	faultsActive := false
	if cfg.Faults != nil {
		inj := fault.NewInjector(*cfg.Faults)
		faultsActive = inj.Active()
		c.net.InstallFaults(inj, cfg.Retry)
	}
	for _, id := range c.hostIDs {
		h := directory.NewHost(directory.HostConfig{
			Env:   c.net.Env(id),
			Place: c.place,
			Map:   c.initialMap,
			Rec:   c.rec,
		})
		c.hosts[id] = h
		c.net.SetAsyncHandler(id, h.Handler())
	}
	dataNodes := simSize
	if cfg.Replicas > 0 {
		dataNodes = cfg.Nodes
	}
	for i := 1; i <= dataNodes; i++ {
		id := ids.NodeID(i)
		isDir := cfg.DedicatedDirectory && id == dirNode
		var dirSvc directory.Service = c.dir
		if cfg.DedicatedDirectory && !isDir {
			// Data sites don't serve directory traffic in this layout.
			dirSvc = nil
		}
		var route *directory.RouteTable
		if cfg.Replicas > 0 {
			// Lock traffic goes to the control-plane hosts, not peers.
			dirSvc = nil
			route = directory.NewRouteTable(c.net.Env(id), c.rec, c.initialMap)
		}
		store := pstore.NewStore(cfg.PageSize)
		eng, err := node.New(node.Config{
			Env:               c.net.Env(id),
			Store:             store,
			Schemas:           c.schemas,
			Methods:           c.methods,
			Manager:           c.mgr,
			Protocol:          cfg.Protocol,
			ProtocolOverrides: cfg.ProtocolOverrides,
			HomeFn:            homeFn,
			ShardFn:           c.dir.ShardOf,
			Dir:               dirSvc,
			Route:             route,
			Rec:               c.rec,
			MaxRetries:        cfg.MaxRetries,
			FetchConcurrency:  cfg.FetchConcurrency,
			Strict:            cfg.Strict,
			DeltaOff:          cfg.DeltaOff,
			DeltaJournalDepth: cfg.DeltaJournalDepth,
		})
		if err != nil {
			return nil, fmt.Errorf("node %v: %w", id, err)
		}
		if !isDir {
			c.engines[id] = eng
			c.stores[id] = store
		}
		if faultsActive {
			// At-least-once delivery needs exactly-once execution: replay
			// cached replies for duplicated idempotent requests. Inert
			// plans skip the wrap: with the injector uninstalled no
			// request is ever stamped, so the filter would be pure
			// pass-through overhead.
			c.net.SetHandler(id, fault.NewDedup().Wrap(eng.Handle))
		} else {
			c.net.SetHandler(id, eng.Handle)
		}
	}
	return c, nil
}

// Schemas exposes the class registry.
func (c *Cluster) Schemas() *schema.Registry { return c.schemas }

// Recorder exposes the run's statistics.
func (c *Cluster) Recorder() *stats.Recorder { return c.rec }

// Directory exposes the shared GDO (tests and verification).
func (c *Cluster) Directory() *directory.Sharded { return c.dir }

// Protocol returns the cluster's consistency protocol.
func (c *Cluster) Protocol() core.Protocol { return c.cfg.Protocol }

// Nodes returns the cluster size.
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// AddClass registers a class (and computes its layout).
func (c *Cluster) AddClass(cls *schema.Class) error { return c.schemas.Add(cls) }

// RegisterBody binds a Go body to class.method on every node.
func (c *Cluster) RegisterBody(cls *schema.Class, method string, fn node.MethodFunc) error {
	return c.methods.Register(cls, method, fn)
}

// CreateObject instantiates an object of class at owner and registers it
// everywhere (pages materialize at the owner at version 1).
func (c *Cluster) CreateObject(class ids.ClassID, owner ids.NodeID) (ids.ObjectID, error) {
	layout, err := c.schemas.Layout(class)
	if err != nil {
		return 0, err
	}
	obj := c.objGen.Next()
	if len(c.hosts) > 0 {
		// Every replica of the object's shard starts from the same
		// registration, so primary and backup directories never diverge
		// on the object universe.
		for _, id := range c.hostIDs {
			if err := c.hosts[id].RegisterLocal(obj, layout.NumPages(), owner); err != nil {
				return 0, err
			}
		}
	} else if err := c.dir.Register(obj, layout.NumPages(), owner); err != nil {
		return 0, err
	}
	// Registration order is node 1..N: iterating the engines map would run
	// per-node side effects in randomized order.
	for i := 1; i <= c.cfg.Nodes; i++ {
		if err := c.engines[ids.NodeID(i)].RegisterObject(obj, class, owner); err != nil {
			return 0, err
		}
	}
	return obj, nil
}

// Submit schedules a root transaction: at virtual time `at`, node runs
// method on obj. The outcome is appended to Results in completion order.
func (c *Cluster) Submit(at time.Duration, nodeID ids.NodeID, obj ids.ObjectID, method string, arg []byte) error {
	return c.SubmitTagged(at, nodeID, obj, method, arg, nil)
}

// SubmitTagged is Submit with a caller-supplied identity surfaced on the
// Result (e.g. a workload root index).
func (c *Cluster) SubmitTagged(at time.Duration, nodeID ids.NodeID, obj ids.ObjectID, method string, arg []byte, tag any) error {
	eng, ok := c.engines[nodeID]
	if !ok {
		return fmt.Errorf("sim: unknown node %v", nodeID)
	}
	env := c.net.Env(nodeID)
	env.Go(func() {
		if at > 0 {
			env.Sleep(at)
		}
		out, fam, err := eng.Run(obj, method, arg)
		seq := c.commitSeqOf(fam)
		c.results = append(c.results, &Result{
			Node: nodeID, Obj: obj, Method: method, Out: out, Err: err,
			Family: fam, CommitSeq: seq, Tag: tag,
			At: at, Done: env.Now(),
		})
	})
	return nil
}

// Run drives the simulation to quiescence.
func (c *Cluster) Run() error { return c.net.Run() }

// Results returns the root-transaction outcomes in completion order.
func (c *Cluster) Results() []*Result { return c.results }

// ResultsByCommitOrder returns the outcomes sorted by the GDO's global
// commit sequence — the serialization order strict O2PL guarantees.
func (c *Cluster) ResultsByCommitOrder() []*Result {
	out := append([]*Result(nil), c.results...)
	sort.Slice(out, func(i, j int) bool { return out[i].CommitSeq < out[j].CommitSeq })
	return out
}

// FailedResults returns the outcomes whose Err is non-nil.
func (c *Cluster) FailedResults() []*Result {
	var out []*Result
	for _, r := range c.results {
		if r.Err != nil {
			out = append(out, r)
		}
	}
	return out
}

// Now returns the cluster's virtual time.
func (c *Cluster) Now() time.Duration { return c.net.Now() }

// commitSeqOf resolves a family's global commit sequence: from the Sharded
// router in legacy mode, from shard 0's current primary (the replicated
// sequencer) otherwise.
func (c *Cluster) commitSeqOf(fam ids.FamilyID) uint64 {
	if len(c.hosts) == 0 {
		seq, _ := c.dir.CommitSeq(fam)
		return seq
	}
	d := c.primaryDirOf(0)
	if d == nil {
		return 0
	}
	seq, _ := d.CommitSeq(fam)
	return seq
}

// primaryHostOf finds the host currently serving shard as primary: the one
// whose own map names it, at the highest epoch (a deposed or crashed
// ex-primary still claims the shard under its stale map and must lose).
// Epochs are unique per map, so the max-epoch claimant is unambiguous.
func (c *Cluster) primaryHostOf(shard int) *directory.Host {
	var best *directory.Host
	var bestEpoch uint64
	for _, id := range c.hostIDs {
		h := c.hosts[id]
		m := h.Map()
		if shard >= m.NumShards() || m.Primary[shard] != h.Self() {
			continue
		}
		if _, ok := h.PrimaryDir(shard); !ok {
			continue
		}
		if best == nil || m.Epoch > bestEpoch {
			best, bestEpoch = h, m.Epoch
		}
	}
	return best
}

// primaryDirOf returns the directory of shard's current primary (nil when
// no live host claims it).
func (c *Cluster) primaryDirOf(shard int) *gdo.Directory {
	h := c.primaryHostOf(shard)
	if h == nil {
		return nil
	}
	d, _ := h.PrimaryDir(shard)
	return d
}

// pageMapOf reads an object's authoritative page map from whichever
// directory currently owns it.
func (c *Cluster) pageMapOf(obj ids.ObjectID) ([]gdo.PageLoc, error) {
	if len(c.hosts) == 0 {
		return c.dir.PageMap(obj)
	}
	shard := c.place.ShardOf(obj)
	d := c.primaryDirOf(shard)
	if d == nil {
		return nil, fmt.Errorf("sim: no current primary for shard %d of %v", shard, obj)
	}
	return d.PageMap(obj)
}

// objects enumerates the registered object universe from the authoritative
// directories (each shard's current primary in replicated mode).
func (c *Cluster) objects() []ids.ObjectID {
	if len(c.hosts) == 0 {
		return c.dir.Objects()
	}
	var out []ids.ObjectID
	for s := 0; s < c.cfg.DirectoryShards; s++ {
		if d := c.primaryDirOf(s); d != nil {
			out = append(out, d.Objects()...)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// DirectoryDump renders the undrained lock state of the authoritative
// directory — the Sharded router in legacy mode, each shard's current
// primary in replicated mode (deposed and crashed ex-primaries excluded).
// Empty means fully drained.
func (c *Cluster) DirectoryDump() string {
	if len(c.hosts) == 0 {
		return c.dir.DebugDump()
	}
	out := ""
	for s := 0; s < c.cfg.DirectoryShards; s++ {
		h := c.primaryHostOf(s)
		if h == nil {
			continue
		}
		d, _ := h.PrimaryDir(s)
		if dump := d.DebugDump(); dump != "" {
			out += fmt.Sprintf("shard %d@host %v:\n%s", s, h.Self(), dump)
		}
	}
	return out
}

// Hosts returns the control-plane host IDs (empty in legacy mode).
func (c *Cluster) Hosts() []ids.NodeID { return append([]ids.NodeID(nil), c.hostIDs...) }

// Host returns a control-plane host by node ID (tests and oracles).
func (c *Cluster) Host(id ids.NodeID) *directory.Host { return c.hosts[id] }

// CurrentMap returns the newest placement map any host has adopted.
func (c *Cluster) CurrentMap() wire.PlacementMap {
	best := c.initialMap.Clone()
	for _, id := range c.hostIDs {
		if m := c.hosts[id].Map(); m.Epoch > best.Epoch {
			best = m
		}
	}
	return best
}

// ReshardOutcome records one scheduled online handoff's result.
type ReshardOutcome struct {
	Shard  int
	Target ids.NodeID
	OK     bool
	// Bytes is the exported shard snapshot size shipped to the target.
	Bytes uint64
	Err   error
}

// Reshard schedules an online handoff: at virtual time `at`, shard's
// current primary seals, drains, and transfers ownership (directory state,
// page maps, lock queues) to target — another control-plane host — while
// client traffic continues; parked requests are replayed or re-routed,
// never dropped. The outcome is appended to Reshards() when it resolves.
func (c *Cluster) Reshard(at time.Duration, shard int, target ids.NodeID) error {
	if len(c.hosts) == 0 {
		return errors.New("sim: Reshard requires Replicas > 0")
	}
	if _, ok := c.hosts[target]; !ok {
		return fmt.Errorf("sim: reshard target %v is not a control-plane host", target)
	}
	if shard < 0 || shard >= c.cfg.DirectoryShards {
		return fmt.Errorf("sim: reshard shard %d out of range", shard)
	}
	// The controller runs as a client of the control plane from node 1's
	// endpoint: route to the shard's current primary, retry on refusal
	// (e.g. a concurrent transfer), and record the terminal outcome.
	env := c.net.Env(ids.NodeID(1))
	rt := directory.NewRouteTable(env, nil, c.initialMap)
	env.Go(func() {
		if at > 0 {
			env.Sleep(at)
		}
		out := &ReshardOutcome{Shard: shard, Target: target}
		for attempt := 0; attempt < 8; attempt++ {
			reply, err := rt.Call(shard, &wire.HandoffStartReq{Shard: int32(shard), Target: target})
			if err != nil {
				out.Err = err
				break
			}
			hr, ok := reply.(*wire.HandoffStartResp)
			if !ok {
				out.Err = fmt.Errorf("sim: reshard reply %T", reply)
				break
			}
			rt.Adopt(hr.Map)
			if hr.OK {
				out.OK, out.Bytes, out.Err = true, hr.StateBytes, nil
				break
			}
			out.Err = fmt.Errorf("sim: reshard of shard %d to %v refused", shard, target)
			env.Sleep(time.Millisecond)
		}
		c.reshards = append(c.reshards, out)
	})
	return nil
}

// Reshards returns the scheduled handoff outcomes in completion order.
func (c *Cluster) Reshards() []*ReshardOutcome { return c.reshards }

// ObjectBytes assembles the authoritative final contents of obj by reading
// each page from the site holding its newest version (per the GDO page
// map). Used by tests to compare protocol runs and serial replays.
func (c *Cluster) ObjectBytes(obj ids.ObjectID) ([]byte, error) {
	pm, err := c.pageMapOf(obj)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(pm)*c.cfg.PageSize)
	for p, loc := range pm {
		store, ok := c.stores[loc.Node]
		if !ok {
			return nil, fmt.Errorf("sim: page map names unknown node %v", loc.Node)
		}
		data, ver, err := store.PageCopy(ids.PageID{Object: obj, Page: ids.PageNum(p)})
		if err != nil {
			return nil, fmt.Errorf("authoritative page %v/p%d: %w", obj, p, err)
		}
		if ver != loc.Version {
			return nil, fmt.Errorf("sim: %v/p%d version %d at %v, page map says %d",
				obj, p, ver, loc.Node, loc.Version)
		}
		out = append(out, data...)
	}
	return out, nil
}

// VerifyPageMapCoherence checks invariant 6 of DESIGN.md: after a run,
// every page-map entry points at a node that actually holds that version.
func (c *Cluster) VerifyPageMapCoherence() error {
	var errs []error
	for _, obj := range c.objects() {
		if _, err := c.ObjectBytes(obj); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Engine returns a node's engine (tests).
func (c *Cluster) Engine(id ids.NodeID) *node.Engine { return c.engines[id] }

// Store returns a node's page store (tests).
func (c *Cluster) Store(id ids.NodeID) *pstore.Store { return c.stores[id] }
