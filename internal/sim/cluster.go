// Package sim assembles the paper's simulation system (§5): a cluster of
// LOTEC sites over the deterministic event-driven network, the shared GDO,
// the randomized nested-object-transaction workload generator, and the
// experiment definitions that regenerate every figure of the evaluation.
package sim

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"lotec/internal/core"
	"lotec/internal/directory"
	"lotec/internal/fault"
	"lotec/internal/ids"
	"lotec/internal/netmodel"
	"lotec/internal/node"
	"lotec/internal/pstore"
	"lotec/internal/schema"
	"lotec/internal/stats"
	"lotec/internal/transport"
	"lotec/internal/txn"
)

// Config shapes a simulated cluster.
type Config struct {
	// Nodes is the number of sites (default 8).
	Nodes int
	// PageSize in bytes (default 4096).
	PageSize int
	// Protocol selects the default consistency protocol (core.LOTEC).
	Protocol core.Protocol
	// ProtocolOverrides selects a different protocol per class (§6
	// future-work extension).
	ProtocolOverrides map[ids.ClassID]core.Protocol
	// Net is the simulated network (default fast Ethernet + 20 µs software
	// cost, the paper's mid-range configuration).
	Net netmodel.Params
	// Strict enforces declared access sets (default true — the paper's
	// conservative compiler).
	Strict bool
	// Lenient disables Strict (kept separate so the zero value of Config
	// means strict).
	Lenient bool
	// MaxRetries bounds deadlock retries per root (default 20).
	MaxRetries int
	// DirectoryShards partitions the GDO into that many independent shards
	// (default 1 — the paper's single logical directory). Placement and
	// per-object cost attribution are unchanged at any shard count.
	DirectoryShards int
	// FetchConcurrency bounds in-flight per-site calls of one xfer
	// gather/push fan-out (default 4). The simulated trace is identical at
	// every setting; only modeled gather wall-clock changes.
	FetchConcurrency int
	// Faults, when non-nil, installs a deterministic network fault plan:
	// the virtual wire drops/delays/duplicates/reorders messages per the
	// plan, RPCs grow per-attempt timeouts with retransmission, and node
	// handlers are wrapped in an idempotency cache. Nil keeps the
	// historical fault-free paths byte-for-byte.
	Faults *fault.Plan
	// Retry overrides the transport retry policy (zero fields fall back
	// to the simulator defaults). Only consulted when Faults is non-nil.
	Retry transport.RetryPolicy
	// DeltaOff disables sub-page delta transfers (kept as the negative so
	// the zero value of Config means deltas on, like Strict/Lenient). With
	// deltas off the wire traffic is byte-identical to the pre-delta data
	// plane.
	DeltaOff bool
	// DeltaJournalDepth bounds the per-page dirty-range journal (sealed
	// epochs a delta may reach back across); <= 0 means
	// pstore.DefaultDeltaJournalDepth.
	DeltaJournalDepth int
	// DedicatedDirectory hosts the GDO on an extra (N+1)-th simulated node
	// instead of co-locating directory partitions with the data sites.
	// This mirrors the TCP deployment topology (server.Topology runs the
	// GDO as its own process), putting every lock/release round trip on
	// the simulated wire — required for apples-to-apples calibration
	// against the real cluster. Default false keeps the paper's historical
	// co-located layout and its exact traces.
	DedicatedDirectory bool
}

// withDefaults fills unset fields.
func (c Config) withDefaults() Config {
	if c.Nodes <= 0 {
		c.Nodes = 8
	}
	if c.PageSize <= 0 {
		c.PageSize = 4096
	}
	if c.Protocol == nil {
		c.Protocol = core.LOTEC
	}
	if c.Net.BandwidthBps == 0 {
		c.Net = netmodel.Ethernet100.WithSoftwareCost(20 * time.Microsecond)
	}
	c.Strict = !c.Lenient
	if c.MaxRetries <= 0 {
		c.MaxRetries = 20
	}
	if c.DirectoryShards <= 0 {
		c.DirectoryShards = 1
	}
	if c.FetchConcurrency <= 0 {
		c.FetchConcurrency = 4
	}
	return c
}

// Cluster is one simulated LOTEC deployment. Build it, add classes and
// bodies, create objects, submit root transactions, then Run.
type Cluster struct {
	cfg     Config
	net     *transport.SimNet
	dir     *directory.Sharded
	rec     *stats.Recorder
	schemas *schema.Registry
	methods *node.MethodTable
	mgr     *txn.Manager
	engines map[ids.NodeID]*node.Engine
	stores  map[ids.NodeID]*pstore.Store
	objGen  ids.ObjectIDGenerator

	results []*Result
}

// Result captures one submitted root transaction's outcome.
type Result struct {
	Node   ids.NodeID
	Obj    ids.ObjectID
	Method string
	Out    []byte
	Err    error
	// Family is the committed root transaction's family (the last attempt
	// if retried).
	Family ids.FamilyID
	// CommitSeq is the family's position in the GDO's global commit order
	// (0 if the root never committed).
	CommitSeq uint64
	// Tag is the caller-supplied identity from SubmitTagged.
	Tag any
	// At is the submitted arrival time; Done is the virtual time the root
	// finished (committed or gave up). Done-At is the commit latency the
	// calibrate loop compares against wall clock on TCP.
	At   time.Duration
	Done time.Duration
}

// NewCluster builds a cluster; classes must be added before objects, and
// objects before Run.
func NewCluster(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	c := &Cluster{
		cfg:     cfg,
		rec:     stats.NewRecorder(),
		dir:     directory.NewSharded(cfg.DirectoryShards, cfg.Nodes),
		schemas: schema.NewRegistry(cfg.PageSize),
		methods: node.NewMethodTable(),
		mgr:     txn.NewManager(),
		engines: make(map[ids.NodeID]*node.Engine, cfg.Nodes),
		stores:  make(map[ids.NodeID]*pstore.Store, cfg.Nodes),
	}
	// With a dedicated directory the GDO lives on an extra simulated node
	// (like the TCP deployment's standalone GDO process), so the network
	// has one env beyond the data sites and every directory op is a real
	// simulated round trip.
	simSize := cfg.Nodes
	dirNode := ids.NodeID(0)
	homeFn := c.dir.HomeNode
	if cfg.DedicatedDirectory {
		simSize = cfg.Nodes + 1
		dirNode = ids.NodeID(cfg.Nodes + 1)
		homeFn = func(ids.ObjectID) ids.NodeID { return dirNode }
	}
	c.net = transport.NewSimNet(simSize, cfg.Net, c.rec)
	faultsActive := false
	if cfg.Faults != nil {
		inj := fault.NewInjector(*cfg.Faults)
		faultsActive = inj.Active()
		c.net.InstallFaults(inj, cfg.Retry)
	}
	for i := 1; i <= simSize; i++ {
		id := ids.NodeID(i)
		isDir := cfg.DedicatedDirectory && id == dirNode
		var dirSvc directory.Service = c.dir
		if cfg.DedicatedDirectory && !isDir {
			// Data sites don't serve directory traffic in this layout.
			dirSvc = nil
		}
		store := pstore.NewStore(cfg.PageSize)
		eng, err := node.New(node.Config{
			Env:               c.net.Env(id),
			Store:             store,
			Schemas:           c.schemas,
			Methods:           c.methods,
			Manager:           c.mgr,
			Protocol:          cfg.Protocol,
			ProtocolOverrides: cfg.ProtocolOverrides,
			HomeFn:            homeFn,
			ShardFn:           c.dir.ShardOf,
			Dir:               dirSvc,
			Rec:               c.rec,
			MaxRetries:        cfg.MaxRetries,
			FetchConcurrency:  cfg.FetchConcurrency,
			Strict:            cfg.Strict,
			DeltaOff:          cfg.DeltaOff,
			DeltaJournalDepth: cfg.DeltaJournalDepth,
		})
		if err != nil {
			return nil, fmt.Errorf("node %v: %w", id, err)
		}
		if !isDir {
			c.engines[id] = eng
			c.stores[id] = store
		}
		if faultsActive {
			// At-least-once delivery needs exactly-once execution: replay
			// cached replies for duplicated idempotent requests. Inert
			// plans skip the wrap: with the injector uninstalled no
			// request is ever stamped, so the filter would be pure
			// pass-through overhead.
			c.net.SetHandler(id, fault.NewDedup().Wrap(eng.Handle))
		} else {
			c.net.SetHandler(id, eng.Handle)
		}
	}
	return c, nil
}

// Schemas exposes the class registry.
func (c *Cluster) Schemas() *schema.Registry { return c.schemas }

// Recorder exposes the run's statistics.
func (c *Cluster) Recorder() *stats.Recorder { return c.rec }

// Directory exposes the shared GDO (tests and verification).
func (c *Cluster) Directory() *directory.Sharded { return c.dir }

// Protocol returns the cluster's consistency protocol.
func (c *Cluster) Protocol() core.Protocol { return c.cfg.Protocol }

// Nodes returns the cluster size.
func (c *Cluster) Nodes() int { return c.cfg.Nodes }

// AddClass registers a class (and computes its layout).
func (c *Cluster) AddClass(cls *schema.Class) error { return c.schemas.Add(cls) }

// RegisterBody binds a Go body to class.method on every node.
func (c *Cluster) RegisterBody(cls *schema.Class, method string, fn node.MethodFunc) error {
	return c.methods.Register(cls, method, fn)
}

// CreateObject instantiates an object of class at owner and registers it
// everywhere (pages materialize at the owner at version 1).
func (c *Cluster) CreateObject(class ids.ClassID, owner ids.NodeID) (ids.ObjectID, error) {
	layout, err := c.schemas.Layout(class)
	if err != nil {
		return 0, err
	}
	obj := c.objGen.Next()
	if err := c.dir.Register(obj, layout.NumPages(), owner); err != nil {
		return 0, err
	}
	// Registration order is node 1..N: iterating the engines map would run
	// per-node side effects in randomized order.
	for i := 1; i <= c.cfg.Nodes; i++ {
		if err := c.engines[ids.NodeID(i)].RegisterObject(obj, class, owner); err != nil {
			return 0, err
		}
	}
	return obj, nil
}

// Submit schedules a root transaction: at virtual time `at`, node runs
// method on obj. The outcome is appended to Results in completion order.
func (c *Cluster) Submit(at time.Duration, nodeID ids.NodeID, obj ids.ObjectID, method string, arg []byte) error {
	return c.SubmitTagged(at, nodeID, obj, method, arg, nil)
}

// SubmitTagged is Submit with a caller-supplied identity surfaced on the
// Result (e.g. a workload root index).
func (c *Cluster) SubmitTagged(at time.Duration, nodeID ids.NodeID, obj ids.ObjectID, method string, arg []byte, tag any) error {
	eng, ok := c.engines[nodeID]
	if !ok {
		return fmt.Errorf("sim: unknown node %v", nodeID)
	}
	env := c.net.Env(nodeID)
	env.Go(func() {
		if at > 0 {
			env.Sleep(at)
		}
		out, fam, err := eng.Run(obj, method, arg)
		seq, _ := c.dir.CommitSeq(fam)
		c.results = append(c.results, &Result{
			Node: nodeID, Obj: obj, Method: method, Out: out, Err: err,
			Family: fam, CommitSeq: seq, Tag: tag,
			At: at, Done: env.Now(),
		})
	})
	return nil
}

// Run drives the simulation to quiescence.
func (c *Cluster) Run() error { return c.net.Run() }

// Results returns the root-transaction outcomes in completion order.
func (c *Cluster) Results() []*Result { return c.results }

// ResultsByCommitOrder returns the outcomes sorted by the GDO's global
// commit sequence — the serialization order strict O2PL guarantees.
func (c *Cluster) ResultsByCommitOrder() []*Result {
	out := append([]*Result(nil), c.results...)
	sort.Slice(out, func(i, j int) bool { return out[i].CommitSeq < out[j].CommitSeq })
	return out
}

// FailedResults returns the outcomes whose Err is non-nil.
func (c *Cluster) FailedResults() []*Result {
	var out []*Result
	for _, r := range c.results {
		if r.Err != nil {
			out = append(out, r)
		}
	}
	return out
}

// Now returns the cluster's virtual time.
func (c *Cluster) Now() time.Duration { return c.net.Now() }

// ObjectBytes assembles the authoritative final contents of obj by reading
// each page from the site holding its newest version (per the GDO page
// map). Used by tests to compare protocol runs and serial replays.
func (c *Cluster) ObjectBytes(obj ids.ObjectID) ([]byte, error) {
	pm, err := c.dir.PageMap(obj)
	if err != nil {
		return nil, err
	}
	out := make([]byte, 0, len(pm)*c.cfg.PageSize)
	for p, loc := range pm {
		store, ok := c.stores[loc.Node]
		if !ok {
			return nil, fmt.Errorf("sim: page map names unknown node %v", loc.Node)
		}
		data, ver, err := store.PageCopy(ids.PageID{Object: obj, Page: ids.PageNum(p)})
		if err != nil {
			return nil, fmt.Errorf("authoritative page %v/p%d: %w", obj, p, err)
		}
		if ver != loc.Version {
			return nil, fmt.Errorf("sim: %v/p%d version %d at %v, page map says %d",
				obj, p, ver, loc.Node, loc.Version)
		}
		out = append(out, data...)
	}
	return out, nil
}

// VerifyPageMapCoherence checks invariant 6 of DESIGN.md: after a run,
// every page-map entry points at a node that actually holds that version.
func (c *Cluster) VerifyPageMapCoherence() error {
	var errs []error
	for _, obj := range c.dir.Objects() {
		if _, err := c.ObjectBytes(obj); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Engine returns a node's engine (tests).
func (c *Cluster) Engine(id ids.NodeID) *node.Engine { return c.engines[id] }

// Store returns a node's page store (tests).
func (c *Cluster) Store(id ids.NodeID) *pstore.Store { return c.stores[id] }
