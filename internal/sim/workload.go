package sim

import (
	"fmt"

	"lotec/internal/ids"
	"lotec/internal/workload"
)

// The workload generator lives in internal/workload (shared with the TCP
// runtime and the spec compiler); this file binds it to the simulated
// cluster. The aliases keep the historical sim API — every experiment and
// test keeps reading sim.WorkloadConfig{...} — while the generator itself
// is runtime-agnostic.

// WorkloadConfig shapes the legacy randomly generated workload; see
// workload.Config.
type WorkloadConfig = workload.Config

// Call is one invocation in a generated transaction tree.
type Call = workload.Call

// RootSpec is one generated root transaction.
type RootSpec = workload.RootSpec

// ObjectSpec describes one generated object.
type ObjectSpec = workload.ObjectSpec

// Workload binds a generated workload to the simulated cluster.
type Workload struct {
	workload.Workload
}

// GenerateWorkload builds a reproducible workload from cfg (the legacy
// uniform random driver, unchanged traffic).
func GenerateWorkload(cfg WorkloadConfig) (*Workload, error) {
	w, err := workload.Generate(cfg)
	if err != nil {
		return nil, err
	}
	return &Workload{*w}, nil
}

// WrapWorkload binds an externally built workload (e.g. a compiled spec,
// workload.Compile) to the simulated cluster API.
func WrapWorkload(w *workload.Workload) *Workload {
	return &Workload{*w}
}

// encodeCall resolves object indexes against the created objects and
// serializes the subtree for the generic body.
func encodeCall(objs []ids.ObjectID, c Call) []byte {
	return workload.EncodeCall(objs, c)
}

// errInjectedFailure marks workload-injected aborts.
var errInjectedFailure = workload.ErrInjected

// Install adds the workload's classes, bodies and objects to a cluster and
// returns the created object IDs (indexable by ObjIndex).
func (w *Workload) Install(c *Cluster) ([]ids.ObjectID, error) {
	if c.Schemas().PageSize() != w.Cfg.PageSize {
		return nil, fmt.Errorf("sim: workload page size %d != cluster %d",
			w.Cfg.PageSize, c.Schemas().PageSize())
	}
	if c.Nodes() < w.Cfg.Nodes {
		return nil, fmt.Errorf("sim: workload wants %d nodes, cluster has %d",
			w.Cfg.Nodes, c.Nodes())
	}
	body := workload.Body(w.Cfg.WriteBytes)
	for _, cls := range w.Classes {
		if err := c.AddClass(cls); err != nil {
			return nil, err
		}
		for _, m := range cls.Methods() {
			if err := c.RegisterBody(cls, m.Name, body); err != nil {
				return nil, err
			}
		}
	}
	objects := make([]ids.ObjectID, 0, len(w.Objects))
	for _, spec := range w.Objects {
		obj, err := c.CreateObject(spec.Class, spec.Owner)
		if err != nil {
			return nil, err
		}
		objects = append(objects, obj)
	}
	return objects, nil
}

// SubmitAll schedules every generated root transaction, tagging each result
// with its index into Roots.
func (w *Workload) SubmitAll(c *Cluster, objects []ids.ObjectID) error {
	for i, root := range w.Roots {
		arg := encodeCall(objects, root.Call)
		obj := objects[root.Call.ObjIndex]
		if err := c.SubmitTagged(root.At, root.Node, obj, root.Call.Method, arg, i); err != nil {
			return err
		}
	}
	return nil
}

// Execute installs and runs the workload on a fresh cluster with the given
// cluster configuration and returns the cluster for inspection.
func (w *Workload) Execute(clusterCfg Config) (*Cluster, []ids.ObjectID, error) {
	clusterCfg.Nodes = w.Cfg.Nodes
	clusterCfg.PageSize = w.Cfg.PageSize
	if w.Cfg.MispredictProb > 0 {
		clusterCfg.Lenient = true
	}
	c, err := NewCluster(clusterCfg)
	if err != nil {
		return nil, nil, err
	}
	objects, err := w.Install(c)
	if err != nil {
		return nil, nil, err
	}
	if err := w.SubmitAll(c, objects); err != nil {
		return nil, nil, err
	}
	if err := c.Run(); err != nil {
		return c, objects, err
	}
	return c, objects, nil
}
