package sim

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"time"

	"lotec/internal/ids"
	"lotec/internal/node"
	"lotec/internal/schema"
)

// WorkloadConfig shapes a randomly generated nested-object-transaction
// workload (§5: "a number of randomly generated nested object transactions
// in a simulated distributed system … expressly designed to induce high
// degrees of conflict in object access").
type WorkloadConfig struct {
	// Seed makes the workload reproducible.
	Seed int64
	// Objects is the shared-object population size.
	Objects int
	// MinPages/MaxPages bound object sizes (the paper's "medium" objects
	// are 1–5 pages, "large" are 10–20).
	MinPages int
	MaxPages int
	// PageSize must match the cluster's (default 4096).
	PageSize int
	// Transactions is the number of root transactions.
	Transactions int
	// Nodes is the cluster size roots are load-balanced over.
	Nodes int
	// HotFraction of the objects receive HotWeight of the accesses; high
	// contention ≈ (0.25, 0.85), moderate ≈ (0.5, 0.5).
	HotFraction float64
	HotWeight   float64
	// MaxDepth bounds transaction nesting below the root.
	MaxDepth int
	// MaxFanout bounds sub-invocations per [sub-]transaction.
	MaxFanout int
	// WriteFraction is the probability an invocation picks an updating
	// method.
	WriteFraction float64
	// ArrivalSpacing is the mean spacing between root arrivals; small
	// values increase overlap and hence contention.
	ArrivalSpacing time.Duration
	// MispredictProb, when positive, makes method bodies additionally
	// write one undeclared segment with this probability — modelling
	// imperfect access prediction. Requires a Lenient cluster.
	MispredictProb float64
	// PredictionWiden widens every generated method's declared sets by
	// this many extra segments (ablation: how LOTEC degrades toward OTEC
	// as prediction gets more conservative).
	PredictionWiden int
	// AbortProb is the probability a generated [sub-]transaction fails
	// after performing its writes, exercising rollback at every nesting
	// level (failure injection; aborted subtrees are survived by parents
	// with probability ½, else propagated).
	AbortProb float64
	// WriteBytes, when positive, caps how many bytes each declared write
	// actually modifies (at the attribute's start) instead of rewriting the
	// whole attribute. Real update methods touch a few fields of a page-sized
	// object, which is what sub-page delta transfers exploit; 0 keeps the
	// historical whole-attribute writes (and their exact traces).
	WriteBytes int
	// DisorderProb is the probability an invocation ignores the canonical
	// ascending object-index order. The default (0) emits transactions
	// that acquire locks in a global order — the standard TP discipline
	// that makes deadlock structurally impossible; raise it to exercise
	// the deadlock detector (at the cost of abort/retry storms under high
	// contention).
	DisorderProb float64
}

// withDefaults fills unset fields.
func (c WorkloadConfig) withDefaults() WorkloadConfig {
	if c.Objects <= 0 {
		c.Objects = 20
	}
	if c.MinPages <= 0 {
		c.MinPages = 1
	}
	if c.MaxPages < c.MinPages {
		c.MaxPages = c.MinPages
	}
	if c.PageSize <= 0 {
		c.PageSize = 4096
	}
	if c.Transactions <= 0 {
		c.Transactions = 100
	}
	if c.Nodes <= 0 {
		c.Nodes = 8
	}
	if c.HotFraction <= 0 || c.HotFraction > 1 {
		c.HotFraction = 0.25
	}
	if c.HotWeight <= 0 || c.HotWeight > 1 {
		c.HotWeight = 0.85
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 3
	}
	if c.MaxFanout <= 0 {
		c.MaxFanout = 3
	}
	if c.WriteFraction <= 0 {
		c.WriteFraction = 0.7
	}
	if c.ArrivalSpacing <= 0 {
		c.ArrivalSpacing = 200 * time.Microsecond
	}
	return c
}

// Call is one invocation in a generated transaction tree.
type Call struct {
	ObjIndex int
	Method   string
	Seed     uint64
	// ExtraSeg, when > 0, makes the body write segment ExtraSeg-1 without
	// declaring it (misprediction modelling).
	ExtraSeg int
	// Fail makes the body return an error after its writes (rolled back).
	Fail bool
	// Tolerate makes a parent survive this child's failure instead of
	// propagating it.
	Tolerate bool
	Children []Call
}

// FailsOut predicts whether this call aborts out of its own frame: its own
// injected failure, or an untolerated child failure, propagates upward. A
// Tolerate'd child absorbs its whole failing subtree — even when the
// child's own failure came from a grandchild — so the parent survives.
// Tests compare executed outcomes against this oracle.
func (c Call) FailsOut() bool {
	for _, ch := range c.Children {
		if ch.FailsOut() && !ch.Tolerate {
			return true
		}
	}
	return c.Fail
}

// RootSpec is one generated root transaction.
type RootSpec struct {
	At   time.Duration
	Node ids.NodeID
	Call Call
}

// ObjectSpec describes one generated object.
type ObjectSpec struct {
	Class ids.ClassID
	Owner ids.NodeID
	Pages int
}

// Workload is a fully generated experiment input: classes, objects and the
// transaction forest. It is protocol-independent; install it into one
// cluster per protocol to compare them on identical input.
type Workload struct {
	Cfg     WorkloadConfig
	Classes []*schema.Class
	Objects []ObjectSpec
	Roots   []RootSpec
}

// segName returns the attribute name of segment i.
func segName(i int) string { return fmt.Sprintf("seg%d", i) }

// GenerateWorkload builds a reproducible workload from cfg.
func GenerateWorkload(cfg WorkloadConfig) (*Workload, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &Workload{Cfg: cfg}

	// One class per object size; each page is one segment attribute, so
	// declared attribute sets map 1:1 onto predicted page sets.
	classBySize := make(map[int]*schema.Class)
	for size := cfg.MinPages; size <= cfg.MaxPages; size++ {
		cls, err := buildSizedClass(ids.ClassID(size), size, cfg, rng)
		if err != nil {
			return nil, err
		}
		classBySize[size] = cls
		w.Classes = append(w.Classes, cls)
	}

	for i := 0; i < cfg.Objects; i++ {
		size := cfg.MinPages + rng.Intn(cfg.MaxPages-cfg.MinPages+1)
		w.Objects = append(w.Objects, ObjectSpec{
			Class: classBySize[size].ID,
			Owner: ids.NodeID(1 + rng.Intn(cfg.Nodes)),
			Pages: size,
		})
	}

	for i := 0; i < cfg.Transactions; i++ {
		at := time.Duration(i)*cfg.ArrivalSpacing +
			time.Duration(rng.Int63n(int64(cfg.ArrivalSpacing)))
		call, ok := w.genCall(rng, nil, nil, 0)
		if !ok {
			continue
		}
		w.Roots = append(w.Roots, RootSpec{
			At:   at,
			Node: ids.NodeID(1 + rng.Intn(cfg.Nodes)),
			Call: call,
		})
	}
	return w, nil
}

// buildSizedClass creates the class for objects of `size` pages: segment
// attributes seg0..seg{size-1} (one page each) and six methods — three
// updaters (w0..w2) and three readers (r0..r2) — with seeded random access
// subsets ("only a subset of which are normally updated by any
// method/transaction", §5).
func buildSizedClass(id ids.ClassID, size int, cfg WorkloadConfig, rng *rand.Rand) (*schema.Class, error) {
	b := schema.NewClassBuilder(id, fmt.Sprintf("Obj%dp", size))
	for i := 0; i < size; i++ {
		b.Attr(segName(i), cfg.PageSize)
	}
	subset := func(max int) []string {
		if max < 1 {
			max = 1
		}
		n := 1 + rng.Intn(max)
		n += cfg.PredictionWiden
		if n > size {
			n = size
		}
		perm := rng.Perm(size)
		out := make([]string, 0, n)
		for _, p := range perm[:n] {
			out = append(out, segName(p))
		}
		return out
	}
	third := (size + 2) / 3
	half := (size + 1) / 2
	for i := 0; i < 3; i++ {
		b.Method(schema.MethodSpec{
			Name:   fmt.Sprintf("w%d", i),
			Writes: subset(third),
			Reads:  subset(third),
		})
	}
	for i := 0; i < 3; i++ {
		b.Method(schema.MethodSpec{
			Name:  fmt.Sprintf("r%d", i),
			Reads: subset(half),
		})
	}
	return b.Build()
}

// pickObject draws an object index ≥ minIdx with the configured hot-set
// skew, avoiding indexes on the exclusion path (mutually recursive
// invocations are precluded, §3.4).
func (w *Workload) pickObject(rng *rand.Rand, exclude map[int]bool, minIdx int) (int, bool) {
	total := len(w.Objects)
	if minIdx >= total {
		return 0, false
	}
	hot := int(float64(total) * w.Cfg.HotFraction)
	if hot < 1 {
		hot = 1
	}
	for tries := 0; tries < 20; tries++ {
		var idx int
		if rng.Float64() < w.Cfg.HotWeight && minIdx < hot {
			idx = minIdx + rng.Intn(hot-minIdx)
		} else {
			idx = minIdx + rng.Intn(total-minIdx)
		}
		if !exclude[idx] {
			return idx, true
		}
	}
	return 0, false
}

// genCall builds one random invocation subtree. cursor tracks the highest
// object index acquired so far on the family's depth-first path: picking
// strictly above it yields globally ordered lock acquisition (deadlock-free
// by construction); DisorderProb occasionally breaks the order.
func (w *Workload) genCall(rng *rand.Rand, path map[int]bool, cursor *int, depth int) (Call, bool) {
	if path == nil {
		path = make(map[int]bool)
	}
	if cursor == nil {
		c := -1
		cursor = &c
	}
	minIdx := *cursor + 1
	if w.Cfg.DisorderProb > 0 && rng.Float64() < w.Cfg.DisorderProb {
		minIdx = 0
	}
	idx, ok := w.pickObject(rng, path, minIdx)
	if !ok {
		return Call{}, false
	}
	if idx > *cursor {
		*cursor = idx
	}
	size := w.Objects[idx].Pages
	var method string
	if rng.Float64() < w.Cfg.WriteFraction {
		method = fmt.Sprintf("w%d", rng.Intn(3))
	} else {
		method = fmt.Sprintf("r%d", rng.Intn(3))
	}
	c := Call{
		ObjIndex: idx,
		Method:   method,
		Seed:     rng.Uint64(),
	}
	if w.Cfg.MispredictProb > 0 && rng.Float64() < w.Cfg.MispredictProb {
		c.ExtraSeg = 1 + rng.Intn(size)
	}
	if w.Cfg.AbortProb > 0 && rng.Float64() < w.Cfg.AbortProb {
		c.Fail = true
		c.Tolerate = rng.Float64() < 0.5
	}
	if depth < w.Cfg.MaxDepth {
		budget := w.Cfg.MaxFanout - depth
		if budget > 0 {
			n := rng.Intn(budget + 1)
			path[idx] = true
			for i := 0; i < n; i++ {
				child, ok := w.genCall(rng, path, cursor, depth+1)
				if ok {
					c.Children = append(c.Children, child)
				}
			}
			delete(path, idx)
		}
	}
	return c, true
}

// script is the runtime form of a Call, carried in the invocation argument.
type script struct {
	seed     uint64
	extraSeg int
	fail     bool
	children []childRef
}

type childRef struct {
	obj      ids.ObjectID
	method   string
	tolerate bool
	arg      []byte
}

// encodeCall resolves object indexes against the created objects and
// serializes the subtree for the generic body.
func encodeCall(objs []ids.ObjectID, c Call) []byte {
	var buf bytes.Buffer
	var u64 [8]byte
	var u32 [4]byte
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(u64[:], v)
		buf.Write(u64[:])
	}
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		buf.Write(u32[:])
	}
	put64(c.Seed)
	put32(uint32(c.ExtraSeg))
	flags := uint32(0)
	if c.Fail {
		flags |= 1
	}
	put32(flags)
	put32(uint32(len(c.Children)))
	for _, ch := range c.Children {
		put64(uint64(objs[ch.ObjIndex]))
		m := []byte(ch.Method)
		put32(uint32(len(m)))
		buf.Write(m)
		cflags := uint32(0)
		if ch.Tolerate {
			cflags |= 1
		}
		put32(cflags)
		sub := encodeCall(objs, ch)
		put32(uint32(len(sub)))
		buf.Write(sub)
	}
	return buf.Bytes()
}

// decodeScript parses an encoded Call argument.
func decodeScript(arg []byte) (script, error) {
	var sc script
	r := bytes.NewReader(arg)
	var u64 [8]byte
	var u32 [4]byte
	get64 := func() (uint64, error) {
		if _, err := r.Read(u64[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(u64[:]), nil
	}
	get32 := func() (uint32, error) {
		if _, err := r.Read(u32[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(u32[:]), nil
	}
	seed, err := get64()
	if err != nil {
		return sc, fmt.Errorf("sim: bad script: %w", err)
	}
	sc.seed = seed
	extra, err := get32()
	if err != nil {
		return sc, fmt.Errorf("sim: bad script: %w", err)
	}
	sc.extraSeg = int(extra)
	flags, err := get32()
	if err != nil {
		return sc, fmt.Errorf("sim: bad script: %w", err)
	}
	sc.fail = flags&1 != 0
	n, err := get32()
	if err != nil {
		return sc, fmt.Errorf("sim: bad script: %w", err)
	}
	for i := uint32(0); i < n; i++ {
		obj, err := get64()
		if err != nil {
			return sc, fmt.Errorf("sim: bad script child: %w", err)
		}
		mlen, err := get32()
		if err != nil {
			return sc, fmt.Errorf("sim: bad script child: %w", err)
		}
		m := make([]byte, mlen)
		if _, err := r.Read(m); err != nil {
			return sc, fmt.Errorf("sim: bad script child: %w", err)
		}
		cflags, err := get32()
		if err != nil {
			return sc, fmt.Errorf("sim: bad script child: %w", err)
		}
		alen, err := get32()
		if err != nil {
			return sc, fmt.Errorf("sim: bad script child: %w", err)
		}
		a := make([]byte, alen)
		if alen > 0 {
			if _, err := r.Read(a); err != nil {
				return sc, fmt.Errorf("sim: bad script child: %w", err)
			}
		}
		sc.children = append(sc.children, childRef{
			obj:      ids.ObjectID(obj),
			method:   string(m),
			tolerate: cflags&1 != 0,
			arg:      a,
		})
	}
	return sc, nil
}

// genericBody interprets a script: read the method's declared read set,
// derive new contents from what was read (so serialization order is
// observable), write the declared write set, optionally perform one
// undeclared write, then run the sub-invocations in order.
func genericBody(ctx *node.Ctx) error { return genericBodyWith(ctx, 0) }

// genericBodyWith is genericBody with the WorkloadConfig.WriteBytes cap:
// writeBytes > 0 narrows each declared write to that many leading bytes.
func genericBodyWith(ctx *node.Ctx, writeBytes int) error {
	sc, err := decodeScript(ctx.Arg())
	if err != nil {
		return err
	}
	m := ctx.Method()
	cls := ctx.Class()
	var acc byte
	for _, aid := range m.Reads {
		a, err := cls.Attr(aid)
		if err != nil {
			return err
		}
		b, err := ctx.ReadAt(a.Name, 0, 1)
		if err != nil {
			return err
		}
		acc += b[0]
	}
	seedByte := byte(sc.seed)
	for _, aid := range m.Writes {
		a, err := cls.Attr(aid)
		if err != nil {
			return err
		}
		old, err := ctx.ReadAt(a.Name, 0, 1)
		if err != nil {
			return err
		}
		n := a.Size
		if writeBytes > 0 && writeBytes < n {
			n = writeBytes
		}
		fill := bytes.Repeat([]byte{old[0] + seedByte + acc + 1}, n)
		if err := ctx.WriteAt(a.Name, 0, fill); err != nil {
			return err
		}
	}
	if sc.extraSeg > 0 {
		if err := ctx.WriteAt(segName(sc.extraSeg-1), 0, []byte{seedByte + 1}); err != nil {
			return err
		}
	}
	for _, ch := range sc.children {
		if _, err := ctx.Invoke(ch.obj, ch.method, ch.arg); err != nil {
			if ch.tolerate && errors.Is(err, errInjectedFailure) {
				// Closed nesting: the child is rolled back; this parent
				// carries on (§3.2's "no unnecessary transaction roll
				// backs").
				continue
			}
			return err
		}
	}
	if sc.fail {
		return errInjectedFailure
	}
	ctx.SetResult([]byte{acc})
	return nil
}

// errInjectedFailure marks workload-injected aborts.
var errInjectedFailure = errors.New("sim: injected transaction failure")

// Install adds the workload's classes, bodies and objects to a cluster and
// returns the created object IDs (indexable by ObjIndex).
func (w *Workload) Install(c *Cluster) ([]ids.ObjectID, error) {
	if c.Schemas().PageSize() != w.Cfg.PageSize {
		return nil, fmt.Errorf("sim: workload page size %d != cluster %d",
			w.Cfg.PageSize, c.Schemas().PageSize())
	}
	if c.Nodes() < w.Cfg.Nodes {
		return nil, fmt.Errorf("sim: workload wants %d nodes, cluster has %d",
			w.Cfg.Nodes, c.Nodes())
	}
	body := genericBody
	if w.Cfg.WriteBytes > 0 {
		wb := w.Cfg.WriteBytes
		body = func(ctx *node.Ctx) error { return genericBodyWith(ctx, wb) }
	}
	for _, cls := range w.Classes {
		if err := c.AddClass(cls); err != nil {
			return nil, err
		}
		for _, m := range cls.Methods() {
			if err := c.RegisterBody(cls, m.Name, body); err != nil {
				return nil, err
			}
		}
	}
	objects := make([]ids.ObjectID, 0, len(w.Objects))
	for _, spec := range w.Objects {
		obj, err := c.CreateObject(spec.Class, spec.Owner)
		if err != nil {
			return nil, err
		}
		objects = append(objects, obj)
	}
	return objects, nil
}

// SubmitAll schedules every generated root transaction, tagging each result
// with its index into Roots.
func (w *Workload) SubmitAll(c *Cluster, objects []ids.ObjectID) error {
	for i, root := range w.Roots {
		arg := encodeCall(objects, root.Call)
		obj := objects[root.Call.ObjIndex]
		if err := c.SubmitTagged(root.At, root.Node, obj, root.Call.Method, arg, i); err != nil {
			return err
		}
	}
	return nil
}

// Execute installs and runs the workload on a fresh cluster with the given
// cluster configuration and returns the cluster for inspection.
func (w *Workload) Execute(clusterCfg Config) (*Cluster, []ids.ObjectID, error) {
	clusterCfg.Nodes = w.Cfg.Nodes
	clusterCfg.PageSize = w.Cfg.PageSize
	if w.Cfg.MispredictProb > 0 {
		clusterCfg.Lenient = true
	}
	c, err := NewCluster(clusterCfg)
	if err != nil {
		return nil, nil, err
	}
	objects, err := w.Install(c)
	if err != nil {
		return nil, nil, err
	}
	if err := w.SubmitAll(c, objects); err != nil {
		return nil, nil, err
	}
	if err := c.Run(); err != nil {
		return c, objects, err
	}
	return c, objects, nil
}
