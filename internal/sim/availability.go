package sim

// Control-plane availability experiments: how fast does the replicated
// directory recover from a primary crash, and what does an online shard
// handoff cost? RunAvailability sweeps replica counts with a deterministic
// primary-kill plan, then measures a reshard-under-load handoff on the
// same traffic. lotec-bench -smoke gates on these rows and records them in
// BENCH_results.json; the EXPERIMENTS.md availability table is this
// function's output.

import (
	"fmt"
	"sort"
	"time"

	"lotec/internal/core"
	"lotec/internal/fault"
	"lotec/internal/ids"
)

// AvailabilityRow is one replica count's measured recovery behaviour.
type AvailabilityRow struct {
	// Replicas is the control-plane host count (1 = relocatable but
	// unreplicated: a primary crash is unrecoverable by design).
	Replicas int `json:"replicas"`
	// Roots / FailedRoots account for every submitted transaction under
	// the primary-kill plan.
	Roots       int `json:"roots"`
	FailedRoots int `json:"failed_roots"`
	// Failovers is the number of client-observed failovers; FailoverP50/
	// P99 are the observed suspicion-to-adoption latencies.
	Failovers   int           `json:"failovers"`
	FailoverP50 time.Duration `json:"failover_p50_ns"`
	FailoverP99 time.Duration `json:"failover_p99_ns"`
	// Promotions counts backup promotions executed by the hosts.
	Promotions int64 `json:"promotions"`
	// AbortsPerFailover is FailedRoots/Failovers (0 when no failover).
	AbortsPerFailover float64 `json:"aborts_per_failover"`
	// HandoffBytes / HandoffLatency describe the reshard-under-load
	// handoff measured on the fault-free leg (0 when Replicas < 2).
	HandoffBytes   uint64        `json:"handoff_bytes"`
	HandoffLatency time.Duration `json:"handoff_ns"`
}

// availabilityWorkload is the traffic both legs run: chaos-matrix sized,
// but with no injected aborts, so every failed root is attributable to the
// control-plane fault under test.
func availabilityWorkload(seed int64) WorkloadConfig {
	return WorkloadConfig{
		Seed:           seed,
		Objects:        8,
		MinPages:       1,
		MaxPages:       3,
		PageSize:       512,
		Transactions:   20,
		Nodes:          4,
		HotFraction:    0.25,
		HotWeight:      0.6,
		ArrivalSpacing: 200 * time.Microsecond,
	}
}

// durP returns the p-quantile of the sorted duration set.
func durP(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

// RunAvailability measures one row per replica count. The kill leg crashes
// the first control-plane host 1 ms into the run (permanently); the
// handoff leg reruns the same workload fault-free with shard 0 resharded
// onto the last host mid-stream.
func RunAvailability(seed uint64, replicas []int) ([]AvailabilityRow, error) {
	var rows []AvailabilityRow
	for _, r := range replicas {
		cfg := availabilityWorkload(int64(seed))
		row := AvailabilityRow{Replicas: r}

		// Kill leg.
		w, err := GenerateWorkload(cfg)
		if err != nil {
			return nil, err
		}
		firstHost := cfg.Nodes + 1
		plan, err := fault.Parse(fmt.Sprintf("crash(node=%d,at=1ms)", firstHost), seed)
		if err != nil {
			return nil, err
		}
		c, _, err := w.Execute(Config{
			Protocol: core.LOTEC, Faults: plan, MaxRetries: 100,
			Replicas: r, DirectoryShards: 4, SpreadShards: true,
		})
		switch {
		case err != nil && r == 1:
			// No backup: killing the only host wedges whatever was parked
			// on it and the run cannot terminate cleanly. That IS the
			// availability result — every root is lost.
			row.Roots = cfg.Transactions
			row.FailedRoots = cfg.Transactions
		case err != nil:
			return nil, fmt.Errorf("availability (replicas=%d): %w", r, err)
		default:
			row.Roots = len(c.Results())
			for _, res := range c.Results() {
				if res.Err != nil {
					row.FailedRoots++
				}
			}
			var lats []time.Duration
			for _, f := range c.Recorder().Failovers() {
				lats = append(lats, f.Latency)
			}
			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			row.Failovers = len(lats)
			row.FailoverP50 = durP(lats, 0.50)
			row.FailoverP99 = durP(lats, 0.99)
			row.Promotions = c.Recorder().Counters().Promotions
			if row.Failovers > 0 {
				row.AbortsPerFailover = float64(row.FailedRoots) / float64(row.Failovers)
			}
		}

		// Handoff leg (needs a host that is not shard 0's primary).
		if r >= 2 {
			w2, err := GenerateWorkload(cfg)
			if err != nil {
				return nil, err
			}
			c2, err := NewCluster(Config{
				Protocol: core.LOTEC, Nodes: cfg.Nodes, PageSize: cfg.PageSize,
				MaxRetries: 100, Replicas: r, DirectoryShards: 4, SpreadShards: true,
			})
			if err != nil {
				return nil, err
			}
			objs, err := w2.Install(c2)
			if err != nil {
				return nil, err
			}
			if err := w2.SubmitAll(c2, objs); err != nil {
				return nil, err
			}
			// Spread layout: shard 0's primary is the first host, so the
			// last host (primary of shard r-1 at most) receives it.
			target := ids.NodeID(cfg.Nodes + r)
			if err := c2.Reshard(2*time.Millisecond, 0, target); err != nil {
				return nil, err
			}
			if err := c2.Run(); err != nil {
				return nil, fmt.Errorf("handoff leg (replicas=%d): %w", r, err)
			}
			for _, h := range c2.Recorder().Handoffs() {
				row.HandoffBytes += uint64(h.Bytes)
				if h.Latency > row.HandoffLatency {
					row.HandoffLatency = h.Latency
				}
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AvailabilityTable renders rows as the EXPERIMENTS.md markdown table.
func AvailabilityTable(rows []AvailabilityRow) string {
	s := "| replicas | roots | failed | failovers | failover p50 | failover p99 | promotions | aborts/failover | handoff bytes | handoff latency |\n"
	s += "|---|---|---|---|---|---|---|---|---|---|\n"
	for _, r := range rows {
		s += fmt.Sprintf("| %d | %d | %d | %d | %v | %v | %d | %.2f | %d | %v |\n",
			r.Replicas, r.Roots, r.FailedRoots, r.Failovers,
			r.FailoverP50, r.FailoverP99, r.Promotions, r.AbortsPerFailover,
			r.HandoffBytes, r.HandoffLatency)
	}
	return s
}
