// Package node implements a LOTEC site runtime: the engine that executes
// nested object transactions at one node and drives the whole protocol —
// local lock acquisition and release (Alg 4.1/4.3 via package o2pl), global
// operations against the GDO (Alg 4.2/4.4 via messages), the transfer of
// updated pages (Alg 4.5), demand fetches, undo, and root-commit/abort
// processing with automatic deadlock-victim retry.
//
// The engine is transport-agnostic: under transport.SimNet it reproduces
// the paper's deterministic simulation; under the TCP transport (package
// server) the identical code runs a real distributed system.
package node

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"lotec/internal/core"
	"lotec/internal/directory"
	"lotec/internal/gdo"
	"lotec/internal/ids"
	"lotec/internal/o2pl"
	"lotec/internal/pstore"
	"lotec/internal/schema"
	"lotec/internal/stats"
	"lotec/internal/transport"
	"lotec/internal/txn"
	"lotec/internal/wire"
	"lotec/internal/xfer"
)

// Engine errors.
var (
	// ErrDeadlockVictim marks a family aborted by the GDO's deadlock
	// resolution; Run retries such roots automatically.
	ErrDeadlockVictim = errors.New("node: family aborted as deadlock victim")
	// ErrUnknownObject is returned for operations on unregistered objects.
	ErrUnknownObject = errors.New("node: unknown object")
	// ErrUnknownMethod is returned when no body is registered for a method.
	ErrUnknownMethod = errors.New("node: no body registered for method")
	// ErrUndeclaredAccess is returned in strict mode when a method touches
	// an attribute outside its declared access sets — the conservative
	// prediction contract of §3.5 would be violated.
	ErrUndeclaredAccess = errors.New("node: access outside declared attribute set")
	// ErrRetriesExhausted is returned by Run when a root keeps losing
	// deadlock resolution.
	ErrRetriesExhausted = errors.New("node: deadlock retries exhausted")
	// ErrSiteUnreachable marks a root aborted because a home site or page
	// source stopped answering (every transport-level retry timed out).
	// The root is rolled back through the normal abort path — shadow-page
	// undo plus lock hand-back — instead of hanging on the dead peer.
	ErrSiteUnreachable = errors.New("node: site unreachable")
)

// siteErr maps transport-level delivery failures (timeout, retries
// exhausted) to ErrSiteUnreachable so callers can distinguish "the
// network gave up" from protocol errors; other errors pass through.
func siteErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, transport.ErrUnreachable) || errors.Is(err, transport.ErrTimeout) {
		return errors.Join(ErrSiteUnreachable, err)
	}
	return err
}

// Config assembles an Engine.
type Config struct {
	// Env is the node's transport endpoint.
	Env transport.Env
	// Store is the node's paged memory.
	Store *pstore.Store
	// Schemas holds every class and layout.
	Schemas *schema.Registry
	// Methods maps class methods to Go bodies.
	Methods *MethodTable
	// Manager issues transactions. Share one across nodes in-process; give
	// each node a disjoint-namespace manager over TCP.
	Manager *txn.Manager
	// Protocol is the default consistency protocol.
	Protocol core.Protocol
	// ProtocolOverrides selects a different protocol per class — the §6
	// future-work extension ("different consistency protocols … on a
	// per-class basis"). Every node of a deployment must configure the
	// same overrides.
	ProtocolOverrides map[ids.ClassID]core.Protocol
	// HomeFn maps an object to the node hosting its GDO partition.
	HomeFn func(ids.ObjectID) ids.NodeID
	// ShardFn maps an object to its directory shard. All nodes of a
	// deployment must agree with the directory's own placement; nil means
	// a single-shard directory (every object on shard 0).
	ShardFn func(ids.ObjectID) int
	// Dir, when non-nil, makes this node serve GDO requests from Dir —
	// either a single *gdo.Directory or a *directory.Sharded router.
	Dir directory.Service
	// Route, when non-nil, sends every GDO request through the replicated
	// control plane's placement map instead of HomeFn: calls go to the
	// shard's current primary, stale-epoch rejections re-aim, and an
	// unreachable primary triggers client-driven backup promotion.
	Route *directory.RouteTable
	// Rec records the message trace and counters; may be nil.
	Rec *stats.Recorder
	// MaxRetries bounds deadlock-victim retries of a root (default 20).
	MaxRetries int
	// FetchConcurrency bounds the in-flight per-site calls of one xfer
	// gather or push fan-out (default 4). The byte/message trace is
	// identical at every setting; only wall-clock changes.
	FetchConcurrency int
	// Strict rejects accesses outside declared sets (the paper's
	// conservative-compiler contract). When false, undeclared accesses are
	// allowed and satisfied by demand fetches (the §4.3 fallback),
	// modelling imperfect prediction.
	Strict bool
	// DeltaOff disables sub-page delta transfers (the -delta=off escape
	// hatch): fetches carry no base versions and pushes stage only full
	// pages, making the wire traffic byte-identical to the pre-delta data
	// plane. Dirty-range journaling in the store stays on either way — it is
	// invisible to the trace.
	DeltaOff bool
	// DeltaJournalDepth bounds how many sealed dirty-range epochs the store
	// retains per page (how far back a delta can reach before falling back
	// to a full page). <= 0 means pstore.DefaultDeltaJournalDepth.
	DeltaJournalDepth int
}

// pendKey identifies one transaction's outstanding global request.
type pendKey struct {
	obj ids.ObjectID
	tx  ids.TxID
}

// pendingReq is a parked global acquisition.
type pendingReq struct {
	fut  transport.Future
	tx   *txn.Txn
	mode o2pl.Mode
}

// entryMeta is the consistency-side companion of a lock entry: the page map
// snapshot sent with the grant and the transfer bookkeeping.
type entryMeta struct {
	pageMap    []gdo.PageLoc
	lastWriter ids.NodeID // single gather source for COTEC/OTEC
	fetched    bool       // a FirstSinceGrant transfer has run
}

// famState is everything the engine tracks for one local family.
type famState struct {
	root    *txn.Txn
	age     uint64 // stable deadlock priority (first attempt's root TxID)
	entries map[ids.ObjectID]*o2pl.Entry
	meta    map[ids.ObjectID]*entryMeta
	doomed  error
}

// txState is the engine-side state of one [sub-]transaction.
type txState struct {
	t        *txn.Txn
	fam      *famState
	parent   *txState
	undo     *pstore.UndoLog
	involved map[ids.ObjectID]bool // objects whose locks this tx holds or retains
	updated  map[ids.ObjectID]bool // objects this tx (or pre-committed children) wrote
}

// Engine is one site's protocol runtime. All public methods are safe for
// concurrent use by multiple transaction procs.
type Engine struct {
	cfg  Config
	env  transport.Env
	self ids.NodeID
	xfer *xfer.Engine // the Alg 4.5 data plane

	mu       sync.Mutex
	objClass map[ids.ObjectID]ids.ClassID // guarded by mu
	fams     map[ids.FamilyID]*famState   // guarded by mu
	pending  map[pendKey]*pendingReq      // guarded by mu
}

// New creates an Engine and installs its message handler on the Env's
// transport (via the returned Handler — the caller wires it, since
// transports differ).
func New(cfg Config) (*Engine, error) {
	if cfg.Env == nil || cfg.Store == nil || cfg.Schemas == nil || cfg.Methods == nil ||
		cfg.Manager == nil || cfg.Protocol == nil || cfg.HomeFn == nil {
		return nil, errors.New("node: incomplete config")
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 50
	}
	if cfg.FetchConcurrency <= 0 {
		cfg.FetchConcurrency = 4
	}
	cfg.Store.SetJournalDepth(cfg.DeltaJournalDepth)
	return &Engine{
		cfg:  cfg,
		env:  cfg.Env,
		self: cfg.Env.Self(),
		xfer: &xfer.Engine{
			Env:         cfg.Env,
			Store:       cfg.Store,
			Rec:         cfg.Rec,
			Concurrency: cfg.FetchConcurrency,
			DeltaOff:    cfg.DeltaOff,
		},
		objClass: make(map[ids.ObjectID]ids.ClassID),
		fams:     make(map[ids.FamilyID]*famState),
		pending:  make(map[pendKey]*pendingReq),
	}, nil
}

// Self returns the node's ID.
func (e *Engine) Self() ids.NodeID { return e.self }

// shardOf resolves an object's directory shard for outgoing lock messages.
func (e *Engine) shardOf(obj ids.ObjectID) int32 {
	if e.cfg.ShardFn == nil {
		return 0
	}
	return int32(e.cfg.ShardFn(obj))
}

// gdoCall sends a GDO request: through the replicated control plane's route
// table when configured (the shard's current primary, wherever the placement
// map says it lives), else directly to the static home node.
func (e *Engine) gdoCall(shard int32, home ids.NodeID, m wire.Msg) (wire.Msg, error) {
	if e.cfg.Route != nil {
		return e.cfg.Route.Call(int(shard), m)
	}
	return e.env.Call(home, m)
}

// Protocol returns the default consistency protocol.
func (e *Engine) Protocol() core.Protocol { return e.cfg.Protocol }

// protocolFor resolves the protocol governing an object (per-class
// override, else the default).
func (e *Engine) protocolFor(obj ids.ObjectID) core.Protocol {
	if len(e.cfg.ProtocolOverrides) == 0 {
		return e.cfg.Protocol
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.protocolForLocked(obj)
}

// protocolForLocked is protocolFor for callers already holding e.mu.
func (e *Engine) protocolForLocked(obj ids.ObjectID) core.Protocol {
	if cid, ok := e.objClass[obj]; ok {
		if p, ok := e.cfg.ProtocolOverrides[cid]; ok {
			return p
		}
	}
	return e.cfg.Protocol
}

// RegisterObject makes an object of the given class known to this node.
// The owner node additionally materializes all pages at version 1,
// matching the GDO's initial page map.
func (e *Engine) RegisterObject(obj ids.ObjectID, class ids.ClassID, owner ids.NodeID) error {
	layout, err := e.cfg.Schemas.Layout(class)
	if err != nil {
		return err
	}
	if err := e.cfg.Store.Register(obj, layout.NumPages()); err != nil {
		return err
	}
	e.mu.Lock()
	e.objClass[obj] = class
	e.mu.Unlock()
	if owner == e.self {
		zero := make([]byte, e.cfg.Store.PageSize())
		for p := 0; p < layout.NumPages(); p++ {
			pid := ids.PageID{Object: obj, Page: ids.PageNum(p)}
			if err := e.cfg.Store.InstallPage(pid, zero, 1); err != nil {
				return err
			}
		}
	}
	return nil
}

// classOf resolves an object's class and layout.
func (e *Engine) classOf(obj ids.ObjectID) (*schema.Class, *schema.Layout, error) {
	e.mu.Lock()
	cid, ok := e.objClass[obj]
	e.mu.Unlock()
	if !ok {
		return nil, nil, fmt.Errorf("%w: %v", ErrUnknownObject, obj)
	}
	cls, err := e.cfg.Schemas.Class(cid)
	if err != nil {
		return nil, nil, err
	}
	layout, err := e.cfg.Schemas.Layout(cid)
	if err != nil {
		return nil, nil, err
	}
	return cls, layout, nil
}

// Run executes one root transaction: invoke method on obj, retrying if the
// family is chosen as a deadlock victim (bounded by MaxRetries, with a
// linearly growing backoff so the competing family can finish).
func (e *Engine) Run(obj ids.ObjectID, method string, arg []byte) ([]byte, ids.FamilyID, error) {
	var lastErr error
	var age uint64 // stable deadlock priority across retries (first root's TxID)
	for attempt := 0; attempt <= e.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			if e.cfg.Rec != nil {
				e.cfg.Rec.AddRetry()
			}
			e.env.Sleep(time.Duration(attempt) * 100 * time.Microsecond)
		}
		res, fam, err := e.invokeRoot(obj, method, arg, &age)
		if err == nil {
			return res, fam, nil
		}
		lastErr = err
		if !errors.Is(err, ErrDeadlockVictim) {
			return nil, fam, err
		}
	}
	return nil, 0, fmt.Errorf("%w after %d attempts: %v", ErrRetriesExhausted, e.cfg.MaxRetries, lastErr)
}

// invokeRoot runs one root attempt, reporting the family it used. age is
// assigned from the first attempt's root TxID and then kept stable.
func (e *Engine) invokeRoot(obj ids.ObjectID, method string, arg []byte, age *uint64) ([]byte, ids.FamilyID, error) {
	res, fam, err := e.invokeInner(nil, obj, method, arg, age)
	return res, fam, err
}

// InvokeSpec names one child invocation for parallel execution.
type InvokeSpec struct {
	Obj    ids.ObjectID
	Method string
	Arg    []byte
}

// InvokeResult is one parallel child's outcome.
type InvokeResult struct {
	Out []byte
	Err error
}

// invokeParallel runs several sub-transactions of parent concurrently, one
// proc each, and joins them. This is the intra-family concurrency §3.3/§4.3
// of the paper permits ("it is also possible to have concurrent operations
// on a single object but only within a single transaction family"); as the
// paper prescribes, ordering correctness *between siblings* is the
// programmer's responsibility — siblings that acquire overlapping objects
// in opposite orders can deadlock the family, since intra-family waits are
// invisible to the GDO's detector.
func (e *Engine) invokeParallel(parent *txState, calls []InvokeSpec) []InvokeResult {
	results := make([]InvokeResult, len(calls))
	futures := make([]transport.Future, len(calls))
	for i := range calls {
		i := i
		f := e.env.NewFuture()
		futures[i] = f
		call := calls[i]
		e.env.Go(func() {
			out, err := e.invoke(parent, call.Obj, call.Method, call.Arg)
			results[i] = InvokeResult{Out: out, Err: err}
			f.Complete(nil, nil)
		})
	}
	for _, f := range futures {
		_, _ = f.Wait()
	}
	return results
}

// invoke runs one method invocation as a [sub-]transaction: acquire the
// object's lock (mode W when the method declares writes), transfer pages
// per the protocol, run the body, then pre-commit (or commit at the root)
// or abort.
func (e *Engine) invoke(parent *txState, obj ids.ObjectID, method string, arg []byte) ([]byte, error) {
	res, _, err := e.invokeInner(parent, obj, method, arg, nil)
	return res, err
}

// invokeInner is invoke plus the family identity of the transaction it ran.
func (e *Engine) invokeInner(parent *txState, obj ids.ObjectID, method string, arg []byte, age *uint64) ([]byte, ids.FamilyID, error) {
	cls, layout, err := e.classOf(obj)
	if err != nil {
		return nil, 0, err
	}
	m, err := cls.MethodByName(method)
	if err != nil {
		return nil, 0, err
	}
	body, err := e.cfg.Methods.lookup(cls.ID, m.ID)
	if err != nil {
		return nil, 0, err
	}

	ts, err := e.beginTx(parent)
	if err != nil {
		return nil, 0, err
	}
	if age != nil {
		if *age == 0 {
			*age = uint64(ts.t.ID())
		}
		ts.fam.age = *age
	}
	fam := ts.t.Family()

	mode := o2pl.Read
	if len(m.Writes) > 0 {
		mode = o2pl.Write
	}
	if err := e.acquire(ts, obj, mode); err != nil {
		e.abortTx(ts)
		return nil, fam, e.decorate(ts, err)
	}
	if err := e.transfer(ts, obj, layout, m); err != nil {
		e.abortTx(ts)
		return nil, fam, e.decorate(ts, err)
	}

	ctx := &Ctx{eng: e, ts: ts, obj: obj, cls: cls, layout: layout, method: m, arg: arg}
	if err := body(ctx); err != nil {
		e.abortTx(ts)
		return nil, fam, e.decorate(ts, err)
	}
	if doomed := e.doomOf(ts); doomed != nil {
		e.abortTx(ts)
		return nil, fam, doomed
	}

	if ts.t.IsRoot() {
		if err := e.commitRoot(ts); err != nil {
			return nil, fam, err
		}
	} else if err := e.preCommit(ts); err != nil {
		e.abortTx(ts)
		return nil, fam, e.decorate(ts, err)
	}
	return ctx.result, fam, nil
}

// decorate prefers the family's doom cause over a derived error, so
// deadlock victims surface as ErrDeadlockVictim at the root.
func (e *Engine) decorate(ts *txState, err error) error {
	if doomed := e.doomOf(ts); doomed != nil {
		return doomed
	}
	return err
}

// doomOf returns the family's doom error, if condemned.
func (e *Engine) doomOf(ts *txState) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return ts.fam.doomed
}

// beginTx creates the txState (and famState for roots).
func (e *Engine) beginTx(parent *txState) (*txState, error) {
	if parent == nil {
		t := e.cfg.Manager.Begin(e.self)
		fam := &famState{
			root:    t,
			entries: make(map[ids.ObjectID]*o2pl.Entry),
			meta:    make(map[ids.ObjectID]*entryMeta),
		}
		ts := &txState{
			t: t, fam: fam,
			undo:     pstore.NewUndoLog(),
			involved: make(map[ids.ObjectID]bool),
			updated:  make(map[ids.ObjectID]bool),
		}
		e.mu.Lock()
		e.fams[t.Family()] = fam
		e.mu.Unlock()
		return ts, nil
	}
	if doomed := e.doomOf(parent); doomed != nil {
		return nil, doomed
	}
	t, err := e.cfg.Manager.BeginChild(parent.t)
	if err != nil {
		return nil, err
	}
	return &txState{
		t: t, fam: parent.fam, parent: parent,
		undo:     pstore.NewUndoLog(),
		involved: make(map[ids.ObjectID]bool),
		updated:  make(map[ids.ObjectID]bool),
	}, nil
}

// preCommit applies rule 3 of §4.1: the parent inherits and retains every
// lock the transaction holds or retains; the undo log and updated-set merge
// into the parent so an ancestor abort still rolls everything back.
func (e *Engine) preCommit(ts *txState) error {
	e.mu.Lock()
	var wake []*o2pl.Waiter
	// Sorted: PreCommit's grant hand-offs schedule wake-ups whose order is
	// part of the deterministic trace.
	for _, obj := range sortedObjKeys(ts.involved) {
		if entry := ts.fam.entries[obj]; entry != nil {
			wake = append(wake, entry.PreCommit(ts.t)...)
		}
		ts.parent.involved[obj] = true
	}
	for obj := range ts.updated {
		ts.parent.updated[obj] = true
	}
	// Still under e.mu: parallel siblings (InvokeAll) may pre-commit into
	// the same parent concurrently, and UndoLog is not otherwise locked.
	ts.undo.MergeInto(ts.parent.undo)
	e.mu.Unlock()

	err := e.cfg.Manager.PreCommit(ts.t)
	// Wake the granted siblings even when the manager refuses the
	// pre-commit: the locks were already handed off under e.mu above, and
	// a parked waiter nobody completes is lost forever — the family's
	// abort path only wakes waiters still registered on entries.
	completeAll(wake, nil)
	return err
}

// abortTx applies rule 4 of §4.1 plus Alg 4.3's abort cases: undo the
// transaction's (and its pre-committed descendants') effects, then release
// each involved lock — back to a retaining ancestor if one exists, else to
// the GDO.
func (e *Engine) abortTx(ts *txState) {
	if e.cfg.Rec != nil && ts.t.IsRoot() {
		e.cfg.Rec.AddAbort()
	}
	// UNDO before lock release: no one may observe partial state.
	ts.undo.Undo(e.cfg.Store)

	e.mu.Lock()
	var wake []*o2pl.Waiter
	var releaseGlobal []ids.ObjectID
	// Sorted: Abort's grant hand-offs wake siblings in an order the trace
	// observes.
	for _, obj := range sortedObjKeys(ts.involved) {
		entry := ts.fam.entries[obj]
		if entry == nil {
			continue
		}
		out := entry.Abort(ts.t)
		wake = append(wake, out.Granted...)
		if out.ReleaseGlobal {
			releaseGlobal = append(releaseGlobal, obj)
			delete(ts.fam.entries, obj)
			delete(ts.fam.meta, obj)
		}
	}
	fam := ts.fam
	root := ts.t.IsRoot()
	if root {
		// A grant that arrived after the family was doomed creates an entry
		// no transaction ever held; the root abort must hand those back too.
		released := make(map[ids.ObjectID]bool, len(releaseGlobal))
		for _, obj := range releaseGlobal {
			released[obj] = true
		}
		for _, obj := range sortedObjKeys(fam.entries) {
			if !released[obj] && fam.entries[obj].Idle() {
				releaseGlobal = append(releaseGlobal, obj)
				delete(fam.entries, obj)
				delete(fam.meta, obj)
			}
		}
		delete(e.fams, ts.t.Family())
	}
	e.mu.Unlock()

	_ = e.cfg.Manager.Abort(ts.t)
	completeAll(wake, nil)

	// Alg 4.3: "ELSE /* not retained by an ancestor */ Forward request to
	// GlobalLockRelease /* no dirty page info */".
	sort.Slice(releaseGlobal, func(i, j int) bool { return releaseGlobal[i] < releaseGlobal[j] })
	// Abort is best-effort, like Manager.Abort above: the local state is
	// already torn down, and a lost release is recovered by GDO timeout.
	_ = e.releaseGlobal(fam, releaseGlobal, nil, false, nil)
}

// commitRoot applies rule 5 of §4.1 / Alg 4.4: release every lock the
// family holds or retains, piggybacking the dirty-page info, then restamp
// local copies with the directory-assigned versions. Under RC, dirty pages
// are pushed to all caching sites first.
func (e *Engine) commitRoot(ts *txState) error {
	e.mu.Lock()
	objs := sortedObjKeys(ts.fam.entries)
	dirty := make(map[ids.ObjectID][]ids.PageNum, len(objs))
	for _, obj := range objs {
		dirty[obj] = e.cfg.Store.DirtyPages(obj)
	}
	fam := ts.fam
	delete(e.fams, ts.t.Family())
	e.mu.Unlock()

	// Replicated mode: the commit sequencer is shard 0's primary, and the
	// per-shard releases below fan out to whichever hosts own the shards.
	// Ask the sequencer for our position first so the global commit order
	// is fixed before any shard observes the release (the sequencer shard's
	// own release then finds the assignment already present and keeps it).
	if e.cfg.Route != nil {
		reply, err := e.cfg.Route.Call(0, &wire.CommitSeqReq{Family: ts.t.Family()})
		if err != nil {
			return fmt.Errorf("commit seq: %w", siteErr(err))
		}
		if er, ok := reply.(*wire.ErrResp); ok {
			return fmt.Errorf("commit seq: %s", er.Msg)
		}
	}

	// Restamp dirty pages to version+1 and clear their dirty flags *before*
	// the release leaves: the directory assigns exactly +1 per committing
	// release, and the next holder may be granted — and may fetch from, or
	// even run at, this site — the instant the GDO processes the release,
	// before its reply returns here. The reply's stamps are verified
	// against this prediction below.
	predicted, err := e.restampDirty(objs, dirty)
	if err != nil {
		return err
	}
	for _, obj := range objs {
		e.cfg.Store.ClearDirty(obj, dirty[obj])
	}

	var pushObjs []ids.ObjectID
	for _, obj := range objs {
		if e.protocolFor(obj).PushOnRelease() {
			pushObjs = append(pushObjs, obj)
		}
	}
	if len(pushObjs) > 0 {
		if err := e.pushUpdates(pushObjs, dirty); err != nil {
			return fmt.Errorf("rc push: %w", err)
		}
	}
	if err := e.releaseGlobal(fam, objs, dirty, true, predicted); err != nil {
		return err
	}
	ts.undo.Discard()
	if err := e.cfg.Manager.CommitRoot(ts.t); err != nil {
		return err
	}
	if e.cfg.Rec != nil {
		e.cfg.Rec.AddCommit()
	}
	return nil
}

// releaseGlobal sends GlobalLockRelease for the given objects, batched per
// GDO home partition, and restamps local pages from the returned versions.
// dirty may be nil (abort path).
// restampDirty advances each dirty page's local version by one and returns
// the predicted stamps keyed by page.
func (e *Engine) restampDirty(objs []ids.ObjectID, dirty map[ids.ObjectID][]ids.PageNum) (map[ids.PageID]uint64, error) {
	predicted := make(map[ids.PageID]uint64)
	for _, obj := range objs {
		for _, p := range dirty[obj] {
			pid := ids.PageID{Object: obj, Page: p}
			v, ok := e.cfg.Store.PageVersion(pid)
			if !ok {
				return nil, fmt.Errorf("node: dirty page %v not resident at commit", pid)
			}
			if err := e.cfg.Store.SetPageVersion(pid, v+1); err != nil {
				return nil, err
			}
			predicted[pid] = v + 1
		}
	}
	return predicted, nil
}

func (e *Engine) releaseGlobal(fam *famState, objs []ids.ObjectID, dirty map[ids.ObjectID][]ids.PageNum, commit bool, predicted map[ids.PageID]uint64) error {
	if len(objs) == 0 {
		return nil
	}
	// One batch per (home node, directory shard): shard-addressed releases
	// let the GDO host hand each batch straight to the owning partition.
	type dest struct {
		home  ids.NodeID
		shard int32
	}
	byDest := make(map[dest][]gdo.ObjectRelease)
	for _, obj := range objs {
		d := dest{home: e.cfg.HomeFn(obj), shard: e.shardOf(obj)}
		if e.cfg.Route != nil {
			// Replicated mode: the shard, not the static home, is the
			// address — collapse batches per shard.
			d.home = ids.NoNode
		}
		byDest[d] = append(byDest[d], gdo.ObjectRelease{Obj: obj, Dirty: dirty[obj]})
	}
	dests := make([]dest, 0, len(byDest))
	for d := range byDest {
		dests = append(dests, d)
	}
	sort.Slice(dests, func(i, j int) bool {
		if dests[i].home != dests[j].home {
			return dests[i].home < dests[j].home
		}
		return dests[i].shard < dests[j].shard
	})

	family := fam.root.Family()
	var verifyErr error
	for _, d := range dests {
		if e.cfg.Rec != nil {
			e.cfg.Rec.AddGlobalLockOp()
		}
		reply, err := e.gdoCall(d.shard, d.home, &wire.ReleaseReq{
			Family: family,
			Site:   e.self,
			Commit: commit,
			Shard:  d.shard,
			Rels:   byDest[d],
		})
		if err != nil {
			return fmt.Errorf("global release to %v: %w", d.home, siteErr(err))
		}
		resp, ok := reply.(*wire.ReleaseResp)
		if !ok {
			return fmt.Errorf("global release to %v: unexpected reply %T", d.home, reply)
		}
		for _, st := range resp.Stamps {
			pid := ids.PageID{Object: st.Obj, Page: st.Page}
			if want, ok := predicted[pid]; !ok || want != st.Version {
				// An invariant violation — but keep releasing the remaining
				// homes so the cluster is not left wedged, then report.
				verifyErr = errors.Join(verifyErr, fmt.Errorf(
					"node: GDO stamped %v as v%d, site predicted v%d", pid, st.Version, want))
			}
		}
	}
	return verifyErr
}

// pushUpdates implements the RC extension: send every dirty page to every
// other site caching the object, acknowledged, before the lock release.
// The xfer pipeline batches the copy-set lookups per GDO home and the
// pushes per destination site, across objects.
func (e *Engine) pushUpdates(objs []ids.ObjectID, dirty map[ids.ObjectID][]ids.PageNum) error {
	// One delta decision per batch: deltas only when every pushed object's
	// protocol is delta-eligible (in practice they all are — only RC pushes).
	delta := true
	for _, obj := range objs {
		if !e.protocolFor(obj).DeltaEligible() {
			delta = false
			break
		}
	}
	homeFn := e.cfg.HomeFn
	if e.cfg.Route != nil {
		// Replicated mode: copy-set lookups go to each shard's current
		// primary per the adopted map. A stale view surfaces as a site
		// error (the host answers RouteResp), failing this commit rather
		// than pushing to a wrong copy set.
		m := e.cfg.Route.Map()
		homeFn = func(obj ids.ObjectID) ids.NodeID {
			if s := int(e.shardOf(obj)); s < m.NumShards() {
				return m.Primary[s]
			}
			return e.cfg.HomeFn(obj)
		}
	}
	return siteErr(e.xfer.Push(objs, dirty, homeFn, delta))
}

// completeAll wakes a batch of granted local waiters.
func completeAll(ws []*o2pl.Waiter, err error) {
	for _, w := range ws {
		if f, ok := w.Data.(transport.Future); ok && f != nil {
			f.Complete(nil, err)
		}
	}
}

// DebugDump renders this engine's family, entry and pending-request state
// for diagnostics, in sorted order so dumps from identical states are
// byte-identical (diffable across runs).
func (e *Engine) DebugDump() string {
	e.mu.Lock()
	defer e.mu.Unlock()
	var b []byte
	add := func(format string, args ...any) { b = fmt.Appendf(b, format, args...) }
	famIDs := make([]ids.FamilyID, 0, len(e.fams))
	for famID := range e.fams {
		famIDs = append(famIDs, famID)
	}
	sort.Slice(famIDs, func(i, j int) bool { return famIDs[i] < famIDs[j] })
	for _, famID := range famIDs {
		fam := e.fams[famID]
		add("node %v fam=%v age=%d doomed=%v:", e.self, famID, fam.age, fam.doomed)
		for _, obj := range sortedObjKeys(fam.entries) {
			entry := fam.entries[obj]
			add(" entry{%v mode=%v holders=%d waiters=%d}", obj, entry.GlobalMode(), entry.HolderCount(), entry.WaiterCount())
		}
		add("\n")
	}
	keys := make([]pendKey, 0, len(e.pending))
	for key := range e.pending {
		keys = append(keys, key)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].obj != keys[j].obj {
			return keys[i].obj < keys[j].obj
		}
		return keys[i].tx < keys[j].tx
	})
	for _, key := range keys {
		add("node %v pending{obj=%v tx=%v}\n", e.self, key.obj, key.tx)
	}
	return string(b)
}

// sortedObjKeys returns m's object keys in ascending order; iterating a
// map directly would leak Go's randomized iteration order into the
// deterministic trace.
func sortedObjKeys[V any](m map[ids.ObjectID]V) []ids.ObjectID {
	out := make([]ids.ObjectID, 0, len(m))
	for obj := range m {
		out = append(out, obj)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
