package node

import (
	"fmt"

	"lotec/internal/ids"
	"lotec/internal/o2pl"
	"lotec/internal/schema"
)

// MethodFunc is the Go body of one class method. Bodies run inside a
// [sub-]transaction: every Read/Write is covered by the object's lock, and
// a returned error aborts (only) this sub-transaction.
type MethodFunc func(ctx *Ctx) error

// MethodTable registers bodies for class methods.
type MethodTable struct {
	m map[ids.ClassID]map[ids.MethodID]MethodFunc
}

// NewMethodTable returns an empty table.
func NewMethodTable() *MethodTable {
	return &MethodTable{m: make(map[ids.ClassID]map[ids.MethodID]MethodFunc)}
}

// Register binds a body to class.method (by name).
func (t *MethodTable) Register(cls *schema.Class, method string, fn MethodFunc) error {
	m, err := cls.MethodByName(method)
	if err != nil {
		return err
	}
	byID := t.m[cls.ID]
	if byID == nil {
		byID = make(map[ids.MethodID]MethodFunc)
		t.m[cls.ID] = byID
	}
	if _, dup := byID[m.ID]; dup {
		return fmt.Errorf("node: body for %s.%s registered twice", cls.Name, method)
	}
	byID[m.ID] = fn
	return nil
}

// lookup resolves a body.
func (t *MethodTable) lookup(cls ids.ClassID, m ids.MethodID) (MethodFunc, error) {
	if fn, ok := t.m[cls][m]; ok {
		return fn, nil
	}
	return nil, fmt.Errorf("%w: class %d method %d", ErrUnknownMethod, cls, m)
}

// Ctx is a method body's handle on its executing sub-transaction: attribute
// access on the locked object, sub-invocations on other objects, and the
// argument/result channel. A Ctx is valid only for the duration of its body
// and must not be used from other goroutines.
type Ctx struct {
	eng    *Engine
	ts     *txState
	obj    ids.ObjectID
	cls    *schema.Class
	layout *schema.Layout
	method schema.Method
	arg    []byte
	result []byte
}

// Self returns the object the method executes on.
func (c *Ctx) Self() ids.ObjectID { return c.obj }

// Class returns the object's class.
func (c *Ctx) Class() *schema.Class { return c.cls }

// Method returns the executing method's declaration.
func (c *Ctx) Method() schema.Method { return c.method }

// Arg returns the invocation argument.
func (c *Ctx) Arg() []byte { return c.arg }

// SetResult records the value Invoke/Run returns.
func (c *Ctx) SetResult(b []byte) { c.result = b }

// TxID returns the executing sub-transaction's ID (diagnostics).
func (c *Ctx) TxID() ids.TxID { return c.ts.t.ID() }

// declared reports whether attr is in the method's declared set: reads may
// touch Reads ∪ Writes, writes only Writes.
func (c *Ctx) declared(attr schema.AttrID, write bool) bool {
	for _, a := range c.method.Writes {
		if a == attr {
			return true
		}
	}
	if write {
		return false
	}
	for _, a := range c.method.Reads {
		if a == attr {
			return true
		}
	}
	return false
}

// resolveAccess validates bounds and the declaration contract for an access
// to [off, off+n) of attr, returning the object-relative offset and pages.
func (c *Ctx) resolveAccess(attr string, off, n int, write bool) (int, schema.PageSet, error) {
	a, err := c.cls.AttrByName(attr)
	if err != nil {
		return 0, nil, err
	}
	if off < 0 || n < 0 || off+n > a.Size {
		return 0, nil, fmt.Errorf("node: access [%d,%d) outside attribute %s.%s (size %d)",
			off, off+n, c.cls.Name, attr, a.Size)
	}
	base, err := c.layout.AttrOffset(a.ID)
	if err != nil {
		return 0, nil, err
	}
	abs := base + off
	pageSize := c.layout.PageSize()
	var pages schema.PageSet
	if n > 0 {
		first := abs / pageSize
		last := (abs + n - 1) / pageSize
		for p := first; p <= last; p++ {
			pages = append(pages, ids.PageNum(p))
		}
	}
	if !c.declared(a.ID, write) {
		if c.eng.cfg.Strict {
			kind := "read"
			if write {
				kind = "write"
			}
			return 0, nil, fmt.Errorf("%w: %s of %s.%s in method %s",
				ErrUndeclaredAccess, kind, c.cls.Name, attr, c.method.Name)
		}
		// Lenient mode: an unpredicted write may be happening under a read
		// lock — upgrade to write first, then fetch the (possibly stale)
		// pages on demand (§4.3).
		if write {
			if err := c.eng.acquire(c.ts, c.obj, o2pl.Write); err != nil {
				return 0, nil, err
			}
		}
		if err := c.eng.ensureCurrent(c.ts, c.obj, pages); err != nil {
			return 0, nil, err
		}
	}
	return abs, pages, nil
}

// Read returns a copy of the whole attribute.
func (c *Ctx) Read(attr string) ([]byte, error) {
	a, err := c.cls.AttrByName(attr)
	if err != nil {
		return nil, err
	}
	return c.ReadAt(attr, 0, a.Size)
}

// ReadAt returns a copy of n bytes of attr starting at off.
func (c *Ctx) ReadAt(attr string, off, n int) ([]byte, error) {
	if doomed := c.eng.doomOf(c.ts); doomed != nil {
		return nil, doomed
	}
	abs, pages, err := c.resolveAccess(attr, off, n, false)
	if err != nil {
		return nil, err
	}
	data, err := c.eng.cfg.Store.Read(c.obj, abs, n)
	if _, missing := pagesMissingError(err); missing {
		// Resident-set miss under lax prediction: demand-fetch and retry.
		if ferr := c.eng.ensureCurrent(c.ts, c.obj, pages); ferr != nil {
			return nil, ferr
		}
		data, err = c.eng.cfg.Store.Read(c.obj, abs, n)
	}
	if err != nil {
		return nil, fmt.Errorf("read %s.%s: %w", c.cls.Name, attr, err)
	}
	return data, nil
}

// Write overwrites the whole attribute (data must be exactly the attribute
// size).
func (c *Ctx) Write(attr string, data []byte) error {
	a, err := c.cls.AttrByName(attr)
	if err != nil {
		return err
	}
	if len(data) != a.Size {
		return fmt.Errorf("node: write of %d bytes to %s.%s (size %d)",
			len(data), c.cls.Name, attr, a.Size)
	}
	return c.WriteAt(attr, 0, data)
}

// WriteAt overwrites part of attr starting at off. The prior page images
// are shadow-logged first so any enclosing abort restores them exactly.
func (c *Ctx) WriteAt(attr string, off int, data []byte) error {
	if doomed := c.eng.doomOf(c.ts); doomed != nil {
		return doomed
	}
	abs, pages, err := c.resolveAccess(attr, off, len(data), true)
	if err != nil {
		return err
	}
	pageNums := make([]ids.PageNum, len(pages))
	copy(pageNums, pages)
	if err := c.ts.undo.SnapshotBefore(c.eng.cfg.Store, c.obj, pageNums); err != nil {
		if _, missing := pagesMissingError(err); missing {
			if ferr := c.eng.ensureCurrent(c.ts, c.obj, pages); ferr != nil {
				return ferr
			}
			err = c.ts.undo.SnapshotBefore(c.eng.cfg.Store, c.obj, pageNums)
		}
		if err != nil {
			return fmt.Errorf("shadow %s.%s: %w", c.cls.Name, attr, err)
		}
	}
	if _, err := c.eng.cfg.Store.Write(c.obj, abs, data); err != nil {
		return fmt.Errorf("write %s.%s: %w", c.cls.Name, attr, err)
	}
	c.ts.updated[c.obj] = true
	return nil
}

// Invoke runs method on obj as a sub-transaction of this one. An error
// return means the sub-transaction aborted and was rolled back; the caller
// may handle the error and continue — that is the point of closed nesting.
func (c *Ctx) Invoke(obj ids.ObjectID, method string, arg []byte) ([]byte, error) {
	if doomed := c.eng.doomOf(c.ts); doomed != nil {
		return nil, doomed
	}
	return c.eng.invoke(c.ts, obj, method, arg)
}

// InvokeAll runs several sub-transactions concurrently and waits for all of
// them, returning one result per call in order. Each failed child is rolled
// back independently; the caller decides whether to continue or abort.
//
// This is the intra-family concurrency of §3.3 of the paper, with the
// paper's caveat applied: correctness of concurrent sibling access to the
// same objects "is left to the programmer" — in particular, siblings should
// acquire overlapping objects in a consistent order, or the family can
// deadlock itself.
func (c *Ctx) InvokeAll(calls []InvokeSpec) []InvokeResult {
	if doomed := c.eng.doomOf(c.ts); doomed != nil {
		out := make([]InvokeResult, len(calls))
		for i := range out {
			out[i] = InvokeResult{Err: doomed}
		}
		return out
	}
	return c.eng.invokeParallel(c.ts, calls)
}
