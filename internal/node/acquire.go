package node

import (
	"errors"
	"fmt"

	"lotec/internal/core"
	"lotec/internal/gdo"
	"lotec/internal/ids"
	"lotec/internal/o2pl"
	"lotec/internal/pstore"
	"lotec/internal/schema"
	"lotec/internal/wire"
	"lotec/internal/xfer"
)

// acquire implements Algorithm 4.1 (LocalLockAcquisition) for transaction
// ts on obj: satisfied from the family's cached entry when possible,
// forwarded to the GDO otherwise. On return the transaction holds the lock.
func (e *Engine) acquire(ts *txState, obj ids.ObjectID, mode o2pl.Mode) error {
	e.mu.Lock()
	if ts.fam.doomed != nil {
		defer e.mu.Unlock()
		return ts.fam.doomed
	}
	entry := ts.fam.entries[obj]
	if entry == nil {
		// "IF the object is not cached at this site THEN forward request to
		// GlobalLockAcquisition."
		e.mu.Unlock()
		return e.acquireGlobal(ts, obj, mode)
	}
	dec, waiter, err := entry.Acquire(ts.t, mode)
	if err != nil {
		e.mu.Unlock()
		return err
	}
	switch dec {
	case o2pl.Granted:
		ts.involved[obj] = true
		e.mu.Unlock()
		if e.cfg.Rec != nil {
			e.cfg.Rec.AddLocalLockOp()
		}
		return nil
	case o2pl.Waiting:
		// "Link transaction onto local list."
		f := e.env.NewFuture()
		waiter.Data = f
		e.mu.Unlock()
		if e.cfg.Rec != nil {
			e.cfg.Rec.AddLocalLockOp()
		}
		if _, err := f.Wait(); err != nil {
			return err
		}
		e.mu.Lock()
		ts.involved[obj] = true
		doomed := ts.fam.doomed
		e.mu.Unlock()
		if doomed != nil {
			return doomed
		}
		return nil
	case o2pl.NeedGlobal:
		// Read→write upgrade: the family's global mode is too weak.
		e.mu.Unlock()
		return e.acquireGlobal(ts, obj, mode)
	default:
		e.mu.Unlock()
		return fmt.Errorf("node: unexpected local decision %d", dec)
	}
}

// acquireGlobal performs the GlobalLockAcquisition exchange (Alg 4.2): RPC
// to the object's GDO home partition, parking on a future if queued. It
// also covers upgrades (the entry exists but at Read while Write is
// needed).
func (e *Engine) acquireGlobal(ts *txState, obj ids.ObjectID, mode o2pl.Mode) error {
	if e.cfg.Rec != nil {
		e.cfg.Rec.AddGlobalLockOp()
	}
	// Register the parking spot before the request leaves, so a grant that
	// races the "queued" reply is never lost.
	f := e.env.NewFuture()
	key := pendKey{obj: obj, tx: ts.t.ID()}
	e.mu.Lock()
	e.pending[key] = &pendingReq{fut: f, tx: ts.t, mode: mode}
	e.mu.Unlock()
	clearPending := func() {
		e.mu.Lock()
		delete(e.pending, key)
		e.mu.Unlock()
	}

	e.mu.Lock()
	age := ts.fam.age
	e.mu.Unlock()
	if age == 0 {
		age = uint64(ts.t.Family())
	}
	reply, err := e.gdoCall(e.shardOf(obj), e.cfg.HomeFn(obj), &wire.AcquireReq{
		Obj:    obj,
		Ref:    ts.t.Ref(),
		Family: ts.t.Family(),
		Age:    age,
		Site:   e.self,
		Mode:   mode,
		Shard:  e.shardOf(obj),
	})
	if err != nil {
		clearPending()
		return fmt.Errorf("global acquire of %v: %w", obj, siteErr(err))
	}
	resp, ok := reply.(*wire.AcquireResp)
	if !ok {
		clearPending()
		return fmt.Errorf("global acquire of %v: unexpected reply %T", obj, reply)
	}

	switch resp.Status {
	case gdo.GrantedNow:
		clearPending()
		return e.installGrantAndAcquire(ts, obj, mode, resp.Mode, resp.PageMap, resp.LastWriter)

	case gdo.Queued:
		// Park; the Grant (or deadlock Abort) handler completes the future.
		if _, err := f.Wait(); err != nil {
			return err
		}
		e.mu.Lock()
		ts.involved[obj] = true
		doomed := ts.fam.doomed
		e.mu.Unlock()
		if doomed != nil {
			return doomed
		}
		return nil

	case gdo.DeadlockAbort:
		clearPending()
		e.doomFamily(ts.fam, ErrDeadlockVictim)
		return ErrDeadlockVictim

	default:
		clearPending()
		return fmt.Errorf("global acquire of %v: unknown status %v", obj, resp.Status)
	}
}

// installGrantAndAcquire records a synchronous GDO grant locally and then
// acquires through the (possibly pre-existing) cached entry. A same-family
// sibling may already hold the entry in a conflicting mode, in which case
// the transaction waits locally.
func (e *Engine) installGrantAndAcquire(ts *txState, obj ids.ObjectID, want, granted o2pl.Mode, pageMap []gdo.PageLoc, lastWriter ids.NodeID) error {
	e.mu.Lock()
	entry := ts.fam.entries[obj]
	if entry == nil {
		entry = o2pl.NewEntry(obj, ts.t.Family(), granted)
		ts.fam.entries[obj] = entry
		ts.fam.meta[obj] = &entryMeta{pageMap: pageMap, lastWriter: lastWriter}
	} else {
		entry.SetGlobalMode(granted)
		if meta := ts.fam.meta[obj]; meta != nil && len(pageMap) > 0 {
			meta.pageMap = pageMap
			meta.lastWriter = lastWriter
		}
	}
	dec, waiter, err := entry.Acquire(ts.t, want)
	if err != nil {
		e.mu.Unlock()
		return err
	}
	switch dec {
	case o2pl.Granted:
		ts.involved[obj] = true
		e.mu.Unlock()
		return nil
	case o2pl.Waiting:
		f := e.env.NewFuture()
		waiter.Data = f
		e.mu.Unlock()
		if _, err := f.Wait(); err != nil {
			return err
		}
		e.mu.Lock()
		ts.involved[obj] = true
		doomed := ts.fam.doomed
		e.mu.Unlock()
		if doomed != nil {
			return doomed
		}
		return nil
	default:
		e.mu.Unlock()
		return fmt.Errorf("node: unexpected decision %d after grant", dec)
	}
}

// doomFamily condemns a family; every subsequent operation fails fast and
// parked transactions are failed.
func (e *Engine) doomFamily(fam *famState, cause error) {
	e.mu.Lock()
	if fam.doomed == nil {
		fam.doomed = cause
	}
	e.mu.Unlock()
}

// transfer implements Algorithm 4.5 (TransferOfUpdatedPages) plus the
// protocol's fetch policy: compute which pages this acquisition must pull,
// group them by the site holding the newest copy, and gather them.
func (e *Engine) transfer(ts *txState, obj ids.ObjectID, layout *schema.Layout, m schema.Method) error {
	e.mu.Lock()
	meta := ts.fam.meta[obj]
	if meta == nil {
		// The family holds the lock but this engine never saw a page map —
		// possible only for objects granted before any transfer bookkeeping
		// existed; treat as nothing to fetch.
		e.mu.Unlock()
		return nil
	}
	predicted, err := layout.MethodReadPages(m.ID)
	if err != nil {
		e.mu.Unlock()
		return err
	}
	in := e.fetchInputLocked(obj, layout, meta, predicted)
	proto := e.protocolForLocked(obj)
	plan := proto.FetchPlan(in)
	meta.fetched = true
	pageMap := meta.pageMap
	// Under a scattering protocol (LOTEC) each page comes from the site
	// holding its newest copy — possibly several sites; under COTEC/OTEC
	// the whole plan comes from the single last-updating site, which
	// always holds a complete current copy.
	single := meta.lastWriter
	if proto.GatherScattered() {
		single = ids.NoNode
	}
	e.mu.Unlock()

	if len(plan) == 0 {
		return nil
	}
	return siteErr(e.xfer.Fetch([]xfer.Want{{
		Obj:          obj,
		Pages:        plan,
		PageMap:      pageMap,
		Single:       single,
		VersionAware: proto.VersionAware(),
		Delta:        proto.DeltaEligible(),
	}}, false))
}

// fetchInputLocked assembles the protocol's view of the object at this
// site. Caller holds e.mu.
func (e *Engine) fetchInputLocked(obj ids.ObjectID, layout *schema.Layout, meta *entryMeta, predicted schema.PageSet) core.FetchInput {
	all := layout.AllPages()
	var stale, absent schema.PageSet
	for _, p := range all {
		if int(p) >= len(meta.pageMap) {
			continue
		}
		pid := ids.PageID{Object: obj, Page: p}
		v, resident := e.cfg.Store.PageVersion(pid)
		if !resident {
			stale = append(stale, p)
			absent = append(absent, p)
			continue
		}
		if v < meta.pageMap[p].Version {
			stale = append(stale, p)
		}
	}
	return core.FetchInput{
		All:             all,
		Predicted:       predicted,
		Stale:           stale,
		Absent:          absent,
		FirstSinceGrant: !meta.fetched,
	}
}

// ensureCurrent demand-fetches any of the given pages that are stale or
// absent relative to the grant-time page map. It is the §4.3 fallback ("If
// additional parts turn out to be needed, these can be fetched on demand")
// used for undeclared accesses in lenient mode and for missing-page reads.
func (e *Engine) ensureCurrent(ts *txState, obj ids.ObjectID, pages schema.PageSet) error {
	e.mu.Lock()
	meta := ts.fam.meta[obj]
	if meta == nil {
		e.mu.Unlock()
		return nil
	}
	var plan schema.PageSet
	for _, p := range pages {
		if int(p) >= len(meta.pageMap) {
			continue
		}
		pid := ids.PageID{Object: obj, Page: p}
		v, resident := e.cfg.Store.PageVersion(pid)
		if !resident || v < meta.pageMap[p].Version {
			plan = append(plan, p)
		}
	}
	pageMap := meta.pageMap
	delta := e.protocolForLocked(obj).DeltaEligible()
	e.mu.Unlock()
	if len(plan) == 0 {
		return nil
	}
	// Demand fetches always target the exact newest location per page,
	// version-aware regardless of protocol (the staleness test above
	// already consulted versions).
	return siteErr(e.xfer.Fetch([]xfer.Want{{
		Obj:          obj,
		Pages:        plan,
		PageMap:      pageMap,
		Single:       ids.NoNode,
		VersionAware: true,
		Delta:        delta,
	}}, true))
}

// pagesMissingError extracts a PageMissingError if err contains one.
func pagesMissingError(err error) (*pstore.PageMissingError, bool) {
	var pm *pstore.PageMissingError
	if errors.As(err, &pm) {
		return pm, true
	}
	return nil, false
}
