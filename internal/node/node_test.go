package node_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"lotec/internal/core"
	"lotec/internal/gdo"
	"lotec/internal/ids"
	"lotec/internal/netmodel"
	"lotec/internal/node"
	"lotec/internal/o2pl"
	"lotec/internal/pstore"
	"lotec/internal/schema"
	"lotec/internal/stats"
	"lotec/internal/transport"
	"lotec/internal/txn"
	"lotec/internal/wire"
)

// rig is a minimal one- or two-node harness around the engine, below the
// sim.Cluster abstraction, for exercising engine internals directly.
type rig struct {
	net     *transport.SimNet
	dir     *gdo.Directory
	engines map[ids.NodeID]*node.Engine
	stores  map[ids.NodeID]*pstore.Store
	schemas *schema.Registry
	methods *node.MethodTable
}

func newRig(t *testing.T, nodes int, p core.Protocol) *rig {
	t.Helper()
	if p == nil {
		p = core.LOTEC
	}
	r := &rig{
		dir:     gdo.New(nodes),
		engines: make(map[ids.NodeID]*node.Engine),
		stores:  make(map[ids.NodeID]*pstore.Store),
		schemas: schema.NewRegistry(64),
		methods: node.NewMethodTable(),
	}
	r.net = transport.NewSimNet(nodes, netmodel.Ethernet100.WithSoftwareCost(5*time.Microsecond), stats.NewRecorder())
	mgr := txn.NewManager()
	for i := 1; i <= nodes; i++ {
		id := ids.NodeID(i)
		st := pstore.NewStore(64)
		eng, err := node.New(node.Config{
			Env:      r.net.Env(id),
			Store:    st,
			Schemas:  r.schemas,
			Methods:  r.methods,
			Manager:  mgr,
			Protocol: p,
			HomeFn:   r.dir.HomeNode,
			Dir:      r.dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.engines[id] = eng
		r.stores[id] = st
		r.net.SetHandler(id, eng.Handle)
	}
	return r
}

// addClass registers a tiny two-attribute class with one writer method.
func (r *rig) addClass(t *testing.T) *schema.Class {
	t.Helper()
	cls, err := schema.NewClassBuilder(1, "C").
		Attr("a", 8).
		Attr("b", 8).
		Method(schema.MethodSpec{Name: "set", Writes: []string{"a"}}).
		Method(schema.MethodSpec{Name: "get", Reads: []string{"a"}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := r.schemas.Add(cls); err != nil {
		t.Fatal(err)
	}
	return cls
}

func (r *rig) createObject(t *testing.T, obj ids.ObjectID, cls ids.ClassID, owner ids.NodeID) {
	t.Helper()
	layout, err := r.schemas.Layout(cls)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.dir.Register(obj, layout.NumPages(), owner); err != nil {
		t.Fatal(err)
	}
	for _, eng := range r.engines {
		if err := eng.RegisterObject(obj, cls, owner); err != nil {
			t.Fatal(err)
		}
	}
}

// run executes fn as a proc at node id and drives the net to quiescence.
func (r *rig) run(t *testing.T, id ids.NodeID, fn func()) {
	t.Helper()
	r.net.Env(id).Go(fn)
	if err := r.net.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestNewRejectsIncompleteConfig(t *testing.T) {
	if _, err := node.New(node.Config{}); err == nil {
		t.Error("empty config should fail")
	}
}

func TestRegisterObjectMaterializesAtOwner(t *testing.T) {
	r := newRig(t, 2, nil)
	cls := r.addClass(t)
	r.createObject(t, 1, cls.ID, 1)
	if got := len(r.stores[1].ResidentPages(1)); got == 0 {
		t.Error("owner has no resident pages")
	}
	if got := len(r.stores[2].ResidentPages(1)); got != 0 {
		t.Errorf("non-owner has %d resident pages", got)
	}
	v, ok := r.stores[1].PageVersion(ids.PageID{Object: 1, Page: 0})
	if !ok || v != 1 {
		t.Errorf("owner page version = %d,%v, want 1", v, ok)
	}
}

func TestRegisterObjectUnknownClass(t *testing.T) {
	r := newRig(t, 1, nil)
	if err := r.engines[1].RegisterObject(1, 99, 1); err == nil {
		t.Error("unknown class should fail")
	}
}

func TestMethodTableDuplicateAndMissing(t *testing.T) {
	r := newRig(t, 1, nil)
	cls := r.addClass(t)
	fn := func(*node.Ctx) error { return nil }
	if err := r.methods.Register(cls, "set", fn); err != nil {
		t.Fatal(err)
	}
	if err := r.methods.Register(cls, "set", fn); err == nil {
		t.Error("duplicate registration should fail")
	}
	if err := r.methods.Register(cls, "nosuch", fn); err == nil {
		t.Error("unknown method should fail")
	}
	// Body missing for "get": running it must surface ErrUnknownMethod.
	r.createObject(t, 1, cls.ID, 1)
	var runErr error
	r.run(t, 1, func() {
		_, _, runErr = r.engines[1].Run(1, "get", nil)
	})
	if !errors.Is(runErr, node.ErrUnknownMethod) {
		t.Errorf("err = %v, want ErrUnknownMethod", runErr)
	}
}

func TestRunUnknownObjectAndMethod(t *testing.T) {
	r := newRig(t, 1, nil)
	cls := r.addClass(t)
	if err := r.methods.Register(cls, "set", func(*node.Ctx) error { return nil }); err != nil {
		t.Fatal(err)
	}
	var err1, err2 error
	r.run(t, 1, func() {
		_, _, err1 = r.engines[1].Run(99, "set", nil)
	})
	if !errors.Is(err1, node.ErrUnknownObject) {
		t.Errorf("unknown object: %v", err1)
	}
	r.createObject(t, 1, cls.ID, 1)
	r.run(t, 1, func() {
		_, _, err2 = r.engines[1].Run(1, "zzz", nil)
	})
	if !errors.Is(err2, schema.ErrUnknownMethod) {
		t.Errorf("unknown method: %v", err2)
	}
}

func TestCtxValidation(t *testing.T) {
	r := newRig(t, 1, nil)
	cls := r.addClass(t)
	var bodyErrs []error
	if err := r.methods.Register(cls, "set", func(ctx *node.Ctx) error {
		collect := func(err error) { bodyErrs = append(bodyErrs, err) }
		_, err := ctx.Read("nope")
		collect(err)
		collect(ctx.Write("a", []byte{1, 2})) // wrong size
		_, err = ctx.ReadAt("a", -1, 4)
		collect(err)
		_, err = ctx.ReadAt("a", 4, 8) // overruns attribute
		collect(err)
		collect(ctx.WriteAt("a", 7, []byte{1, 2})) // overruns attribute
		// Accessors.
		if ctx.Self() != 1 || ctx.Class() != cls || ctx.Method().Name != "set" {
			collect(errors.New("accessor mismatch"))
		} else {
			collect(nil)
		}
		if ctx.TxID() == ids.NoTx {
			collect(errors.New("no tx id"))
		} else {
			collect(nil)
		}
		if !bytes.Equal(ctx.Arg(), []byte{9}) {
			collect(errors.New("arg mismatch"))
		} else {
			collect(nil)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	r.createObject(t, 1, cls.ID, 1)
	var runErr error
	r.run(t, 1, func() {
		_, _, runErr = r.engines[1].Run(1, "set", []byte{9})
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	if len(bodyErrs) != 8 {
		t.Fatalf("collected %d results", len(bodyErrs))
	}
	for i, err := range bodyErrs[:5] {
		if err == nil {
			t.Errorf("validation %d should have failed", i)
		}
	}
	for i, err := range bodyErrs[5:] {
		if err != nil {
			t.Errorf("accessor check %d failed: %v", i+5, err)
		}
	}
}

func TestHandleFetchMissingPage(t *testing.T) {
	r := newRig(t, 2, nil)
	cls := r.addClass(t)
	r.createObject(t, 1, cls.ID, 1)
	// Node 2 has no resident pages: fetching from it must error.
	reply := r.engines[2].Handle(1, &wire.FetchReq{Obj: 1, Pages: []ids.PageNum{0}})
	if _, ok := reply.(*wire.ErrResp); !ok {
		t.Errorf("reply = %T, want ErrResp", reply)
	}
	// Fetching resident pages from the owner succeeds.
	reply = r.engines[1].Handle(2, &wire.FetchReq{Obj: 1, Pages: []ids.PageNum{0}})
	fr, ok := reply.(*wire.FetchResp)
	if !ok || len(fr.Pages) != 1 || fr.Pages[0].Version != 1 {
		t.Errorf("reply = %+v", reply)
	}
}

func TestHandlePushVersionRules(t *testing.T) {
	r := newRig(t, 1, nil)
	cls := r.addClass(t)
	r.createObject(t, 1, cls.ID, 1)
	eng := r.engines[1]
	newData := bytes.Repeat([]byte{7}, 64)

	// Older or equal versions are ignored.
	reply := eng.Handle(2, &wire.PushReq{Obj: 1, Pages: []wire.PagePayload{{Page: 0, Version: 1, Data: newData}}})
	if _, ok := reply.(*wire.PushResp); !ok {
		t.Fatalf("reply = %T", reply)
	}
	got, _ := r.stores[1].Read(1, 0, 1)
	if got[0] != 0 {
		t.Error("equal-version push should be ignored")
	}
	// Newer versions install.
	reply = eng.Handle(2, &wire.PushReq{Obj: 1, Pages: []wire.PagePayload{{Page: 0, Version: 5, Data: newData}}})
	if _, ok := reply.(*wire.PushResp); !ok {
		t.Fatalf("reply = %T", reply)
	}
	got, _ = r.stores[1].Read(1, 0, 1)
	if got[0] != 7 {
		t.Error("newer push not installed")
	}
	if v, _ := r.stores[1].PageVersion(ids.PageID{Object: 1, Page: 0}); v != 5 {
		t.Errorf("version = %d", v)
	}
}

func TestHandleRejectsGDOMessagesWithoutDirectory(t *testing.T) {
	r := newRig(t, 1, nil)
	cls := r.addClass(t)
	// An engine with no Dir must refuse directory traffic.
	st := pstore.NewStore(64)
	eng, err := node.New(node.Config{
		Env:      r.net.Env(1),
		Store:    st,
		Schemas:  r.schemas,
		Methods:  r.methods,
		Manager:  txn.NewManager(),
		Protocol: core.LOTEC,
		HomeFn:   func(ids.ObjectID) ids.NodeID { return 1 },
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = cls
	for _, m := range []wire.Msg{
		&wire.AcquireReq{}, &wire.ReleaseReq{}, &wire.CopySetReq{}, &wire.RegisterReq{},
	} {
		reply := eng.Handle(2, m)
		er, ok := reply.(*wire.ErrResp)
		if !ok || !strings.Contains(er.Msg, "not a GDO host") {
			t.Errorf("%T: reply = %+v", m, reply)
		}
	}
	if reply := eng.Handle(2, &wire.RunResp{}); reply == nil {
		t.Error("unhandled type should produce an error reply")
	}
}

func TestRecursiveInvocationErrorSurfaces(t *testing.T) {
	r := newRig(t, 1, nil)
	cls := r.addClass(t)
	if err := r.methods.Register(cls, "set", func(ctx *node.Ctx) error {
		_, err := ctx.Invoke(ctx.Self(), "set", nil)
		return err
	}); err != nil {
		t.Fatal(err)
	}
	r.createObject(t, 1, cls.ID, 1)
	var runErr error
	r.run(t, 1, func() {
		_, _, runErr = r.engines[1].Run(1, "set", nil)
	})
	if !errors.Is(runErr, o2pl.ErrRecursiveInvocation) {
		t.Errorf("err = %v, want ErrRecursiveInvocation", runErr)
	}
}

func TestEngineDebugDump(t *testing.T) {
	r := newRig(t, 1, nil)
	cls := r.addClass(t)
	hold := make(chan struct{})
	if err := r.methods.Register(cls, "set", func(ctx *node.Ctx) error {
		close(hold)
		return ctx.Write("a", bytes.Repeat([]byte{1}, 8))
	}); err != nil {
		t.Fatal(err)
	}
	r.createObject(t, 1, cls.ID, 1)
	var dump string
	r.run(t, 1, func() {
		_, _, err := r.engines[1].Run(1, "set", nil)
		if err != nil {
			t.Errorf("run: %v", err)
		}
		dump = r.engines[1].DebugDump()
	})
	<-hold
	// After commit the dump is empty — families are cleaned up.
	if strings.Contains(dump, "doomed") && !strings.Contains(dump, "doomed=<nil>") {
		t.Errorf("unexpected doom in dump: %s", dump)
	}
	if r.engines[1].Self() != 1 {
		t.Error("Self mismatch")
	}
	if r.engines[1].Protocol().Name() != "LOTEC" {
		t.Error("Protocol mismatch")
	}
}

func TestDirectoryDebugDumpShowsHolders(t *testing.T) {
	d := gdo.New(2)
	if err := d.Register(1, 2, 1); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Acquire(1, ids.TxRef{Tx: 5, Node: 2}, 5, 5, 2, o2pl.Write); err != nil {
		t.Fatal(err)
	}
	dump := d.DebugDump()
	if !strings.Contains(dump, "holder") || !strings.Contains(dump, "O1") {
		t.Errorf("dump = %q", dump)
	}
	if lw, err := d.LastWriter(1); err != nil || lw != 1 {
		t.Errorf("LastWriter = %v, %v", lw, err)
	}
	if _, err := d.LastWriter(9); err == nil {
		t.Error("unknown object should fail")
	}
}
