package node

import (
	"lotec/internal/gdo"
	"lotec/internal/ids"
	"lotec/internal/o2pl"
	"lotec/internal/transport"
	"lotec/internal/wire"
	"lotec/internal/xfer"
)

// Handle is the node's inbound message dispatcher; wire it as the Env's
// transport handler. It never blocks.
func (e *Engine) Handle(from ids.NodeID, m wire.Msg) wire.Msg {
	switch t := m.(type) {
	case *wire.Grant:
		e.handleGrant(t)
		return nil
	case *wire.Abort:
		e.handleAbort(t)
		return nil
	case *wire.FetchReq:
		return e.handleFetch(t)
	case *wire.PushReq:
		return e.handlePush(t)
	case *wire.MultiFetchReq:
		return xfer.ServeFetch(e.cfg.Store, e.cfg.Rec, t)
	case *wire.MultiPushReq:
		return xfer.ApplyPush(e.cfg.Store, e.cfg.Rec, t)
	case *wire.AcquireReq:
		return e.handleGDOAcquire(t)
	case *wire.ReleaseReq:
		return e.handleGDORelease(t)
	case *wire.CopySetReq:
		return e.handleGDOCopySet(t)
	case *wire.RegisterReq:
		return e.handleGDORegister(t)
	default:
		return &wire.ErrResp{Msg: "node: unhandled message type"}
	}
}

// handleGrant processes a deferred lock grant: create (or upgrade) the
// family's cached entry, turn the granted request batch into local waiters,
// and wake the eligible ones — the site-side half of Alg 4.4's hand-off.
func (e *Engine) handleGrant(g *wire.Grant) {
	e.mu.Lock()
	fam := e.fams[g.Family]
	if fam == nil || fam.doomed != nil {
		// The family is gone (aborted while queued): hand the lock straight
		// back so no one waits on a ghost holder.
		e.mu.Unlock()
		rel := &wire.ReleaseReq{
			Family: g.Family,
			Site:   e.self,
			Shard:  g.Shard,
			Rels:   []gdo.ObjectRelease{{Obj: g.Obj}},
		}
		if e.cfg.Route != nil {
			// Handlers must not block; the routed hand-back needs its own
			// proc for the adopt-and-retry loop.
			e.env.Go(func() { _, _ = e.cfg.Route.Call(int(g.Shard), rel) })
		} else {
			_ = e.env.Send(e.cfg.HomeFn(g.Obj), rel)
		}
		return
	}
	entry := fam.entries[g.Obj]
	if entry == nil {
		entry = o2pl.NewEntry(g.Obj, g.Family, g.Mode)
		fam.entries[g.Obj] = entry
		fam.meta[g.Obj] = &entryMeta{pageMap: g.PageMap, lastWriter: g.LastWriter}
	} else {
		entry.SetGlobalMode(g.Mode)
		if meta := fam.meta[g.Obj]; meta != nil && len(g.PageMap) > 0 {
			meta.pageMap = g.PageMap
			meta.lastWriter = g.LastWriter
		} else if meta == nil {
			fam.meta[g.Obj] = &entryMeta{pageMap: g.PageMap, lastWriter: g.LastWriter}
		}
	}
	for _, req := range g.Reqs {
		key := pendKey{obj: g.Obj, tx: req.Ref.Tx}
		p, ok := e.pending[key]
		if !ok {
			// The requester vanished (aborted); the family still holds the
			// lock and root release will free it.
			continue
		}
		delete(e.pending, key)
		entry.Enqueue(&o2pl.Waiter{Tx: p.tx, Mode: req.Mode, Data: p.fut})
	}
	granted := entry.GrantEligible()
	e.mu.Unlock()
	completeAll(granted, nil)
}

// handleAbort fails this site's parked requests for a deadlock-victim
// family and condemns the family.
func (e *Engine) handleAbort(a *wire.Abort) {
	e.mu.Lock()
	var futs []transport.Future
	for _, req := range a.Reqs {
		key := pendKey{obj: a.Obj, tx: req.Ref.Tx}
		if p, ok := e.pending[key]; ok {
			delete(e.pending, key)
			futs = append(futs, p.fut)
		}
	}
	if fam := e.fams[a.Family]; fam != nil && fam.doomed == nil {
		fam.doomed = ErrDeadlockVictim
	}
	e.mu.Unlock()
	for _, f := range futs {
		f.Complete(nil, ErrDeadlockVictim)
	}
}

// handleFetch serves legacy single-object Alg 4.5 gather requests (older
// peers over TCP) through the same xfer serving path as the batched form.
func (e *Engine) handleFetch(req *wire.FetchReq) wire.Msg {
	reply := xfer.ServeFetch(e.cfg.Store, e.cfg.Rec, &wire.MultiFetchReq{
		Demand: req.Demand,
		Objs:   []wire.ObjPages{{Obj: req.Obj, Pages: req.Pages}},
	})
	resp, ok := reply.(*wire.MultiFetchResp)
	if !ok {
		return reply // ErrResp
	}
	out := &wire.FetchResp{Obj: req.Obj}
	if len(resp.Objs) == 1 {
		out.Pages = resp.Objs[0].Pages
	}
	return out
}

// handlePush installs legacy single-object RC pushes through the batched
// apply path.
func (e *Engine) handlePush(req *wire.PushReq) wire.Msg {
	return xfer.ApplyPush(e.cfg.Store, e.cfg.Rec, &wire.MultiPushReq{
		Objs: []wire.ObjPayload{{Obj: req.Obj, Pages: req.Pages}},
	})
}

// GDO-serving handlers (active when cfg.Dir is set).

func (e *Engine) handleGDOAcquire(req *wire.AcquireReq) wire.Msg {
	if e.cfg.Dir == nil {
		return &wire.ErrResp{Msg: "node: not a GDO host"}
	}
	res, events, err := e.cfg.Dir.Acquire(req.Obj, req.Ref, req.Family, req.Age, req.Site, req.Mode)
	if err != nil {
		return &wire.ErrResp{Msg: err.Error()}
	}
	e.routeEvents(events)
	return &wire.AcquireResp{
		Obj:        req.Obj,
		Status:     res.Status,
		Mode:       res.Mode,
		NumPages:   int32(res.NumPages),
		Shard:      req.Shard,
		PageMap:    res.PageMap,
		LastWriter: res.LastWriter,
	}
}

func (e *Engine) handleGDORelease(req *wire.ReleaseReq) wire.Msg {
	if e.cfg.Dir == nil {
		return &wire.ErrResp{Msg: "node: not a GDO host"}
	}
	events, stamps, err := e.cfg.Dir.Release(req.Family, req.Site, req.Commit, req.Rels)
	if err != nil {
		return &wire.ErrResp{Msg: err.Error()}
	}
	e.routeEvents(events)
	return &wire.ReleaseResp{Shard: req.Shard, Stamps: stamps}
}

func (e *Engine) handleGDOCopySet(req *wire.CopySetReq) wire.Msg {
	if e.cfg.Dir == nil {
		return &wire.ErrResp{Msg: "node: not a GDO host"}
	}
	sets := make([]wire.CopySet, 0, len(req.Objs))
	for _, obj := range req.Objs {
		sites, err := e.cfg.Dir.CopySet(obj)
		if err != nil {
			return &wire.ErrResp{Msg: err.Error()}
		}
		sets = append(sets, wire.CopySet{Obj: obj, Sites: sites})
	}
	return &wire.CopySetResp{Sets: sets}
}

func (e *Engine) handleGDORegister(req *wire.RegisterReq) wire.Msg {
	if e.cfg.Dir == nil {
		return &wire.ErrResp{Msg: "node: not a GDO host"}
	}
	if err := e.cfg.Dir.Register(req.Obj, int(req.NumPages), req.Owner); err != nil {
		return &wire.ErrResp{Msg: err.Error()}
	}
	return &wire.RegisterResp{}
}

// routeEvents ships deferred directory decisions to the affected sites:
// "Send the list pointed to by HolderPtr and the page map to the new
// holder's site" (Alg 4.4), plus deadlock-abort notifications.
func (e *Engine) routeEvents(events []gdo.Event) {
	for _, ev := range events {
		switch ev.Kind {
		case gdo.EventGrant:
			_ = e.env.Send(ev.Site, &wire.Grant{
				Obj:        ev.Obj,
				Family:     ev.Family,
				Mode:       ev.Mode,
				Upgrade:    ev.Upgrade,
				NumPages:   int32(ev.NumPages),
				LastWriter: ev.LastWriter,
				Shard:      ev.Shard,
				Reqs:       ev.Reqs,
				PageMap:    ev.PageMap,
			})
		case gdo.EventDeadlockAbort:
			_ = e.env.Send(ev.Site, &wire.Abort{
				Obj:    ev.Obj,
				Family: ev.Family,
				Shard:  ev.Shard,
				Reqs:   ev.Reqs,
			})
		}
	}
}
