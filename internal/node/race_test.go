package node_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"lotec/internal/core"
	"lotec/internal/gdo"
	"lotec/internal/ids"
	"lotec/internal/node"
	"lotec/internal/pstore"
	"lotec/internal/schema"
	"lotec/internal/transport"
	"lotec/internal/txn"
	"lotec/internal/wire"
)

// threadNet is a genuinely concurrent transport for stress tests: unlike the
// one-proc-at-a-time SimNet, Call dispatches the remote handler inline on
// the calling goroutine and Send delivers on a fresh goroutine, so lock
// grants race against local acquisitions exactly as they do over TCP. Run
// it under -race.
type threadNet struct {
	mu       sync.Mutex
	handlers map[ids.NodeID]transport.Handler
	start    time.Time
	wg       sync.WaitGroup
	crashed  map[ids.NodeID]bool
	buffered []bufferedSend
}

type bufferedSend struct {
	from, to ids.NodeID
	m        wire.Msg
}

func newThreadNet() *threadNet {
	return &threadNet{
		handlers: make(map[ids.NodeID]transport.Handler),
		start:    time.Now(),
		crashed:  make(map[ids.NodeID]bool),
	}
}

func (n *threadNet) handler(id ids.NodeID) transport.Handler {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.handlers[id]
}

func (n *threadNet) setHandler(id ids.NodeID, h transport.Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[id] = h
}

// crash freezes a node: Send deliveries to it are buffered (the process is
// paused, its socket buffers fill) until restart flushes them.
func (n *threadNet) crash(id ids.NodeID) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.crashed[id] = true
}

// restart unfreezes a node and delivers every buffered message on its own
// goroutine — notifications (lock grants, aborts) completing futures whose
// waiters parked before the crash.
func (n *threadNet) restart(id ids.NodeID) {
	n.mu.Lock()
	delete(n.crashed, id)
	var flush []bufferedSend
	rest := n.buffered[:0]
	for _, b := range n.buffered {
		if b.to == id {
			flush = append(flush, b)
		} else {
			rest = append(rest, b)
		}
	}
	n.buffered = rest
	n.mu.Unlock()
	for _, b := range flush {
		h := n.handler(b.to)
		n.wg.Add(1)
		go func(b bufferedSend) {
			defer n.wg.Done()
			h(b.from, b.m)
		}(b)
	}
}

// bufferIfCrashed queues m when the destination is crashed; reports whether
// it did.
func (n *threadNet) bufferIfCrashed(from, to ids.NodeID, m wire.Msg) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.crashed[to] {
		return false
	}
	n.buffered = append(n.buffered, bufferedSend{from: from, to: to, m: m})
	return true
}

// wait blocks until every Send delivery and Go proc has finished.
func (n *threadNet) wait() { n.wg.Wait() }

type threadEnv struct {
	net  *threadNet
	self ids.NodeID
}

func (e *threadEnv) Self() ids.NodeID { return e.self }

func (e *threadEnv) Call(to ids.NodeID, m wire.Msg) (wire.Msg, error) {
	h := e.net.handler(to)
	if h == nil {
		return nil, transport.ErrNoHandler
	}
	return h(e.self, m), nil
}

func (e *threadEnv) Send(to ids.NodeID, m wire.Msg) error {
	h := e.net.handler(to)
	if h == nil {
		return transport.ErrNoHandler
	}
	if e.net.bufferIfCrashed(e.self, to, m) {
		return nil
	}
	e.net.wg.Add(1)
	go func() {
		defer e.net.wg.Done()
		h(e.self, m)
	}()
	return nil
}

func (e *threadEnv) NewFuture() transport.Future { return &chanFuture{ch: make(chan struct{})} }

func (e *threadEnv) Go(fn func()) {
	e.net.wg.Add(1)
	go func() {
		defer e.net.wg.Done()
		fn()
	}()
}

func (e *threadEnv) Sleep(d time.Duration) { time.Sleep(d) }
func (e *threadEnv) Now() time.Duration    { return time.Since(e.net.start) }

type chanFuture struct {
	once sync.Once
	ch   chan struct{}
	v    any
	err  error
}

func (f *chanFuture) Complete(v any, err error) {
	f.once.Do(func() {
		f.v, f.err = v, err
		close(f.ch)
	})
}

func (f *chanFuture) Wait() (any, error) {
	<-f.ch
	return f.v, f.err
}

// newThreadCluster builds `nodes` engines over net sharing one in-process
// GDO, with a single counter object (ID 1, class "C", methods set/get)
// homed at node 1.
func newThreadCluster(t *testing.T, net *threadNet, nodes int) map[ids.NodeID]*node.Engine {
	t.Helper()
	const obj = ids.ObjectID(1)
	dir := gdo.New(nodes)
	schemas := schema.NewRegistry(64)
	methods := node.NewMethodTable()
	cls, err := schema.NewClassBuilder(1, "C").
		Attr("a", 8).
		Method(schema.MethodSpec{Name: "set", Writes: []string{"a"}}).
		Method(schema.MethodSpec{Name: "get", Reads: []string{"a"}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := schemas.Add(cls); err != nil {
		t.Fatal(err)
	}
	if err := methods.Register(cls, "set", func(ctx *node.Ctx) error {
		b, err := ctx.ReadAt("a", 0, 1)
		if err != nil {
			return err
		}
		return ctx.Write("a", []byte{b[0] + 1, 0, 0, 0, 0, 0, 0, 0})
	}); err != nil {
		t.Fatal(err)
	}
	if err := methods.Register(cls, "get", func(ctx *node.Ctx) error {
		b, err := ctx.ReadAt("a", 0, 1)
		if err != nil {
			return err
		}
		ctx.SetResult(b)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	engines := make(map[ids.NodeID]*node.Engine)
	for i := 1; i <= nodes; i++ {
		id := ids.NodeID(i)
		eng, err := node.New(node.Config{
			Env:      &threadEnv{net: net, self: id},
			Store:    pstore.NewStore(64),
			Schemas:  schemas,
			Methods:  methods,
			Manager:  txn.NewManagerAt(uint64(id) << 40),
			Protocol: core.LOTEC,
			HomeFn:   dir.HomeNode,
			Dir:      dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		engines[id] = eng
		net.setHandler(id, eng.Handle)
	}
	if err := dir.Register(obj, 1, 1); err != nil {
		t.Fatal(err)
	}
	for _, eng := range engines {
		if err := eng.RegisterObject(obj, cls.ID, 1); err != nil {
			t.Fatal(err)
		}
	}
	return engines
}

// TestConcurrentGrantAndAcquireStress hammers one object from several
// goroutines on two sites while GDO grants arrive on their own delivery
// goroutines — the satellite-2 audit target: every wake site
// (handleGrant's GrantEligible batch, preCommit's sibling hand-off, root
// release) must complete futures outside e.mu, and a refused pre-commit
// must still wake the granted siblings. Deadlocks here manifest as a hang
// (the txn never completes); races as -race reports.
func TestConcurrentGrantAndAcquireStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	const (
		nodes   = 3
		workers = 4
		iters   = 25
		obj     = ids.ObjectID(1)
	)
	net := newThreadNet()
	engines := newThreadCluster(t, net, nodes)

	errs := make(chan error, 2*workers*iters)
	var wg sync.WaitGroup
	for _, site := range []ids.NodeID{1, 2} {
		eng := engines[site]
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(site ids.NodeID, w int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					if _, _, err := eng.Run(obj, "set", nil); err != nil {
						errs <- fmt.Errorf("site %v worker %d iter %d: %w", site, w, i, err)
						return
					}
				}
			}(site, w)
		}
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("stress run hung: a waiter was likely never woken")
	}
	net.wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	// Every increment serialized through the lock: the counter equals the
	// total number of committed runs.
	out, _, err := engines[1].Run(obj, "get", nil)
	if err != nil {
		t.Fatal(err)
	}
	net.wait()
	if want := byte(2 * workers * iters); len(out) != 1 || out[0] != want {
		t.Errorf("counter = %v, want %d (lost update ⇒ a wake-up raced a hand-off)", out, want)
	}
}

// TestFutureDoubleCompleteRace: the engine's wake-up paths can race a lock
// grant against a deadlock abort for the same parked future. The Future
// contract says later Completes are ignored; under -race, concurrent
// Completes and Waits must be clean, every Wait must observe the same
// single outcome, and repeated Waits must agree.
func TestFutureDoubleCompleteRace(t *testing.T) {
	for iter := 0; iter < 500; iter++ {
		f := &chanFuture{ch: make(chan struct{})}
		const waiters, completers = 3, 4
		vals := make([]any, waiters)
		errs := make([]error, waiters)
		var wg sync.WaitGroup
		for i := 0; i < waiters; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				vals[i], errs[i] = f.Wait()
			}(i)
		}
		abort := fmt.Errorf("deadlock victim")
		for i := 0; i < completers; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				if i%2 == 0 {
					f.Complete(i, nil) // the grant
				} else {
					f.Complete(nil, abort) // the racing abort
				}
			}(i)
		}
		wg.Wait()
		for i := 1; i < waiters; i++ {
			if vals[i] != vals[0] || errs[i] != errs[0] {
				t.Fatalf("iter %d: waiters observed different outcomes: (%v,%v) vs (%v,%v)",
					iter, vals[i], errs[i], vals[0], errs[0])
			}
		}
		// A second Wait after completion returns the settled outcome.
		v2, e2 := f.Wait()
		if v2 != vals[0] || e2 != errs[0] {
			t.Fatalf("iter %d: re-Wait changed the outcome", iter)
		}
		if vals[0] == nil && errs[0] == nil {
			t.Fatalf("iter %d: future settled with neither value nor error", iter)
		}
	}
}

// TestCrashDuringGrantSchedule: node 2 repeatedly freezes while lock grants
// are in flight to it; the grants are delivered when it restarts, completing
// futures whose waiters parked before (or during) the crash window. Exercises
// complete-after-crash under -race: late grant deliveries race against new
// acquisitions from the restarted node, and no wake-up may be lost.
func TestCrashDuringGrantSchedule(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	const (
		nodes   = 3
		workers = 3
		iters   = 15
		obj     = ids.ObjectID(1)
	)
	net := newThreadNet()
	engines := newThreadCluster(t, net, nodes)

	errs := make(chan error, 2*workers*iters)
	var wg sync.WaitGroup
	for _, site := range []ids.NodeID{1, 2} {
		eng := engines[site]
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(site ids.NodeID, w int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					if _, _, err := eng.Run(obj, "set", nil); err != nil {
						errs <- fmt.Errorf("site %v worker %d iter %d: %w", site, w, i, err)
						return
					}
				}
			}(site, w)
		}
	}
	workersDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(workersDone)
	}()

	// The crasher: freeze node 2 in short bursts until the workers finish,
	// always ending with a restart so every buffered grant is delivered.
	crasherDone := make(chan struct{})
	go func() {
		defer close(crasherDone)
		for {
			net.crash(2)
			time.Sleep(2 * time.Millisecond)
			net.restart(2)
			select {
			case <-workersDone:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()

	select {
	case <-workersDone:
	case <-time.After(60 * time.Second):
		t.Fatal("crash schedule hung: a buffered grant was likely lost")
	}
	<-crasherDone
	net.wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	out, _, err := engines[3].Run(obj, "get", nil)
	if err != nil {
		t.Fatal(err)
	}
	net.wait()
	if want := byte(2 * workers * iters); len(out) != 1 || out[0] != want {
		t.Errorf("counter = %v, want %d (a grant delivered after restart was lost)", out, want)
	}
}
