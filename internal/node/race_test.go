package node_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"lotec/internal/core"
	"lotec/internal/gdo"
	"lotec/internal/ids"
	"lotec/internal/node"
	"lotec/internal/pstore"
	"lotec/internal/schema"
	"lotec/internal/transport"
	"lotec/internal/txn"
	"lotec/internal/wire"
)

// threadNet is a genuinely concurrent transport for stress tests: unlike the
// one-proc-at-a-time SimNet, Call dispatches the remote handler inline on
// the calling goroutine and Send delivers on a fresh goroutine, so lock
// grants race against local acquisitions exactly as they do over TCP. Run
// it under -race.
type threadNet struct {
	mu       sync.Mutex
	handlers map[ids.NodeID]transport.Handler
	start    time.Time
	wg       sync.WaitGroup
}

func newThreadNet() *threadNet {
	return &threadNet{handlers: make(map[ids.NodeID]transport.Handler), start: time.Now()}
}

func (n *threadNet) handler(id ids.NodeID) transport.Handler {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.handlers[id]
}

func (n *threadNet) setHandler(id ids.NodeID, h transport.Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handlers[id] = h
}

// wait blocks until every Send delivery and Go proc has finished.
func (n *threadNet) wait() { n.wg.Wait() }

type threadEnv struct {
	net  *threadNet
	self ids.NodeID
}

func (e *threadEnv) Self() ids.NodeID { return e.self }

func (e *threadEnv) Call(to ids.NodeID, m wire.Msg) (wire.Msg, error) {
	h := e.net.handler(to)
	if h == nil {
		return nil, transport.ErrNoHandler
	}
	return h(e.self, m), nil
}

func (e *threadEnv) Send(to ids.NodeID, m wire.Msg) error {
	h := e.net.handler(to)
	if h == nil {
		return transport.ErrNoHandler
	}
	e.net.wg.Add(1)
	go func() {
		defer e.net.wg.Done()
		h(e.self, m)
	}()
	return nil
}

func (e *threadEnv) NewFuture() transport.Future { return &chanFuture{ch: make(chan struct{})} }

func (e *threadEnv) Go(fn func()) {
	e.net.wg.Add(1)
	go func() {
		defer e.net.wg.Done()
		fn()
	}()
}

func (e *threadEnv) Sleep(d time.Duration) { time.Sleep(d) }
func (e *threadEnv) Now() time.Duration    { return time.Since(e.net.start) }

type chanFuture struct {
	once sync.Once
	ch   chan struct{}
	v    any
	err  error
}

func (f *chanFuture) Complete(v any, err error) {
	f.once.Do(func() {
		f.v, f.err = v, err
		close(f.ch)
	})
}

func (f *chanFuture) Wait() (any, error) {
	<-f.ch
	return f.v, f.err
}

// TestConcurrentGrantAndAcquireStress hammers one object from several
// goroutines on two sites while GDO grants arrive on their own delivery
// goroutines — the satellite-2 audit target: every wake site
// (handleGrant's GrantEligible batch, preCommit's sibling hand-off, root
// release) must complete futures outside e.mu, and a refused pre-commit
// must still wake the granted siblings. Deadlocks here manifest as a hang
// (the txn never completes); races as -race reports.
func TestConcurrentGrantAndAcquireStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test; skipped in -short")
	}
	const (
		nodes   = 3
		workers = 4
		iters   = 25
		obj     = ids.ObjectID(1)
	)
	net := newThreadNet()
	dir := gdo.New(nodes)
	schemas := schema.NewRegistry(64)
	methods := node.NewMethodTable()
	cls, err := schema.NewClassBuilder(1, "C").
		Attr("a", 8).
		Method(schema.MethodSpec{Name: "set", Writes: []string{"a"}}).
		Method(schema.MethodSpec{Name: "get", Reads: []string{"a"}}).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if err := schemas.Add(cls); err != nil {
		t.Fatal(err)
	}
	if err := methods.Register(cls, "set", func(ctx *node.Ctx) error {
		b, err := ctx.ReadAt("a", 0, 1)
		if err != nil {
			return err
		}
		return ctx.Write("a", []byte{b[0] + 1, 0, 0, 0, 0, 0, 0, 0})
	}); err != nil {
		t.Fatal(err)
	}
	if err := methods.Register(cls, "get", func(ctx *node.Ctx) error {
		b, err := ctx.ReadAt("a", 0, 1)
		if err != nil {
			return err
		}
		ctx.SetResult(b)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	engines := make(map[ids.NodeID]*node.Engine)
	for i := 1; i <= nodes; i++ {
		id := ids.NodeID(i)
		eng, err := node.New(node.Config{
			Env:      &threadEnv{net: net, self: id},
			Store:    pstore.NewStore(64),
			Schemas:  schemas,
			Methods:  methods,
			Manager:  txn.NewManagerAt(uint64(id) << 40),
			Protocol: core.LOTEC,
			HomeFn:   dir.HomeNode,
			Dir:      dir,
		})
		if err != nil {
			t.Fatal(err)
		}
		engines[id] = eng
		net.setHandler(id, eng.Handle)
	}
	if err := dir.Register(obj, 1, 1); err != nil {
		t.Fatal(err)
	}
	for _, eng := range engines {
		if err := eng.RegisterObject(obj, cls.ID, 1); err != nil {
			t.Fatal(err)
		}
	}

	errs := make(chan error, 2*workers*iters)
	var wg sync.WaitGroup
	for _, site := range []ids.NodeID{1, 2} {
		eng := engines[site]
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(site ids.NodeID, w int) {
				defer wg.Done()
				for i := 0; i < iters; i++ {
					if _, _, err := eng.Run(obj, "set", nil); err != nil {
						errs <- fmt.Errorf("site %v worker %d iter %d: %w", site, w, i, err)
						return
					}
				}
			}(site, w)
		}
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("stress run hung: a waiter was likely never woken")
	}
	net.wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	// Every increment serialized through the lock: the counter equals the
	// total number of committed runs.
	out, _, err := engines[1].Run(obj, "get", nil)
	if err != nil {
		t.Fatal(err)
	}
	net.wait()
	if want := byte(2 * workers * iters); len(out) != 1 || out[0] != want {
		t.Errorf("counter = %v, want %d (lost update ⇒ a wake-up raced a hand-off)", out, want)
	}
}
