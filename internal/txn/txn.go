// Package txn implements Moss-style closed nested transaction trees extended
// to nested *object* transactions (§3 of the paper): every method invocation
// is a [sub-]transaction, user invocations create root transactions, and the
// 1:1 mapping between invocations and transactions induces the transaction
// family tree. Unlike Moss's model, transactions at any level may access
// data (§3.3).
//
// This package is pure bookkeeping: tree structure, status transitions and
// ancestry queries. Lock disposition (inheritance, retention) lives in
// package o2pl, undo logs in package pstore, and both are driven by the node
// engine using the events this package validates.
package txn

import (
	"errors"
	"fmt"
	"sync"

	"lotec/internal/ids"
)

// Status is the lifecycle state of a [sub-]transaction.
type Status int

// Transaction lifecycle states.
const (
	// Active transactions are executing (or waiting on a lock).
	Active Status = iota + 1
	// PreCommitted sub-transactions have committed relative to their
	// family; their effects become permanent only when the root commits
	// (§3.2 "a process we will refer to as pre-committing").
	PreCommitted
	// Committed is reached only by roots (and, transitively, by their
	// pre-committed descendants once the root commits).
	Committed
	// Aborted transactions have been rolled back.
	Aborted
)

// String implements fmt.Stringer.
func (s Status) String() string {
	switch s {
	case Active:
		return "active"
	case PreCommitted:
		return "pre-committed"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Lifecycle errors.
var (
	ErrNotActive       = errors.New("txn: transaction is not active")
	ErrActiveChildren  = errors.New("txn: transaction has active sub-transactions")
	ErrNotRoot         = errors.New("txn: operation requires a root transaction")
	ErrRootOp          = errors.New("txn: operation not valid on a root transaction")
	ErrCrossNodeChild  = errors.New("txn: sub-transaction must run at its family's node")
	ErrUnknownTx       = errors.New("txn: unknown transaction")
	ErrTooDeeplyNested = errors.New("txn: nesting depth limit exceeded")
)

// MaxDepth bounds transaction nesting; it exists to catch runaway recursive
// invocation loops in user code rather than to model any protocol limit.
const MaxDepth = 256

// Txn is one node in a transaction family tree. All mutation goes through
// the owning Manager; Txn fields are safe to read concurrently only after
// publication through Manager methods.
type Txn struct {
	id     ids.TxID
	parent *Txn
	root   *Txn
	node   ids.NodeID
	depth  int

	mu             sync.Mutex
	status         Status // guarded by mu
	activeChildren int    // guarded by mu
	children       []*Txn // guarded by mu
}

// ID returns the transaction's unique identifier.
func (t *Txn) ID() ids.TxID { return t.id }

// Parent returns the parent transaction, or nil for a root.
func (t *Txn) Parent() *Txn { return t.parent }

// Root returns the family's root transaction (itself, for a root).
func (t *Txn) Root() *Txn { return t.root }

// Family returns the family identifier: the root's TxID (§3.1).
func (t *Txn) Family() ids.FamilyID { return t.root.id }

// Node returns the site the transaction executes at. Whole families execute
// at a single site (§4.1).
func (t *Txn) Node() ids.NodeID { return t.node }

// Depth returns the nesting depth (0 for a root).
func (t *Txn) Depth() int { return t.depth }

// IsRoot reports whether t is a root transaction.
func (t *Txn) IsRoot() bool { return t.parent == nil }

// Ref returns the ⟨transaction, node⟩ pair used in GDO lists.
func (t *Txn) Ref() ids.TxRef { return ids.TxRef{Tx: t.id, Node: t.node} }

// Status returns the current lifecycle state.
func (t *Txn) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

// String implements fmt.Stringer.
func (t *Txn) String() string {
	return fmt.Sprintf("%v@%v[fam %v, depth %d]", t.id, t.node, t.Family(), t.depth)
}

// IsAncestorOf reports whether t is a proper ancestor of u.
func (t *Txn) IsAncestorOf(u *Txn) bool {
	for p := u.parent; p != nil; p = p.parent {
		if p == t {
			return true
		}
	}
	return false
}

// SelfOrAncestorOf reports whether t == u or t is a proper ancestor of u.
func (t *Txn) SelfOrAncestorOf(u *Txn) bool {
	return t == u || t.IsAncestorOf(u)
}

// Manager creates transactions and validates their lifecycle transitions.
// A Manager is safe for concurrent use.
type Manager struct {
	gen ids.TxIDGenerator

	mu   sync.Mutex
	byID map[ids.TxID]*Txn // guarded by mu
}

// NewManager returns an empty Manager.
func NewManager() *Manager {
	return &Manager{byID: make(map[ids.TxID]*Txn)}
}

// NewManagerAt returns a Manager issuing TxIDs above base, giving each node
// of a distributed deployment a disjoint TxID namespace.
func NewManagerAt(base uint64) *Manager {
	m := NewManager()
	m.gen.Seed(base)
	return m
}

// Begin creates a root transaction executing at node.
func (m *Manager) Begin(node ids.NodeID) *Txn {
	t := &Txn{
		id:     m.gen.Next(),
		node:   node,
		status: Active,
	}
	t.root = t
	m.mu.Lock()
	m.byID[t.id] = t
	m.mu.Unlock()
	return t
}

// BeginChild creates a sub-transaction of parent, executing at the same
// node (families are single-site, §4.1).
func (m *Manager) BeginChild(parent *Txn) (*Txn, error) {
	parent.mu.Lock()
	if parent.status != Active {
		defer parent.mu.Unlock()
		return nil, fmt.Errorf("%w: parent %v is %v", ErrNotActive, parent.id, parent.status)
	}
	if parent.depth+1 > MaxDepth {
		parent.mu.Unlock()
		return nil, fmt.Errorf("%w: depth %d", ErrTooDeeplyNested, parent.depth+1)
	}
	t := &Txn{
		id:     m.gen.Next(),
		parent: parent,
		root:   parent.root,
		node:   parent.node,
		depth:  parent.depth + 1,
		status: Active,
	}
	parent.children = append(parent.children, t)
	parent.activeChildren++
	parent.mu.Unlock()

	m.mu.Lock()
	m.byID[t.id] = t
	m.mu.Unlock()
	return t, nil
}

// Lookup returns the transaction with the given ID.
func (m *Manager) Lookup(id ids.TxID) (*Txn, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t, ok := m.byID[id]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownTx, id)
	}
	return t, nil
}

// finish transitions t out of Active and updates the parent's active count.
func (m *Manager) finish(t *Txn, to Status) error {
	t.mu.Lock()
	if t.status != Active {
		defer t.mu.Unlock()
		return fmt.Errorf("%w: %v is %v", ErrNotActive, t.id, t.status)
	}
	if t.activeChildren > 0 {
		defer t.mu.Unlock()
		return fmt.Errorf("%w: %v has %d", ErrActiveChildren, t.id, t.activeChildren)
	}
	t.status = to
	t.mu.Unlock()

	if t.parent != nil {
		t.parent.mu.Lock()
		t.parent.activeChildren--
		t.parent.mu.Unlock()
	}
	return nil
}

// PreCommit marks a sub-transaction pre-committed. Rule 3 of §4.1: a
// transaction cannot pre-commit until all its sub-transactions have
// finished. Lock inheritance is performed by the caller (the node engine)
// via the o2pl entry operations.
func (m *Manager) PreCommit(t *Txn) error {
	if t.IsRoot() {
		return fmt.Errorf("%w: %v", ErrRootOp, t.id)
	}
	return m.finish(t, PreCommitted)
}

// CommitRoot commits a root transaction, making the family's effects
// permanent (rule 5 of §4.1).
func (m *Manager) CommitRoot(t *Txn) error {
	if !t.IsRoot() {
		return fmt.Errorf("%w: %v", ErrNotRoot, t.id)
	}
	if err := m.finish(t, Committed); err != nil {
		return err
	}
	markSubtreeCommitted(t)
	return nil
}

// markSubtreeCommitted upgrades every pre-committed descendant to Committed.
func markSubtreeCommitted(t *Txn) {
	t.mu.Lock()
	children := append([]*Txn(nil), t.children...)
	t.mu.Unlock()
	for _, c := range children {
		c.mu.Lock()
		if c.status == PreCommitted {
			c.status = Committed
		}
		c.mu.Unlock()
		markSubtreeCommitted(c)
	}
}

// Abort marks any active transaction aborted (rule 4 of §4.1). UNDO and lock
// disposition are performed by the caller. Aborting a transaction with
// active children is an error: children finish (or are aborted) first,
// innermost-out, because invocation is synchronous.
func (m *Manager) Abort(t *Txn) error {
	return m.finish(t, Aborted)
}

// Children returns a snapshot of t's direct sub-transactions in creation
// order.
func (t *Txn) Children() []*Txn {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]*Txn(nil), t.children...)
}
