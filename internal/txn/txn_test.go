package txn

import (
	"errors"
	"testing"
	"testing/quick"

	"lotec/internal/ids"
)

func TestBeginRoot(t *testing.T) {
	m := NewManager()
	r := m.Begin(2)
	if !r.IsRoot() || r.Parent() != nil || r.Root() != r {
		t.Error("root identity wrong")
	}
	if r.Node() != 2 || r.Depth() != 0 || r.Status() != Active {
		t.Errorf("root fields wrong: %v depth=%d status=%v", r.Node(), r.Depth(), r.Status())
	}
	if r.Family() != r.ID() {
		t.Error("root family must be its own ID")
	}
	if r.Ref() != (ids.TxRef{Tx: r.ID(), Node: 2}) {
		t.Errorf("Ref = %v", r.Ref())
	}
}

func TestBeginChild(t *testing.T) {
	m := NewManager()
	r := m.Begin(1)
	c, err := m.BeginChild(r)
	if err != nil {
		t.Fatal(err)
	}
	if c.IsRoot() || c.Parent() != r || c.Root() != r || c.Family() != r.ID() {
		t.Error("child tree links wrong")
	}
	if c.Node() != r.Node() {
		t.Error("child must execute at family's node")
	}
	if c.Depth() != 1 {
		t.Errorf("depth = %d, want 1", c.Depth())
	}
	kids := r.Children()
	if len(kids) != 1 || kids[0] != c {
		t.Errorf("Children = %v", kids)
	}
}

func TestBeginChildOfFinishedParentFails(t *testing.T) {
	m := NewManager()
	r := m.Begin(1)
	if err := m.CommitRoot(r); err != nil {
		t.Fatal(err)
	}
	if _, err := m.BeginChild(r); !errors.Is(err, ErrNotActive) {
		t.Errorf("got %v, want ErrNotActive", err)
	}
}

func TestLookup(t *testing.T) {
	m := NewManager()
	r := m.Begin(1)
	got, err := m.Lookup(r.ID())
	if err != nil || got != r {
		t.Errorf("Lookup = %v, %v", got, err)
	}
	if _, err := m.Lookup(9999); !errors.Is(err, ErrUnknownTx) {
		t.Errorf("Lookup missing: %v", err)
	}
}

func TestAncestry(t *testing.T) {
	m := NewManager()
	r := m.Begin(1)
	a, _ := m.BeginChild(r)
	b, _ := m.BeginChild(r)
	a1, _ := m.BeginChild(a)

	if !r.IsAncestorOf(a) || !r.IsAncestorOf(a1) || !a.IsAncestorOf(a1) {
		t.Error("ancestor chains wrong")
	}
	if a.IsAncestorOf(b) || b.IsAncestorOf(a1) || a1.IsAncestorOf(r) {
		t.Error("false ancestry")
	}
	if a.IsAncestorOf(a) {
		t.Error("IsAncestorOf must be proper")
	}
	if !a.SelfOrAncestorOf(a) || !r.SelfOrAncestorOf(a1) {
		t.Error("SelfOrAncestorOf wrong")
	}
	if b.SelfOrAncestorOf(a1) {
		t.Error("sibling is not ancestor")
	}
}

func TestPreCommitLifecycle(t *testing.T) {
	m := NewManager()
	r := m.Begin(1)
	c, _ := m.BeginChild(r)
	if err := m.PreCommit(c); err != nil {
		t.Fatal(err)
	}
	if c.Status() != PreCommitted {
		t.Errorf("status = %v", c.Status())
	}
	if err := m.PreCommit(c); !errors.Is(err, ErrNotActive) {
		t.Errorf("double pre-commit: %v", err)
	}
	if err := m.PreCommit(r); !errors.Is(err, ErrRootOp) {
		t.Errorf("pre-commit of root: %v", err)
	}
}

func TestPreCommitBlockedByActiveChildren(t *testing.T) {
	m := NewManager()
	r := m.Begin(1)
	c, _ := m.BeginChild(r)
	g, _ := m.BeginChild(c)
	if err := m.PreCommit(c); !errors.Is(err, ErrActiveChildren) {
		t.Errorf("got %v, want ErrActiveChildren", err)
	}
	if err := m.PreCommit(g); err != nil {
		t.Fatal(err)
	}
	if err := m.PreCommit(c); err != nil {
		t.Errorf("pre-commit after child finished: %v", err)
	}
}

func TestCommitRootPromotesPreCommittedSubtree(t *testing.T) {
	m := NewManager()
	r := m.Begin(1)
	a, _ := m.BeginChild(r)
	a1, _ := m.BeginChild(a)
	b, _ := m.BeginChild(r)

	if err := m.PreCommit(a1); err != nil {
		t.Fatal(err)
	}
	if err := m.PreCommit(a); err != nil {
		t.Fatal(err)
	}
	if err := m.Abort(b); err != nil {
		t.Fatal(err)
	}
	if err := m.CommitRoot(r); err != nil {
		t.Fatal(err)
	}
	if r.Status() != Committed || a.Status() != Committed || a1.Status() != Committed {
		t.Errorf("statuses: r=%v a=%v a1=%v", r.Status(), a.Status(), a1.Status())
	}
	if b.Status() != Aborted {
		t.Errorf("aborted child promoted: %v", b.Status())
	}
}

func TestCommitRootRequiresRoot(t *testing.T) {
	m := NewManager()
	r := m.Begin(1)
	c, _ := m.BeginChild(r)
	if err := m.CommitRoot(c); !errors.Is(err, ErrNotRoot) {
		t.Errorf("got %v, want ErrNotRoot", err)
	}
}

func TestCommitRootBlockedByActiveChildren(t *testing.T) {
	m := NewManager()
	r := m.Begin(1)
	if _, err := m.BeginChild(r); err != nil {
		t.Fatal(err)
	}
	if err := m.CommitRoot(r); !errors.Is(err, ErrActiveChildren) {
		t.Errorf("got %v, want ErrActiveChildren", err)
	}
}

func TestAbort(t *testing.T) {
	m := NewManager()
	r := m.Begin(1)
	c, _ := m.BeginChild(r)
	if err := m.Abort(c); err != nil {
		t.Fatal(err)
	}
	if c.Status() != Aborted {
		t.Errorf("status = %v", c.Status())
	}
	// Parent can now finish.
	if err := m.CommitRoot(r); err != nil {
		t.Errorf("commit after child abort: %v", err)
	}
}

func TestAbortWithActiveChildrenFails(t *testing.T) {
	m := NewManager()
	r := m.Begin(1)
	c, _ := m.BeginChild(r)
	_ = c
	if err := m.Abort(r); !errors.Is(err, ErrActiveChildren) {
		t.Errorf("got %v, want ErrActiveChildren", err)
	}
}

func TestDepthLimit(t *testing.T) {
	m := NewManager()
	cur := m.Begin(1)
	var err error
	for i := 0; i < MaxDepth; i++ {
		cur, err = m.BeginChild(cur)
		if err != nil {
			t.Fatalf("depth %d: %v", i, err)
		}
	}
	if _, err := m.BeginChild(cur); !errors.Is(err, ErrTooDeeplyNested) {
		t.Errorf("got %v, want ErrTooDeeplyNested", err)
	}
}

func TestStatusString(t *testing.T) {
	cases := map[Status]string{
		Active:       "active",
		PreCommitted: "pre-committed",
		Committed:    "committed",
		Aborted:      "aborted",
		Status(99):   "status(99)",
	}
	for s, want := range cases {
		if got := s.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(s), got, want)
		}
	}
}

func TestTxnString(t *testing.T) {
	m := NewManager()
	r := m.Begin(3)
	if got := r.String(); got == "" {
		t.Error("empty String()")
	}
}

// Property: in any randomly generated family tree, Family() of every node is
// the root's ID, depth equals the number of ancestors, and IsAncestorOf is
// consistent with the construction.
func TestFamilyTreeProperty(t *testing.T) {
	f := func(structure []uint8) bool {
		m := NewManager()
		root := m.Begin(1)
		nodes := []*Txn{root}
		for _, s := range structure {
			parent := nodes[int(s)%len(nodes)]
			if parent.Status() != Active {
				continue
			}
			c, err := m.BeginChild(parent)
			if err != nil {
				return false
			}
			nodes = append(nodes, c)
		}
		for _, n := range nodes {
			if n.Family() != root.ID() {
				return false
			}
			depth := 0
			for p := n.Parent(); p != nil; p = p.Parent() {
				if !p.IsAncestorOf(n) {
					return false
				}
				depth++
			}
			if depth != n.Depth() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
