package o2pl

import (
	"errors"
	"testing"

	"lotec/internal/txn"
)

// family builds a root with two children (a, b) and one grandchild under a.
func family(t *testing.T) (m *txn.Manager, root, a, b, a1 *txn.Txn) {
	t.Helper()
	m = txn.NewManager()
	root = m.Begin(1)
	var err error
	if a, err = m.BeginChild(root); err != nil {
		t.Fatal(err)
	}
	if b, err = m.BeginChild(root); err != nil {
		t.Fatal(err)
	}
	if a1, err = m.BeginChild(a); err != nil {
		t.Fatal(err)
	}
	return m, root, a, b, a1
}

func mustGrant(t *testing.T, e *Entry, tx *txn.Txn, mode Mode) {
	t.Helper()
	d, _, err := e.Acquire(tx, mode)
	if err != nil {
		t.Fatalf("Acquire(%v, %v): %v", tx.ID(), mode, err)
	}
	if d != Granted {
		t.Fatalf("Acquire(%v, %v) = %v, want Granted", tx.ID(), mode, d)
	}
}

func mustWait(t *testing.T, e *Entry, tx *txn.Txn, mode Mode) *Waiter {
	t.Helper()
	d, w, err := e.Acquire(tx, mode)
	if err != nil {
		t.Fatalf("Acquire(%v, %v): %v", tx.ID(), mode, err)
	}
	if d != Waiting || w == nil {
		t.Fatalf("Acquire(%v, %v) = %v, want Waiting", tx.ID(), mode, d)
	}
	return w
}

func TestModeString(t *testing.T) {
	if Read.String() != "R" || Write.String() != "W" || Mode(9).String() != "mode(9)" {
		t.Error("Mode.String broken")
	}
}

func TestConflicts(t *testing.T) {
	if Conflicts(Read, Read) {
		t.Error("R/R must not conflict")
	}
	if !Conflicts(Read, Write) || !Conflicts(Write, Read) || !Conflicts(Write, Write) {
		t.Error("W must conflict with everything")
	}
}

func TestAcquireFreeEntry(t *testing.T) {
	_, root, a, _, _ := family(t)
	e := NewEntry(7, root.Family(), Write)
	mustGrant(t, e, a, Write)
	if m, ok := e.Holds(a); !ok || m != Write {
		t.Errorf("Holds = %v,%v", m, ok)
	}
	if e.HolderCount() != 1 {
		t.Errorf("HolderCount = %d", e.HolderCount())
	}
}

func TestAcquireWrongFamily(t *testing.T) {
	m := txn.NewManager()
	r1 := m.Begin(1)
	r2 := m.Begin(1)
	e := NewEntry(7, r1.Family(), Write)
	if _, _, err := e.Acquire(r2, Read); !errors.Is(err, ErrWrongFamily) {
		t.Errorf("got %v, want ErrWrongFamily", err)
	}
}

func TestConcurrentIntraFamilyReaders(t *testing.T) {
	_, _, a, b, _ := family(t)
	e := NewEntry(7, a.Family(), Read)
	mustGrant(t, e, a, Read)
	mustGrant(t, e, b, Read) // "grant the Read lock to the requesting transaction"
	if e.HolderCount() != 2 {
		t.Errorf("HolderCount = %d, want 2", e.HolderCount())
	}
}

func TestWriterWaitsForSiblingReader(t *testing.T) {
	_, _, a, b, _ := family(t)
	e := NewEntry(7, a.Family(), Write)
	mustGrant(t, e, a, Read)
	w := mustWait(t, e, b, Write)
	// Reader a pre-commits: lock goes retained by root; b becomes grantable.
	granted := e.PreCommit(a)
	if len(granted) != 1 || granted[0] != w {
		t.Fatalf("granted = %v, want [b's waiter]", granted)
	}
	if m, ok := e.Holds(b); !ok || m != Write {
		t.Error("b should now hold W")
	}
	if !e.Retains(a.Parent()) {
		t.Error("root should retain after a's pre-commit")
	}
}

func TestReaderWaitsForSiblingWriter(t *testing.T) {
	_, _, a, b, _ := family(t)
	e := NewEntry(7, a.Family(), Write)
	mustGrant(t, e, a, Write)
	w := mustWait(t, e, b, Read)
	granted := e.PreCommit(a)
	if len(granted) != 1 || granted[0] != w {
		t.Fatalf("granted = %v", granted)
	}
}

func TestRecursiveInvocationPrecluded(t *testing.T) {
	_, _, a, _, a1 := family(t)
	e := NewEntry(7, a.Family(), Write)
	mustGrant(t, e, a, Write)
	// a's descendant a1 requests the same object: precluded (§3.4).
	_, _, err := e.Acquire(a1, Read)
	if !errors.Is(err, ErrRecursiveInvocation) {
		t.Errorf("got %v, want ErrRecursiveInvocation", err)
	}
}

func TestRetainedByAncestorGranted(t *testing.T) {
	m, root, a, b, a1 := family(t)
	e := NewEntry(7, root.Family(), Write)
	mustGrant(t, e, a1, Write)
	if granted := e.PreCommit(a1); len(granted) != 0 {
		t.Fatalf("unexpected grants: %v", granted)
	}
	if err := m.PreCommit(a1); err != nil {
		t.Fatal(err)
	}
	// Retainer is now a (a1's parent). b is NOT a descendant of a: must wait
	// (rule 1: all retainers must be ancestors of the requester).
	if !e.Retains(a) {
		t.Fatal("a should retain")
	}
	w := mustWait(t, e, b, Write)

	// a's own new child would be eligible though.
	a2, err := m.BeginChild(a)
	if err != nil {
		t.Fatal(err)
	}
	mustGrant(t, e, a2, Write)
	granted := e.PreCommit(a2)
	if len(granted) != 0 {
		t.Fatalf("b granted too early: %v", granted)
	}
	// When a pre-commits, retention moves to root, and b becomes eligible.
	granted = e.PreCommit(a)
	if len(granted) != 1 || granted[0] != w {
		t.Fatalf("granted = %v, want [b]", granted)
	}
	if !e.Retains(root) || e.Retains(a) {
		t.Error("retention should have passed from a to root")
	}
}

func TestAbortReleasesUnretainedLockGlobally(t *testing.T) {
	_, root, a, _, _ := family(t)
	e := NewEntry(7, root.Family(), Write)
	mustGrant(t, e, a, Write)
	out := e.Abort(a)
	if !out.ReleaseGlobal {
		t.Error("abort of sole unretained holder must release globally")
	}
	if len(out.Granted) != 0 {
		t.Errorf("granted = %v", out.Granted)
	}
}

func TestAbortKeepsAncestorRetention(t *testing.T) {
	m, root, a, b, a1 := family(t)
	_ = b
	e := NewEntry(7, root.Family(), Write)
	mustGrant(t, e, a1, Write)
	e.PreCommit(a1)
	if err := m.PreCommit(a1); err != nil {
		t.Fatal(err)
	}
	// a retains. New child a2 acquires, then aborts: a continues to retain.
	a2, err := m.BeginChild(a)
	if err != nil {
		t.Fatal(err)
	}
	mustGrant(t, e, a2, Write)
	out := e.Abort(a2)
	if out.ReleaseGlobal {
		t.Error("lock retained by ancestor must not release globally")
	}
	if !e.Retains(a) {
		t.Error("a must continue to retain")
	}
}

func TestAbortOfRetainerDropsOwnRetentionOnly(t *testing.T) {
	m, root, a, _, a1 := family(t)
	e := NewEntry(7, root.Family(), Write)

	// root's own earlier retention: simulate a sibling of a that acquired
	// and pre-committed directly under root.
	c, err := m.BeginChild(root)
	if err != nil {
		t.Fatal(err)
	}
	mustGrant(t, e, c, Write)
	e.PreCommit(c)
	if err := m.PreCommit(c); err != nil {
		t.Fatal(err)
	}
	if !e.Retains(root) {
		t.Fatal("root should retain")
	}

	// a1 acquires from root's retention and pre-commits → a also retains.
	mustGrant(t, e, a1, Write)
	e.PreCommit(a1)
	if err := m.PreCommit(a1); err != nil {
		t.Fatal(err)
	}
	if !e.Retains(a) || !e.Retains(root) {
		t.Fatal("both a and root should retain")
	}

	// a aborts: its retention is dropped but root's persists.
	out := e.Abort(a)
	if out.ReleaseGlobal {
		t.Error("root still retains; must not release globally")
	}
	if e.Retains(a) {
		t.Error("a's retention should be dropped")
	}
	if !e.Retains(root) {
		t.Error("root's retention must persist")
	}
}

func TestNeedGlobalOnUpgrade(t *testing.T) {
	_, root, a, _, _ := family(t)
	e := NewEntry(7, root.Family(), Read)
	mustGrant(t, e, a, Read)
	d, _, err := e.Acquire(a, Write)
	if err != nil || d != NeedGlobal {
		t.Fatalf("Acquire W under global R = %v, %v; want NeedGlobal", d, err)
	}
	e.SetGlobalMode(Write)
	if e.GlobalMode() != Write {
		t.Error("SetGlobalMode failed")
	}
	// Downgrade attempts are ignored.
	e.SetGlobalMode(Read)
	if e.GlobalMode() != Write {
		t.Error("SetGlobalMode must not downgrade")
	}
}

func TestGrantEligibleFIFOWriters(t *testing.T) {
	m, root, a, b, _ := family(t)
	c, err := m.BeginChild(root)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEntry(7, root.Family(), Write)
	mustGrant(t, e, a, Write)
	wb := mustWait(t, e, b, Write)
	wc := mustWait(t, e, c, Write)
	granted := e.PreCommit(a)
	if len(granted) != 1 || granted[0] != wb {
		t.Fatalf("granted = %v, want only first writer", granted)
	}
	granted = e.PreCommit(b)
	if len(granted) != 1 || granted[0] != wc {
		t.Fatalf("second grant = %v", granted)
	}
}

func TestGrantEligibleBatchReaders(t *testing.T) {
	m, root, a, b, _ := family(t)
	c, err := m.BeginChild(root)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEntry(7, root.Family(), Write)
	mustGrant(t, e, a, Write)
	mustWait(t, e, b, Read)
	mustWait(t, e, c, Read)
	granted := e.PreCommit(a)
	if len(granted) != 2 {
		t.Fatalf("granted %d waiters, want both readers", len(granted))
	}
}

func TestEnqueueAndGrantEligible(t *testing.T) {
	_, root, a, _, _ := family(t)
	e := NewEntry(7, root.Family(), Write)
	w := &Waiter{Tx: a, Mode: Write}
	e.Enqueue(w)
	if e.WaiterCount() != 1 {
		t.Fatalf("WaiterCount = %d", e.WaiterCount())
	}
	granted := e.GrantEligible()
	if len(granted) != 1 || granted[0] != w {
		t.Fatalf("granted = %v", granted)
	}
}

func TestDropWaiter(t *testing.T) {
	_, root, a, b, _ := family(t)
	e := NewEntry(7, root.Family(), Write)
	mustGrant(t, e, a, Write)
	w := mustWait(t, e, b, Write)
	if !e.DropWaiter(w) {
		t.Error("DropWaiter failed")
	}
	if e.DropWaiter(w) {
		t.Error("double DropWaiter succeeded")
	}
	if e.WaiterCount() != 0 {
		t.Errorf("WaiterCount = %d", e.WaiterCount())
	}
}

func TestAbortDropsOwnWaiters(t *testing.T) {
	_, root, a, b, _ := family(t)
	e := NewEntry(7, root.Family(), Write)
	mustGrant(t, e, a, Write)
	mustWait(t, e, b, Write)
	out := e.Abort(b)
	if e.WaiterCount() != 0 {
		t.Error("aborting a waiter must remove it from the queue")
	}
	if out.ReleaseGlobal {
		t.Error("a still holds; no global release")
	}
}

func TestIdleAndRefs(t *testing.T) {
	_, root, a, _, _ := family(t)
	e := NewEntry(7, root.Family(), Write)
	if !e.Idle() {
		t.Error("fresh entry should be idle")
	}
	mustGrant(t, e, a, Write)
	if e.Idle() {
		t.Error("held entry is not idle")
	}
	refs := e.HolderRefs()
	if len(refs) != 1 || refs[0].Tx != a.ID() {
		t.Errorf("HolderRefs = %v", refs)
	}
	e.PreCommit(a)
	if rr := e.RetainerRefs(); len(rr) != 1 || rr[0].Tx != root.ID() {
		t.Errorf("RetainerRefs = %v", rr)
	}
	if e.Object() != 7 || e.Family() != root.Family() {
		t.Error("identity accessors wrong")
	}
}

func TestHoldsMiss(t *testing.T) {
	_, root, a, _, _ := family(t)
	e := NewEntry(7, root.Family(), Write)
	if _, ok := e.Holds(a); ok {
		t.Error("Holds on empty entry")
	}
}

func TestPreCommitWithoutInvolvementGrantsNothing(t *testing.T) {
	_, root, a, b, _ := family(t)
	e := NewEntry(7, root.Family(), Write)
	mustGrant(t, e, a, Write)
	if g := e.PreCommit(b); g != nil {
		t.Errorf("uninvolved pre-commit granted %v", g)
	}
}
