package o2pl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lotec/internal/txn"
)

// entryState wraps an Entry plus the live transactions driving it, for
// random-walk invariant testing.
type entryState struct {
	t       *testing.T
	m       *txn.Manager
	entry   *Entry
	active  []*txn.Txn // transactions that may still act
	waiting map[*txn.Txn]bool
}

// checkInvariants asserts the lock-safety conditions after every step:
//  1. at most one writer, and never a writer concurrent with readers;
//  2. retainers form a single ancestor chain;
//  3. no waiter is currently eligible (the entry never forgets to grant).
func (s *entryState) checkInvariants() bool {
	writers, readers := 0, 0
	var holders []*txn.Txn
	for _, tx := range s.active {
		if m, ok := s.entry.Holds(tx); ok {
			holders = append(holders, tx)
			if m == Write {
				writers++
			} else {
				readers++
			}
		}
	}
	if writers > 1 || (writers == 1 && readers > 0) {
		s.t.Logf("conflicting holders: %d writers, %d readers", writers, readers)
		return false
	}
	// Retainers form a chain: every pair is ancestor-related.
	var retainers []*txn.Txn
	for _, tx := range s.allTxs() {
		if s.entry.Retains(tx) {
			retainers = append(retainers, tx)
		}
	}
	for i := 0; i < len(retainers); i++ {
		for j := i + 1; j < len(retainers); j++ {
			a, b := retainers[i], retainers[j]
			if !a.SelfOrAncestorOf(b) && !b.SelfOrAncestorOf(a) {
				s.t.Logf("retainers %v and %v unrelated", a.ID(), b.ID())
				return false
			}
		}
	}
	return true
}

func (s *entryState) allTxs() []*txn.Txn {
	out := append([]*txn.Txn(nil), s.active...)
	for tx := range s.waiting {
		out = append(out, tx)
	}
	return out
}

// TestEntryRandomWalkInvariants drives a family-local entry with random
// acquire / pre-commit / abort sequences and checks lock safety throughout.
func TestEntryRandomWalkInvariants(t *testing.T) {
	f := func(seed int64, opsRaw []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m := txn.NewManager()
		root := m.Begin(1)
		s := &entryState{
			t:       t,
			m:       m,
			entry:   NewEntry(1, root.Family(), Write),
			active:  []*txn.Txn{root},
			waiting: map[*txn.Txn]bool{},
		}
		for _, op := range opsRaw {
			if len(s.active) == 0 {
				break
			}
			tx := s.active[rng.Intn(len(s.active))]
			switch op % 4 {
			case 0: // spawn a child
				if len(s.active)+len(s.waiting) < 12 {
					child, err := m.BeginChild(tx)
					if err == nil {
						s.active = append(s.active, child)
					}
				}
			case 1: // acquire (random mode) unless already a holder
				if _, held := s.entry.Holds(tx); held || s.waiting[tx] {
					continue
				}
				mode := Read
				if op%8 >= 4 {
					mode = Write
				}
				dec, w, err := s.entry.Acquire(tx, mode)
				if err != nil {
					continue // recursive-invocation rejections are fine
				}
				if dec == Waiting {
					s.waiting[tx] = true
					s.remove(tx)
					_ = w
				}
			case 2: // pre-commit a leaf (children must be done first)
				if tx == root || len(activeChildren(tx, s)) > 0 {
					continue
				}
				granted := s.entry.PreCommit(tx)
				if err := m.PreCommit(tx); err != nil {
					// Tree state said no; revert is impossible, so treat as
					// a test-harness bug.
					return false
				}
				s.remove(tx)
				s.wake(granted)
			default: // abort a leaf
				if tx == root || len(activeChildren(tx, s)) > 0 {
					continue
				}
				out := s.entry.Abort(tx)
				if err := m.Abort(tx); err != nil {
					return false
				}
				s.remove(tx)
				s.wake(out.Granted)
			}
			if !s.checkInvariants() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func (s *entryState) remove(tx *txn.Txn) {
	for i, a := range s.active {
		if a == tx {
			s.active = append(s.active[:i], s.active[i+1:]...)
			return
		}
	}
}

func (s *entryState) wake(granted []*Waiter) {
	for _, w := range granted {
		delete(s.waiting, w.Tx)
		s.active = append(s.active, w.Tx)
	}
}

// activeChildren counts a transaction's children still in play (active or
// waiting).
func activeChildren(tx *txn.Txn, s *entryState) []*txn.Txn {
	var out []*txn.Txn
	for _, c := range tx.Children() {
		if c.Status() == txn.Active {
			out = append(out, c)
		}
	}
	return out
}
