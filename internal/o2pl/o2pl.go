// Package o2pl implements the *local* half of the paper's nested object
// two-phase locking protocol (§3.4, §4.1): the per-site, per-family cached
// lock entry that Algorithm 4.1 (LocalLockAcquisition) and Algorithm 4.3
// (LocalLockRelease) operate on.
//
// "The locally cached portion of a GDO entry for a given object consists of
// the entire list of transactions from the family currently holding the
// object's lock" (§4.1) — an Entry is exactly that cache: the holder list,
// the set of retaining ancestors, and the family's local FIFO wait queue.
// Inter-family arbitration is the GDO's job (package gdo).
//
// The package is pure state machine: no I/O, no blocking. Operations return
// decisions and newly granted waiters; the node engine does the messaging
// and wakes parked transactions.
package o2pl

import (
	"errors"
	"fmt"
	"sort"

	"lotec/internal/ids"
	"lotec/internal/txn"
)

// Mode is a lock mode. Modes are ordered: Write subsumes Read, so a family
// holding a Write lock globally can satisfy local Read requests.
type Mode int

// Lock modes (multiple readers / single writer, §4.1 rule 1).
const (
	Read  Mode = iota + 1 // shared
	Write                 // exclusive
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Read:
		return "R"
	case Write:
		return "W"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Conflicts reports whether two lock modes conflict.
func Conflicts(a, b Mode) bool { return a == Write || b == Write }

// ErrRecursiveInvocation is returned when a transaction requests a lock held
// (not merely retained) by one of its ancestors. The paper precludes
// mutually recursive invocations (§3.4): granting would be unsafe and
// waiting would deadlock the family, so the invocation fails and the
// sub-transaction aborts.
var ErrRecursiveInvocation = errors.New("o2pl: object lock is held by an ancestor (recursive invocation precluded)")

// ErrWrongFamily is returned when a transaction from a different family is
// presented to a family-local entry; it indicates an engine bug.
var ErrWrongFamily = errors.New("o2pl: transaction does not belong to entry's family")

// Decision is the outcome of a local acquisition attempt.
type Decision int

// Acquisition outcomes.
const (
	// Granted means the lock was acquired immediately.
	Granted Decision = iota + 1
	// Waiting means the request was queued on the family's local list
	// ("Link transaction onto local list", Alg 4.1).
	Waiting
	// NeedGlobal means the request exceeds the mode the GDO granted this
	// family (a Read-held family wants Write): the engine must perform a
	// global upgrade before re-presenting the request.
	NeedGlobal
)

// Waiter is a queued local request. The engine owns Data (typically the
// parked transaction's wake-up future).
type Waiter struct {
	Tx   *txn.Txn
	Mode Mode
	Data any
}

// hold records one current holder.
type hold struct {
	tx   *txn.Txn
	mode Mode
}

// Entry is the locally cached lock state of one object for one family.
// Entries are not safe for concurrent use; the node engine serializes
// access.
type Entry struct {
	obj        ids.ObjectID
	family     ids.FamilyID
	globalMode Mode // strongest mode the GDO has granted this family

	holders   map[ids.TxID]hold
	retainers map[ids.TxID]*txn.Txn // ancestor chain of retaining transactions
	waiters   []*Waiter
}

// NewEntry creates the local cache entry when the GDO grants the family
// access to obj at globalMode.
func NewEntry(obj ids.ObjectID, family ids.FamilyID, globalMode Mode) *Entry {
	return &Entry{
		obj:        obj,
		family:     family,
		globalMode: globalMode,
		holders:    make(map[ids.TxID]hold),
		retainers:  make(map[ids.TxID]*txn.Txn),
	}
}

// Object returns the object this entry caches.
func (e *Entry) Object() ids.ObjectID { return e.obj }

// Family returns the owning family.
func (e *Entry) Family() ids.FamilyID { return e.family }

// GlobalMode returns the strongest mode granted by the GDO.
func (e *Entry) GlobalMode() Mode { return e.globalMode }

// SetGlobalMode records a GDO-granted upgrade (Read → Write).
func (e *Entry) SetGlobalMode(m Mode) {
	if m > e.globalMode {
		e.globalMode = m
	}
}

// HolderCount returns the number of current holders.
func (e *Entry) HolderCount() int { return len(e.holders) }

// WaiterCount returns the length of the local wait queue.
func (e *Entry) WaiterCount() int { return len(e.waiters) }

// Holds reports whether tx currently holds the lock, and in which mode.
func (e *Entry) Holds(tx *txn.Txn) (Mode, bool) {
	h, ok := e.holders[tx.ID()]
	if !ok {
		return 0, false
	}
	return h.mode, true
}

// Retains reports whether tx currently retains the lock.
func (e *Entry) Retains(tx *txn.Txn) bool {
	_, ok := e.retainers[tx.ID()]
	return ok
}

// Idle reports whether the entry has no holders, no retainers and no
// waiters — i.e. the family has relinquished the object.
func (e *Entry) Idle() bool {
	return len(e.holders) == 0 && len(e.retainers) == 0 && len(e.waiters) == 0
}

// HolderRefs returns ⟨tx,node⟩ refs for all current holders in TxID order
// (diagnostics and GDO reporting; the order is part of the deterministic
// trace).
func (e *Entry) HolderRefs() []ids.TxRef {
	out := make([]ids.TxRef, 0, len(e.holders))
	for _, id := range sortedTxIDs(e.holders) {
		out = append(out, e.holders[id].tx.Ref())
	}
	return out
}

// deepestRetainer returns the retainer with the greatest depth, or nil.
// Retainers always form a chain along one root path, so the deepest one
// being an ancestor of a requester implies they all are. Iteration is in
// TxID order so ties (impossible on a chain, but cheap to rule out) cannot
// make the answer depend on map order.
func (e *Entry) deepestRetainer() *txn.Txn {
	var deepest *txn.Txn
	for _, id := range sortedTxIDs(e.retainers) {
		r := e.retainers[id]
		if deepest == nil || r.Depth() > deepest.Depth() {
			deepest = r
		}
	}
	return deepest
}

// retainersPermit reports rule 1's retention condition: every retaining
// transaction is an ancestor of tx (vacuously true with no retainers).
func (e *Entry) retainersPermit(tx *txn.Txn) bool {
	d := e.deepestRetainer()
	return d == nil || d.IsAncestorOf(tx)
}

// eligible reports whether a (tx, mode) request can be granted right now
// under the current holders and retainers, per Alg 4.1. tx's own existing
// hold (if any) is ignored, so a holder can upgrade Read→Write once its
// sibling readers drain.
func (e *Entry) eligible(tx *txn.Txn, mode Mode) bool {
	if !e.retainersPermit(tx) {
		return false
	}
	self := tx.ID()
	others, writers := 0, 0
	for id, h := range e.holders {
		if id == self {
			continue
		}
		others++
		if h.mode == Write {
			writers++
		}
	}
	if writers > 0 {
		return false
	}
	if others == 0 {
		return true
	}
	return mode == Read
}

// Acquire implements the cached-entry arm of Algorithm 4.1 for a request by
// tx at mode. On Waiting, the returned *Waiter has been queued and the
// engine should park the transaction after attaching its wake-up Data.
func (e *Entry) Acquire(tx *txn.Txn, mode Mode) (Decision, *Waiter, error) {
	if tx.Family() != e.family {
		return 0, nil, fmt.Errorf("%w: %v vs family %v", ErrWrongFamily, tx, e.family)
	}
	// Precluded mutually recursive invocation: an ancestor *holds* the lock
	// (§3.4). Checked before anything else; cost is proportional to the
	// number of holders, i.e. bounded by nesting depth for writes. Holders
	// are scanned in TxID order so the ancestor named in the error (which
	// lands in the deterministic trace) cannot depend on map order.
	for _, id := range sortedTxIDs(e.holders) {
		if h := e.holders[id]; h.tx.IsAncestorOf(tx) {
			return 0, nil, fmt.Errorf("%v requesting %v held by ancestor %v: %w",
				tx.ID(), e.obj, h.tx.ID(), ErrRecursiveInvocation)
		}
	}
	// Re-acquisition by a current holder: a no-op at equal-or-weaker mode,
	// an upgrade otherwise (needed when a lenient-mode body performs an
	// unpredicted write under a read lock).
	if h, ok := e.holders[tx.ID()]; ok && mode <= h.mode {
		return Granted, nil, nil
	}
	if mode > e.globalMode {
		return NeedGlobal, nil, nil
	}
	if e.eligible(tx, mode) {
		e.holders[tx.ID()] = hold{tx: tx, mode: mode}
		return Granted, nil, nil
	}
	w := &Waiter{Tx: tx, Mode: mode}
	e.waiters = append(e.waiters, w)
	return Waiting, w, nil
}

// Enqueue appends an already-built waiter (a request forwarded back from
// the GDO in a family grant batch) without eligibility checks; call
// GrantEligible afterwards.
func (e *Entry) Enqueue(w *Waiter) {
	e.waiters = append(e.waiters, w)
}

// GrantEligible scans the wait queue in FIFO order and grants every waiter
// that is eligible under the evolving holder set. Granted waiters are
// removed from the queue and returned so the engine can wake them.
//
// Readers may bypass queued writers, mirroring Alg 4.1's unconditional
// "grant the Read lock" arm; the paper accepts potential writer starvation
// in exchange for simplicity.
func (e *Entry) GrantEligible() []*Waiter {
	var granted []*Waiter
	rest := e.waiters[:0]
	for _, w := range e.waiters {
		// A waiter whose ancestor now holds the lock can never be granted;
		// this arises only through engine bugs, but failing closed (keep
		// waiting) is safer than granting.
		if e.eligible(w.Tx, w.Mode) {
			e.holders[w.Tx.ID()] = hold{tx: w.Tx, mode: w.Mode}
			granted = append(granted, w)
		} else {
			rest = append(rest, w)
		}
	}
	e.waiters = rest
	return granted
}

// PreCommit applies rule 3 of §4.1 to this entry when tx pre-commits: if tx
// holds the lock its hold is released to the parent for retaining, and if
// tx retains the lock the retention likewise passes to the parent ("its
// parent inherits and retains all of its locks (both held and retained)").
// Newly grantable waiters are returned.
func (e *Entry) PreCommit(tx *txn.Txn) []*Waiter {
	parent := tx.Parent()
	changed := false
	if _, ok := e.holders[tx.ID()]; ok {
		delete(e.holders, tx.ID())
		if parent != nil {
			e.retainers[parent.ID()] = parent
		}
		changed = true
	}
	if _, ok := e.retainers[tx.ID()]; ok {
		delete(e.retainers, tx.ID())
		if parent != nil {
			e.retainers[parent.ID()] = parent
		}
		changed = true
	}
	if !changed {
		return nil
	}
	return e.GrantEligible()
}

// AbortOutcome describes what the engine must do with the entry after a
// transaction abort.
type AbortOutcome struct {
	// Granted holds local waiters to wake.
	Granted []*Waiter
	// ReleaseGlobal is true when the family no longer holds, retains or
	// awaits the lock: Alg 4.3's "ELSE /* not retained by an ancestor */
	// Forward request to GlobalLockRelease".
	ReleaseGlobal bool
}

// Abort applies rule 4 of §4.1 when tx aborts: tx's hold and its own
// retention are dropped; retention by its ancestors persists ("who then
// continue to retain the locks"). Any waiter owned by tx is dropped too
// (its invocation is being unwound).
func (e *Entry) Abort(tx *txn.Txn) AbortOutcome {
	delete(e.holders, tx.ID())
	delete(e.retainers, tx.ID())
	rest := e.waiters[:0]
	for _, w := range e.waiters {
		if w.Tx != tx {
			rest = append(rest, w)
		}
	}
	e.waiters = rest

	out := AbortOutcome{Granted: e.GrantEligible()}
	out.ReleaseGlobal = e.Idle()
	return out
}

// DropWaiter removes a specific queued waiter (used when a parked
// transaction is aborted externally, e.g. by deadlock resolution).
func (e *Entry) DropWaiter(target *Waiter) bool {
	for i, w := range e.waiters {
		if w == target {
			e.waiters = append(e.waiters[:i], e.waiters[i+1:]...)
			return true
		}
	}
	return false
}

// RetainerRefs returns the current retainers in TxID order (diagnostics).
func (e *Entry) RetainerRefs() []ids.TxRef {
	out := make([]ids.TxRef, 0, len(e.retainers))
	for _, id := range sortedTxIDs(e.retainers) {
		out = append(out, e.retainers[id].Ref())
	}
	return out
}

// sortedTxIDs returns the map's keys in increasing TxID order, so lock-table
// scans observe holders and retainers deterministically.
func sortedTxIDs[V any](m map[ids.TxID]V) []ids.TxID {
	out := make([]ids.TxID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
