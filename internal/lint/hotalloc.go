package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// HotAlloc enforces the zero-allocation contract on functions annotated
// `//lotec:noalloc` in their doc comment: the directory grant/release fast
// path, the wire codec primitives and the transfer-pool helpers, where a
// per-call allocation multiplies by every page crossing the cluster.
//
// Inside an annotated function these constructs are flagged:
//
//   - make / new, slice, map and &T{} composite literals;
//   - append that is not the amortized self-assignment form
//     `x = append(x, ...)` (growing a reused buffer is admitted — that is
//     the codec's whole design — but growing a fresh slice is not);
//   - function literals (closure capture) and go statements;
//   - string↔[]byte/[]rune conversions and string concatenation;
//   - interface boxing: passing, returning or assigning a concrete
//     non-pointer-shaped value where an interface is expected;
//   - defer inside a loop;
//   - calls to module functions not themselves marked //lotec:noalloc,
//     calls to standard-library packages outside a small allowlist (sync,
//     sync/atomic, math, math/bits, encoding/binary, slices), and dynamic
//     calls through function values or interface methods.
//
// Two escape hatches keep the check aligned with how the hot paths fail in
// practice. Branches that terminate by returning a non-nil error (or
// panicking) are cold — `if err != nil { return fmt.Errorf(...) }` is the
// failure path, not the fast path — and are exempt wholesale. And a
// `//lotec:alloc-ok` directive on a flagged line documents a deliberate
// residual allocation (a pool miss, say); the directive audit reports it
// once the allocation disappears.
//
// The check is syntactic: it neither proves the compiler heap-allocates a
// flagged construct (escape analysis may stack-allocate it) nor catches
// allocations hidden behind unannotated dependencies it was told to trust.
// It is a regression tripwire for ROADMAP item 4, not a profiler.
var HotAlloc = &Analyzer{
	Name:       "hotalloc",
	Doc:        "functions marked //lotec:noalloc must not contain allocating constructs",
	RunProgram: runHotAlloc,
}

// noallocStdlibAllow are standard-library packages whose calls are admitted
// in noalloc functions: their relevant entry points are allocation-free.
var noallocStdlibAllow = map[string]bool{
	"sync":            true,
	"sync/atomic":     true,
	"math":            true,
	"math/bits":       true,
	"encoding/binary": true,
	"slices":          true, // in-place pdqsort/search over caller-owned slices
}

func runHotAlloc(prog *Program) []Finding {
	g := prog.graph()
	annotated := make(map[*types.Func]bool)
	for _, fi := range g.sortedFuncs() {
		if pos, ok := noallocMark(fi); ok {
			annotated[fi.obj] = true
			prog.MarkUsed("noalloc", pos)
		}
	}
	var out []Finding
	for _, fi := range g.sortedFuncs() {
		if !annotated[fi.obj] {
			continue
		}
		c := &allocCheck{
			p:         fi.pkg,
			prog:      prog,
			g:         g,
			annotated: annotated,
			fname:     funcDisplayName(fi.obj),
			sig:       fi.obj.Type().(*types.Signature),
		}
		c.stmts(fi.decl.Body.List)
		out = append(out, c.out...)
	}
	return out
}

// noallocMark finds a //lotec:noalloc line in the function's doc comment.
func noallocMark(fi *funcInfo) (token.Position, bool) {
	if fi.decl.Doc == nil {
		return token.Position{}, false
	}
	for _, cm := range fi.decl.Doc.List {
		if cm.Text == "//lotec:noalloc" || strings.HasPrefix(cm.Text, "//lotec:noalloc ") ||
			strings.HasPrefix(cm.Text, "//lotec:noalloc\t") || strings.HasPrefix(cm.Text, "//lotec:noalloc —") {
			return fi.pkg.Fset.Position(cm.Pos()), true
		}
	}
	return token.Position{}, false
}

// allocCheck walks one noalloc function body.
type allocCheck struct {
	p         *Package
	prog      *Program
	g         *callGraph
	annotated map[*types.Func]bool
	fname     string
	sig       *types.Signature
	loop      int
	out       []Finding
}

func (c *allocCheck) flag(pos token.Pos, format string, args ...any) {
	position := c.p.Fset.Position(pos)
	if c.prog.Suppressed("alloc-ok", position) {
		return
	}
	c.out = append(c.out, c.p.finding("hotalloc", pos,
		"noalloc %s: "+format+" (justify with //lotec:alloc-ok)",
		append([]any{c.fname}, args...)...))
}

func (c *allocCheck) stmts(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
	}
}

// coldableStmts walks a branch body, exempting it entirely when it
// terminates by returning a non-nil error or panicking — the cold failure
// path of a hot function.
func (c *allocCheck) coldableStmts(list []ast.Stmt) {
	if c.terminatesCold(list) {
		return
	}
	c.stmts(list)
}

// terminatesCold reports whether a statement list ends in `return <non-nil
// error ...>` or a panic call.
func (c *allocCheck) terminatesCold(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch last := list[len(list)-1].(type) {
	case *ast.ReturnStmt:
		return c.returnsNonNilError(last)
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok && isBuiltin(c.p, call, "panic") {
			return true
		}
	}
	return false
}

// returnsNonNilError reports whether a return statement carries an
// error-typed expression that is not the nil literal. Concrete error types
// (`return &PageMissingError{...}`) count: the branch is just as cold as a
// fmt.Errorf one.
func (c *allocCheck) returnsNonNilError(ret *ast.ReturnStmt) bool {
	for _, e := range ret.Results {
		if id, ok := e.(*ast.Ident); ok && id.Name == "nil" {
			continue
		}
		if tv, ok := c.p.Info.Types[e]; ok && tv.Type != nil && isErrorLike(tv.Type) {
			return true
		}
	}
	return false
}

// errorIface is the universe error interface.
var errorIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorLike reports whether t is the error interface or a concrete type
// implementing it.
func isErrorLike(t types.Type) bool {
	return isErrorType(t) || types.Implements(t, errorIface)
}

func (c *allocCheck) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.AssignStmt:
		c.assign(st)
	case *ast.ExprStmt:
		c.expr(st.X)
	case *ast.ReturnStmt:
		if c.returnsNonNilError(st) {
			return // cold failure path
		}
		for i, e := range st.Results {
			c.expr(e)
			if res := c.sig.Results(); res != nil && i < res.Len() && len(st.Results) == res.Len() {
				c.boxCheck(e, res.At(i).Type(), "return")
			}
		}
	case *ast.IfStmt:
		if st.Init != nil {
			c.stmt(st.Init)
		}
		c.expr(st.Cond)
		c.coldableStmts(st.Body.List)
		switch el := st.Else.(type) {
		case *ast.BlockStmt:
			c.coldableStmts(el.List)
		case *ast.IfStmt:
			c.stmt(el)
		}
	case *ast.ForStmt:
		if st.Init != nil {
			c.stmt(st.Init)
		}
		c.expr(st.Cond)
		if st.Post != nil {
			c.stmt(st.Post)
		}
		c.loop++
		c.stmts(st.Body.List)
		c.loop--
	case *ast.RangeStmt:
		c.expr(st.X)
		c.loop++
		c.stmts(st.Body.List)
		c.loop--
	case *ast.SwitchStmt:
		if st.Init != nil {
			c.stmt(st.Init)
		}
		c.expr(st.Tag)
		for _, cc := range st.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				for _, e := range cl.List {
					c.expr(e)
				}
				c.coldableStmts(cl.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		if st.Init != nil {
			c.stmt(st.Init)
		}
		c.stmt(st.Assign)
		for _, cc := range st.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				c.coldableStmts(cl.Body)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range st.Body.List {
			if cl, ok := cc.(*ast.CommClause); ok {
				if cl.Comm != nil {
					c.stmt(cl.Comm)
				}
				c.coldableStmts(cl.Body)
			}
		}
	case *ast.BlockStmt:
		c.stmts(st.List)
	case *ast.DeferStmt:
		if c.loop > 0 {
			c.flag(st.Pos(), "defer inside a loop allocates per iteration")
		}
		c.expr(st.Call)
	case *ast.GoStmt:
		c.flag(st.Pos(), "go statement allocates a goroutine")
	case *ast.IncDecStmt:
		c.expr(st.X)
	case *ast.SendStmt:
		c.expr(st.Chan)
		c.expr(st.Value)
		c.boxCheck(st.Value, chanElem(c.p.Info.TypeOf(st.Chan)), "channel send")
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v)
					}
				}
			}
		}
	case *ast.LabeledStmt:
		c.stmt(st.Stmt)
	}
}

// assign handles the self-append exemption and interface-boxing on plain
// assignments, then checks the operand expressions.
func (c *allocCheck) assign(st *ast.AssignStmt) {
	for i, rhs := range st.Rhs {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltin(c.p, call, "append") &&
			len(st.Lhs) == len(st.Rhs) && c.selfAppend(st.Lhs[i], call) {
			// x = append(x, ...): amortized growth into the reused buffer.
			for _, a := range call.Args[1:] {
				c.expr(a)
			}
			continue
		}
		c.expr(rhs)
		if st.Tok == token.ASSIGN && len(st.Lhs) == len(st.Rhs) {
			if lt := c.p.Info.TypeOf(st.Lhs[i]); lt != nil {
				c.boxCheck(rhs, lt, "assignment")
			}
		}
	}
}

// selfAppend reports whether call is `append(x, ...)` being assigned back
// to x (slicing of x in the first argument is fine: compaction like
// `h = append(h[:i], h[i+1:]...)` reuses the backing array).
func (c *allocCheck) selfAppend(lhs ast.Expr, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	arg := ast.Unparen(call.Args[0])
	for {
		if se, ok := arg.(*ast.SliceExpr); ok {
			arg = ast.Unparen(se.X)
			continue
		}
		break
	}
	lp, ok1 := exprPath(c.p, lhs)
	ap, ok2 := exprPath(c.p, arg)
	return ok1 && ok2 && lp == ap
}

// exprPath renders a selector chain like "w.buf" rooted at an identifier,
// with the root resolved to its object so shadowing cannot confuse the
// comparison.
func exprPath(p *Package, e ast.Expr) (string, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := p.Info.Uses[x]
		if obj == nil {
			obj = p.Info.Defs[x]
		}
		if obj == nil {
			return "", false
		}
		return x.Name + "#" + p.Fset.Position(obj.Pos()).String(), true
	case *ast.SelectorExpr:
		base, ok := exprPath(p, x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	}
	return "", false
}

// expr recursively checks an expression for allocating constructs.
func (c *allocCheck) expr(e ast.Expr) {
	if e == nil {
		return
	}
	switch x := e.(type) {
	case *ast.CallExpr:
		c.call(x)
	case *ast.FuncLit:
		c.flag(x.Pos(), "function literal allocates a closure")
	case *ast.CompositeLit:
		c.composite(x, false)
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if cl, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
				c.composite(cl, true)
				return
			}
		}
		c.expr(x.X)
	case *ast.BinaryExpr:
		if x.Op == token.ADD {
			if t := c.p.Info.TypeOf(x); t != nil {
				if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					c.flag(x.Pos(), "string concatenation allocates")
				}
			}
		}
		c.expr(x.X)
		c.expr(x.Y)
	case *ast.ParenExpr:
		c.expr(x.X)
	case *ast.SelectorExpr:
		c.expr(x.X)
	case *ast.IndexExpr:
		c.expr(x.X)
		c.expr(x.Index)
	case *ast.SliceExpr:
		c.expr(x.X)
		c.expr(x.Low)
		c.expr(x.High)
		c.expr(x.Max)
	case *ast.StarExpr:
		c.expr(x.X)
	case *ast.KeyValueExpr:
		c.expr(x.Key)
		c.expr(x.Value)
	case *ast.TypeAssertExpr:
		c.expr(x.X)
	}
}

// composite classifies a composite literal: value struct and array literals
// are plain copies, everything else (slice, map, &T{}) allocates.
func (c *allocCheck) composite(cl *ast.CompositeLit, addressed bool) {
	t := c.p.Info.TypeOf(cl)
	for _, el := range cl.Elts {
		c.expr(el)
	}
	if t == nil {
		return
	}
	switch t.Underlying().(type) {
	case *types.Struct:
		if addressed {
			c.flag(cl.Pos(), "&%s{} allocates", typeShort(t))
		}
	case *types.Array:
		if addressed {
			c.flag(cl.Pos(), "&%s{} allocates", typeShort(t))
		}
	default:
		c.flag(cl.Pos(), "%s composite literal allocates", typeShort(t))
	}
}

// call classifies one call expression.
func (c *allocCheck) call(call *ast.CallExpr) {
	for _, a := range call.Args {
		c.expr(a)
	}

	// Conversions: only string↔[]byte/[]rune copies.
	if tv, ok := c.p.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			src := c.p.Info.TypeOf(call.Args[0])
			if stringBytesConversion(src, tv.Type) {
				c.flag(call.Pos(), "%s↔%s conversion copies", typeShort(src), typeShort(tv.Type))
			}
		}
		return
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isB := c.p.Info.Uses[id].(*types.Builtin); isB {
			switch id.Name {
			case "make":
				c.flag(call.Pos(), "make allocates")
			case "new":
				c.flag(call.Pos(), "new allocates")
			case "append":
				c.flag(call.Pos(), "append outside `x = append(x, ...)` self-assignment grows a fresh slice")
			}
			return
		}
	}

	if fl, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		c.flag(fl.Pos(), "function literal allocates a closure")
		return
	}

	c.expr(call.Fun)
	fn := calleeOf(c.p, call)
	if fn == nil {
		c.flag(call.Pos(), "dynamic call %s (function value or interface method) may allocate", callName(call))
		return
	}
	if _, inModule := c.g.funcs[fn]; inModule {
		if !c.annotated[fn] {
			c.flag(call.Pos(), "calls %s, which is not marked //lotec:noalloc", funcDisplayName(fn))
		}
	} else if fn.Pkg() != nil && !noallocStdlibAllow[fn.Pkg().Path()] {
		c.flag(call.Pos(), "calls %s (outside the noalloc stdlib allowlist)", funcDisplayName(fn))
	}

	// Interface boxing of arguments against the callee's signature
	// (variadic tails excluded: those calls are flagged by other rules).
	if sig, ok := fn.Type().(*types.Signature); ok && !sig.Variadic() {
		for i := 0; i < sig.Params().Len() && i < len(call.Args); i++ {
			c.boxCheck(call.Args[i], sig.Params().At(i).Type(), "argument")
		}
	}
}

// boxCheck flags storing a concrete non-pointer-shaped value into an
// interface-typed slot, which heap-allocates the boxed copy.
func (c *allocCheck) boxCheck(e ast.Expr, target types.Type, what string) {
	if target == nil || !types.IsInterface(target) {
		return
	}
	// A generic callee's type parameter is interface-typed in go/types, but
	// instantiation substitutes the concrete type — no boxing happens.
	if _, isTP := target.(*types.TypeParam); isTP {
		return
	}
	src := c.p.Info.TypeOf(e)
	if src == nil || types.IsInterface(src) || pointerShaped(src) {
		return
	}
	if b, ok := src.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return
	}
	c.flag(e.Pos(), "%s boxes %s into %s", what, typeShort(src), typeShort(target))
}

// pointerShaped reports whether values of t fit an interface word without
// boxing (pointers, channels, maps, funcs, unsafe.Pointer).
func pointerShaped(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

// stringBytesConversion reports whether src→dst is a string↔[]byte or
// string↔[]rune conversion (both directions copy).
func stringBytesConversion(src, dst types.Type) bool {
	if src == nil || dst == nil {
		return false
	}
	return (isStringT(src) && isByteOrRuneSlice(dst)) || (isByteOrRuneSlice(src) && isStringT(dst))
}

func isStringT(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// chanElem returns a channel type's element type (nil otherwise).
func chanElem(t types.Type) types.Type {
	if t == nil {
		return nil
	}
	if ch, ok := t.Underlying().(*types.Chan); ok {
		return ch.Elem()
	}
	return nil
}

// typeShort renders a type compactly for diagnostics.
func typeShort(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
