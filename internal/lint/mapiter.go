package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// deterministicPackages are the package names whose behavior feeds the
// simulation trace: map-iteration order leaking out of any of them breaks
// LOTEC's byte-identical-runs contract.
var deterministicPackages = map[string]bool{
	"sim":       true,
	"gdo":       true,
	"directory": true,
	"node":      true,
	"o2pl":      true,
	"stats":     true,
	"xfer":      true,
	"workload":  true,
}

// MapIter flags `for range` over a map in determinism-critical packages
// unless the loop is provably order-insensitive or its accumulated results
// are sorted before use. A `//lotec:unordered` comment on the range line
// (or the line above) suppresses the diagnostic and documents why the
// order cannot leak.
//
// The order-insensitivity analysis is deliberately conservative. Inside
// the loop body these effects are accepted:
//
//   - writes into maps (m[k] = v, delete(m, k)) — sets are order-free;
//   - commutative accumulation (x += v, n++, ...);
//   - reads and writes of variables declared inside the loop;
//   - appends to an outer slice, provided that slice is passed to a
//     sort.* / slices.Sort* call after the loop in the same function.
//
// Anything else that can observe the order — calls, channel sends, plain
// assignments to outer variables, early return/break — is flagged.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc:  "map iteration order must not leak into determinism-critical state",
	Run:  runMapIter,
}

func runMapIter(prog *Program, p *Package) []Finding {
	if !deterministicPackages[p.Name] {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				if !isMapType(p.Info.Types[rs.X].Type) {
					return true
				}
				// The site is evaluated even when suppressed: a directive
				// only counts as consumed if the loop would actually be
				// flagged, so justifications over loops that became
				// order-safe are reported as stale by the audit.
				if f, bad := p.checkMapRange(fd, rs); bad {
					if prog.Suppressed("unordered", p.Fset.Position(rs.Pos())) {
						return true
					}
					out = append(out, f)
				}
				return true
			})
		}
	}
	return out
}

// checkMapRange decides whether one map-range site is order-safe; if not
// it returns the diagnostic to report.
func (p *Package) checkMapRange(fd *ast.FuncDecl, rs *ast.RangeStmt) (Finding, bool) {
	c := &rangeCheck{p: p, rs: rs, locals: make(map[types.Object]bool)}
	// The range variables themselves are per-iteration locals.
	for _, v := range []ast.Expr{rs.Key, rs.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
			if obj := p.Info.Defs[id]; obj != nil {
				c.locals[obj] = true
			}
		}
	}
	c.stmts(rs.Body.List)
	if c.reason != "" {
		return p.finding("mapiter", c.pos, "map iteration order can leak: %s (sort first, or justify with //lotec:unordered)", c.reason), true
	}
	// Appended-to outer slices are fine only when sorted after the loop.
	for _, cand := range c.appends {
		if !p.sortedAfter(fd, rs, cand) {
			return p.finding("mapiter", rs.Pos(),
				"results appended to %q in map order but never sorted before use (sort after the loop, or justify with //lotec:unordered)",
				cand.Name()), true
		}
	}
	return Finding{}, false
}

// rangeCheck walks one map-range body classifying its effects.
type rangeCheck struct {
	p       *Package
	rs      *ast.RangeStmt
	locals  map[types.Object]bool // objects declared inside the body
	appends []types.Object        // outer slices accumulated via append
	reason  string                // first order-sensitive effect found
	pos     token.Pos
}

func (c *rangeCheck) fail(pos token.Pos, format string, args ...any) {
	if c.reason == "" {
		c.reason = fmt.Sprintf(format, args...)
		c.pos = pos
	}
}

func (c *rangeCheck) isLocal(id *ast.Ident) bool {
	if id == nil || id.Name == "_" {
		return true
	}
	if obj := c.p.Info.Defs[id]; obj != nil && c.locals[obj] {
		return true
	}
	if obj := c.p.Info.Uses[id]; obj != nil && c.locals[obj] {
		return true
	}
	return false
}

func (c *rangeCheck) stmts(list []ast.Stmt) {
	for _, s := range list {
		c.stmt(s)
		if c.reason != "" {
			return
		}
	}
}

func (c *rangeCheck) stmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.AssignStmt:
		c.assign(st)
	case *ast.IncDecStmt:
		// x++ / x-- commute across iterations.
		c.exprReads(st.X)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						if obj := c.p.Info.Defs[name]; obj != nil {
							c.locals[obj] = true
						}
					}
					for _, v := range vs.Values {
						c.exprReads(v)
					}
				}
			}
		}
	case *ast.ExprStmt:
		c.exprStmt(st.X)
	case *ast.IfStmt:
		if st.Init != nil {
			c.stmt(st.Init)
		}
		c.exprReads(st.Cond)
		c.stmts(st.Body.List)
		if st.Else != nil {
			c.stmt(st.Else)
		}
	case *ast.BlockStmt:
		c.stmts(st.List)
	case *ast.ForStmt:
		if st.Init != nil {
			c.stmt(st.Init)
		}
		if st.Cond != nil {
			c.exprReads(st.Cond)
		}
		if st.Post != nil {
			c.stmt(st.Post)
		}
		c.stmts(st.Body.List)
	case *ast.RangeStmt:
		for _, v := range []ast.Expr{st.Key, st.Value} {
			if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
				if obj := c.p.Info.Defs[id]; obj != nil {
					c.locals[obj] = true
				}
			}
		}
		c.exprReads(st.X)
		c.stmts(st.Body.List)
	case *ast.SwitchStmt:
		if st.Init != nil {
			c.stmt(st.Init)
		}
		if st.Tag != nil {
			c.exprReads(st.Tag)
		}
		for _, cc := range st.Body.List {
			if cl, ok := cc.(*ast.CaseClause); ok {
				for _, e := range cl.List {
					c.exprReads(e)
				}
				c.stmts(cl.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		c.fail(st.Pos(), "type switch inside map range")
	case *ast.BranchStmt:
		if st.Tok == token.BREAK {
			c.fail(st.Pos(), "break picks an arbitrary map element")
		}
		// continue is order-free.
	case *ast.ReturnStmt:
		c.fail(st.Pos(), "return from inside map range depends on which key is visited first")
	case *ast.SendStmt:
		c.fail(st.Pos(), "channel send publishes elements in map order")
	case *ast.GoStmt, *ast.DeferStmt:
		c.fail(s.Pos(), "go/defer inside map range runs in map order")
	case *ast.EmptyStmt, *ast.LabeledStmt:
		// fine / unwrap
		if ls, ok := s.(*ast.LabeledStmt); ok {
			c.stmt(ls.Stmt)
		}
	default:
		c.fail(s.Pos(), "statement with order-dependent effects")
	}
}

// assign classifies one assignment inside the body.
func (c *rangeCheck) assign(st *ast.AssignStmt) {
	for _, rhs := range st.Rhs {
		c.exprReads(rhs)
	}
	if st.Tok == token.DEFINE {
		for _, lhs := range st.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := c.p.Info.Defs[id]; obj != nil {
					c.locals[obj] = true
				}
			}
		}
		return
	}
	for i, lhs := range st.Lhs {
		root := rootIdent(lhs)
		if root != nil && c.isLocal(root) {
			continue
		}
		// Map element writes are set-building: order-free.
		if ix, ok := lhs.(*ast.IndexExpr); ok && isMapType(c.p.Info.Types[ix.X].Type) {
			continue
		}
		// Compound assignment (+=, |=, ...) commutes for the accumulator
		// patterns that appear here.
		if st.Tok != token.ASSIGN {
			continue
		}
		// x = append(x, ...) on an outer slice: defer judgment until we
		// know whether it is sorted after the loop.
		if i < len(st.Rhs) {
			if call, ok := st.Rhs[i].(*ast.CallExpr); ok && isBuiltin(c.p, call, "append") {
				if root != nil {
					if obj := c.p.Info.Uses[root]; obj != nil {
						if sameRoot(c.p, call.Args[0], obj) {
							c.appends = append(c.appends, obj)
							continue
						}
					}
				}
			}
		}
		name := "expression"
		if root != nil {
			name = root.Name
		}
		c.fail(lhs.Pos(), "assignment to outer %q overwrites in map order", name)
	}
}

// exprStmt classifies a bare expression statement (normally a call).
func (c *rangeCheck) exprStmt(e ast.Expr) {
	if call, ok := e.(*ast.CallExpr); ok {
		if isBuiltin(c.p, call, "delete") {
			return // removing from a set is order-free
		}
		c.exprReads(e)
		if c.reason == "" {
			c.fail(call.Pos(), "call %s has effects that may observe map order", callName(call))
		}
		return
	}
	c.exprReads(e)
}

// exprReads scans an expression for order-sensitive sub-effects (nested
// calls that are not pure builtins/conversions, function literals).
func (c *rangeCheck) exprReads(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if c.reason != "" {
			return false
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			if isPureCall(c.p, x) {
				return true // arguments still scanned
			}
			c.fail(x.Pos(), "call %s has effects that may observe map order", callName(x))
			return false
		case *ast.FuncLit:
			c.fail(x.Pos(), "function literal inside map range")
			return false
		}
		return true
	})
}

// isPureCall reports whether a call is a type conversion or an effect-free
// builtin, which cannot leak iteration order by themselves.
func isPureCall(p *Package, call *ast.CallExpr) bool {
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		return true // conversion
	}
	switch callName(call) {
	case "len", "cap", "make", "new", "min", "max", "append", "copy", "delete":
		return true
	}
	return false
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(p *Package, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, isB := p.Info.Uses[id].(*types.Builtin)
	return isB
}

// callName renders a call's function expression for diagnostics.
func callName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		if x, ok := f.X.(*ast.Ident); ok {
			return x.Name + "." + f.Sel.Name
		}
		return "(...)." + f.Sel.Name
	default:
		return "(func expr)"
	}
}

// sameRoot reports whether e's left-most identifier resolves to obj.
func sameRoot(p *Package, e ast.Expr, obj types.Object) bool {
	id := rootIdent(e)
	if id == nil {
		return false
	}
	return p.Info.Uses[id] == obj
}

// sortedAfter reports whether obj (a slice accumulated inside rs) is
// passed to a recognized sort call after the range statement within fd.
func (p *Package) sortedAfter(fd *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		if !isSortCall(call) || len(call.Args) == 0 {
			return true
		}
		arg := call.Args[0]
		if u, ok := arg.(*ast.UnaryExpr); ok && u.Op == token.AND {
			arg = u.X
		}
		if sameRoot(p, arg, obj) {
			found = true
			return false
		}
		return true
	})
	return found
}

// isSortCall recognizes stdlib sorting entry points.
func isSortCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	switch pkg.Name {
	case "sort":
		switch sel.Sel.Name {
		case "Slice", "SliceStable", "Sort", "Stable", "Strings", "Ints", "Float64s":
			return true
		}
	case "slices":
		switch sel.Sel.Name {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}
