package lint

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// funcInfo is one function or method declared in the analyzed program.
type funcInfo struct {
	obj  *types.Func
	decl *ast.FuncDecl
	pkg  *Package
}

// callSite is one statically resolved call inside a function body.
type callSite struct {
	caller *types.Func
	callee *types.Func
	call   *ast.CallExpr
}

// callGraph is the static, whole-program call graph over the loaded
// packages. Only calls whose callee resolves to a concrete *types.Func
// declared in an analyzed package appear as edges; calls through function
// values and interface methods are opaque (the analyzers building on the
// graph document that conservatism).
type callGraph struct {
	funcs map[*types.Func]*funcInfo
	calls map[*types.Func][]callSite
}

// buildCallGraph indexes every function declaration of the program and the
// statically resolvable calls between them. The graph is deterministic:
// iteration helpers below sort by position.
func buildCallGraph(prog *Program) *callGraph {
	g := &callGraph{
		funcs: make(map[*types.Func]*funcInfo),
		calls: make(map[*types.Func][]callSite),
	}
	for _, p := range prog.Pkgs {
		for _, file := range p.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := p.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				g.funcs[fn] = &funcInfo{obj: fn, decl: fd, pkg: p}
			}
		}
	}
	for _, fi := range g.funcs {
		fi := fi
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(fi.pkg, call)
			if callee == nil {
				return true
			}
			g.calls[fi.obj] = append(g.calls[fi.obj], callSite{caller: fi.obj, callee: callee, call: call})
			return true
		})
	}
	return g
}

// calleeOf resolves a call expression to the *types.Func it invokes, or nil
// for dynamic calls (function values, interface methods without a concrete
// target), conversions and builtins.
func calleeOf(p *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := p.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			fn, _ := sel.Obj().(*types.Func)
			if fn != nil && interfaceMethod(fn) {
				return nil // dynamic dispatch: target unknown
			}
			return fn
		}
		if fn, ok := p.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// interfaceMethod reports whether fn is declared on an interface type (so a
// call to it dispatches dynamically).
func interfaceMethod(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	return types.IsInterface(sig.Recv().Type())
}

// sortedFuncs returns the program's functions ordered by source position,
// for deterministic iteration.
func (g *callGraph) sortedFuncs() []*funcInfo {
	out := make([]*funcInfo, 0, len(g.funcs))
	for _, fi := range g.funcs {
		out = append(out, fi)
	}
	sort.Slice(out, func(i, j int) bool {
		pi := out[i].pkg.Fset.Position(out[i].decl.Pos())
		pj := out[j].pkg.Fset.Position(out[j].decl.Pos())
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Line < pj.Line
	})
	return out
}

// funcDisplayName renders a function for diagnostics: pkg.Func or
// pkg.(*Type).Method, with import-path noise stripped.
func funcDisplayName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	pkg := fn.Pkg().Name()
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		recv := sig.Recv().Type()
		star := ""
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
			star = "*"
		}
		if named, ok := recv.(*types.Named); ok {
			return pkg + ".(" + star + named.Obj().Name() + ")." + fn.Name()
		}
	}
	return pkg + "." + fn.Name()
}

// stdFuncIs reports whether fn is the standard-library function
// <pkgPath>.<name> (package-level, not a method).
func stdFuncIs(fn *types.Func, pkgPath, name string) bool {
	if fn == nil || fn.Pkg() == nil || fn.Name() != name || fn.Pkg().Path() != pkgPath {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	return sig == nil || sig.Recv() == nil
}

// recvNamed returns the named type of fn's receiver (dereferencing a
// pointer receiver), or nil for package-level functions.
func recvNamed(fn *types.Func) *types.Named {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// pathString renders a chain of functions ending at a source description,
// e.g. "server.dial → server.stamp → time.Now()".
func pathString(chain []*types.Func, terminal string) string {
	var b strings.Builder
	for _, fn := range chain {
		b.WriteString(funcDisplayName(fn))
		b.WriteString(" → ")
	}
	b.WriteString(terminal)
	return b.String()
}
