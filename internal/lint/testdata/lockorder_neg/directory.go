// Package directory is a lockorder negative fixture: consistent nested
// order, defer-held locks, a local mutex (unclassifiable), and one
// deliberate inversion blessed with //lotec:lockorder-ok.
package directory

import "sync"

// S and T are two lock classes acquired S before T everywhere but TS.
type S struct{ mu sync.Mutex }
type T struct{ mu sync.Mutex }

// ST nests in the canonical order.
func ST(s *S, t *T) {
	s.mu.Lock()
	t.mu.Lock()
	t.mu.Unlock()
	s.mu.Unlock()
}

// STAgain holds both via defer; same order, so still no cycle.
func STAgain(s *S, t *T) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
}

// Sequential releases S before taking T: no edge at all.
func Sequential(s *S, t *T) {
	s.mu.Lock()
	s.mu.Unlock()
	t.mu.Lock()
	t.mu.Unlock()
}

// Local locks a function-local mutex: no class, no edges.
func Local(s *S) {
	var mu sync.Mutex
	mu.Lock()
	s.mu.Lock()
	s.mu.Unlock()
	mu.Unlock()
}

// TS inverts the order deliberately; the blessing on the acquisition site
// excuses the cycle it would otherwise close with ST.
func TS(s *S, t *T) {
	t.mu.Lock()
	s.mu.Lock() //lotec:lockorder-ok — fixture: inversion is intentional
	s.mu.Unlock()
	t.mu.Unlock()
}
