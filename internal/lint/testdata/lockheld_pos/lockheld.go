// Package fixture seeds lockheld violations: annotated fields accessed
// without their guarding mutex on a dominating path.
package fixture

import "sync"

// Counter has one guarded field and several unsafe accessors.
type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu
}

// BadRead reads n with no lock at all.
func (c *Counter) BadRead() int {
	return c.n
}

// BadAfterUnlock releases the lock and then touches n.
func (c *Counter) BadAfterUnlock() int {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	return c.n
}

// BadBranch locks on only one path: the access is not dominated.
func (c *Counter) BadBranch(lock bool) int {
	if lock {
		c.mu.Lock()
	}
	return c.n
}

// BadGoroutine spawns a closure that reads n unlocked.
func (c *Counter) BadGoroutine(out chan<- int) {
	go func() {
		out <- c.n
	}()
}
