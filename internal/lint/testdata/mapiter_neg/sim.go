// Package sim is the mapiter negative fixture: every map range below is
// order-safe, so the analyzer must stay silent.
package sim

import "sort"

// SortedAfter accumulates in map order but sorts before anyone can see it.
func SortedAfter(m map[int]string) []string {
	out := make([]string, 0, len(m))
	for _, v := range m {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// MapToMap builds a set from a set: no order can leak.
func MapToMap(m map[int]bool) map[int]bool {
	out := make(map[int]bool, len(m))
	for k := range m {
		out[k] = true
	}
	return out
}

// Commutative accumulates with order-insensitive operators.
func Commutative(m map[int]int) (sum int, n int) {
	for _, v := range m {
		sum += v
		n++
	}
	return sum, n
}

// DeleteAll empties another set; deletion order is invisible.
func DeleteAll(m, victims map[int]bool) {
	for k := range victims {
		delete(m, k)
	}
}

// Suppressed is order-dependent but carries a justification directive.
func Suppressed(m map[int]string, ch chan<- string) {
	//lotec:unordered — test fixture justification
	for _, v := range m {
		ch <- v
	}
}
