package sim

// localOnly writes only body-local variables and commutative accumulators.
func localOnly(m map[int][]int) int {
	sum := 0
	for _, vs := range m {
		total := 0
		for _, v := range vs {
			total += v
		}
		sum += total
	}
	return sum
}
