// Package sim is a mapiter fixture: its name marks it determinism-critical,
// and every function below leaks map iteration order.
package sim

import "fmt"

// UnsortedAppend accumulates results in map order and never sorts them.
func UnsortedAppend(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// CallInBody runs a side-effecting call once per element, in map order.
func CallInBody(m map[int]string) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

// EarlyReturn returns whichever key the runtime happens to visit first.
func EarlyReturn(m map[int]bool) int {
	for k := range m {
		return k
	}
	return -1
}

// PlainOverwrite keeps the last-visited value — a map-order lottery.
func PlainOverwrite(m map[int]string) string {
	var last string
	for _, v := range m {
		last = v
	}
	return last
}

// ChannelSend publishes elements in map order.
func ChannelSend(m map[int]string, ch chan<- string) {
	for _, v := range m {
		ch <- v
	}
}
