// Package sim is a detsource negative fixture: deterministic patterns
// that must not be flagged — seeded RNGs, a virtual clock, single-clause
// select, and sorted map iteration (mapiter's domain).
package sim

import (
	"math/rand"
	"sort"
	"time"
)

// Clock is a virtual clock advanced by the simulation, not the host.
type Clock struct{ now int64 }

// Advance moves virtual time; time.Duration arithmetic is pure.
func (c *Clock) Advance(d time.Duration) { c.now += int64(d) }

// Draw uses a seeded generator: methods on *rand.Rand are deterministic.
func Draw(r *rand.Rand) int { return r.Intn(6) }

// NewRNG constructs a seeded generator; rand.New/NewSource are not the
// global RNG.
func NewRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// One has a single communication clause: no scheduler choice.
func One(ch chan int) int {
	select {
	case v := <-ch:
		return v
	}
}

// SortedKeys sorts before returning; mapiter accepts it and detsource
// defers to mapiter inside its scope.
func SortedKeys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
