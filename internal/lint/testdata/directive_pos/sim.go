// Package sim is a directive-audit positive fixture: one stale
// suppression over a loop that no longer needs it, and one misspelled
// directive.
package sim

import "sort"

// Sorted sorts after the loop, so the suppression above the range is
// stale and must be reported by the audit.
func Sorted(m map[string]int) []string {
	var out []string
	//lotec:unordered — stale: the loop is sorted below
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

//lotec:tpyo this directive name is not known to the suite
func Typo() {}
