// Package fixture seeds wiresync violations: a self-contained miniature of
// the wire package where message types have drifted out of sync with the
// codec and the classifier.
package fixture

import "errors"

// MsgType tags a message on the wire.
type MsgType byte

// Message types.
const (
	TPing MsgType = iota + 1
	TLock
	TGhost
	TOrphan
)

// Msg is the message interface the analyzer keys on.
type Msg interface {
	Type() MsgType
	Size() int
}

// Record is the classification result.
type Record struct {
	Kind  int
	Shard int
}

// Ping is fully synced (the in-package negative case).
type Ping struct{}

// Type implements Msg.
func (*Ping) Type() MsgType { return TPing }

// Size implements Msg.
func (*Ping) Size() int { return 1 }

// Lock carries a Shard the classifier forgets to attribute.
type Lock struct {
	Shard int32
}

// Type implements Msg.
func (*Lock) Type() MsgType { return TLock }

// Size implements Msg.
func (*Lock) Size() int { return 5 }

// Ghost is classified but never constructed by newMsg: it can never be
// decoded off the wire.
type Ghost struct{}

// Type implements Msg.
func (*Ghost) Type() MsgType { return TGhost }

// Size implements Msg.
func (*Ghost) Size() int { return 1 }

// Orphan is constructed but missing from Classify: it degrades to the
// "other" kind in the trace.
type Orphan struct{}

// Type implements Msg.
func (*Orphan) Type() MsgType { return TOrphan }

// Size implements Msg.
func (*Orphan) Size() int { return 1 }

// newMsg constructs the message for a wire type tag.
func newMsg(t MsgType) (Msg, error) {
	switch t {
	case TPing:
		return &Ping{}, nil
	case TLock:
		return &Lock{}, nil
	case TOrphan:
		return &Orphan{}, nil
	default:
		return nil, errors.New("unknown type")
	}
}

// Classify maps a message to its stats record.
func Classify(m Msg) Record {
	var rec Record
	switch m.(type) {
	case *Ping:
		rec.Kind = 1
	case *Lock:
		rec.Kind = 2 // drifted: t.Shard is never attributed
	case *Ghost:
		rec.Kind = 3
	}
	return rec
}

var _ = newMsg
