// Package sim is a detsource positive fixture: a deterministic-root
// package that reaches nondeterminism sources directly and through
// helpers.
package sim

import (
	"time"

	"lotec/internal/lint/testdata/detsource_pos/helper"
)

// Stamp reads the wall clock directly: flagged at the time.Now site.
func Stamp() int64 { return time.Now().UnixNano() }

// Step reaches the global RNG through two helper hops: flagged at the
// helper.Jitter call with the full path.
func Step() int { return helper.Jitter() }

// Race depends on which channel the scheduler picks: flagged at the
// select.
func Race(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// KeysOf leaks helper's unordered map iteration into deterministic code:
// flagged at the helper.Keys call.
func KeysOf(m map[int]int) []int { return helper.Keys(m) }

// Blessed calls a source that is justified at its site — no finding, and
// the //lotec:nondet-ok there must register as consumed.
func Blessed() string { return helper.Host() }
