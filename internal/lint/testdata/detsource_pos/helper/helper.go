// Package helper holds the nondeterminism sources the sim fixture reaches
// transitively. It is not itself a deterministic root, so nothing here is
// flagged directly — only the paths from sim are.
package helper

import (
	"math/rand"
	"os"
)

// Jitter hops once more before touching the global RNG.
func Jitter() int { return jitter2() }

func jitter2() int { return rand.Intn(10) }

// Keys iterates a map in hash order and returns the keys unsorted.
func Keys(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}

// Host reads ambient host state, blessed at the source site.
func Host() string {
	h, _ := os.Hostname() //lotec:nondet-ok — fixture: blessed ambient read
	return h
}
