// Package hot is a hotalloc positive fixture: every annotated function
// contains exactly one flagged allocating construct.
package hot

import "fmt"

// Buf is a reused staging buffer.
type Buf struct {
	data []byte
	n    int
}

// Grow allocates a fresh buffer.
//
//lotec:noalloc
func Grow(b *Buf) {
	b.data = make([]byte, 64)
}

// Fresh grows someone else's slice instead of reusing its own.
//
//lotec:noalloc
func Fresh(b *Buf, p []byte) []byte {
	out := append(p, b.data...)
	return out
}

// Close returns a closure capturing b.
//
//lotec:noalloc
func Close(b *Buf) func() {
	return func() { b.n = 0 }
}

// Describe formats on the hot path.
//
//lotec:noalloc
func Describe(b *Buf) string {
	return fmt.Sprintf("buf[%d]", b.n)
}

// Bytes copies the string into a fresh slice.
//
//lotec:noalloc
func Bytes(s string) []byte {
	return []byte(s)
}

// Pair heap-allocates a new Buf.
//
//lotec:noalloc
func Pair(b *Buf) *Buf {
	return &Buf{n: b.n}
}

// Helper calls into unannotated code.
//
//lotec:noalloc
func Helper(b *Buf) {
	unannotated(b)
}

func unannotated(b *Buf) { b.n++ }

// Box stores a concrete int in an interface.
//
//lotec:noalloc
func Box(v int) any {
	return v
}
