// Package fixture is the wiresync negative fixture: every Msg
// implementation is constructed by newMsg, classified, and attributes its
// Shard, so the analyzer must stay silent.
package fixture

import "errors"

// MsgType tags a message on the wire.
type MsgType byte

// Message types.
const (
	TPing MsgType = iota + 1
	TLock
)

// Msg is the message interface the analyzer keys on.
type Msg interface {
	Type() MsgType
	Size() int
}

// Record is the classification result.
type Record struct {
	Kind  int
	Shard int
}

// Ping is a shard-less control message.
type Ping struct{}

// Type implements Msg.
func (*Ping) Type() MsgType { return TPing }

// Size implements Msg.
func (*Ping) Size() int { return 1 }

// Lock is a shard-addressed message.
type Lock struct {
	Shard int32
}

// Type implements Msg.
func (*Lock) Type() MsgType { return TLock }

// Size implements Msg.
func (*Lock) Size() int { return 5 }

// notAMsg does not implement Msg and must be ignored by the analyzer.
type notAMsg struct {
	Shard int32
}

// newMsg constructs the message for a wire type tag.
func newMsg(t MsgType) (Msg, error) {
	switch t {
	case TPing:
		return &Ping{}, nil
	case TLock:
		return &Lock{}, nil
	default:
		return nil, errors.New("unknown type")
	}
}

// Classify maps a message to its stats record.
func Classify(m Msg) Record {
	var rec Record
	switch t := m.(type) {
	case *Ping:
		rec.Kind = 1
	case *Lock:
		rec.Kind = 2
		rec.Shard = int(t.Shard)
	}
	return rec
}

var (
	_ = newMsg
	_ = notAMsg{}
)
