// Package transport seeds errdrop violations: its name marks it an I/O
// boundary, and every call below discards an error implicitly.
package transport

import (
	"errors"
	"fmt"
	"io"
)

func send() error { return errors.New("short write") }

func sendValue() (int, error) { return 0, errors.New("short write") }

// DropInStatement discards the error by an expression statement.
func DropInStatement() {
	send()
}

// DropTuple discards a (value, error) pair wholesale.
func DropTuple() {
	sendValue()
}

// DropInGo discards the error of a spawned call.
func DropInGo() {
	go send()
}

// DropInDefer discards the error of a deferred call.
func DropInDefer() {
	defer send()
}

// DropFprintf drops a fallible writer's error: the infallible-sink
// exemption covers only strings.Builder and bytes.Buffer.
func DropFprintf(w io.Writer) {
	fmt.Fprintf(w, "frame %d", 1)
}
