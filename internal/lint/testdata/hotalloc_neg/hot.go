// Package hot is a hotalloc negative fixture: the admitted patterns —
// amortized self-append, allowlisted stdlib, cold error/panic branches,
// and one justified pool-miss allocation.
package hot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// W is a reused wire buffer.
type W struct {
	mu  sync.Mutex
	buf []byte
	ids []uint32
}

// U32 appends through the allowlisted binary package into the reused
// buffer.
//
//lotec:noalloc
func (w *W) U32(v uint32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

// Push is the amortized self-append form.
//
//lotec:noalloc
func (w *W) Push(v uint32) {
	w.ids = append(w.ids, v)
}

// Compact removes element i in place; slicing the same backing array.
//
//lotec:noalloc
func (w *W) Compact(i int) {
	w.ids = append(w.ids[:i], w.ids[i+1:]...)
}

// Checked allocates only on the cold error branch.
//
//lotec:noalloc
func (w *W) Checked(n int) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if n > cap(w.buf) {
		return fmt.Errorf("short buffer: %d > %d", n, cap(w.buf))
	}
	w.buf = w.buf[:n]
	return nil
}

// Reset truncates in place.
//
//lotec:noalloc
func (w *W) Reset() {
	w.buf = w.buf[:0]
	for i := range w.ids {
		w.ids[i] = 0
	}
	w.ids = w.ids[:0]
}

// Misses panics on the cold path and computes with builtins on the hot
// one.
//
//lotec:noalloc
func (w *W) Misses() int {
	if len(w.ids) == 0 {
		panic("empty")
	}
	return cap(w.buf) - len(w.buf)
}

// Get serves from the pool; the miss path's fresh slice is a documented
// residual allocation.
//
//lotec:noalloc
func Get(pool *sync.Pool, size int) []byte {
	if b, ok := pool.Get().([]byte); ok && cap(b) >= size {
		return b[:size]
	}
	return make([]byte, size) //lotec:alloc-ok — pool miss hands out a fresh buffer
}

var errShort = errors.New("short")

// Check returns a preallocated sentinel on failure.
//
//lotec:noalloc
func Check(ok bool) error {
	if !ok {
		return errShort
	}
	return nil
}
