// Package transport is the errdrop negative fixture: every error below is
// handled or explicitly discarded, so the analyzer must stay silent.
package transport

import "errors"

func send() error { return errors.New("short write") }

func ping() {}

// Handled propagates the error.
func Handled() error {
	if err := send(); err != nil {
		return err
	}
	return nil
}

// ExplicitDiscard uses the sanctioned `_ =` marker.
func ExplicitDiscard() {
	_ = send()
}

// NoError calls a function with no error result.
func NoError() {
	ping()
	go ping()
	defer ping()
}
