// Package transport is the errdrop negative fixture: every error below is
// handled, explicitly discarded, or documented infallible, so the analyzer
// must stay silent.
package transport

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
)

func send() error { return errors.New("short write") }

func ping() {}

// Handled propagates the error.
func Handled() error {
	if err := send(); err != nil {
		return err
	}
	return nil
}

// ExplicitDiscard uses the sanctioned `_ =` marker.
func ExplicitDiscard() {
	_ = send()
}

// NoError calls a function with no error result.
func NoError() {
	ping()
	go ping()
	defer ping()
}

// Render writes into in-memory sinks whose Write methods are documented to
// never fail; forcing `_ =` on each line would be noise.
func Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "table %d\n", 7)
	fmt.Fprintln(&b, "row")
	b.WriteString("tail")
	var buf bytes.Buffer
	fmt.Fprint(&buf, "x")
	buf.WriteByte('!')
	return b.String() + buf.String()
}
