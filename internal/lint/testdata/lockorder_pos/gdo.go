// Package gdo is a lockorder positive fixture: one two-class cycle (half
// of it through a call) and one self-acquisition.
package gdo

import "sync"

// A and B are two lock classes.
type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

// AB establishes the order A → B.
func AB(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}

// BA establishes B → A transitively through lockA, closing the cycle.
func BA(a *A, b *B) {
	b.mu.Lock()
	lockA(a)
	b.mu.Unlock()
}

func lockA(a *A) {
	a.mu.Lock()
	a.mu.Unlock()
}

// R self-deadlocks: Lock while already holding the same class.
type R struct{ mu sync.Mutex }

// Re acquires r.mu twice with no release in between.
func Re(r *R) {
	r.mu.Lock()
	r.mu.Lock()
}
