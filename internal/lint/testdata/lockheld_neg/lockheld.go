// Package fixture is the lockheld negative fixture: every access pattern
// below holds the guard on a dominating path, so the analyzer must stay
// silent.
package fixture

import "sync"

// Counter has one guarded field and disciplined accessors.
type Counter struct {
	mu sync.Mutex
	n  int // guarded by mu
	// hint is unannotated: lock-free access is allowed.
	hint int
}

// Get uses the canonical lock/defer-unlock shape.
func (c *Counter) Get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// Inc locks and unlocks explicitly.
func (c *Counter) Inc() {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
}

// GetFast uses the early-return-under-lock shape: the terminating branch
// unlocks on its way out, and the fallthrough path is still locked.
func (c *Counter) GetFast() int {
	c.mu.Lock()
	if c.n == 0 {
		c.mu.Unlock()
		return 0
	}
	v := c.n
	c.mu.Unlock()
	return v
}

// bumpLocked follows the repo convention: the Locked suffix asserts the
// caller already holds mu.
func (c *Counter) bumpLocked(by int) {
	c.n += by
}

// Add composes a locked region with a Locked-suffix helper and an
// unannotated field touched lock-free.
func (c *Counter) Add(by int) {
	c.hint = by
	c.mu.Lock()
	defer c.mu.Unlock()
	c.bumpLocked(by)
}

// AddAsync locks inside the spawned closure before touching n.
func (c *Counter) AddAsync(by int) {
	go func() {
		c.mu.Lock()
		c.n += by
		c.mu.Unlock()
	}()
}
