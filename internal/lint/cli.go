package lint

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// Main is the lotec-lint command entry point, factored here so its flag
// handling, output schema and exit codes are testable in-process.
//
// Usage: lotec-lint [-json] [-time] [packages]
//
// Packages default to ./... (every package in the module). Findings are
// printed one per line as `file:line:col: [analyzer] message`, sorted, or
// as a JSON array with -json; -time appends per-analyzer wall-clock
// timings to stderr. The exit status is 1 if any finding is reported, 2 on
// a load or usage error, 0 otherwise.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("lotec-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	timings := fs.Bool("time", false, "report per-analyzer wall-clock timings on stderr")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: lotec-lint [-json] [-time] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintf(stderr, "lotec-lint: %v\n", err)
		return 2
	}
	loader, err := NewLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "lotec-lint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "lotec-lint: %v\n", err)
		return 2
	}

	findings, times := RunAllTimed(pkgs, All())
	if *timings {
		for _, t := range times {
			fmt.Fprintf(stderr, "lotec-lint: %-10s %8.1fms\n", t.Analyzer, float64(t.Elapsed.Microseconds())/1000)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(stderr, "lotec-lint: %v\n", err)
			return 2
		}
	} else {
		for _, f := range findings {
			fmt.Fprintln(stdout, f.String())
		}
	}
	if len(findings) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "lotec-lint: %d finding(s)\n", len(findings))
		}
		return 1
	}
	return 0
}

// moduleRoot walks up from the working directory to the nearest go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
