package lint

import (
	"encoding/json"
	"strings"
	"testing"
)

// loadFixture loads one testdata package through the real loader.
func loadFixture(t *testing.T, dir string) *Package {
	t.Helper()
	l, err := NewLoader("../..")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load(dir)
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("Load(%s): got %d packages, want 1", dir, len(pkgs))
	}
	return pkgs[0]
}

// runOn applies one analyzer and returns its sorted findings.
func runOn(t *testing.T, a *Analyzer, dir string) []Finding {
	t.Helper()
	fs := a.Run(loadFixture(t, dir))
	Sort(fs)
	return fs
}

// wantFindings asserts the finding count and that each expected substring
// appears in some finding message.
func wantFindings(t *testing.T, fs []Finding, n int, substrs ...string) {
	t.Helper()
	if len(fs) != n {
		for _, f := range fs {
			t.Logf("  %s", f)
		}
		t.Fatalf("got %d findings, want %d", len(fs), n)
	}
	for _, sub := range substrs {
		found := false
		for _, f := range fs {
			if strings.Contains(f.Message, sub) {
				found = true
				break
			}
		}
		if !found {
			for _, f := range fs {
				t.Logf("  %s", f)
			}
			t.Errorf("no finding mentions %q", sub)
		}
	}
}

func TestMapIterPositive(t *testing.T) {
	fs := runOn(t, MapIter, "./testdata/mapiter_pos")
	wantFindings(t, fs, 5,
		"never sorted before use",
		"fmt.Println",
		"return from inside map range",
		"overwrites in map order",
		"channel send",
	)
	for _, f := range fs {
		if f.Analyzer != "mapiter" {
			t.Errorf("finding has analyzer %q, want mapiter", f.Analyzer)
		}
	}
}

func TestMapIterNegative(t *testing.T) {
	wantFindings(t, runOn(t, MapIter, "./testdata/mapiter_neg"), 0)
}

func TestMapIterSkipsNonCriticalPackages(t *testing.T) {
	p := loadFixture(t, "./testdata/mapiter_pos")
	p.Name = "util" // not a determinism-critical package name
	if fs := MapIter.Run(p); len(fs) != 0 {
		t.Fatalf("got %d findings in non-critical package, want 0", len(fs))
	}
}

func TestLockHeldPositive(t *testing.T) {
	fs := runOn(t, LockHeld, "./testdata/lockheld_pos")
	wantFindings(t, fs, 4, "c.n accessed without holding mu")
}

func TestLockHeldNegative(t *testing.T) {
	wantFindings(t, runOn(t, LockHeld, "./testdata/lockheld_neg"), 0)
}

func TestWireSyncPositive(t *testing.T) {
	fs := runOn(t, WireSync, "./testdata/wiresync_pos")
	wantFindings(t, fs, 3,
		"Ghost implements Msg but is not constructed in newMsg",
		"Orphan implements Msg but has no case in Classify",
		"Lock carries a Shard field",
	)
}

func TestWireSyncNegative(t *testing.T) {
	wantFindings(t, runOn(t, WireSync, "./testdata/wiresync_neg"), 0)
}

func TestErrDropPositive(t *testing.T) {
	fs := runOn(t, ErrDrop, "./testdata/errdrop_pos")
	wantFindings(t, fs, 4,
		"by an expression statement",
		"by a go statement",
		"by a defer statement",
	)
}

func TestErrDropNegative(t *testing.T) {
	wantFindings(t, runOn(t, ErrDrop, "./testdata/errdrop_neg"), 0)
}

func TestErrDropSkipsOtherPackages(t *testing.T) {
	p := loadFixture(t, "./testdata/errdrop_pos")
	p.Name = "util" // not an I/O-boundary package name
	if fs := ErrDrop.Run(p); len(fs) != 0 {
		t.Fatalf("got %d findings in non-boundary package, want 0", len(fs))
	}
}

// TestRepoIsClean is the self-gate: the suite must exit clean on the
// repository itself, exactly like `go run ./cmd/lotec-lint ./...` in CI.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	l, err := NewLoader("../..")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("loaded only %d packages; loader is missing module packages", len(pkgs))
	}
	fs := RunAll(pkgs, All())
	for _, f := range fs {
		t.Errorf("unexpected finding: %s", f)
	}
}

func TestFindingOutputFormats(t *testing.T) {
	f := Finding{Analyzer: "mapiter", File: "a/b.go", Line: 12, Col: 3, Message: "boom"}
	if got, want := f.String(), "a/b.go:12:3: [mapiter] boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	for _, key := range []string{`"analyzer":"mapiter"`, `"file":"a/b.go"`, `"line":12`, `"col":3`, `"message":"boom"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("JSON %s missing %s", data, key)
		}
	}
}

func TestSortIsDeterministic(t *testing.T) {
	a := Finding{Analyzer: "b", File: "x.go", Line: 2, Col: 1, Message: "m1"}
	b := Finding{Analyzer: "a", File: "x.go", Line: 2, Col: 1, Message: "m2"}
	c := Finding{Analyzer: "z", File: "x.go", Line: 1, Col: 9, Message: "m3"}
	for _, perm := range [][]Finding{{a, b, c}, {c, b, a}, {b, c, a}} {
		fs := append([]Finding(nil), perm...)
		Sort(fs)
		if fs[0] != c || fs[1] != b || fs[2] != a {
			t.Fatalf("Sort gave %v", fs)
		}
	}
}
