package lint

import (
	"encoding/json"
	"strings"
	"testing"
)

// loadFixturePkgs loads one or more testdata packages through the real
// loader, sharing a single loader so cross-fixture imports resolve.
func loadFixturePkgs(t *testing.T, dirs ...string) []*Package {
	t.Helper()
	l, err := NewLoader("../..")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load(dirs...)
	if err != nil {
		t.Fatalf("Load(%v): %v", dirs, err)
	}
	if len(pkgs) != len(dirs) {
		t.Fatalf("Load(%v): got %d packages, want %d", dirs, len(pkgs), len(dirs))
	}
	return pkgs
}

// loadFixture loads one testdata package.
func loadFixture(t *testing.T, dir string) *Package {
	t.Helper()
	return loadFixturePkgs(t, dir)[0]
}

// runOn applies one analyzer to the given fixture packages and returns its
// sorted findings.
func runOn(t *testing.T, a *Analyzer, dirs ...string) []Finding {
	t.Helper()
	prog := NewProgram(loadFixturePkgs(t, dirs...))
	var fs []Finding
	if a.RunProgram != nil {
		fs = a.RunProgram(prog)
	} else {
		for _, p := range prog.Pkgs {
			fs = append(fs, a.Run(prog, p)...)
		}
	}
	Sort(fs)
	return fs
}

// wantFindings asserts the finding count and that each expected substring
// appears in some finding message.
func wantFindings(t *testing.T, fs []Finding, n int, substrs ...string) {
	t.Helper()
	if len(fs) != n {
		for _, f := range fs {
			t.Logf("  %s", f)
		}
		t.Fatalf("got %d findings, want %d", len(fs), n)
	}
	for _, sub := range substrs {
		found := false
		for _, f := range fs {
			if strings.Contains(f.Message, sub) {
				found = true
				break
			}
		}
		if !found {
			for _, f := range fs {
				t.Logf("  %s", f)
			}
			t.Errorf("no finding mentions %q", sub)
		}
	}
}

func TestMapIterPositive(t *testing.T) {
	fs := runOn(t, MapIter, "./testdata/mapiter_pos")
	wantFindings(t, fs, 5,
		"never sorted before use",
		"fmt.Println",
		"return from inside map range",
		"overwrites in map order",
		"channel send",
	)
	for _, f := range fs {
		if f.Analyzer != "mapiter" {
			t.Errorf("finding has analyzer %q, want mapiter", f.Analyzer)
		}
	}
}

func TestMapIterNegative(t *testing.T) {
	wantFindings(t, runOn(t, MapIter, "./testdata/mapiter_neg"), 0)
}

func TestMapIterSkipsNonCriticalPackages(t *testing.T) {
	p := loadFixture(t, "./testdata/mapiter_pos")
	p.Name = "util" // not a determinism-critical package name
	if fs := MapIter.Run(NewProgram([]*Package{p}), p); len(fs) != 0 {
		t.Fatalf("got %d findings in non-critical package, want 0", len(fs))
	}
}

func TestLockHeldPositive(t *testing.T) {
	fs := runOn(t, LockHeld, "./testdata/lockheld_pos")
	wantFindings(t, fs, 4, "c.n accessed without holding mu")
}

func TestLockHeldNegative(t *testing.T) {
	wantFindings(t, runOn(t, LockHeld, "./testdata/lockheld_neg"), 0)
}

func TestWireSyncPositive(t *testing.T) {
	fs := runOn(t, WireSync, "./testdata/wiresync_pos")
	wantFindings(t, fs, 3,
		"Ghost implements Msg but is not constructed in newMsg",
		"Orphan implements Msg but has no case in Classify",
		"Lock carries a Shard field",
	)
}

func TestWireSyncNegative(t *testing.T) {
	wantFindings(t, runOn(t, WireSync, "./testdata/wiresync_neg"), 0)
}

func TestErrDropPositive(t *testing.T) {
	fs := runOn(t, ErrDrop, "./testdata/errdrop_pos")
	wantFindings(t, fs, 5,
		"by an expression statement",
		"by a go statement",
		"by a defer statement",
		"fmt.Fprintf returns an error that is discarded",
	)
}

func TestErrDropNegative(t *testing.T) {
	wantFindings(t, runOn(t, ErrDrop, "./testdata/errdrop_neg"), 0)
}

func TestErrDropSkipsOtherPackages(t *testing.T) {
	p := loadFixture(t, "./testdata/errdrop_pos")
	p.Name = "util" // not an I/O-boundary package name
	if fs := ErrDrop.Run(NewProgram([]*Package{p}), p); len(fs) != 0 {
		t.Fatalf("got %d findings in non-boundary package, want 0", len(fs))
	}
}

func TestDetSourcePositive(t *testing.T) {
	fs := runOn(t, DetSource, "./testdata/detsource_pos/sim", "./testdata/detsource_pos/helper")
	wantFindings(t, fs, 4,
		"time.Now() (wall clock) in deterministic package sim",
		"multi-case select",
		"math/rand.Intn() (global RNG)",
		"order-unsafe map iteration",
	)
	// The transitive finding must carry the full call path to the source.
	found := false
	for _, f := range fs {
		if strings.Contains(f.Message, "helper.jitter2 → math/rand.Intn()") {
			found = true
		}
	}
	if !found {
		for _, f := range fs {
			t.Logf("  %s", f)
		}
		t.Error("no finding shows the helper.Jitter → helper.jitter2 call path")
	}
}

func TestDetSourceNegative(t *testing.T) {
	wantFindings(t, runOn(t, DetSource, "./testdata/detsource_neg"), 0)
}

// TestDetSourceBlessedSourceConsumesDirective runs the whole suite so the
// directive audit sees the //lotec:nondet-ok in the positive fixture being
// consumed (helper.Host is reachable from sim.Blessed).
func TestDetSourceBlessedSourceConsumesDirective(t *testing.T) {
	pkgs := loadFixturePkgs(t, "./testdata/detsource_pos/sim", "./testdata/detsource_pos/helper")
	for _, f := range RunAll(pkgs, []*Analyzer{DetSource}) {
		if f.Analyzer == "directive" {
			t.Errorf("blessed source reported stale: %s", f)
		}
		if strings.Contains(f.Message, "Hostname") {
			t.Errorf("blessed source still reported: %s", f)
		}
	}
}

func TestLockOrderPositive(t *testing.T) {
	fs := runOn(t, LockOrder, "./testdata/lockorder_pos")
	wantFindings(t, fs, 2,
		"lock-order cycle (potential deadlock)",
		"while already holding it",
	)
	var cycle string
	for _, f := range fs {
		if strings.Contains(f.Message, "cycle") {
			cycle = f.Message
		}
	}
	for _, want := range []string{"gdo.A.mu → gdo.B.mu", "gdo.B.mu → gdo.A.mu", "call to gdo.lockA"} {
		if !strings.Contains(cycle, want) {
			t.Errorf("cycle witness %q missing %q", cycle, want)
		}
	}
}

func TestLockOrderNegative(t *testing.T) {
	// The negative fixture includes a deliberately inverted acquisition
	// blessed with //lotec:lockorder-ok; the full run must stay clean,
	// including the directive audit (the blessing is consumed).
	pkgs := loadFixturePkgs(t, "./testdata/lockorder_neg")
	fs := RunAll(pkgs, []*Analyzer{LockOrder})
	wantFindings(t, fs, 0)
}

func TestHotAllocPositive(t *testing.T) {
	fs := runOn(t, HotAlloc, "./testdata/hotalloc_pos")
	wantFindings(t, fs, 8,
		"make allocates",
		"self-assignment grows a fresh slice",
		"function literal allocates a closure",
		"calls fmt.Sprintf (outside the noalloc stdlib allowlist)",
		"conversion copies",
		"&hot.Buf{} allocates",
		"calls hot.unannotated, which is not marked //lotec:noalloc",
		"boxes int into any",
	)
}

func TestHotAllocNegative(t *testing.T) {
	// Full run: the fixture's //lotec:alloc-ok (pool miss) must be consumed
	// and its //lotec:noalloc annotations recognized.
	pkgs := loadFixturePkgs(t, "./testdata/hotalloc_neg")
	fs := RunAll(pkgs, []*Analyzer{HotAlloc})
	wantFindings(t, fs, 0)
}

func TestDirectiveAudit(t *testing.T) {
	pkgs := loadFixturePkgs(t, "./testdata/directive_pos")
	fs := RunAll(pkgs, All())
	wantFindings(t, fs, 2,
		"stale //lotec:unordered",
		"unknown directive //lotec:tpyo",
	)
}

func TestRunAllTimedReportsEveryAnalyzer(t *testing.T) {
	pkgs := loadFixturePkgs(t, "./testdata/mapiter_neg")
	_, timings := RunAllTimed(pkgs, All())
	if len(timings) != len(All())+1 {
		t.Fatalf("got %d timings, want %d (analyzers + directive audit)", len(timings), len(All())+1)
	}
	names := make(map[string]bool)
	for _, tm := range timings {
		names[tm.Analyzer] = true
	}
	for _, a := range All() {
		if !names[a.Name] {
			t.Errorf("no timing for analyzer %s", a.Name)
		}
	}
	if !names["directive"] {
		t.Error("no timing for the directive audit")
	}
}

// TestRepoIsClean is the self-gate: the suite must exit clean on the
// repository itself, exactly like `go run ./cmd/lotec-lint ./...` in CI.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads the whole module")
	}
	l, err := NewLoader("../..")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("loaded only %d packages; loader is missing module packages", len(pkgs))
	}
	fs := RunAll(pkgs, All())
	for _, f := range fs {
		t.Errorf("unexpected finding: %s", f)
	}
}

// TestRepoHasNoallocSurface pins the enforcement surface: the wire codec
// and the directory fast path must keep their //lotec:noalloc annotations.
func TestRepoHasNoallocSurface(t *testing.T) {
	if testing.Short() {
		t.Skip("loads several module packages")
	}
	l, err := NewLoader("../..")
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.Load("lotec/internal/wire", "lotec/internal/gdo", "lotec/internal/directory")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	prog := NewProgram(pkgs)
	g := prog.graph()
	count := make(map[string]int)
	marked := make(map[string]bool)
	for _, fi := range g.sortedFuncs() {
		if _, ok := noallocMark(fi); ok {
			count[fi.pkg.Name]++
			marked[fi.pkg.Name+"."+fi.decl.Name.Name] = true
		}
	}
	for _, pkg := range []string{"wire", "gdo", "directory"} {
		if count[pkg] == 0 {
			t.Errorf("package %s has no //lotec:noalloc functions; the hot-path surface regressed", pkg)
		}
	}
	// Pin the pooled data-plane and directory fast-path functions: losing
	// one of these annotations silently drops it out of hotalloc's scope.
	for _, fn := range []string{
		"wire.GetFrame",
		"wire.ReleaseFrame",
		"gdo.newHoldLocked",
		"gdo.removeHolderLocked",
		"gdo.buildWaitsForLocked",
		"gdo.findDeadlockVictimLocked",
		"gdo.waitEntriesSortedLocked",
	} {
		if !marked[fn] {
			t.Errorf("%s is not marked //lotec:noalloc; the pooled hot-path surface regressed", fn)
		}
	}
}

func TestFindingOutputFormats(t *testing.T) {
	f := Finding{Analyzer: "mapiter", File: "a/b.go", Line: 12, Col: 3, Message: "boom"}
	if got, want := f.String(), "a/b.go:12:3: [mapiter] boom"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	data, err := json.Marshal(f)
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	for _, key := range []string{`"analyzer":"mapiter"`, `"file":"a/b.go"`, `"line":12`, `"col":3`, `"message":"boom"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("JSON %s missing %s", data, key)
		}
	}
}

func TestSortIsDeterministic(t *testing.T) {
	a := Finding{Analyzer: "b", File: "x.go", Line: 2, Col: 1, Message: "m1"}
	b := Finding{Analyzer: "a", File: "x.go", Line: 2, Col: 1, Message: "m2"}
	c := Finding{Analyzer: "z", File: "x.go", Line: 1, Col: 9, Message: "m3"}
	for _, perm := range [][]Finding{{a, b, c}, {c, b, a}, {b, c, a}} {
		fs := append([]Finding(nil), perm...)
		Sort(fs)
		if fs[0] != c || fs[1] != b || fs[2] != a {
			t.Fatalf("Sort gave %v", fs)
		}
	}
}
