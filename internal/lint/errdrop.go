package lint

import (
	"go/ast"
	"go/types"
)

// errdropPackages are the I/O-boundary package names where a silently
// dropped error hides partition, short-write and decode failures.
var errdropPackages = map[string]bool{
	"transport": true,
	"server":    true,
	"wire":      true,
}

// ErrDrop flags calls whose error result is implicitly discarded in the
// transport, server and wire packages — the layers where an ignored error
// means a lost message or a torn frame rather than a cosmetic slip. An
// explicit `_ = f()` assignment is the sanctioned way to document a
// deliberate discard and is not flagged; neither are discards in other
// packages, where go vet's printf-style checks and code review suffice.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "error returns in transport/server/wire must be handled or explicitly discarded",
	Run:  runErrDrop,
}

func runErrDrop(p *Package) []Finding {
	if !errdropPackages[p.Name] {
		return nil
	}
	var out []Finding
	report := func(call *ast.CallExpr, how string) {
		if returnsError(p, call) {
			out = append(out, p.finding("errdrop", call.Pos(),
				"%s returns an error that is discarded %s (handle it or assign to _ explicitly)",
				callName(call), how))
		}
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.ExprStmt:
				if call, ok := x.X.(*ast.CallExpr); ok {
					report(call, "by an expression statement")
				}
			case *ast.GoStmt:
				report(x.Call, "by a go statement")
			case *ast.DeferStmt:
				report(x.Call, "by a defer statement")
			}
			return true
		})
	}
	return out
}

// returnsError reports whether the call's result type is, or includes, an
// error.
func returnsError(p *Package, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "error" && obj.Pkg() == nil
}
