package lint

import (
	"go/ast"
	"go/types"
)

// errdropPackages are the package names where a silently dropped error
// hides partition, short-write and decode failures (the I/O boundary) or a
// diverging replica (the deterministic engine and simulator).
var errdropPackages = map[string]bool{
	"transport": true,
	"server":    true,
	"wire":      true,
	"sim":       true,
	"node":      true,
}

// ErrDrop flags calls whose error result is implicitly discarded in the
// transport, server, wire, sim and node packages — the layers where an
// ignored error means a lost message, a torn frame, or an engine silently
// diverging from the directory, rather than a cosmetic slip. An explicit
// `_ = f()` assignment is the sanctioned way to document a deliberate
// discard and is not flagged; neither are discards in other packages,
// where go vet's printf-style checks and code review suffice.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "error returns in transport/server/wire/sim/node must be handled or explicitly discarded",
	Run:  runErrDrop,
}

func runErrDrop(prog *Program, p *Package) []Finding {
	if !errdropPackages[p.Name] {
		return nil
	}
	var out []Finding
	report := func(call *ast.CallExpr, how string) {
		if returnsError(p, call) && !infallibleWrite(p, call) {
			out = append(out, p.finding("errdrop", call.Pos(),
				"%s returns an error that is discarded %s (handle it or assign to _ explicitly)",
				callName(call), how))
		}
	}
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.ExprStmt:
				if call, ok := x.X.(*ast.CallExpr); ok {
					report(call, "by an expression statement")
				}
			case *ast.GoStmt:
				report(x.Call, "by a go statement")
			case *ast.DeferStmt:
				report(x.Call, "by a defer statement")
			}
			return true
		})
	}
	return out
}

// infallibleWrite reports whether the call is a write whose error result
// is documented to always be nil: fmt.Fprint* into a *strings.Builder or
// *bytes.Buffer, or a Write* method on those types directly. Forcing an
// explicit discard there would bury the real findings in noise.
func infallibleWrite(p *Package, call *ast.CallExpr) bool {
	fn := calleeOf(p, call)
	if fn == nil {
		return false
	}
	switch {
	case stdFuncIs(fn, "fmt", "Fprintf"), stdFuncIs(fn, "fmt", "Fprintln"), stdFuncIs(fn, "fmt", "Fprint"):
		return len(call.Args) > 0 && isInfallibleWriter(p.Info.TypeOf(call.Args[0]))
	}
	switch fn.Name() {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		if named := recvNamed(fn); named != nil {
			return isInfallibleWriter(named)
		}
	}
	return false
}

// isInfallibleWriter reports whether t (or its pointee) is strings.Builder
// or bytes.Buffer, whose Write methods never return a non-nil error.
func isInfallibleWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (pkg == "strings" && name == "Builder") || (pkg == "bytes" && name == "Buffer")
}

// returnsError reports whether the call's result type is, or includes, an
// error.
func returnsError(p *Package, call *ast.CallExpr) bool {
	tv, ok := p.Info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "error" && obj.Pkg() == nil
}
