package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// WireSync is the three-way exhaustiveness check for the wire protocol.
// It activates on any package that declares an interface named Msg, a
// constructor function newMsg, and a classifier function Classify (i.e.
// internal/wire, plus test fixtures shaped like it), then verifies that
// every concrete type implementing Msg:
//
//  1. is constructed in newMsg — otherwise Decode cannot materialize it
//     and the type silently never crosses the wire;
//  2. appears as a `case *T` in Classify's type switch — otherwise it
//     degrades to KindOther in the stats trace;
//  3. if it carries a Shard field, its Classify case mentions .Shard —
//     otherwise per-shard message attribution silently drops it.
//
// This is the drift class PR 1 was exposed to: a message added to
// codec.go but forgotten in classify.go type-checks fine and corrupts
// every per-shard figure downstream.
var WireSync = &Analyzer{
	Name: "wiresync",
	Doc:  "wire.Msg implementations stay in sync across newMsg, Classify and shard attribution",
	Run:  runWireSync,
}

func runWireSync(prog *Program, p *Package) []Finding {
	msgIface := msgInterface(p)
	newMsgFn := topFunc(p, "newMsg")
	classifyFn := topFunc(p, "Classify")
	if msgIface == nil || newMsgFn == nil || classifyFn == nil {
		return nil
	}

	impls := msgImplementations(p, msgIface)
	if len(impls) == 0 {
		return nil
	}
	constructed := constructedTypes(p, newMsgFn)
	classified := classifiedTypes(p, classifyFn)

	var out []Finding
	for _, tn := range impls {
		name := tn.Name()
		if !constructed[tn] {
			out = append(out, p.finding("wiresync", tn.Pos(),
				"%s implements Msg but is not constructed in newMsg — Decode cannot materialize it", name))
		}
		caseBody, inSwitch := classified[tn]
		if !inSwitch {
			out = append(out, p.finding("wiresync", tn.Pos(),
				"%s implements Msg but has no case in Classify — it degrades to KindOther in the stats trace", name))
			continue
		}
		if hasField(tn, "Shard") && !mentionsSelector(caseBody, "Shard") {
			out = append(out, p.finding("wiresync", tn.Pos(),
				"%s carries a Shard field but its Classify case never attributes .Shard — per-shard stats drop it", name))
		}
	}
	return out
}

// msgInterface finds the package-level interface type named Msg.
func msgInterface(p *Package) *types.Interface {
	obj := p.Types.Scope().Lookup("Msg")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// topFunc finds a package-level function declaration by name.
func topFunc(p *Package, name string) *ast.FuncDecl {
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == name {
				return fd
			}
		}
	}
	return nil
}

// msgImplementations lists package-level concrete named types implementing
// the interface (by value or pointer receiver), sorted by name.
func msgImplementations(p *Package, iface *types.Interface) []*types.TypeName {
	var out []*types.TypeName
	scope := p.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		t := tn.Type()
		if types.IsInterface(t) {
			continue
		}
		if types.Implements(t, iface) || types.Implements(types.NewPointer(t), iface) {
			out = append(out, tn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// constructedTypes collects the named types whose composite literals
// appear in fn's body (the `&AcquireReq{}` arms of the newMsg switch).
func constructedTypes(p *Package, fn *ast.FuncDecl) map[*types.TypeName]bool {
	out := make(map[*types.TypeName]bool)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		cl, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		if tv, ok := p.Info.Types[cl]; ok {
			if named, ok := tv.Type.(*types.Named); ok {
				out[named.Obj()] = true
			}
		}
		return true
	})
	return out
}

// classifiedTypes maps each named type appearing as a `case *T` (or
// `case T`) in fn's type switch to that case's body.
func classifiedTypes(p *Package, fn *ast.FuncDecl) map[*types.TypeName][]ast.Stmt {
	out := make(map[*types.TypeName][]ast.Stmt)
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sw, ok := n.(*ast.TypeSwitchStmt)
		if !ok {
			return true
		}
		for _, cc := range sw.Body.List {
			cl, ok := cc.(*ast.CaseClause)
			if !ok {
				continue
			}
			for _, e := range cl.List {
				t := p.Info.Types[e].Type
				if ptr, ok := t.(*types.Pointer); ok {
					t = ptr.Elem()
				}
				if named, ok := t.(*types.Named); ok {
					out[named.Obj()] = cl.Body
				}
			}
		}
		return true
	})
	return out
}

// hasField reports whether the named struct type has a field of the given
// name.
func hasField(tn *types.TypeName, field string) bool {
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == field {
			return true
		}
	}
	return false
}

// mentionsSelector reports whether any statement in body contains a
// selector expression ending in the given name.
func mentionsSelector(body []ast.Stmt, name string) bool {
	for _, s := range body {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok && sel.Sel.Name == name {
				found = true
				return false
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
