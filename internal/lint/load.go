package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Loader loads and type-checks packages of one module using only the
// standard library. Module-internal imports are resolved from source under
// the module root; standard-library imports are delegated to the compiler's
// source importer. Test files and testdata directories are skipped — the
// analyzers gate production code, and fixtures live under testdata.
type Loader struct {
	// ModuleDir is the absolute module root (directory containing go.mod).
	ModuleDir string
	// ModulePath is the module's import path from go.mod.
	ModulePath string

	fset *token.FileSet
	std  types.Importer
	pkgs map[string]*Package // keyed by import path
	busy map[string]bool     // import-cycle guard
}

// NewLoader builds a loader rooted at moduleDir, reading the module path
// from go.mod.
func NewLoader(moduleDir string) (*Loader, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	modPath, err := readModulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The source importer honors build.Default; force cgo off so packages
	// like net type-check from pure-Go sources regardless of the host
	// toolchain's CGO_ENABLED.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	return &Loader{
		ModuleDir:  abs,
		ModulePath: modPath,
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		pkgs:       make(map[string]*Package),
		busy:       make(map[string]bool),
	}, nil
}

// Fset returns the loader's shared file set.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// readModulePath extracts the module path from a go.mod file.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}

// Load resolves the given patterns to packages and returns them loaded and
// type-checked, sorted by import path. Supported patterns: "./..." (every
// package under the module root), a module-relative directory like
// "./internal/wire", or a full import path like "lotec/internal/wire".
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			walked, err := l.packageDirs()
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				add(d)
			}
		case strings.HasPrefix(pat, l.ModulePath):
			rel := strings.TrimPrefix(strings.TrimPrefix(pat, l.ModulePath), "/")
			add(filepath.Join(l.ModuleDir, rel))
		default:
			abs, err := filepath.Abs(pat)
			if err != nil {
				return nil, err
			}
			add(abs)
		}
	}
	var out []*Package
	for _, dir := range dirs {
		p, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if p != nil {
			out = append(out, p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// packageDirs walks the module tree collecting every directory that holds
// at least one buildable .go file, skipping testdata and hidden dirs.
func (l *Loader) packageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModuleDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != l.ModuleDir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if isSourceFile(d.Name()) {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// isSourceFile reports whether name is a non-test Go source file the suite
// should analyze.
func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") &&
		!strings.HasSuffix(name, "_test.go") &&
		!strings.HasPrefix(name, ".") &&
		!strings.HasPrefix(name, "_")
}

// importPathFor derives the import path of a directory under the module
// root; directories outside the module get a synthetic fixture path.
func (l *Loader) importPathFor(dir string) string {
	if rel, err := filepath.Rel(l.ModuleDir, dir); err == nil && !strings.HasPrefix(rel, "..") {
		if rel == "." {
			return l.ModulePath
		}
		return l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return "fixture/" + filepath.Base(dir)
}

// loadDir parses and type-checks the package in dir (nil if dir has no
// buildable sources). Results are cached by import path.
func (l *Loader) loadDir(dir string) (*Package, error) {
	path := l.importPathFor(dir)
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		// Honor //go:build constraints under the default build context, so
		// tag-gated variants (e.g. race-only poison files) don't collide
		// with their default counterparts during type checking.
		if ok, err := build.Default.MatchFile(dir, e.Name()); err != nil || !ok {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	name := files[0].Name.Name
	for _, f := range files {
		if f.Name.Name != name {
			return nil, fmt.Errorf("lint: %s: mixed package clauses %q and %q", dir, name, f.Name.Name)
		}
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: (*moduleImporter)(l)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	p := &Package{
		Path:  path,
		Name:  name,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = p
	return p, nil
}

// moduleImporter resolves imports during type-checking: module-internal
// packages load from source under the module root, everything else goes to
// the standard-library source importer.
type moduleImporter Loader

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(m)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		p, err := l.loadDir(filepath.Join(l.ModuleDir, rel))
		if err != nil {
			return nil, err
		}
		if p == nil {
			return nil, fmt.Errorf("lint: no Go source in %s", path)
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}
