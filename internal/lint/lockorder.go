package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockorderPackages are the packages whose mutexes participate in the
// acquisition-order graph: the lock service core, both directory layouts,
// the node engine, the persistent store and the TCP server. A cycle among
// their locks is a potential deadlock the -race detector cannot see.
var lockorderPackages = map[string]bool{
	"gdo":       true,
	"directory": true,
	"node":      true,
	"pstore":    true,
	"server":    true,
}

// LockOrder builds a whole-program static mutex-acquisition graph. Every
// sync.Mutex/RWMutex value is assigned a lock class — "pkg.Type.field" for
// a struct field, "pkg.var" for a package-level mutex — and an edge a→b is
// recorded whenever code acquires class b while (on some path) holding
// class a, either directly or through a statically resolved call chain.
// Cycles in the class graph are reported once each, with a witness: the
// acquisition sites that close the loop.
//
// The analysis is may-hold (an acquisition anywhere earlier in the
// function without an intervening release counts as held), which
// over-approximates: it can report an ordering that no single execution
// exhibits, but it never misses a statically visible one. Two limits keep
// it honest rather than noisy: all instances of a class are conflated (a
// sharded directory locking two *different* shard mutexes in a fixed index
// order still reads as a self-cycle — annotate those), and calls through
// interfaces or function values are invisible. A `//lotec:lockorder-ok`
// directive on an acquisition site excuses every cycle that edge closes.
var LockOrder = &Analyzer{
	Name:       "lockorder",
	Doc:        "mutex acquisition order across gdo/directory/node/pstore/server must be acyclic",
	RunProgram: runLockOrder,
}

// lockEdge is one "acquired b while holding a" observation.
type lockEdge struct {
	from, to string
	// pos is the acquisition (or call) site that created the edge.
	pos token.Pos
	pkg *Package
	// where names the function containing the site.
	where string
	// via describes a transitive acquisition ("call to node.flush acquires
	// node.Engine.mu"); empty for a direct Lock call.
	via string
}

func runLockOrder(prog *Program) []Finding {
	g := prog.graph()

	// Pass 1: per-function facts — the classes each function acquires
	// directly, and every (held-set, acquisition-or-call) event in body
	// order.
	type fnFacts struct {
		fi *funcInfo
		// events in source order; exactly one of class/call is set.
		events []lockEvent
		// direct are the classes this function's own Lock calls acquire.
		direct map[string]token.Pos
	}
	var facts []*fnFacts
	factsByFn := make(map[*types.Func]*fnFacts)
	for _, fi := range g.sortedFuncs() {
		if !lockorderPackages[fi.pkg.Name] {
			continue
		}
		f := &fnFacts{fi: fi, direct: make(map[string]token.Pos)}
		f.events = lockEvents(fi)
		for _, ev := range f.events {
			if ev.class != "" && !ev.release {
				if _, ok := f.direct[ev.class]; !ok {
					f.direct[ev.class] = ev.pos
				}
			}
		}
		facts = append(facts, f)
		factsByFn[fi.obj] = f
	}

	// Pass 2: transitive may-acquire closure over the call graph.
	mayAcquire := make(map[*types.Func]map[string]bool)
	for _, f := range facts {
		m := make(map[string]bool)
		for class := range f.direct {
			m[class] = true
		}
		mayAcquire[f.fi.obj] = m
	}
	for changed := true; changed; {
		changed = false
		for _, f := range facts {
			m := mayAcquire[f.fi.obj]
			for _, site := range g.calls[f.fi.obj] {
				for class := range mayAcquire[site.callee] {
					if !m[class] {
						m[class] = true
						changed = true
					}
				}
			}
		}
	}

	// Pass 3: walk each function's events with a running held set,
	// recording edges for direct acquisitions and for calls whose closure
	// acquires further classes.
	edges := make(map[string]*lockEdge) // keyed by from + "→" + to, first witness wins
	record := func(e *lockEdge) {
		key := e.from + "\x00" + e.to
		if _, ok := edges[key]; !ok {
			edges[key] = e
		}
	}
	for _, f := range facts {
		var held []string
		holding := func(class string) bool {
			for _, h := range held {
				if h == class {
					return true
				}
			}
			return false
		}
		where := funcDisplayName(f.fi.obj)
		for _, ev := range f.events {
			switch {
			case ev.class != "" && ev.release:
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == ev.class {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			case ev.class != "":
				for _, h := range held {
					record(&lockEdge{from: h, to: ev.class, pos: ev.pos, pkg: f.fi.pkg, where: where})
				}
				if !holding(ev.class) {
					held = append(held, ev.class)
				}
			case ev.call != nil:
				if len(held) == 0 {
					continue
				}
				callee := calleeOf(f.fi.pkg, ev.call)
				if callee == nil {
					continue
				}
				via := "call to " + funcDisplayName(callee)
				for class := range mayAcquire[callee] {
					for _, h := range held {
						if h == class {
							// Same class through a call: with all instances
							// conflated this is usually a sharded fan-out in
							// index order, not re-entry — too noisy to flag.
							continue
						}
						record(&lockEdge{from: h, to: class, pos: ev.call.Pos(),
							pkg: f.fi.pkg, where: where, via: via + " acquires " + class})
					}
				}
			}
		}
	}

	// Self-edges are immediate: acquiring a class while holding it.
	var out []Finding
	keys := make([]string, 0, len(edges))
	for k := range edges {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	adj := make(map[string][]string)
	for _, k := range keys {
		e := edges[k]
		if e.from == e.to {
			pos := e.pkg.Fset.Position(e.pos)
			if prog.Suppressed("lockorder-ok", pos) {
				continue
			}
			out = append(out, e.pkg.finding("lockorder", e.pos,
				"%s acquires %s while already holding it%s (distinct instances in a fixed order? justify with //lotec:lockorder-ok)",
				e.where, e.to, viaSuffix(e)))
			continue
		}
		adj[e.from] = append(adj[e.from], e.to)
	}

	// Cycle detection: for every edge a→b, a path b⇝a closes a cycle.
	// Each cycle is reported once, keyed by its canonical rotation; a
	// //lotec:lockorder-ok on any edge of the cycle excuses it (and the
	// audit holds the directive accountable for an actual cycle).
	seenCycle := make(map[string]bool)
	for _, k := range keys {
		e := edges[k]
		if e.from == e.to {
			continue
		}
		path := findPath(adj, e.to, e.from)
		if path == nil {
			continue
		}
		// path is [e.to, ..., e.from]; drop the trailing e.from so each
		// node appears once and the wraparound pair closes the loop.
		cycle := append([]string{e.from}, path[:len(path)-1]...)
		canon := canonicalCycle(cycle)
		if seenCycle[canon] {
			continue
		}
		seenCycle[canon] = true

		cycleEdges := make([]*lockEdge, 0, len(cycle))
		for i := range cycle {
			from, to := cycle[i], cycle[(i+1)%len(cycle)]
			if ce, ok := edges[from+"\x00"+to]; ok {
				cycleEdges = append(cycleEdges, ce)
			}
		}
		suppressed := false
		for _, ce := range cycleEdges {
			if prog.directiveAt("lockorder-ok", ce.pkg.Fset.Position(ce.pos)) != nil {
				prog.MarkUsed("lockorder-ok", ce.pkg.Fset.Position(ce.pos))
				suppressed = true
			}
		}
		if suppressed {
			continue
		}
		var steps []string
		for _, ce := range cycleEdges {
			p := ce.pkg.Fset.Position(ce.pos)
			steps = append(steps, ce.from+" → "+ce.to+" in "+ce.where+viaSuffix(ce)+" ("+trimPath(ce.pkg, p)+")")
		}
		out = append(out, cycleEdges[0].pkg.finding("lockorder", cycleEdges[0].pos,
			"lock-order cycle (potential deadlock): %s", strings.Join(steps, "; ")))
	}
	return out
}

// lockEvent is one acquisition, release or call in a function body, in
// source order.
type lockEvent struct {
	pos     token.Pos
	class   string // lock class for acquire/release events
	release bool
	call    *ast.CallExpr // non-lock call (for transitive edges)
}

// lockEvents linearizes a function body into lock events. Branches are
// flattened in source order (may-hold semantics); a deferred unlock is
// treated as held-to-end, which is what it means for ordering purposes.
func lockEvents(fi *funcInfo) []lockEvent {
	var events []lockEvent
	ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.DeferStmt:
			// defer mu.Unlock() releases at return: the lock stays held for
			// every later acquisition in the body, so skip the release
			// event. Other deferred calls still contribute transitively.
			if _, rel, ok := lockCall(fi.pkg, x.Call); ok && rel {
				return false
			}
			return true
		case *ast.CallExpr:
			if class, rel, ok := lockCall(fi.pkg, x); ok {
				events = append(events, lockEvent{pos: x.Pos(), class: class, release: rel})
				return false
			}
			events = append(events, lockEvent{pos: x.Pos(), call: x})
			return true
		case *ast.FuncLit:
			return false // closures run elsewhere; their locks are their own
		}
		return true
	})
	return events
}

// lockCall decides whether call is (*sync.Mutex)/(*sync.RWMutex)
// Lock/RLock/Unlock/RUnlock on a classifiable mutex, returning the lock
// class and whether it is a release.
func lockCall(p *Package, call *ast.CallExpr) (class string, release bool, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return "", false, false
	}
	fn, _ := p.Info.Uses[sel.Sel].(*types.Func)
	if s, okSel := p.Info.Selections[sel]; okSel {
		fn, _ = s.Obj().(*types.Func)
	}
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	if named := recvNamed(fn); named == nil ||
		(named.Obj().Name() != "Mutex" && named.Obj().Name() != "RWMutex") {
		return "", false, false
	}
	class = lockClass(p, sel.X)
	if class == "" {
		return "", false, false
	}
	return class, !acquire, true
}

// lockClass names the mutex being locked: "pkg.Type.field" for a struct
// field (any instance), "pkg.var" for a package-level variable, "" when the
// expression cannot be classified (a local mutex, say).
func lockClass(p *Package, e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			recv := sel.Recv()
			if ptr, okP := recv.(*types.Pointer); okP {
				recv = ptr.Elem()
			}
			if named, okN := recv.(*types.Named); okN {
				return p.Name + "." + named.Obj().Name() + "." + sel.Obj().Name()
			}
		}
		// Qualified package-level mutex (otherpkg.mu) — rare, but classify.
		if id, ok := x.X.(*ast.Ident); ok {
			if pn, okP := p.Info.Uses[id].(*types.PkgName); okP {
				return pn.Imported().Name() + "." + x.Sel.Name
			}
		}
	case *ast.Ident:
		if v, ok := p.Info.Uses[x].(*types.Var); ok && v.Parent() == p.Types.Scope() {
			return p.Name + "." + x.Name
		}
	}
	return ""
}

// findPath BFS-searches adj for a path from src to dst, returning the node
// sequence src..dst (nil if unreachable). Neighbor order is sorted, so the
// witness path is deterministic.
func findPath(adj map[string][]string, src, dst string) []string {
	if src == dst {
		return []string{src}
	}
	prev := map[string]string{src: src}
	queue := []string{src}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		next := append([]string(nil), adj[n]...)
		sort.Strings(next)
		for _, m := range next {
			if _, ok := prev[m]; ok {
				continue
			}
			prev[m] = n
			if m == dst {
				var path []string
				for at := dst; ; at = prev[at] {
					path = append([]string{at}, path...)
					if at == src {
						return path
					}
				}
			}
			queue = append(queue, m)
		}
	}
	return nil
}

// canonicalCycle rotates a cycle's node list so the smallest class comes
// first, yielding a stable dedup key.
func canonicalCycle(cycle []string) string {
	best := 0
	for i := range cycle {
		if cycle[i] < cycle[best] {
			best = i
		}
	}
	rotated := append(append([]string(nil), cycle[best:]...), cycle[:best]...)
	return strings.Join(rotated, "→")
}

// viaSuffix renders an edge's transitive explanation, if any.
func viaSuffix(e *lockEdge) string {
	if e.via == "" {
		return ""
	}
	return " via " + e.via
}

// trimPath renders a position with the file path relative to the package
// directory's parent, keeping diagnostics short.
func trimPath(p *Package, pos token.Position) string {
	file := pos.Filename
	if i := strings.LastIndex(file, "/"); i >= 0 {
		if j := strings.LastIndex(file[:i], "/"); j >= 0 {
			file = file[j+1:]
		}
	}
	return fmt.Sprintf("%s:%d", file, pos.Line)
}
