// Package lint is a from-scratch static-analysis framework for this
// repository, built only on the standard library's go/parser, go/ast and
// go/types (no golang.org/x/tools dependency). It exists because the
// invariants LOTEC's reproduction depends on — bit-for-bit deterministic
// simulation runs, mutex discipline in the lock service, and three-way
// wire/codec/classify synchronization — are invisible to the compiler and
// to go vet.
//
// Four repo-specific analyzers are provided:
//
//   - mapiter:  flags `for range` over maps in determinism-critical
//     packages (sim, gdo, directory, node, stats, workload) unless the loop's
//     results are sorted before use or the site carries a
//     `//lotec:unordered` justification comment.
//   - lockheld: struct fields annotated `// guarded by mu` may only be
//     accessed in methods that hold that mutex on a dominating path
//     (conservative intra-package check; a `Locked` method-name suffix
//     asserts the caller holds the lock).
//   - wiresync: every concrete wire.Msg implementation must be
//     constructible by the codec (newMsg switch), classified for the
//     stats trace (Classify type switch), and — when it carries a Shard
//     field — attribute that shard in its Classify case.
//   - errdrop:  implicitly discarded error returns in the transport,
//     server and wire packages (an explicit `_ =` is the sanctioned
//     discard marker).
//
// Diagnostics are emitted as `file:line:col: [name] message` in a
// deterministic order so output is diffable, and as JSON for machines.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the diagnostic in the canonical file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Package is one loaded, type-checked package handed to analyzers.
type Package struct {
	// Path is the import path (synthetic for fixture loads).
	Path string
	// Name is the package name from the package clauses.
	Name string
	// Dir is the directory the sources were read from.
	Dir string
	// Fset positions every node of Files.
	Fset *token.FileSet
	// Files are the parsed sources, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's fact tables.
	Info *types.Info
}

// Analyzer is one invariant checker.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(p *Package) []Finding
}

// All returns every analyzer of the suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{MapIter, LockHeld, WireSync, ErrDrop}
}

// RunAll applies every analyzer to every package and returns the combined
// findings in deterministic order.
func RunAll(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var out []Finding
	for _, p := range pkgs {
		for _, a := range analyzers {
			out = append(out, a.Run(p)...)
		}
	}
	Sort(out)
	return out
}

// Sort orders findings by file, line, column, analyzer, message.
func Sort(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// finding builds a Finding at pos.
func (p *Package) finding(analyzer string, pos token.Pos, format string, args ...any) Finding {
	position := p.Fset.Position(pos)
	return Finding{
		Analyzer: analyzer,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}

// suppressionLines collects, per file, the line numbers carrying the given
// `//lotec:<directive>` marker. A marker suppresses a diagnostic on its own
// line or the line directly below it (comment-above style).
func (p *Package) suppressionLines(directive string) map[string]map[int]bool {
	marker := "//lotec:" + directive
	out := make(map[string]map[int]bool)
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, marker) {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				m := out[pos.Filename]
				if m == nil {
					m = make(map[int]bool)
					out[pos.Filename] = m
				}
				m[pos.Line] = true
			}
		}
	}
	return out
}

// suppressed reports whether a site at pos is covered by a directive line
// (same line, or the line above).
func suppressed(lines map[string]map[int]bool, pos token.Position) bool {
	m := lines[pos.Filename]
	if m == nil {
		return false
	}
	return m[pos.Line] || m[pos.Line-1]
}

// rootIdent digs through selectors, indexes, stars and parens to the
// left-most identifier of an expression (nil if there is none).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
