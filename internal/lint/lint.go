// Package lint is a from-scratch static-analysis framework for this
// repository, built only on the standard library's go/parser, go/ast and
// go/types (no golang.org/x/tools dependency). It exists because the
// invariants LOTEC's reproduction depends on — bit-for-bit deterministic
// simulation runs, mutex discipline in the lock service, three-way
// wire/codec/classify synchronization, and the zero-allocation hot-path
// ledger — are invisible to the compiler and to go vet.
//
// Seven repo-specific analyzers are provided:
//
//   - mapiter:  flags `for range` over maps in determinism-critical
//     packages (sim, gdo, directory, node, stats, xfer, workload) unless
//     the loop's results are sorted before use or the site carries a
//     `//lotec:unordered` justification comment.
//   - lockheld: struct fields annotated `// guarded by mu` may only be
//     accessed in methods that hold that mutex on a dominating path
//     (conservative intra-package check; a `Locked` method-name suffix
//     asserts the caller holds the lock).
//   - wiresync: every concrete wire.Msg implementation must be
//     constructible by the codec (newMsg switch), classified for the
//     stats trace (Classify type switch), and — when it carries a Shard
//     field — attribute that shard in its Classify case.
//   - errdrop:  implicitly discarded error returns in the transport,
//     server, wire, sim and node packages (an explicit `_ =` is the
//     sanctioned discard marker).
//   - detsource: whole-program taint — nondeterminism sources (time.Now,
//     global math/rand, os.Getenv, sync.Map.Range, multi-case select,
//     unordered map iteration outside mapiter's scope) must not be
//     reachable from the deterministic packages (sim, fault, workload,
//     netmodel, stats). `//lotec:nondet-ok` blesses a source site.
//   - lockorder: whole-program static mutex-acquisition graph over gdo,
//     directory, node, pstore and server; cycles (potential deadlocks)
//     are reported with a witness path. `//lotec:lockorder-ok` blesses
//     an ordered nested acquisition.
//   - hotalloc: functions annotated `//lotec:noalloc` may not contain
//     allocating constructs (fresh make/append, interface boxing,
//     closures, string↔[]byte conversion, fmt/errors calls, calls to
//     unannotated functions). Amortized growth into a reused buffer
//     (x = append(x, ...)) and allocations on error-returning/panicking
//     paths are admitted; `//lotec:alloc-ok` documents a deliberate
//     residual allocation.
//
// After the analyzers run, RunAll audits every `//lotec:` directive in the
// analyzed sources: unknown directives and suppressions with no matching
// diagnostic site are themselves findings, so stale justifications cannot
// accumulate.
//
// Diagnostics are emitted as `file:line:col: [name] message` in a
// deterministic order so output is diffable, and as JSON for machines.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"time"
)

// Finding is one diagnostic.
type Finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// String renders the diagnostic in the canonical file:line:col form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Package is one loaded, type-checked package handed to analyzers.
type Package struct {
	// Path is the import path (synthetic for fixture loads).
	Path string
	// Name is the package name from the package clauses.
	Name string
	// Dir is the directory the sources were read from.
	Dir string
	// Fset positions every node of Files.
	Fset *token.FileSet
	// Files are the parsed sources, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's fact tables.
	Info *types.Info
}

// Analyzer is one invariant checker. Per-package analyzers set Run;
// whole-program analyzers (detsource, lockorder, hotalloc) set RunProgram
// and receive every loaded package at once, sharing the program's
// type-checked state instead of re-loading per analyzer.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(prog *Program, p *Package) []Finding
	// RunProgram analyzes all packages together (cross-package dataflow).
	RunProgram func(prog *Program) []Finding
}

// All returns every analyzer of the suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{MapIter, LockHeld, WireSync, ErrDrop, DetSource, LockOrder, HotAlloc}
}

// knownDirectives are the `//lotec:<name>` markers the suite understands.
// Anything else trailing `//lotec:` is a typo and gets flagged by the
// directive audit.
var knownDirectives = map[string]string{
	"unordered":    "mapiter",
	"nondet-ok":    "detsource",
	"lockorder-ok": "lockorder",
	"alloc-ok":     "hotalloc",
	"noalloc":      "hotalloc",
}

// directive is one `//lotec:<name>` comment occurrence in analyzed source.
type directive struct {
	name string
	file string
	line int
	pos  token.Pos
	used bool
}

// Program is the shared, fully loaded view the analyzers operate on: every
// type-checked package plus the cross-package directive registry. Loading
// (and stdlib type-checking) happens once; every analyzer reuses it.
type Program struct {
	Pkgs []*Package

	directives []*directive
	byFileLine map[string]map[int]*directive
	cg         *callGraph
}

// graph returns the program's static call graph, built on first use and
// shared by every whole-program analyzer.
func (prog *Program) graph() *callGraph {
	if prog.cg == nil {
		prog.cg = buildCallGraph(prog)
	}
	return prog.cg
}

// NewProgram indexes the packages and their `//lotec:` directives.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:       pkgs,
		byFileLine: make(map[string]map[int]*directive),
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//lotec:")
					if !ok {
						continue
					}
					name := rest
					if i := strings.IndexAny(rest, " \t—-"); i >= 0 {
						// Allow a justification after the marker, e.g.
						// `//lotec:unordered — sorted below`. A dash directly
						// inside the name (nondet-ok) is kept by matching the
						// longest known prefix first.
						for known := range knownDirectives {
							if rest == known || strings.HasPrefix(rest, known+" ") ||
								strings.HasPrefix(rest, known+"\t") || strings.HasPrefix(rest, known+"—") {
								name = known
								break
							}
						}
						if name == rest {
							name = rest[:i]
						}
					}
					pos := p.Fset.Position(c.Pos())
					d := &directive{name: name, file: pos.Filename, line: pos.Line, pos: c.Pos()}
					prog.directives = append(prog.directives, d)
					m := prog.byFileLine[d.file]
					if m == nil {
						m = make(map[int]*directive)
						prog.byFileLine[d.file] = m
					}
					m[d.line] = d
				}
			}
		}
	}
	return prog
}

// directiveAt returns the named directive covering a site at pos (directive
// on the same line, or on the line directly above), or nil.
func (prog *Program) directiveAt(name string, pos token.Position) *directive {
	m := prog.byFileLine[pos.Filename]
	if m == nil {
		return nil
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		if d, ok := m[line]; ok && d.name == name {
			return d
		}
	}
	return nil
}

// Suppressed reports whether a site at pos carries the named directive; a
// positive answer marks the directive as consumed for the staleness audit.
// Analyzers must call this only for sites that would otherwise be flagged —
// a directive that never suppresses anything is stale by definition.
func (prog *Program) Suppressed(name string, pos token.Position) bool {
	d := prog.directiveAt(name, pos)
	if d == nil {
		return false
	}
	d.used = true
	return true
}

// MarkUsed records that the named directive at pos was consumed without
// suppressing a diagnostic (declaration-style directives like noalloc).
func (prog *Program) MarkUsed(name string, pos token.Position) {
	if d := prog.directiveAt(name, pos); d != nil {
		d.used = true
	}
}

// auditDirectives flags unknown `//lotec:` markers and suppressions that no
// analyzer consumed — stale justifications over code that no longer trips
// the check they silence.
func (prog *Program) auditDirectives() []Finding {
	var out []Finding
	for _, d := range prog.directives {
		analyzer, known := knownDirectives[d.name]
		if !known {
			out = append(out, Finding{
				Analyzer: "directive",
				File:     d.file,
				Line:     d.line,
				Col:      1,
				Message:  fmt.Sprintf("unknown directive //lotec:%s (known: alloc-ok, lockorder-ok, noalloc, nondet-ok, unordered)", d.name),
			})
			continue
		}
		if !d.used {
			out = append(out, Finding{
				Analyzer: "directive",
				File:     d.file,
				Line:     d.line,
				Col:      1,
				Message:  fmt.Sprintf("stale //lotec:%s — no %s diagnostic site matches this suppression any more; delete it", d.name, analyzer),
			})
		}
	}
	return out
}

// Timing is one analyzer's wall-clock cost over the whole program.
type Timing struct {
	Analyzer string
	Elapsed  time.Duration
}

// RunAll applies every analyzer to every package, audits the suppression
// directives, and returns the combined findings in deterministic order.
func RunAll(pkgs []*Package, analyzers []*Analyzer) []Finding {
	fs, _ := RunAllTimed(pkgs, analyzers)
	return fs
}

// RunAllTimed is RunAll plus per-analyzer wall-clock timings, in analyzer
// order. The type-checked program is built once and shared by every
// analyzer; the timings therefore measure pure analysis, not loading.
func RunAllTimed(pkgs []*Package, analyzers []*Analyzer) ([]Finding, []Timing) {
	prog := NewProgram(pkgs)
	var out []Finding
	timings := make([]Timing, 0, len(analyzers)+1)
	for _, a := range analyzers {
		start := time.Now()
		if a.RunProgram != nil {
			out = append(out, a.RunProgram(prog)...)
		} else {
			for _, p := range prog.Pkgs {
				out = append(out, a.Run(prog, p)...)
			}
		}
		timings = append(timings, Timing{Analyzer: a.Name, Elapsed: time.Since(start)})
	}
	start := time.Now()
	out = append(out, prog.auditDirectives()...)
	timings = append(timings, Timing{Analyzer: "directive", Elapsed: time.Since(start)})
	Sort(out)
	return out, timings
}

// Sort orders findings by file, line, column, analyzer, message.
func Sort(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// finding builds a Finding at pos.
func (p *Package) finding(analyzer string, pos token.Pos, format string, args ...any) Finding {
	position := p.Fset.Position(pos)
	return Finding{
		Analyzer: analyzer,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	}
}

// rootIdent digs through selectors, indexes, slices, stars and parens to
// the left-most identifier of an expression (nil if there is none).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
