package lint

import (
	"go/ast"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// LockHeld enforces `// guarded by <mu>` field annotations: a field so
// annotated may only be read or written in methods of its struct while the
// named mutex is held on every path reaching the access ("dominating
// path"). The check is intra-package and intentionally conservative:
//
//   - `m.mu.Lock()` / `RLock()` sets the held state; `m.mu.Unlock()` /
//     `RUnlock()` clears it; `defer m.mu.Unlock()` keeps it held to the
//     end of the function.
//   - Branches are joined with must-hold semantics: the lock counts as
//     held after a branch only if every fallthrough path holds it.
//     Branches that terminate (return/panic) drop out of the join.
//   - A method whose name ends in "Locked" is assumed entered with the
//     lock held — the repo's convention for caller-locks helpers.
//   - Function literals start unlocked (they may run on another
//     goroutine) and are analyzed independently.
//
// Accesses through variables other than the receiver are not tracked;
// annotate fields of structs whose state is only touched via methods.
var LockHeld = &Analyzer{
	Name: "lockheld",
	Doc:  "fields annotated `guarded by mu` are only accessed under that mutex",
	Run:  runLockHeld,
}

var guardedRE = regexp.MustCompile(`(?i)guarded by (\w+)`)

// guardSpec maps annotated field name -> guarding mutex field name, for
// one struct type.
type guardSpec map[string]string

func runLockHeld(prog *Program, p *Package) []Finding {
	specs := collectGuards(p)
	if len(specs) == 0 {
		return nil
	}
	var out []Finding
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || fd.Body == nil || len(fd.Recv.List) != 1 {
				continue
			}
			recvNames := fd.Recv.List[0].Names
			if len(recvNames) != 1 || recvNames[0].Name == "_" {
				continue
			}
			recvObj := p.Info.Defs[recvNames[0]]
			if recvObj == nil {
				continue
			}
			named := namedOf(recvObj.Type())
			if named == nil {
				continue
			}
			spec, ok := specs[named.Obj()]
			if !ok {
				continue
			}
			w := &lockWalk{
				p:    p,
				recv: recvObj,
				spec: spec,
			}
			entry := lockState{}
			if strings.HasSuffix(fd.Name.Name, "Locked") {
				entry = lockState{held: allGuards(spec)}
			}
			w.block(fd.Body.List, entry)
			out = append(out, w.findings...)
		}
	}
	return out
}

// collectGuards scans struct declarations for `guarded by` field comments
// and validates the named guard is a sync.Mutex/RWMutex field of the same
// struct. Malformed annotations are themselves findings.
func collectGuards(p *Package) map[*types.TypeName]guardSpec {
	out := make(map[*types.TypeName]guardSpec)
	for _, file := range p.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			var spec guardSpec
			for _, field := range st.Fields.List {
				guard := guardName(field)
				if guard == "" {
					continue
				}
				for _, name := range field.Names {
					if spec == nil {
						spec = make(guardSpec)
					}
					spec[name.Name] = guard
				}
			}
			if spec == nil {
				return true
			}
			tn, ok := p.Info.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			out[tn] = spec
			return true
		})
	}
	return out
}

// guardName extracts the mutex name from a field's doc or trailing comment.
func guardName(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRE.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// namedOf unwraps pointers to the receiver's named type.
func namedOf(t types.Type) *types.Named {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func allGuards(spec guardSpec) map[string]bool {
	held := make(map[string]bool)
	for _, g := range spec {
		held[g] = true
	}
	return held
}

// lockState is the set of receiver mutexes held at a program point.
type lockState struct {
	held map[string]bool
}

func (s lockState) clone() lockState {
	c := lockState{held: make(map[string]bool, len(s.held))}
	for k, v := range s.held {
		if v {
			c.held[k] = true
		}
	}
	return c
}

func (s lockState) has(g string) bool { return s.held[g] }

func (s *lockState) set(g string, v bool) {
	if s.held == nil {
		s.held = make(map[string]bool)
	}
	s.held[g] = v
}

// meet intersects two fallthrough states (must-hold join).
func meet(a, b lockState) lockState {
	out := lockState{held: make(map[string]bool)}
	for g, v := range a.held {
		if v && b.has(g) {
			out.held[g] = true
		}
	}
	return out
}

// lockWalk performs the per-method walk.
type lockWalk struct {
	p        *Package
	recv     types.Object
	spec     guardSpec
	findings []Finding
}

// block walks statements in order, threading the lock state; returns the
// state at fallthrough exit, and whether the block terminates (all paths
// return/panic, so there is no fallthrough).
func (w *lockWalk) block(stmts []ast.Stmt, st lockState) (lockState, bool) {
	st = st.clone()
	for _, s := range stmts {
		var term bool
		st, term = w.stmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

// stmt processes one statement: checks accesses in its expressions,
// applies lock transitions, and recurses into nested blocks.
func (w *lockWalk) stmt(s ast.Stmt, st lockState) (lockState, bool) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if guard, locks, ok := w.lockCall(x.X); ok {
			// The receiver expression itself is not a guarded access.
			st.set(guard, locks)
			return st, false
		}
		if call, ok := x.X.(*ast.CallExpr); ok && isPanicCall(call) {
			w.checkExpr(x.X, st)
			return st, true
		}
		w.checkExpr(x.X, st)
		return st, false
	case *ast.DeferStmt:
		// defer mu.Unlock() does not change the held state for the rest
		// of the function body. Other deferred work runs at exit; check
		// any function literal independently.
		if _, _, ok := w.lockCall(x.Call); ok {
			return st, false
		}
		w.checkExpr(x.Call, st)
		return st, false
	case *ast.GoStmt:
		w.checkExpr(x.Call, st)
		return st, false
	case *ast.AssignStmt, *ast.IncDecStmt, *ast.SendStmt, *ast.DeclStmt, *ast.ReturnStmt:
		w.checkNodeExprs(s, st)
		_, isRet := s.(*ast.ReturnStmt)
		return st, isRet
	case *ast.IfStmt:
		if x.Init != nil {
			st, _ = w.stmt(x.Init, st)
		}
		w.checkExpr(x.Cond, st)
		thenSt, thenTerm := w.block(x.Body.List, st)
		elseSt, elseTerm := st, false
		if x.Else != nil {
			switch e := x.Else.(type) {
			case *ast.BlockStmt:
				elseSt, elseTerm = w.block(e.List, st)
			case *ast.IfStmt:
				elseSt, elseTerm = w.stmt(e, st)
			}
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return meet(thenSt, elseSt), false
		}
	case *ast.ForStmt:
		if x.Init != nil {
			st, _ = w.stmt(x.Init, st)
		}
		if x.Cond != nil {
			w.checkExpr(x.Cond, st)
		}
		bodySt, _ := w.block(x.Body.List, st)
		if x.Post != nil {
			w.stmt(x.Post, bodySt)
		}
		// The body may run zero times.
		return meet(st, bodySt), false
	case *ast.RangeStmt:
		w.checkExpr(x.X, st)
		bodySt, _ := w.block(x.Body.List, st)
		return meet(st, bodySt), false
	case *ast.BlockStmt:
		return w.block(x.List, st)
	case *ast.SwitchStmt:
		if x.Init != nil {
			st, _ = w.stmt(x.Init, st)
		}
		if x.Tag != nil {
			w.checkExpr(x.Tag, st)
		}
		return w.caseClauses(x.Body.List, st)
	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			st, _ = w.stmt(x.Init, st)
		}
		w.checkNodeExprs(x.Assign, st)
		return w.caseClauses(x.Body.List, st)
	case *ast.SelectStmt:
		for _, cc := range x.Body.List {
			if comm, ok := cc.(*ast.CommClause); ok {
				inner := st
				if comm.Comm != nil {
					inner, _ = w.stmt(comm.Comm, st.clone())
				}
				w.block(comm.Body, inner)
			}
		}
		// Conservative: keep entry state.
		return st, false
	case *ast.LabeledStmt:
		return w.stmt(x.Stmt, st)
	case *ast.BranchStmt, *ast.EmptyStmt:
		return st, false
	default:
		w.checkNodeExprs(s, st)
		return st, false
	}
}

// caseClauses joins the fallthrough states of a switch's cases.
func (w *lockWalk) caseClauses(list []ast.Stmt, entry lockState) (lockState, bool) {
	var exits []lockState
	hasDefault := false
	for _, cc := range list {
		cl, ok := cc.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cl.List == nil {
			hasDefault = true
		}
		for _, e := range cl.List {
			w.checkExpr(e, entry)
		}
		ex, term := w.block(cl.Body, entry)
		if !term {
			exits = append(exits, ex)
		}
	}
	if !hasDefault {
		// Possible that no case ran.
		exits = append(exits, entry)
	}
	if len(exits) == 0 {
		return entry, true
	}
	out := exits[0]
	for _, e := range exits[1:] {
		out = meet(out, e)
	}
	return out, false
}

// lockCall recognizes recv.<guard>.Lock/RLock/Unlock/RUnlock() and returns
// the guard name and whether the call acquires (true) or releases (false).
func (w *lockWalk) lockCall(e ast.Expr) (guard string, locks, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	var locking bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		locking = true
	case "Unlock", "RUnlock":
		locking = false
	default:
		return "", false, false
	}
	inner, isSel2 := sel.X.(*ast.SelectorExpr)
	if !isSel2 {
		return "", false, false
	}
	base, isIdent := inner.X.(*ast.Ident)
	if !isIdent || w.p.Info.Uses[base] != w.recv {
		return "", false, false
	}
	return inner.Sel.Name, locking, true
}

// checkNodeExprs checks every expression hanging off a statement node.
func (w *lockWalk) checkNodeExprs(s ast.Stmt, st lockState) {
	ast.Inspect(s, func(n ast.Node) bool {
		if e, ok := n.(ast.Expr); ok {
			w.checkExpr(e, st)
			return false
		}
		return true
	})
}

// checkExpr flags accesses to guarded fields of the receiver made while
// the guard is not held. Function literals are analyzed independently,
// starting unlocked.
func (w *lockWalk) checkExpr(e ast.Expr, st lockState) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			w.block(x.Body.List, lockState{})
			return false
		case *ast.CallExpr:
			if guard, locks, ok := w.lockCall(x); ok {
				// mid-expression lock manipulation is too clever to
				// model; treat as a state change applied immediately.
				st.set(guard, locks)
				return false
			}
		case *ast.SelectorExpr:
			base, ok := x.X.(*ast.Ident)
			if !ok || w.p.Info.Uses[base] != w.recv {
				return true
			}
			guard, annotated := w.spec[x.Sel.Name]
			if annotated && !st.has(guard) {
				w.findings = append(w.findings, w.p.finding("lockheld", x.Pos(),
					"%s.%s accessed without holding %s (annotated `guarded by %s`)",
					base.Name, x.Sel.Name, guard, guard))
			}
			return false
		}
		return true
	})
}

// isPanicCall reports whether the call unconditionally terminates the
// function (panic or a log.Fatal-style call).
func isPanicCall(call *ast.CallExpr) bool {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name == "panic"
	case *ast.SelectorExpr:
		return strings.HasPrefix(f.Sel.Name, "Fatal")
	}
	return false
}

// sortGuardNames is a test helper: deterministic listing of a spec.
func sortGuardNames(spec guardSpec) []string {
	out := make([]string, 0, len(spec))
	for f := range spec {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}
