package lint

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files from actual output")

// TestMainJSONGolden locks the -json output schema: one run over the
// positive fixtures must reproduce testdata/golden/lint.json byte for byte
// (module-root prefix normalized), keeping field names, ordering and
// indentation stable for CI consumers. Regenerate with `go test
// ./internal/lint -run TestMainJSONGolden -update`.
func TestMainJSONGolden(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main([]string{
		"-json",
		"./testdata/detsource_pos/sim",
		"./testdata/detsource_pos/helper",
		"./testdata/lockorder_pos",
		"./testdata/hotalloc_pos",
		"./testdata/directive_pos",
	}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (findings present); stderr:\n%s", code, stderr.String())
	}

	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	got := strings.ReplaceAll(stdout.String(), root, "MODULE")

	golden := filepath.Join("testdata", "golden", "lint.json")
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("-json output drifted from %s (re-run with -update if intended)\ngot:\n%s\nwant:\n%s",
			golden, got, want)
	}
}

// TestMainExitCodes pins the exit-code contract: 0 clean, 1 findings, 2
// load/usage errors.
func TestMainExitCodes(t *testing.T) {
	cases := []struct {
		name string
		args []string
		want int
	}{
		{"clean", []string{"./testdata/hotalloc_neg"}, 0},
		{"findings", []string{"./testdata/directive_pos"}, 1},
		{"badpattern", []string{"./testdata/does_not_exist"}, 2},
		{"badflag", []string{"-no-such-flag"}, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if code := Main(tc.args, &stdout, &stderr); code != tc.want {
				t.Errorf("Main(%v) = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					tc.args, code, tc.want, stdout.String(), stderr.String())
			}
		})
	}
}

// TestMainTextOutput checks the plain (non-JSON) line format and the
// trailing count on stderr.
func TestMainTextOutput(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := Main([]string{"./testdata/directive_pos"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1", code)
	}
	lines := strings.Split(strings.TrimRight(stdout.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2:\n%s", len(lines), stdout.String())
	}
	for _, ln := range lines {
		if !strings.Contains(ln, "[directive]") || !strings.Contains(ln, "sim.go:") {
			t.Errorf("line %q does not match file:line:col: [analyzer] message", ln)
		}
	}
	if !strings.Contains(stderr.String(), "2 finding(s)") {
		t.Errorf("stderr %q missing finding count", stderr.String())
	}
}
