package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// detRootPackages are the packages whose observable behavior must be a pure
// function of their inputs and seeds: the simulator and everything that
// feeds its trace. A nondeterminism source reachable from any function in
// these packages breaks LOTEC's byte-identical-runs contract even when the
// source itself lives in a helper package far away.
var detRootPackages = map[string]bool{
	"sim":      true,
	"fault":    true,
	"workload": true,
	"netmodel": true,
	"stats":    true,
	// The replicated directory (hosts, handoff, routing) replays inside the
	// simulator: its promotions and epoch adoptions are part of the trace.
	"directory": true,
}

// DetSource is the whole-program nondeterminism-taint analyzer. It marks a
// closed set of source constructs —
//
//   - time.Now / time.Since / time.Until (wall clock),
//   - package-level math/rand functions (the global, unseedable-per-run
//     RNG; constructing a seeded generator via rand.New/NewSource is fine),
//   - os.Getenv / os.LookupEnv / os.Environ / os.Hostname (ambient host
//     state),
//   - (*sync.Map).Range (unordered iteration),
//   - select statements with two or more communication clauses (scheduler
//     order),
//   - order-unsafe map iteration in packages outside mapiter's scope
//     (inside its scope mapiter already gates them),
//
// — then walks the static call graph backwards from each source. Any
// function declared in a deterministic root package (sim, fault, workload,
// netmodel, stats) that can reach a source is reported, with the shortest
// call path from the deterministic code to the source so the leak is
// actionable. A `//lotec:nondet-ok` directive on the source line blesses
// that one site for every caller.
//
// Calls through function values and interface methods are invisible to the
// static graph; determinism across those edges is the callee's
// responsibility (its own package is either in the root set or it is not).
var DetSource = &Analyzer{
	Name:       "detsource",
	Doc:        "nondeterminism sources must not be reachable from sim/fault/workload/netmodel/stats",
	RunProgram: runDetSource,
}

// sourceHit is one nondeterminism source site inside a function body.
type sourceHit struct {
	fn   *types.Func
	pos  token.Pos
	pkg  *Package
	desc string
}

// taintWitness explains why a function is tainted: it either contains a
// source directly or calls a tainted function.
type taintWitness struct {
	src  *sourceHit // non-nil: direct source
	site *callSite  // non-nil: call into tainted callee
}

func runDetSource(prog *Program) []Finding {
	g := prog.graph()
	hits := collectSources(prog, g)

	// Split sources into blessed and live. A //lotec:nondet-ok directive is
	// consumed only if its source could actually leak — i.e. the function
	// containing it is reachable from deterministic code — so blessings on
	// dead or irrelevant sources rot into audit findings.
	reachable := reachableFromDetRoots(prog, g)
	var live []*sourceHit
	for _, h := range hits {
		pos := h.pkg.Fset.Position(h.pos)
		if prog.directiveAt("nondet-ok", pos) != nil {
			if reachable[h.fn] {
				prog.MarkUsed("nondet-ok", pos)
			}
			continue
		}
		live = append(live, h)
	}

	tainted := propagateTaint(prog, g, live)

	var out []Finding
	direct := make(map[*types.Func]bool)
	for _, h := range live {
		if fi, ok := g.funcs[h.fn]; ok && detRootPackages[fi.pkg.Name] {
			out = append(out, fi.pkg.finding("detsource", h.pos,
				"%s in deterministic package %s (justify with //lotec:nondet-ok)",
				h.desc, fi.pkg.Name))
			direct[h.fn] = true
		}
	}
	for _, fi := range g.sortedFuncs() {
		if !detRootPackages[fi.pkg.Name] || direct[fi.obj] {
			continue
		}
		w, ok := tainted[fi.obj]
		if !ok || w.site == nil {
			continue
		}
		// Taint arrives through a call; report only boundary crossings —
		// a call to a tainted function in another deterministic package is
		// that function's own finding.
		if fi2, ok := g.funcs[w.site.callee]; ok && detRootPackages[fi2.pkg.Name] {
			continue
		}
		chain, src := taintChain(tainted, w)
		out = append(out, fi.pkg.finding("detsource", w.site.call.Pos(),
			"deterministic package %s reaches nondeterminism source %s via %s",
			fi.pkg.Name, src.desc, pathString(chain, src.desc)))
	}
	return out
}

// collectSources finds every nondeterminism source site in the program,
// grouped under the function containing it, in deterministic order.
func collectSources(prog *Program, g *callGraph) []*sourceHit {
	var hits []*sourceHit
	for _, fi := range g.sortedFuncs() {
		fi := fi
		p := fi.pkg
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				if desc := nondetCall(p, x); desc != "" {
					hits = append(hits, &sourceHit{fn: fi.obj, pos: x.Pos(), pkg: p, desc: desc})
				}
			case *ast.SelectStmt:
				if commClauses(x) >= 2 {
					hits = append(hits, &sourceHit{fn: fi.obj, pos: x.Pos(), pkg: p,
						desc: "multi-case select (scheduler picks the ready clause)"})
				}
			case *ast.RangeStmt:
				// Inside mapiter's scope that analyzer gates map ranges with
				// its own sort-or-justify discipline; outside it an
				// order-unsafe range is a plain nondeterminism source.
				if deterministicPackages[p.Name] {
					return true
				}
				if !isMapType(p.Info.Types[x.X].Type) {
					return true
				}
				if _, bad := p.checkMapRange(fi.decl, x); bad {
					hits = append(hits, &sourceHit{fn: fi.obj, pos: x.Pos(), pkg: p,
						desc: "order-unsafe map iteration"})
				}
			}
			return true
		})
	}
	return hits
}

// nondetCall classifies a call expression as a nondeterminism source,
// returning a description or "".
func nondetCall(p *Package, call *ast.CallExpr) string {
	fn := calleeOf(p, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		switch fn.Name() {
		case "Now", "Since", "Until":
			return "time." + fn.Name() + "() (wall clock)"
		}
	case "math/rand", "math/rand/v2":
		sig, _ := fn.Type().(*types.Signature)
		if sig != nil && sig.Recv() != nil {
			return "" // method on a seeded *rand.Rand: deterministic
		}
		if strings.HasPrefix(fn.Name(), "New") {
			return "" // constructing a seeded generator
		}
		return "math/rand." + fn.Name() + "() (global RNG)"
	case "os":
		switch fn.Name() {
		case "Getenv", "LookupEnv", "Environ", "Hostname":
			return "os." + fn.Name() + "() (ambient host state)"
		}
	case "sync":
		if fn.Name() == "Range" {
			if named := recvNamed(fn); named != nil && named.Obj().Name() == "Map" {
				return "(*sync.Map).Range (unordered iteration)"
			}
		}
	}
	return ""
}

// commClauses counts the communication clauses of a select statement.
func commClauses(sel *ast.SelectStmt) int {
	n := 0
	for _, c := range sel.Body.List {
		if _, ok := c.(*ast.CommClause); ok {
			n++
		}
	}
	return n
}

// reachableFromDetRoots computes the forward closure of the call graph from
// every function declared in a deterministic root package.
func reachableFromDetRoots(prog *Program, g *callGraph) map[*types.Func]bool {
	reach := make(map[*types.Func]bool)
	var queue []*types.Func
	for _, fi := range g.sortedFuncs() {
		if detRootPackages[fi.pkg.Name] {
			reach[fi.obj] = true
			queue = append(queue, fi.obj)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, site := range g.calls[fn] {
			if !reach[site.callee] {
				reach[site.callee] = true
				queue = append(queue, site.callee)
			}
		}
	}
	return reach
}

// propagateTaint runs a reverse BFS from the live sources: a function is
// tainted if it contains a source or calls a tainted function. The witness
// map records one shortest step toward a source per function; BFS order is
// made deterministic by sorting seeds and reverse edges by position.
func propagateTaint(prog *Program, g *callGraph, live []*sourceHit) map[*types.Func]taintWitness {
	reverse := make(map[*types.Func][]*callSite)
	for _, fi := range g.sortedFuncs() {
		for i := range g.calls[fi.obj] {
			site := &g.calls[fi.obj][i]
			reverse[site.callee] = append(reverse[site.callee], site)
		}
	}
	for _, sites := range reverse {
		sort.Slice(sites, func(i, j int) bool { return sites[i].call.Pos() < sites[j].call.Pos() })
	}

	tainted := make(map[*types.Func]taintWitness)
	var queue []*types.Func
	for _, h := range live {
		if _, ok := tainted[h.fn]; ok {
			continue
		}
		tainted[h.fn] = taintWitness{src: h}
		queue = append(queue, h.fn)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, site := range reverse[fn] {
			if _, ok := tainted[site.caller]; ok {
				continue
			}
			tainted[site.caller] = taintWitness{site: site}
			queue = append(queue, site.caller)
		}
	}
	return tainted
}

// taintChain reconstructs the call path from a witness to its terminal
// source: the returned chain lists the callees crossed (excluding the
// reporting function itself), and src is the source reached.
func taintChain(tainted map[*types.Func]taintWitness, w taintWitness) ([]*types.Func, *sourceHit) {
	var chain []*types.Func
	for w.site != nil {
		chain = append(chain, w.site.callee)
		w = tainted[w.site.callee]
	}
	return chain, w.src
}
