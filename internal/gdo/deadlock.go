package gdo

import (
	"sort"

	"lotec/internal/ids"
)

// Inter-family deadlock detection.
//
// The paper's simulation does not address inter-family deadlock (two
// families each holding an object the other wants will wait forever under
// plain 2PL). Any deployable system needs a resolution policy, so the
// directory maintains the family-level waits-for relation implied by its
// queues and pending upgrades, checks for cycles whenever a wait is added or
// re-pointed, and aborts the *youngest* waiting family in the cycle. Age is
// the root TxID of the family's first attempt, kept stable across retries
// (wound-wait style), so a repeatedly victimized root eventually becomes
// the oldest in any cycle and is guaranteed to win — no starvation.

// buildWaitsForLocked derives the waits-for adjacency from current directory
// state: a queued family waits on every holder of that object; an upgrading
// family waits on every *other* holder. Caller holds d.mu.
func (d *Directory) buildWaitsForLocked() (map[ids.FamilyID][]ids.FamilyID, map[ids.FamilyID]uint64) {
	adj := make(map[ids.FamilyID][]ids.FamilyID)
	ages := make(map[ids.FamilyID]uint64)
	add := func(from, to ids.FamilyID) {
		if from == to {
			return
		}
		adj[from] = append(adj[from], to)
	}
	for _, e := range d.entries {
		for _, q := range e.queues {
			ages[q.family] = q.age
			for _, h := range e.holders {
				add(q.family, h.family)
			}
		}
		for _, u := range e.upgrades {
			ages[u.family] = u.age
			for _, h := range e.holders {
				add(u.family, h.family)
			}
		}
	}
	return adj, ages
}

// findDeadlockVictim looks for a waits-for cycle reachable from start and,
// if one exists, returns the youngest waiting family on it. Caller holds
// d.mu.
func (d *Directory) findDeadlockVictim(start ids.FamilyID) (ids.FamilyID, bool) {
	adj, ages := d.buildWaitsForLocked()
	// Deterministic traversal order.
	for f := range adj {
		s := adj[f]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}

	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[ids.FamilyID]int)
	var stack []ids.FamilyID
	var cycle []ids.FamilyID

	var dfs func(f ids.FamilyID) bool
	dfs = func(f ids.FamilyID) bool {
		color[f] = gray
		stack = append(stack, f)
		for _, g := range adj[f] {
			switch color[g] {
			case white:
				if dfs(g) {
					return true
				}
			case gray:
				// Found a cycle: the stack suffix from g onward.
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append(cycle, stack[i])
					if stack[i] == g {
						break
					}
				}
				return true
			}
		}
		stack = stack[:len(stack)-1]
		color[f] = black
		return false
	}

	if !dfs(start) {
		return 0, false
	}
	// Victim: the youngest (largest-age) waiting family on the cycle. All
	// cycle members wait by construction; tie-break on FamilyID for
	// determinism.
	victim := cycle[0]
	for _, f := range cycle[1:] {
		av, af := ages[victim], ages[f]
		if af > av || (af == av && f > victim) {
			victim = f
		}
	}
	return victim, true
}
