package gdo

import (
	"slices"

	"lotec/internal/ids"
)

// Inter-family deadlock detection.
//
// The paper's simulation does not address inter-family deadlock (two
// families each holding an object the other wants will wait forever under
// plain 2PL). Any deployable system needs a resolution policy, so the
// directory maintains the family-level waits-for relation implied by its
// queues and pending upgrades, checks for cycles whenever a wait is added or
// re-pointed, and aborts the *youngest* waiting family in the cycle. Age is
// the root TxID of the family's first attempt, kept stable across retries
// (wound-wait style), so a repeatedly victimized root eventually becomes
// the oldest in any cycle and is guaranteed to win — no starvation.
//
// The detector runs on every release that re-points waiters (the directory's
// steady-state hot path), so all of its working state — the flat edge list,
// the DFS stack, the color and age maps — lives in a per-Directory scratch
// area (wfScratch) that is reused across calls. A run allocates only while
// the graph outgrows every previous one; at steady state it allocates
// nothing. The maps are clear()ed, not reallocated: Go map clears keep the
// buckets.

// WaitEdge is one family-level waits-for edge: From is queued (or upgrading)
// behind a lock To currently holds. Edge summaries are what a partitioned
// directory's shards exchange so inter-shard cycles stay detectable (see
// package directory).
type WaitEdge struct {
	From ids.FamilyID
	To   ids.FamilyID
}

// wfScratch is the detector's reusable working state. Guarded by d.mu; only
// valid within one locked call.
type wfScratch struct {
	edges []WaitEdge              // flat adjacency, sorted by (From, To)
	ages  map[ids.FamilyID]uint64 // waiting family → deadlock age
	color map[ids.FamilyID]uint8  // DFS colors (white=absent, gray, black)
	stack []wfFrame               // iterative DFS stack
	cycle []ids.FamilyID          // cycle members, stack-top first
}

// wfFrame is one iterative-DFS stack slot: a gray family and the index of
// the next adjacency edge to visit.
type wfFrame struct {
	fam  ids.FamilyID
	next int
}

// DFS colors. White is encoded as absence from the color map.
const (
	wfGray  uint8 = 1
	wfBlack uint8 = 2
)

// HasWaiters reports whether any family is queued or upgrading here. The
// sharded router uses it as an O(1) precheck: a cycle spanning shards needs
// waiting families in at least two of them.
func (d *Directory) HasWaiters() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.waitObjs) > 0
}

// WaitEdges summarizes this directory's waits-for relation: the edge list
// plus the waiting families' deadlock ages. The sharded router unions the
// summaries of every shard and runs the same cycle search findDeadlockVictimLocked
// performs locally. The returned slice and map are the caller's to keep —
// they are copied out of the detector's scratch.
func (d *Directory) WaitEdges() ([]WaitEdge, map[ids.FamilyID]uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.buildWaitsForLocked()
	var edges []WaitEdge
	var ages map[ids.FamilyID]uint64
	if len(d.wf.edges) > 0 {
		edges = append(edges, d.wf.edges...)
	}
	if len(d.wf.ages) > 0 {
		ages = make(map[ids.FamilyID]uint64, len(d.wf.ages))
		for f, a := range d.wf.ages {
			ages[f] = a
		}
	}
	return edges, ages
}

// AbortVictim cancels every queued request and pending upgrade of victim in
// this directory and returns the deadlock-abort events for its site(s). It
// is the externally driven form of the abort performed when local detection
// picks a victim; the sharded router calls it on every shard once an
// inter-shard cycle is found.
func (d *Directory) AbortVictim(victim ids.FamilyID) []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.abortVictimLocked(victim)
}

// PurgeFamily silently removes family from every queue and upgrade list
// (no events). The sharded router uses it when the requesting family itself
// is chosen as the victim of an inter-shard cycle: the synchronous
// DeadlockAbort reply covers the notification, exactly as the local
// detector's purge does.
func (d *Directory) PurgeFamily(family ids.FamilyID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.purgeFamilyLocked(family)
}

// buildWaitsForLocked derives the waits-for relation from current directory
// state into the reused scratch: a queued family waits on every holder of
// that object; an upgrading family waits on every *other* holder. The edge
// list ends sorted by (From, To), so each family's neighbors are a
// contiguous ascending run — the deterministic traversal order the old
// per-key sort provided, without the per-call maps. Caller holds d.mu.
//
//lotec:noalloc
func (d *Directory) buildWaitsForLocked() {
	d.wf.edges = d.wf.edges[:0]
	if d.wf.ages == nil {
		d.wf.ages = make(map[ids.FamilyID]uint64) //lotec:alloc-ok — first use; the map is reused (clear keeps buckets)
	}
	clear(d.wf.ages)
	if len(d.waitObjs) == 0 {
		return
	}
	// Only entries someone waits on can contribute edges; waitObjs indexes
	// exactly those, so idle directories pay nothing here. The edge multiset
	// is map-order independent: it is sorted before any traversal.
	for _, e := range d.waitObjs {
		for _, q := range e.queues {
			d.wf.ages[q.family] = q.age
			for _, h := range e.holders {
				if q.family != h.family {
					d.wf.edges = append(d.wf.edges, WaitEdge{From: q.family, To: h.family})
				}
			}
		}
		for _, u := range e.upgrades {
			d.wf.ages[u.family] = u.age
			for _, h := range e.holders {
				if u.family != h.family {
					d.wf.edges = append(d.wf.edges, WaitEdge{From: u.family, To: h.family})
				}
			}
		}
	}
	slices.SortFunc(d.wf.edges, cmpWaitEdge)
}

// cmpWaitEdge orders edges by (From, To). Package-level rather than a
// closure so the noalloc sort call site stays literal-free.
//
//lotec:noalloc
func cmpWaitEdge(a, b WaitEdge) int {
	switch {
	case a.From < b.From:
		return -1
	case a.From > b.From:
		return 1
	case a.To < b.To:
		return -1
	case a.To > b.To:
		return 1
	}
	return 0
}

// neighborsLocked returns the index range [lo, hi) of f's outgoing edges in
// the sorted scratch edge list. Caller holds d.mu after buildWaitsForLocked.
//
//lotec:noalloc
func (d *Directory) neighborsLocked(f ids.FamilyID) (int, int) {
	edges := d.wf.edges
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if edges[mid].From < f {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	end := lo
	for end < len(edges) && edges[end].From == f {
		end++
	}
	return lo, end
}

// findDeadlockVictimLocked looks for a waits-for cycle reachable from start and,
// if one exists, returns the youngest waiting family on it. It runs on the
// scratch graph with an iterative DFS — no per-call maps, slices or
// closures. Caller holds d.mu.
//
//lotec:noalloc
func (d *Directory) findDeadlockVictimLocked(start ids.FamilyID) (ids.FamilyID, bool) {
	d.buildWaitsForLocked()
	if len(d.wf.edges) == 0 {
		return 0, false
	}
	if d.wf.color == nil {
		d.wf.color = make(map[ids.FamilyID]uint8) //lotec:alloc-ok — first use; the map is reused (clear keeps buckets)
	}
	clear(d.wf.color)
	d.wf.stack = d.wf.stack[:0]
	d.wf.cycle = d.wf.cycle[:0]

	// Iterative white/gray/black DFS, visiting each gray family's neighbors
	// in ascending order — the exact traversal the recursive form performed.
	d.wf.color[start] = wfGray
	lo, _ := d.neighborsLocked(start)
	d.wf.stack = append(d.wf.stack, wfFrame{fam: start, next: lo})
	found := false
	for len(d.wf.stack) > 0 && !found {
		top := &d.wf.stack[len(d.wf.stack)-1]
		if top.next >= len(d.wf.edges) || d.wf.edges[top.next].From != top.fam {
			// Neighbors exhausted: blacken and pop.
			d.wf.color[top.fam] = wfBlack
			d.wf.stack = d.wf.stack[:len(d.wf.stack)-1]
			continue
		}
		g := d.wf.edges[top.next].To
		top.next++
		switch d.wf.color[g] {
		case wfGray:
			// Found a cycle: the stack suffix from g onward, top first.
			for i := len(d.wf.stack) - 1; i >= 0; i-- {
				d.wf.cycle = append(d.wf.cycle, d.wf.stack[i].fam)
				if d.wf.stack[i].fam == g {
					break
				}
			}
			found = true
		case wfBlack:
			// Explored and cycle-free; skip.
		default:
			d.wf.color[g] = wfGray
			glo, _ := d.neighborsLocked(g)
			d.wf.stack = append(d.wf.stack, wfFrame{fam: g, next: glo})
		}
	}
	if !found {
		return 0, false
	}
	// Victim: the youngest (largest-age) waiting family on the cycle. All
	// cycle members wait by construction; tie-break on FamilyID for
	// determinism.
	victim := d.wf.cycle[0]
	for _, f := range d.wf.cycle[1:] {
		av, af := d.wf.ages[victim], d.wf.ages[f]
		if af > av || (af == av && f > victim) {
			victim = f
		}
	}
	return victim, true
}
