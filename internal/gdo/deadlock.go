package gdo

import (
	"sort"

	"lotec/internal/ids"
)

// Inter-family deadlock detection.
//
// The paper's simulation does not address inter-family deadlock (two
// families each holding an object the other wants will wait forever under
// plain 2PL). Any deployable system needs a resolution policy, so the
// directory maintains the family-level waits-for relation implied by its
// queues and pending upgrades, checks for cycles whenever a wait is added or
// re-pointed, and aborts the *youngest* waiting family in the cycle. Age is
// the root TxID of the family's first attempt, kept stable across retries
// (wound-wait style), so a repeatedly victimized root eventually becomes
// the oldest in any cycle and is guaranteed to win — no starvation.

// WaitEdge is one family-level waits-for edge: From is queued (or upgrading)
// behind a lock To currently holds. Edge summaries are what a partitioned
// directory's shards exchange so inter-shard cycles stay detectable (see
// package directory).
type WaitEdge struct {
	From ids.FamilyID
	To   ids.FamilyID
}

// HasWaiters reports whether any family is queued or upgrading here. The
// sharded router uses it as an O(1) precheck: a cycle spanning shards needs
// waiting families in at least two of them.
func (d *Directory) HasWaiters() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.waitObjs) > 0
}

// WaitEdges summarizes this directory's waits-for relation: the edge list
// plus the waiting families' deadlock ages. The sharded router unions the
// summaries of every shard and runs the same cycle search findDeadlockVictim
// performs locally.
func (d *Directory) WaitEdges() ([]WaitEdge, map[ids.FamilyID]uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	adj, ages := d.buildWaitsForLocked()
	var edges []WaitEdge
	for from, tos := range adj {
		for _, to := range tos {
			edges = append(edges, WaitEdge{From: from, To: to})
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	return edges, ages
}

// AbortVictim cancels every queued request and pending upgrade of victim in
// this directory and returns the deadlock-abort events for its site(s). It
// is the externally driven form of the abort performed when local detection
// picks a victim; the sharded router calls it on every shard once an
// inter-shard cycle is found.
func (d *Directory) AbortVictim(victim ids.FamilyID) []Event {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.abortVictimLocked(victim)
}

// PurgeFamily silently removes family from every queue and upgrade list
// (no events). The sharded router uses it when the requesting family itself
// is chosen as the victim of an inter-shard cycle: the synchronous
// DeadlockAbort reply covers the notification, exactly as the local
// detector's purge does.
func (d *Directory) PurgeFamily(family ids.FamilyID) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.purgeFamilyLocked(family)
}

// buildWaitsForLocked derives the waits-for adjacency from current directory
// state: a queued family waits on every holder of that object; an upgrading
// family waits on every *other* holder. Caller holds d.mu.
func (d *Directory) buildWaitsForLocked() (map[ids.FamilyID][]ids.FamilyID, map[ids.FamilyID]uint64) {
	if len(d.waitObjs) == 0 {
		return nil, nil
	}
	adj := make(map[ids.FamilyID][]ids.FamilyID)
	ages := make(map[ids.FamilyID]uint64)
	add := func(from, to ids.FamilyID) {
		if from == to {
			return
		}
		adj[from] = append(adj[from], to)
	}
	// Only entries someone waits on can contribute edges; waitObjs indexes
	// exactly those, so idle directories pay nothing here.
	// adj/ages are maps; every consumer sorts adjacency lists before any
	// order-dependent traversal (findDeadlockVictim, directory.unionWaits).
	//lotec:unordered — builds maps only; consumers sort before traversal
	for _, e := range d.waitObjs {
		for _, q := range e.queues {
			ages[q.family] = q.age
			for _, h := range e.holders {
				add(q.family, h.family)
			}
		}
		for _, u := range e.upgrades {
			ages[u.family] = u.age
			for _, h := range e.holders {
				add(u.family, h.family)
			}
		}
	}
	return adj, ages
}

// findDeadlockVictim looks for a waits-for cycle reachable from start and,
// if one exists, returns the youngest waiting family on it. Caller holds
// d.mu.
func (d *Directory) findDeadlockVictim(start ids.FamilyID) (ids.FamilyID, bool) {
	adj, ages := d.buildWaitsForLocked()
	// Deterministic traversal order.
	//lotec:unordered — per-key in-place sort; no cross-key state.
	for f := range adj {
		s := adj[f]
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	}

	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[ids.FamilyID]int)
	var stack []ids.FamilyID
	var cycle []ids.FamilyID

	var dfs func(f ids.FamilyID) bool
	dfs = func(f ids.FamilyID) bool {
		color[f] = gray
		stack = append(stack, f)
		for _, g := range adj[f] {
			switch color[g] {
			case white:
				if dfs(g) {
					return true
				}
			case gray:
				// Found a cycle: the stack suffix from g onward.
				for i := len(stack) - 1; i >= 0; i-- {
					cycle = append(cycle, stack[i])
					if stack[i] == g {
						break
					}
				}
				return true
			}
		}
		stack = stack[:len(stack)-1]
		color[f] = black
		return false
	}

	if !dfs(start) {
		return 0, false
	}
	// Victim: the youngest (largest-age) waiting family on the cycle. All
	// cycle members wait by construction; tie-break on FamilyID for
	// determinism.
	victim := cycle[0]
	for _, f := range cycle[1:] {
		av, af := ages[victim], ages[f]
		if af > av || (af == av && f > victim) {
			victim = f
		}
	}
	return victim, true
}
