package gdo

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"lotec/internal/ids"
	"lotec/internal/o2pl"
)

// State export/import. A replicated or relocating directory shard must hand
// its full lock state — holders, queues, upgrades, page maps, copy sets and
// commit bookkeeping — to another process as bytes. The encoding is
// deterministic (maps are serialized in sorted order) so two replicas that
// applied the same op sequence export byte-identical snapshots; the chaos
// harness and the handoff state machine both rely on that.

// ErrBadSnapshot reports a malformed or truncated exported snapshot.
var ErrBadSnapshot = errors.New("gdo: bad snapshot")

// exportVersion is bumped whenever the snapshot layout changes.
const exportVersion = 1

// exportMagic guards against feeding arbitrary bytes to Import.
const exportMagic = 0x4c474458 // "LGDX"

type snapWriter struct{ buf []byte }

func (w *snapWriter) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *snapWriter) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *snapWriter) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }

type snapReader struct {
	buf []byte
	off int
	err error
}

func (r *snapReader) fail() {
	if r.err == nil {
		r.err = fmt.Errorf("%w: truncated at offset %d", ErrBadSnapshot, r.off)
	}
}

func (r *snapReader) u8() uint8 {
	if r.err != nil || r.off+1 > len(r.buf) {
		r.fail()
		return 0
	}
	v := r.buf[r.off]
	r.off++
	return v
}

func (r *snapReader) u32() uint32 {
	if r.err != nil || r.off+4 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v
}

func (r *snapReader) u64() uint64 {
	if r.err != nil || r.off+8 > len(r.buf) {
		r.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v
}

// count reads a u32 length and bounds it against the remaining bytes with a
// conservative per-element floor, so a corrupt length cannot drive a huge
// allocation.
func (r *snapReader) count(elemFloor int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if elemFloor < 1 {
		elemFloor = 1
	}
	if n < 0 || n*elemFloor > len(r.buf)-r.off {
		r.fail()
		return 0
	}
	return n
}

// Export serializes the directory's entire state deterministically. The
// result can be fed to Import to reconstruct an equivalent directory, and is
// byte-identical across replicas that applied the same operation sequence.
func (d *Directory) Export() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()

	w := &snapWriter{buf: make([]byte, 0, 64+64*len(d.entries))}
	w.u32(exportMagic)
	w.u8(exportVersion)
	w.u32(uint32(d.nodes))

	w.u64(d.commitSeq)
	fams := make([]ids.FamilyID, 0, len(d.commitOrder))
	for f := range d.commitOrder {
		fams = append(fams, f)
	}
	sort.Slice(fams, func(i, j int) bool { return fams[i] < fams[j] })
	w.u32(uint32(len(fams)))
	for _, f := range fams {
		w.u64(uint64(f))
		w.u64(d.commitOrder[f])
	}

	objs := make([]ids.ObjectID, 0, len(d.entries))
	for o := range d.entries {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	w.u32(uint32(len(objs)))
	for _, o := range objs {
		e := d.entries[o]
		w.u64(uint64(e.obj))
		w.u32(uint32(e.numPages))
		w.u32(uint32(e.lastWriter))

		w.u32(uint32(len(e.holders)))
		for _, h := range e.holders {
			w.u64(uint64(h.family))
			w.u32(uint32(h.site))
			w.u8(uint8(h.mode))
			w.u32(uint32(len(h.refs)))
			for _, ref := range h.refs {
				w.u64(uint64(ref.Tx))
				w.u32(uint32(ref.Node))
			}
		}

		w.u32(uint32(len(e.queues)))
		for _, q := range e.queues {
			w.u64(uint64(q.family))
			w.u32(uint32(q.site))
			w.u64(q.age)
			w.u32(uint32(len(q.reqs)))
			for _, req := range q.reqs {
				w.u64(uint64(req.Ref.Tx))
				w.u32(uint32(req.Ref.Node))
				w.u8(uint8(req.Mode))
			}
		}

		w.u32(uint32(len(e.upgrades)))
		for _, u := range e.upgrades {
			w.u64(uint64(u.family))
			w.u32(uint32(u.site))
			w.u64(u.age)
			w.u64(uint64(u.ref.Tx))
			w.u32(uint32(u.ref.Node))
		}

		for _, loc := range e.pageMap {
			w.u32(uint32(loc.Node))
			w.u64(loc.Version)
		}

		nodes := make([]ids.NodeID, 0, len(e.copySet))
		for n := range e.copySet {
			nodes = append(nodes, n)
		}
		sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
		w.u32(uint32(len(nodes)))
		for _, n := range nodes {
			w.u32(uint32(n))
		}
	}
	return w.buf
}

// Import reconstructs a directory from an Export snapshot.
func Import(data []byte) (*Directory, error) {
	r := &snapReader{buf: data}
	if r.u32() != exportMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	if v := r.u8(); v != exportVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, v)
	}
	nodes := int(r.u32())
	d := New(nodes)

	d.commitSeq = r.u64()
	for i, n := 0, r.count(16); i < n; i++ {
		f := ids.FamilyID(r.u64())
		d.commitOrder[f] = r.u64()
	}

	for i, n := 0, r.count(16); i < n; i++ {
		e := &entry{
			obj:        ids.ObjectID(r.u64()),
			numPages:   int(r.u32()),
			lastWriter: ids.NodeID(r.u32()),
			copySet:    make(map[ids.NodeID]bool),
		}
		if r.err == nil && (e.numPages < 0 || e.numPages > len(data)) {
			r.fail()
		}

		for j, hn := 0, r.count(17); j < hn; j++ {
			h := &familyHold{
				family: ids.FamilyID(r.u64()),
				site:   ids.NodeID(r.u32()),
				mode:   o2pl.Mode(r.u8()),
			}
			for k, rn := 0, r.count(12); k < rn; k++ {
				h.refs = append(h.refs, ids.TxRef{Tx: ids.TxID(r.u64()), Node: ids.NodeID(r.u32())})
			}
			e.holders = append(e.holders, h)
		}

		for j, qn := 0, r.count(24); j < qn; j++ {
			q := &familyQueue{
				family: ids.FamilyID(r.u64()),
				site:   ids.NodeID(r.u32()),
				age:    r.u64(),
			}
			for k, rn := 0, r.count(13); k < rn; k++ {
				q.reqs = append(q.reqs, QueuedReq{
					Ref:  ids.TxRef{Tx: ids.TxID(r.u64()), Node: ids.NodeID(r.u32())},
					Mode: o2pl.Mode(r.u8()),
				})
			}
			e.queues = append(e.queues, q)
		}

		for j, un := 0, r.count(32); j < un; j++ {
			e.upgrades = append(e.upgrades, &upgradeWait{
				family: ids.FamilyID(r.u64()),
				site:   ids.NodeID(r.u32()),
				age:    r.u64(),
				ref:    ids.TxRef{Tx: ids.TxID(r.u64()), Node: ids.NodeID(r.u32())},
			})
		}

		if r.err == nil {
			e.pageMap = make([]PageLoc, e.numPages)
			for p := range e.pageMap {
				e.pageMap[p] = PageLoc{Node: ids.NodeID(r.u32()), Version: r.u64()}
			}
		}

		for j, cn := 0, r.count(4); j < cn; j++ {
			e.copySet[ids.NodeID(r.u32())] = true
		}

		if r.err != nil {
			return nil, r.err
		}
		if _, dup := d.entries[e.obj]; dup {
			return nil, fmt.Errorf("%w: duplicate object %v", ErrBadSnapshot, e.obj)
		}
		d.entries[e.obj] = e
		d.noteWaitersLocked(e)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, len(data)-r.off)
	}
	return d, nil
}
