package gdo

import (
	"fmt"

	"lotec/internal/ids"
	"lotec/internal/o2pl"
)

// AcquireStatus is the immediate outcome of a global acquisition request.
type AcquireStatus int

// Acquisition outcomes.
const (
	// GrantedNow: the lock (or upgrade) was granted synchronously; the
	// reply carries the page map.
	GrantedNow AcquireStatus = iota + 1
	// Queued: the request was linked into the family's NonHoldersPtr list
	// (Alg 4.2); a Grant event will be delivered later.
	Queued
	// DeadlockAbort: granting could never happen — queuing this request
	// closes a waits-for cycle and this family was chosen as victim. The
	// requesting root transaction must abort and may retry.
	DeadlockAbort
)

// String implements fmt.Stringer.
func (s AcquireStatus) String() string {
	switch s {
	case GrantedNow:
		return "granted"
	case Queued:
		return "queued"
	case DeadlockAbort:
		return "deadlock-abort"
	default:
		return fmt.Sprintf("acquire-status(%d)", int(s))
	}
}

// AcquireResult is the synchronous reply to an Acquire.
type AcquireResult struct {
	Status     AcquireStatus
	Mode       o2pl.Mode // granted global mode (GrantedNow only)
	PageMap    []PageLoc // page map snapshot (GrantedNow only)
	NumPages   int
	LastWriter ids.NodeID // site of the most recent committing update
}

// EventKind discriminates deferred directory events.
type EventKind int

// Deferred event kinds.
const (
	// EventGrant delivers a deferred lock grant to a family's site: "Send
	// the list pointed to by HolderPtr and the page map to the new
	// holder's site" (Alg 4.4).
	EventGrant EventKind = iota + 1
	// EventDeadlockAbort tells a site that its family's queued request(s)
	// were cancelled as a deadlock victim.
	EventDeadlockAbort
)

// Event is a deferred directory decision that the engine must deliver to
// Site.
type Event struct {
	Kind       EventKind
	Obj        ids.ObjectID
	Family     ids.FamilyID
	Site       ids.NodeID
	Mode       o2pl.Mode   // EventGrant: granted global mode
	Reqs       []QueuedReq // the requests granted or aborted
	PageMap    []PageLoc   // EventGrant: page map snapshot
	NumPages   int
	Upgrade    bool       // EventGrant: this grant is a read→write upgrade
	LastWriter ids.NodeID // EventGrant: site of the most recent update
	// Shard is the directory partition the event originated from. The
	// single Directory always reports 0; the sharded router (package
	// directory) stamps the owning shard so the wire messages built from
	// the event stay shard-addressed.
	Shard int32
}

// Acquire implements Algorithm 4.2 (GlobalLockAcquisition) for a request by
// transaction ref of family, executing at site, in the given mode.
//
// Beyond the paper's sketch it also handles: repeat acquisitions by an
// already-holding family (granted immediately), read→write upgrades, and
// deadlock detection (victims may be this family — reported via the result —
// or another waiting family — reported via the returned events).
func (d *Directory) Acquire(obj ids.ObjectID, ref ids.TxRef, family ids.FamilyID, age uint64, site ids.NodeID, mode o2pl.Mode) (AcquireResult, []Event, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[obj]
	if !ok {
		return AcquireResult{}, nil, fmt.Errorf("%w: %v", ErrUnknownObject, obj)
	}

	if h := e.holder(family); h != nil {
		return d.acquireHolding(e, h, ref, age, site, mode)
	}

	switch {
	case e.state() == Free && len(e.upgrades) == 0:
		// "IF the lock is free THEN set the lock to held …"
		h := d.newHoldLocked(family, site, mode)
		h.refs = append(h.refs, ref)
		e.holders = append(e.holders, h)
		e.copySet[site] = true
		return d.grantedNow(e, mode), nil, nil

	case e.state() == HeldRead && mode == o2pl.Read && len(e.upgrades) == 0:
		// "ELSE IF the lock is held for Read and this is a Read request
		// THEN grant" — reader sharing across families. Blocked while an
		// upgrade is pending so upgraders are not starved by a reader
		// stream.
		h := d.newHoldLocked(family, site, o2pl.Read)
		h.refs = append(h.refs, ref)
		e.holders = append(e.holders, h)
		e.copySet[site] = true
		return d.grantedNow(e, o2pl.Read), nil, nil

	default:
		// "IF there is a list … for the requesting transaction's family
		// THEN link the requesting transaction into its family's list ELSE
		// create a new list …"
		q := e.queue(family)
		if q == nil {
			q = &familyQueue{family: family, site: site, age: age}
			e.queues = append(e.queues, q)
		}
		q.reqs = append(q.reqs, QueuedReq{Ref: ref, Mode: mode})
		d.noteWaitersLocked(e)

		if victim, cycle := d.findDeadlockVictimLocked(family); cycle {
			if victim == family {
				d.purgeFamilyLocked(family)
				return AcquireResult{Status: DeadlockAbort}, nil, nil
			}
			ev := d.abortVictimLocked(victim)
			return AcquireResult{Status: Queued}, ev, nil
		}
		return AcquireResult{Status: Queued}, nil, nil
	}
}

// acquireHolding handles a request from a family that already holds the
// lock: repeat grants and read→write upgrades. Caller holds d.mu.
func (d *Directory) acquireHolding(e *entry, h *familyHold, ref ids.TxRef, age uint64, site ids.NodeID, mode o2pl.Mode) (AcquireResult, []Event, error) {
	if mode <= h.mode {
		h.refs = append(h.refs, ref)
		return d.grantedNow(e, h.mode), nil, nil
	}
	// Upgrade request: grant in place if this family is the sole holder.
	if len(e.holders) == 1 {
		h.mode = o2pl.Write
		h.refs = append(h.refs, ref)
		return d.grantedNow(e, o2pl.Write), nil, nil
	}
	// Wait for the other reader families to drain.
	e.upgrades = append(e.upgrades, &upgradeWait{family: h.family, site: site, age: age, ref: ref})
	d.noteWaitersLocked(e)
	if victim, cycle := d.findDeadlockVictimLocked(h.family); cycle {
		if victim == h.family {
			d.dropUpgradeLocked(e, h.family)
			return AcquireResult{Status: DeadlockAbort}, nil, nil
		}
		ev := d.abortVictimLocked(victim)
		return AcquireResult{Status: Queued}, ev, nil
	}
	return AcquireResult{Status: Queued}, nil, nil
}

// grantedNow builds a GrantedNow result with a page-map snapshot. Caller
// holds d.mu.
func (d *Directory) grantedNow(e *entry, mode o2pl.Mode) AcquireResult {
	return AcquireResult{
		Status:     GrantedNow,
		Mode:       mode,
		PageMap:    append([]PageLoc(nil), e.pageMap...),
		NumPages:   e.numPages,
		LastWriter: e.lastWriter,
	}
}

// dropUpgradeLocked removes a pending upgrade for family on e.
//
//lotec:noalloc
func (d *Directory) dropUpgradeLocked(e *entry, family ids.FamilyID) {
	for i, u := range e.upgrades {
		if u.family == family {
			e.upgrades = append(e.upgrades[:i], e.upgrades[i+1:]...)
			d.noteWaitersLocked(e)
			return
		}
	}
}
