package gdo

import (
	"errors"
	"testing"

	"lotec/internal/ids"
	"lotec/internal/o2pl"
)

// ref makes a TxRef for family f (using the family id as the tx id, which is
// fine for directory-level tests) at node n.
func ref(f ids.FamilyID, n ids.NodeID) ids.TxRef {
	return ids.TxRef{Tx: f, Node: n}
}

func newDir(t *testing.T, objs ...ids.ObjectID) *Directory {
	t.Helper()
	d := New(4)
	for _, o := range objs {
		if err := d.Register(o, 3, 1); err != nil {
			t.Fatalf("Register(%v): %v", o, err)
		}
	}
	return d
}

func mustAcquire(t *testing.T, d *Directory, obj ids.ObjectID, f ids.FamilyID, n ids.NodeID, m o2pl.Mode) AcquireResult {
	t.Helper()
	res, ev, err := d.Acquire(obj, ref(f, n), f, uint64(f), n, m)
	if err != nil {
		t.Fatalf("Acquire(%v, fam %v): %v", obj, f, err)
	}
	if len(ev) != 0 {
		t.Fatalf("unexpected side events: %v", ev)
	}
	return res
}

func TestRegisterValidation(t *testing.T) {
	d := New(2)
	if err := d.Register(1, 0, 1); err == nil {
		t.Error("zero pages should fail")
	}
	if err := d.Register(1, 3, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.Register(1, 3, 1); !errors.Is(err, ErrObjectExists) {
		t.Errorf("dup register: %v", err)
	}
	if n, err := d.NumPages(1); err != nil || n != 3 {
		t.Errorf("NumPages = %d, %v", n, err)
	}
	if _, err := d.NumPages(9); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("NumPages unknown: %v", err)
	}
}

func TestInitialPageMapAtOwner(t *testing.T) {
	d := newDir(t, 5)
	pm, err := d.PageMap(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pm) != 3 {
		t.Fatalf("page map len %d", len(pm))
	}
	for i, loc := range pm {
		if loc.Node != 1 || loc.Version != 1 {
			t.Errorf("page %d loc = %+v, want node 1 v1", i, loc)
		}
	}
	cs, err := d.CopySet(5)
	if err != nil || len(cs) != 1 || cs[0] != 1 {
		t.Errorf("CopySet = %v, %v", cs, err)
	}
}

func TestHomeNodePartitioning(t *testing.T) {
	d := New(4)
	seen := map[ids.NodeID]bool{}
	for o := ids.ObjectID(0); o < 8; o++ {
		h := d.HomeNode(o)
		if h < 1 || h > 4 {
			t.Fatalf("HomeNode(%v) = %v out of range", o, h)
		}
		seen[h] = true
	}
	if len(seen) != 4 {
		t.Errorf("homes not spread: %v", seen)
	}
}

func TestAcquireFreeGrantsImmediately(t *testing.T) {
	d := newDir(t, 1)
	res := mustAcquire(t, d, 1, 100, 2, o2pl.Write)
	if res.Status != GrantedNow || res.Mode != o2pl.Write {
		t.Fatalf("res = %+v", res)
	}
	if len(res.PageMap) != 3 || res.NumPages != 3 {
		t.Errorf("grant payload: %+v", res)
	}
	if st, _ := d.State(1); st != HeldWrite {
		t.Errorf("state = %v", st)
	}
}

func TestCrossFamilyReadSharing(t *testing.T) {
	d := newDir(t, 1)
	mustAcquire(t, d, 1, 100, 2, o2pl.Read)
	res := mustAcquire(t, d, 1, 200, 3, o2pl.Read)
	if res.Status != GrantedNow {
		t.Fatalf("second reader: %+v", res)
	}
	if rc, _ := d.ReadCount(1); rc != 2 {
		t.Errorf("ReadCount = %d, want 2", rc)
	}
	if st, _ := d.State(1); st != HeldRead {
		t.Errorf("state = %v", st)
	}
}

func TestConflictingRequestQueues(t *testing.T) {
	d := newDir(t, 1)
	mustAcquire(t, d, 1, 100, 2, o2pl.Write)
	res := mustAcquire(t, d, 1, 200, 3, o2pl.Read)
	if res.Status != Queued {
		t.Fatalf("conflicting request: %+v", res)
	}
	// Same family queues again into its existing list.
	res = mustAcquire(t, d, 1, 200, 3, o2pl.Write)
	if res.Status != Queued {
		t.Fatalf("second queued request: %+v", res)
	}
}

func TestReleaseHandsToNextFamilyList(t *testing.T) {
	d := newDir(t, 1)
	mustAcquire(t, d, 1, 100, 2, o2pl.Write)
	mustAcquire(t, d, 1, 200, 3, o2pl.Read)
	mustAcquire(t, d, 1, 200, 3, o2pl.Write)
	mustAcquire(t, d, 1, 300, 4, o2pl.Read)

	ev, stamps, err := d.Release(100, 2, true, []ObjectRelease{{Obj: 1, Dirty: []ids.PageNum{0, 2}}})
	if err != nil {
		t.Fatal(err)
	}
	// Dirty pages recorded at site 2, version bumped to 2.
	if len(stamps) != 2 || stamps[0].Version != 2 || stamps[1].Version != 2 {
		t.Fatalf("stamps = %+v", stamps)
	}
	pm, _ := d.PageMap(1)
	if pm[0].Node != 2 || pm[0].Version != 2 || pm[1].Node != 1 || pm[1].Version != 1 || pm[2].Node != 2 {
		t.Errorf("page map = %+v", pm)
	}
	// Family 200's whole list is granted (mode W because it contains a W).
	if len(ev) != 1 {
		t.Fatalf("events = %+v", ev)
	}
	g := ev[0]
	if g.Kind != EventGrant || g.Family != 200 || g.Site != 3 || g.Mode != o2pl.Write || len(g.Reqs) != 2 {
		t.Errorf("grant = %+v", g)
	}
	if g.Upgrade {
		t.Error("not an upgrade")
	}
	// Family 300 still queued.
	if st, _ := d.State(1); st != HeldWrite {
		t.Errorf("state = %v", st)
	}
}

func TestReleaseFreesWhenNoWaiters(t *testing.T) {
	d := newDir(t, 1)
	mustAcquire(t, d, 1, 100, 2, o2pl.Read)
	ev, stamps, err := d.Release(100, 2, true, []ObjectRelease{{Obj: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 0 || len(stamps) != 0 {
		t.Errorf("ev=%v stamps=%v", ev, stamps)
	}
	if st, _ := d.State(1); st != Free {
		t.Errorf("state = %v", st)
	}
}

func TestReleaseValidation(t *testing.T) {
	d := newDir(t, 1)
	if _, _, err := d.Release(100, 2, true, []ObjectRelease{{Obj: 9}}); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("unknown obj: %v", err)
	}
	if _, _, err := d.Release(100, 2, true, []ObjectRelease{{Obj: 1}}); !errors.Is(err, ErrNotHolder) {
		t.Errorf("not holder: %v", err)
	}
	mustAcquire(t, d, 1, 100, 2, o2pl.Read)
	if _, _, err := d.Release(100, 2, true, []ObjectRelease{{Obj: 1, Dirty: []ids.PageNum{0}}}); !errors.Is(err, ErrBadRelease) {
		t.Errorf("dirty under read lock: %v", err)
	}
}

func TestReleaseDirtyPageOutOfRange(t *testing.T) {
	d := newDir(t, 1)
	mustAcquire(t, d, 1, 100, 2, o2pl.Write)
	if _, _, err := d.Release(100, 2, true, []ObjectRelease{{Obj: 1, Dirty: []ids.PageNum{7}}}); !errors.Is(err, ErrBadRelease) {
		t.Errorf("out-of-range dirty: %v", err)
	}
}

func TestRepeatAcquireByHoldingFamily(t *testing.T) {
	d := newDir(t, 1)
	mustAcquire(t, d, 1, 100, 2, o2pl.Write)
	// Another transaction of the same family (fresh ref) gets it at once.
	res, ev, err := d.Acquire(1, ids.TxRef{Tx: 101, Node: 2}, 100, uint64(100), 2, o2pl.Read)
	if err != nil || len(ev) != 0 || res.Status != GrantedNow || res.Mode != o2pl.Write {
		t.Fatalf("repeat acquire: %+v, %v, %v", res, ev, err)
	}
}

func TestUpgradeSoleHolderImmediate(t *testing.T) {
	d := newDir(t, 1)
	mustAcquire(t, d, 1, 100, 2, o2pl.Read)
	res := mustAcquire(t, d, 1, 100, 2, o2pl.Write)
	if res.Status != GrantedNow || res.Mode != o2pl.Write {
		t.Fatalf("sole-holder upgrade: %+v", res)
	}
	if st, _ := d.State(1); st != HeldWrite {
		t.Errorf("state = %v", st)
	}
}

func TestUpgradeWaitsForOtherReaders(t *testing.T) {
	d := newDir(t, 1)
	mustAcquire(t, d, 1, 100, 2, o2pl.Read)
	mustAcquire(t, d, 1, 200, 3, o2pl.Read)
	res := mustAcquire(t, d, 1, 100, 2, o2pl.Write)
	if res.Status != Queued {
		t.Fatalf("upgrade with other readers: %+v", res)
	}
	// New readers are blocked while an upgrade pends (anti-starvation).
	res = mustAcquire(t, d, 1, 300, 4, o2pl.Read)
	if res.Status != Queued {
		t.Fatalf("reader during pending upgrade: %+v", res)
	}
	// Other reader releases → upgrade granted, then still held-write so the
	// queued reader of family 300 keeps waiting.
	ev, _, err := d.Release(200, 3, true, []ObjectRelease{{Obj: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || ev[0].Kind != EventGrant || !ev[0].Upgrade || ev[0].Family != 100 || ev[0].Mode != o2pl.Write {
		t.Fatalf("upgrade grant = %+v", ev)
	}
	if st, _ := d.State(1); st != HeldWrite {
		t.Errorf("state = %v", st)
	}
}

func TestUpgradeDeadlockBetweenTwoUpgraders(t *testing.T) {
	d := newDir(t, 1)
	mustAcquire(t, d, 1, 100, 2, o2pl.Read)
	mustAcquire(t, d, 1, 200, 3, o2pl.Read)
	res := mustAcquire(t, d, 1, 100, 2, o2pl.Write)
	if res.Status != Queued {
		t.Fatalf("first upgrade: %+v", res)
	}
	// Second upgrader closes the cycle; it is the younger family → victim.
	res2, ev, err := d.Acquire(1, ref(200, 3), 200, uint64(200), 3, o2pl.Write)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Status != DeadlockAbort {
		t.Fatalf("second upgrade = %+v (events %v)", res2, ev)
	}
	// Victim family aborts: releases its read hold; family 100's upgrade
	// should then be granted.
	ev, _, err = d.Release(200, 3, true, []ObjectRelease{{Obj: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || !ev[0].Upgrade || ev[0].Family != 100 {
		t.Fatalf("post-abort events = %+v", ev)
	}
}

func TestClassicTwoObjectDeadlock(t *testing.T) {
	d := newDir(t, 1, 2)
	mustAcquire(t, d, 1, 100, 2, o2pl.Write) // F100 holds O1
	mustAcquire(t, d, 2, 200, 3, o2pl.Write) // F200 holds O2
	res := mustAcquire(t, d, 2, 100, 2, o2pl.Write)
	if res.Status != Queued {
		t.Fatalf("F100 on O2: %+v", res)
	}
	// F200 requesting O1 closes the cycle; F200 is younger → victim is the
	// requester itself.
	res2, ev, err := d.Acquire(1, ref(200, 3), 200, uint64(200), 3, o2pl.Write)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Status != DeadlockAbort || len(ev) != 0 {
		t.Fatalf("deadlock not detected: %+v, %v", res2, ev)
	}
	// Victim releases its holds; F100's queued O2 request is granted.
	ev, _, err = d.Release(200, 3, true, []ObjectRelease{{Obj: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || ev[0].Kind != EventGrant || ev[0].Family != 100 || ev[0].Obj != 2 {
		t.Fatalf("grant after victim release = %+v", ev)
	}
}

func TestDeadlockVictimIsYoungestWhenOlderRequests(t *testing.T) {
	d := newDir(t, 1, 2)
	mustAcquire(t, d, 1, 200, 2, o2pl.Write) // younger F200 holds O1
	mustAcquire(t, d, 2, 100, 3, o2pl.Write) // older F100 holds O2
	res := mustAcquire(t, d, 2, 200, 2, o2pl.Write)
	if res.Status != Queued {
		t.Fatalf("F200 on O2: %+v", res)
	}
	// Older F100 requests O1, closing the cycle. Victim must be the younger
	// F200 (waiting on O2) — delivered as a side event; F100 stays queued.
	res2, ev, err := d.Acquire(1, ref(100, 3), 100, uint64(100), 3, o2pl.Write)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Status != Queued {
		t.Fatalf("older requester should queue: %+v", res2)
	}
	if len(ev) != 1 || ev[0].Kind != EventDeadlockAbort || ev[0].Family != 200 || ev[0].Obj != 2 {
		t.Fatalf("victim events = %+v", ev)
	}
	// Victim family releases its O1 hold; F100 gets O1.
	ev, _, err = d.Release(200, 2, true, []ObjectRelease{{Obj: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 || ev[0].Kind != EventGrant || ev[0].Family != 100 || ev[0].Obj != 1 {
		t.Fatalf("grant = %+v", ev)
	}
}

func TestCancelRequest(t *testing.T) {
	d := newDir(t, 1)
	mustAcquire(t, d, 1, 100, 2, o2pl.Write)
	mustAcquire(t, d, 1, 200, 3, o2pl.Write)
	ok, err := d.CancelRequest(1, 200)
	if err != nil || !ok {
		t.Fatalf("CancelRequest = %v, %v", ok, err)
	}
	ok, err = d.CancelRequest(1, 200)
	if err != nil || ok {
		t.Fatalf("second CancelRequest = %v, %v", ok, err)
	}
	if _, err := d.CancelRequest(9, 200); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("unknown object: %v", err)
	}
	// Release by holder should now free the lock with no events.
	ev, _, err := d.Release(100, 2, true, []ObjectRelease{{Obj: 1}})
	if err != nil || len(ev) != 0 {
		t.Fatalf("release: %v, %v", ev, err)
	}
}

func TestGrantEventCarriesPageMap(t *testing.T) {
	d := newDir(t, 1)
	mustAcquire(t, d, 1, 100, 2, o2pl.Write)
	mustAcquire(t, d, 1, 200, 3, o2pl.Read)
	ev, _, err := d.Release(100, 2, true, []ObjectRelease{{Obj: 1, Dirty: []ids.PageNum{1}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(ev) != 1 {
		t.Fatalf("events = %v", ev)
	}
	pm := ev[0].PageMap
	if len(pm) != 3 || pm[1].Node != 2 || pm[1].Version != 2 {
		t.Errorf("grant page map = %+v", pm)
	}
	if ev[0].NumPages != 3 {
		t.Errorf("NumPages = %d", ev[0].NumPages)
	}
}

func TestCopySetGrowsWithGrants(t *testing.T) {
	d := newDir(t, 1)
	mustAcquire(t, d, 1, 100, 2, o2pl.Read)
	mustAcquire(t, d, 1, 200, 3, o2pl.Read)
	cs, _ := d.CopySet(1)
	want := []ids.NodeID{1, 2, 3}
	if len(cs) != 3 || cs[0] != want[0] || cs[1] != want[1] || cs[2] != want[2] {
		t.Errorf("CopySet = %v, want %v", cs, want)
	}
	if _, err := d.CopySet(9); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("unknown: %v", err)
	}
}

func TestObjectsSorted(t *testing.T) {
	d := newDir(t, 3, 1, 2)
	objs := d.Objects()
	if len(objs) != 3 || objs[0] != 1 || objs[1] != 2 || objs[2] != 3 {
		t.Errorf("Objects = %v", objs)
	}
}

func TestStateAndStatusStrings(t *testing.T) {
	if Free.String() != "free" || HeldRead.String() != "held-read" || HeldWrite.String() != "held-write" {
		t.Error("LockState strings")
	}
	if LockState(9).String() == "" {
		t.Error("unknown LockState string empty")
	}
	if GrantedNow.String() != "granted" || Queued.String() != "queued" || DeadlockAbort.String() != "deadlock-abort" {
		t.Error("AcquireStatus strings")
	}
	if AcquireStatus(9).String() == "" {
		t.Error("unknown AcquireStatus string empty")
	}
}

func TestAcquireUnknownObject(t *testing.T) {
	d := New(2)
	_, _, err := d.Acquire(1, ref(100, 2), 100, uint64(100), 2, o2pl.Read)
	if !errors.Is(err, ErrUnknownObject) {
		t.Errorf("got %v", err)
	}
}

func TestStateUnknownObject(t *testing.T) {
	d := New(2)
	if _, err := d.State(1); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("State: %v", err)
	}
	if _, err := d.ReadCount(1); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("ReadCount: %v", err)
	}
	if _, err := d.PageMap(1); !errors.Is(err, ErrUnknownObject) {
		t.Errorf("PageMap: %v", err)
	}
}

func TestReadCountZeroWhenWriteHeld(t *testing.T) {
	d := newDir(t, 1)
	mustAcquire(t, d, 1, 100, 2, o2pl.Write)
	if rc, _ := d.ReadCount(1); rc != 0 {
		t.Errorf("ReadCount = %d", rc)
	}
}
