package gdo

import (
	"fmt"
	"slices"

	"lotec/internal/ids"
	"lotec/internal/o2pl"
)

// ObjectRelease names one object being released by a family, with the dirty
// pages piggybacked on the release message ("Dirty page information may be
// piggybacked on each global lock release message", §4.1). Dirty is empty
// for aborts and read-only access.
type ObjectRelease struct {
	Obj   ids.ObjectID
	Dirty []ids.PageNum
}

// PageStamp reports the new version the directory assigned to one updated
// page, so the releasing site can restamp its local copy.
type PageStamp struct {
	Obj     ids.ObjectID
	Page    ids.PageNum
	Version uint64
}

// Release implements Algorithm 4.4 (GlobalLockRelease): family, executing at
// site, releases its holds on every object in rels, recording the releasing
// site as the location of each updated page and handing freed locks to the
// next waiting family (one family list per object, per the paper).
//
// The returned events carry deferred grants (and any deadlock aborts that
// surface as waiters are re-pointed at new holders); stamps carry the new
// page versions for the releasing site.
func (d *Directory) Release(family ids.FamilyID, site ids.NodeID, commit bool, rels []ObjectRelease) ([]Event, []PageStamp, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if commit {
		if _, ok := d.commitOrder[family]; !ok {
			d.commitSeq++
			d.commitOrder[family] = d.commitSeq
		}
	}

	var stamps []PageStamp
	d.touchScr = d.touchScr[:0]
	for _, rel := range rels {
		e, ok := d.entries[rel.Obj]
		if !ok {
			return nil, nil, fmt.Errorf("%w: %v", ErrUnknownObject, rel.Obj)
		}
		h := e.holder(family)
		if h == nil {
			return nil, nil, fmt.Errorf("%w: %v releasing %v", ErrNotHolder, family, rel.Obj)
		}
		// "Record the NodeIdentifier of the updating site in the GDO for
		// each updated page."
		for _, p := range rel.Dirty {
			if int(p) < 0 || int(p) >= e.numPages {
				return nil, nil, fmt.Errorf("%w: dirty page %v/p%d out of range", ErrBadRelease, rel.Obj, p)
			}
			if h.mode != o2pl.Write {
				return nil, nil, fmt.Errorf("%w: %v dirtied %v under a read lock", ErrBadRelease, family, rel.Obj)
			}
			loc := &e.pageMap[p]
			loc.Node = site
			loc.Version++
			stamps = append(stamps, PageStamp{Obj: rel.Obj, Page: p, Version: loc.Version})
		}
		if len(rel.Dirty) > 0 {
			e.lastWriter = site
		}
		d.removeHolderLocked(e, family)
		d.touchScr = append(d.touchScr, e)
	}

	// Defensive: the family is finishing; drop any stale queued requests or
	// pending upgrades it left anywhere (none exist on clean paths).
	d.purgeFamilyLocked(family)

	var events []Event
	for _, e := range d.touchScr {
		events = append(events, d.scheduleLocked(e)...)
	}
	return events, stamps, nil
}

// scheduleLocked hands the lock of e to the next eligible party and returns
// the resulting events. Caller holds d.mu.
func (d *Directory) scheduleLocked(e *entry) []Event {
	var events []Event

	// A pending upgrade whose family is now the sole holder wins first.
	if len(e.holders) == 1 && len(e.upgrades) > 0 {
		h := e.holders[0]
		for i, u := range e.upgrades {
			if u.family == h.family {
				e.upgrades = append(e.upgrades[:i], e.upgrades[i+1:]...)
				d.noteWaitersLocked(e)
				h.mode = o2pl.Write
				h.refs = append(h.refs, u.ref)
				events = append(events, Event{
					Kind:       EventGrant,
					Obj:        e.obj,
					Family:     h.family,
					Site:       h.site,
					Mode:       o2pl.Write,
					Reqs:       []QueuedReq{{Ref: u.ref, Mode: o2pl.Write}},
					PageMap:    append([]PageLoc(nil), e.pageMap...),
					NumPages:   e.numPages,
					Upgrade:    true,
					LastWriter: e.lastWriter,
				})
				break
			}
		}
	}

	// "IF no other transaction is waiting for the lock THEN set LockState to
	// Free … ELSE unlink the next transaction list from NonHoldersPtr and
	// link onto HolderPtr; send the list … and the page map to the new
	// holder's site."
	if len(e.holders) == 0 && len(e.queues) > 0 {
		q := e.queues[0]
		e.queues = e.queues[1:]
		d.noteWaitersLocked(e)
		mode := o2pl.Read
		for _, r := range q.reqs {
			if r.Mode == o2pl.Write {
				mode = o2pl.Write
				break
			}
		}
		h := d.newHoldLocked(q.family, q.site, mode)
		for _, r := range q.reqs {
			h.refs = append(h.refs, r.Ref)
		}
		e.holders = append(e.holders, h)
		e.copySet[q.site] = true
		events = append(events, Event{
			Kind:       EventGrant,
			Obj:        e.obj,
			Family:     q.family,
			Site:       q.site,
			Mode:       mode,
			Reqs:       q.reqs,
			PageMap:    append([]PageLoc(nil), e.pageMap...),
			NumPages:   e.numPages,
			LastWriter: e.lastWriter,
		})
	}

	// Re-pointing waiters at the new holder can close waits-for cycles that
	// enqueue-time detection could not see; re-check every family still
	// queued here. The family IDs are snapshotted (into reused scratch)
	// because an abort may edit e.queues mid-sweep.
	d.famScr = d.famScr[:0]
	for _, q := range e.queues {
		d.famScr = append(d.famScr, q.family)
	}
	for _, f := range d.famScr {
		if victim, cycle := d.findDeadlockVictimLocked(f); cycle {
			events = append(events, d.abortVictimLocked(victim)...)
		}
	}
	return events
}

// CancelRequest withdraws any queued requests and pending upgrades of
// family on obj (used when the engine unwinds a waiting transaction, e.g.
// on external abort). It reports whether anything was removed.
//
//lotec:noalloc
func (d *Directory) CancelRequest(obj ids.ObjectID, family ids.FamilyID) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[obj]
	if !ok {
		return false, fmt.Errorf("%w: %v", ErrUnknownObject, obj)
	}
	removed := false
	for i, q := range e.queues {
		if q.family == family {
			e.queues = append(e.queues[:i], e.queues[i+1:]...)
			removed = true
			break
		}
	}
	for i, u := range e.upgrades {
		if u.family == family {
			e.upgrades = append(e.upgrades[:i], e.upgrades[i+1:]...)
			removed = true
			break
		}
	}
	if removed {
		d.noteWaitersLocked(e)
	}
	return removed, nil
}

// waitEntriesSortedLocked returns the entries with queued requests or
// pending upgrades in ascending object order. Only waitObjs entries can
// contain a waiting family (noteWaitersLocked keeps the index exact), and
// sorting makes the purge/abort sweeps deterministic — iterating
// d.entries directly would visit (and, for aborts, emit events) in map
// order. The returned slice is the reused entScr scratch; it is valid only
// until the next call. Caller holds d.mu.
//
//lotec:noalloc
func (d *Directory) waitEntriesSortedLocked() []*entry {
	d.entScr = d.entScr[:0]
	for _, e := range d.waitObjs {
		d.entScr = append(d.entScr, e)
	}
	slices.SortFunc(d.entScr, cmpEntryObj)
	return d.entScr
}

// cmpEntryObj orders entries by object ID. Package-level rather than a
// closure so the noalloc sort call site stays literal-free.
//
//lotec:noalloc
func cmpEntryObj(a, b *entry) int {
	switch {
	case a.obj < b.obj:
		return -1
	case a.obj > b.obj:
		return 1
	}
	return 0
}

// purgeFamilyLocked silently removes family from every queue and upgrade
// list. Caller holds d.mu.
//
//lotec:noalloc
func (d *Directory) purgeFamilyLocked(family ids.FamilyID) {
	for _, e := range d.waitEntriesSortedLocked() {
		removed := false
		for i := 0; i < len(e.queues); i++ {
			if e.queues[i].family == family {
				e.queues = append(e.queues[:i], e.queues[i+1:]...)
				i--
				removed = true
			}
		}
		for i := 0; i < len(e.upgrades); i++ {
			if e.upgrades[i].family == family {
				e.upgrades = append(e.upgrades[:i], e.upgrades[i+1:]...)
				i--
				removed = true
			}
		}
		if removed {
			d.noteWaitersLocked(e)
		}
	}
}

// abortVictimLocked purges victim's waits everywhere and builds the abort
// events telling its site to fail the parked requests. Caller holds d.mu.
func (d *Directory) abortVictimLocked(victim ids.FamilyID) []Event {
	var events []Event
	for _, e := range d.waitEntriesSortedLocked() {
		for i := 0; i < len(e.queues); i++ {
			q := e.queues[i]
			if q.family != victim {
				continue
			}
			e.queues = append(e.queues[:i], e.queues[i+1:]...)
			i--
			events = append(events, Event{
				Kind:   EventDeadlockAbort,
				Obj:    e.obj,
				Family: victim,
				Site:   q.site,
				Reqs:   q.reqs,
			})
		}
		for i := 0; i < len(e.upgrades); i++ {
			u := e.upgrades[i]
			if u.family != victim {
				continue
			}
			e.upgrades = append(e.upgrades[:i], e.upgrades[i+1:]...)
			i--
			events = append(events, Event{
				Kind:   EventDeadlockAbort,
				Obj:    e.obj,
				Family: victim,
				Site:   u.site,
				Reqs:   []QueuedReq{{Ref: u.ref, Mode: o2pl.Write}},
			})
		}
		d.noteWaitersLocked(e)
	}
	return events
}
