// Package gdo implements the Global Directory of Objects of §4.1 of the
// paper (after [MGB96]): the per-object global lock state (Figure 1 —
// LockState, ReadCount, HolderPtr, NonHoldersPtr) and the page map that
// records which site stores the most up-to-date version of each page.
//
// The directory arbitrates between transaction *families*; all intra-family
// scheduling is local (package o2pl). Algorithm 4.2 (GlobalLockAcquisition)
// and Algorithm 4.4 (GlobalLockRelease) are implemented by Acquire and
// Release. Two productionization extensions beyond the paper's sketches are
// included and documented in DESIGN.md: read→write lock upgrades for
// families whose later sub-transactions need stronger access, and
// inter-family deadlock detection on the waits-for graph with
// youngest-family victim selection (the paper's simulation sidesteps both).
//
// A Directory holds one partition's worth of state. The paper partitions
// and replicates the GDO for scale/reliability; package directory realizes
// the partitioning — a Sharded router over N Directory instances, one per
// shard — while HomeNode keeps the cost model's per-object message
// attribution. A deployment with a single partition (the default) uses one
// Directory exactly as before.
package gdo

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"lotec/internal/ids"
	"lotec/internal/o2pl"
)

// Directory errors.
var (
	ErrUnknownObject = errors.New("gdo: unknown object")
	ErrObjectExists  = errors.New("gdo: object already registered")
	ErrNotHolder     = errors.New("gdo: family does not hold the lock")
	ErrBadRelease    = errors.New("gdo: invalid release")
)

// LockState is the global state of one object's lock (Figure 1).
type LockState int

// Global lock states.
const (
	Free LockState = iota + 1
	HeldRead
	HeldWrite
)

// String implements fmt.Stringer.
func (s LockState) String() string {
	switch s {
	case Free:
		return "free"
	case HeldRead:
		return "held-read"
	case HeldWrite:
		return "held-write"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// PageLoc records, for one page, the site storing its most up-to-date
// version and that version's number. Versions are assigned by the directory
// at global release time, monotonically per page.
type PageLoc struct {
	Node    ids.NodeID
	Version uint64
}

// QueuedReq is one transaction's queued global request.
type QueuedReq struct {
	Ref  ids.TxRef
	Mode o2pl.Mode
}

// familyHold records one family currently holding the global lock.
type familyHold struct {
	family ids.FamilyID
	site   ids.NodeID
	mode   o2pl.Mode
	refs   []ids.TxRef
}

// familyQueue is one family's list in the NonHoldersPtr list-of-lists.
type familyQueue struct {
	family ids.FamilyID
	site   ids.NodeID
	age    uint64
	reqs   []QueuedReq
}

// upgradeWait is a family holding Read that has requested Write.
type upgradeWait struct {
	family ids.FamilyID
	site   ids.NodeID
	age    uint64
	ref    ids.TxRef
}

// entry is the global directory record for one object.
type entry struct {
	obj      ids.ObjectID
	numPages int
	holders  []*familyHold
	queues   []*familyQueue
	upgrades []*upgradeWait
	pageMap  []PageLoc
	copySet  map[ids.NodeID]bool
	// lastWriter is the site of the most recent committing update. Under
	// the whole-object protocols (COTEC/OTEC) it always holds a complete
	// up-to-date copy, making it the single gather source the paper
	// describes.
	lastWriter ids.NodeID
}

// state derives the LockState from the holder list.
//
//lotec:noalloc
func (e *entry) state() LockState {
	if len(e.holders) == 0 {
		return Free
	}
	for _, h := range e.holders {
		if h.mode == o2pl.Write {
			return HeldWrite
		}
	}
	return HeldRead
}

// holder and queue scan the short per-entry lists; with state they are the
// grant/release fast path and must not allocate.
//
//lotec:noalloc
func (e *entry) holder(f ids.FamilyID) *familyHold {
	for _, h := range e.holders {
		if h.family == f {
			return h
		}
	}
	return nil
}

//lotec:noalloc
func (e *entry) queue(f ids.FamilyID) *familyQueue {
	for _, q := range e.queues {
		if q.family == f {
			return q
		}
	}
	return nil
}

// Directory is the global directory of objects. It is safe for concurrent
// use.
type Directory struct {
	mu      sync.Mutex
	entries map[ids.ObjectID]*entry // guarded by mu
	nodes   int                     // cluster size, for HomeNode; immutable

	// waitObjs indexes the entries that currently have queued requests or
	// pending upgrades, so waits-for graph construction touches only
	// objects someone is actually waiting on (the common case is none).
	waitObjs map[ids.ObjectID]*entry // guarded by mu

	// Commit-order bookkeeping: strict O2PL serializes committed families
	// in the order their (first) committing release reaches the directory.
	commitSeq   uint64                  // guarded by mu
	commitOrder map[ids.FamilyID]uint64 // guarded by mu

	// Reused hot-path scratch. Acquire and Release run on every protocol
	// crossover, so their working sets are kept on the Directory and
	// recycled: at steady state the grant/release path performs no
	// allocations (ROADMAP item 4). All guarded by mu.
	wf       wfScratch       // waits-for detector working state (deadlock.go)
	entScr   []*entry        // waitEntriesSortedLocked sweep list
	famScr   []ids.FamilyID  // scheduleLocked deadlock re-check snapshot
	touchScr []*entry        // Release touched-entry list
	holdFree []*familyHold   // familyHold freelist (records never escape)
}

// New returns an empty directory for a cluster of n nodes (n ≥ 1; used only
// by HomeNode cost attribution).
func New(n int) *Directory {
	if n < 1 {
		n = 1
	}
	return &Directory{
		entries:     make(map[ids.ObjectID]*entry),
		nodes:       n,
		waitObjs:    make(map[ids.ObjectID]*entry),
		commitOrder: make(map[ids.FamilyID]uint64),
	}
}

// noteWaitersLocked keeps waitObjs exact; it must be called after any
// mutation of e's queues or upgrades. Caller holds d.mu.
//
//lotec:noalloc
func (d *Directory) noteWaitersLocked(e *entry) {
	if len(e.queues) > 0 || len(e.upgrades) > 0 {
		d.waitObjs[e.obj] = e
	} else {
		delete(d.waitObjs, e.obj)
	}
}

// newHoldLocked returns a reset familyHold for a fresh grant, reusing a
// record (and its refs backing array) from the freelist when one is
// available. Caller holds d.mu.
//
//lotec:noalloc
func (d *Directory) newHoldLocked(f ids.FamilyID, site ids.NodeID, mode o2pl.Mode) *familyHold {
	if n := len(d.holdFree); n > 0 {
		h := d.holdFree[n-1]
		d.holdFree[n-1] = nil
		d.holdFree = d.holdFree[:n-1]
		h.family, h.site, h.mode = f, site, mode
		h.refs = h.refs[:0]
		return h
	}
	return &familyHold{family: f, site: site, mode: mode} //lotec:alloc-ok — pool miss; removeHolderLocked recycles the record
}

// removeHolderLocked unlinks family f's hold from e and recycles the record
// onto the freelist. Holds never leave the package (events carry queue
// requests, not holder refs), so the next grant may safely reuse the struct.
// Caller holds d.mu.
//
//lotec:noalloc
func (d *Directory) removeHolderLocked(e *entry, f ids.FamilyID) bool {
	for i, h := range e.holders {
		if h.family == f {
			e.holders = append(e.holders[:i], e.holders[i+1:]...)
			d.holdFree = append(d.holdFree, h)
			return true
		}
	}
	return false
}

// HomeNode returns the GDO partition (node) responsible for obj. The
// directory state itself is centralized; HomeNode exists so the simulation
// charges global lock messages to the right partition, matching the paper's
// partitioned GDO.
//
//lotec:noalloc
func (d *Directory) HomeNode(obj ids.ObjectID) ids.NodeID {
	return ids.NodeID(int64(obj)%int64(d.nodes)) + 1
}

// Register adds an object of numPages pages whose initial up-to-date copy
// (version 1) resides wholly at owner.
func (d *Directory) Register(obj ids.ObjectID, numPages int, owner ids.NodeID) error {
	if numPages <= 0 {
		return fmt.Errorf("gdo: register %v: numPages %d must be positive", obj, numPages)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.entries[obj]; dup {
		return fmt.Errorf("%w: %v", ErrObjectExists, obj)
	}
	e := &entry{
		obj:        obj,
		numPages:   numPages,
		pageMap:    make([]PageLoc, numPages),
		copySet:    map[ids.NodeID]bool{owner: true},
		lastWriter: owner,
	}
	for i := range e.pageMap {
		e.pageMap[i] = PageLoc{Node: owner, Version: 1}
	}
	d.entries[obj] = e
	return nil
}

// NumPages returns the registered extent of obj.
func (d *Directory) NumPages(obj ids.ObjectID) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[obj]
	if !ok {
		return 0, fmt.Errorf("%w: %v", ErrUnknownObject, obj)
	}
	return e.numPages, nil
}

// Objects returns all registered objects in ascending order.
func (d *Directory) Objects() []ids.ObjectID {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]ids.ObjectID, 0, len(d.entries))
	for o := range d.entries {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// State returns the global lock state of obj (diagnostics/tests).
func (d *Directory) State(obj ids.ObjectID) (LockState, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[obj]
	if !ok {
		return 0, fmt.Errorf("%w: %v", ErrUnknownObject, obj)
	}
	return e.state(), nil
}

// ReadCount returns the number of reader families currently holding obj
// (Figure 1's ReadCount).
func (d *Directory) ReadCount(obj ids.ObjectID) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[obj]
	if !ok {
		return 0, fmt.Errorf("%w: %v", ErrUnknownObject, obj)
	}
	if e.state() != HeldRead {
		return 0, nil
	}
	return len(e.holders), nil
}

// PageMap returns a copy of obj's page map.
func (d *Directory) PageMap(obj ids.ObjectID) ([]PageLoc, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[obj]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownObject, obj)
	}
	return append([]PageLoc(nil), e.pageMap...), nil
}

// CopySet returns the sites known to cache pages of obj, ascending.
func (d *Directory) CopySet(obj ids.ObjectID) ([]ids.NodeID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[obj]
	if !ok {
		return nil, fmt.Errorf("%w: %v", ErrUnknownObject, obj)
	}
	out := make([]ids.NodeID, 0, len(e.copySet))
	for n := range e.copySet {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// CommitSeq returns the family's position in the global commit order (1 is
// first), recorded when its first committing release was processed. Strict
// nested O2PL holds every lock until root commit, so this order linearizes
// all transaction conflicts — it is the serialization order tests replay.
func (d *Directory) CommitSeq(f ids.FamilyID) (uint64, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	seq, ok := d.commitOrder[f]
	return seq, ok
}

// AssignCommitSeq assigns (or returns the already-assigned) commit-order
// position for a family. In replicated topologies the sequencer lives on
// one designated shard and clients ask it for their position explicitly
// before fanning releases out to the other shards; Release's own
// skip-if-present check then leaves the assignment untouched.
func (d *Directory) AssignCommitSeq(f ids.FamilyID) uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if seq, ok := d.commitOrder[f]; ok {
		return seq
	}
	d.commitSeq++
	d.commitOrder[f] = d.commitSeq
	return d.commitSeq
}

// LastWriter returns the site of obj's most recent committing update.
func (d *Directory) LastWriter(obj ids.ObjectID) (ids.NodeID, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[obj]
	if !ok {
		return ids.NoNode, fmt.Errorf("%w: %v", ErrUnknownObject, obj)
	}
	return e.lastWriter, nil
}
