package gdo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lotec/internal/ids"
	"lotec/internal/o2pl"
)

// dirWalk drives a Directory with random acquire/release traffic from many
// single-transaction families and checks global lock safety throughout.
type dirWalk struct {
	t   *testing.T
	d   *Directory
	obj []ids.ObjectID
	// holds[f] is the set of objects family f currently holds (granted
	// synchronously or via event), with the granted mode.
	holds map[ids.FamilyID]map[ids.ObjectID]o2pl.Mode
	// queued[f] marks families with an outstanding request.
	queued map[ids.FamilyID]bool
	nextF  uint64
}

// checkSafety: for every object, holders must be one writer xor N readers,
// mirrored exactly by the walk's own book-keeping.
func (w *dirWalk) checkSafety() bool {
	for _, obj := range w.obj {
		writers, readers := 0, 0
		for _, hs := range w.holds {
			switch hs[obj] {
			case o2pl.Write:
				writers++
			case o2pl.Read:
				readers++
			}
		}
		st, err := w.d.State(obj)
		if err != nil {
			w.t.Logf("state: %v", err)
			return false
		}
		switch {
		case writers > 1, writers == 1 && readers > 0:
			w.t.Logf("%v: %d writers, %d readers", obj, writers, readers)
			return false
		case writers == 1 && st != HeldWrite:
			w.t.Logf("%v: walk sees a writer, directory says %v", obj, st)
			return false
		case writers == 0 && readers > 0 && st != HeldRead:
			w.t.Logf("%v: walk sees readers, directory says %v", obj, st)
			return false
		}
		if rc, _ := w.d.ReadCount(obj); st == HeldRead && rc != readers {
			w.t.Logf("%v: ReadCount %d, walk sees %d readers", obj, rc, readers)
			return false
		}
	}
	return true
}

// apply processes deferred events: grants update the book-keeping, deadlock
// aborts drop the victim's state entirely (its held locks are released as a
// real engine would).
func (w *dirWalk) apply(events []Event) bool {
	for _, ev := range events {
		switch ev.Kind {
		case EventGrant:
			if !w.queued[ev.Family] && !ev.Upgrade {
				w.t.Logf("grant for un-queued family %v", ev.Family)
				return false
			}
			delete(w.queued, ev.Family)
			hs := w.holds[ev.Family]
			if hs == nil {
				hs = map[ids.ObjectID]o2pl.Mode{}
				w.holds[ev.Family] = hs
			}
			hs[ev.Obj] = ev.Mode
		case EventDeadlockAbort:
			delete(w.queued, ev.Family)
			// The victim's engine aborts the root: release all its holds.
			if hs, ok := w.holds[ev.Family]; ok {
				var rels []ObjectRelease
				for obj := range hs {
					rels = append(rels, ObjectRelease{Obj: obj})
				}
				delete(w.holds, ev.Family)
				if len(rels) > 0 {
					evs, _, err := w.d.Release(ev.Family, 1, false, rels)
					if err != nil {
						w.t.Logf("victim release: %v", err)
						return false
					}
					if !w.apply(evs) {
						return false
					}
				}
			}
		}
	}
	return true
}

// TestDirectoryRandomWalkSafety: lock safety and grant/queue consistency
// hold across random multi-family traffic, including deadlock resolutions.
func TestDirectoryRandomWalkSafety(t *testing.T) {
	f := func(seed int64, opsRaw []uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		w := &dirWalk{
			t:      t,
			d:      New(4),
			holds:  map[ids.FamilyID]map[ids.ObjectID]o2pl.Mode{},
			queued: map[ids.FamilyID]bool{},
		}
		for i := 0; i < 4; i++ {
			obj := ids.ObjectID(i)
			if err := w.d.Register(obj, 2, 1); err != nil {
				return false
			}
			w.obj = append(w.obj, obj)
		}
		var families []ids.FamilyID
		newFamily := func() ids.FamilyID {
			w.nextF++
			f := ids.FamilyID(w.nextF)
			families = append(families, f)
			return f
		}
		for i := 0; i < 6; i++ {
			newFamily()
		}

		for _, op := range opsRaw {
			fam := families[rng.Intn(len(families))]
			switch op % 3 {
			case 0: // acquire a random object, unless already waiting
				if w.queued[fam] {
					continue
				}
				obj := w.obj[rng.Intn(len(w.obj))]
				mode := o2pl.Read
				if op%2 == 0 {
					mode = o2pl.Write
				}
				if cur := w.holds[fam][obj]; cur >= mode {
					continue // nothing new to request
				}
				ref := ids.TxRef{Tx: ids.TxID(uint64(fam)*1000 + uint64(op)), Node: 1}
				res, evs, err := w.d.Acquire(obj, ref, fam, uint64(fam), 1, mode)
				if err != nil {
					w.t.Logf("acquire: %v", err)
					return false
				}
				switch res.Status {
				case GrantedNow:
					hs := w.holds[fam]
					if hs == nil {
						hs = map[ids.ObjectID]o2pl.Mode{}
						w.holds[fam] = hs
					}
					hs[obj] = res.Mode
				case Queued:
					w.queued[fam] = true
				case DeadlockAbort:
					// Requester aborts: release everything it held.
					if hs, ok := w.holds[fam]; ok {
						var rels []ObjectRelease
						for o := range hs {
							rels = append(rels, ObjectRelease{Obj: o})
						}
						delete(w.holds, fam)
						if len(rels) > 0 {
							evs2, _, err := w.d.Release(fam, 1, false, rels)
							if err != nil {
								return false
							}
							if !w.apply(evs2) {
								return false
							}
						}
					}
				}
				if !w.apply(evs) {
					return false
				}
			case 1: // commit: release everything the family holds
				if w.queued[fam] {
					continue // single outstanding request per family
				}
				hs, ok := w.holds[fam]
				if !ok || len(hs) == 0 {
					continue
				}
				var rels []ObjectRelease
				for obj, mode := range hs {
					rel := ObjectRelease{Obj: obj}
					if mode == o2pl.Write && op%2 == 0 {
						rel.Dirty = []ids.PageNum{0}
					}
					rels = append(rels, rel)
				}
				delete(w.holds, fam)
				evs, _, err := w.d.Release(fam, 1, true, rels)
				if err != nil {
					w.t.Logf("release: %v", err)
					return false
				}
				if !w.apply(evs) {
					return false
				}
				// The family is finished; replace it with a fresh one.
				for i, f2 := range families {
					if f2 == fam {
						families[i] = newFamily()
						break
					}
				}
			default: // spawn extra families to churn the ID space
				if len(families) < 10 {
					newFamily()
				}
			}
			if !w.checkSafety() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestDirectoryEventualGrant: after all holders release, every queued
// family has been granted or aborted — nothing is forgotten in the queues.
func TestDirectoryEventualGrant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := New(2)
		if err := d.Register(1, 2, 1); err != nil {
			return false
		}
		// One writer holds; k families queue with random modes.
		if _, _, err := d.Acquire(1, ids.TxRef{Tx: 1, Node: 1}, 1, 1, 1, o2pl.Write); err != nil {
			return false
		}
		waiting := map[ids.FamilyID]bool{}
		for i := 0; i < 2+rng.Intn(5); i++ {
			fam := ids.FamilyID(10 + i)
			mode := o2pl.Read
			if rng.Intn(2) == 0 {
				mode = o2pl.Write
			}
			res, _, err := d.Acquire(1, ids.TxRef{Tx: ids.TxID(100 + i), Node: 2}, fam, uint64(fam), 2, mode)
			if err != nil || res.Status != Queued {
				return false
			}
			waiting[fam] = true
		}
		// Drain: release the writer, then keep releasing whoever gets
		// granted until the queues empty.
		current := []ids.FamilyID{1}
		for steps := 0; steps < 100 && len(current) > 0; steps++ {
			fam := current[0]
			current = current[1:]
			evs, _, err := d.Release(fam, 1, true, []ObjectRelease{{Obj: 1}})
			if err != nil {
				return false
			}
			for _, ev := range evs {
				if ev.Kind == EventGrant {
					delete(waiting, ev.Family)
					current = append(current, ev.Family)
				}
				if ev.Kind == EventDeadlockAbort {
					delete(waiting, ev.Family)
				}
			}
		}
		return len(waiting) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
