package gdo

import (
	"fmt"
	"sort"
	"strings"

	"lotec/internal/ids"
)

// DebugDump renders the directory's lock state for diagnostics: every
// non-free entry with its holders, queues and pending upgrades.
func (d *Directory) DebugDump() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var b strings.Builder
	objs := make([]ids.ObjectID, 0, len(d.entries))
	for o := range d.entries {
		objs = append(objs, o)
	}
	sort.Slice(objs, func(i, j int) bool { return objs[i] < objs[j] })
	for _, oi := range objs {
		e := d.entries[oi]
		if len(e.holders) == 0 && len(e.queues) == 0 && len(e.upgrades) == 0 {
			continue
		}
		fmt.Fprintf(&b, "%v state=%v", e.obj, e.state())
		for _, h := range e.holders {
			fmt.Fprintf(&b, " holder{fam=%v site=%v mode=%v refs=%d}", h.family, h.site, h.mode, len(h.refs))
		}
		for _, q := range e.queues {
			fmt.Fprintf(&b, " queue{fam=%v site=%v age=%d reqs=%v}", q.family, q.site, q.age, q.reqs)
		}
		for _, u := range e.upgrades {
			fmt.Fprintf(&b, " upgrade{fam=%v site=%v age=%d}", u.family, u.site, u.age)
		}
		b.WriteString("\n")
	}
	return b.String()
}
