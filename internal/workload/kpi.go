package workload

import "lotec/internal/stats"

// ClassKPI is one class's measured key performance indicators for one run
// — the per-class rows of the calibrate table.
type ClassKPI struct {
	Class     string  `json:"class"`
	Roots     int64   `json:"roots"`
	Commits   int64   `json:"commits"`
	Aborts    int64   `json:"aborts"`
	AbortRate float64 `json:"abort_rate"`
	// Latency of committed roots in nanoseconds (virtual time on the
	// simulator, wall time on TCP).
	LatP50Ns  int64   `json:"lat_p50_ns"`
	LatP95Ns  int64   `json:"lat_p95_ns"`
	LatP99Ns  int64   `json:"lat_p99_ns"`
	LatMeanNs float64 `json:"lat_mean_ns"`
}

// KPICollector accumulates per-class outcomes. Classes report in
// registration order (spec order), never map order, so output is
// deterministic. Not safe for concurrent use.
type KPICollector struct {
	order   []string
	byClass map[string]*classAcc
}

type classAcc struct {
	roots   int64
	commits int64
	aborts  int64
	lat     stats.Histogram
}

// NewKPICollector pre-registers the given classes (usually
// Workload.ClassNames) so they appear in the output even with zero
// traffic. The legacy driver's empty class name registers as "all".
func NewKPICollector(classes []string) *KPICollector {
	k := &KPICollector{byClass: make(map[string]*classAcc)}
	for _, c := range classes {
		k.class(c)
	}
	return k
}

func (k *KPICollector) class(name string) *classAcc {
	if name == "" {
		name = "all"
	}
	if acc, ok := k.byClass[name]; ok {
		return acc
	}
	acc := &classAcc{}
	k.byClass[name] = acc
	k.order = append(k.order, name)
	return acc
}

// Observe records one root outcome: its class, latency (only meaningful
// for commits) and whether it committed.
func (k *KPICollector) Observe(class string, latencyNs int64, committed bool) {
	acc := k.class(class)
	acc.roots++
	if committed {
		acc.commits++
		acc.lat.Record(latencyNs)
	} else {
		acc.aborts++
	}
}

// Rows returns the per-class KPI table in registration order.
func (k *KPICollector) Rows() []ClassKPI {
	rows := make([]ClassKPI, 0, len(k.order))
	for _, name := range k.order {
		acc := k.byClass[name]
		row := ClassKPI{
			Class:     name,
			Roots:     acc.roots,
			Commits:   acc.commits,
			Aborts:    acc.aborts,
			LatP50Ns:  acc.lat.Quantile(0.50),
			LatP95Ns:  acc.lat.Quantile(0.95),
			LatP99Ns:  acc.lat.Quantile(0.99),
			LatMeanNs: acc.lat.Mean(),
		}
		if acc.roots > 0 {
			row.AbortRate = float64(acc.aborts) / float64(acc.roots)
		}
		rows = append(rows, row)
	}
	return rows
}
