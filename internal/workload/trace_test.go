package workload

import (
	"fmt"
	"math"
	"path/filepath"
	"reflect"
	"testing"
)

// TestTraceRoundTrip: SaveTrace → LoadTrace reproduces the normalized
// distribution exactly, and the JSONL encoding of the same weights parses
// to the identical result — CSV and JSONL are interchangeable sources.
func TestTraceRoundTrip(t *testing.T) {
	weights := []float64{10, 5, 2.5, 1.25, 0.5, 0.25, 0.25, 0.25}
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "trace.csv")
	if err := SaveTrace(csvPath, weights); err != nil {
		t.Fatal(err)
	}
	fromCSV, err := LoadTrace(csvPath)
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, w := range weights {
		sum += w
	}
	for i := range weights {
		if got, want := fromCSV[i], weights[i]/sum; math.Abs(got-want) > 1e-12 {
			t.Errorf("rank %d: round-tripped %g, want %g", i, got, want)
		}
	}

	// The same distribution as JSONL, with ranks deliberately shuffled:
	// entries are re-sorted by rank, so line order is irrelevant.
	jsonl := ""
	for _, i := range []int{3, 0, 7, 1, 5, 2, 6, 4} {
		jsonl += fmt.Sprintf("{\"rank\": %d, \"weight\": %g}\n", i, weights[i])
	}
	fromJSONL, err := ParseTrace([]byte(jsonl))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromCSV, fromJSONL) {
		t.Errorf("CSV %v != JSONL %v", fromCSV, fromJSONL)
	}

	// Headers, comments and bare-weight lines all parse.
	mixed := "# comment\nrank,weight\n0,4\n1,2\n\n2,2\n"
	fromMixed, err := ParseTrace([]byte(mixed))
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{0.5, 0.25, 0.25}; !reflect.DeepEqual(fromMixed, want) {
		t.Errorf("mixed parse = %v, want %v", fromMixed, want)
	}

	// Degenerate inputs are rejected.
	for _, bad := range []string{"", "0,0\n1,0\n", "0,-1\n1,2\n", "{\"rank\": 0}\n"} {
		if _, err := ParseTrace([]byte(bad)); err == nil {
			t.Errorf("ParseTrace(%q) accepted a degenerate trace", bad)
		}
	}
}

// TestTraceDistCompiles drives both trace hooks end to end: a spec whose
// rate and object distributions come from a skewed trace file compiles
// deterministically, and the empirical skew shows up in the schedule (the
// head object is touched more than the tail).
func TestTraceDistCompiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "skew.csv")
	// Heavy head: rank 0 carries ~87% of the mass.
	if err := SaveTrace(path, []float64{100, 10, 3, 1, 0.5}); err != nil {
		t.Fatal(err)
	}
	spec := &Spec{
		Name:      "trace-cell",
		Seed:      7,
		Nodes:     4,
		Objects:   ObjectPop{Count: 10, MinPages: 1, MaxPages: 1},
		HorizonMs: 40,
		Classes: []ClientClass{{
			Name:       "empirical",
			Population: 5000,
			Rate:       RateDist{Dist: "trace", MeanHz: 1, Trace: path},
			ObjectDist: ObjectDist{Dist: "trace", Trace: path},
		}},
	}
	w1, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(w1.Roots) == 0 {
		t.Fatal("trace spec compiled to an empty schedule")
	}
	if !reflect.DeepEqual(w1.Roots, w2.Roots) {
		t.Error("trace spec is not deterministic across compiles")
	}
	touches := make(map[int]int)
	var countCalls func(c Call)
	countCalls = func(c Call) {
		touches[c.ObjIndex]++
		for _, ch := range c.Children {
			countCalls(ch)
		}
	}
	for _, r := range w1.Roots {
		countCalls(r.Call)
	}
	// Head ranks (objects 0-1, ~95% of trace mass over the first fifth of
	// the population) must dominate a tail rank.
	if touches[0]+touches[1] <= touches[9]*2 {
		t.Errorf("trace skew not applied: head touches %d+%d vs tail %d",
			touches[0], touches[1], touches[9])
	}

	// A missing trace file fails at compile, not silently.
	spec.Classes[0].Rate.Trace = filepath.Join(dir, "absent.csv")
	if _, err := Compile(spec); err == nil {
		t.Error("compile accepted a missing trace file")
	}
}
