package workload

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"sort"
	"time"

	"lotec/internal/ids"
	"lotec/internal/schema"
)

// Compile turns a spec into a concrete Workload: a deterministic per-site
// schedule of root transactions. Identical (spec, seed) inputs compile to
// identical schedules — the compiler draws every random number from
// sub-seeded streams keyed on (seed, class name, stream purpose), so
// adding a class or reordering the spec file never perturbs another
// class's traffic.
func Compile(s *Spec) (*Workload, error) {
	spec := s.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Legacy != nil {
		cfg := *spec.Legacy
		if cfg.Seed == 0 {
			cfg.Seed = spec.Seed
		}
		w, err := Generate(cfg)
		if err != nil {
			return nil, err
		}
		w.Name = spec.Name
		w.SpecHash = spec.Hash()
		return w, nil
	}

	w := &Workload{Name: spec.Name, SpecHash: spec.Hash()}

	// Object population: its own stream, so class edits never reshuffle
	// which objects exist or where they live.
	objRng := rand.New(rand.NewSource(subSeed(spec.Seed, "objects", 0)))
	classBySize := make(map[int]*schema.Class)
	for size := spec.Objects.MinPages; size <= spec.Objects.MaxPages; size++ {
		cls, err := buildSizedClass(ids.ClassID(size), size, spec.PageSize, 0, objRng)
		if err != nil {
			return nil, err
		}
		classBySize[size] = cls
		w.Classes = append(w.Classes, cls)
	}
	for i := 0; i < spec.Objects.Count; i++ {
		size := spec.Objects.MinPages + objRng.Intn(spec.Objects.MaxPages-spec.Objects.MinPages+1)
		w.Objects = append(w.Objects, ObjectSpec{
			Class: classBySize[size].ID,
			Owner: ids.NodeID(1 + objRng.Intn(spec.Nodes)),
			Pages: size,
		})
	}

	horizon := spec.horizon()
	mispredict := 0.0
	for ci := range spec.Classes {
		cls := &spec.Classes[ci]
		w.ClassNames = append(w.ClassNames, cls.Name)
		if cls.MispredictProb > mispredict {
			mispredict = cls.MispredictProb
		}
		roots, err := compileClass(&spec, cls, horizon, len(w.Roots))
		if err != nil {
			return nil, err
		}
		w.Roots = append(w.Roots, roots...)
		if len(w.Roots) > spec.MaxRoots {
			return nil, fmt.Errorf(
				"workload: spec %q compiles to more than max_roots=%d root transactions by class %q — lower rates/populations or shorten horizon_ms",
				spec.Name, spec.MaxRoots, cls.Name)
		}
	}
	// Interleave the per-class streams on the shared timeline. The sort is
	// stable and classes were appended in spec order, so ties keep spec
	// order — deterministic regardless of how the streams line up.
	sort.SliceStable(w.Roots, func(i, j int) bool { return w.Roots[i].At < w.Roots[j].At })

	w.Cfg = Config{
		Seed:           spec.Seed,
		Objects:        spec.Objects.Count,
		MinPages:       spec.Objects.MinPages,
		MaxPages:       spec.Objects.MaxPages,
		PageSize:       spec.PageSize,
		Transactions:   len(w.Roots),
		Nodes:          spec.Nodes,
		WriteBytes:     spec.WriteBytes,
		MispredictProb: mispredict,
	}.WithDefaults()
	return w, nil
}

// compileClass generates one class's root stream: arrivals from the
// class's rate/envelope model, each attributed to a logical client (for
// site affinity) and given a generated call tree.
func compileClass(spec *Spec, cls *ClientClass, horizon time.Duration, have int) ([]RootSpec, error) {
	arrRng := rand.New(rand.NewSource(subSeed(spec.Seed, cls.Name, 1)))
	treeRng := rand.New(rand.NewSource(subSeed(spec.Seed, cls.Name, 2)))
	var rateTrace, objTrace []float64
	if cls.Rate.Dist == "trace" {
		var err error
		if rateTrace, err = LoadTrace(cls.Rate.Trace); err != nil {
			return nil, fmt.Errorf("workload: class %q rate: %w", cls.Name, err)
		}
	}
	if cls.ObjectDist.Dist == "trace" {
		var err error
		if objTrace, err = LoadTrace(cls.ObjectDist.Trace); err != nil {
			return nil, fmt.Errorf("workload: class %q objects: %w", cls.Name, err)
		}
	}
	buckets, totalHz := rateBuckets(cls, rateTrace)
	env, envMax := envelope(cls.Arrivals)
	gen := &classGen{total: spec.Objects.Count, cls: cls, objTrace: objTrace}
	gen.initPicker(treeRng)
	salt := fnvHash(cls.Name)

	peakHz := totalHz * envMax
	if peakHz <= 0 {
		return nil, fmt.Errorf("workload: class %q has zero aggregate rate", cls.Name)
	}
	var roots []RootSpec
	t := 0.0 // seconds
	hs := horizon.Seconds()
	for {
		switch cls.Arrivals.Process {
		case "poisson":
			t += arrRng.ExpFloat64() / peakHz
		default: // "uniform"
			t += 1 / peakHz
		}
		if t >= hs {
			break
		}
		// Thin the homogeneous peak-rate stream down to the envelope.
		if f := env(t); f < envMax && arrRng.Float64()*envMax >= f {
			continue
		}
		rank := buckets.pick(arrRng)
		site := ids.NodeID(1 + mix64(salt^uint64(rank))%uint64(spec.Nodes))
		call, ok := gen.genCall(treeRng, nil, nil, 0)
		if !ok {
			continue
		}
		roots = append(roots, RootSpec{
			At:    time.Duration(t * float64(time.Second)),
			Node:  site,
			Call:  call,
			Class: cls.Name,
		})
		if have+len(roots) > spec.MaxRoots {
			// Caller reports the error with context; stop generating.
			return roots, nil
		}
	}
	return roots, nil
}

// subSeed derives an independent RNG seed from (seed, label, stream) via a
// splitmix64-style mix, so streams never overlap.
func subSeed(seed int64, label string, stream uint64) int64 {
	return int64(mix64(uint64(seed) ^ fnvHash(label) ^ (stream * 0x9e3779b97f4a7c15)))
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// mixer used for sub-seeding and stable client→site assignment.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fnvHash hashes a string with FNV-1a 64.
func fnvHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// bucketTable aggregates a class's per-client rates into rank buckets:
// bucket i covers client ranks [start[i], start[i+1]) and carries their
// summed rate. Millions of clients cost O(buckets) memory; arrivals are
// attributed to a bucket by rate-weighted draw, then to a rank uniformly
// within the bucket (the residual within-bucket skew is below the bucket
// resolution by construction).
type bucketTable struct {
	cum   []float64 // cumulative rate weight, len = buckets
	start []int     // first rank of each bucket, len = buckets+1
}

const rateBucketCount = 1024

// rateBuckets builds the bucket table for a class and returns it with the
// class's aggregate rate in Hz (always population × MeanHz; the
// distribution only shapes how that budget is spread over clients). trace
// holds the normalized empirical weights when the dist is "trace".
func rateBuckets(cls *ClientClass, trace []float64) (bucketTable, float64) {
	pop := cls.Population
	b := rateBucketCount
	if b > pop {
		b = pop
	}
	tbl := bucketTable{
		cum:   make([]float64, b),
		start: make([]int, b+1),
	}
	for i := 0; i <= b; i++ {
		tbl.start[i] = i * pop / b
	}
	weights := make([]float64, b)
	switch cls.Rate.Dist {
	case "zipf":
		// Rate of rank r ∝ (r+1)^-S; per-bucket mass via the analytic
		// integral so cost is O(buckets) even for millions of clients.
		s := cls.Rate.S
		primitive := func(x float64) float64 {
			if math.Abs(s-1) < 1e-9 {
				return math.Log(x + 1)
			}
			return math.Pow(x+1, 1-s) / (1 - s)
		}
		for i := 0; i < b; i++ {
			weights[i] = primitive(float64(tbl.start[i+1])) - primitive(float64(tbl.start[i]))
		}
	case "lognormal":
		// Rate of the q-quantile client: exp(μ + σ·Φ⁻¹(q)) with μ chosen
		// so the distribution mean is MeanHz.
		sigma := cls.Rate.Sigma
		mu := math.Log(cls.Rate.MeanHz) - sigma*sigma/2
		for i := 0; i < b; i++ {
			n := tbl.start[i+1] - tbl.start[i]
			q := (float64(i) + 0.5) / float64(b)
			weights[i] = float64(n) * math.Exp(mu+sigma*invNorm(q))
		}
	case "trace":
		// Empirical: each bucket carries the trace mass over its rank span,
		// resampled in quantile space onto the class population.
		for i := 0; i < b; i++ {
			weights[i] = traceMass(trace,
				float64(tbl.start[i])/float64(pop), float64(tbl.start[i+1])/float64(pop))
		}
	default: // "uniform"
		for i := 0; i < b; i++ {
			weights[i] = float64(tbl.start[i+1] - tbl.start[i])
		}
	}
	var sum float64
	for i, w := range weights {
		sum += w
		tbl.cum[i] = sum
	}
	return tbl, float64(pop) * cls.Rate.MeanHz
}

// pick draws a client rank: bucket by rate weight, rank uniform within.
func (t bucketTable) pick(rng *rand.Rand) int {
	u := rng.Float64() * t.cum[len(t.cum)-1]
	i := sort.SearchFloat64s(t.cum, u)
	if i >= len(t.cum) {
		i = len(t.cum) - 1
	}
	lo, hi := t.start[i], t.start[i+1]
	if hi <= lo+1 {
		return lo
	}
	return lo + rng.Intn(hi-lo)
}

// invNorm approximates the standard normal inverse CDF (Acklam's
// algorithm; relative error < 1.15e-9 over (0,1)).
func invNorm(p float64) float64 {
	if p <= 0 || p >= 1 {
		if p <= 0 {
			return math.Inf(-1)
		}
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	bb := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow, pHigh = 0.02425, 1 - 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > pHigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((bb[0]*r+bb[1])*r+bb[2])*r+bb[3])*r+bb[4])*r + 1)
	}
}

// envelope returns the rate modulation function (of time in seconds) and
// its maximum, for thinning.
func envelope(a ArrivalSpec) (func(float64) float64, float64) {
	period := a.PeriodMs / 1000
	switch a.Envelope {
	case "diurnal":
		amp := a.Amplitude
		return func(t float64) float64 {
			return 1 + amp*math.Sin(2*math.Pi*t/period)
		}, 1 + amp
	case "bursty":
		duty, factor := a.BurstDuty, a.BurstFactor
		return func(t float64) float64 {
			if math.Mod(t, period) < duty*period {
				return factor
			}
			return 1
		}, factor
	default: // "constant"
		return func(float64) float64 { return 1 }, 1
	}
}

// classGen generates call trees for one client class. It keeps the legacy
// generator's cursor discipline — objects are acquired in ascending index
// order, so spec workloads are deadlock-free by construction — but plugs
// in the class's object distribution and tree-shape parameters.
type classGen struct {
	total    int
	cls      *ClientClass
	zipf     *rand.Zipf
	objTrace []float64 // normalized empirical weights (dist "trace")
	objCum   []float64 // objTrace resampled to the object population
}

// initPicker prepares distribution state bound to the tree RNG.
func (g *classGen) initPicker(rng *rand.Rand) {
	if g.cls.ObjectDist.Dist == "zipf" {
		g.zipf = rand.NewZipf(rng, g.cls.ObjectDist.S, 1, uint64(g.total-1))
	}
	if g.cls.ObjectDist.Dist == "trace" && len(g.objTrace) > 0 {
		g.objCum = traceCum(g.objTrace, g.total)
	}
}

// pickObject draws an object index ≥ minIdx per the class distribution,
// avoiding the exclusion path. Falls back to a uniform draw when the
// skewed head keeps landing below the cursor.
func (g *classGen) pickObject(rng *rand.Rand, exclude map[int]bool, minIdx int) (int, bool) {
	if minIdx >= g.total {
		return 0, false
	}
	d := g.cls.ObjectDist
	for tries := 0; tries < 20; tries++ {
		var idx int
		switch d.Dist {
		case "zipf":
			idx = int(g.zipf.Uint64())
			if idx < minIdx {
				idx = minIdx + rng.Intn(g.total-minIdx)
			}
		case "trace":
			u := rng.Float64() * g.objCum[len(g.objCum)-1]
			idx = sort.SearchFloat64s(g.objCum, u)
			if idx >= g.total {
				idx = g.total - 1
			}
			if idx < minIdx {
				idx = minIdx + rng.Intn(g.total-minIdx)
			}
		case "hotset":
			hot := int(float64(g.total) * d.HotFraction)
			if hot < 1 {
				hot = 1
			}
			if rng.Float64() < d.HotWeight && minIdx < hot {
				idx = minIdx + rng.Intn(hot-minIdx)
			} else {
				idx = minIdx + rng.Intn(g.total-minIdx)
			}
		default: // "uniform"
			idx = minIdx + rng.Intn(g.total-minIdx)
		}
		if !exclude[idx] {
			return idx, true
		}
	}
	return 0, false
}

// genCall mirrors the legacy tree generator (see legacyGen.genCall) with
// the class's shape parameters.
func (g *classGen) genCall(rng *rand.Rand, path map[int]bool, cursor *int, depth int) (Call, bool) {
	cls := g.cls
	if path == nil {
		path = make(map[int]bool)
	}
	if cursor == nil {
		c := -1
		cursor = &c
	}
	idx, ok := g.pickObject(rng, path, *cursor+1)
	if !ok {
		return Call{}, false
	}
	if idx > *cursor {
		*cursor = idx
	}
	var method string
	if rng.Float64() < cls.WriteFraction {
		method = fmt.Sprintf("w%d", rng.Intn(3))
	} else {
		method = fmt.Sprintf("r%d", rng.Intn(3))
	}
	c := Call{
		ObjIndex: idx,
		Method:   method,
		Seed:     rng.Uint64(),
	}
	if cls.MispredictProb > 0 && rng.Float64() < cls.MispredictProb {
		// ExtraSeg indexes into the object's pages; sizes vary, so write
		// the first segment, which every class has.
		c.ExtraSeg = 1
	}
	if cls.AbortProb > 0 && rng.Float64() < cls.AbortProb {
		c.Fail = true
		c.Tolerate = rng.Float64() < 0.5
	}
	if depth < cls.MaxDepth {
		budget := cls.MaxFanout - depth
		if budget > 0 {
			n := rng.Intn(budget + 1)
			path[idx] = true
			for i := 0; i < n; i++ {
				child, ok := g.genCall(rng, path, cursor, depth+1)
				if ok {
					c.Children = append(c.Children, child)
				}
			}
			delete(path, idx)
		}
	}
	return c, true
}
