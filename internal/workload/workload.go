// Package workload generates the transaction traffic every experiment in
// this repository runs on. It has two generators behind one output type:
//
//   - Generate (the legacy driver): the paper's §5 uniform random
//     nested-object-transaction workload, moved here verbatim from
//     internal/sim so its seeded RNG sequence — and therefore every
//     committed figure — stays byte-for-byte identical.
//
//   - Compile (the spec driver): a declarative, seed-pure production
//     workload model in the ServeGen style — heterogeneous client classes
//     with skewed per-client rates (Zipf/lognormal), Zipf hot-key object
//     selection, and open-loop seeded arrival processes (Poisson under
//     constant/diurnal/bursty rate envelopes) that multiplex millions of
//     logical clients onto N sites.
//
// Both produce a Workload: classes, objects, and a deterministic schedule
// of root transactions (RootSpec) that internal/sim executes on the
// virtual clock and the TCP runtime replays in real time. Running the
// same spec on both is what the calibrate loop (lotec-bench -calibrate)
// compares.
package workload

import (
	"fmt"
	"math/rand"
	"time"

	"lotec/internal/ids"
	"lotec/internal/schema"
)

// Config shapes the legacy randomly generated workload (§5: "a number of
// randomly generated nested object transactions in a simulated distributed
// system … expressly designed to induce high degrees of conflict in object
// access"). Its seeded RNG draw sequence is frozen: the uniform preset and
// every committed figure reproduce from it byte-for-byte.
type Config struct {
	// Seed makes the workload reproducible.
	Seed int64
	// Objects is the shared-object population size.
	Objects int
	// MinPages/MaxPages bound object sizes (the paper's "medium" objects
	// are 1–5 pages, "large" are 10–20).
	MinPages int
	MaxPages int
	// PageSize must match the cluster's (default 4096).
	PageSize int
	// Transactions is the number of root transactions.
	Transactions int
	// Nodes is the cluster size roots are load-balanced over.
	Nodes int
	// HotFraction of the objects receive HotWeight of the accesses; high
	// contention ≈ (0.25, 0.85), moderate ≈ (0.5, 0.5).
	HotFraction float64
	HotWeight   float64
	// MaxDepth bounds transaction nesting below the root.
	MaxDepth int
	// MaxFanout bounds sub-invocations per [sub-]transaction.
	MaxFanout int
	// WriteFraction is the probability an invocation picks an updating
	// method.
	WriteFraction float64
	// ArrivalSpacing is the mean spacing between root arrivals; small
	// values increase overlap and hence contention.
	ArrivalSpacing time.Duration
	// MispredictProb, when positive, makes method bodies additionally
	// write one undeclared segment with this probability — modelling
	// imperfect access prediction. Requires a Lenient cluster.
	MispredictProb float64
	// PredictionWiden widens every generated method's declared sets by
	// this many extra segments (ablation: how LOTEC degrades toward OTEC
	// as prediction gets more conservative).
	PredictionWiden int
	// AbortProb is the probability a generated [sub-]transaction fails
	// after performing its writes, exercising rollback at every nesting
	// level (failure injection; aborted subtrees are survived by parents
	// with probability ½, else propagated).
	AbortProb float64
	// WriteBytes, when positive, caps how many bytes each declared write
	// actually modifies (at the attribute's start) instead of rewriting the
	// whole attribute. Real update methods touch a few fields of a page-sized
	// object, which is what sub-page delta transfers exploit; 0 keeps the
	// historical whole-attribute writes (and their exact traces).
	WriteBytes int
	// DisorderProb is the probability an invocation ignores the canonical
	// ascending object-index order. The default (0) emits transactions
	// that acquire locks in a global order — the standard TP discipline
	// that makes deadlock structurally impossible; raise it to exercise
	// the deadlock detector (at the cost of abort/retry storms under high
	// contention).
	DisorderProb float64
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.Objects <= 0 {
		c.Objects = 20
	}
	if c.MinPages <= 0 {
		c.MinPages = 1
	}
	if c.MaxPages < c.MinPages {
		c.MaxPages = c.MinPages
	}
	if c.PageSize <= 0 {
		c.PageSize = 4096
	}
	if c.Transactions <= 0 {
		c.Transactions = 100
	}
	if c.Nodes <= 0 {
		c.Nodes = 8
	}
	if c.HotFraction <= 0 || c.HotFraction > 1 {
		c.HotFraction = 0.25
	}
	if c.HotWeight <= 0 || c.HotWeight > 1 {
		c.HotWeight = 0.85
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 3
	}
	if c.MaxFanout <= 0 {
		c.MaxFanout = 3
	}
	if c.WriteFraction <= 0 {
		c.WriteFraction = 0.7
	}
	if c.ArrivalSpacing <= 0 {
		c.ArrivalSpacing = 200 * time.Microsecond
	}
	return c
}

// Call is one invocation in a generated transaction tree.
type Call struct {
	ObjIndex int
	Method   string
	Seed     uint64
	// ExtraSeg, when > 0, makes the body write segment ExtraSeg-1 without
	// declaring it (misprediction modelling).
	ExtraSeg int
	// Fail makes the body return an error after its writes (rolled back).
	Fail bool
	// Tolerate makes a parent survive this child's failure instead of
	// propagating it.
	Tolerate bool
	Children []Call
}

// FailsOut predicts whether this call aborts out of its own frame: its own
// injected failure, or an untolerated child failure, propagates upward. A
// Tolerate'd child absorbs its whole failing subtree — even when the
// child's own failure came from a grandchild — so the parent survives.
// Tests compare executed outcomes against this oracle.
func (c Call) FailsOut() bool {
	for _, ch := range c.Children {
		if ch.FailsOut() && !ch.Tolerate {
			return true
		}
	}
	return c.Fail
}

// RootSpec is one generated root transaction.
type RootSpec struct {
	At   time.Duration
	Node ids.NodeID
	Call Call
	// Class names the client class this root belongs to (spec-compiled
	// workloads; the legacy generator leaves it empty — one anonymous
	// uniform class). Per-class KPIs key on it.
	Class string
}

// ObjectSpec describes one generated object.
type ObjectSpec struct {
	Class ids.ClassID
	Owner ids.NodeID
	Pages int
}

// Workload is a fully generated experiment input: classes, objects and the
// transaction forest. It is protocol-independent; install it into one
// cluster per protocol to compare them on identical input.
type Workload struct {
	Cfg     Config
	Classes []*schema.Class
	Objects []ObjectSpec
	Roots   []RootSpec
	// Name and SpecHash identify the spec a compiled workload came from
	// ("" / "" for ad-hoc legacy configs): together with the seeds they
	// make any run reproducible from one line (see Provenance).
	Name     string
	SpecHash string
	// ClassNames lists the client-class names in spec order (nil for
	// legacy workloads). KPI reports iterate it instead of discovering
	// classes from the roots, so output order is deterministic.
	ClassNames []string
}

// segName returns the attribute name of segment i.
func segName(i int) string { return fmt.Sprintf("seg%d", i) }

// Generate builds a reproducible workload from cfg — the legacy uniform
// random driver. Its RNG call sequence is frozen; the uniform spec preset
// must reproduce it byte-for-byte (enforced by tests in internal/sim).
func Generate(cfg Config) (*Workload, error) {
	cfg = cfg.WithDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := &Workload{Cfg: cfg}

	// One class per object size; each page is one segment attribute, so
	// declared attribute sets map 1:1 onto predicted page sets.
	classBySize := make(map[int]*schema.Class)
	for size := cfg.MinPages; size <= cfg.MaxPages; size++ {
		cls, err := buildSizedClass(ids.ClassID(size), size, cfg.PageSize, cfg.PredictionWiden, rng)
		if err != nil {
			return nil, err
		}
		classBySize[size] = cls
		w.Classes = append(w.Classes, cls)
	}

	for i := 0; i < cfg.Objects; i++ {
		size := cfg.MinPages + rng.Intn(cfg.MaxPages-cfg.MinPages+1)
		w.Objects = append(w.Objects, ObjectSpec{
			Class: classBySize[size].ID,
			Owner: ids.NodeID(1 + rng.Intn(cfg.Nodes)),
			Pages: size,
		})
	}

	g := legacyGen{w: w}
	for i := 0; i < cfg.Transactions; i++ {
		at := time.Duration(i)*cfg.ArrivalSpacing +
			time.Duration(rng.Int63n(int64(cfg.ArrivalSpacing)))
		call, ok := g.genCall(rng, nil, nil, 0)
		if !ok {
			continue
		}
		w.Roots = append(w.Roots, RootSpec{
			At:   at,
			Node: ids.NodeID(1 + rng.Intn(cfg.Nodes)),
			Call: call,
		})
	}
	return w, nil
}

// buildSizedClass creates the class for objects of `size` pages: segment
// attributes seg0..seg{size-1} (one page each) and six methods — three
// updaters (w0..w2) and three readers (r0..r2) — with seeded random access
// subsets ("only a subset of which are normally updated by any
// method/transaction", §5).
func buildSizedClass(id ids.ClassID, size, pageSize, widen int, rng *rand.Rand) (*schema.Class, error) {
	b := schema.NewClassBuilder(id, fmt.Sprintf("Obj%dp", size))
	for i := 0; i < size; i++ {
		b.Attr(segName(i), pageSize)
	}
	subset := func(max int) []string {
		if max < 1 {
			max = 1
		}
		n := 1 + rng.Intn(max)
		n += widen
		if n > size {
			n = size
		}
		perm := rng.Perm(size)
		out := make([]string, 0, n)
		for _, p := range perm[:n] {
			out = append(out, segName(p))
		}
		return out
	}
	third := (size + 2) / 3
	half := (size + 1) / 2
	for i := 0; i < 3; i++ {
		b.Method(schema.MethodSpec{
			Name:   fmt.Sprintf("w%d", i),
			Writes: subset(third),
			Reads:  subset(third),
		})
	}
	for i := 0; i < 3; i++ {
		b.Method(schema.MethodSpec{
			Name:  fmt.Sprintf("r%d", i),
			Reads: subset(half),
		})
	}
	return b.Build()
}

// legacyGen is the frozen call-tree generator behind Generate. It stays a
// distinct type (instead of sharing the spec driver's machinery) so its
// RNG draw order can never drift.
type legacyGen struct {
	w *Workload
}

// pickObject draws an object index ≥ minIdx with the configured hot-set
// skew, avoiding indexes on the exclusion path (mutually recursive
// invocations are precluded, §3.4).
func (g legacyGen) pickObject(rng *rand.Rand, exclude map[int]bool, minIdx int) (int, bool) {
	total := len(g.w.Objects)
	if minIdx >= total {
		return 0, false
	}
	hot := int(float64(total) * g.w.Cfg.HotFraction)
	if hot < 1 {
		hot = 1
	}
	for tries := 0; tries < 20; tries++ {
		var idx int
		if rng.Float64() < g.w.Cfg.HotWeight && minIdx < hot {
			idx = minIdx + rng.Intn(hot-minIdx)
		} else {
			idx = minIdx + rng.Intn(total-minIdx)
		}
		if !exclude[idx] {
			return idx, true
		}
	}
	return 0, false
}

// genCall builds one random invocation subtree. cursor tracks the highest
// object index acquired so far on the family's depth-first path: picking
// strictly above it yields globally ordered lock acquisition (deadlock-free
// by construction); DisorderProb occasionally breaks the order.
func (g legacyGen) genCall(rng *rand.Rand, path map[int]bool, cursor *int, depth int) (Call, bool) {
	cfg := g.w.Cfg
	if path == nil {
		path = make(map[int]bool)
	}
	if cursor == nil {
		c := -1
		cursor = &c
	}
	minIdx := *cursor + 1
	if cfg.DisorderProb > 0 && rng.Float64() < cfg.DisorderProb {
		minIdx = 0
	}
	idx, ok := g.pickObject(rng, path, minIdx)
	if !ok {
		return Call{}, false
	}
	if idx > *cursor {
		*cursor = idx
	}
	size := g.w.Objects[idx].Pages
	var method string
	if rng.Float64() < cfg.WriteFraction {
		method = fmt.Sprintf("w%d", rng.Intn(3))
	} else {
		method = fmt.Sprintf("r%d", rng.Intn(3))
	}
	c := Call{
		ObjIndex: idx,
		Method:   method,
		Seed:     rng.Uint64(),
	}
	if cfg.MispredictProb > 0 && rng.Float64() < cfg.MispredictProb {
		c.ExtraSeg = 1 + rng.Intn(size)
	}
	if cfg.AbortProb > 0 && rng.Float64() < cfg.AbortProb {
		c.Fail = true
		c.Tolerate = rng.Float64() < 0.5
	}
	if depth < cfg.MaxDepth {
		budget := cfg.MaxFanout - depth
		if budget > 0 {
			n := rng.Intn(budget + 1)
			path[idx] = true
			for i := 0; i < n; i++ {
				child, ok := g.genCall(rng, path, cursor, depth+1)
				if ok {
					c.Children = append(c.Children, child)
				}
			}
			delete(path, idx)
		}
	}
	return c, true
}
