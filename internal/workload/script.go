package workload

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"lotec/internal/ids"
	"lotec/internal/node"
)

// script is the runtime form of a Call, carried in the invocation argument.
type script struct {
	seed     uint64
	extraSeg int
	fail     bool
	children []childRef
}

type childRef struct {
	obj      ids.ObjectID
	method   string
	tolerate bool
	arg      []byte
}

// EncodeCall resolves object indexes against the created objects and
// serializes the subtree for the generic body.
func EncodeCall(objs []ids.ObjectID, c Call) []byte {
	var buf bytes.Buffer
	var u64 [8]byte
	var u32 [4]byte
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(u64[:], v)
		buf.Write(u64[:])
	}
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		buf.Write(u32[:])
	}
	put64(c.Seed)
	put32(uint32(c.ExtraSeg))
	flags := uint32(0)
	if c.Fail {
		flags |= 1
	}
	put32(flags)
	put32(uint32(len(c.Children)))
	for _, ch := range c.Children {
		put64(uint64(objs[ch.ObjIndex]))
		m := []byte(ch.Method)
		put32(uint32(len(m)))
		buf.Write(m)
		cflags := uint32(0)
		if ch.Tolerate {
			cflags |= 1
		}
		put32(cflags)
		sub := EncodeCall(objs, ch)
		put32(uint32(len(sub)))
		buf.Write(sub)
	}
	return buf.Bytes()
}

// decodeScript parses an encoded Call argument.
func decodeScript(arg []byte) (script, error) {
	var sc script
	r := bytes.NewReader(arg)
	var u64 [8]byte
	var u32 [4]byte
	get64 := func() (uint64, error) {
		if _, err := r.Read(u64[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint64(u64[:]), nil
	}
	get32 := func() (uint32, error) {
		if _, err := r.Read(u32[:]); err != nil {
			return 0, err
		}
		return binary.LittleEndian.Uint32(u32[:]), nil
	}
	seed, err := get64()
	if err != nil {
		return sc, fmt.Errorf("workload: bad script: %w", err)
	}
	sc.seed = seed
	extra, err := get32()
	if err != nil {
		return sc, fmt.Errorf("workload: bad script: %w", err)
	}
	sc.extraSeg = int(extra)
	flags, err := get32()
	if err != nil {
		return sc, fmt.Errorf("workload: bad script: %w", err)
	}
	sc.fail = flags&1 != 0
	n, err := get32()
	if err != nil {
		return sc, fmt.Errorf("workload: bad script: %w", err)
	}
	for i := uint32(0); i < n; i++ {
		obj, err := get64()
		if err != nil {
			return sc, fmt.Errorf("workload: bad script child: %w", err)
		}
		mlen, err := get32()
		if err != nil {
			return sc, fmt.Errorf("workload: bad script child: %w", err)
		}
		m := make([]byte, mlen)
		if _, err := r.Read(m); err != nil {
			return sc, fmt.Errorf("workload: bad script child: %w", err)
		}
		cflags, err := get32()
		if err != nil {
			return sc, fmt.Errorf("workload: bad script child: %w", err)
		}
		alen, err := get32()
		if err != nil {
			return sc, fmt.Errorf("workload: bad script child: %w", err)
		}
		a := make([]byte, alen)
		if alen > 0 {
			if _, err := r.Read(a); err != nil {
				return sc, fmt.Errorf("workload: bad script child: %w", err)
			}
		}
		sc.children = append(sc.children, childRef{
			obj:      ids.ObjectID(obj),
			method:   string(m),
			tolerate: cflags&1 != 0,
			arg:      a,
		})
	}
	return sc, nil
}

// Body returns the generic method body that interprets encoded Call
// scripts: read the method's declared read set, derive new contents from
// what was read (so serialization order is observable), write the declared
// write set, optionally perform one undeclared write, then run the
// sub-invocations in order. writeBytes > 0 narrows each declared write to
// that many leading bytes (Config.WriteBytes); 0 rewrites whole attributes.
func Body(writeBytes int) node.MethodFunc {
	return func(ctx *node.Ctx) error { return runScript(ctx, writeBytes) }
}

func runScript(ctx *node.Ctx, writeBytes int) error {
	sc, err := decodeScript(ctx.Arg())
	if err != nil {
		return err
	}
	m := ctx.Method()
	cls := ctx.Class()
	var acc byte
	for _, aid := range m.Reads {
		a, err := cls.Attr(aid)
		if err != nil {
			return err
		}
		b, err := ctx.ReadAt(a.Name, 0, 1)
		if err != nil {
			return err
		}
		acc += b[0]
	}
	seedByte := byte(sc.seed)
	for _, aid := range m.Writes {
		a, err := cls.Attr(aid)
		if err != nil {
			return err
		}
		old, err := ctx.ReadAt(a.Name, 0, 1)
		if err != nil {
			return err
		}
		n := a.Size
		if writeBytes > 0 && writeBytes < n {
			n = writeBytes
		}
		fill := bytes.Repeat([]byte{old[0] + seedByte + acc + 1}, n)
		if err := ctx.WriteAt(a.Name, 0, fill); err != nil {
			return err
		}
	}
	if sc.extraSeg > 0 {
		if err := ctx.WriteAt(segName(sc.extraSeg-1), 0, []byte{seedByte + 1}); err != nil {
			return err
		}
	}
	for _, ch := range sc.children {
		if _, err := ctx.Invoke(ch.obj, ch.method, ch.arg); err != nil {
			if ch.tolerate && errors.Is(err, ErrInjected) {
				// Closed nesting: the child is rolled back; this parent
				// carries on (§3.2's "no unnecessary transaction roll
				// backs").
				continue
			}
			return err
		}
	}
	if sc.fail {
		return ErrInjected
	}
	ctx.SetResult([]byte{acc})
	return nil
}

// ErrInjected marks workload-injected aborts. The text keeps the historical
// "sim:" prefix because it crosses the wire inside error strings and
// committed traces compare byte-for-byte.
var ErrInjected = errors.New("sim: injected transaction failure")
