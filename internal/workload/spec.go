package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"time"
)

// Spec is the declarative workload grammar. A spec is seed-pure: the same
// spec and seed compile to the same schedule on every run, which is what
// lets the calibrate loop replay identical traffic on SimNet and on a real
// TCP cluster. Specs are written as JSON (see EXPERIMENTS.md for the
// grammar) or named presets (Presets).
type Spec struct {
	// Name identifies the spec in provenance output. Defaults to "custom"
	// for parsed files.
	Name string `json:"name"`
	// Seed drives every random draw (sub-seeded per class and stream).
	Seed int64 `json:"seed"`
	// Nodes is the number of sites client traffic is multiplexed onto.
	Nodes int `json:"nodes"`
	// PageSize must match the cluster's (default 4096).
	PageSize int `json:"page_size"`
	// Objects shapes the shared-object population.
	Objects ObjectPop `json:"objects"`
	// HorizonMs is the generation window: arrivals are produced until the
	// virtual clock passes this many milliseconds (default 50).
	HorizonMs float64 `json:"horizon_ms"`
	// MaxRoots caps the compiled schedule as a safety net against
	// mis-specified rates (default 20000).
	MaxRoots int `json:"max_roots"`
	// WriteBytes caps how many bytes each declared write modifies
	// (Config.WriteBytes semantics; 0 = whole attributes).
	WriteBytes int `json:"write_bytes"`
	// Classes are the heterogeneous client populations. At least one is
	// required unless Legacy is set.
	Classes []ClientClass `json:"classes"`
	// Legacy, when set, bypasses the class machinery entirely and routes
	// through the frozen uniform generator (Generate). The "uniform"
	// preset uses it to reproduce the pre-spec driver's traffic
	// byte-for-byte. If Legacy.Seed is zero, Seed is used.
	Legacy *Config `json:"legacy,omitempty"`
}

// ObjectPop shapes the generated object population.
type ObjectPop struct {
	Count    int `json:"count"`
	MinPages int `json:"min_pages"`
	MaxPages int `json:"max_pages"`
}

// ClientClass describes one population of logical clients sharing a
// behaviour profile. Millions of clients are modelled in O(buckets)
// memory: per-client rates are aggregated into rank buckets and arrivals
// are attributed back to (bucketed) client identities for site assignment.
type ClientClass struct {
	// Name keys per-class KPIs; must be unique within a spec.
	Name string `json:"name"`
	// Population is the number of logical clients (may be millions).
	Population int `json:"population"`
	// WriteFraction is the probability an invocation picks an updating
	// method (default 0.7).
	WriteFraction float64 `json:"write_fraction"`
	// MaxDepth / MaxFanout bound the generated call trees (defaults 3/3).
	MaxDepth  int `json:"max_depth"`
	MaxFanout int `json:"max_fanout"`
	// AbortProb injects failures exactly like Config.AbortProb.
	AbortProb float64 `json:"abort_prob"`
	// MispredictProb injects undeclared writes like Config.MispredictProb
	// (requires a Lenient cluster).
	MispredictProb float64 `json:"mispredict_prob"`
	// Rate distributes per-client mean request rates.
	Rate RateDist `json:"rate"`
	// Arrivals shapes the class's open-loop arrival process.
	Arrivals ArrivalSpec `json:"arrivals"`
	// ObjectDist selects which objects the class's transactions touch.
	ObjectDist ObjectDist `json:"objects"`
}

// RateDist distributes mean request rates over a class's clients.
type RateDist struct {
	// Dist is "uniform" (every client at MeanHz), "zipf" (rate ∝
	// 1/rank^S, scaled so the class mean is MeanHz), "lognormal"
	// (median-MeanHz body with Sigma spread) or "trace" (empirical
	// per-rank weights loaded from Trace; see trace.go).
	Dist string `json:"dist"`
	// MeanHz is the per-client mean request rate in requests/second.
	MeanHz float64 `json:"mean_hz"`
	// S is the zipf exponent (> 0; typical 0.8–1.5).
	S float64 `json:"s"`
	// Sigma is the lognormal shape (> 0; typical 1–2.5).
	Sigma float64 `json:"sigma"`
	// Trace is the trace-file path (CSV or JSONL), required when Dist is
	// "trace". The file's weights shape how the class's rate budget
	// (Population × MeanHz) is spread over client ranks.
	Trace string `json:"trace,omitempty"`
}

// ArrivalSpec shapes the open-loop arrival process of one class.
type ArrivalSpec struct {
	// Process is "poisson" (exponential gaps, thinned against the
	// envelope) or "uniform" (evenly spaced, envelope-modulated).
	Process string `json:"process"`
	// Envelope is "constant", "diurnal" (sinusoidal, Amplitude ∈ [0,1],
	// period PeriodMs) or "bursty" (square wave: BurstFactor× rate for
	// BurstDuty of each period).
	Envelope    string  `json:"envelope"`
	PeriodMs    float64 `json:"period_ms"`
	Amplitude   float64 `json:"amplitude"`
	BurstDuty   float64 `json:"burst_duty"`
	BurstFactor float64 `json:"burst_factor"`
}

// ObjectDist selects objects for one class's invocations.
type ObjectDist struct {
	// Dist is "uniform", "hotset" (legacy HotFraction/HotWeight skew),
	// "zipf" (rank-S popularity over the object population) or "trace"
	// (empirical per-rank popularity loaded from Trace; see trace.go).
	Dist        string  `json:"dist"`
	S           float64 `json:"s"`
	HotFraction float64 `json:"hot_fraction"`
	HotWeight   float64 `json:"hot_weight"`
	// Trace is the trace-file path, required when Dist is "trace".
	Trace string `json:"trace,omitempty"`
}

// withDefaults normalizes a spec in place and returns it.
func (s Spec) withDefaults() Spec {
	if s.Name == "" {
		s.Name = "custom"
	}
	if s.Nodes <= 0 {
		s.Nodes = 8
	}
	if s.PageSize <= 0 {
		s.PageSize = 4096
	}
	if s.Objects.Count <= 0 {
		s.Objects.Count = 20
	}
	if s.Objects.MinPages <= 0 {
		s.Objects.MinPages = 1
	}
	if s.Objects.MaxPages < s.Objects.MinPages {
		s.Objects.MaxPages = s.Objects.MinPages
	}
	if s.HorizonMs <= 0 {
		s.HorizonMs = 50
	}
	if s.MaxRoots <= 0 {
		s.MaxRoots = 20000
	}
	for i := range s.Classes {
		c := &s.Classes[i]
		if c.Population <= 0 {
			c.Population = 1000
		}
		if c.WriteFraction <= 0 {
			c.WriteFraction = 0.7
		}
		if c.MaxDepth <= 0 {
			c.MaxDepth = 3
		}
		if c.MaxFanout <= 0 {
			c.MaxFanout = 3
		}
		if c.Rate.Dist == "" {
			c.Rate.Dist = "uniform"
		}
		if c.Rate.MeanHz <= 0 {
			c.Rate.MeanHz = 1
		}
		if c.Rate.S <= 0 {
			c.Rate.S = 1.1
		}
		if c.Rate.Sigma <= 0 {
			c.Rate.Sigma = 1.5
		}
		if c.Arrivals.Process == "" {
			c.Arrivals.Process = "poisson"
		}
		if c.Arrivals.Envelope == "" {
			c.Arrivals.Envelope = "constant"
		}
		if c.Arrivals.PeriodMs <= 0 {
			c.Arrivals.PeriodMs = 20
		}
		if c.Arrivals.Amplitude <= 0 || c.Arrivals.Amplitude > 1 {
			c.Arrivals.Amplitude = 0.8
		}
		if c.Arrivals.BurstDuty <= 0 || c.Arrivals.BurstDuty >= 1 {
			c.Arrivals.BurstDuty = 0.2
		}
		if c.Arrivals.BurstFactor <= 1 {
			c.Arrivals.BurstFactor = 4
		}
		if c.ObjectDist.Dist == "" {
			c.ObjectDist.Dist = "uniform"
		}
		if c.ObjectDist.S <= 1 {
			c.ObjectDist.S = 1.2
		}
		if c.ObjectDist.HotFraction <= 0 || c.ObjectDist.HotFraction > 1 {
			c.ObjectDist.HotFraction = 0.25
		}
		if c.ObjectDist.HotWeight <= 0 || c.ObjectDist.HotWeight > 1 {
			c.ObjectDist.HotWeight = 0.85
		}
	}
	return s
}

// Validate rejects specs the compiler cannot honour.
func (s Spec) Validate() error {
	if s.Legacy == nil && len(s.Classes) == 0 {
		return fmt.Errorf("workload: spec %q has no classes and no legacy config", s.Name)
	}
	seen := make(map[string]bool, len(s.Classes))
	for _, c := range s.Classes {
		if c.Name == "" {
			return fmt.Errorf("workload: spec %q: class with empty name", s.Name)
		}
		if seen[c.Name] {
			return fmt.Errorf("workload: spec %q: duplicate class %q", s.Name, c.Name)
		}
		seen[c.Name] = true
		switch c.Rate.Dist {
		case "uniform", "zipf", "lognormal":
		case "trace":
			if c.Rate.Trace == "" {
				return fmt.Errorf("workload: class %q: rate dist \"trace\" needs a trace file", c.Name)
			}
		default:
			return fmt.Errorf("workload: class %q: unknown rate dist %q", c.Name, c.Rate.Dist)
		}
		switch c.Arrivals.Process {
		case "poisson", "uniform":
		default:
			return fmt.Errorf("workload: class %q: unknown arrival process %q", c.Name, c.Arrivals.Process)
		}
		switch c.Arrivals.Envelope {
		case "constant", "diurnal", "bursty":
		default:
			return fmt.Errorf("workload: class %q: unknown envelope %q", c.Name, c.Arrivals.Envelope)
		}
		switch c.ObjectDist.Dist {
		case "uniform", "hotset", "zipf":
		case "trace":
			if c.ObjectDist.Trace == "" {
				return fmt.Errorf("workload: class %q: object dist \"trace\" needs a trace file", c.Name)
			}
		default:
			return fmt.Errorf("workload: class %q: unknown object dist %q", c.Name, c.ObjectDist.Dist)
		}
	}
	return nil
}

// ParseSpec decodes a JSON spec, applies defaults and validates it.
func ParseSpec(data []byte) (*Spec, error) {
	var s Spec
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("workload: parse spec: %w", err)
	}
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSpec resolves arg as a preset name first, then as a path to a JSON
// spec file.
func LoadSpec(arg string) (*Spec, error) {
	if s, ok := Preset(arg); ok {
		return s, nil
	}
	data, err := os.ReadFile(arg)
	if err != nil {
		return nil, fmt.Errorf("workload: %q is neither a preset (%v) nor a readable spec file: %w",
			arg, PresetNames(), err)
	}
	return ParseSpec(data)
}

// Hash returns the spec's identity: a hex SHA-256 over its normalized
// canonical JSON. Two specs with the same hash compile to the same
// schedule.
func (s Spec) Hash() string {
	data, err := json.Marshal(s.withDefaults())
	if err != nil {
		// Spec is a closed tree of marshalable fields; this cannot fire.
		panic(fmt.Sprintf("workload: hash spec: %v", err))
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Provenance identifies one run completely: replaying the named spec (or
// file with the same hash) under the same seeds reproduces it.
type Provenance struct {
	// Workload is the spec name (preset, file-derived, or "custom").
	Workload string `json:"workload"`
	// SpecHash is Spec.Hash() of the effective (defaulted) spec.
	SpecHash string `json:"spec_hash"`
	// Seed is the workload seed.
	Seed int64 `json:"seed"`
	// FaultSeed drives the fault plan, when one is active.
	FaultSeed uint64 `json:"fault_seed"`
	// FaultPlan names the active fault plan ("" when none).
	FaultPlan string `json:"fault_plan,omitempty"`
}

// Provenance returns the provenance stamp of a compiled workload.
func (w *Workload) Provenance() Provenance {
	return Provenance{Workload: w.Name, SpecHash: w.SpecHash, Seed: w.Cfg.Seed}
}

// presets returns the named spec table. Rebuilt per call so callers can
// mutate the result (e.g. override the seed) without aliasing.
func presets() map[string]Spec {
	return map[string]Spec{
		// uniform routes through the frozen legacy generator and is
		// byte-for-byte the pre-spec driver's traffic (enforced by
		// TestUniformPresetMatchesLegacyDriver in internal/sim).
		"uniform": {
			Name:   "uniform",
			Seed:   1,
			Legacy: &Config{},
		},
		// zipf-hot: a small writer population and a large reader
		// population, both hammering a Zipf-popular object head — the
		// skewed cell the netmodel is calibrated on.
		"zipf-hot": {
			Name:      "zipf-hot",
			Seed:      1,
			Nodes:     8,
			Objects:   ObjectPop{Count: 24, MinPages: 1, MaxPages: 5},
			HorizonMs: 40,
			Classes: []ClientClass{
				{
					Name:          "writer",
					Population:    2000,
					WriteFraction: 0.9,
					Rate:          RateDist{Dist: "zipf", MeanHz: 2, S: 1.1},
					Arrivals:      ArrivalSpec{Process: "poisson", Envelope: "constant"},
					ObjectDist:    ObjectDist{Dist: "zipf", S: 1.3},
				},
				{
					Name:          "reader",
					Population:    50000,
					WriteFraction: 0.05,
					Rate:          RateDist{Dist: "lognormal", MeanHz: 0.12, Sigma: 1.8},
					Arrivals:      ArrivalSpec{Process: "poisson", Envelope: "constant"},
					ObjectDist:    ObjectDist{Dist: "zipf", S: 1.3},
				},
			},
		},
		// diurnal: a mixed class whose arrival rate swings sinusoidally —
		// two peaks inside the horizon.
		"diurnal": {
			Name:      "diurnal",
			Seed:      1,
			Nodes:     8,
			Objects:   ObjectPop{Count: 20, MinPages: 1, MaxPages: 5},
			HorizonMs: 60,
			Classes: []ClientClass{
				{
					Name:          "mixed",
					Population:    20000,
					WriteFraction: 0.5,
					Rate:          RateDist{Dist: "lognormal", MeanHz: 0.35, Sigma: 1.5},
					Arrivals: ArrivalSpec{
						Process: "poisson", Envelope: "diurnal",
						PeriodMs: 30, Amplitude: 0.8,
					},
					ObjectDist: ObjectDist{Dist: "hotset", HotFraction: 0.25, HotWeight: 0.85},
				},
			},
		},
		// write-heavy: almost every invocation updates, in bursts — the
		// worst case for ownership churn and delta journaling.
		"write-heavy": {
			Name:      "write-heavy",
			Seed:      1,
			Nodes:     8,
			Objects:   ObjectPop{Count: 20, MinPages: 1, MaxPages: 5},
			HorizonMs: 40,
			Classes: []ClientClass{
				{
					Name:          "writer",
					Population:    5000,
					WriteFraction: 0.95,
					Rate:          RateDist{Dist: "zipf", MeanHz: 1.5, S: 0.9},
					Arrivals: ArrivalSpec{
						Process: "poisson", Envelope: "bursty",
						PeriodMs: 10, BurstDuty: 0.3, BurstFactor: 4,
					},
					ObjectDist: ObjectDist{Dist: "uniform"},
				},
			},
		},
	}
}

// Preset returns a copy of the named built-in spec.
func Preset(name string) (*Spec, bool) {
	p, ok := presets()[name]
	if !ok {
		return nil, false
	}
	p = p.withDefaults()
	return &p, true
}

// PresetNames lists the built-in spec names, sorted.
func PresetNames() []string {
	m := presets()
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// horizon returns the spec's generation window as a duration.
func (s Spec) horizon() time.Duration {
	return time.Duration(s.HorizonMs * float64(time.Millisecond))
}
