package workload

// Empirical trace distributions. Instead of a parametric law ("zipf",
// "lognormal"), a class's rate or object distribution can point at a trace
// file of observed per-rank weights — e.g. request counts per client or
// per key exported from a production log. The trace is normalized into a
// rank-quantile density and resampled onto the spec's population (clients
// or objects), then feeds the same O(buckets) rank-bucket machinery the
// parametric laws use, so a million-client class driven by a thousand-line
// trace still costs O(buckets) memory.
//
// Two line-oriented formats are accepted, sniffed per line:
//
//	CSV:   "weight" or "rank,weight" (optional "rank,weight" header)
//	JSONL: {"weight": w} or {"rank": r, "weight": w} per line
//
// Blank lines and '#' comments are skipped. When ranks are present the
// entries are sorted by rank; otherwise file order is rank order. Weights
// must be non-negative with a positive sum.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// traceEntry is one parsed line: an optional explicit rank and a weight.
type traceEntry struct {
	Rank   *int     `json:"rank"`
	Weight *float64 `json:"weight"`
}

// ParseTrace decodes a trace from its raw bytes and returns the weights in
// rank order, normalized to sum 1.
func ParseTrace(data []byte) ([]float64, error) {
	type rw struct {
		rank   int
		weight float64
	}
	var (
		entries []rw
		ranked  bool
		lineNo  int
	)
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "{") {
			var e traceEntry
			if err := json.Unmarshal([]byte(line), &e); err != nil {
				return nil, fmt.Errorf("workload: trace line %d: %w", lineNo, err)
			}
			if e.Weight == nil {
				return nil, fmt.Errorf("workload: trace line %d: missing weight", lineNo)
			}
			ent := rw{rank: len(entries), weight: *e.Weight}
			if e.Rank != nil {
				ent.rank = *e.Rank
				ranked = true
			}
			entries = append(entries, ent)
			continue
		}
		fields := strings.Split(line, ",")
		switch len(fields) {
		case 1:
			w, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
			if err != nil {
				return nil, fmt.Errorf("workload: trace line %d: %w", lineNo, err)
			}
			entries = append(entries, rw{rank: len(entries), weight: w})
		case 2:
			r, err1 := strconv.ParseInt(strings.TrimSpace(fields[0]), 10, 64)
			w, err2 := strconv.ParseFloat(strings.TrimSpace(fields[1]), 64)
			if err1 != nil || err2 != nil {
				// A non-numeric first data line is a header ("rank,weight").
				if len(entries) == 0 {
					continue
				}
				return nil, fmt.Errorf("workload: trace line %d: %q", lineNo, line)
			}
			entries = append(entries, rw{rank: int(r), weight: w})
			ranked = true
		default:
			return nil, fmt.Errorf("workload: trace line %d: %d fields", lineNo, len(fields))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: trace: %w", err)
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("workload: trace is empty")
	}
	if ranked {
		sort.SliceStable(entries, func(i, j int) bool { return entries[i].rank < entries[j].rank })
	}
	weights := make([]float64, len(entries))
	var sum float64
	for i, e := range entries {
		if e.weight < 0 {
			return nil, fmt.Errorf("workload: trace rank %d: negative weight %g", e.rank, e.weight)
		}
		weights[i] = e.weight
		sum += e.weight
	}
	if sum <= 0 {
		return nil, fmt.Errorf("workload: trace has zero total weight")
	}
	for i := range weights {
		weights[i] /= sum
	}
	return weights, nil
}

// LoadTrace reads and parses a trace file.
func LoadTrace(path string) ([]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("workload: trace: %w", err)
	}
	w, err := ParseTrace(data)
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, path)
	}
	return w, nil
}

// SaveTrace writes weights as a "rank,weight" CSV, the canonical
// round-trippable encoding (LoadTrace(SaveTrace(w)) re-normalizes to the
// same distribution).
func SaveTrace(path string, weights []float64) error {
	var b strings.Builder
	b.WriteString("rank,weight\n")
	for i, w := range weights {
		fmt.Fprintf(&b, "%d,%g\n", i, w)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// traceMass integrates a normalized trace over the quantile interval
// [a, b) ⊆ [0, 1], treating entry j as uniform density over
// [j/m, (j+1)/m). Resampling a trace onto a differently-sized population
// is repeated calls with that population's rank spans.
func traceMass(weights []float64, a, b float64) float64 {
	m := float64(len(weights))
	if a < 0 {
		a = 0
	}
	if b > 1 {
		b = 1
	}
	if b <= a {
		return 0
	}
	var mass float64
	lo := int(a * m)
	hi := int(b * m)
	if hi >= len(weights) {
		hi = len(weights) - 1
	}
	for j := lo; j <= hi; j++ {
		l, r := float64(j)/m, float64(j+1)/m
		if l < a {
			l = a
		}
		if r > b {
			r = b
		}
		if r > l {
			mass += weights[j] * (r - l) * m
		}
	}
	return mass
}

// traceCum resamples a normalized trace onto an n-element population and
// returns the cumulative weights (traceCum[i] = mass of ranks 0..i).
func traceCum(weights []float64, n int) []float64 {
	cum := make([]float64, n)
	var sum float64
	for i := 0; i < n; i++ {
		sum += traceMass(weights, float64(i)/float64(n), float64(i+1)/float64(n))
		cum[i] = sum
	}
	return cum
}
