package workload

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"lotec/internal/ids"
)

func TestScriptRoundTrip(t *testing.T) {
	call := Call{
		ObjIndex: 1, Method: "w0", Seed: 99, ExtraSeg: 2,
		Children: []Call{
			{ObjIndex: 0, Method: "r1", Seed: 5},
			{ObjIndex: 2, Method: "w2", Seed: 6, Children: []Call{
				{ObjIndex: 3, Method: "r0", Seed: 7},
			}},
		},
	}
	objs := []ids.ObjectID{10, 11, 12, 13}
	sc, err := decodeScript(EncodeCall(objs, call))
	if err != nil {
		t.Fatal(err)
	}
	if sc.seed != 99 || sc.extraSeg != 2 || len(sc.children) != 2 {
		t.Fatalf("script = %+v", sc)
	}
	if sc.children[0].obj != 10 || sc.children[0].method != "r1" {
		t.Errorf("child0 = %+v", sc.children[0])
	}
	inner, err := decodeScript(sc.children[1].arg)
	if err != nil {
		t.Fatal(err)
	}
	if len(inner.children) != 1 || inner.children[0].obj != 13 {
		t.Errorf("inner = %+v", inner)
	}
}

func sameWorkload(a, b *Workload) bool {
	if len(a.Roots) != len(b.Roots) || len(a.Objects) != len(b.Objects) {
		return false
	}
	for i := range a.Objects {
		if a.Objects[i] != b.Objects[i] {
			return false
		}
	}
	for i := range a.Roots {
		ra, rb := a.Roots[i], b.Roots[i]
		if ra.At != rb.At || ra.Node != rb.Node || ra.Class != rb.Class {
			return false
		}
		var walk func(x, y Call) bool
		walk = func(x, y Call) bool {
			if x.ObjIndex != y.ObjIndex || x.Method != y.Method || x.Seed != y.Seed ||
				x.Fail != y.Fail || x.Tolerate != y.Tolerate || len(x.Children) != len(y.Children) {
				return false
			}
			for j := range x.Children {
				if !walk(x.Children[j], y.Children[j]) {
					return false
				}
			}
			return true
		}
		if !walk(ra.Call, rb.Call) {
			return false
		}
	}
	return true
}

func TestCompileDeterministic(t *testing.T) {
	for _, name := range PresetNames() {
		t.Run(name, func(t *testing.T) {
			spec, ok := Preset(name)
			if !ok {
				t.Fatalf("preset %q missing", name)
			}
			a, err := Compile(spec)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Compile(spec)
			if err != nil {
				t.Fatal(err)
			}
			if !sameWorkload(a, b) {
				t.Error("same spec compiled to different schedules")
			}
			if a.SpecHash == "" || a.SpecHash != b.SpecHash {
				t.Errorf("spec hash unstable: %q vs %q", a.SpecHash, b.SpecHash)
			}
			if a.Name != name {
				t.Errorf("workload name = %q, want %q", a.Name, name)
			}
			if len(a.Roots) == 0 {
				t.Error("preset compiled to an empty schedule")
			}
		})
	}
}

func TestCompileSeedSensitivity(t *testing.T) {
	spec, _ := Preset("zipf-hot")
	a, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec2, _ := Preset("zipf-hot")
	spec2.Seed = 2
	b, err := Compile(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if sameWorkload(a, b) {
		t.Error("different seeds compiled to identical schedules")
	}
	if a.SpecHash == b.SpecHash {
		t.Error("seed change did not change spec hash")
	}
}

// Editing one class must not perturb another class's stream: that is the
// point of per-(class, purpose) sub-seeded RNGs.
func TestCompileClassIsolation(t *testing.T) {
	spec, _ := Preset("zipf-hot")
	a, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec2, _ := Preset("zipf-hot")
	spec2.Classes[0].Rate.MeanHz *= 3 // triple the writer class only
	b, err := Compile(spec2)
	if err != nil {
		t.Fatal(err)
	}
	pick := func(w *Workload, class string) []RootSpec {
		var out []RootSpec
		for _, r := range w.Roots {
			if r.Class == class {
				out = append(out, r)
			}
		}
		return out
	}
	ra, rb := pick(a, "reader"), pick(b, "reader")
	if len(ra) != len(rb) {
		t.Fatalf("reader stream resized: %d vs %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i].At != rb[i].At || ra[i].Call.Seed != rb[i].Call.Seed {
			t.Fatalf("reader root %d perturbed by writer-class edit", i)
		}
	}
	if len(pick(b, "writer")) <= len(pick(a, "writer")) {
		t.Error("tripling the writer rate did not grow the writer stream")
	}
}

func TestCompileScheduleShape(t *testing.T) {
	spec, _ := Preset("zipf-hot")
	w, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	horizon := spec.horizon()
	var last time.Duration
	for i, r := range w.Roots {
		if r.At < last {
			t.Fatalf("roots not sorted by arrival at %d", i)
		}
		last = r.At
		if r.At >= horizon {
			t.Fatalf("root %d at %v beyond horizon %v", i, r.At, horizon)
		}
		if r.Node < 1 || int(r.Node) > spec.Nodes {
			t.Fatalf("root %d on node %d outside 1..%d", i, r.Node, spec.Nodes)
		}
		if r.Class != "writer" && r.Class != "reader" {
			t.Fatalf("root %d has class %q", i, r.Class)
		}
	}
	if w.Cfg.Transactions != len(w.Roots) {
		t.Errorf("Cfg.Transactions = %d, want %d", w.Cfg.Transactions, len(w.Roots))
	}
	if got, want := w.ClassNames, []string{"writer", "reader"}; len(got) != 2 ||
		got[0] != want[0] || got[1] != want[1] {
		t.Errorf("ClassNames = %v", got)
	}
}

// Zipf object selection must actually skew: the head object should see far
// more than its uniform share of accesses.
func TestCompileZipfObjectSkew(t *testing.T) {
	spec, _ := Preset("zipf-hot")
	w, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, spec.Objects.Count)
	var total int
	var walk func(c Call)
	walk = func(c Call) {
		counts[c.ObjIndex]++
		total++
		for _, ch := range c.Children {
			walk(ch)
		}
	}
	for _, r := range w.Roots {
		walk(r.Call)
	}
	uniformShare := float64(total) / float64(spec.Objects.Count)
	if float64(counts[0]) < 2*uniformShare {
		t.Errorf("object 0 saw %d of %d accesses; want ≥ 2× the uniform share %.0f",
			counts[0], total, uniformShare)
	}
}

// The diurnal envelope must modulate arrivals: peak-envelope windows see
// more traffic than trough windows.
func TestCompileDiurnalEnvelope(t *testing.T) {
	spec, _ := Preset("diurnal")
	w, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	period := time.Duration(spec.Classes[0].Arrivals.PeriodMs * float64(time.Millisecond))
	var peak, trough int
	for _, r := range w.Roots {
		phase := float64(r.At%period) / float64(period)
		switch {
		case phase >= 0.10 && phase < 0.40: // around sin peak (phase 0.25)
			peak++
		case phase >= 0.60 && phase < 0.90: // around sin trough (phase 0.75)
			trough++
		}
	}
	if peak <= trough {
		t.Errorf("diurnal envelope did not modulate: peak window %d ≤ trough window %d", peak, trough)
	}
}

func TestCompileRespectsMaxRoots(t *testing.T) {
	spec, _ := Preset("write-heavy")
	spec.MaxRoots = 10
	if _, err := Compile(spec); err == nil {
		t.Error("overflowing max_roots should fail")
	}
}

func TestParseSpecValidation(t *testing.T) {
	if _, err := ParseSpec([]byte(`{`)); err == nil {
		t.Error("malformed JSON should fail")
	}
	if _, err := ParseSpec([]byte(`{"name":"x"}`)); err == nil {
		t.Error("spec without classes or legacy should fail")
	}
	if _, err := ParseSpec([]byte(`{"classes":[{"name":"a","rate":{"dist":"bogus"}}]}`)); err == nil {
		t.Error("unknown rate dist should fail")
	}
	if _, err := ParseSpec([]byte(`{"classes":[{"name":"a"},{"name":"a"}]}`)); err == nil {
		t.Error("duplicate class names should fail")
	}
	s, err := ParseSpec([]byte(`{"seed":7,"classes":[{"name":"a","population":50,"rate":{"mean_hz":40}}],"horizon_ms":30}`))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "custom" || s.Nodes != 8 || s.PageSize != 4096 {
		t.Errorf("defaults not applied: %+v", s)
	}
	w, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Roots) == 0 {
		t.Error("parsed spec compiled to empty schedule")
	}
}

func TestLoadSpecPreset(t *testing.T) {
	s, err := LoadSpec("zipf-hot")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "zipf-hot" {
		t.Errorf("name = %q", s.Name)
	}
	if _, err := LoadSpec("no-such-preset-or-file"); err == nil {
		t.Error("unknown spec arg should fail")
	}
}

func TestSpecHashStability(t *testing.T) {
	a, _ := Preset("zipf-hot")
	b, _ := Preset("zipf-hot")
	if a.Hash() != b.Hash() {
		t.Error("identical specs hash differently")
	}
	c, _ := Preset("diurnal")
	if a.Hash() == c.Hash() {
		t.Error("different specs hash identically")
	}
	// Defaults are part of the identity: a sparse spec and its defaulted
	// form hash the same.
	sparse := Spec{Name: "zipf-hot", Seed: a.Seed, Nodes: a.Nodes,
		Objects: a.Objects, HorizonMs: a.HorizonMs, Classes: a.Classes}
	if sparse.Hash() != a.Hash() {
		t.Error("defaulting changed the spec hash")
	}
}

func TestRateBucketsZipfSkew(t *testing.T) {
	cls := &ClientClass{Name: "c", Population: 100000,
		Rate: RateDist{Dist: "zipf", MeanHz: 2, S: 1.2}}
	tbl, total := rateBuckets(cls, nil)
	if want := 2.0 * 100000; math.Abs(total-want) > 1e-6 {
		t.Errorf("aggregate rate = %v, want %v", total, want)
	}
	// The first bucket (head ranks) must carry far more than its
	// uniform share of the rate mass.
	head := tbl.cum[0]
	mass := tbl.cum[len(tbl.cum)-1]
	if head < 10*mass/float64(len(tbl.cum)) {
		t.Errorf("zipf head bucket carries %.4f of mass; expected heavy skew", head/mass)
	}
	// pick must stay in range and favour the head.
	rng := rand.New(rand.NewSource(1))
	headHits := 0
	const draws = 10000
	for i := 0; i < draws; i++ {
		r := tbl.pick(rng)
		if r < 0 || r >= cls.Population {
			t.Fatalf("rank %d out of range", r)
		}
		if r < cls.Population/int(rateBucketCount) {
			headHits++
		}
	}
	if headHits < draws/20 {
		t.Errorf("head ranks drawn %d/%d times; expected skew toward head", headHits, draws)
	}
}

func TestRateBucketsLognormalMean(t *testing.T) {
	cls := &ClientClass{Name: "c", Population: 5000,
		Rate: RateDist{Dist: "lognormal", MeanHz: 0.5, Sigma: 1.5}}
	tbl, total := rateBuckets(cls, nil)
	if want := 0.5 * 5000; math.Abs(total-want) > 1e-6 {
		t.Errorf("aggregate rate = %v, want %v", total, want)
	}
	// Bucket-integrated mean should approximate MeanHz·Population within
	// discretization error.
	mass := tbl.cum[len(tbl.cum)-1]
	if mass <= 0 {
		t.Fatal("no rate mass")
	}
	ratio := mass / (0.5 * 5000)
	if ratio < 0.8 || ratio > 1.25 {
		t.Errorf("lognormal bucket mass off mean budget by ×%.3f", ratio)
	}
}

func TestInvNorm(t *testing.T) {
	// Spot checks against known quantiles of the standard normal.
	cases := []struct{ p, z float64 }{
		{0.5, 0}, {0.8413447, 1}, {0.1586553, -1}, {0.9772499, 2}, {0.9986501, 3},
	}
	for _, c := range cases {
		if got := invNorm(c.p); math.Abs(got-c.z) > 1e-4 {
			t.Errorf("invNorm(%v) = %v, want %v", c.p, got, c.z)
		}
	}
}

func TestEnvelopes(t *testing.T) {
	f, max := envelope(ArrivalSpec{Envelope: "constant"})
	if f(0.123) != 1 || max != 1 {
		t.Error("constant envelope wrong")
	}
	f, max = envelope(ArrivalSpec{Envelope: "diurnal", PeriodMs: 20, Amplitude: 0.5})
	if max != 1.5 {
		t.Errorf("diurnal max = %v", max)
	}
	if peak := f(0.005); math.Abs(peak-1.5) > 1e-9 { // quarter period = peak
		t.Errorf("diurnal peak = %v", peak)
	}
	for _, tt := range []float64{0, 0.003, 0.011, 0.017} {
		if v := f(tt); v < 0 || v > max {
			t.Errorf("diurnal f(%v) = %v outside [0,max]", tt, v)
		}
	}
	f, max = envelope(ArrivalSpec{Envelope: "bursty", PeriodMs: 10, BurstDuty: 0.2, BurstFactor: 4})
	if max != 4 {
		t.Errorf("bursty max = %v", max)
	}
	if f(0.001) != 4 || f(0.005) != 1 {
		t.Errorf("bursty phases wrong: burst=%v idle=%v", f(0.001), f(0.005))
	}
}

func TestKPICollector(t *testing.T) {
	k := NewKPICollector([]string{"writer", "reader"})
	k.Observe("writer", 100, true)
	k.Observe("writer", 300, true)
	k.Observe("writer", 0, false)
	k.Observe("reader", 50, true)
	k.Observe("", 10, true) // legacy empty class folds into "all"
	rows := k.Rows()
	if len(rows) != 3 || rows[0].Class != "writer" || rows[1].Class != "reader" || rows[2].Class != "all" {
		t.Fatalf("rows = %+v", rows)
	}
	w := rows[0]
	if w.Roots != 3 || w.Commits != 2 || w.Aborts != 1 {
		t.Errorf("writer counts = %+v", w)
	}
	if math.Abs(w.AbortRate-1.0/3) > 1e-9 {
		t.Errorf("abort rate = %v", w.AbortRate)
	}
	if w.LatP50Ns <= 0 || w.LatP99Ns < w.LatP50Ns {
		t.Errorf("latency percentiles = %+v", w)
	}
}

func TestProvenance(t *testing.T) {
	spec, _ := Preset("zipf-hot")
	w, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	p := w.Provenance()
	if p.Workload != "zipf-hot" || p.SpecHash != spec.Hash() || p.Seed != spec.Seed {
		t.Errorf("provenance = %+v", p)
	}
}

func TestUniformPresetRoutesThroughLegacy(t *testing.T) {
	spec, _ := Preset("uniform")
	w, err := Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	legacy, err := Generate(Config{Seed: spec.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if !sameWorkload(w, legacy) {
		t.Error("uniform preset diverged from the legacy generator")
	}
}
