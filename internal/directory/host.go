// The replicated directory shard host.
//
// A Host is one node's worth of the replicated control plane: for every
// shard the placement map assigns it, it holds a replica — a plain
// gdo.Directory plus replication bookkeeping — and serves the shard either
// as primary (applying operations and shipping them to the backup) or as
// backup (applying the primary's ordered op log and standing by for
// promotion). Hosts are wire-level actors behind a transport.AsyncHandler:
// a client operation is applied to the primary's directory immediately,
// but its reply is withheld and its events are not routed until the backup
// has acknowledged the op, so at most one acknowledged-but-unnotified
// operation exists per shard at any time — exactly the window promotion
// closes by replaying the backup's last applied events (all of which are
// duplicate-safe at the receiving engines).
//
// The op log is the simplest thing that works: a per-shard FIFO with one
// ReplicateReq in flight. Each ReplicateReq carries the encoded client
// operation, the primary's exact encoded reply (the backup primes its
// idempotency cache with it, so a client retrying against the promoted
// backup gets a byte-identical answer), and any host-level deadlock
// decisions (purges/aborts) the op triggered on that shard. Decisions
// touching a host's *other* shards ride those shards' own logs as
// decision-only entries.
//
// Ownership rule (the whole consistency argument): a host processes a
// client operation if and only if the stamped epoch equals its own map's
// epoch and its own map names it the shard's primary. Anything else gets a
// RouteResp carrying the host's map; every actor adopts only strictly
// newer maps. Epochs bump exactly once per promotion (serialized by the
// backup executing it) and once per handoff (serialized by the witness
// ratifying it), so no two distinct maps share an epoch.
//
// Failure model: single failure per shard group. A backup that stops
// acking is declared down and the primary continues unreplicated; a
// primary that stops answering is replaced by client-driven promotion.
// Losing both replicas, or partitioning a client from both, is outside
// the budget (the route layer reports ErrNoRoute).

package directory

import (
	"fmt"
	"sync"

	"lotec/internal/fault"
	"lotec/internal/gdo"
	"lotec/internal/ids"
	"lotec/internal/stats"
	"lotec/internal/transport"
	"lotec/internal/wire"
)

// HostConfig assembles one replicated directory host.
type HostConfig struct {
	// Env is the host's transport endpoint.
	Env transport.Env
	// Place is the shared object→shard assignment.
	Place Placement
	// Map is the initial placement (see InitialMap).
	Map wire.PlacementMap
	// Rec receives failover/handoff/epoch-reject samples. May be nil.
	Rec *stats.Recorder
}

// Host is one node of the replicated control plane. All state is guarded
// by mu; handler work runs under it and defers every blocking or reentrant
// action (replies, event routing, outbound RPC procs) to an acts list run
// after unlock.
type Host struct {
	env   transport.Env
	self  ids.NodeID
	place Placement
	rec   *stats.Recorder
	dedup *fault.Dedup

	mu     sync.Mutex
	cur    wire.PlacementMap
	reps   map[int]*replica
	reqCtr uint64

	// Cross-host deadlock detection (coord.go).
	edgeVer     uint64
	edgeDirty   bool
	edgeSending bool
	lastEdges   []wire.WaitEdge
	lastAges    []wire.FamilyAge
	peers       map[ids.NodeID]peerSummary
}

// replica is one shard's state at one host.
type replica struct {
	shard   int
	dir     *gdo.Directory
	primary bool
	// seq is the last op sequence applied here (primary: last enqueued,
	// backup: last applied from the log). A handoff transfers it so the
	// new primary's log extends the old one's.
	seq uint64

	// Primary-only replication pipeline.
	queue      []*repOp
	inflight   bool
	backupDown bool

	// Handoff (primary-only): sealed parks new ops, handoff tracks the
	// in-progress transfer.
	sealed  bool
	parked  []parkedOp
	handoff *handoffState

	// Backup-only: the events of the last applied op, replayed on
	// promotion to close the acked-but-unnotified window.
	lastEvents []gdo.Event
}

// repOp is one entry of a shard's op log.
type repOp struct {
	seq        uint64
	client     ids.NodeID
	opBytes    []byte // encoded client op; nil for decision-only entries
	reply      wire.Msg
	replyBytes []byte
	events     []gdo.Event
	purges     []ids.FamilyID
	aborts     []ids.FamilyID
	done       func(wire.Msg) // nil for decision-only entries
}

// parkedOp is a client operation held back while its shard is sealed.
type parkedOp struct {
	from  ids.NodeID
	m     wire.Msg
	reply func(wire.Msg)
}

// peerSummary is the coordinator's latest view of one peer host's local
// waits-for graph.
type peerSummary struct {
	ver   uint64
	edges []wire.WaitEdge
	ages  []wire.FamilyAge
}

// NewHost builds the host and instantiates a replica for every shard the
// initial map assigns it (as primary or backup).
func NewHost(cfg HostConfig) *Host {
	h := &Host{
		env:   cfg.Env,
		self:  cfg.Env.Self(),
		place: cfg.Place,
		rec:   cfg.Rec,
		dedup: fault.NewDedup(),
		cur:   cfg.Map.Clone(),
		reps:  make(map[int]*replica),
		peers: make(map[ids.NodeID]peerSummary),
	}
	for s := 0; s < h.cur.NumShards(); s++ {
		switch h.self {
		case h.cur.Primary[s]:
			h.reps[s] = &replica{shard: s, dir: gdo.New(h.place.Nodes), primary: true}
		case h.cur.Backup[s]:
			h.reps[s] = &replica{shard: s, dir: gdo.New(h.place.Nodes)}
		}
	}
	return h
}

// Handler returns the host's message entry point, wrapped in its
// idempotency cache (duplicate retried requests park behind the original
// and receive the same reply; promoted backups answer replayed client
// requests from primed entries).
func (h *Host) Handler() transport.AsyncHandler {
	return h.dedup.WrapAsync(h.handle)
}

// Self returns the host's node ID.
func (h *Host) Self() ids.NodeID { return h.self }

// Map returns a copy of the host's current placement map.
func (h *Host) Map() wire.PlacementMap {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.cur.Clone()
}

// RegisterLocal installs an object into this host's replica of its shard
// (primary or backup), if any. Deployments register objects before traffic
// starts so every replica begins from the same directory state.
func (h *Host) RegisterLocal(obj ids.ObjectID, numPages int, owner ids.NodeID) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	rep := h.reps[h.place.ShardOf(obj)]
	if rep == nil {
		return nil
	}
	return rep.dir.Register(obj, numPages, owner)
}

// PrimaryDir exposes the directory of a shard this host currently serves
// as primary (oracles and tests).
func (h *Host) PrimaryDir(shard int) (*gdo.Directory, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	rep := h.reps[shard]
	if rep == nil || !rep.primary {
		return nil, false
	}
	return rep.dir, true
}

// ReplicaDir exposes any replica's directory plus its role.
func (h *Host) ReplicaDir(shard int) (dir *gdo.Directory, primary, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	rep := h.reps[shard]
	if rep == nil {
		return nil, false, false
	}
	return rep.dir, rep.primary, true
}

// DebugDump renders the lock state of every shard this host serves as
// primary (empty when fully drained).
func (h *Host) DebugDump() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := ""
	for s := 0; s < h.cur.NumShards(); s++ {
		rep := h.reps[s]
		if rep == nil || !rep.primary {
			continue
		}
		if d := rep.dir.DebugDump(); d != "" {
			out += fmt.Sprintf("shard %d:\n%s", s, d)
		}
	}
	return out
}

// acts collects side effects produced under h.mu — replies, event fan-out,
// outbound RPC procs — and runs them after unlock, preserving order. This
// keeps the handler non-blocking and non-reentrant as the transport
// contract requires.
type acts struct {
	h   *Host
	fns []func()
}

func (a *acts) reply(cb func(wire.Msg), m wire.Msg) {
	if cb == nil {
		return
	}
	a.fns = append(a.fns, func() { cb(m) })
}

func (a *acts) events(evs []gdo.Event) {
	if len(evs) == 0 {
		return
	}
	a.fns = append(a.fns, func() { a.h.routeEvents(evs) })
}

func (a *acts) proc(fn func()) {
	a.fns = append(a.fns, func() { a.h.env.Go(fn) })
}

func (a *acts) run() {
	for _, fn := range a.fns {
		fn()
	}
}

// routeEvents ships deferred directory decisions to the affected sites,
// exactly as the in-engine GDO host does (Alg 4.4 notifications).
func (h *Host) routeEvents(events []gdo.Event) {
	for _, ev := range events {
		switch ev.Kind {
		case gdo.EventGrant:
			_ = h.env.Send(ev.Site, &wire.Grant{
				Obj:        ev.Obj,
				Family:     ev.Family,
				Mode:       ev.Mode,
				Upgrade:    ev.Upgrade,
				NumPages:   int32(ev.NumPages),
				LastWriter: ev.LastWriter,
				Shard:      ev.Shard,
				Reqs:       ev.Reqs,
				PageMap:    ev.PageMap,
			})
		case gdo.EventDeadlockAbort:
			_ = h.env.Send(ev.Site, &wire.Abort{
				Obj:    ev.Obj,
				Family: ev.Family,
				Shard:  ev.Shard,
				Reqs:   ev.Reqs,
			})
		}
	}
}

// handle is the raw (pre-dedup) dispatcher.
func (h *Host) handle(from ids.NodeID, m wire.Msg, reply func(wire.Msg)) {
	a := &acts{h: h}
	h.mu.Lock()
	switch t := m.(type) {
	case *wire.AcquireReq:
		h.clientOpLocked(a, from, int(t.Shard), t.Epoch, m, reply)
	case *wire.ReleaseReq:
		h.clientOpLocked(a, from, int(t.Shard), t.Epoch, m, reply)
	case *wire.CommitSeqReq:
		// The global commit sequencer lives on shard 0's primary.
		h.clientOpLocked(a, from, 0, t.Epoch, m, reply)
	case *wire.RegisterReq:
		// Registration is epoch-free (setup traffic); route by ownership.
		h.clientOpLocked(a, from, h.place.ShardOf(t.Obj), h.cur.Epoch, m, reply)
	case *wire.CopySetReq:
		a.reply(reply, h.copySetLocked(t))
	case *wire.ReplicateReq:
		a.reply(reply, h.replicateLocked(a, t))
	case *wire.PromoteReq:
		a.reply(reply, h.promoteLocked(a, t))
	case *wire.EpochChangeReq:
		a.reply(reply, h.epochChangeLocked(a, t))
	case *wire.HandoffStartReq:
		h.handoffStartLocked(a, t, reply)
	case *wire.HandoffReq:
		h.handoffRecvLocked(a, t, reply)
	case *wire.WaitEdgeUpdate:
		a.reply(reply, h.waitEdgesLocked(a, from, t))
	case *wire.AbortFamilyReq:
		h.abortFamilyLocked(a, t.Family)
		a.reply(reply, &wire.AbortFamilyResp{})
	default:
		a.reply(reply, &wire.ErrResp{Msg: fmt.Sprintf("directory: host cannot serve %T", m)})
	}
	h.mu.Unlock()
	a.run()
}

// ownerLocked applies the ownership rule: this host processes (shard,
// epoch) iff the epochs match exactly and its own map names it primary.
func (h *Host) ownerLocked(shard int, epoch uint64) *replica {
	if shard < 0 || shard >= h.cur.NumShards() {
		return nil
	}
	if epoch != h.cur.Epoch || h.cur.Primary[shard] != h.self {
		return nil
	}
	rep := h.reps[shard]
	if rep == nil || !rep.primary {
		return nil
	}
	return rep
}

// clientOpLocked is the client-operation front door: ownership check,
// seal parking, then apply-and-enqueue.
func (h *Host) clientOpLocked(a *acts, from ids.NodeID, shard int, epoch uint64, m wire.Msg, reply func(wire.Msg)) {
	rep := h.ownerLocked(shard, epoch)
	if rep == nil {
		if h.rec != nil {
			h.rec.AddEpochReject()
		}
		a.reply(reply, &wire.RouteResp{Map: h.cur.Clone()})
		return
	}
	if rep.sealed {
		rep.parked = append(rep.parked, parkedOp{from: from, m: m, reply: reply})
		return
	}
	h.applyEnqueueLocked(a, rep, from, m, reply)
}

// replayParkedLocked re-dispatches operations parked during a seal through
// the normal front door. If the epoch moved while they waited (handoff
// completed), the ownership check answers each with a RouteResp and the
// client re-aims — parked work is replayed or redirected, never dropped.
func (h *Host) replayParkedLocked(a *acts, ops []parkedOp) {
	for _, p := range ops {
		switch t := p.m.(type) {
		case *wire.AcquireReq:
			h.clientOpLocked(a, p.from, int(t.Shard), t.Epoch, p.m, p.reply)
		case *wire.ReleaseReq:
			h.clientOpLocked(a, p.from, int(t.Shard), t.Epoch, p.m, p.reply)
		case *wire.CommitSeqReq:
			h.clientOpLocked(a, p.from, 0, t.Epoch, p.m, p.reply)
		case *wire.RegisterReq:
			h.clientOpLocked(a, p.from, h.place.ShardOf(t.Obj), h.cur.Epoch, p.m, p.reply)
		default:
			a.reply(p.reply, &wire.ErrResp{Msg: "directory: unparkable op"})
		}
	}
}

// applyEnqueueLocked applies a client op to the primary's directory,
// derives host-level deadlock decisions, and appends the op (plus any
// decision-only entries for sibling shards) to the shard logs.
func (h *Host) applyEnqueueLocked(a *acts, rep *replica, from ids.NodeID, m wire.Msg, reply func(wire.Msg)) {
	op, extras, errResp := h.applyLocked(rep, from, m)
	if errResp != nil {
		a.reply(reply, errResp)
		return
	}
	op.done = reply
	h.enqueueLocked(a, rep, op)
	for s := 0; s < h.cur.NumShards(); s++ {
		if extra, ok := extras[s]; ok {
			h.enqueueLocked(a, h.reps[s], extra)
		}
	}
	h.markEdgesDirtyLocked(a)
}

// enqueueLocked assigns the op its log position and pumps the pipeline.
func (h *Host) enqueueLocked(a *acts, rep *replica, op *repOp) {
	rep.seq++
	op.seq = rep.seq
	rep.queue = append(rep.queue, op)
	h.pumpLocked(a, rep)
}

// applyLocked executes one client op against rep's directory and returns
// the log entry, plus decision-only entries for any *other* primary shards
// a host-level deadlock decision touched (keyed by shard).
func (h *Host) applyLocked(rep *replica, from ids.NodeID, m wire.Msg) (*repOp, map[int]*repOp, wire.Msg) {
	op := &repOp{client: from}
	var extras map[int]*repOp
	switch t := m.(type) {
	case *wire.AcquireReq:
		res, events, err := rep.dir.Acquire(t.Obj, t.Ref, t.Family, t.Age, t.Site, t.Mode)
		if err != nil {
			return nil, nil, &wire.ErrResp{Msg: err.Error()}
		}
		op.events = stamp(rep.shard, events)
		if res.Status == gdo.Queued {
			if victim, found := h.findVictimLocked(t.Family); found {
				extras = h.applyVictimLocked(rep, op, victim, victim == t.Family)
				if victim == t.Family {
					res = gdo.AcquireResult{Status: gdo.DeadlockAbort}
				}
			}
		}
		op.reply = &wire.AcquireResp{
			Obj:        t.Obj,
			Status:     res.Status,
			Mode:       res.Mode,
			NumPages:   int32(res.NumPages),
			LastWriter: res.LastWriter,
			Shard:      t.Shard,
			PageMap:    res.PageMap,
		}
	case *wire.ReleaseReq:
		events, stamps, err := rep.dir.Release(t.Family, t.Site, t.Commit, t.Rels)
		if err != nil {
			return nil, nil, &wire.ErrResp{Msg: err.Error()}
		}
		op.events = stamp(rep.shard, events)
		extras = h.sweepLocked(rep, op)
		op.reply = &wire.ReleaseResp{Shard: t.Shard, Stamps: stamps}
	case *wire.CommitSeqReq:
		op.reply = &wire.CommitSeqResp{Seq: rep.dir.AssignCommitSeq(t.Family)}
	case *wire.RegisterReq:
		if err := rep.dir.Register(t.Obj, int(t.NumPages), t.Owner); err != nil {
			return nil, nil, &wire.ErrResp{Msg: err.Error()}
		}
		op.reply = &wire.RegisterResp{}
	default:
		return nil, nil, &wire.ErrResp{Msg: fmt.Sprintf("directory: %T is not a shard op", m)}
	}
	op.opBytes = wire.Encode(wire.Envelope{From: from, To: h.self}, m)
	op.replyBytes = wire.Encode(wire.Envelope{From: h.self, To: from}, op.reply)
	return op, extras, nil
}

// copySetLocked serves the read-only batched copy-set lookup across this
// host's primary shards. Reads replicate nothing.
func (h *Host) copySetLocked(t *wire.CopySetReq) wire.Msg {
	sets := make([]wire.CopySet, 0, len(t.Objs))
	for _, obj := range t.Objs {
		rep := h.reps[h.place.ShardOf(obj)]
		if rep == nil || !rep.primary {
			return &wire.RouteResp{Map: h.cur.Clone()}
		}
		sites, err := rep.dir.CopySet(obj)
		if err != nil {
			return &wire.ErrResp{Msg: err.Error()}
		}
		sets = append(sets, wire.CopySet{Obj: obj, Sites: sites})
	}
	return &wire.CopySetResp{Sets: sets}
}

// pumpLocked advances a primary shard's replication pipeline: complete
// ops directly when there is no live backup, otherwise keep exactly one
// ReplicateReq in flight, FIFO.
func (h *Host) pumpLocked(a *acts, rep *replica) {
	if !rep.primary || rep.inflight {
		return
	}
	for len(rep.queue) > 0 {
		op := rep.queue[0]
		backup := h.cur.Backup[rep.shard]
		if backup == ids.NoNode || backup == h.self || rep.backupDown {
			rep.queue = rep.queue[1:]
			h.completeLocked(a, op)
			continue
		}
		rep.inflight = true
		h.reqCtr++
		req := &wire.ReplicateReq{
			ReqID:  h.reqCtr,
			Shard:  int32(rep.shard),
			Epoch:  h.cur.Epoch,
			Seq:    op.seq,
			Client: op.client,
			Op:     op.opBytes,
			Reply:  op.replyBytes,
			Purges: op.purges,
			Aborts: op.aborts,
			Map:    h.cur.Clone(),
		}
		shard := rep.shard
		a.proc(func() {
			resp, err := h.env.Call(backup, req)
			h.onReplicated(shard, op, resp, err)
		})
		return
	}
	h.maybeShipLocked(a, rep)
}

// completeLocked finishes an acknowledged (or unreplicated) op: events
// first, then the withheld client reply.
func (h *Host) completeLocked(a *acts, op *repOp) {
	a.events(op.events)
	a.reply(op.done, op.reply)
}

// onReplicated is the continuation of one ReplicateReq.
func (h *Host) onReplicated(shard int, op *repOp, resp wire.Msg, err error) {
	a := &acts{h: h}
	h.mu.Lock()
	rep := h.reps[shard]
	if rep == nil || !rep.primary || !rep.inflight {
		h.mu.Unlock()
		a.run()
		return
	}
	rep.inflight = false
	rr, isRR := resp.(*wire.ReplicateResp)
	switch {
	case err != nil || !isRR:
		// Backup unreachable (or incoherent): declare it down for this
		// shard and continue unreplicated. Single-failure budget spent.
		rep.backupDown = true
	case !rr.OK:
		// The backup owns a newer view: adopt it. If it deposes us the
		// adoption reconciliation redirects every queued and parked op.
		h.adoptLocked(a, rr.Map)
		if h.reps[shard] != rep || !rep.primary {
			h.mu.Unlock()
			a.run()
			return
		}
		// Still primary under the newer epoch (an unrelated shard moved):
		// the pump below resends with the new stamp.
	default:
		rep.queue = rep.queue[1:]
		h.completeLocked(a, op)
	}
	h.pumpLocked(a, rep)
	h.mu.Unlock()
	a.run()
}

// replicateLocked applies one log entry at the backup. The backup runs
// the op through its own directory (deterministically reproducing the
// primary's state transition), applies the shipped host-level decisions,
// primes its idempotency cache with the primary's exact reply, and keeps
// the op's events for replay on promotion.
func (h *Host) replicateLocked(a *acts, t *wire.ReplicateReq) wire.Msg {
	shard := int(t.Shard)
	if t.Epoch > h.cur.Epoch {
		// The primary moved ahead — a promotion on another host bumps the
		// epoch with no witness round, so this request may be the first
		// carrier of the new map. Adopt it and reconcile; refusing with our
		// older map could never advance the primary and the pair would
		// resend/refuse forever.
		h.adoptLocked(a, t.Map)
	}
	if t.Epoch < h.cur.Epoch {
		// Stale primary (we promoted or ratified past it): refuse with
		// the newer map so it deposes itself.
		return &wire.ReplicateResp{OK: false, Map: h.cur.Clone()}
	}
	rep := h.reps[shard]
	if rep == nil || rep.primary || h.cur.Backup[shard] != h.self {
		return &wire.ReplicateResp{OK: false, Map: h.cur.Clone()}
	}
	if t.Seq <= rep.seq {
		// Duplicate of an already-applied entry.
		return &wire.ReplicateResp{OK: true, Map: h.cur.Clone()}
	}
	if t.Seq != rep.seq+1 {
		return &wire.ReplicateResp{OK: false, Map: h.cur.Clone()}
	}

	var events []gdo.Event
	if len(t.Op) > 0 {
		_, m, err := wire.Decode(t.Op)
		if err != nil {
			return &wire.ErrResp{Msg: "directory: undecodable replicated op: " + err.Error()}
		}
		events = h.applyBackupOp(rep, m)
		if im, ok := m.(wire.Idempotent); ok && len(t.Reply) > 0 {
			if _, reply, err := wire.Decode(t.Reply); err == nil {
				h.dedup.Prime(t.Client, im.RequestID(), reply)
			}
		}
	}
	for _, f := range t.Purges {
		rep.dir.PurgeFamily(f)
	}
	for _, f := range t.Aborts {
		events = append(events, stamp(shard, rep.dir.AbortVictim(f))...)
	}
	rep.seq = t.Seq
	rep.lastEvents = events
	return &wire.ReplicateResp{OK: true, Map: h.cur.Clone()}
}

// applyBackupOp replays one client op against a backup replica's
// directory. The primary already validated it, so errors reduce to
// no-ops; the returned events are retained for promotion replay only.
func (h *Host) applyBackupOp(rep *replica, m wire.Msg) []gdo.Event {
	switch t := m.(type) {
	case *wire.AcquireReq:
		_, events, _ := rep.dir.Acquire(t.Obj, t.Ref, t.Family, t.Age, t.Site, t.Mode)
		return stamp(rep.shard, events)
	case *wire.ReleaseReq:
		events, _, _ := rep.dir.Release(t.Family, t.Site, t.Commit, t.Rels)
		return stamp(rep.shard, events)
	case *wire.CommitSeqReq:
		rep.dir.AssignCommitSeq(t.Family)
	case *wire.RegisterReq:
		_ = rep.dir.Register(t.Obj, int(t.NumPages), t.Owner)
	}
	return nil
}

// promoteLocked executes client-driven failover: if the reportedly dead
// node is the primary of shards this host backs, promote every such shard
// in one epoch bump, replay the last applied events (closing the
// acked-but-unnotified window; receivers tolerate duplicates), and answer
// with the new map. Already-promoted (or mistaken) requests just get the
// current map — promotion is idempotent at the state level.
func (h *Host) promoteLocked(a *acts, t *wire.PromoteReq) wire.Msg {
	next := h.cur.Clone()
	promoted := false
	for s := range next.Primary {
		if next.Primary[s] != t.Dead || next.Backup[s] != h.self {
			continue
		}
		rep := h.reps[s]
		if rep == nil || rep.primary {
			continue
		}
		next.Primary[s] = h.self
		next.Backup[s] = ids.NoNode
		promoted = true
	}
	if !promoted {
		return &wire.PromoteResp{Map: h.cur.Clone()}
	}
	next.Epoch = h.cur.Epoch + 1
	h.cur = next
	for s := 0; s < h.cur.NumShards(); s++ {
		rep := h.reps[s]
		if rep == nil || h.cur.Primary[s] != h.self || rep.primary {
			continue
		}
		rep.primary = true
		a.events(rep.lastEvents)
		rep.lastEvents = nil
	}
	if h.rec != nil {
		h.rec.AddPromotion()
	}
	h.markEdgesDirtyLocked(a)
	return &wire.PromoteResp{Map: h.cur.Clone()}
}

// epochChangeLocked is the witness rule serializing handoff map changes:
// accept a proposal exactly one epoch ahead (first proposal wins), accept
// an identical map idempotently, refuse everything else with the current
// map.
func (h *Host) epochChangeLocked(a *acts, t *wire.EpochChangeReq) wire.Msg {
	if t.Map.Equal(h.cur) {
		return &wire.EpochChangeResp{OK: true, Map: h.cur.Clone()}
	}
	if t.Map.Epoch == h.cur.Epoch+1 {
		h.adoptLocked(a, t.Map)
		h.markEdgesDirtyLocked(a)
		return &wire.EpochChangeResp{OK: true, Map: h.cur.Clone()}
	}
	return &wire.EpochChangeResp{OK: false, Map: h.cur.Clone()}
}

// adoptLocked installs a strictly newer map and reconciles local roles:
// a replica this host no longer serves under the new map is discarded,
// with every queued and parked operation redirected via RouteResp (the
// clients re-aim; nothing is dropped).
func (h *Host) adoptLocked(a *acts, m wire.PlacementMap) {
	if m.Epoch <= h.cur.Epoch {
		return
	}
	h.cur = m.Clone()
	for s := 0; s < h.cur.NumShards(); s++ {
		rep := h.reps[s]
		if rep == nil {
			continue
		}
		if rep.primary && h.cur.Primary[s] != h.self {
			h.deposeLocked(a, rep)
		} else if !rep.primary && h.cur.Backup[s] != h.self && h.cur.Primary[s] != h.self {
			delete(h.reps, s)
		}
	}
}

// deposeLocked retires a primary replica after losing ownership.
func (h *Host) deposeLocked(a *acts, rep *replica) {
	redirect := &wire.RouteResp{Map: h.cur.Clone()}
	for _, op := range rep.queue {
		a.reply(op.done, redirect)
	}
	for _, p := range rep.parked {
		a.reply(p.reply, redirect)
	}
	if ho := rep.handoff; ho != nil {
		if ho.shipped && h.cur.Primary[rep.shard] == ho.target {
			// Our own proposal won: the ratified map reached us through a
			// side channel (e.g. a ReplicateResp for a sibling shard)
			// before the target's ack did. This depose IS the handoff
			// completing — report it as the success it is.
			if h.rec != nil {
				h.rec.AddHandoff(stats.HandoffSample{
					Shard: rep.shard, Bytes: ho.stateBytes, Latency: h.env.Now() - ho.start,
				})
			}
			a.reply(ho.done, &wire.HandoffStartResp{
				OK: true, StateBytes: uint64(ho.stateBytes), Map: h.cur.Clone(),
			})
		} else {
			a.reply(ho.done, &wire.HandoffStartResp{OK: false, Map: h.cur.Clone()})
		}
	}
	delete(h.reps, rep.shard)
}
