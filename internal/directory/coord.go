// Deadlock detection for the replicated control plane, in two tiers.
//
// Tier 1 — host-local union: a host serving several primary shards mirrors
// the in-process Sharded router exactly. When an acquire parks or a
// release re-points grants, it unions its own shards' waits-for summaries
// and aborts the youngest family on any cycle reachable from the trigger.
// Decisions are replicated: the triggering shard's purge/abort rides the
// client op's log entry, sibling shards get decision-only entries.
//
// Tier 2 — cross-host coordination: when primaries span hosts (spread
// placement, or after a handoff), cycles can straddle hosts. Every
// non-coordinator host pushes its local edge summary to the coordinator —
// the shard-0 primary, a role that travels with the map — whenever the
// summary changes, coalesced (one in-flight push, content-compared) and
// version-stamped so reordered pushes cannot regress the view. The
// coordinator unions the stored summaries with its own live edges, aborts
// the youngest family per cycle, prunes the victim from its stored copies,
// and fans AbortFamilyReq out to every other primary host. A stable cycle
// is eventually fully visible (the last host to change re-pushes its whole
// summary), and a phantom cycle assembled from stale summaries costs one
// safe extra abort — the victim retries, exactly like a real victim.

package directory

import (
	"sort"
	"time"

	"lotec/internal/ids"
	"lotec/internal/wire"
)

// forEachPrimaryLocked visits this host's primary replicas in ascending
// shard order (determinism: replication and event order must not depend
// on map iteration).
func (h *Host) forEachPrimaryLocked(fn func(s int, rep *replica)) {
	for s := 0; s < h.cur.NumShards(); s++ {
		rep := h.reps[s]
		if rep != nil && rep.primary {
			fn(s, rep)
		}
	}
}

// mutableLocked reports whether a primary replica's directory may still
// be mutated: once its handoff snapshot has shipped, the state is frozen
// (the target imported those exact bytes). A victim whose waits survive
// on a frozen shard is re-detected against the new owner.
func mutableLocked(rep *replica) bool {
	return rep.handoff == nil || !rep.handoff.shipped
}

// crossPossibleLocked is the local-tier precheck: a cross-shard cycle
// needs waiting families in at least two of this host's primary shards.
func (h *Host) crossPossibleLocked() bool {
	withWaiters := 0
	h.forEachPrimaryLocked(func(_ int, rep *replica) {
		if rep.dir.HasWaiters() {
			withWaiters++
		}
	})
	return withWaiters >= 2
}

// unionWaitsLocked aggregates this host's primary shards' waits-for
// summaries (deterministically ordered).
func (h *Host) unionWaitsLocked() (map[ids.FamilyID][]ids.FamilyID, map[ids.FamilyID]uint64) {
	adj := make(map[ids.FamilyID][]ids.FamilyID)
	ages := make(map[ids.FamilyID]uint64)
	h.forEachPrimaryLocked(func(_ int, rep *replica) {
		edges, shardAges := rep.dir.WaitEdges()
		for _, e := range edges {
			adj[e.From] = append(adj[e.From], e.To)
		}
		for f, age := range shardAges {
			ages[f] = age
		}
	})
	sortAdj(adj)
	return adj, ages
}

func sortAdj(adj map[ids.FamilyID][]ids.FamilyID) {
	//lotec:unordered — per-key in-place sort; no cross-key state.
	for f := range adj {
		tos := adj[f]
		sort.Slice(tos, func(i, j int) bool { return tos[i] < tos[j] })
	}
}

// findVictimLocked searches the host-local union graph for a cycle
// reachable from start (the parking family) and returns the youngest
// waiting family on it.
func (h *Host) findVictimLocked(start ids.FamilyID) (ids.FamilyID, bool) {
	if !h.crossPossibleLocked() {
		return 0, false
	}
	adj, ages := h.unionWaitsLocked()
	cycle := findCycleFrom(adj, start)
	if len(cycle) == 0 {
		return 0, false
	}
	return youngest(cycle, ages), true
}

// applyVictimLocked executes one deadlock decision across this host's
// primary shards. The trigger shard's share of the decision is folded
// into the client op's log entry; every other shard gets (or extends) a
// decision-only entry in extras. self selects the silent-purge path (the
// synchronous DeadlockAbort reply is the victim's notification).
func (h *Host) applyVictimLocked(rep *replica, op *repOp, victim ids.FamilyID, self bool) map[int]*repOp {
	return h.victimIntoLocked(rep, op, nil, victim, self)
}

func (h *Host) victimIntoLocked(rep *replica, op *repOp, extras map[int]*repOp, victim ids.FamilyID, self bool) map[int]*repOp {
	extend := func(s int) *repOp {
		if extras == nil {
			extras = make(map[int]*repOp)
		}
		if extras[s] == nil {
			extras[s] = &repOp{}
		}
		return extras[s]
	}
	h.forEachPrimaryLocked(func(s int, r *replica) {
		if !mutableLocked(r) {
			return
		}
		if self {
			r.dir.PurgeFamily(victim)
			if r == rep {
				op.purges = append(op.purges, victim)
			} else {
				e := extend(s)
				e.purges = append(e.purges, victim)
			}
			return
		}
		evs := stamp(s, r.dir.AbortVictim(victim))
		if r == rep {
			op.aborts = append(op.aborts, victim)
			op.events = append(op.events, evs...)
		} else if len(evs) > 0 {
			e := extend(s)
			e.aborts = append(e.aborts, victim)
			e.events = append(e.events, evs...)
		}
	})
	return extras
}

// sweepLocked repeatedly searches the host-local union graph after a
// release and aborts the youngest family of each cycle until acyclic
// (grant re-pointing can close cycles no single shard sees).
func (h *Host) sweepLocked(rep *replica, op *repOp) map[int]*repOp {
	var extras map[int]*repOp
	for {
		if !h.crossPossibleLocked() {
			return extras
		}
		adj, ages := h.unionWaitsLocked()
		cycle := firstCycle(adj)
		if len(cycle) == 0 {
			return extras
		}
		extras = h.victimIntoLocked(rep, op, extras, youngest(cycle, ages), false)
	}
}

// firstCycle scans the adjacency in deterministic start order and returns
// the first cycle found.
func firstCycle(adj map[ids.FamilyID][]ids.FamilyID) []ids.FamilyID {
	starts := make([]ids.FamilyID, 0, len(adj))
	for f := range adj {
		starts = append(starts, f)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i] < starts[j] })
	for _, f := range starts {
		if cycle := findCycleFrom(adj, f); len(cycle) > 0 {
			return cycle
		}
	}
	return nil
}

// coordinatorLocked returns the cross-host detection coordinator: the
// shard-0 primary of the host's current map. The role travels with the
// map, so promotion or handoff of shard 0 moves it.
func (h *Host) coordinatorLocked() ids.NodeID {
	if h.cur.NumShards() == 0 {
		return ids.NoNode
	}
	return h.cur.Primary[0]
}

// multiHostLocked reports whether primaries span more than one host.
func (h *Host) multiHostLocked() bool {
	if h.cur.NumShards() == 0 {
		return false
	}
	first := h.cur.Primary[0]
	for _, p := range h.cur.Primary[1:] {
		if p != first {
			return true
		}
	}
	return false
}

// markEdgesDirtyLocked notes that this host's waits-for summary may have
// changed. The coordinator re-detects locally; other hosts schedule a
// coalesced push.
func (h *Host) markEdgesDirtyLocked(a *acts) {
	if h.coordinatorLocked() == h.self {
		if len(h.peers) > 0 {
			h.detectLocked(a)
		}
		return
	}
	if !h.multiHostLocked() {
		return
	}
	h.edgeDirty = true
	if h.edgeSending {
		return
	}
	h.edgeSending = true
	a.proc(h.edgeSender)
}

// localSummaryLocked flattens the host-local union into wire form,
// deterministically sorted.
func (h *Host) localSummaryLocked() ([]wire.WaitEdge, []wire.FamilyAge) {
	var edges []wire.WaitEdge
	ageSet := make(map[ids.FamilyID]uint64)
	h.forEachPrimaryLocked(func(_ int, rep *replica) {
		es, shardAges := rep.dir.WaitEdges()
		for _, e := range es {
			edges = append(edges, wire.WaitEdge{From: e.From, To: e.To})
		}
		for f, age := range shardAges {
			ageSet[f] = age
		}
	})
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].From != edges[j].From {
			return edges[i].From < edges[j].From
		}
		return edges[i].To < edges[j].To
	})
	ages := make([]wire.FamilyAge, 0, len(ageSet))
	for f, age := range ageSet {
		ages = append(ages, wire.FamilyAge{Family: f, Age: age})
	}
	sort.Slice(ages, func(i, j int) bool { return ages[i].Family < ages[j].Family })
	return edges, ages
}

func summariesEqual(e1, e2 []wire.WaitEdge, a1, a2 []wire.FamilyAge) bool {
	if len(e1) != len(e2) || len(a1) != len(a2) {
		return false
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			return false
		}
	}
	for i := range a1 {
		if a1[i] != a2[i] {
			return false
		}
	}
	return true
}

// edgeSender is the coalescing push proc: while the summary stays dirty
// and actually different from the last acknowledged push, send it to the
// coordinator. At most one instance runs per host.
func (h *Host) edgeSender() {
	for {
		h.mu.Lock()
		if !h.edgeDirty {
			h.edgeSending = false
			h.mu.Unlock()
			return
		}
		h.edgeDirty = false
		edges, ages := h.localSummaryLocked()
		if summariesEqual(edges, h.lastEdges, ages, h.lastAges) {
			h.mu.Unlock()
			continue
		}
		coord := h.coordinatorLocked()
		if coord == h.self || coord == ids.NoNode {
			h.edgeSending = false
			h.mu.Unlock()
			return
		}
		h.edgeVer++
		req := &wire.WaitEdgeUpdate{Ver: h.edgeVer, Epoch: h.cur.Epoch, Edges: edges, Ages: ages}
		h.mu.Unlock()

		resp, err := h.env.Call(coord, req)
		if err != nil {
			// Coordinator unreachable; it will move with the map (shard-0
			// promotion) — retry after a beat.
			h.mu.Lock()
			h.edgeDirty = true
			h.mu.Unlock()
			h.env.Sleep(time.Millisecond)
			continue
		}
		if wr, ok := resp.(*wire.WaitEdgeResp); ok {
			h.adopt(wr.Map)
		}
		h.mu.Lock()
		h.lastEdges, h.lastAges = edges, ages
		h.mu.Unlock()
	}
}

// adopt is adoptLocked callable from proc context.
func (h *Host) adopt(m wire.PlacementMap) {
	a := &acts{h: h}
	h.mu.Lock()
	h.adoptLocked(a, m)
	h.mu.Unlock()
	a.run()
}

// waitEdgesLocked is the coordinator's ingest: store the freshest summary
// per sender and re-detect. A host that is no longer the coordinator just
// answers with its map so the sender re-aims.
func (h *Host) waitEdgesLocked(a *acts, from ids.NodeID, t *wire.WaitEdgeUpdate) wire.Msg {
	if h.coordinatorLocked() != h.self {
		return &wire.WaitEdgeResp{Map: h.cur.Clone()}
	}
	if p := h.peers[from]; t.Ver > p.ver {
		h.peers[from] = peerSummary{ver: t.Ver, edges: t.Edges, ages: t.Ages}
		h.detectLocked(a)
	}
	return &wire.WaitEdgeResp{Map: h.cur.Clone()}
}

// detectLocked runs coordinator detection over the union of this host's
// live edges and every stored peer summary, aborting the youngest family
// per cycle until the combined graph is acyclic.
func (h *Host) detectLocked(a *acts) {
	for {
		adj, ages := h.unionWaitsLocked()
		peerIDs := make([]ids.NodeID, 0, len(h.peers))
		for id := range h.peers {
			peerIDs = append(peerIDs, id)
		}
		sort.Slice(peerIDs, func(i, j int) bool { return peerIDs[i] < peerIDs[j] })
		for _, id := range peerIDs {
			p := h.peers[id]
			for _, e := range p.edges {
				adj[e.From] = append(adj[e.From], e.To)
			}
			for _, fa := range p.ages {
				if _, ok := ages[fa.Family]; !ok {
					ages[fa.Family] = fa.Age
				}
			}
		}
		sortAdj(adj)
		cycle := firstCycle(adj)
		if len(cycle) == 0 {
			return
		}
		victim := youngest(cycle, ages)
		h.abortFamilyLocked(a, victim)
		h.prunePeerFamilyLocked(victim)
		h.fanoutAbortLocked(a, victim)
	}
}

// abortFamilyLocked applies a coordinator-decided (or fanned-out) abort
// across this host's primary shards, replicating each shard's share as a
// decision-only log entry. Aborting a family that is not waiting here is
// a no-op — phantom decisions are safe.
func (h *Host) abortFamilyLocked(a *acts, victim ids.FamilyID) {
	h.forEachPrimaryLocked(func(s int, rep *replica) {
		if !mutableLocked(rep) {
			return
		}
		evs := stamp(s, rep.dir.AbortVictim(victim))
		if len(evs) == 0 {
			return
		}
		h.enqueueLocked(a, rep, &repOp{
			aborts: []ids.FamilyID{victim},
			events: evs,
		})
	})
}

// prunePeerFamilyLocked removes a decided victim from the stored peer
// summaries so the detection loop converges without waiting for the
// owners' next pushes.
func (h *Host) prunePeerFamilyLocked(victim ids.FamilyID) {
	for id, p := range h.peers {
		edges := p.edges[:0:0]
		for _, e := range p.edges {
			if e.From != victim && e.To != victim {
				edges = append(edges, e)
			}
		}
		ages := p.ages[:0:0]
		for _, fa := range p.ages {
			if fa.Family != victim {
				ages = append(ages, fa)
			}
		}
		h.peers[id] = peerSummary{ver: p.ver, edges: edges, ages: ages}
	}
}

// fanoutAbortLocked ships the coordinator's decision to every other host
// currently owning primary shards. Delivery is best-effort: a lost abort
// re-surfaces as a still-standing cycle on the next summary push.
func (h *Host) fanoutAbortLocked(a *acts, victim ids.FamilyID) {
	seen := map[ids.NodeID]bool{h.self: true}
	targets := make([]ids.NodeID, 0, 4)
	for _, p := range h.cur.Primary {
		if p != ids.NoNode && !seen[p] {
			seen[p] = true
			targets = append(targets, p)
		}
	}
	epoch := h.cur.Epoch
	for _, target := range targets {
		target := target
		a.proc(func() {
			_, _ = h.env.Call(target, &wire.AbortFamilyReq{Family: victim, Epoch: epoch})
		})
	}
}
